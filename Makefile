# Convenience entry points; CI runs the same commands (see
# .github/workflows/ci.yml). `make lint` is the invariant gate every PR
# must pass.

GO ?= go

.PHONY: all build test race lint vet cover clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The dedicated race sweep over the concurrent packages, mirroring the
# race-sweep CI job: halt on the first report, run everything twice.
race:
	GORACE=halt_on_error=1 $(GO) test -race -count=2 ./internal/core/ ./internal/cluster/

# The semtree invariant analyzers, driven through `go vet -vettool` so
# test files are covered and results are cached per package. For a
# quick uncached run without the vet driver:
#   go run ./cmd/semtree-vet ./...
lint: bin/semtree-vet
	$(GO) vet -vettool=$(abspath bin/semtree-vet) ./...

bin/semtree-vet: cmd/semtree-vet/*.go internal/analysis/*.go
	$(GO) build -o $@ ./cmd/semtree-vet

vet:
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -rf bin coverage.out
