// Distributed deployment: a SemTree spread over partitions that talk
// across a real TCP fabric (loopback), exercising the distributed
// insertion, build-partition and cross-partition search paths end to
// end — the closest runnable analogue of the paper's MPJ cluster.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	semtree "semtree"
	"semtree/internal/cluster"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	fabric := cluster.NewTCP()
	defer fabric.Close()

	gen := synth.New(synth.Config{Seed: 11}, nil)
	store := triple.NewStore()
	for _, t := range gen.Triples(3000) {
		store.Add(t, triple.Provenance{Doc: "GEN"})
	}

	idx, err := semtree.Build(store, semtree.Options{
		Fabric:            fabric,
		MaxPartitions:     5,
		PartitionCapacity: 400,
		Seed:              11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	st, err := idx.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d triples over %d partitions (TCP fabric)\n", idx.Len(), st.Partitions)
	fmt.Printf("points per partition: %v\n", st.PartitionPoints)
	fmt.Printf("tree nodes: %d (%d leaves)\n\n", st.Nodes, st.Leaves)

	// Query under a deadline, as a serving system would: the deadline
	// crosses the TCP fabric in the message envelope, so an expired
	// query stops on the remote partitions too, and the Result reports
	// what the query actually cost.
	query, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := idx.Searcher(semtree.WithK(5)).Search(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-nearest to %s:\n", query)
	for _, m := range res.Matches {
		fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
	}
	qs := res.Stats
	fmt.Printf("\nquery cost: %d nodes, %d buckets, %d distance evals on %d partitions, %d messages in %v (%s protocol)\n",
		qs.NodesVisited, qs.BucketsScanned, qs.DistanceEvals, qs.Partitions, qs.FabricMessages, qs.Wall.Round(time.Microsecond), qs.Protocol)

	fs := fabric.Stats()
	fmt.Printf("fabric traffic: %d messages, %d bytes over TCP\n", fs.Messages, fs.Bytes)
}
