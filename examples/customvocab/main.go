// Custom vocabulary: SemTree on a different domain. The paper's
// introduction motivates medical records alongside requirements; this
// example defines a clinical taxonomy in the textual vocabulary format,
// registers it, and finds contradicting orders (prescribe vs
// discontinue the same drug for the same patient) — the same antinomy
// machinery as the avionics case study, zero code changes.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

const clinicalActions = `
vocab Act clinical_action
concept medication_order clinical_action
concept prescribe medication_order
concept discontinue medication_order
concept increase_dose medication_order
concept decrease_dose medication_order
antonym prescribe discontinue
antonym increase_dose decrease_dose
concept admission_order clinical_action
concept admit admission_order
concept discharge admission_order
antonym admit discharge
concept monitoring_order clinical_action
concept order_lab monitoring_order
concept cancel_lab monitoring_order
antonym order_lab cancel_lab
freq prescribe 300
freq discontinue 80
freq admit 120
freq discharge 110
`

const clinicalParams = `
vocab Param clinical_parameter
concept drug clinical_parameter
concept anticoagulant drug
concept warfarin anticoagulant
concept heparin anticoagulant
concept antibiotic drug
concept amoxicillin antibiotic
concept vancomycin antibiotic
concept unit clinical_parameter
concept icu unit
concept cardiology_ward unit
concept lab_test clinical_parameter
concept inr_test lab_test
concept blood_culture lab_test
freq warfarin 90
freq heparin 60
freq amoxicillin 150
`

func main() {
	acts, err := vocab.ParseVocabulary(strings.NewReader(clinicalActions))
	if err != nil {
		log.Fatal(err)
	}
	params, err := vocab.ParseVocabulary(strings.NewReader(clinicalParams))
	if err != nil {
		log.Fatal(err)
	}
	reg := vocab.NewRegistry(acts, params)

	store := triple.NewStore()
	records := []struct{ rec, line string }{
		{"REC-104", "('patient_88', Act:prescribe, Param:warfarin)"},
		{"REC-104", "('patient_88', Act:order_lab, Param:inr_test)"},
		{"REC-219", "('patient_88', Act:discontinue, Param:warfarin)"},
		{"REC-219", "('patient_31', Act:admit, Param:icu)"},
		{"REC-305", "('patient_31', Act:discharge, Param:icu)"},
		{"REC-305", "('patient_42', Act:prescribe, Param:amoxicillin)"},
		{"REC-412", "('patient_42', Act:increase_dose, Param:amoxicillin)"},
	}
	for _, r := range records {
		t, err := triple.ParseTriple(r.line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: r.rec})
	}

	idx, err := semtree.Build(store, semtree.Options{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d clinical assertions over vocabularies %v\n\n",
		idx.Len(), reg.Prefixes())

	checker := reqcheck.NewChecker(idx, reg)
	fmt.Println("contradiction scan:")
	store.Each(func(id triple.ID, e triple.Entry) bool {
		cands, ok, err := checker.Candidates(context.Background(), e.Triple, 3)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			return true
		}
		for _, c := range checker.Confirmed(e.Triple, cands, store) {
			if c > id { // report each pair once
				other, _ := store.Get(c)
				fmt.Printf("  %s [%s]\n  conflicts with\n  %s [%s]\n\n",
					e.Triple, e.Prov.Doc, other.Triple, other.Prov.Doc)
			}
		}
		return true
	})
}
