// Inconsistency detection: the paper's motivating case study (§II,
// §IV-B). A synthetic requirements corpus with planted conflicts is
// generated as text, extracted to triples by the NLP layer, indexed,
// and checked: for each requirement a target triple (antinomic
// predicate) queries the index; retrieved candidates are verified and
// scored against ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/synth"
	"semtree/internal/vocab"
)

func main() {
	reg := vocab.DefaultRegistry()
	gen := synth.New(synth.Config{
		Seed:              7,
		Docs:              40,
		SectionsPerDoc:    8,
		InconsistencyRate: 0.3,
	}, reg)
	bundle := gen.Corpus()
	fmt.Printf("corpus: %d documents, %d triples, %d planted inconsistencies\n",
		len(bundle.Corpus.Docs), bundle.Corpus.NumTriples(), len(bundle.Planted))

	idx, err := semtree.Build(bundle.Corpus.Store, semtree.Options{Registry: reg, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	checker := reqcheck.NewChecker(idx, reg)
	store := bundle.Corpus.Store

	// Walk the planted pairs: query with each requirement's target
	// triple and see whether the hidden conflict is retrieved.
	const k = 10
	found := 0
	for i, p := range bundle.Planted {
		req := store.MustGet(p.Requirement)
		cands, ok, err := checker.Candidates(context.Background(), req, k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		confirmed := checker.Confirmed(req, cands, store)
		hit := false
		for _, id := range confirmed {
			if id == p.Conflict {
				hit = true
				found++
				break
			}
		}
		if i < 5 { // show the first few cases in detail
			target, _ := reqcheck.Target(req, reg)
			reqDoc, reqSec, _ := bundle.Corpus.SectionOf(p.Requirement)
			conDoc, conSec, _ := bundle.Corpus.SectionOf(p.Conflict)
			fmt.Printf("\nrequirement %s  [%s/%s]\n", req, reqDoc.ID, reqSec.ID)
			fmt.Printf("  target    %s\n", target)
			fmt.Printf("  planted   %s  [%s/%s]  retrieved=%v\n",
				store.MustGet(p.Conflict), conDoc.ID, conSec.ID, hit)
			fmt.Printf("  confirmed %d of %d candidates\n", len(confirmed), len(cands))
		}
	}
	fmt.Printf("\nretrieved %d / %d planted conflicts at K=%d\n", found, len(bundle.Planted), k)

	// Precision/recall sweep (Figure 8's protocol) against a simulated
	// annotator panel.
	panel := synth.NewPanel(5, 0.1, 0.02, 99)
	var queries []reqcheck.Query
	for _, p := range bundle.Planted {
		req := store.MustGet(p.Requirement)
		gt := panel.GroundTruth(reqcheck.TrueInconsistencies(store, req, p.Requirement, reg), nil)
		if len(gt) > 0 {
			queries = append(queries, reqcheck.Query{Requirement: p.Requirement, GroundTruth: gt})
		}
	}
	points, err := reqcheck.Evaluate(context.Background(), idx, store, reg, queries, []int{1, 3, 5, 10, 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-4s  %-9s  %-9s\n", "K", "Precision", "Recall")
	for _, pt := range points {
		fmt.Printf("%-4d  %-9.3f  %-9.3f\n", pt.K, pt.Precision, pt.Recall)
	}
}
