// Document search: semantic retrieval of *documents* (the paper's
// title use case). A corpus of requirement documents is indexed; a
// query-by-example triple retrieves semantically close triples, which
// are mapped back through their provenance and ranked per document.
// The index is then saved and reloaded — the restart path — and the
// reloaded index must answer the same query identically.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	semtree "semtree"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	gen := synth.New(synth.Config{Seed: 3, Docs: 30, SectionsPerDoc: 8}, nil)
	bundle := gen.Corpus()
	corpus := bundle.Corpus
	fmt.Printf("corpus: %d documents, %d triples\n\n", len(corpus.Docs), corpus.NumTriples())

	idx, err := semtree.Build(corpus.Store, semtree.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Query by example: "which documents talk about commanding the
	// start-up of on-board software components?"
	query, _ := triple.ParseTriple("('OBSW001', Fun:execute_cmd, CmdType:start-up)")
	fmt.Printf("query by example: %s\n\n", query)

	matches, err := idx.KNearest(context.Background(), query, 25)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]triple.ID, len(matches))
	for i, m := range matches {
		ids[i] = m.ID
	}

	fmt.Println("top documents:")
	for rank, ds := range corpus.RankDocuments(ids) {
		if rank >= 5 {
			break
		}
		fmt.Printf("%d. %s (%d matching triples)\n", rank+1, ds.DocID, ds.Matches)
		for i, id := range ds.Triples {
			if i >= 2 {
				break
			}
			_, sec, err := corpus.SectionOf(id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("     [%s] %s\n", sec.ID, sec.Text)
		}
	}

	fmt.Println("\nclosest triples:")
	for i, m := range matches {
		if i >= 8 {
			break
		}
		fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
	}

	// Restart path: Save captures the embedding and the distributed
	// tree's exact partition layout; Load restores it without
	// re-embedding or re-ingesting, and answers byte-identically. In a
	// real service the buffer is a file next to the corpus.
	var snapshot bytes.Buffer
	if err := semtree.Save(&snapshot, idx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved index snapshot: %d bytes\n", snapshot.Len())
	reloaded, err := semtree.Load(&snapshot, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer reloaded.Close()
	again, err := reloaded.KNearest(context.Background(), query, 25)
	if err != nil {
		log.Fatal(err)
	}
	for i := range matches {
		if again[i].ID != matches[i].ID || again[i].Dist != matches[i].Dist {
			log.Fatalf("restored index diverged at rank %d", i)
		}
	}
	fmt.Println("reloaded: same answers after restart, down to the distance bits")
}
