// Document search: semantic retrieval of *documents* (the paper's
// title use case). A corpus of requirement documents is indexed; a
// query-by-example triple retrieves semantically close triples, which
// are mapped back through their provenance and ranked per document.
package main

import (
	"context"
	"fmt"
	"log"

	semtree "semtree"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	gen := synth.New(synth.Config{Seed: 3, Docs: 30, SectionsPerDoc: 8}, nil)
	bundle := gen.Corpus()
	corpus := bundle.Corpus
	fmt.Printf("corpus: %d documents, %d triples\n\n", len(corpus.Docs), corpus.NumTriples())

	idx, err := semtree.Build(corpus.Store, semtree.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Query by example: "which documents talk about commanding the
	// start-up of on-board software components?"
	query, _ := triple.ParseTriple("('OBSW001', Fun:execute_cmd, CmdType:start-up)")
	fmt.Printf("query by example: %s\n\n", query)

	matches, err := idx.KNearest(context.Background(), query, 25)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]triple.ID, len(matches))
	for i, m := range matches {
		ids[i] = m.ID
	}

	fmt.Println("top documents:")
	for rank, ds := range corpus.RankDocuments(ids) {
		if rank >= 5 {
			break
		}
		fmt.Printf("%d. %s (%d matching triples)\n", rank+1, ds.DocID, ds.Matches)
		for i, id := range ds.Triples {
			if i >= 2 {
				break
			}
			_, sec, err := corpus.SectionOf(id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("     [%s] %s\n", sec.ID, sec.Text)
		}
	}

	fmt.Println("\nclosest triples:")
	for i, m := range matches {
		if i >= 8 {
			break
		}
		fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
	}
}
