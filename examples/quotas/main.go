// Multi-tenant quotas: two tenants share one index, each behind its
// own Searcher. The aggressor tenant gets a token-bucket cost quota
// sized from its own measured traffic and hammers past it; the
// well-behaved tenant runs unthrottled. The program prints each
// tenant's admission counters and metered bill — the aggressor is
// throttled to its refill rate (rejections cost the index nothing)
// while the other tenant is untouched, then recovers after backing
// off.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	semtree "semtree"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	// A synthetic requirements corpus, large enough that queries do
	// real work.
	gen := synth.New(synth.Config{Seed: 7, Actors: 200}, nil)
	store := triple.NewStore()
	for _, t := range gen.Triples(4000) {
		store.Add(t, triple.Provenance{Doc: "GEN"})
	}
	idx, err := semtree.Build(store, semtree.Options{
		Seed: 7, MaxPartitions: 5, PartitionCapacity: 600,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d triples across %d partitions\n\n", idx.Len(), idx.PartitionCount())

	qGen := synth.New(synth.Config{Seed: 8, Actors: 200}, nil)
	queries := make([]triple.Triple, 64)
	for i := range queries {
		queries[i] = qGen.RandomTriple()
	}
	ctx := context.Background()

	// Size the quota from measured traffic: run a short calibration
	// batch and price it with CostOf (distance evaluations + fabric
	// messages + wall time on one cost-unit scale).
	calib := idx.Searcher(semtree.WithK(3))
	var total float64
	for _, q := range queries[:16] {
		res, err := calib.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		total += semtree.CostOf(res.Stats)
	}
	perQuery := total / 16
	fmt.Printf("calibration: one query costs ~%.0f cost units\n", perQuery)

	// Tenant A: a 4-query burst budget, refilled at 10 queries/sec.
	// Tenant B: unthrottled.
	tenantA := idx.Searcher(semtree.WithK(3),
		semtree.WithQuota(4*perQuery, 10*perQuery))
	tenantB := idx.Searcher(semtree.WithK(3))

	// Tenant A hammers far past its budget while tenant B runs its
	// normal workload.
	admitted, throttled := 0, 0
	for _, q := range queries {
		_, err := tenantA.Search(ctx, q)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, semtree.ErrQuotaExhausted):
			throttled++
		default:
			log.Fatal(err)
		}
	}
	for _, q := range queries {
		if _, err := tenantB.Search(ctx, q); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\ntenant A (quota'd):   %d admitted, %d throttled of %d\n",
		admitted, throttled, len(queries))
	stA, stB := tenantA.SchedulerStats(), tenantB.SchedulerStats()
	fmt.Printf("tenant B (open):      %d admitted, %d throttled of %d\n",
		stB.Admitted, stB.RejectedQuota, len(queries))
	fmt.Printf("\nmetered bills (cost units): A=%.0f  B=%.0f\n", stA.MeteredCost, stB.MeteredCost)
	fmt.Printf("tenant A bucket: %.0f of %.0f units left\n", stA.QuotaLevel, stA.QuotaCapacity)

	// Backing off lets the bucket refill; tenant A is served again.
	time.Sleep(250 * time.Millisecond)
	if _, err := tenantA.Search(ctx, queries[0]); err != nil {
		log.Fatalf("tenant A did not recover: %v", err)
	}
	fmt.Println("\nafter a 250ms backoff tenant A is admitted again")
}
