// Quickstart: index a handful of requirement triples and retrieve the
// semantically closest ones to an example triple — the paper's §III-A
// resources and §II query.
package main

import (
	"context"
	"fmt"
	"log"

	semtree "semtree"
	"semtree/internal/triple"
)

func main() {
	// The paper's example resources (§III-A) plus some context.
	lines := []string{
		"('OBSW001', Fun:acquire_in, InType:pre-launch_phase)",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:power_amplifier)",
		"('OBSW002', Fun:accept_cmd, CmdType:self-test)",
		"('OBSW002', Fun:send_msg, MsgType:housekeeping)",
		"('PDU9', Fun:power_on, 'heater_1')",
		"('PDU9', Fun:power_off, 'heater_1')",
		"('TTC3', Fun:broadcast_msg, MsgType:fault_alert)",
	}
	store := triple.NewStore()
	for i, l := range lines {
		t, err := triple.ParseTriple(l)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: "QUICKSTART", Section: fmt.Sprintf("REQ-%d", i+1)})
	}

	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d triples (dims=%d)\n\n", idx.Len(), idx.Dims())

	// The §II query: the target triple for a potential inconsistency
	// with (OBSW001, accept_cmd, start-up).
	query, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	fmt.Printf("k-nearest to target %s:\n", query)
	matches, err := idx.KNearest(context.Background(), query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  %.4f  %-55s  (from %s/%s)\n", m.Dist, m.Triple, m.Prov.Doc, m.Prov.Section)
	}

	fmt.Printf("\nrange query within 0.35 of %s:\n", query)
	inRange, err := idx.Range(context.Background(), query, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range inRange {
		fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
	}
}
