module semtree

go 1.23
