module semtree

go 1.24
