package semtree

import (
	"context"
	"testing"
	"time"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

// TestScalePaperCorpus builds the index at the paper's corpus scale
// ("about 100,000 triples", §IV) across 9 partitions and spot-checks
// retrieval. Skipped in -short mode.
func TestScalePaperCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build")
	}
	const n = 100_000
	g := synth.New(synth.Config{Seed: 91, Actors: 400}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(n) {
		store.Add(tp, triple.Provenance{Doc: "CORPUS"})
	}
	start := time.Now()
	ix, err := Build(store, Options{
		Seed:              91,
		PartitionCapacity: 8 * 16,
		MaxPartitions:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	buildTime := time.Since(start)
	if ix.Len() != n {
		t.Fatalf("indexed %d of %d triples", ix.Len(), n)
	}
	if ix.PartitionCount() != 9 {
		t.Fatalf("partitions = %d, want 9", ix.PartitionCount())
	}
	st, err := ix.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != n {
		t.Fatalf("partition points sum to %d", st.Points)
	}
	t.Logf("built 100k-triple index in %v (%d tree nodes, %d leaves)",
		buildTime.Round(time.Millisecond), st.Nodes, st.Leaves)

	// Exact duplicates of stored triples must come back at distance 0.
	probeGen := synth.New(synth.Config{Seed: 91, Actors: 400}, nil)
	probes := probeGen.Triples(50) // same seed → prefix of the corpus
	qStart := time.Now()
	for _, probe := range probes {
		got, err := ix.KNearest(context.Background(), probe, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 || got[0].Dist > 1e-9 {
			t.Fatalf("stored triple %v not retrieved at distance 0: %v", probe, got)
		}
	}
	t.Logf("mean k-NN latency at 100k: %v", (time.Since(qStart) / time.Duration(len(probes))).Round(time.Microsecond))
}
