package semtree

import (
	"context"
	"testing"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func TestIndexRebalanceAfterGrowth(t *testing.T) {
	g := synth.New(synth.Config{Seed: 81}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(300) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 10, MaxPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Grow the index well past its build size with dynamic inserts.
	var inserted []triple.Triple
	for i := 0; i < 900; i++ {
		tp := g.RandomTriple()
		inserted = append(inserted, tp)
		if _, err := ix.Insert(tp, triple.Provenance{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Rebalance(); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if ix.PartitionCount() != 4 {
		t.Fatalf("partitions after rebalance = %d", ix.PartitionCount())
	}
	if ix.Len() != 1200 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Every dynamically inserted triple must still be findable exactly.
	for i := 0; i < 40; i++ {
		probe := inserted[i*20%len(inserted)]
		got, err := ix.KNearest(context.Background(), probe, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Dist > 1e-9 {
			t.Fatalf("probe %v not found after rebalance: %v", probe, got)
		}
	}
}
