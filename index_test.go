package semtree

import (
	"context"
	"sort"
	"testing"

	"semtree/internal/reqcheck"
	"semtree/internal/semdist"
	"semtree/internal/synth"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func tr(s string) triple.Triple {
	t, err := triple.ParseTriple(s)
	if err != nil {
		panic(err)
	}
	return t
}

func buildTestIndex(t *testing.T, n int, opts Options) (*Index, *synth.Generator) {
	t.Helper()
	g := synth.New(synth.Config{Seed: 21}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(n) {
		store.Add(tp, triple.Provenance{Doc: "D"})
	}
	ix, err := Build(store, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, g
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := Build(triple.NewStore(), Options{Measure: "cosine"}); err == nil {
		t.Fatal("unknown measure accepted")
	}
	if _, err := Build(triple.NewStore(), Options{Weights: semdist.Weights{Alpha: 2, Beta: 0, Gamma: 0}}); err == nil {
		t.Fatal("invalid weights accepted")
	}
}

func TestBuildEmptyStore(t *testing.T) {
	ix, err := Build(triple.NewStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	got, err := ix.KNearest(context.Background(), tr("('A', Fun:accept_cmd, CmdType:start-up)"), 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty index KNN = %v, %v", got, err)
	}
}

func TestKNearestFindsExactDuplicate(t *testing.T) {
	ix, _ := buildTestIndex(t, 500, Options{})
	probe := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	id, err := ix.Insert(probe, triple.Provenance{Doc: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.KNearest(context.Background(), probe, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist > 1e-9 {
		t.Fatalf("exact duplicate not at distance 0: %+v", got)
	}
	if got[0].ID != id && !got[0].Triple.Equal(probe) {
		t.Fatalf("wrong match: %+v", got[0])
	}
	if got[0].Prov.Doc != "probe" && !got[0].Triple.Equal(probe) {
		t.Fatalf("provenance lost: %+v", got[0])
	}
}

func TestKNearestApproximatesExactRanking(t *testing.T) {
	// The embedded k-NN must agree well with the brute-force semantic
	// ranking: for most queries, a large fraction of the true top-5 by
	// Eq. 1 appears in the index's top-10.
	ix, g := buildTestIndex(t, 800, Options{})
	exact := reqcheck.NewExactIndex(ix.Store(), semdist.MustNew(vocab.DefaultRegistry(), semdist.Options{}))
	qGen := synth.New(synth.Config{Seed: 99}, nil)
	_ = g
	totalOverlap, queries := 0, 30
	for q := 0; q < queries; q++ {
		query := qGen.RandomTriple()
		wantIDs, err := exact.KNearestIDs(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, err := ix.KNearestIDs(context.Background(), query, 10)
		if err != nil {
			t.Fatal(err)
		}
		got := map[triple.ID]bool{}
		for _, id := range gotIDs {
			got[id] = true
		}
		// Compare by triple content: duplicates make ID sets ambiguous.
		wantKeys := map[string]bool{}
		for _, id := range wantIDs {
			wantKeys[ix.Store().MustGet(id).Key()] = true
		}
		gotKeys := map[string]bool{}
		for id := range got {
			gotKeys[ix.Store().MustGet(id).Key()] = true
		}
		for k := range wantKeys {
			if gotKeys[k] {
				totalOverlap++
			}
		}
	}
	// On average at least 3 of the true top-5 triple values in our top-10.
	if totalOverlap < queries*3 {
		t.Fatalf("embedding recall too low: %d/%d", totalOverlap, queries*5)
	}
}

func TestRangeReturnsSortedWithinRadius(t *testing.T) {
	ix, _ := buildTestIndex(t, 600, Options{})
	q := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	got, err := ix.Range(context.Background(), q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatal("range results not sorted")
	}
	for _, m := range got {
		if m.Dist > 0.3 {
			t.Fatalf("match outside radius: %+v", m)
		}
	}
	// Growing the radius can only grow the result set.
	wider, err := ix.Range(context.Background(), q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(wider) < len(got) {
		t.Fatalf("wider range returned fewer results: %d < %d", len(wider), len(got))
	}
}

func TestPartitionedIndexMatchesSinglePartition(t *testing.T) {
	g := synth.New(synth.Config{Seed: 33}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(1200) {
		store.Add(tp, triple.Provenance{})
	}
	single, err := Build(store, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	parted, err := Build(store, Options{Seed: 4, PartitionCapacity: 150, MaxPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer parted.Close()
	if parted.PartitionCount() < 2 {
		t.Fatalf("partitions = %d", parted.PartitionCount())
	}
	qGen := synth.New(synth.Config{Seed: 77}, nil)
	for q := 0; q < 25; q++ {
		query := qGen.RandomTriple()
		a, err := single.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parted.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if d := a[i].Dist - b[i].Dist; d > 1e-9 || d < -1e-9 {
				t.Fatalf("distances differ at %d: %f vs %f", i, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestSemanticDistanceExposed(t *testing.T) {
	ix, _ := buildTestIndex(t, 10, Options{})
	a := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	b := tr("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	if d := ix.SemanticDistance(a, a); d != 0 {
		t.Fatalf("d(a,a) = %f", d)
	}
	if d := ix.SemanticDistance(a, b); d <= 0 || d > 1 {
		t.Fatalf("d(a,b) = %f", d)
	}
}

func TestInconsistencyDetectionEndToEnd(t *testing.T) {
	// The paper's full pipeline: corpus with planted conflicts →
	// SemTree index → target-triple k-NN → confirmed inconsistencies.
	g := synth.New(synth.Config{Seed: 41, Docs: 20, InconsistencyRate: 0.4}, nil)
	bundle := g.Corpus()
	ix, err := Build(bundle.Corpus.Store, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	reg := vocab.DefaultRegistry()
	checker := reqcheck.NewChecker(ix, reg)
	found := 0
	for _, p := range bundle.Planted {
		req := bundle.Corpus.Store.MustGet(p.Requirement)
		cands, ok, err := checker.Candidates(context.Background(), req, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		for _, id := range checker.Confirmed(req, cands, bundle.Corpus.Store) {
			if id == p.Conflict {
				found++
				break
			}
		}
	}
	if found < len(bundle.Planted)*7/10 {
		t.Fatalf("end-to-end found %d/%d planted conflicts", found, len(bundle.Planted))
	}
}

func TestCustomMeasureAndWeights(t *testing.T) {
	g := synth.New(synth.Config{Seed: 55}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(200) {
		store.Add(tp, triple.Provenance{})
	}
	for _, measure := range []string{"path", "resnik", "lin", "jiangconrath", "leacockchodorow"} {
		ix, err := Build(store, Options{
			Measure: measure,
			Weights: semdist.Weights{Alpha: 0.2, Beta: 0.5, Gamma: 0.3},
		})
		if err != nil {
			t.Fatalf("Build(%s): %v", measure, err)
		}
		if _, err := ix.KNearest(context.Background(), tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)"), 3); err != nil {
			t.Fatalf("KNearest(%s): %v", measure, err)
		}
		ix.Close()
	}
}
