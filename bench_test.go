package semtree_test

// testing.B benchmarks, one per reproduced table/figure of the paper's
// evaluation (§IV) plus the core single-operation costs. The figure
// *sweeps* (full parameter grids, the shapes reported in
// EXPERIMENTS.md) live in cmd/semtree-bench; these benches pin one
// representative configuration per figure so `go test -bench=.` tracks
// regressions in every experimental code path.

import (
	"context"
	"fmt"
	"testing"
	"time"

	semtree "semtree"
	"semtree/internal/bench"
	"semtree/internal/cluster"
	"semtree/internal/core"
	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/reqcheck"
	"semtree/internal/semdist"
	"semtree/internal/synth"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// benchPoints embeds n synthetic triples once per size (cached across
// benchmark iterations of the same b.Run).
func benchPoints(b *testing.B, n int) []kdtree.Point {
	b.Helper()
	g := synth.New(synth.Config{Seed: 1}, nil)
	triples := g.Triples(n)
	metric := semdist.MustNew(vocab.DefaultRegistry(), semdist.Options{})
	_, coords, err := fastmap.Build(triples, metric.Distance, fastmap.Options{Dims: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]kdtree.Point, n)
	for i, c := range coords {
		pts[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	return pts
}

// BenchmarkFig3IndexBuild measures distributed index building on the
// virtual-clock fabric (Figure 3's M=5 point at 20k triples). The
// reported metric is real work; the figure sweep reports virtual time.
func BenchmarkFig3IndexBuild(b *testing.B) {
	for _, m := range []int{1, 5} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			pts := benchPoints(b, 20000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fabric := cluster.NewVirtual(cluster.VirtualOptions{Latency: 200 * time.Microsecond})
				capacity := 0
				if m > 1 {
					capacity = (m - 1) * 16
				}
				tr, err := core.New(core.Config{
					Dim: 8, BucketSize: 16,
					PartitionCapacity: capacity, MaxPartitions: m, Fabric: fabric,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := tr.InsertBatchAsync(append([]kdtree.Point(nil), pts...), 256); err != nil {
					b.Fatal(err)
				}
				tr.Flush()
				tr.Close()
				fabric.Close()
			}
		})
	}
}

// BenchmarkFig4SeqKNN measures the sequential k-nearest query (K=3),
// balanced vs chain (Figure 4 at 20k points).
func BenchmarkFig4SeqKNN(b *testing.B) {
	pts := benchPoints(b, 20000)
	queries := benchPoints(b, 512)
	balanced, err := kdtree.BulkLoad(append([]kdtree.Point(nil), pts...), 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := kdtree.BuildChain(append([]kdtree.Point(nil), pts...), 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			balanced.KNearest(queries[i%len(queries)].Coords, 3)
		}
	})
	b.Run("chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chain.KNearest(queries[i%len(queries)].Coords, 3)
		}
	})
}

// BenchmarkFig5DistKNN measures the distributed k-nearest query across
// partition counts (Figure 5 at 20k points, compute only; the figure
// sweep adds the latency model).
func BenchmarkFig5DistKNN(b *testing.B) {
	for _, m := range []int{1, 5} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			pts := benchPoints(b, 20000)
			queries := benchPoints(b, 512)
			capacity := 0
			if m > 1 {
				capacity = (m - 1) * 16
			}
			tr, err := core.New(core.Config{
				Dim: 8, BucketSize: 16,
				PartitionCapacity: capacity, MaxPartitions: m,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			if err := tr.InsertBatchAsync(pts, 256); err != nil {
				b.Fatal(err)
			}
			tr.Flush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.KNearest(context.Background(), queries[i%len(queries)].Coords, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNearestBatch measures the batched query surface of the
// concurrent query engine on a 5-partition tree (4 data partitions +
// root): "loop" issues the queries one synchronous KNearest at a time,
// "batch" pushes the same workload through KNearestBatch's bounded
// worker pool. On a multi-core runner the batch should sustain well
// over 1.5× the loop's throughput.
func BenchmarkKNearestBatch(b *testing.B) {
	pts := benchPoints(b, 20000)
	queries := benchPoints(b, 256)
	qs := make([][]float64, len(queries))
	for i, q := range queries {
		qs[i] = q.Coords
	}
	tr, err := core.New(core.Config{
		Dim: 8, BucketSize: 16,
		PartitionCapacity: 4 * 16, MaxPartitions: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	if err := tr.InsertBatchAsync(pts, 64); err != nil {
		b.Fatal(err)
	}
	tr.Flush()
	if tr.PartitionCount() < 4 {
		b.Fatalf("partitions = %d, want >= 4", tr.PartitionCount())
	}
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := tr.KNearest(context.Background(), q, 3); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.KNearestBatch(context.Background(), qs, 3, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearcherBatch measures the facade-level batched search: the
// FastMap embedding, the tree fan-out and the triple resolution all run
// under the Searcher's worker pool.
func BenchmarkSearcherBatch(b *testing.B) {
	g := synth.New(synth.Config{Seed: 1}, nil)
	store := triple.NewStore()
	for _, t := range g.Triples(10000) {
		store.Add(t, triple.Provenance{})
	}
	idx, err := semtree.Build(store, semtree.Options{
		Seed: 1, PartitionCapacity: 1000, MaxPartitions: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	qs := make([]triple.Triple, 64)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}
	s := idx.Searcher(semtree.WithK(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.SearchBatch(context.Background(), qs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err) // per-query errors no longer surface batch-level
			}
		}
	}
}

// BenchmarkFig6SeqRange measures the sequential range query (Figure 6
// at 20k points, D=0.2).
func BenchmarkFig6SeqRange(b *testing.B) {
	pts := benchPoints(b, 20000)
	queries := benchPoints(b, 512)
	balanced, err := kdtree.BulkLoad(append([]kdtree.Point(nil), pts...), 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := kdtree.BuildChain(append([]kdtree.Point(nil), pts...), 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			balanced.RangeSearch(queries[i%len(queries)].Coords, 0.2)
		}
	})
	b.Run("chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chain.RangeSearch(queries[i%len(queries)].Coords, 0.2)
		}
	})
}

// BenchmarkFig7DistRange measures the distributed range query across
// partition counts (Figure 7 at 20k points, D=0.2).
func BenchmarkFig7DistRange(b *testing.B) {
	for _, m := range []int{1, 5} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			pts := benchPoints(b, 20000)
			queries := benchPoints(b, 512)
			capacity := 0
			if m > 1 {
				capacity = (m - 1) * 16
			}
			tr, err := core.New(core.Config{
				Dim: 8, BucketSize: 16,
				PartitionCapacity: capacity, MaxPartitions: m,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			if err := tr.InsertBatchAsync(pts, 256); err != nil {
				b.Fatal(err)
			}
			tr.Flush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.RangeSearch(context.Background(), queries[i%len(queries)].Coords, 0.2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Effectiveness measures one full inconsistency query
// (target construction + k-nearest + verification), the unit of the
// Figure 8 evaluation.
func BenchmarkFig8Effectiveness(b *testing.B) {
	reg := vocab.DefaultRegistry()
	gen := synth.New(synth.Config{Seed: 1, Docs: 40, InconsistencyRate: 0.3}, reg)
	bundle := gen.Corpus()
	idx, err := semtree.Build(bundle.Corpus.Store, semtree.Options{Registry: reg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	checker := reqcheck.NewChecker(idx, reg)
	if len(bundle.Planted) == 0 {
		b.Fatal("no planted conflicts")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := bundle.Planted[i%len(bundle.Planted)]
		req := bundle.Corpus.Store.MustGet(p.Requirement)
		cands, _, err := checker.Candidates(context.Background(), req, 10)
		if err != nil {
			b.Fatal(err)
		}
		checker.Confirmed(req, cands, bundle.Corpus.Store)
	}
}

// BenchmarkTripleDistance measures one Eq. 1 evaluation (cached).
func BenchmarkTripleDistance(b *testing.B) {
	metric := semdist.MustNew(vocab.DefaultRegistry(), semdist.Options{})
	x, _ := triple.ParseTriple("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	y, _ := triple.ParseTriple("('OBSW002', Fun:block_cmd, CmdType:shutdown)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.Distance(x, y)
	}
}

// BenchmarkFastMapEmbed measures embedding one out-of-sample triple.
func BenchmarkFastMapEmbed(b *testing.B) {
	g := synth.New(synth.Config{Seed: 1}, nil)
	triples := g.Triples(5000)
	metric := semdist.MustNew(vocab.DefaultRegistry(), semdist.Options{})
	mapper, _, err := fastmap.Build(triples, metric.Distance, fastmap.Options{Dims: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := g.RandomTriple()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapper.Map(q)
	}
}

// BenchmarkIndexBuildEndToEnd measures the full Build pipeline
// (distance, FastMap, tree load) at 5k triples.
func BenchmarkIndexBuildEndToEnd(b *testing.B) {
	g := synth.New(synth.Config{Seed: 1}, nil)
	store := triple.NewStore()
	for _, t := range g.Triples(5000) {
		store.Add(t, triple.Provenance{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := semtree.Build(store, semtree.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		idx.Close()
	}
}

// BenchmarkFigureTableRender guards the harness rendering itself.
func BenchmarkFigureTableRender(b *testing.B) {
	f := &bench.Figure{
		ID: "figX", Title: "bench", XLabel: "n", YLabel: "y",
		Series: []bench.Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Table()
	}
}
