package semtree

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"semtree/internal/core"
	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/semdist"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// snapshotVersion is the on-disk format written by Save. Version 2
// adds the distributed tree's partition snapshot; Load still accepts
// version 1 streams (written before the tree was persisted) and
// rebuilds their tree through the bulk loader.
const snapshotVersion = 2

// ErrSnapshotCorrupt reports snapshot bytes that cannot be loaded:
// truncated or garbled encodings, unknown versions, and structural
// violations inside the persisted tree (core.ErrSnapshotCorrupt,
// re-exported). Test with errors.Is; corrupt input always returns this
// error — it never panics.
var ErrSnapshotCorrupt = core.ErrSnapshotCorrupt

// indexSnapshot is the gob payload of a persisted index: the triples
// with provenance, the embedding geometry (FastMap pivots plus the
// exact coordinates of every stored triple, so reloaded answers are
// bit-identical), the metric parameters the embedding was built under,
// and — since version 2 — the distributed tree's partition snapshot
// (core.TreeSnapshot), so a restart restores the exact tree layout
// without re-embedding or re-ingesting. Tree is nil in version 1
// streams (gob leaves absent fields zero); Load then rebuilds the tree
// from Coords through the bulk loader.
type indexSnapshot struct {
	Version int
	Options persistedOptions
	Entries []triple.Entry
	Mapper  fastmap.Snapshot[triple.Triple]
	Coords  [][]float64
	Tree    *core.TreeSnapshot
}

// Save writes a snapshot of the index to w. The distributed tree must
// be quiescent (no concurrent Insert, BulkAdd, Rebalance or Repack);
// concurrent queries are fine. The store-and-embedding capture itself
// is atomic against Insert and BulkAdd — both sides serialize on the
// index lock — so even a Save that races an ingest reports a clean
// count mismatch from the tree capture instead of tearing.
func Save(w io.Writer, ix *Index) error {
	// One critical section for the store walk and the coords copy: an
	// Insert between the two would leave a triple without its embedding
	// row (or the reverse) in the snapshot.
	ix.mu.Lock()
	coords := append([][]float64(nil), ix.coords...)
	entries := make([]triple.Entry, 0, ix.store.Len())
	ix.store.Each(func(id triple.ID, e triple.Entry) bool {
		entries = append(entries, e)
		return true
	})
	ix.mu.Unlock()
	if len(entries) != len(coords) {
		return fmt.Errorf("semtree: store holds %d triples but %d embeddings are tracked "+
			"(triples added to the store outside the index?)", len(entries), len(coords))
	}
	treeSnap, err := ix.tree.Snapshot()
	if err != nil {
		return fmt.Errorf("semtree: save: %w", err)
	}
	if treeSnap.Size != int64(len(entries)) {
		return fmt.Errorf("semtree: tree snapshot holds %d points but %d triples are stored "+
			"(index mutated during Save?)", treeSnap.Size, len(entries))
	}
	snap := indexSnapshot{
		Version: snapshotVersion,
		Options: ix.opts,
		Entries: entries,
		Mapper:  ix.mapper.Snapshot(),
		Coords:  coords,
		Tree:    treeSnap,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("semtree: save: %w", err)
	}
	return nil
}

// encodeSnapshot and decodeSnapshot isolate the gob round trip for
// Save/Load and the format tests.
func encodeSnapshot(w io.Writer, snap *indexSnapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}

func decodeSnapshot(r io.Reader, snap *indexSnapshot) error {
	return gob.NewDecoder(r).Decode(snap)
}

// Load reconstructs an index from a snapshot written by Save. The
// embedding parameters are taken from the snapshot; tree-layout options
// (bucket size, partitions, fabric) come from opts — their embedding
// fields (Weights, Measure, NumericLiterals, Dims, Seed) are ignored.
//
// A version-2 snapshot restores the distributed tree's exact partition
// layout (boxes and remote caches included) after structural
// validation, so the loaded index answers every query byte-identically
// to the saved one; opts.MaxPartitions is raised to the persisted
// partition count when lower. A version-1 snapshot (no tree payload)
// rebuilds the tree from the persisted coordinates through the bulk
// loader. Corrupt input — truncation, garbage, unknown versions, or a
// tree payload violating the structural invariants — returns
// ErrSnapshotCorrupt.
func Load(r io.Reader, opts Options) (*Index, error) {
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("semtree: load: %w: %v", ErrSnapshotCorrupt, err)
	}
	if snap.Version != 1 && snap.Version != snapshotVersion {
		return nil, fmt.Errorf("semtree: load: %w: snapshot version %d, want 1 or %d",
			ErrSnapshotCorrupt, snap.Version, snapshotVersion)
	}
	if len(snap.Entries) != len(snap.Coords) {
		return nil, fmt.Errorf("semtree: load: %w: snapshot has %d entries but %d embeddings",
			ErrSnapshotCorrupt, len(snap.Entries), len(snap.Coords))
	}
	reg := opts.Registry
	if reg == nil {
		reg = vocab.DefaultRegistry()
	}
	measure := semdist.ConceptMeasure(nil)
	if snap.Options.Measure != "" {
		m, err := semdist.MeasureByName(snap.Options.Measure)
		if err != nil {
			return nil, err
		}
		measure = m
	}
	metric, err := semdist.New(reg, semdist.Options{
		Weights:         snap.Options.Weights,
		Concept:         measure,
		NumericLiterals: snap.Options.NumericLiterals,
	})
	if err != nil {
		return nil, err
	}
	mapper, err := fastmap.FromSnapshot(snap.Mapper, metric.Distance)
	if err != nil {
		return nil, err
	}

	store := triple.NewStore()
	for _, e := range snap.Entries {
		store.Add(e.Triple, e.Prov)
	}

	for i, c := range snap.Coords {
		if len(c) != snap.Options.Dims {
			return nil, fmt.Errorf("semtree: load: %w: snapshot coordinate %d has %d dims, want %d",
				ErrSnapshotCorrupt, i, len(c), snap.Options.Dims)
		}
	}
	cfg := core.Config{
		Dim:               snap.Options.Dims,
		BucketSize:        opts.BucketSize,
		PartitionCapacity: opts.PartitionCapacity,
		MaxPartitions:     opts.MaxPartitions,
		Fabric:            opts.Fabric,
		Unbalanced:        opts.Unbalanced,
	}
	var tree *core.Tree
	if snap.Tree != nil {
		// Version 2: restore the persisted partition layout exactly.
		// The cross-check against the entry count comes before the
		// structural validation inside RestoreTree, so an inconsistent
		// envelope fails fast either way.
		if snap.Tree.Size != int64(len(snap.Entries)) {
			return nil, fmt.Errorf("semtree: load: %w: tree snapshot holds %d points but %d entries persisted",
				ErrSnapshotCorrupt, snap.Tree.Size, len(snap.Entries))
		}
		if snap.Tree.Dim != snap.Options.Dims {
			return nil, fmt.Errorf("semtree: load: %w: tree snapshot dim %d, embedding dim %d",
				ErrSnapshotCorrupt, snap.Tree.Dim, snap.Options.Dims)
		}
		// Every point the tree serves must resolve in the entry table —
		// reloaded IDs are positional — or queries over the restored tree
		// would surface phantom IDs.
		for pi := range snap.Tree.Parts {
			for ni := range snap.Tree.Parts[pi].Nodes {
				for _, pt := range snap.Tree.Parts[pi].Nodes[ni].Bucket {
					if pt.ID >= uint64(len(snap.Entries)) {
						return nil, fmt.Errorf("semtree: load: %w: tree references triple ID %d but only %d entries persisted",
							ErrSnapshotCorrupt, pt.ID, len(snap.Entries))
					}
				}
			}
		}
		t, err := core.RestoreTree(cfg, snap.Tree)
		if err != nil {
			return nil, fmt.Errorf("semtree: load: %w", err)
		}
		tree = t
	} else {
		// Version 1: no tree payload; rebuild balanced from the
		// persisted coordinates.
		t, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		points := make([]kdtree.Point, len(snap.Coords))
		for i, c := range snap.Coords {
			points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
		}
		//semtree:allow ctxfirst: Load is construction-time and runs to completion by contract; there is no caller context to thread
		if err := t.BulkLoad(context.Background(), points); err != nil {
			t.Close()
			return nil, err
		}
		tree = t
	}

	return &Index{
		store: store, metric: metric, mapper: mapper, tree: tree,
		dims: snap.Options.Dims, opts: snap.Options, coords: snap.Coords,
	}, nil
}
