package semtree

import (
	"encoding/gob"
	"fmt"
	"io"

	"semtree/internal/core"
	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/semdist"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// indexSnapshot is the gob payload of a persisted index: the triples
// with provenance, the embedding geometry (FastMap pivots plus the
// exact coordinates of every stored triple, so reloaded answers are
// bit-identical), and the metric parameters the embedding was built
// under. The tree itself is *not* persisted — KD-trees bulk-load
// cheaply (§III-B), and reloading may target a different partition
// layout.
type indexSnapshot struct {
	Version int
	Options persistedOptions
	Entries []triple.Entry
	Mapper  fastmap.Snapshot[triple.Triple]
	Coords  [][]float64
}

// Save writes a snapshot of the index to w. The index must not be
// mutated concurrently.
func Save(w io.Writer, ix *Index) error {
	ix.mu.Lock()
	coords := append([][]float64(nil), ix.coords...)
	ix.mu.Unlock()
	entries := make([]triple.Entry, 0, ix.store.Len())
	ix.store.Each(func(id triple.ID, e triple.Entry) bool {
		entries = append(entries, e)
		return true
	})
	if len(entries) != len(coords) {
		return fmt.Errorf("semtree: store holds %d triples but %d embeddings are tracked "+
			"(triples added to the store outside the index?)", len(entries), len(coords))
	}
	snap := indexSnapshot{
		Version: snapshotVersion,
		Options: ix.opts,
		Entries: entries,
		Mapper:  ix.mapper.Snapshot(),
		Coords:  coords,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("semtree: save: %w", err)
	}
	return nil
}

// encodeSnapshot and decodeSnapshot isolate the gob round trip for
// Save/Load and the format tests.
func encodeSnapshot(w io.Writer, snap *indexSnapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}

func decodeSnapshot(r io.Reader, snap *indexSnapshot) error {
	return gob.NewDecoder(r).Decode(snap)
}

// Load reconstructs an index from a snapshot written by Save. The
// embedding parameters are taken from the snapshot; tree-layout options
// (bucket size, partitions, fabric) come from opts — their embedding
// fields (Weights, Measure, NumericLiterals, Dims, Seed) are ignored.
func Load(r io.Reader, opts Options) (*Index, error) {
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("semtree: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("semtree: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.Entries) != len(snap.Coords) {
		return nil, fmt.Errorf("semtree: snapshot has %d entries but %d embeddings",
			len(snap.Entries), len(snap.Coords))
	}
	reg := opts.Registry
	if reg == nil {
		reg = vocab.DefaultRegistry()
	}
	measure := semdist.ConceptMeasure(nil)
	if snap.Options.Measure != "" {
		m, err := semdist.MeasureByName(snap.Options.Measure)
		if err != nil {
			return nil, err
		}
		measure = m
	}
	metric, err := semdist.New(reg, semdist.Options{
		Weights:         snap.Options.Weights,
		Concept:         measure,
		NumericLiterals: snap.Options.NumericLiterals,
	})
	if err != nil {
		return nil, err
	}
	mapper, err := fastmap.FromSnapshot(snap.Mapper, metric.Distance)
	if err != nil {
		return nil, err
	}

	store := triple.NewStore()
	for _, e := range snap.Entries {
		store.Add(e.Triple, e.Prov)
	}

	tree, err := core.New(core.Config{
		Dim:               snap.Options.Dims,
		BucketSize:        opts.BucketSize,
		PartitionCapacity: opts.PartitionCapacity,
		MaxPartitions:     opts.MaxPartitions,
		Fabric:            opts.Fabric,
		Unbalanced:        opts.Unbalanced,
	})
	if err != nil {
		return nil, err
	}
	points := make([]kdtree.Point, len(snap.Coords))
	for i, c := range snap.Coords {
		if len(c) != snap.Options.Dims {
			tree.Close()
			return nil, fmt.Errorf("semtree: snapshot coordinate %d has %d dims, want %d",
				i, len(c), snap.Options.Dims)
		}
		points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	if err := tree.InsertBatchAsync(points, opts.BatchSize); err != nil {
		tree.Close()
		return nil, err
	}
	tree.Flush()

	return &Index{
		store: store, metric: metric, mapper: mapper, tree: tree,
		dims: snap.Options.Dims, opts: snap.Options, coords: snap.Coords,
	}, nil
}
