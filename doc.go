// Package semtree is a reproduction of "SemTree: an index for
// supporting semantic retrieval of documents" (Amato et al., ICDE
// Workshops 2015): a distributed KD-tree over RDF-style
// (subject, predicate, object) triples, embedded into a vector space
// with FastMap under the paper's weighted semantic distance
// (Levenshtein for literals, taxonomy measures such as Wu & Palmer for
// concepts).
//
// The public API is the Index facade: build it over a triple store,
// then ask for the k nearest triples — or all triples within a semantic
// range — of an example triple, and map results back to the documents
// they came from. The distributed machinery (partitions, build
// partition, cross-partition search), the substrates (vocabularies,
// distance measures, FastMap, KD-tree, message fabric, NLP extraction,
// synthetic corpora) and the benchmark harness regenerating every
// figure of the paper's evaluation live under internal/.
//
// Quick start:
//
//	store := triple.NewStore()            // fill with triples …
//	idx, err := semtree.Build(store, semtree.Options{})
//	matches, err := idx.KNearest(queryTriple, 3)
package semtree
