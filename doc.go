// Package semtree is a reproduction of "SemTree: an index for
// supporting semantic retrieval of documents" (Amato et al., ICDE
// Workshops 2015): a distributed KD-tree over RDF-style
// (subject, predicate, object) triples, embedded into a vector space
// with FastMap under the paper's weighted semantic distance
// (Levenshtein for literals, taxonomy measures such as Wu & Palmer for
// concepts).
//
// The public API is the Index facade: build it over a triple store,
// then query it through a Searcher — the concurrent query engine. The
// query surface is context-first: every entry point takes a
// context.Context, and cancellation is real — an expired deadline
// aborts the cross-partition fan-out and abandons outstanding
// partition replies at the message fabric, so a query never costs more
// than its budget. A Searcher fixes the per-query options once (k,
// range radius, exact re-rank factor, parallelism) and answers single
// queries or whole batches; batches amortize the FastMap embedding of
// the query triples and fan out over the distributed tree with a
// bounded worker pool, while single queries overlap cross-partition
// hops with the probe-then-fan-out k-NN protocol.
//
// Every query returns a Result: the ranked Matches, an ExecStats with
// the query's true execution cost (nodes visited, buckets scanned,
// distance evaluations, partitions contacted, fabric messages, wall
// time, protocol used — the paper's §V cost model surfaced per
// request), and the query's own error. Batch errors are attributed per
// query: one failed query never poisons the healthy queries of its
// batch, and the batch-level error is reserved for the context.
//
// Query execution is self-tuning. An online cost model watches the
// ExecStats stream and the fabric's own call latencies, maintains EWMA
// estimates of per-hop transit and per-node compute, and picks the
// cross-partition k-NN protocol per query (ProtocolAuto, the default):
// the paper's sequential Rs-forwarding when the workload is CPU-bound,
// the probe-then-fan-out when hop latency dominates — including
// adapting within a handful of queries when the network's latency
// changes mid-run. Pin a strategy with WithProtocol(ProtocolSequential)
// or WithProtocol(ProtocolFanOut) when determinism matters more than
// the estimates.
//
// The same scheduler is the admission-control point for heavy
// multi-user traffic. WithMaxInFlight bounds a Searcher's concurrently
// executing queries (with a bounded admission queue behind the limit;
// the surplus is shed with ErrAdmissionRejected), and
// WithAdmissionControl(true) rejects a query up front with
// ErrDeadlineBudget when its context deadline is provably below the
// model's cost estimate — no fabric message is spent on an answer
// nobody will receive. Searcher.SchedulerStats() snapshots the
// admission counters, the live estimates and the protocol-choice
// histogram:
//
//	s := idx.Searcher(semtree.WithK(3),
//		semtree.WithMaxInFlight(64), semtree.WithAdmissionControl(true))
//	results, _ := s.SearchBatch(ctx, queryTriples)
//	for _, r := range results {
//		if errors.Is(r.Err, semtree.ErrAdmissionRejected) { … } // shed: retry with backoff
//		if errors.Is(r.Err, semtree.ErrDeadlineBudget) { … }    // budget too small for this index
//	}
//	_ = s.SchedulerStats().HopLatency // what the model currently believes
//
// For multi-tenant serving the scheduler also meters and enforces
// cost. Every query's ExecStats are accumulated per Searcher —
// cumulative distance evaluations, fabric messages and wall time,
// priced onto a single cost-unit scale by CostOf — so one Searcher per
// tenant yields per-tenant bills for free. WithQuota(capacity,
// refillPerSec) adds a token bucket in those units: each admission is
// charged with the cost model's estimate of the query, the observed
// stats settle the difference on completion, and a tenant whose bucket
// is empty is rejected with ErrQuotaExhausted before any fabric
// message is spent — an over-budget tenant is throttled to its refill
// rate while other tenants' latency is untouched:
//
//	tenant := idx.Searcher(semtree.WithK(3),
//		semtree.WithQuota(4*typicalCost, typicalCost*targetQPS))
//	if _, err := tenant.Search(ctx, q); errors.Is(err, semtree.ErrQuotaExhausted) {
//		// back off ~cost/refill and retry; the bucket refills lazily
//	}
//	_ = tenant.SchedulerStats().MeteredCost // the tenant's cumulative bill
//
// The same machinery serves network callers: internal/serve (run via
// cmd/semtree-serve) hosts one Searcher per authenticated tenant
// behind a length-prefixed binary protocol, propagating client
// deadlines into contexts and carrying every sentinel across the wire
// as a stable numeric code (ErrorCode, RegisterErrorCode) so
// errors.Is works identically on both sides of the connection. A
// fleet of such front-ends can lease per-tenant refill shares from a
// central allocator, making one tenant's quota fleet-wide rather than
// per-process.
//
// Quick start:
//
//	store := triple.NewStore()            // fill with triples …
//	idx, err := semtree.Build(store, semtree.Options{})
//	matches, err := idx.KNearest(ctx, queryTriple, 3)
//
// Serving a query stream with deadlines and per-query stats:
//
//	s := idx.Searcher(semtree.WithK(3), semtree.WithParallelism(8))
//	ctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
//	defer cancel()
//	results, err := s.SearchBatch(ctx, queryTriples) // results[i] answers queryTriples[i]
//	for _, r := range results {
//		if r.Err != nil { … }                 // this query failed or was cut off
//		_ = r.Stats.FabricMessages            // what the query actually cost
//	}
//
// Range retrieval and exact re-ranking hang off the same options:
//
//	near := idx.Searcher(semtree.WithRadius(0.35))
//	exact := idx.Searcher(semtree.WithK(5), semtree.WithExactFactor(4))
//
// The one-shot helpers KNearest, Range, KNearestExact and KNearestIDs
// are thin wrappers over a Searcher.
//
// The distributed machinery (partitions, build partition,
// cross-partition search), the substrates (vocabularies, distance
// measures, FastMap, KD-tree, message fabric, NLP extraction, synthetic
// corpora) and the benchmark harness regenerating every figure of the
// paper's evaluation live under internal/.
package semtree
