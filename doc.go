// Package semtree is a reproduction of "SemTree: an index for
// supporting semantic retrieval of documents" (Amato et al., ICDE
// Workshops 2015): a distributed KD-tree over RDF-style
// (subject, predicate, object) triples, embedded into a vector space
// with FastMap under the paper's weighted semantic distance
// (Levenshtein for literals, taxonomy measures such as Wu & Palmer for
// concepts).
//
// The public API is the Index facade: build it over a triple store,
// then query it through a Searcher — the concurrent query engine. A
// Searcher fixes the per-query options once (k, range radius, exact
// re-rank factor, parallelism) and answers single queries or whole
// batches; batches amortize the FastMap embedding of the query triples
// and fan out over the distributed tree with a bounded worker pool,
// while single queries overlap cross-partition hops with the
// probe-then-fan-out k-NN protocol. The one-shot helpers KNearest,
// Range, KNearestExact and KNearestIDs are thin wrappers over a
// Searcher.
//
// Quick start:
//
//	store := triple.NewStore()            // fill with triples …
//	idx, err := semtree.Build(store, semtree.Options{})
//	matches, err := idx.KNearest(queryTriple, 3)
//
// Serving a query stream:
//
//	s := idx.Searcher(semtree.SearchOptions{K: 3, Parallelism: 8})
//	results, err := s.SearchBatch(queryTriples) // results[i] answers queryTriples[i]
//
// Range retrieval and exact re-ranking hang off the same options:
//
//	near := idx.Searcher(semtree.SearchOptions{Radius: 0.35})
//	exact := idx.Searcher(semtree.SearchOptions{K: 5, ExactFactor: 4})
//
// The distributed machinery (partitions, build partition,
// cross-partition search), the substrates (vocabularies, distance
// measures, FastMap, KD-tree, message fabric, NLP extraction, synthetic
// corpora) and the benchmark harness regenerating every figure of the
// paper's evaluation live under internal/.
package semtree
