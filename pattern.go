package semtree

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"semtree/internal/triple"
)

// Pattern is a triple template with optional positions: nil terms are
// wildcards. Pattern queries are translated into multi-dimensional
// range queries over the index (the strategy the paper cites from
// Tsatsanifos et al. [7]): bound positions constrain the semantic
// distance, wildcard positions contribute their full Eq. 1 weight as
// slack, and candidates are verified exactly on the bound positions.
type Pattern struct {
	Subject   *triple.Term
	Predicate *triple.Term
	Object    *triple.Term
}

// ParsePattern parses a Turtle-like pattern where '?' marks a wildcard:
//
//	(?, Fun:accept_cmd, ?)
//	('OBSW001', ?, CmdType:start-up)
func ParsePattern(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = s[1 : len(s)-1]
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Pattern{}, fmt.Errorf("semtree: pattern needs 3 positions, got %d", len(parts))
	}
	var out [3]*triple.Term
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "?" {
			continue
		}
		term, err := triple.ParseTerm(part)
		if err != nil {
			return Pattern{}, err
		}
		out[i] = &term
	}
	return Pattern{Subject: out[0], Predicate: out[1], Object: out[2]}, nil
}

// String renders the pattern with '?' wildcards.
func (p Pattern) String() string {
	pos := func(t *triple.Term) string {
		if t == nil {
			return "?"
		}
		return t.String()
	}
	return "(" + pos(p.Subject) + ", " + pos(p.Predicate) + ", " + pos(p.Object) + ")"
}

// Bound reports how many positions are bound.
func (p Pattern) Bound() int {
	n := 0
	for _, t := range []*triple.Term{p.Subject, p.Predicate, p.Object} {
		if t != nil {
			n++
		}
	}
	return n
}

// embeddingSlack absorbs FastMap distortion when translating the
// semantic radius into the embedded space.
const embeddingSlack = 0.05

// MatchPattern returns stored triples whose *bound-position* semantic
// distance to the pattern is at most d, ranked ascending, at most limit
// results (0 = unlimited). Wildcards are free: a pattern with only the
// predicate bound, d=0, returns every triple using exactly that
// predicate (up to embedding approximation, see below).
//
// Internally the wildcards are filled with an empty-literal placeholder
// whose term distance to anything is maximal, so a range query with
// radius d + Σ(wildcard weights) + slack over-approximates the
// candidate set; candidates are then verified exactly per position.
// Like every SemTree retrieval, completeness is bounded by the FastMap
// embedding quality.
func (ix *Index) MatchPattern(ctx context.Context, p Pattern, d float64, limit int) ([]Match, error) {
	if d < 0 {
		return nil, fmt.Errorf("semtree: negative pattern radius %g", d)
	}
	if p.Bound() == 0 {
		return nil, fmt.Errorf("semtree: pattern with no bound positions")
	}
	w := ix.metric.Weights()
	weights := [3]float64{w.Alpha, w.Beta, w.Gamma}
	terms := [3]*triple.Term{p.Subject, p.Predicate, p.Object}

	placeholder := triple.NewString("")
	var qTerms [3]triple.Term
	slack := 0.0
	for i, t := range terms {
		if t == nil {
			qTerms[i] = placeholder
			slack += weights[i]
		} else {
			qTerms[i] = *t
		}
	}
	q := triple.New(qTerms[0], qTerms[1], qTerms[2])

	cands, err := ix.Range(ctx, q, d+slack+embeddingSlack)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, c := range cands {
		boundDist := 0.0
		for i, t := range terms {
			if t == nil {
				continue
			}
			boundDist += weights[i] * ix.metric.TermDistance(*t, c.Triple.Project(i))
		}
		if boundDist <= d+1e-12 {
			c.Dist = boundDist
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}
