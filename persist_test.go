package semtree

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func TestSaveLoadRoundTripIdenticalAnswers(t *testing.T) {
	g := synth.New(synth.Config{Seed: 61}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(600) {
		store.Add(tp, triple.Provenance{Doc: "D", Section: "S"})
	}
	orig, err := Build(store, Options{Seed: 5, Measure: "lin"})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer loaded.Close()

	if loaded.Len() != orig.Len() || loaded.Dims() != orig.Dims() {
		t.Fatalf("loaded len/dims = %d/%d, want %d/%d",
			loaded.Len(), loaded.Dims(), orig.Len(), orig.Dims())
	}
	qGen := synth.New(synth.Config{Seed: 62}, nil)
	for q := 0; q < 30; q++ {
		query := qGen.RandomTriple()
		a, err := orig.KNearest(context.Background(), query, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.KNearest(context.Background(), query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("query %d rank %d: distance %v vs %v (answers must be bit-identical)",
					q, i, a[i].Dist, b[i].Dist)
			}
		}
	}
	// Provenance survives.
	m, err := loaded.KNearest(context.Background(), store.MustGet(0), 1)
	if err != nil || len(m) != 1 {
		t.Fatalf("lookup after load: %v %v", m, err)
	}
	if m[0].Prov.Doc != "D" || m[0].Prov.Section != "S" {
		t.Fatalf("provenance lost: %+v", m[0].Prov)
	}
}

// TestLoadRestoresPartitionLayout: a version-2 snapshot carries the
// distributed tree itself, so Load restores the saved partition layout
// exactly — even when the load-time options ask for fewer partitions —
// and answers identically. (To re-shape a reloaded fleet, Rebalance
// after Load.)
func TestLoadRestoresPartitionLayout(t *testing.T) {
	g := synth.New(synth.Config{Seed: 63}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(800) {
		store.Add(tp, triple.Provenance{})
	}
	orig, err := Build(store, Options{Seed: 6, PartitionCapacity: 100, MaxPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	if orig.PartitionCount() < 2 {
		t.Fatalf("build did not distribute: %d partitions", orig.PartitionCount())
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.PartitionCount() != orig.PartitionCount() {
		t.Fatalf("restored %d partitions, saved tree had %d",
			loaded.PartitionCount(), orig.PartitionCount())
	}
	qGen := synth.New(synth.Config{Seed: 64}, nil)
	for q := 0; q < 15; q++ {
		query := qGen.RandomTriple()
		a, _ := orig.KNearest(context.Background(), query, 5)
		b, _ := loaded.KNearest(context.Background(), query, 5)
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist || a[i].ID != b[i].ID {
				t.Fatalf("restored load changed answers")
			}
		}
	}
}

func TestSaveAfterInsert(t *testing.T) {
	store := triple.NewStore()
	g := synth.New(synth.Config{Seed: 65}, nil)
	for _, tp := range g.Triples(100) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	probe := g.RandomTriple()
	if _, err := ix.Insert(probe, triple.Provenance{Doc: "late"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatalf("Save after Insert: %v", err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 101 {
		t.Fatalf("loaded %d triples, want 101", loaded.Len())
	}
	m, err := loaded.KNearest(context.Background(), probe, 1)
	if err != nil || len(m) != 1 || m[0].Dist != 0 {
		t.Fatalf("late insert not found after reload: %v %v", m, err)
	}
}

func TestSaveDetectsOutOfBandStoreWrites(t *testing.T) {
	store := triple.NewStore()
	g := synth.New(synth.Config{Seed: 66}, nil)
	for _, tp := range g.Triples(50) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	store.Add(g.RandomTriple(), triple.Provenance{}) // bypasses the index
	var buf bytes.Buffer
	if err := Save(&buf, ix); err == nil {
		t.Fatal("Save should refuse a store with unindexed triples")
	}
}

// TestLoadVersion1Compat: streams written before the tree snapshot
// existed carry Version 1 and no Tree payload. Load must still accept
// them, rebuilding the tree from the persisted coordinates through the
// bulk loader; answers stay bit-identical because the coordinates are
// exact.
func TestLoadVersion1Compat(t *testing.T) {
	g := synth.New(synth.Config{Seed: 67}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(400) {
		store.Add(tp, triple.Provenance{Doc: "v1"})
	}
	orig, err := Build(store, Options{Seed: 8, PartitionCapacity: 120, MaxPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Downgrade the stream to what a version-1 writer produced: no tree
	// payload, version stamp 1.
	var snap indexSnapshot
	if err := decodeSnapshot(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 1
	snap.Tree = nil
	var v1 bytes.Buffer
	if err := encodeSnapshot(&v1, &snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(&v1, Options{PartitionCapacity: 120, MaxPartitions: 4})
	if err != nil {
		t.Fatalf("Load of version-1 stream: %v", err)
	}
	defer loaded.Close()
	if loaded.Len() != orig.Len() {
		t.Fatalf("v1 load has %d triples, want %d", loaded.Len(), orig.Len())
	}
	qGen := synth.New(synth.Config{Seed: 68}, nil)
	for q := 0; q < 20; q++ {
		query := qGen.RandomTriple()
		a, err := orig.KNearest(context.Background(), query, 6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.KNearest(context.Background(), query, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("query %d rank %d: v1 rebuild changed distance %v vs %v",
					q, i, a[i].Dist, b[i].Dist)
			}
		}
	}
	m, err := loaded.KNearest(context.Background(), store.MustGet(0), 1)
	if err != nil || len(m) != 1 || m[0].Prov.Doc != "v1" {
		t.Fatalf("provenance lost through v1 path: %v %v", m, err)
	}
}

// TestSaveConcurrentWithInsert: Save reads the store and the embedding
// table under the index lock, so a Save racing Insert must either
// capture a consistent snapshot (which then loads cleanly) or fail with
// the explicit count-mismatch error from the tree capture — never write
// a torn stream. Run under -race this also proves the capture itself is
// data-race free.
func TestSaveConcurrentWithInsert(t *testing.T) {
	g := synth.New(synth.Config{Seed: 69}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(150) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	extra := g.Triples(120)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tp := range extra {
			if _, err := ix.Insert(tp, triple.Provenance{}); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()

	var good []bytes.Buffer
	for i := 0; i < 12; i++ {
		var buf bytes.Buffer
		if err := Save(&buf, ix); err != nil {
			// The only legal failure is the clean mutation report.
			if !bytes.Contains([]byte(err.Error()), []byte("mutated during Save")) {
				t.Fatalf("Save under churn failed with an unexpected error: %v", err)
			}
			continue
		}
		good = append(good, buf)
	}
	wg.Wait()

	// Every snapshot that Save reported as written must load cleanly and
	// be internally consistent; Load's own cross-checks (entries vs
	// coords vs tree size) would reject a torn capture.
	for i := range good {
		loaded, err := Load(&good[i], Options{})
		if err != nil {
			t.Fatalf("snapshot %d written under churn does not load: %v", i, err)
		}
		if n := loaded.Len(); n < 150 || n > 150+len(extra) {
			t.Fatalf("snapshot %d holds %d triples, want between 150 and %d", i, n, 150+len(extra))
		}
		loaded.Close()
	}

	// After quiescence Save must succeed and capture everything.
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatalf("Save after churn: %v", err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 150+len(extra) {
		t.Fatalf("final snapshot holds %d triples, want %d", loaded.Len(), 150+len(extra))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("not a snapshot")), Options{})
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("garbage must return ErrSnapshotCorrupt, got %v", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	store := triple.NewStore()
	ix, err := Build(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding a tampered snapshot.
	var snap indexSnapshot
	if err := decodeSnapshot(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeSnapshot(&buf2, &snap); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf2, Options{})
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("wrong version must return ErrSnapshotCorrupt, got %v", err)
	}
}

// FuzzLoadSnapshot: Load must never panic on arbitrary snapshot bytes.
// Bytes that gob cannot decode into the envelope, and decodable
// envelopes with an unknown version stamp, must surface as
// ErrSnapshotCorrupt; bytes Load accepts must yield a queryable index.
func FuzzLoadSnapshot(f *testing.F) {
	g := synth.New(synth.Config{Seed: 70}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(120) {
		store.Add(tp, triple.Provenance{Doc: "fz"})
	}
	ix, err := Build(store, Options{Seed: 11, PartitionCapacity: 60, MaxPartitions: 3})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := Save(&valid, ix); err != nil {
		f.Fatal(err)
	}
	ix.Close()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncation
	f.Add([]byte("not a snapshot"))
	f.Add([]byte{})
	// Version skew.
	var snap indexSnapshot
	if err := decodeSnapshot(bytes.NewReader(valid.Bytes()), &snap); err != nil {
		f.Fatal(err)
	}
	snap.Version = 41
	var skew bytes.Buffer
	if err := encodeSnapshot(&skew, &snap); err != nil {
		f.Fatal(err)
	}
	f.Add(skew.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // size-capped: huge inputs only test the allocator
		}
		// Pre-decode to learn what a correct Load must conclude, and to
		// bound the work a decodable envelope may demand.
		var snap indexSnapshot
		decErr := decodeSnapshot(bytes.NewReader(data), &snap)
		if decErr == nil {
			if len(snap.Entries) > 1<<12 || len(snap.Coords) > 1<<12 ||
				len(snap.Mapper.PivotA) > 64 || len(snap.Mapper.PivotB) > 64 ||
				(snap.Tree != nil && (len(snap.Tree.Parts) > 16 || snap.Tree.Size > 1<<16)) {
				return
			}
		}
		loaded, err := Load(bytes.NewReader(data), Options{})
		if err != nil {
			if decErr != nil && !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("undecodable bytes must report ErrSnapshotCorrupt, got %v", err)
			}
			if decErr == nil && snap.Version != 1 && snap.Version != snapshotVersion &&
				!errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("version %d must report ErrSnapshotCorrupt, got %v", snap.Version, err)
			}
			return
		}
		defer loaded.Close()
		g := synth.New(synth.Config{Seed: 72}, nil)
		if _, err := loaded.KNearest(context.Background(), g.RandomTriple(), 3); err != nil {
			t.Fatalf("accepted snapshot does not answer queries: %v", err)
		}
	})
}
