package semtree

import (
	"bytes"
	"context"
	"testing"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func TestSaveLoadRoundTripIdenticalAnswers(t *testing.T) {
	g := synth.New(synth.Config{Seed: 61}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(600) {
		store.Add(tp, triple.Provenance{Doc: "D", Section: "S"})
	}
	orig, err := Build(store, Options{Seed: 5, Measure: "lin"})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer loaded.Close()

	if loaded.Len() != orig.Len() || loaded.Dims() != orig.Dims() {
		t.Fatalf("loaded len/dims = %d/%d, want %d/%d",
			loaded.Len(), loaded.Dims(), orig.Len(), orig.Dims())
	}
	qGen := synth.New(synth.Config{Seed: 62}, nil)
	for q := 0; q < 30; q++ {
		query := qGen.RandomTriple()
		a, err := orig.KNearest(context.Background(), query, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.KNearest(context.Background(), query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("query %d rank %d: distance %v vs %v (answers must be bit-identical)",
					q, i, a[i].Dist, b[i].Dist)
			}
		}
	}
	// Provenance survives.
	m, err := loaded.KNearest(context.Background(), store.MustGet(0), 1)
	if err != nil || len(m) != 1 {
		t.Fatalf("lookup after load: %v %v", m, err)
	}
	if m[0].Prov.Doc != "D" || m[0].Prov.Section != "S" {
		t.Fatalf("provenance lost: %+v", m[0].Prov)
	}
}

func TestLoadWithDifferentPartitionLayout(t *testing.T) {
	g := synth.New(synth.Config{Seed: 63}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(800) {
		store.Add(tp, triple.Provenance{})
	}
	orig, err := Build(store, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Options{PartitionCapacity: 100, MaxPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.PartitionCount() < 2 {
		t.Fatalf("partition layout not applied at load: %d partitions", loaded.PartitionCount())
	}
	qGen := synth.New(synth.Config{Seed: 64}, nil)
	for q := 0; q < 15; q++ {
		query := qGen.RandomTriple()
		a, _ := orig.KNearest(context.Background(), query, 5)
		b, _ := loaded.KNearest(context.Background(), query, 5)
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("repartitioned load changed answers")
			}
		}
	}
}

func TestSaveAfterInsert(t *testing.T) {
	store := triple.NewStore()
	g := synth.New(synth.Config{Seed: 65}, nil)
	for _, tp := range g.Triples(100) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	probe := g.RandomTriple()
	if _, err := ix.Insert(probe, triple.Provenance{Doc: "late"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatalf("Save after Insert: %v", err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 101 {
		t.Fatalf("loaded %d triples, want 101", loaded.Len())
	}
	m, err := loaded.KNearest(context.Background(), probe, 1)
	if err != nil || len(m) != 1 || m[0].Dist != 0 {
		t.Fatalf("late insert not found after reload: %v %v", m, err)
	}
}

func TestSaveDetectsOutOfBandStoreWrites(t *testing.T) {
	store := triple.NewStore()
	g := synth.New(synth.Config{Seed: 66}, nil)
	for _, tp := range g.Triples(50) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	store.Add(g.RandomTriple(), triple.Provenance{}) // bypasses the index
	var buf bytes.Buffer
	if err := Save(&buf, ix); err == nil {
		t.Fatal("Save should refuse a store with unindexed triples")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	store := triple.NewStore()
	ix, err := Build(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding a tampered snapshot.
	var snap indexSnapshot
	if err := decodeSnapshot(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeSnapshot(&buf2, &snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2, Options{}); err == nil {
		t.Fatal("wrong version accepted")
	}
}
