package semtree_test

import (
	"fmt"
	"log"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// ExampleBuild indexes the paper's §III-A resources and runs the §II
// inconsistency query.
func ExampleBuild() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:acquire_in, InType:pre-launch_phase)",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:power_amplifier)",
	} {
		t, err := triple.ParseTriple(line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: "OBSW-SRS", Section: "REQ-1"})
	}

	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	query, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	matches, err := idx.KNearest(query, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(matches[0].Triple)
	// Output: ('OBSW001', Fun:accept_cmd, CmdType:start-up)
}

// ExampleIndex_MatchPattern retrieves all triples using a predicate,
// regardless of subject and object.
func ExampleIndex_MatchPattern() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW002', Fun:accept_cmd, CmdType:self-test)",
		"('OBSW001', Fun:send_msg, MsgType:housekeeping)",
	} {
		t, _ := triple.ParseTriple(line)
		store.Add(t, triple.Provenance{})
	}
	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	pat, _ := semtree.ParsePattern("(?, Fun:accept_cmd, ?)")
	matches, err := idx.MatchPattern(pat, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(matches), "matches")
	// Output: 2 matches
}

// ExampleIndex_KNearestIDs shows the inconsistency checker over an
// index: the target triple's neighborhood contains the conflict.
func ExampleIndex_KNearestIDs() {
	store := triple.NewStore()
	req, _ := triple.ParseTriple("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	conflict, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	store.Add(req, triple.Provenance{})
	store.Add(conflict, triple.Provenance{})

	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	reg := vocab.DefaultRegistry()
	checker := reqcheck.NewChecker(idx, reg)
	cands, _, err := checker.Candidates(req, 2)
	if err != nil {
		log.Fatal(err)
	}
	confirmed := checker.Confirmed(req, cands, store)
	fmt.Println(len(confirmed), "confirmed inconsistency")
	// Output: 1 confirmed inconsistency
}
