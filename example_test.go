package semtree_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// ExampleBuild indexes the paper's §III-A resources and runs the §II
// inconsistency query.
func ExampleBuild() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:acquire_in, InType:pre-launch_phase)",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:power_amplifier)",
	} {
		t, err := triple.ParseTriple(line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: "OBSW-SRS", Section: "REQ-1"})
	}

	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	query, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	matches, err := idx.KNearest(context.Background(), query, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(matches[0].Triple)
	// Output: ('OBSW001', Fun:accept_cmd, CmdType:start-up)
}

// ExampleIndex_MatchPattern retrieves all triples using a predicate,
// regardless of subject and object.
func ExampleIndex_MatchPattern() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW002', Fun:accept_cmd, CmdType:self-test)",
		"('OBSW001', Fun:send_msg, MsgType:housekeeping)",
	} {
		t, _ := triple.ParseTriple(line)
		store.Add(t, triple.Provenance{})
	}
	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	pat, _ := semtree.ParsePattern("(?, Fun:accept_cmd, ?)")
	matches, err := idx.MatchPattern(context.Background(), pat, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(matches), "matches")
	// Output: 2 matches
}

// ExampleIndex_KNearestIDs shows the inconsistency checker over an
// index: the target triple's neighborhood contains the conflict.
func ExampleIndex_KNearestIDs() {
	store := triple.NewStore()
	req, _ := triple.ParseTriple("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	conflict, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	store.Add(req, triple.Provenance{})
	store.Add(conflict, triple.Provenance{})

	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	reg := vocab.DefaultRegistry()
	checker := reqcheck.NewChecker(idx, reg)
	cands, _, err := checker.Candidates(context.Background(), req, 2)
	if err != nil {
		log.Fatal(err)
	}
	confirmed := checker.Confirmed(req, cands, store)
	fmt.Println(len(confirmed), "confirmed inconsistency")
	// Output: 1 confirmed inconsistency
}

// ExampleSearcher_SearchBatch runs a batch under a deadline and reads
// the per-query outcome: matches, execution stats, per-query error.
func ExampleSearcher_SearchBatch() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:acquire_in, InType:pre-launch_phase)",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:power_amplifier)",
	} {
		t, err := triple.ParseTriple(line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: "OBSW-SRS"})
	}
	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	q1, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	q2, _ := triple.ParseTriple("('OBSW001', Fun:send_msg, MsgType:housekeeping)")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s := idx.Searcher(semtree.WithK(1))
	results, err := s.SearchBatch(ctx, []triple.Triple{q1, q2})
	if err != nil {
		log.Fatal(err) // batch-level: the context expired
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err) // per-query: this query failed or was cut off
		}
		fmt.Printf("%s (protocol %s, %d partitions)\n",
			r.Matches[0].Triple, r.Stats.Protocol, r.Stats.Partitions)
	}
	// Output:
	// ('OBSW001', Fun:accept_cmd, CmdType:start-up) (protocol sequential, 1 partitions)
	// ('OBSW001', Fun:send_msg, MsgType:power_amplifier) (protocol sequential, 1 partitions)
}

// ExampleSearcher_quota runs one tenant under a token-bucket cost
// quota: the tenant burns its burst budget, is throttled with
// ErrQuotaExhausted (before any fabric message is spent), and is
// admitted again once the bucket has refilled.
func ExampleSearcher_quota() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:acquire_in, InType:pre-launch_phase)",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:power_amplifier)",
	} {
		t, err := triple.ParseTriple(line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{Doc: "OBSW-SRS"})
	}
	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// One Searcher per tenant isolates the quota: a 200-unit burst,
	// refilled at 1000 cost units per second (see semtree.CostOf for
	// the cost-unit scale).
	tenant := idx.Searcher(semtree.WithK(1), semtree.WithQuota(200, 1000))
	q, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")

	admitted, throttled := 0, 0
	for i := 0; i < 50; i++ {
		_, err := tenant.Search(context.Background(), q)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, semtree.ErrQuotaExhausted):
			throttled++
		default:
			log.Fatal(err)
		}
	}
	fmt.Println("burst admitted:", admitted > 0)
	fmt.Println("then throttled:", throttled > 0)

	// The bucket refills lazily at the configured rate; after a pause
	// the tenant is served again.
	time.Sleep(300 * time.Millisecond)
	_, err = tenant.Search(context.Background(), q)
	fmt.Println("recovered:", err == nil)
	// Output:
	// burst admitted: true
	// then throttled: true
	// recovered: true
}

// ExampleSearcher_SchedulerStats reads a searcher's scheduler snapshot:
// admission counters and the cumulative metered cost of the tenant's
// traffic.
func ExampleSearcher_SchedulerStats() {
	store := triple.NewStore()
	for _, line := range []string{
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:housekeeping)",
	} {
		t, err := triple.ParseTriple(line)
		if err != nil {
			log.Fatal(err)
		}
		store.Add(t, triple.Provenance{})
	}
	idx, err := semtree.Build(store, semtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	s := idx.Searcher(semtree.WithK(1))
	q1, _ := triple.ParseTriple("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	q2, _ := triple.ParseTriple("('OBSW001', Fun:send_msg, MsgType:power_amplifier)")
	for _, q := range []triple.Triple{q1, q2} {
		if _, err := s.Search(context.Background(), q); err != nil {
			log.Fatal(err)
		}
	}

	st := s.SchedulerStats()
	fmt.Println("admitted:", st.Admitted)
	fmt.Println("rejected:", st.RejectedLoad+st.RejectedBudget+st.RejectedQuota)
	fmt.Println("fabric messages:", st.MeteredFabricMessages)
	fmt.Println("metered cost > 0:", st.MeteredCost > 0)
	// Output:
	// admitted: 2
	// rejected: 0
	// fabric messages: 2
	// metered cost > 0: true
}
