// Command linkcheck verifies the intra-repo links of markdown files:
// every relative `[text](target)` link must point at a file that
// exists, and a `#fragment` on a markdown target must name a heading
// in that file (GitHub anchor slugs). External links (http, https,
// mailto) are skipped — CI must not fail on someone else's outage.
//
// Usage:
//
//	linkcheck README.md ARCHITECTURE.md ROADMAP.md
//
// Exits non-zero listing every broken link. It is the docs gate of CI:
// renaming a file or heading that documentation points at fails the
// build instead of silently stranding readers.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		problems, err := checkFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "%s: %s\n", file, p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

var (
	// linkRe matches inline markdown link targets, with an optional
	// quoted title: ](target) or ](target "title").
	linkRe = regexp.MustCompile(`\]\(\s*([^()\s]+)(?:\s+"[^"]*")?\s*\)`)
	// refDefRe matches reference-style link definitions: [label]: target
	refDefRe = regexp.MustCompile(`^\s*\[[^\]]+\]:\s*(\S+)`)
)

// checkFile returns one message per broken link in the file. Link
// syntax the parser cannot handle (e.g. unescaped parentheses or
// spaces in a target) is reported as a problem rather than silently
// skipped — a link checker that cannot read a link must not pass it.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	links, malformed := extractLinks(string(data))
	var problems []string
	for _, m := range malformed {
		problems = append(problems, fmt.Sprintf("unparseable link syntax on line %s", m))
	}
	for _, target := range links {
		if err := checkLink(path, target); err != nil {
			problems = append(problems, fmt.Sprintf("broken link %q: %v", target, err))
		}
	}
	return problems, nil
}

// extractLinks returns every inline and reference-definition link
// target outside fenced code blocks, in order, plus a description of
// every line whose `](` link syntax the parser could not match.
func extractLinks(md string) (links, malformed []string) {
	fenced := false
	for n, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		stripped := line
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			links = append(links, m[1])
			stripped = strings.Replace(stripped, m[0], "", 1)
		}
		if m := refDefRe.FindStringSubmatch(line); m != nil {
			links = append(links, m[1])
		}
		// Anything that still looks like an inline link did not parse:
		// surface it instead of letting a possibly-broken link pass.
		if strings.Contains(stripped, "](") {
			malformed = append(malformed, fmt.Sprintf("%d: %s", n+1, strings.TrimSpace(line)))
		}
	}
	return links, malformed
}

// checkLink validates one link target relative to the markdown file
// that contains it. External schemes pass; relative targets must
// resolve to an existing file, and markdown fragments must name a
// heading.
func checkLink(from, target string) error {
	lower := strings.ToLower(target)
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(lower, scheme) {
			return nil
		}
	}
	path, fragment, _ := strings.Cut(target, "#")
	resolved := from // a pure #fragment links within the same file
	if path != "" {
		resolved = filepath.Join(filepath.Dir(from), path)
	}
	info, err := os.Stat(resolved)
	if err != nil {
		return fmt.Errorf("target does not exist")
	}
	if fragment == "" {
		return nil
	}
	if info.IsDir() || !strings.HasSuffix(strings.ToLower(resolved), ".md") {
		return nil // fragments into non-markdown targets are not checked
	}
	data, err := os.ReadFile(resolved)
	if err != nil {
		return err
	}
	for _, h := range headings(string(data)) {
		if headingSlug(h) == fragment {
			return nil
		}
	}
	return fmt.Errorf("no heading for fragment %q", fragment)
}

// headings returns the text of every ATX heading outside fenced code
// blocks.
func headings(md string) []string {
	var out []string
	fenced := false
	for _, line := range strings.Split(md, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			fenced = !fenced
			continue
		}
		if fenced || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		out = append(out, strings.TrimSpace(strings.TrimLeft(trimmed, "#")))
	}
	return out
}

// headingSlug converts a heading to its GitHub anchor: lowercase,
// spaces to hyphens, everything but letters, digits, hyphens and
// underscores dropped.
func headingSlug(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			r >= 'a' && r <= 'z',
			r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}
