package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExtractLinksSkipsCodeFences(t *testing.T) {
	md := "see [a](x.md) and [b](y.md#sec)\n```\n[not a link](inside.md)\n```\nand [c](https://example.com)\n" +
		"titled [d](z.md \"a title\")\n[ref]: w.md\n"
	got, malformed := extractLinks(md)
	want := []string{"x.md", "y.md#sec", "https://example.com", "z.md", "w.md"}
	if len(got) != len(want) {
		t.Fatalf("links = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("links = %v, want %v", got, want)
		}
	}
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
}

func TestExtractLinksFlagsUnparseable(t *testing.T) {
	// Targets with spaces or unescaped parentheses don't match the
	// parser; they must be reported, never silently passed.
	md := "bad [a](a b.md)\nworse [b](fig(1).png)\nfine [c](ok.md)\n"
	links, malformed := extractLinks(md)
	if len(links) != 1 || links[0] != "ok.md" {
		t.Fatalf("links = %v, want [ok.md]", links)
	}
	if len(malformed) != 2 {
		t.Fatalf("malformed = %v, want 2 entries", malformed)
	}
}

func TestHeadingSlug(t *testing.T) {
	cases := map[string]string{
		"The admission pipeline":       "the-admission-pipeline",
		"ExecStats and the cost model": "execstats-and-the-cost-model",
		"Multi-tenant quotas":          "multi-tenant-quotas",
		"Layer map":                    "layer-map",
		"CI / tooling":                 "ci--tooling",
	}
	for in, want := range cases {
		if got := headingSlug(in); got != want {
			t.Errorf("headingSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("other.md", "# Real Heading\nbody\n")
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	write("sub/prog.go", "package main\n")

	good := write("good.md", "# Top\n[o](other.md) [h](other.md#real-heading) "+
		"[self](#top) [dir](sub/) [src](sub/prog.go) [ext](https://example.com/x)\n")
	problems, err := checkFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("good file reported broken: %v", problems)
	}

	bad := write("bad.md", "[gone](missing.md) [frag](other.md#no-such-heading) [ok](other.md)\n[odd](a b.md)\n")
	problems, err = checkFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 { // missing file, missing heading, unparseable
		t.Fatalf("broken links = %v, want 3", problems)
	}
}
