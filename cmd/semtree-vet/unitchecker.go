package main

// The -vettool side of semtree-vet. cmd/go drives vet tools with a
// unitchecker-style protocol: after the -V=full / -flags handshake, the
// tool is invoked once per package in dependency order with the path to
// a JSON config describing the compilation unit — source files, the
// import map, and gc export-data files for every dependency. The tool
// must write its "vetx" facts file (ours is empty: these analyzers are
// purely local) and exit 0 on success or nonzero with diagnostics on
// stderr.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"semtree/internal/analysis"
)

// vetConfig mirrors the JSON written by cmd/go for each vet'd package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func unitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "semtree-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependencies are visited only so their (empty) facts file exists;
	// all our analyzers are package-local.
	if cfg.VetxOnly {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintln(os.Stderr, "semtree-vet:", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, resolveExports(&cfg))

	var filenames []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames = append(filenames, f)
	}
	cp, err := analysis.TypeCheck(fset, cfg.ImportPath, filenames, imp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	if len(cp.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return 0
		}
		for _, terr := range cp.TypeErrors {
			fmt.Fprintf(os.Stderr, "%v\n", terr)
		}
		return 1
	}

	diags, err := analysis.Run(fset, cp.Files, cp.Types, cp.Info, analysis.AllAnalyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
		return 2
	}
	return 0
}

// resolveExports flattens the config's two-level import resolution
// (source path → canonical path → export file) into the single map the
// importer consumes, keyed by the path as it appears in source.
func resolveExports(cfg *vetConfig) map[string]string {
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	return exports
}

func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte{}, 0o666)
}
