// Command semtree-vet runs the semtree analyzer suite (internal/analysis):
// custom invariant checkers for context propagation, fabric calls under
// locks, the sort/sqrt client boundary, typed sentinel errors, exact
// region-guard pruning, and the injected-clock seam.
//
// It runs in two modes:
//
//	semtree-vet ./...                 standalone, via `go list -export`
//	go vet -vettool=$(which semtree-vet) ./...   unitchecker protocol
//
// The vettool mode speaks the protocol cmd/go expects of -vettool
// binaries (-V=full, -flags, then one invocation per package with a
// vet.cfg), so semtree-vet slots into `go vet` caching and analyzes
// test files too. Both modes run the identical analyzers.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"semtree/internal/analysis"
)

func main() {
	// The -vettool protocol invokes us as:
	//   semtree-vet -V=full          print a stable tool ID for caching
	//   semtree-vet -flags           print supported flags as JSON
	//   semtree-vet <path>/vet.cfg   analyze one package
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			fmt.Printf("semtree-vet version %s\n", toolID())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitchecker(os.Args[1]))
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// toolID returns a fingerprint of this executable. go vet caches vet
// results keyed on the tool's -V=full output, so the ID must change
// whenever the analyzers change; hashing the binary itself guarantees
// that.
func toolID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// standalone loads patterns via `go list -export` and analyzes each
// matched package from source. Exit codes: 0 clean, 1 usage/load error,
// 2 diagnostics reported.
func standalone(args []string) int {
	flags := flag.NewFlagSet("semtree-vet", flag.ExitOnError)
	list := flags.Bool("list", false, "list analyzers and exit")
	run := flags.String("run", "", "comma-separated analyzer names to run (default: all)")
	flags.Usage = func() {
		fmt.Fprintf(flags.Output(), "usage: semtree-vet [-list] [-run=names] [packages]\n\n")
		fmt.Fprintf(flags.Output(), "Analyzers:\n")
		for _, a := range analysis.AllAnalyzers() {
			fmt.Fprintf(flags.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.AllAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	fset, pkgs, err := analysis.LoadPackages(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtree-vet:", err)
		return 1
	}
	exit := 0
	for _, cp := range pkgs {
		if len(cp.TypeErrors) > 0 {
			for _, terr := range cp.TypeErrors {
				fmt.Fprintf(os.Stderr, "%v\n", terr)
			}
			fmt.Fprintf(os.Stderr, "semtree-vet: %s does not type-check; fix the build first\n", cp.Listed.ImportPath)
			return 1
		}
		diags, err := analysis.Run(fset, cp.Files, cp.Types, cp.Info, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semtree-vet:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			exit = 2
		}
	}
	return exit
}

func selectAnalyzers(run string) ([]*analysis.Analyzer, error) {
	if run == "" {
		return analysis.AllAnalyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
