package main

// End-to-end tests for both drivers against a scratch module, proving
// the acceptance property the CI lint job depends on: deliberately
// reintroducing a context.TODO() in library code or a Fabric.Call
// under a held mutex makes both `semtree-vet ./...` and
// `go vet -vettool=semtree-vet ./...` fail.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles semtree-vet once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	tool := filepath.Join(dir, "semtree-vet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building semtree-vet: %v\n%s", err, out)
	}
	return tool
}

// scratchModule writes a throwaway module; files maps relative path to
// source.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.23\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const fakeCluster = `package cluster

import "context"

type NodeID int

type Fabric interface {
	Call(ctx context.Context, from, to NodeID, req any) (any, error)
	Send(from, to NodeID, req any) error
}
`

// dirtyEngine reintroduces both banned patterns at once.
const dirtyEngine = `package engine

import (
	"context"
	"sync"

	"scratch/cluster"
)

type Partition struct {
	mu  sync.Mutex
	fab cluster.Fabric
}

func (p *Partition) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.fab.Call(context.TODO(), 1, 2, nil)
	return err
}
`

const cleanEngine = `package engine

import (
	"context"

	"scratch/cluster"
)

func Flush(ctx context.Context, fab cluster.Fabric) error {
	_, err := fab.Call(ctx, 1, 2, nil)
	return err
}
`

func runIn(t *testing.T, dir string, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestStandaloneFlagsReintroducedViolations(t *testing.T) {
	tool := buildTool(t)
	dir := scratchModule(t, map[string]string{
		"cluster/cluster.go": fakeCluster,
		"engine/engine.go":   dirtyEngine,
	})
	out, err := runIn(t, dir, tool, "./...")
	if err == nil {
		t.Fatalf("semtree-vet passed a module with known violations:\n%s", out)
	}
	for _, want := range []string{"ctxfirst", "lockedcall", "context.TODO", "fabric Call while p.mu held"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStandalonePassesCleanModule(t *testing.T) {
	tool := buildTool(t)
	dir := scratchModule(t, map[string]string{
		"cluster/cluster.go": fakeCluster,
		"engine/engine.go":   cleanEngine,
	})
	if out, err := runIn(t, dir, tool, "./..."); err != nil {
		t.Fatalf("semtree-vet failed a clean module: %v\n%s", err, out)
	}
}

// TestVettoolProtocol drives the same two modules through
// `go vet -vettool=` — the exact CI invocation.
func TestVettoolProtocol(t *testing.T) {
	tool := buildTool(t)

	dirty := scratchModule(t, map[string]string{
		"cluster/cluster.go": fakeCluster,
		"engine/engine.go":   dirtyEngine,
	})
	out, err := runIn(t, dirty, "go", "vet", "-vettool="+tool, "./...")
	if err == nil {
		t.Fatalf("go vet -vettool passed a module with known violations:\n%s", out)
	}
	for _, want := range []string{"context.TODO", "fabric Call while p.mu held"} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}

	clean := scratchModule(t, map[string]string{
		"cluster/cluster.go": fakeCluster,
		"engine/engine.go":   cleanEngine,
	})
	if out, err := runIn(t, clean, "go", "vet", "-vettool="+tool, "./..."); err != nil {
		t.Fatalf("go vet -vettool failed a clean module: %v\n%s", err, out)
	}
}

// TestSuppressionRequiresJustification: a bare allow directive does not
// suppress; a justified one does.
func TestSuppressionRequiresJustification(t *testing.T) {
	tool := buildTool(t)

	justified := scratchModule(t, map[string]string{
		"lib/lib.go": `package lib

import "context"

func Root() context.Context {
	//semtree:allow ctxfirst: detached maintenance runs to completion by documented contract
	return context.Background()
}
`,
	})
	if out, err := runIn(t, justified, tool, "./..."); err != nil {
		t.Fatalf("justified directive did not suppress: %v\n%s", err, out)
	}

	bare := scratchModule(t, map[string]string{
		"lib/lib.go": `package lib

import "context"

func Root() context.Context {
	//semtree:allow ctxfirst
	return context.Background()
}
`,
	})
	out, err := runIn(t, bare, tool, "./...")
	if err == nil {
		t.Fatalf("bare directive suppressed without a justification:\n%s", out)
	}
	if !strings.Contains(out, "needs a justification") {
		t.Errorf("output missing the justification diagnostic:\n%s", out)
	}
}
