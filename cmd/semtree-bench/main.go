// Command semtree-bench regenerates the paper's evaluation — every
// figure (3–8), the §III-C complexity check, the design ablations —
// plus the batched-query throughput experiment of the concurrent query
// engine.
//
// Usage:
//
//	semtree-bench -fig all
//	semtree-bench -fig fig3 -sizes 10000,20000,50000,100000 -partitions 1,3,5,9
//	semtree-bench -fig fig8 -csv out/
//	semtree-bench -fig throughput -parallel 8 -batch 64
//	semtree-bench -fig deadline -deadline 1ms -latency 200µs
//	semtree-bench -fig scheduler -hops 0,1ms,10ms,50ms
//	semtree-bench -fig quota -tenants 2
//	semtree-bench -fig serve -frontends 2
//	semtree-bench -fig pruning -dims 2,4,8,16,32
//	semtree-bench -fig placement -partitions 1,5 -dims 2,4,8,16
//	semtree-bench -fig churn -sizes 10000,50000 -mixes 10,50,90
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"semtree/internal/bench"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment to run: all, "+strings.Join(bench.RunnerIDs(), ", "))
		sizes      = flag.String("sizes", "", "comma-separated point counts (default 5000,10000,20000,40000,80000)")
		partitions = flag.String("partitions", "", "comma-separated partition counts (default 1,3,5,9)")
		queries    = flag.Int("queries", 0, "queries per measurement (default 200)")
		k          = flag.Int("k", 0, "k-nearest K (default 3)")
		rangeD     = flag.Float64("d", 0, "range query radius (default 0.2)")
		latency    = flag.Duration("latency", 0, "simulated per-hop latency (default 200µs)")
		parallel   = flag.Int("parallel", 0, "batched-query workers for the throughput experiment (default GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "queries per batched call in the throughput experiment (default: whole workload)")
		deadline   = flag.Duration("deadline", 0, "per-query deadline for the deadline experiment: reports p50/p99 latency and the fraction of queries cut off (default 8x latency)")
		hops       = flag.String("hops", "", "comma-separated per-hop latencies for the scheduler experiment, e.g. 0,1ms,50ms (default 0,1ms,5ms,20ms,50ms)")
		tenants    = flag.Int("tenants", 0, "tenant count for the quota experiment: 1 quota-throttled aggressor plus N-1 unthrottled victims (default 2)")
		frontends  = flag.Int("frontends", 0, "front-end count for the serve experiment's fleet (default 2)")
		dims       = flag.String("dims", "", "comma-separated dimensionalities for the pruning and placement experiments, e.g. 2,4,8,16 (default 2,4,8,16)")
		mixes      = flag.String("mixes", "", "comma-separated insert percentages for the churn experiment, e.g. 10,50,90 (default 10,50,90)")
		seed       = flag.Int64("seed", 1, "workload seed")
		csvDir     = flag.String("csv", "", "also write <dir>/<fig>.csv")
	)
	flag.Parse()

	params := bench.Params{
		Queries:   *queries,
		K:         *k,
		RangeD:    *rangeD,
		Latency:   *latency,
		Parallel:  *parallel,
		Batch:     *batch,
		Deadline:  *deadline,
		Tenants:   *tenants,
		Frontends: *frontends,
		Seed:      *seed,
	}
	var err error
	if params.Sizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	if params.Partitions, err = parseInts(*partitions); err != nil {
		fatal(err)
	}
	if params.Hops, err = parseDurations(*hops); err != nil {
		fatal(err)
	}
	if params.DimsSweep, err = parseInts(*dims); err != nil {
		fatal(err)
	}
	if params.Mixes, err = parseInts(*mixes); err != nil {
		fatal(err)
	}

	runners := bench.Runners()
	var ids []string
	if *fig == "all" {
		ids = bench.RunnerIDs()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(bench.RunnerIDs(), ", ")))
			}
			ids = append(ids, id)
		}
	}

	// Per-figure wall time brackets each run (announced up front,
	// reported on completion — and on failure, where a nightly job
	// needs it most) so CI logs show where a job's time budget goes.
	// The cancellation root for every runner: ^C interrupts a long sweep
	// instead of orphaning it. Runners thread this context down to each
	// KNearest/RangeSearch call.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, id := range ids {
		fmt.Printf("running %s...\n", id)
		start := time.Now()
		figure, err := runners[id](ctx, params)
		if err != nil {
			fmt.Printf("(%s failed after %v)\n", id, time.Since(start).Round(time.Millisecond))
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(figure.Table())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, figure.ID+".csv")
			if err := os.WriteFile(path, []byte(figure.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad duration list %q: %w", s, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semtree-bench:", err)
	os.Exit(1)
}
