package main

import (
	"reflect"
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 3,5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("parseInts = %v", got)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseDurations(t *testing.T) {
	got, err := parseDurations("0, 1ms,50ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, time.Millisecond, 50 * time.Millisecond}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseDurations = %v, want %v", got, want)
	}
	if got, err := parseDurations(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	if _, err := parseDurations("1ms,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}
