package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 3,5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("parseInts = %v", got)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}
