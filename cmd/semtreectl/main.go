// Command semtreectl builds a SemTree index over a triples file and
// answers ad-hoc queries from the command line.
//
// Usage:
//
//	semtreectl -triples corpus.txt -query "('OBSW001', Fun:block_cmd, CmdType:start-up)" -k 5
//	semtreectl -triples corpus.txt -query "(...)" -range 0.25
//	semtreectl -triples corpus.txt -check "('OBSW001', Fun:accept_cmd, CmdType:start-up)" -k 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func main() {
	var (
		triplesPath = flag.String("triples", "", "path to a triples file (one Turtle-like triple per line)")
		query       = flag.String("query", "", "query triple for k-nearest / range search")
		pattern     = flag.String("pattern", "", "pattern query, '?' for wildcards: \"(?, Fun:accept_cmd, ?)\"")
		check       = flag.String("check", "", "requirement triple to check for inconsistencies")
		k           = flag.Int("k", 5, "result count for k-nearest")
		rangeD      = flag.Float64("range", 0, "range radius (range query with -query, bound-position radius with -pattern)")
		measure     = flag.String("measure", "", "concept measure (default wupalmer)")
		partitions  = flag.Int("partitions", 1, "number of index partitions")
		seed        = flag.Int64("seed", 1, "FastMap seed")
		vocabPaths  multiFlag
	)
	flag.Var(&vocabPaths, "vocab", "extra vocabulary file (repeatable; see internal/vocab/io.go format)")
	flag.Parse()
	if *triplesPath == "" {
		fatal(fmt.Errorf("-triples is required"))
	}
	modes := 0
	for _, m := range []string{*query, *check, *pattern} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fatal(fmt.Errorf("exactly one of -query, -pattern or -check is required"))
	}

	reg := vocab.DefaultRegistry()
	for _, path := range vocabPaths {
		vf, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		v, err := vocab.ParseVocabulary(vf)
		vf.Close()
		if err != nil {
			fatal(err)
		}
		if err := reg.Register(v); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded vocabulary %s (%d concepts)\n", v.Prefix(), v.Len())
	}

	f, err := os.Open(*triplesPath)
	if err != nil {
		fatal(err)
	}
	ts, err := triple.ReadAll(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	store := triple.NewStore()
	store.AddAll(ts, triple.Provenance{Doc: *triplesPath})

	opts := semtree.Options{Registry: reg, Measure: *measure, Seed: *seed, MaxPartitions: *partitions}
	if *partitions > 1 {
		opts.PartitionCapacity = store.Len() / *partitions
	}
	idx, err := semtree.Build(store, opts)
	if err != nil {
		fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d triples in %d partition(s)\n", idx.Len(), idx.PartitionCount())

	switch {
	case *pattern != "":
		pat, err := semtree.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		matches, err := idx.MatchPattern(context.Background(), pat, *rangeD, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pattern %s (radius %.2f, limit %d):\n", pat, *rangeD, *k)
		for _, m := range matches {
			fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
		}
	case *check != "":
		req, err := triple.ParseTriple(*check)
		if err != nil {
			fatal(err)
		}
		checker := reqcheck.NewChecker(idx, reg)
		cands, ok, err := checker.Candidates(context.Background(), req, *k)
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("predicate has no antinomy in the vocabulary: nothing to check")
			return
		}
		confirmed := checker.Confirmed(req, cands, store)
		fmt.Printf("candidates (K=%d): %d, confirmed inconsistencies: %d\n", *k, len(cands), len(confirmed))
		for _, id := range confirmed {
			e, _ := store.Get(id)
			fmt.Printf("  CONFLICT %s\n", e.Triple)
		}
	default:
		q, err := triple.ParseTriple(*query)
		if err != nil {
			fatal(err)
		}
		var matches []semtree.Match
		if *rangeD > 0 {
			matches, err = idx.Range(context.Background(), q, *rangeD)
		} else {
			matches, err = idx.KNearest(context.Background(), q, *k)
		}
		if err != nil {
			fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("  %.4f  %s\n", m.Dist, m.Triple)
		}
	}
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semtreectl:", err)
	os.Exit(1)
}
