package main

import "testing"

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b.txt"); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0] != "a.txt" || m[1] != "b.txt" {
		t.Fatalf("multiFlag = %v", m)
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}
