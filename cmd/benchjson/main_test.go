package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: semtree
BenchmarkKNearestBatch/loop-8         	       5	  1000000 ns/op
BenchmarkKNearestBatch/loop-8         	       5	  2000000 ns/op
BenchmarkKNearestBatch/batch-8        	       5	   500000 ns/op	     120 B/op
BenchmarkKNearestBalanced-16          	     100	     1234.5 ns/op
PASS
ok  	semtree	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -procs suffix must be stripped, sub-benchmark paths kept.
	loop := got["BenchmarkKNearestBatch/loop"]
	if len(loop) != 2 || loop[0] != 1e6 || loop[1] != 2e6 {
		t.Fatalf("loop samples = %v", loop)
	}
	if xs := got["BenchmarkKNearestBalanced"]; len(xs) != 1 || xs[0] != 1234.5 {
		t.Fatalf("fractional ns/op samples = %v", xs)
	}
}

func TestSummarizeGeomean(t *testing.T) {
	samples, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := summarize(samples)
	// geomean(1e6, 2e6) = sqrt(2)e6.
	want := math.Sqrt2 * 1e6
	if got := b.NsPerOp["BenchmarkKNearestBatch/loop"]; math.Abs(got-want) > 1 {
		t.Fatalf("geomean = %f, want %f", got, want)
	}
}

func TestCompareGate(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{
		"A": 100, "B": 200, "Gone": 50,
	}}
	cur := Baseline{NsPerOp: map[string]float64{
		"A": 110, "B": 260, "New": 10,
	}}
	reports, overall, missing := compare(cur, base)
	if len(reports) != 2 || reports[0].Name != "A" || reports[1].Name != "B" {
		t.Fatalf("reports = %+v", reports)
	}
	// geomean(1.1, 1.3) ≈ 1.196: passes a 25% gate, fails a 15% one.
	want := math.Sqrt(1.1 * 1.3)
	if math.Abs(overall-want) > 1e-9 {
		t.Fatalf("overall = %f, want %f", overall, want)
	}
	if overall > 1.25 {
		t.Fatalf("ratio %f should pass the default 25%% gate", overall)
	}
	if overall <= 1.15 {
		t.Fatalf("ratio %f should fail a 15%% gate", overall)
	}
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Fatalf("missing = %v", missing)
	}
}

func TestGeomeanDegenerate(t *testing.T) {
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
	if g := geomean([]float64{1, 0, 2}); g != 0 {
		t.Fatalf("geomean with zero sample = %f", g)
	}
}
