package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: semtree
BenchmarkKNearestBatch/loop-8         	       5	  1000000 ns/op
BenchmarkKNearestBatch/loop-8         	       5	  2000000 ns/op
BenchmarkKNearestBatch/batch-8        	       5	   500000 ns/op	     120 B/op
BenchmarkKNearestBalanced-16          	     100	     1234.5 ns/op
PASS
ok  	semtree	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -procs suffix must be stripped, sub-benchmark paths kept.
	loop := got["BenchmarkKNearestBatch/loop"]
	if len(loop) != 2 || loop[0] != 1e6 || loop[1] != 2e6 {
		t.Fatalf("loop samples = %v", loop)
	}
	if xs := got["BenchmarkKNearestBalanced"]; len(xs) != 1 || xs[0] != 1234.5 {
		t.Fatalf("fractional ns/op samples = %v", xs)
	}
}

func TestSummarizeGeomean(t *testing.T) {
	samples, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := summarize(samples)
	// geomean(1e6, 2e6) = sqrt(2)e6.
	want := math.Sqrt2 * 1e6
	if got := b.NsPerOp["BenchmarkKNearestBatch/loop"]; math.Abs(got-want) > 1 {
		t.Fatalf("geomean = %f, want %f", got, want)
	}
}

func TestCompareGate(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{
		"A": 100, "B": 200, "Gone": 50,
	}}
	cur := Baseline{NsPerOp: map[string]float64{
		"A": 110, "B": 260, "New": 10,
	}}
	reports, overall, missing := compare(cur, base)
	if len(reports) != 2 || reports[0].Name != "A" || reports[1].Name != "B" {
		t.Fatalf("reports = %+v", reports)
	}
	// geomean(1.1, 1.3) ≈ 1.196: passes a 25% gate, fails a 15% one.
	want := math.Sqrt(1.1 * 1.3)
	if math.Abs(overall-want) > 1e-9 {
		t.Fatalf("overall = %f, want %f", overall, want)
	}
	if overall > 1.25 {
		t.Fatalf("ratio %f should pass the default 25%% gate", overall)
	}
	if overall <= 1.15 {
		t.Fatalf("ratio %f should fail a 15%% gate", overall)
	}
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Fatalf("missing = %v", missing)
	}
}

const sampleCSV = `dims,rr parts/q,placed parts/q,rr msgs/q,placed msgs/q
2,3.48,3.50,3.48,3.30
4,4.33,4.05,4.33,4.05
8,4.65,4.30,4.65,4.30
16,4.90,4.80,4.90,4.80
`

func mustCSV(t *testing.T, s string) *figureCSV {
	t.Helper()
	f, err := parseFigureCSV(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseFigureCSV(t *testing.T) {
	f := mustCSV(t, sampleCSV)
	if f.xLabel != "dims" || len(f.names) != 4 || len(f.xs) != 4 {
		t.Fatalf("parsed %q / %v / %v", f.xLabel, f.names, f.xs)
	}
	if f.xs[2] != 8 || f.rows[2][1] != "4.30" {
		t.Fatalf("row 2 = x %g cells %v", f.xs[2], f.rows[2])
	}
	if _, err := parseFigureCSV(strings.NewReader("dims,a\n8,1,2\n")); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := parseFigureCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestCheckStructural(t *testing.T) {
	f := mustCSV(t, sampleCSV)
	// parts/q: placed beats rr only from dims 4 on (the dims-2 row was
	// made a violation above), so the gate must depend on min-x.
	if n, err := checkStructural(f, "placed parts/q<rr parts/q", 4); err != nil || n != 3 {
		t.Fatalf("min-x 4: n=%d err=%v", n, err)
	}
	if _, err := checkStructural(f, "placed parts/q<rr parts/q", math.Inf(-1)); err == nil {
		t.Fatal("dims-2 violation not caught without min-x")
	}
	// msgs/q holds everywhere.
	if n, err := checkStructural(f, "placed msgs/q<rr msgs/q", math.Inf(-1)); err != nil || n != 4 {
		t.Fatalf("msgs gate: n=%d err=%v", n, err)
	}
	// Equality is a violation: the gate is strict.
	eq := mustCSV(t, "dims,a,b\n8,2.00,2.00\n")
	if _, err := checkStructural(eq, "a<b", 0); err == nil {
		t.Fatal("equal values passed a strict gate")
	}
	// A require that filters away every row must not silently pass.
	if n, err := checkStructural(f, "placed msgs/q<rr msgs/q", 32); err != nil || n != 0 {
		t.Fatalf("empty filter: n=%d err=%v", n, err)
	}
	// Unknown columns and malformed expressions are errors, not no-ops.
	if _, err := checkStructural(f, "nope<rr msgs/q", 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := checkStructural(f, "just-one-side", 0); err == nil {
		t.Fatal("expression without < accepted")
	}
	// Series names keep their spaces; stray padding around < is trimmed.
	if n, err := checkStructural(f, "placed msgs/q < rr msgs/q", 8); err != nil || n != 2 {
		t.Fatalf("padded expression: n=%d err=%v", n, err)
	}
	// An empty cell (series without a point at that X) is an error.
	gap := mustCSV(t, "dims,a,b\n8,,2.00\n")
	if _, err := checkStructural(gap, "a<b", 0); err == nil {
		t.Fatal("empty cell accepted")
	}
}

func TestGeomeanDegenerate(t *testing.T) {
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
	if g := geomean([]float64{1, 0, 2}); g != 0 {
		t.Fatalf("geomean with zero sample = %f", g)
	}
}
