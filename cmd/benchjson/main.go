// Command benchjson turns `go test -bench` output into a JSON summary
// and gates benchmark regressions against a committed baseline. It is
// the CI bench-regression gate:
//
//	go test -run '^$' -bench 'BenchmarkKNearest|BenchmarkKNearestBatch' \
//	    -benchtime=5x -count=3 ./... | benchjson -out BENCH_ci.json \
//	    -baseline BENCH_baseline.json -max-regress 0.25
//
// Per benchmark name (with the GOMAXPROCS suffix stripped, so runs on
// machines with different core counts compare), the ns/op of repeated
// -count runs are reduced to their geometric mean and written to -out.
// With -baseline, the run is compared to the committed baseline: the
// geometric mean of the per-benchmark ns/op ratios (current/baseline)
// must not exceed 1 + max-regress, or the command exits non-zero. The
// geomean gate means a single noisy benchmark cannot fail the build on
// its own, but a broad slowdown — or a large one in any hot path —
// does.
//
// Updating the baseline: download the BENCH_ci.json artifact from a
// green CI run on main (the baseline must come from the same runner
// class that enforces the gate, not from a developer machine) and
// commit it as BENCH_baseline.json.
//
// Structural mode gates figure *shapes* instead of wall times:
//
//	benchjson -structural figures/placement.csv -min-x 8 \
//	    -require 'placed parts/q<rr parts/q' \
//	    -require 'placed msgs/q<rr msgs/q'
//
// The CSV is a semtree-bench figure export (first column the X axis,
// one column per series). Each -require names two series columns; every
// row with X >= min-x must satisfy the strict inequality or the command
// exits non-zero. Structural metrics — partitions touched, fabric
// messages — are deterministic per seed, so unlike ns/op they gate
// exactly, with no noise margin; a single violated row fails the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the JSON schema of BENCH_baseline.json / BENCH_ci.json.
type Baseline struct {
	// NsPerOp maps benchmark name (procs suffix stripped) to the
	// geometric mean ns/op across the run's -count repetitions.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkKNearestBatch/loop-8   5   123456 ns/op   12 B/op
//
// capturing the name (with -procs suffix) and the ns/op value.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9]+(?:\.[0-9]+)?) ns/op`)

// procsSuffix is the trailing -N GOMAXPROCS marker appended to
// benchmark names by the testing package.
var procsSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseBench collects ns/op samples per benchmark name from go test
// -bench output.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var ns float64
		if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
			continue
		}
		name := procsSuffix.ReplaceAllString(m[1], "")
		out[name] = append(out[name], ns)
	}
	return out, sc.Err()
}

// geomean returns the geometric mean of xs (0 for an empty or
// degenerate input).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// summarize reduces parsed samples to one geomean ns/op per benchmark.
func summarize(samples map[string][]float64) Baseline {
	b := Baseline{NsPerOp: make(map[string]float64, len(samples))}
	for name, xs := range samples {
		b.NsPerOp[name] = geomean(xs)
	}
	return b
}

// ratioReport is the per-benchmark comparison against a baseline.
type ratioReport struct {
	Name            string
	Base, Cur, Rate float64
}

// compare returns the per-benchmark current/baseline ratios (sorted by
// name) for benchmarks present in both, plus the geomean of those
// ratios. Benchmarks present on only one side are skipped — a renamed
// or new benchmark must not fail the gate — and reported via missing.
func compare(cur, base Baseline) (reports []ratioReport, overall float64, missing []string) {
	var ratios []float64
	for name, b := range base.NsPerOp {
		c, ok := cur.NsPerOp[name]
		if !ok || b <= 0 || c <= 0 {
			missing = append(missing, name)
			continue
		}
		reports = append(reports, ratioReport{Name: name, Base: b, Cur: c, Rate: c / b})
		ratios = append(ratios, c/b)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Name < reports[j].Name })
	sort.Strings(missing)
	return reports, geomean(ratios), missing
}

// requireFlag collects repeated -require "left<right" expressions.
type requireFlag []string

func (r *requireFlag) String() string { return strings.Join(*r, "; ") }
func (r *requireFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// figureCSV is a parsed semtree-bench figure export: the header's first
// cell is the X-axis label, the rest are series names; each row is an X
// value followed by one cell per series (possibly empty where a series
// has no point at that X).
type figureCSV struct {
	xLabel string
	names  []string
	xs     []float64
	rows   [][]string // cells per row, aligned with names
}

// parseFigureCSV reads a figure CSV. Figure exports never quote cells
// (series names carry no commas), so a plain split is exact.
func parseFigureCSV(r io.Reader) (*figureCSV, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 2 {
		return nil, fmt.Errorf("CSV header has no series columns: %q", sc.Text())
	}
	f := &figureCSV{xLabel: header[0], names: header[1:]}
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			return nil, fmt.Errorf("CSV row has %d cells, header has %d: %q", len(cells), len(header), line)
		}
		x, err := strconv.ParseFloat(cells[0], 64)
		if err != nil {
			return nil, fmt.Errorf("CSV row X %q: %w", cells[0], err)
		}
		f.xs = append(f.xs, x)
		f.rows = append(f.rows, cells[1:])
	}
	return f, sc.Err()
}

// column returns the index of the named series, or an error listing the
// columns that do exist — the require expressions are a contract with
// the figure runner's series names, and a silent miss would gate
// nothing.
func (f *figureCSV) column(name string) (int, error) {
	for i, n := range f.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no series %q in CSV (have: %s)", name, strings.Join(f.names, ", "))
}

// checkStructural enforces one -require expression "left<right" over
// every row with X >= minX: strict inequality, any violation or an
// unparseable/absent cell is an error. Returns the number of rows
// checked so the caller can reject a gate that matched nothing.
func checkStructural(f *figureCSV, expr string, minX float64) (checked int, err error) {
	left, right, ok := strings.Cut(expr, "<")
	if !ok {
		return 0, fmt.Errorf("require %q: want the form \"left<right\"", expr)
	}
	li, err := f.column(strings.TrimSpace(left))
	if err != nil {
		return 0, err
	}
	ri, err := f.column(strings.TrimSpace(right))
	if err != nil {
		return 0, err
	}
	for i, x := range f.xs {
		if x < minX {
			continue
		}
		lv, err := strconv.ParseFloat(f.rows[i][li], 64)
		if err != nil {
			return checked, fmt.Errorf("%s=%g: column %q: %w", f.xLabel, x, f.names[li], err)
		}
		rv, err := strconv.ParseFloat(f.rows[i][ri], 64)
		if err != nil {
			return checked, fmt.Errorf("%s=%g: column %q: %w", f.xLabel, x, f.names[ri], err)
		}
		if !(lv < rv) {
			return checked, fmt.Errorf("%s=%g: %s = %g, not below %s = %g",
				f.xLabel, x, f.names[li], lv, f.names[ri], rv)
		}
		checked++
	}
	return checked, nil
}

// runStructural is the -structural entry point: parse the figure CSV,
// enforce every -require over the rows at or past -min-x.
func runStructural(path string, requires []string, minX float64) error {
	if len(requires) == 0 {
		return fmt.Errorf("-structural needs at least one -require expression")
	}
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	f, err := parseFigureCSV(file)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	for _, expr := range requires {
		n, err := checkStructural(f, expr, minX)
		if err != nil {
			return fmt.Errorf("%s: require %q: %w", path, expr, err)
		}
		if n == 0 {
			return fmt.Errorf("%s: require %q checked no rows (min-x %g, max %s %g)",
				path, expr, minX, f.xLabel, maxX(f.xs))
		}
		fmt.Printf("benchjson: %s: require %q holds on %d row(s) with %s >= %g\n",
			path, expr, n, f.xLabel, minX)
	}
	return nil
}

func maxX(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func main() {
	var (
		out        = flag.String("out", "", "write the run's JSON summary to this path")
		baseline   = flag.String("baseline", "", "compare against this committed baseline JSON (empty: no gate)")
		maxRegress = flag.Float64("max-regress", 0.25, "fail when the geomean ns/op ratio exceeds 1 + this fraction")
		structural = flag.String("structural", "", "gate a figure CSV's shape instead of reading bench output from stdin")
		minX       = flag.Float64("min-x", math.Inf(-1), "with -structural, enforce -require only on rows with X >= this")
		requires   requireFlag
	)
	flag.Var(&requires, "require", "with -structural, a \"left<right\" series inequality to enforce (repeatable)")
	flag.Parse()

	if *structural != "" {
		if err := runStructural(*structural, requires, *minX); err != nil {
			fatal(err)
		}
		return
	}
	if len(requires) > 0 {
		fatal(fmt.Errorf("-require needs -structural"))
	}

	samples, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	cur := summarize(samples)
	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(cur.NsPerOp))
	}
	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baseline, err))
	}
	reports, overall, missing := compare(cur, base)
	for _, r := range reports {
		fmt.Printf("benchjson: %-50s %12.0f -> %12.0f ns/op (x%.3f)\n", r.Name, r.Base, r.Cur, r.Rate)
	}
	for _, name := range missing {
		fmt.Printf("benchjson: warning: baseline benchmark %q missing from this run\n", name)
	}
	if len(reports) == 0 {
		fatal(fmt.Errorf("no benchmarks shared with baseline %s", *baseline))
	}
	limit := 1 + *maxRegress
	fmt.Printf("benchjson: geomean ratio x%.3f (limit x%.3f)\n", overall, limit)
	if overall > limit {
		fatal(fmt.Errorf("benchmark regression: geomean ns/op ratio %.3f exceeds %.3f", overall, limit))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
