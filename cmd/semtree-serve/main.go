// Command semtree-serve runs the networked serving tier: a standalone
// server hosting per-tenant Searchers behind the serve wire protocol,
// a fleet-quota allocator, and a load-generator client for smoke tests
// and benchmarks.
//
// Usage:
//
//	semtree-serve serve -addr 127.0.0.1:7343 -synth 5000 -tenant 'bench:bench-token'
//	semtree-serve serve -triples corpus.txt -tenant 'ops:s3cret:admin' -snapshot /var/lib/semtree/index.snap
//	semtree-serve serve -addr 127.0.0.1:0 -addr-file /tmp/serve.addr \
//	    -tenant 'acme:tok:quota=2000/500' -frontend-id fe0 -allocator 127.0.0.1:7344 -allocator-token fleet
//	semtree-serve alloc -addr 127.0.0.1:7344 -token fleet -tenant 'acme:2000/500'
//	semtree-serve loadgen -addr 127.0.0.1:7343 -token bench-token -mode closed -workers 4 -duration 5s
//	semtree-serve loadgen -addr 127.0.0.1:7343 -token bench-token -mode open -rate 200 -duration 10s
//
// A SIGTERM (or ^C) drains the server gracefully: the listener closes,
// in-flight requests finish and get their responses, late requests are
// refused with the typed retryable draining error, and the process
// reports its counters before exiting. Zero admitted requests are
// dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	semtree "semtree"
	"semtree/internal/serve"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: semtree-serve <serve|alloc|loadgen> [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "alloc":
		err = runAlloc(os.Args[2:])
	case "loadgen":
		err = runLoadgen(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (have serve, alloc, loadgen)", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7343", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile   = fs.String("addr-file", "", "write the bound address here once listening (for scripted clients)")
		triples    = fs.String("triples", "", "triples file to index (one Turtle-like triple per line)")
		synthN     = fs.Int("synth", 5000, "index a synthetic workload of N triples instead of -triples")
		seed       = fs.Int64("seed", 1, "build / synthetic-workload seed")
		partitions = fs.Int("partitions", 4, "number of index partitions")
		defaultK   = fs.Int("k", 3, "default K configured on every tenant (a request overrides it)")
		snapshot   = fs.String("snapshot", "", "snapshot path for the admin save endpoint (empty disables it)")
		frontendID = fs.String("frontend-id", "", "this front-end's name in fleet lease reports")
		allocAddr  = fs.String("allocator", "", "fleet-quota allocator address (empty = local quotas only)")
		allocTok   = fs.String("allocator-token", "", "allocator auth token")
		leaseIvl   = fs.Duration("lease-interval", 0, "lease report/renew period (default 200ms)")
		drainTime  = fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain")
		tenantSpec multiFlag
	)
	fs.Var(&tenantSpec, "tenant", "tenant spec 'name:token[:admin][:quota=CAP/REFILL]' (repeatable; required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := parseTenants(tenantSpec, *defaultK)
	if err != nil {
		return err
	}

	store := triple.NewStore()
	if *triples != "" {
		f, err := os.Open(*triples)
		if err != nil {
			return err
		}
		ts, err := triple.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		store.AddAll(ts, triple.Provenance{Doc: *triples})
	} else {
		gen := synth.New(synth.Config{Seed: *seed, Actors: 200}, nil)
		for i, tr := range gen.Triples(*synthN) {
			store.Add(tr, triple.Provenance{Doc: "synth", Section: "sec", Seq: i})
		}
	}
	opts := semtree.Options{Seed: *seed, MaxPartitions: *partitions}
	if *partitions > 1 {
		opts.PartitionCapacity = store.Len() / *partitions
	}
	idx, err := semtree.Build(store, opts)
	if err != nil {
		return err
	}
	defer idx.Close()
	fmt.Printf("semtree-serve: indexed %d triples in %d partition(s)\n", idx.Len(), idx.PartitionCount())

	srv, err := serve.NewServer(serve.Config{
		Index:          idx,
		Tenants:        tenants,
		SnapshotPath:   *snapshot,
		FrontEndID:     *frontendID,
		AllocatorAddr:  *allocAddr,
		AllocatorToken: *allocTok,
		LeaseInterval:  *leaseIvl,
	})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if err := announce(*addrFile, lis); err != nil {
		return err
	}
	fmt.Printf("semtree-serve: listening on %s (%d tenant(s))\n", lis.Addr(), len(tenants))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.WithoutCancel(ctx), lis) }()

	select {
	case err := <-serveDone:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	fmt.Println("semtree-serve: draining...")
	dctx, dcancel := context.WithTimeout(context.WithoutCancel(ctx), *drainTime)
	defer dcancel()
	drainErr := srv.Drain(dctx)
	<-serveDone
	st := srv.Stats()
	if drainErr != nil {
		fmt.Printf("semtree-serve: drain timed out: served=%d rejected_draining=%d conns=%d snapshots=%d\n",
			st.Served, st.RejectedDraining, st.Conns, st.Snapshots)
		return drainErr
	}
	fmt.Printf("semtree-serve: drained clean: served=%d rejected_draining=%d conns=%d snapshots=%d\n",
		st.Served, st.RejectedDraining, st.Conns, st.Snapshots)
	return nil
}

func runAlloc(args []string) error {
	fs := flag.NewFlagSet("alloc", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7344", "listen address")
		addrFile   = fs.String("addr-file", "", "write the bound address here once listening")
		token      = fs.String("token", "", "auth token front-ends must present (required)")
		ttl        = fs.Duration("ttl", 0, "lease TTL: a front-end silent this long returns its share (default 2s)")
		tenantSpec multiFlag
	)
	fs.Var(&tenantSpec, "tenant", "fleet quota spec 'name:CAP/REFILL' in cost units (repeatable; required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *token == "" {
		return fmt.Errorf("alloc: -token is required")
	}
	fleet := make(map[string]semtree.QuotaConfig, len(tenantSpec))
	for _, spec := range tenantSpec {
		name, q, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("alloc: bad -tenant %q (want 'name:CAP/REFILL')", spec)
		}
		qc, err := parseQuota(q)
		if err != nil {
			return fmt.Errorf("alloc: bad -tenant %q: %w", spec, err)
		}
		fleet[name] = qc
	}
	if len(fleet) == 0 {
		return fmt.Errorf("alloc: at least one -tenant is required")
	}

	alloc := serve.NewAllocator(serve.AllocatorConfig{Token: *token, Tenants: fleet, TTL: *ttl})
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if err := announce(*addrFile, lis); err != nil {
		return err
	}
	fmt.Printf("semtree-serve: allocator listening on %s (%d managed tenant(s))\n", lis.Addr(), len(fleet))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := alloc.Serve(ctx, lis); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	fmt.Println("semtree-serve: allocator stopped")
	return nil
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7343", "server address")
		token    = fs.String("token", "", "tenant auth token (required)")
		mode     = fs.String("mode", "closed", "arrival model: closed (workers loop) or open (fixed-rate arrivals)")
		workers  = fs.Int("workers", 4, "closed-loop worker count")
		rate     = fs.Float64("rate", 100, "open-loop arrival rate (queries per second)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load")
		k        = fs.Int("k", 0, "per-request K override (0 = the tenant's default)")
		queryN   = fs.Int("queries", 200, "distinct synthetic queries to cycle through")
		qseed    = fs.Int64("seed", 2, "query workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *token == "" {
		return fmt.Errorf("loadgen: -token is required")
	}
	gen := synth.New(synth.Config{Seed: *qseed, Actors: 200}, nil)
	queries := make([]triple.Triple, *queryN)
	for i := range queries {
		queries[i] = gen.RandomTriple()
	}
	var opts []semtree.SearchOption
	if *k > 0 {
		opts = append(opts, semtree.WithK(*k))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl, err := serve.Dial(ctx, *addr, *token)
	if err != nil {
		return err
	}
	defer cl.Close()

	var (
		mu        sync.Mutex
		completed int
		rejected  int // quota-rejected
		refused   int // draining-refused
		failed    int
		lastErr   error
		walls     []time.Duration
	)
	record := func(wall time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			completed++
			walls = append(walls, wall)
		case errors.Is(err, semtree.ErrQuotaExhausted):
			rejected++
		case errors.Is(err, serve.ErrDraining):
			refused++
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The run was cut off mid-request; not a server failure.
		default:
			failed++
			lastErr = err
		}
	}
	issue := func(i int) {
		t0 := time.Now()
		_, err := cl.Search(ctx, queries[i%len(queries)], opts...)
		record(time.Since(t0), err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		// Closed loop: each worker issues its next query as soon as the
		// previous answer lands — throughput is completion-coupled.
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Since(start) < *duration && ctx.Err() == nil; i += *workers {
					issue(i)
				}
			}(w)
		}
	case "open":
		// Open loop: arrivals at a fixed rate regardless of completions,
		// the model that exposes queueing collapse a closed loop hides.
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			return fmt.Errorf("loadgen: -rate %v is too high", *rate)
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for i := 0; time.Since(start) < *duration; i++ {
			select {
			case <-ticker.C:
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					issue(i)
				}(i)
			case <-ctx.Done():
				i = *queryN // interrupted: stop arrivals, drain in-flight below
			}
			if ctx.Err() != nil {
				break
			}
		}
	default:
		return fmt.Errorf("loadgen: unknown -mode %q (want closed or open)", *mode)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	pct := func(p float64) time.Duration {
		if len(walls) == 0 {
			return 0
		}
		i := int(p * float64(len(walls)-1))
		return walls[i]
	}
	fmt.Printf("loadgen: mode=%s elapsed=%v completed=%d qps=%.1f quota_rejected=%d drain_refused=%d errors=%d p50=%v p99=%v\n",
		*mode, elapsed.Round(time.Millisecond), completed, float64(completed)/elapsed.Seconds(),
		rejected, refused, failed, pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	if failed > 0 {
		return fmt.Errorf("loadgen: %d request(s) failed, last: %w", failed, lastErr)
	}
	if completed == 0 {
		return fmt.Errorf("loadgen: zero requests completed")
	}
	return nil
}

// parseTenants turns -tenant specs into serve tenant configs, giving
// every tenant the shared default K.
func parseTenants(specs multiFlag, defaultK int) ([]serve.TenantConfig, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: at least one -tenant is required")
	}
	out := make([]serve.TenantConfig, 0, len(specs))
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("serve: bad -tenant %q (want 'name:token[:admin][:quota=CAP/REFILL]')", spec)
		}
		tc := serve.TenantConfig{Name: parts[0], Token: parts[1]}
		if defaultK > 0 {
			tc.Options = append(tc.Options, semtree.WithK(defaultK))
		}
		for _, p := range parts[2:] {
			switch {
			case p == "admin":
				tc.Admin = true
			case strings.HasPrefix(p, "quota="):
				qc, err := parseQuota(strings.TrimPrefix(p, "quota="))
				if err != nil {
					return nil, fmt.Errorf("serve: bad -tenant %q: %w", spec, err)
				}
				tc.Options = append(tc.Options, semtree.WithQuota(qc.Capacity, qc.RefillPerSec))
			default:
				return nil, fmt.Errorf("serve: bad -tenant attribute %q in %q", p, spec)
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

// parseQuota parses "CAP/REFILL" in cost units.
func parseQuota(s string) (semtree.QuotaConfig, error) {
	capS, refillS, ok := strings.Cut(s, "/")
	if !ok {
		return semtree.QuotaConfig{}, fmt.Errorf("bad quota %q (want CAP/REFILL)", s)
	}
	capacity, err := strconv.ParseFloat(capS, 64)
	if err != nil {
		return semtree.QuotaConfig{}, err
	}
	refill, err := strconv.ParseFloat(refillS, 64)
	if err != nil {
		return semtree.QuotaConfig{}, err
	}
	return semtree.QuotaConfig{Capacity: capacity, RefillPerSec: refill}, nil
}

// announce writes the listener's bound address to path (for scripts
// that start the server on port 0 and need to find it).
func announce(path string, lis net.Listener) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte(lis.Addr().String()+"\n"), 0o644)
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semtree-serve:", err)
	os.Exit(1)
}
