// Command semtree-gen generates synthetic requirement corpora: either
// document text (one file per document, NLP-extractable) or a flat
// triples file in the Turtle-like notation.
//
// Usage:
//
//	semtree-gen -docs 100 -out corpus/           # document text
//	semtree-gen -triples 100000 > triples.txt    # flat triples
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func main() {
	var (
		docs     = flag.Int("docs", 50, "number of documents")
		sections = flag.Int("sections", 10, "requirements per document")
		rate     = flag.Float64("inconsistencies", 0.15, "fraction of requirements planting a conflict")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output directory for document text (stdout when empty)")
		triples  = flag.Int("triples", 0, "generate a flat triples file instead (count)")
	)
	flag.Parse()

	gen := synth.New(synth.Config{
		Seed:              *seed,
		Docs:              *docs,
		SectionsPerDoc:    *sections,
		InconsistencyRate: *rate,
	}, nil)

	if *triples > 0 {
		w := bufio.NewWriter(os.Stdout)
		if err := triple.WriteAll(w, gen.Triples(*triples)); err != nil {
			fatal(err)
		}
		return
	}

	bundle := gen.Corpus()
	if len(bundle.Skipped) > 0 {
		fatal(fmt.Errorf("%d generated sentences failed extraction", len(bundle.Skipped)))
	}
	if *out == "" {
		for _, d := range bundle.Corpus.Docs {
			fmt.Printf("# %s — %s\n", d.ID, d.Title)
			for _, s := range d.Sections {
				fmt.Printf("[%s] %s\n", s.ID, s.Text)
			}
			fmt.Println()
		}
	} else {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, d := range bundle.Corpus.Docs {
			var b []byte
			b = append(b, fmt.Sprintf("# %s\n", d.Title)...)
			for _, s := range d.Sections {
				b = append(b, fmt.Sprintf("[%s] %s\n", s.ID, s.Text)...)
			}
			path := filepath.Join(*out, d.ID+".txt")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d documents to %s (%d triples, %d planted inconsistencies)\n",
			len(bundle.Corpus.Docs), *out, bundle.Corpus.NumTriples(), len(bundle.Planted))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semtree-gen:", err)
	os.Exit(1)
}
