package semtree

import (
	"context"
	"testing"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("(?, Fun:accept_cmd, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Subject != nil || p.Object != nil || p.Predicate == nil {
		t.Fatalf("pattern = %+v", p)
	}
	if p.Predicate.Value != "accept_cmd" || p.Bound() != 1 {
		t.Fatalf("predicate = %v, bound = %d", p.Predicate, p.Bound())
	}
	if got := p.String(); got != "(?, Fun:accept_cmd, ?)" {
		t.Fatalf("String = %q", got)
	}
	for _, bad := range []string{"(?, ?)", "(a, b, c, d)", "(:x, ?, ?)"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q): expected error", bad)
		}
	}
}

func patternIndex(t *testing.T) *Index {
	t.Helper()
	store := triple.NewStore()
	lines := []string{
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:accept_cmd, CmdType:shutdown)",
		"('OBSW002', Fun:accept_cmd, CmdType:start-up)",
		"('OBSW001', Fun:block_cmd, CmdType:start-up)",
		"('OBSW001', Fun:send_msg, MsgType:housekeeping)",
		"('PDU9', Fun:power_on, 'heater_1')",
	}
	for _, l := range lines {
		tp, err := triple.ParseTriple(l)
		if err != nil {
			t.Fatal(err)
		}
		store.Add(tp, triple.Provenance{})
	}
	// Pad with background triples so the tree is non-trivial.
	g := synth.New(synth.Config{Seed: 71}, nil)
	for _, tp := range g.Triples(300) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestMatchPatternExactPredicate(t *testing.T) {
	ix := patternIndex(t)
	p, _ := ParsePattern("('OBSW001', Fun:accept_cmd, ?)")
	got, err := ix.MatchPattern(context.Background(), p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %v", len(got), got)
	}
	for _, m := range got {
		if m.Triple.Subject.Value != "OBSW001" || m.Triple.Predicate.Value != "accept_cmd" {
			t.Fatalf("non-matching result %v", m.Triple)
		}
		if m.Dist != 0 {
			t.Fatalf("exact match with dist %f", m.Dist)
		}
	}
}

func TestMatchPatternWithRadius(t *testing.T) {
	// Radius on bound positions: accept_cmd within predicate distance
	// should also pull in block_cmd/reject_cmd style close predicates
	// for the same subject/object.
	ix := patternIndex(t)
	p, _ := ParsePattern("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	got, err := ix.MatchPattern(context.Background(), p, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("radius query too narrow: %v", got)
	}
	if got[0].Dist != 0 || !got[0].Triple.Predicate.Equal(triple.NewConcept("Fun", "accept_cmd")) {
		t.Fatalf("exact match not first: %v", got[0])
	}
	foundBlock := false
	for _, m := range got {
		if m.Triple.Predicate.Value == "block_cmd" && m.Triple.Subject.Value == "OBSW001" {
			foundBlock = true
		}
	}
	if !foundBlock {
		t.Fatalf("near-predicate triple not found within radius: %v", got)
	}
}

func TestMatchPatternLimit(t *testing.T) {
	ix := patternIndex(t)
	p, _ := ParsePattern("(?, Fun:accept_cmd, ?)")
	all, err := ix.MatchPattern(context.Background(), p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("predicate-only pattern found %d, want >= 3", len(all))
	}
	limited, err := ix.MatchPattern(context.Background(), p, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %d results", len(limited))
	}
}

func TestMatchPatternValidation(t *testing.T) {
	ix := patternIndex(t)
	if _, err := ix.MatchPattern(context.Background(), Pattern{}, 0.1, 0); err == nil {
		t.Fatal("all-wildcard pattern accepted")
	}
	p, _ := ParsePattern("(?, Fun:accept_cmd, ?)")
	if _, err := ix.MatchPattern(context.Background(), p, -1, 0); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestKNearestExactImprovesRanking(t *testing.T) {
	g := synth.New(synth.Config{Seed: 73}, nil)
	store := triple.NewStore()
	for _, tp := range g.Triples(700) {
		store.Add(tp, triple.Provenance{})
	}
	ix, err := Build(store, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	qGen := synth.New(synth.Config{Seed: 74}, nil)
	for q := 0; q < 20; q++ {
		query := qGen.RandomTriple()
		exact, err := ix.KNearestExact(context.Background(), query, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			t.Fatal("no results")
		}
		// Results carry true semantic distances, sorted ascending.
		for i := 1; i < len(exact); i++ {
			if exact[i].Dist < exact[i-1].Dist {
				t.Fatalf("exact rerank not sorted: %v", exact)
			}
		}
		for _, m := range exact {
			if got := ix.SemanticDistance(query, m.Triple); got != m.Dist {
				t.Fatalf("reranked dist %f != metric %f", m.Dist, got)
			}
		}
	}
}
