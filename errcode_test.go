package semtree

import (
	"context"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// isErrName reports whether a declaration name follows the sentinel
// convention: "Err" followed by an uppercase letter (ErrFoo), which
// excludes unrelated names like ErrorCode.
func isErrName(name string) bool {
	return strings.HasPrefix(name, "Err") && len(name) > 3 &&
		name[3] >= 'A' && name[3] <= 'Z'
}

// collectExportedErrDecls parses every non-test file of a package
// directory and returns the names of exported Err* declarations — both
// sentinel vars (var ErrFoo = …) and error types (type ErrBar struct).
// The registry-completeness tests use it so a sentinel added to the
// source without a wire code fails the build.
func collectExportedErrDecls(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if ast.IsExported(n.Name) && isErrName(n.Name) {
								names = append(names, n.Name)
							}
						}
					case *ast.TypeSpec:
						if ast.IsExported(sp.Name.Name) && isErrName(sp.Name.Name) {
							names = append(names, sp.Name.Name)
						}
					}
				}
			}
		}
	}
	return names
}

// TestErrorCodeRegistryComplete: every exported Err* declaration of
// the facade must carry a wire code. The instances table below is the
// bridge from source-level names (found by parsing the package) to
// runtime values; adding a sentinel to the source without extending
// the table — or adding it to the table without registering a code —
// fails here, so the wire contract can never silently fall behind the
// API.
func TestErrorCodeRegistryComplete(t *testing.T) {
	instances := map[string]error{
		"ErrAdmissionRejected": ErrAdmissionRejected,
		"ErrDeadlineBudget":    ErrDeadlineBudget,
		"ErrQuotaExhausted":    ErrQuotaExhausted,
		"ErrSnapshotCorrupt":   ErrSnapshotCorrupt,
		"ErrUnindexedID":       ErrUnindexedID{ID: 42},
	}
	names := collectExportedErrDecls(t, ".")
	if len(names) == 0 {
		t.Fatal("found no exported Err* declarations — parser broken?")
	}
	for _, name := range names {
		inst, ok := instances[name]
		if !ok {
			t.Errorf("exported sentinel %s has no entry in this test's instance table: add it and assign it a wire code", name)
			continue
		}
		if c := CodeOf(inst); c == CodeUnknown {
			t.Errorf("exported sentinel %s has no registered wire code (CodeOf returned CodeUnknown)", name)
		}
	}
}

// TestErrorCodeRoundTrip: encode→decode must preserve errors.Is for
// every registered sentinel, errors.As (with the ID) for the typed
// ErrUnindexedID, and the message for unregistered errors.
func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrAdmissionRejected,
		ErrDeadlineBudget,
		ErrQuotaExhausted,
		ErrSnapshotCorrupt,
		context.Canceled,
		context.DeadlineExceeded,
	}
	for _, s := range sentinels {
		code := CodeOf(s)
		if code == CodeUnknown {
			t.Fatalf("%v: no code", s)
		}
		dec := DecodeError(code, s.Error(), ErrorDetail(s))
		if !errors.Is(dec, s) {
			t.Errorf("%v: decoded error does not match the sentinel under errors.Is", s)
		}
		if dec.Error() != s.Error() {
			t.Errorf("%v: message changed across the wire: %q", s, dec.Error())
		}
		// A wrapped sentinel must decode back to the sentinel too, with
		// the wrapped message preserved.
		wrapped := fmt.Errorf("while serving request 7: %w", s)
		dec = DecodeError(CodeOf(wrapped), wrapped.Error(), 0)
		if !errors.Is(dec, s) || dec.Error() != wrapped.Error() {
			t.Errorf("%v: wrapped round trip lost the sentinel or the message (got %v)", s, dec)
		}
	}

	// The typed sentinel round-trips through the detail payload.
	orig := ErrUnindexedID{ID: 1234}
	dec := DecodeError(CodeOf(orig), orig.Error(), ErrorDetail(orig))
	var unindexed ErrUnindexedID
	if !errors.As(dec, &unindexed) || unindexed.ID != 1234 {
		t.Fatalf("ErrUnindexedID did not round-trip: %v", dec)
	}
	if dec.Error() != orig.Error() {
		t.Fatalf("ErrUnindexedID message changed: %q vs %q", dec.Error(), orig.Error())
	}

	// Unregistered errors survive as CodeUnknown with the message intact.
	plain := errors.New("some backend hiccup")
	if c := CodeOf(plain); c != CodeUnknown {
		t.Fatalf("unregistered error got code %d", c)
	}
	dec = DecodeError(CodeUnknown, plain.Error(), 0)
	if dec.Error() != plain.Error() {
		t.Fatalf("CodeUnknown lost the message: %q", dec.Error())
	}
}

// TestRegisterErrorCodeGuards: the registry refuses collisions — a
// reused code or sentinel would silently corrupt the wire contract.
func TestRegisterErrorCodeGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero code", func() { RegisterErrorCode(CodeUnknown, errors.New("x")) })
	mustPanic("nil sentinel", func() { RegisterErrorCode(63, nil) })
	mustPanic("dup code", func() { RegisterErrorCode(CodeQuotaExhausted, errors.New("x")) })
	mustPanic("dup sentinel", func() { RegisterErrorCode(63, ErrQuotaExhausted) })
}
