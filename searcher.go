package semtree

import (
	"context"
	"math"

	"semtree/internal/core"
	"semtree/internal/triple"
)

// SearchMode selects how a Searcher interprets its options.
type SearchMode int

const (
	// ModeAuto infers the mode: range retrieval when Radius > 0,
	// k-nearest otherwise.
	ModeAuto SearchMode = iota
	// ModeKNN forces k-nearest retrieval.
	ModeKNN
	// ModeRange forces range retrieval — including Radius == 0, which
	// returns only exact embedded matches.
	ModeRange
)

// SearchOptions is the resolved configuration of a Searcher, the
// facade of the concurrent query engine. The zero value of each field
// selects a default; set K for k-nearest retrieval and Radius (or
// ModeRange) for range retrieval. In range mode K > 0 truncates the
// ranked result. Index.Searcher takes functional options (WithK,
// WithRadius, ...) that build one of these; pass a pre-built struct
// through the WithOptions adapter.
type SearchOptions struct {
	// Mode selects k-nearest vs range retrieval; ModeAuto (the zero
	// value) infers it from Radius.
	Mode SearchMode
	// K is the number of neighbors returned per query. K <= 0 in
	// k-nearest mode returns nil (nothing was asked for); in range
	// mode it leaves the result untruncated.
	K int
	// Radius is the range-retrieval distance: every triple within
	// embedded distance Radius of the query, ascending. Since the
	// embedding approximates the semantic distance, Radius is on the
	// Eq. 1 scale.
	Radius float64
	// ExactFactor > 0 re-ranks k-nearest results under the *exact*
	// Eq. 1 distance: ExactFactor·K candidates are fetched from the
	// embedded index and re-ordered with the true metric. Values below
	// 2 are raised to 2, and the candidate count is clamped to the
	// index size, so degenerate factors can neither overflow nor
	// over-allocate. Ignored in range mode.
	ExactFactor int
	// Parallelism bounds the workers that embed and execute a batch
	// (default GOMAXPROCS). Single-query Search calls are unaffected.
	Parallelism int
	// Protocol selects the cross-partition k-NN strategy. The zero
	// value is ProtocolAuto: the scheduler's cost model picks
	// sequential vs fan-out per query from its online latency and
	// compute estimates. See WithProtocol.
	Protocol Protocol
	// MaxInFlight bounds the queries this searcher executes
	// concurrently, across all batches and goroutines using it; the
	// excess waits in a bounded admission queue (QueueDepth) and is
	// rejected with ErrAdmissionRejected beyond that. 0 means
	// unlimited. See WithMaxInFlight.
	MaxInFlight int
	// QueueDepth bounds the admission queue behind MaxInFlight:
	// 0 defaults to MaxInFlight, negative disables queueing (reject as
	// soon as the in-flight limit is saturated).
	QueueDepth int
	// AdmissionControl enables the deadline-budget check: a query
	// whose context deadline leaves less time than the cost model's
	// estimate of the query — plus the expected wait behind the
	// searcher's admission queue — is rejected with ErrDeadlineBudget
	// instead of executed. See WithAdmissionControl.
	AdmissionControl bool
	// Quota, when non-nil, enforces a per-searcher (i.e. per-tenant)
	// token-bucket cost quota in cost units (see CostOf): admissions
	// are charged with the cost model's estimate of the query, the
	// observed ExecStats settle the difference on completion, and an
	// exhausted bucket rejects with ErrQuotaExhausted before any
	// fabric message is spent. See WithQuota.
	Quota *QuotaConfig
}

// SearchOption configures a Searcher. Options are applied in order to
// a zero SearchOptions value, so later options override earlier ones;
// Index.Searcher takes only options — the variadic form is the one
// canonical configuration surface, and it is the single source of
// truth for wire-request decoding in the serving tier (internal/serve
// maps every request field onto exactly these options).
type SearchOption func(*SearchOptions)

// WithOptions layers a whole SearchOptions struct onto the
// configuration: every non-zero field of opts overrides what earlier
// options set, field by field (zero fields leave the accumulated
// configuration alone, so WithOptions composes with the fine-grained
// options instead of erasing them).
//
// Deprecated: WithOptions exists as a mechanical migration path for
// callers of the old Index.Searcher(SearchOptions, ...SearchOption)
// signature. New code should use the fine-grained options (WithK,
// WithRadius, WithMode, ...) directly.
func WithOptions(opts SearchOptions) SearchOption {
	return func(o *SearchOptions) {
		if opts.Mode != ModeAuto {
			o.Mode = opts.Mode
		}
		if opts.K != 0 {
			o.K = opts.K
		}
		if opts.Radius != 0 {
			o.Radius = opts.Radius
		}
		if opts.ExactFactor != 0 {
			o.ExactFactor = opts.ExactFactor
		}
		if opts.Parallelism != 0 {
			o.Parallelism = opts.Parallelism
		}
		if opts.Protocol != ProtocolAuto {
			o.Protocol = opts.Protocol
		}
		if opts.MaxInFlight != 0 {
			o.MaxInFlight = opts.MaxInFlight
		}
		if opts.QueueDepth != 0 {
			o.QueueDepth = opts.QueueDepth
		}
		if opts.AdmissionControl {
			o.AdmissionControl = true
		}
		if opts.Quota != nil {
			o.Quota = opts.Quota
		}
	}
}

// WithMode pins the retrieval mode (k-nearest vs range); the default
// ModeAuto infers it from the radius.
func WithMode(m SearchMode) SearchOption {
	return func(o *SearchOptions) { o.Mode = m }
}

// WithK sets the number of neighbors returned per query. k <= 0 in
// k-nearest mode returns nil; in range mode it leaves the ranked
// result untruncated.
func WithK(k int) SearchOption {
	return func(o *SearchOptions) { o.K = k }
}

// WithRadius sets the range-retrieval distance on the Eq. 1 scale and
// (under ModeAuto, for a positive radius) selects range mode.
func WithRadius(d float64) SearchOption {
	return func(o *SearchOptions) { o.Radius = d }
}

// WithExactFactor enables exact Eq. 1 re-ranking: factor·K candidates
// are fetched from the embedded index and re-ordered under the true
// metric. See SearchOptions.ExactFactor for the clamping rules.
func WithExactFactor(factor int) SearchOption {
	return func(o *SearchOptions) { o.ExactFactor = factor }
}

// WithParallelism bounds the workers that embed and execute a batch
// (default GOMAXPROCS). Single-query Search calls are unaffected.
func WithParallelism(n int) SearchOption {
	return func(o *SearchOptions) { o.Parallelism = n }
}

// WithQueueDepth bounds the admission queue behind MaxInFlight:
// 0 defaults to MaxInFlight, negative disables queueing (reject as
// soon as the in-flight limit is saturated).
func WithQueueDepth(n int) SearchOption {
	return func(o *SearchOptions) { o.QueueDepth = n }
}

// Protocol is the cross-partition k-NN execution strategy
// (core.Protocol): ProtocolAuto, ProtocolSequential or ProtocolFanOut.
type Protocol = core.Protocol

// Re-exported protocol values for WithProtocol.
const (
	// ProtocolAuto lets the self-tuning scheduler pick sequential vs
	// fan-out per query (the default).
	ProtocolAuto = core.ProtocolAuto
	// ProtocolSequential forces the paper's sequential Rs-forwarding
	// protocol (minimal total work).
	ProtocolSequential = core.ProtocolSequential
	// ProtocolFanOut forces the probe-then-fan-out protocol
	// (overlapped cross-partition hops).
	ProtocolFanOut = core.ProtocolFanOut
)

// Typed admission errors, re-exported from the core engine. Check with
// errors.Is on Result.Err.
var (
	// ErrAdmissionRejected marks a query shed because the searcher's
	// MaxInFlight limit and admission queue were both full.
	ErrAdmissionRejected = core.ErrAdmissionRejected
	// ErrDeadlineBudget marks a query rejected because its deadline
	// budget was provably below the estimated execution cost.
	ErrDeadlineBudget = core.ErrDeadlineBudget
	// ErrQuotaExhausted marks a query rejected because the searcher's
	// token-bucket quota held fewer cost units than the query's
	// estimated cost. The bucket refills at the configured rate; back
	// off and retry.
	ErrQuotaExhausted = core.ErrQuotaExhausted
)

// QuotaConfig configures a Searcher's token-bucket cost quota
// (core.QuotaConfig): Capacity is the burst budget and RefillPerSec the
// sustained spend rate, both in cost units. See CostOf for the scale.
type QuotaConfig = core.QuotaConfig

// CostOf prices one query's observed execution on the quota cost-unit
// scale (core.CostOf): distance evaluations, fabric messages and wall
// time at fixed relative prices. Use it to size QuotaConfig from
// measured traffic — e.g. Capacity = 4×CostOf(typical query) and
// RefillPerSec = CostOf(typical query) × target QPS.
func CostOf(st ExecStats) float64 { return core.CostOf(st) }

// WithProtocol pins the cross-partition k-NN protocol (or restores
// ProtocolAuto, the default).
func WithProtocol(p Protocol) SearchOption {
	return func(o *SearchOptions) { o.Protocol = p }
}

// WithMaxInFlight bounds the searcher's concurrently executing queries;
// n <= 0 means unlimited.
func WithMaxInFlight(n int) SearchOption {
	return func(o *SearchOptions) {
		if n < 0 {
			n = 0
		}
		o.MaxInFlight = n
	}
}

// WithAdmissionControl toggles the deadline-budget admission check.
func WithAdmissionControl(on bool) SearchOption {
	return func(o *SearchOptions) { o.AdmissionControl = on }
}

// WithQuota enforces a per-searcher token-bucket cost quota: capacity
// is the burst budget and refillPerSec the sustained spend rate, both
// in cost units (see CostOf). The bucket starts full and refills
// lazily at admission time; an exhausted bucket rejects queries with
// ErrQuotaExhausted before any fabric message is spent. A zero
// capacity admits nothing (drains the tenant); to disable quotas,
// leave SearchOptions.Quota nil instead.
func WithQuota(capacity, refillPerSec float64) SearchOption {
	return func(o *SearchOptions) {
		o.Quota = &QuotaConfig{Capacity: capacity, RefillPerSec: refillPerSec}
	}
}

// SchedulerStats is a snapshot of the searcher's query scheduler:
// admission counters, the cost model's current hop-latency and compute
// estimates, and the protocol-choice histogram (core.SchedulerStats).
type SchedulerStats = core.SchedulerStats

// ExecStats is the per-query execution accounting reported with every
// Result — the paper's cost model (messages and nodes visited per
// query, §V) surfaced per request. It is the distributed engine's
// core.ExecStats: NodesVisited, BucketsScanned, DistanceEvals,
// Partitions, FabricMessages, ProbeMisses, Wall and Protocol. At this facade,
// DistanceEvals additionally includes the exact Eq. 1 re-rank
// evaluations when ExactFactor is set; Wall covers the index execution
// of the query (the batch-amortized FastMap embedding and triple
// resolution are excluded).
type ExecStats = core.ExecStats

// Result is the outcome of one query in a batch: the ranked matches,
// what computing them cost, and the query's own error. Errors are
// attributed per query — a failed query never poisons the healthy
// queries of its batch (see SearchBatch).
type Result struct {
	// Matches are the ranked retrieval results; nil when Err is set.
	Matches []Match
	// Stats reports what the query cost to execute.
	Stats ExecStats
	// Err is this query's failure, if any: a context error when the
	// batch was cut off before the query ran, an ErrUnindexedID when a
	// tree point has no stored triple, or a fabric/validation error.
	Err error
}

// Searcher executes queries against the index under one fixed set of
// options. It is stateless apart from the options and safe for
// concurrent use; SearchBatch amortizes the FastMap embedding of the
// query triples and fans the embedded queries out over the distributed
// tree with a bounded worker pool, on top of the per-query parallel
// k-NN fan-out inside the tree itself.
type Searcher struct {
	ix        *Index
	opts      SearchOptions
	rangeMode bool
	sched     *core.Scheduler
}

// Searcher returns a reusable query engine over the index, configured
// by options applied in order to a zero SearchOptions value (WithK,
// WithRadius, WithProtocol, WithQuota, ...; WithOptions adapts a whole
// struct for callers migrating from the old signature). Each Searcher
// owns its own admission scheduler — the in-flight limit, quota bucket
// and counters are per-Searcher — while the cost model driving
// protocol choice is shared index-wide, so estimates learned through
// one searcher benefit all. The ad-hoc query methods (KNearest, Range,
// KNearestExact, KNearestIDs) are thin wrappers around one of these.
func (ix *Index) Searcher(opts ...SearchOption) *Searcher {
	var o SearchOptions
	for _, opt := range opts {
		opt(&o)
	}
	rangeMode := o.Mode == ModeRange || (o.Mode == ModeAuto && o.Radius > 0)
	sched := ix.tree.NewScheduler(core.SchedulerConfig{
		Protocol:    o.Protocol,
		MaxInFlight: o.MaxInFlight,
		QueueDepth:  o.QueueDepth,
		Admission:   o.AdmissionControl,
		Quota:       o.Quota,
	})
	return &Searcher{ix: ix, opts: o, rangeMode: rangeMode, sched: sched}
}

// RepackConfig bounds one background repacking pass (core.RepackConfig):
// MaxMoves caps subtree migrations, MinGain sets the minimum placement-
// score improvement a move must promise.
type RepackConfig = core.RepackConfig

// RepackStats reports one repacking pass (core.RepackStats): movable
// subtrees scanned, migrations committed, points relocated, and planned
// moves that validation or the fabric refused.
type RepackStats = core.RepackStats

// Repack runs one budget-limited background repacking pass over the
// distributed tree: the worst-placed subtrees (those whose partition's
// bounding box shrinks most if they leave, by the placement kernel's
// scoring) migrate to the partition that fits them best, while queries
// and inserts keep running. Query results are unaffected — exact k-NN
// and range results do not depend on which partition hosts which
// subtree — and the region metadata stays exact throughout. The context
// bounds the pass between migrations; a pass cut short leaves the index
// fully consistent.
func (s *Searcher) Repack(ctx context.Context, cfg RepackConfig) (RepackStats, error) {
	return s.ix.tree.Repack(ctx, cfg)
}

// SchedulerStats snapshots the searcher's scheduler: how many queries
// were admitted, shed (ErrAdmissionRejected), budget-rejected
// (ErrDeadlineBudget) or quota-rejected (ErrQuotaExhausted), how many
// are queued and in flight right now, the cost model's current
// estimates, the protocol-choice histogram, the searcher's cumulative
// metered cost (distance evaluations, fabric messages, wall time and
// their cost-unit total), and — under WithQuota — the token bucket's
// current level and capacity.
func (s *Searcher) SchedulerStats() SchedulerStats { return s.sched.Stats() }

// With derives a searcher that shares this searcher's scheduler — and
// therefore its admission limits, deadline budget and quota bucket —
// while answering under different query-level options (WithMode, WithK,
// WithRadius, WithExactFactor, WithParallelism). This is how one tenant
// asks differently-shaped queries without splitting its quota: the
// serving tier decodes every wire request into options and applies them
// with With over the tenant's searcher. Scheduler-level options
// (WithProtocol, WithMaxInFlight, WithQueueDepth, WithAdmissionControl,
// WithQuota) are ignored here — the scheduler is shared by design; build
// a new Searcher to change them.
func (s *Searcher) With(opts ...SearchOption) *Searcher {
	o := s.opts
	for _, opt := range opts {
		opt(&o)
	}
	// Re-pin the scheduler-level fields: the derived searcher runs on
	// the parent's scheduler, so its options must say so.
	o.Protocol = s.opts.Protocol
	o.MaxInFlight = s.opts.MaxInFlight
	o.QueueDepth = s.opts.QueueDepth
	o.AdmissionControl = s.opts.AdmissionControl
	o.Quota = s.opts.Quota
	rangeMode := o.Mode == ModeRange || (o.Mode == ModeAuto && o.Radius > 0)
	return &Searcher{ix: s.ix, opts: o, rangeMode: rangeMode, sched: s.sched}
}

// SetQuotaRate retargets the searcher's token bucket in place: the new
// capacity and refill rate take effect at the call instant (tokens
// earned so far at the old rate are kept, clamped into the new
// capacity). This is the lease seam the distributed-quota allocator
// uses — a front-end's share of a tenant's fleet-wide refill arrives as
// periodic SetQuotaRate calls. Returns false when the searcher was
// built without WithQuota; a lease cannot conjure a bucket.
func (s *Searcher) SetQuotaRate(capacity, refillPerSec float64) bool {
	return s.sched.SetQuotaRate(capacity, refillPerSec)
}

// Search answers a single query under the searcher's options. The
// context bounds the query end to end: an already-done context returns
// its error without touching the index, and a deadline expiring
// mid-query aborts the cross-partition fan-out. The returned error is
// the query's own (res.Err), surfaced for the single-query case.
func (s *Searcher) Search(ctx context.Context, q triple.Triple) (Result, error) {
	// A one-element batch always returns one Result; prefer its
	// per-query outcome over the batch-level context error, so a query
	// that completed just as the deadline fired still returns its
	// matches.
	res, _ := s.SearchBatch(ctx, []triple.Triple{q})
	return res[0], res[0].Err
}

// SearchBatch answers one query per element of qs; results[i] answers
// qs[i]. The batch runs in three pooled phases — embed, tree fan-out,
// resolve/re-rank — so per-query setup cost is amortized across the
// whole batch.
//
// Error contract: the returned error is batch-level only — a context
// that was already done, or expired while the batch ran. Per-query
// failures (validation, fabric errors, unindexed IDs) are attached to
// their own Result.Err, so the healthy queries of a batch always
// return their matches; entries never dispatched because the context
// expired carry the context's error.
func (s *Searcher) SearchBatch(ctx context.Context, qs []triple.Triple) ([]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	out := make([]Result, len(qs))
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out, err
	}
	want := s.candidateK()
	if !s.rangeMode && want <= 0 {
		return out, nil // k-nearest of nothing: nil per query
	}
	workers := s.opts.Parallelism

	// Phase 1: amortize the FastMap embedding across the batch. Map is
	// immutable after Build, so the pool needs no coordination.
	coords := make([][]float64, len(qs))
	_ = core.RunBatch(ctx, len(qs), workers, func(i int) error {
		coords[i] = s.ix.mapper.Map(qs[i])
		return nil
	})

	// Phase 2: bounded fan-out over the distributed tree through the
	// searcher's scheduler: every dispatched query passes admission
	// (protocol choice, in-flight limit, deadline budget), and
	// rejections are attributed per query like any other failure. A
	// query the pool never dispatched (context expired mid-batch)
	// carries the context error in its result.
	var res []core.QueryResult
	switch {
	case s.rangeMode:
		res = s.sched.RangeBatch(ctx, coords, s.opts.Radius, workers)
	case len(qs) == 1:
		ns, st, err := s.sched.KNearest(ctx, coords[0], want)
		res = []core.QueryResult{{Neighbors: ns, Stats: st, Err: err}}
	default:
		res = s.sched.KNearestBatch(ctx, coords, want, workers)
	}

	// Phase 3: resolve points back to stored triples and, in exact
	// mode, re-rank with the true Eq. 1 distance. Resolution failures
	// stay per-query too.
	_ = core.RunBatch(ctx, len(qs), workers, func(i int) error {
		out[i].Stats = res[i].Stats
		if res[i].Err != nil {
			out[i].Err = res[i].Err
			return nil // attributed; do not abort the pool
		}
		ms, err := s.ix.matches(res[i].Neighbors)
		if err != nil {
			out[i].Err = err
			return nil
		}
		if !s.rangeMode && s.opts.ExactFactor > 0 {
			for j := range ms {
				ms[j].Dist = s.ix.metric.Distance(qs[i], ms[j].Triple)
			}
			out[i].Stats.DistanceEvals += int64(len(ms))
			sortMatches(ms)
		}
		if s.opts.K > 0 && len(ms) > s.opts.K {
			ms = ms[:s.opts.K]
		}
		out[i].Matches = ms
		return nil
	})
	if err := ctx.Err(); err != nil {
		// Attribute the cutoff to entries phase 3 never reached. A
		// reached entry always has its protocol stamped (copied from
		// the dispatched query, even on failure), so a successful
		// zero-match query is never mislabeled as cut off.
		for i := range out {
			if out[i].Stats.Protocol == "" && out[i].Err == nil {
				out[i].Err = err
			}
		}
		return out, err
	}
	return out, nil
}

// candidateK is the per-query candidate count fetched from the embedded
// index: K itself, or factor·K in exact re-rank mode — clamped so a
// degenerate factor can neither overflow the multiplication nor request
// more candidates than the index holds.
func (s *Searcher) candidateK() int {
	k := s.opts.K
	if k <= 0 {
		return 0
	}
	if s.opts.ExactFactor <= 0 {
		return k
	}
	factor := s.opts.ExactFactor
	if factor < 2 {
		factor = 2
	}
	n := s.ix.Len()
	want := n
	if k <= math.MaxInt/factor {
		want = k * factor
	}
	if want > n {
		want = n
	}
	if want < k {
		want = k // the tree caps at its size anyway
	}
	return want
}

// matchesOf is a convenience for wrappers that only need the ranked
// matches of a single query.
func matchesOf(res Result, err error) ([]Match, error) {
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}
