package semtree

import (
	"math"

	"semtree/internal/core"
	"semtree/internal/kdtree"
	"semtree/internal/triple"
)

// SearchMode selects how a Searcher interprets its options.
type SearchMode int

const (
	// ModeAuto infers the mode: range retrieval when Radius > 0,
	// k-nearest otherwise.
	ModeAuto SearchMode = iota
	// ModeKNN forces k-nearest retrieval.
	ModeKNN
	// ModeRange forces range retrieval — including Radius == 0, which
	// returns only exact embedded matches.
	ModeRange
)

// SearchOptions configure a Searcher, the facade of the concurrent
// query engine. The zero value of each field selects a default; set K
// for k-nearest retrieval and Radius (or ModeRange) for range
// retrieval. In range mode K > 0 truncates the ranked result.
type SearchOptions struct {
	// Mode selects k-nearest vs range retrieval; ModeAuto (the zero
	// value) infers it from Radius.
	Mode SearchMode
	// K is the number of neighbors returned per query. K <= 0 in
	// k-nearest mode returns nil (nothing was asked for); in range
	// mode it leaves the result untruncated.
	K int
	// Radius is the range-retrieval distance: every triple within
	// embedded distance Radius of the query, ascending. Since the
	// embedding approximates the semantic distance, Radius is on the
	// Eq. 1 scale.
	Radius float64
	// ExactFactor > 0 re-ranks k-nearest results under the *exact*
	// Eq. 1 distance: ExactFactor·K candidates are fetched from the
	// embedded index and re-ordered with the true metric. Values below
	// 2 are raised to 2, and the candidate count is clamped to the
	// index size, so degenerate factors can neither overflow nor
	// over-allocate. Ignored in range mode.
	ExactFactor int
	// Parallelism bounds the workers that embed and execute a batch
	// (default GOMAXPROCS). Single-query Search calls are unaffected.
	Parallelism int
}

// Searcher executes queries against the index under one fixed set of
// options. It is stateless apart from the options and safe for
// concurrent use; SearchBatch amortizes the FastMap embedding of the
// query triples and fans the embedded queries out over the distributed
// tree with a bounded worker pool, on top of the per-query parallel
// k-NN fan-out inside the tree itself.
type Searcher struct {
	ix        *Index
	opts      SearchOptions
	rangeMode bool
}

// Searcher returns a reusable query engine over the index. The
// ad-hoc query methods (KNearest, Range, KNearestExact, KNearestIDs)
// are thin wrappers around one of these.
func (ix *Index) Searcher(opts SearchOptions) *Searcher {
	rangeMode := opts.Mode == ModeRange || (opts.Mode == ModeAuto && opts.Radius > 0)
	return &Searcher{ix: ix, opts: opts, rangeMode: rangeMode}
}

// Search answers a single query under the searcher's options.
func (s *Searcher) Search(q triple.Triple) ([]Match, error) {
	res, err := s.SearchBatch([]triple.Triple{q})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch answers one query per element of qs; results[i] answers
// qs[i]. The batch runs in three pooled phases — embed, tree fan-out,
// resolve/re-rank — so per-query setup cost is amortized across the
// whole batch. Every query is attempted; the first error encountered
// is returned alongside the results gathered so far.
func (s *Searcher) SearchBatch(qs []triple.Triple) ([][]Match, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	out := make([][]Match, len(qs))
	want := s.candidateK()
	if !s.rangeMode && want <= 0 {
		return out, nil // k-nearest of nothing: nil per query
	}
	workers := s.opts.Parallelism

	// Phase 1: amortize the FastMap embedding across the batch. Map is
	// immutable after Build, so the pool needs no coordination.
	coords := make([][]float64, len(qs))
	core.RunBatch(len(qs), workers, func(i int) error {
		coords[i] = s.ix.mapper.Map(qs[i])
		return nil
	})

	// Phase 2: bounded fan-out over the distributed tree.
	var (
		neighbors [][]kdtree.Neighbor
		err       error
	)
	switch {
	case s.rangeMode:
		neighbors, err = s.ix.tree.RangeBatch(coords, s.opts.Radius, workers)
	case len(qs) == 1:
		// A single query is a latency problem, not a throughput one:
		// use the probe-then-fan-out protocol, which overlaps
		// cross-partition hops.
		var ns []kdtree.Neighbor
		ns, err = s.ix.tree.KNearest(coords[0], want)
		neighbors = [][]kdtree.Neighbor{ns}
	default:
		neighbors, err = s.ix.tree.KNearestBatch(coords, want, workers)
	}
	if err != nil {
		return out, err
	}

	// Phase 3: resolve points back to stored triples and, in exact
	// mode, re-rank with the true Eq. 1 distance.
	err = core.RunBatch(len(qs), workers, func(i int) error {
		ms, err := s.ix.matches(neighbors[i])
		if err != nil {
			return err
		}
		if !s.rangeMode && s.opts.ExactFactor > 0 {
			for j := range ms {
				ms[j].Dist = s.ix.metric.Distance(qs[i], ms[j].Triple)
			}
			sortMatches(ms)
		}
		if s.opts.K > 0 && len(ms) > s.opts.K {
			ms = ms[:s.opts.K]
		}
		out[i] = ms
		return nil
	})
	return out, err
}

// candidateK is the per-query candidate count fetched from the embedded
// index: K itself, or factor·K in exact re-rank mode — clamped so a
// degenerate factor can neither overflow the multiplication nor request
// more candidates than the index holds.
func (s *Searcher) candidateK() int {
	k := s.opts.K
	if k <= 0 {
		return 0
	}
	if s.opts.ExactFactor <= 0 {
		return k
	}
	factor := s.opts.ExactFactor
	if factor < 2 {
		factor = 2
	}
	n := s.ix.Len()
	want := n
	if k <= math.MaxInt/factor {
		want = k * factor
	}
	if want > n {
		want = n
	}
	if want < k {
		want = k // the tree caps at its size anyway
	}
	return want
}
