package docs

import (
	"testing"

	"semtree/internal/nlp"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	ex := nlp.NewExtractor(nlp.NewLexicon(vocab.DefaultRegistry()))
	c := NewCorpus()
	skipped := c.Ingest(DocumentSource{
		ID:    "DOC-1",
		Title: "On-board software requirements",
		Sections: []SectionSource{
			{ID: "REQ-1", Text: "OBSW001 shall accept the start-up command."},
			{ID: "REQ-2", Text: "In the orbit phase, OBSW001 shall send the housekeeping message."},
			{ID: "REQ-3", Text: "('OBSW001', Fun:send_msg, MsgType:power_amplifier)"},
		},
	}, ex)
	if len(skipped) != 0 {
		t.Fatalf("skipped sentences: %v", skipped)
	}
	c.Ingest(DocumentSource{
		ID: "DOC-2",
		Sections: []SectionSource{
			{ID: "REQ-4", Text: "TTC3 shall broadcast the fault alert."},
		},
	}, ex)
	return c
}

func TestIngestProvenance(t *testing.T) {
	c := testCorpus(t)
	if c.NumTriples() != 5 { // 1 + 2 (phase) + 1 + 1
		t.Fatalf("NumTriples = %d, want 5", c.NumTriples())
	}
	if len(c.Docs) != 2 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	// Every stored triple must resolve back to its section.
	c.Store.Each(func(id triple.ID, e triple.Entry) bool {
		d, s, err := c.SectionOf(id)
		if err != nil {
			t.Fatalf("SectionOf(%d): %v", id, err)
		}
		if e.Prov.Doc != d.ID || e.Prov.Section != s.ID {
			t.Fatalf("provenance mismatch for %d: %v vs %s/%s", id, e.Prov, d.ID, s.ID)
		}
		return true
	})
	if _, _, err := c.SectionOf(triple.ID(999)); err == nil {
		t.Fatal("SectionOf on unknown id should fail")
	}
}

func TestIngestReportsSkipped(t *testing.T) {
	ex := nlp.NewExtractor(nlp.NewLexicon(vocab.DefaultRegistry()))
	c := NewCorpus()
	skipped := c.Ingest(DocumentSource{
		ID:       "DOC-X",
		Sections: []SectionSource{{ID: "R", Text: "This is not a requirement."}},
	}, ex)
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v", skipped)
	}
	if c.NumTriples() != 0 {
		t.Fatalf("triples = %d", c.NumTriples())
	}
}

func TestRankDocuments(t *testing.T) {
	c := testCorpus(t)
	// Match every triple of DOC-1 plus the single DOC-2 triple.
	var all []triple.ID
	c.Store.Each(func(id triple.ID, e triple.Entry) bool {
		all = append(all, id)
		return true
	})
	ranked := c.RankDocuments(all)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].DocID != "DOC-1" || ranked[0].Matches != 4 {
		t.Fatalf("top doc = %+v", ranked[0])
	}
	if ranked[1].DocID != "DOC-2" || ranked[1].Matches != 1 {
		t.Fatalf("second doc = %+v", ranked[1])
	}
	// Unknown IDs are ignored.
	if got := c.RankDocuments([]triple.ID{9999}); len(got) != 0 {
		t.Fatalf("unknown id ranked: %v", got)
	}
}

func TestAddTriplesDirect(t *testing.T) {
	c := NewCorpus()
	ts := []triple.Triple{
		triple.New(triple.NewLiteral("A"), triple.NewConcept("Fun", "accept_cmd"), triple.NewConcept("CmdType", "start-up")),
		triple.New(triple.NewLiteral("A"), triple.NewConcept("Fun", "send_msg"), triple.NewConcept("MsgType", "housekeeping")),
	}
	ids := c.AddTriples("DOC-9", "REQ-9", ts)
	if len(ids) != 2 || c.NumTriples() != 2 {
		t.Fatalf("ids = %v, triples = %d", ids, c.NumTriples())
	}
	// Appending to the same document adds a section, not a new doc.
	c.AddTriples("DOC-9", "REQ-10", ts[:1])
	if len(c.Docs) != 1 || len(c.Docs[0].Sections) != 2 {
		t.Fatalf("docs = %d, sections = %d", len(c.Docs), len(c.Docs[0].Sections))
	}
	d, s, err := c.SectionOf(ids[1])
	if err != nil || d.ID != "DOC-9" || s.ID != "REQ-9" {
		t.Fatalf("SectionOf = %v/%v/%v", d, s, err)
	}
}
