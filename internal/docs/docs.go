// Package docs models the document side of SemTree: corpora of
// documents composed of sections ("data come from software
// requirements' documents … composed by a set of sections, each one
// containing the definition of a specific requirement", §III-A), the
// provenance from indexed triples back to the sections they were
// extracted from, and document-level retrieval: since SemTree answers
// queries with triples, mapping results back to documents is what makes
// it a *document* index.
package docs

import (
	"fmt"
	"sort"

	"semtree/internal/nlp"
	"semtree/internal/triple"
)

// SectionSource is one requirement's raw content before ingestion.
type SectionSource struct {
	ID   string // requirement identifier, e.g. "REQ-OBSW-001"
	Text string // natural-language sentences and/or Turtle-like lines
}

// DocumentSource is a document's raw content before ingestion.
type DocumentSource struct {
	ID       string
	Title    string
	Sections []SectionSource
}

// Section is an ingested requirement: its source plus the IDs of the
// triples extracted from it.
type Section struct {
	ID      string
	Text    string
	Triples []triple.ID
}

// Document is an ingested document.
type Document struct {
	ID       string
	Title    string
	Sections []Section
}

// Ref locates the section a triple came from.
type Ref struct {
	Doc     int // index into Corpus.Docs
	Section int // index into Document.Sections
}

// Corpus is an ingested document collection sharing one triple store.
// Build it single-threaded (Ingest), then read freely: reads after
// building are safe for concurrent use.
type Corpus struct {
	Store    *triple.Store
	Docs     []Document
	byTriple map[triple.ID]Ref
}

// NewCorpus returns an empty corpus with a fresh store.
func NewCorpus() *Corpus {
	return &Corpus{
		Store:    triple.NewStore(),
		byTriple: make(map[triple.ID]Ref),
	}
}

// Ingest extracts triples from every section of src with ex and adds
// the document to the corpus. It returns the sentences the extractor
// could not parse (they are kept in the section text regardless).
func (c *Corpus) Ingest(src DocumentSource, ex *nlp.Extractor) (skipped []string) {
	doc := Document{ID: src.ID, Title: src.Title}
	docIdx := len(c.Docs)
	for si, s := range src.Sections {
		sec := Section{ID: s.ID, Text: s.Text}
		ts, sk := ex.Extract(s.Text)
		skipped = append(skipped, sk...)
		if len(ts) > 0 {
			first := c.Store.AddAll(ts, triple.Provenance{Doc: src.ID, Section: s.ID})
			for k := range ts {
				id := first + triple.ID(k)
				sec.Triples = append(sec.Triples, id)
				c.byTriple[id] = Ref{Doc: docIdx, Section: si}
			}
		}
		doc.Sections = append(doc.Sections, sec)
	}
	c.Docs = append(c.Docs, doc)
	return skipped
}

// AddTriples records pre-extracted triples under a synthetic section,
// for corpora generated directly as triples (the 100k-triple benchmark
// path).
func (c *Corpus) AddTriples(docID, sectionID string, ts []triple.Triple) []triple.ID {
	docIdx := -1
	for i := range c.Docs {
		if c.Docs[i].ID == docID {
			docIdx = i
			break
		}
	}
	if docIdx < 0 {
		docIdx = len(c.Docs)
		c.Docs = append(c.Docs, Document{ID: docID})
	}
	doc := &c.Docs[docIdx]
	secIdx := len(doc.Sections)
	sec := Section{ID: sectionID}
	first := c.Store.AddAll(ts, triple.Provenance{Doc: docID, Section: sectionID})
	ids := make([]triple.ID, len(ts))
	for k := range ts {
		id := first + triple.ID(k)
		ids[k] = id
		sec.Triples = append(sec.Triples, id)
		c.byTriple[id] = Ref{Doc: docIdx, Section: secIdx}
	}
	doc.Sections = append(doc.Sections, sec)
	return ids
}

// Ref returns the section a triple was extracted from.
func (c *Corpus) Ref(id triple.ID) (Ref, bool) {
	r, ok := c.byTriple[id]
	return r, ok
}

// SectionOf resolves a triple to its document and section; it errors on
// unknown IDs.
func (c *Corpus) SectionOf(id triple.ID) (*Document, *Section, error) {
	r, ok := c.byTriple[id]
	if !ok {
		return nil, nil, fmt.Errorf("docs: no provenance for triple %d", id)
	}
	d := &c.Docs[r.Doc]
	return d, &d.Sections[r.Section], nil
}

// DocScore is a ranked document-retrieval result.
type DocScore struct {
	DocID   string
	Matches int         // number of matched triples in the document
	Triples []triple.ID // the matched triples, in input order
}

// RankDocuments groups matched triple IDs by document and ranks
// documents by descending match count (ties broken by document ID), the
// final step of semantic document retrieval.
func (c *Corpus) RankDocuments(ids []triple.ID) []DocScore {
	byDoc := make(map[int]*DocScore)
	for _, id := range ids {
		r, ok := c.byTriple[id]
		if !ok {
			continue
		}
		s, ok := byDoc[r.Doc]
		if !ok {
			s = &DocScore{DocID: c.Docs[r.Doc].ID}
			byDoc[r.Doc] = s
		}
		s.Matches++
		s.Triples = append(s.Triples, id)
	}
	out := make([]DocScore, 0, len(byDoc))
	for _, s := range byDoc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Matches != out[j].Matches {
			return out[i].Matches > out[j].Matches
		}
		return out[i].DocID < out[j].DocID
	})
	return out
}

// NumTriples returns the total number of ingested triples.
func (c *Corpus) NumTriples() int { return c.Store.Len() }
