package nlp

import (
	"strings"

	"semtree/internal/vocab"
)

// Lexicon resolves surface forms to vocabulary concepts: verbs to Fun
// predicates (with their past participles for passive sentences),
// parameter names to their typed vocabularies, and category nouns
// ("command", "message", ...) to vocabulary prefixes.
type Lexicon struct {
	reg *vocab.Registry

	// verb lemma → Fun concept name ("accept" → "accept_cmd");
	// multi-word lemmas are joined with a space ("power on").
	verbs map[string]string
	// past participle → lemma ("accepted" → "accept")
	past map[string]string
	// normalized object name → vocabulary prefix
	objects map[string]string
	// category noun → vocabulary prefix ("command" → "CmdType")
	categories map[string]string
	// Fun concept name → verb lemma (inverse of verbs, for rendering)
	lemmas map[string]string
}

// defaultVerbs maps requirement verbs to Fun concepts. Multi-word verbs
// use a space.
var defaultVerbs = map[string]string{
	"accept": "accept_cmd", "reject": "reject_cmd", "block": "block_cmd",
	"execute": "execute_cmd", "abort": "abort_cmd", "queue": "queue_cmd",
	"discard": "discard_cmd",
	"send":    "send_msg", "receive": "receive_msg", "broadcast": "broadcast_msg",
	"suppress": "suppress_msg", "forward": "forward_msg", "drop": "drop_msg",
	"acquire": "acquire_in", "release": "release_in", "sample": "sample_in",
	"ignore":   "ignore_in",
	"power on": "power_on", "power off": "power_off",
	"open": "open_valve", "close": "close_valve",
	"arm": "arm_device", "disarm": "disarm_device",
	"lock": "lock_device", "unlock": "unlock_device",
	"start": "start_unit", "stop": "stop_unit",
	"enable": "enable_unit", "disable": "disable_unit",
	"activate": "activate_unit", "deactivate": "deactivate_unit",
	"monitor": "monitor_param", "report": "report_status",
	"raise": "raise_alarm", "clear": "clear_alarm",
	"store": "store_data", "erase": "erase_data",
	"read": "read_data", "write": "write_data", "checksum": "checksum_data",
}

// defaultCategories maps trailing category nouns to vocabulary prefixes.
var defaultCategories = map[string]string{
	"command": "CmdType", "commands": "CmdType",
	"message": "MsgType", "messages": "MsgType",
	"telemetry": "MsgType", "alert": "MsgType", "acknowledgement": "MsgType",
	"input": "InType", "inputs": "InType",
	"reading": "InType", "frame": "InType", "packet": "InType",
	"phase": "InType",
}

// NewLexicon builds a lexicon over the given registry. Object names are
// enumerated from every concept of the CmdType, MsgType and InType
// vocabularies, so extending a vocabulary extends the lexicon.
func NewLexicon(reg *vocab.Registry) *Lexicon {
	l := &Lexicon{
		reg:        reg,
		verbs:      make(map[string]string, len(defaultVerbs)),
		past:       make(map[string]string, len(defaultVerbs)),
		objects:    make(map[string]string),
		categories: defaultCategories,
	}
	l.lemmas = make(map[string]string, len(defaultVerbs))
	for lemma, concept := range defaultVerbs {
		l.verbs[lemma] = concept
		l.past[pastParticiple(lemma)] = lemma
		l.lemmas[concept] = lemma
	}
	for _, prefix := range []string{"CmdType", "MsgType", "InType"} {
		v, ok := reg.Get(prefix)
		if !ok {
			continue
		}
		for id := vocab.ConceptID(0); int(id) < v.Len(); id++ {
			l.objects[normalizeName(v.Name(id))] = prefix
		}
	}
	return l
}

// pastParticiple derives the past participle of a verb lemma. Phrasal
// verbs inflect their first word ("power on" → "powered on"); the small
// irregular set the lexicon needs is handled explicitly.
func pastParticiple(lemma string) string {
	words := strings.Split(lemma, " ")
	words[0] = pastOf(words[0])
	return strings.Join(words, " ")
}

func pastOf(verb string) string {
	switch verb {
	case "send":
		return "sent"
	case "read":
		return "read"
	case "write":
		return "written"
	case "drop", "stop":
		return verb + "ped"
	}
	if strings.HasSuffix(verb, "e") {
		return verb + "d"
	}
	return verb + "ed"
}

// normalizeName folds an object concept name to its token form:
// lower-case with separators unified ("power_amplifier" matches the
// tokens "power amplifier" joined by '_').
func normalizeName(name string) string {
	return strings.ToLower(name)
}

// Verb resolves a verb lemma to its Fun concept name.
func (l *Lexicon) Verb(lemma string) (string, bool) {
	c, ok := l.verbs[strings.ToLower(lemma)]
	return c, ok
}

// PastVerb resolves a past participle to its lemma.
func (l *Lexicon) PastVerb(p string) (string, bool) {
	lemma, ok := l.past[strings.ToLower(p)]
	return lemma, ok
}

// Object resolves a normalized object name to its vocabulary prefix.
func (l *Lexicon) Object(name string) (string, bool) {
	p, ok := l.objects[normalizeName(name)]
	return p, ok
}

// Category resolves a category noun to its vocabulary prefix.
func (l *Lexicon) Category(noun string) (string, bool) {
	p, ok := l.categories[strings.ToLower(noun)]
	return p, ok
}

// Lemma returns the verb lemma that renders the given Fun concept in a
// sentence (the inverse of Verb); the synthetic corpus generator uses
// it to produce text the extractor round-trips.
func (l *Lexicon) Lemma(concept string) (string, bool) {
	lemma, ok := l.lemmas[concept]
	return lemma, ok
}

// ParticipleOf returns the past participle of a known verb lemma, for
// rendering passive sentences.
func (l *Lexicon) ParticipleOf(lemma string) (string, bool) {
	if _, ok := l.verbs[strings.ToLower(lemma)]; !ok {
		return "", false
	}
	return pastParticiple(strings.ToLower(lemma)), true
}

// Antonym returns the name of an antonym of the given Fun concept, if
// the vocabulary records one ("shall not accept" → block/reject). When
// several antonyms exist the first is returned.
func (l *Lexicon) Antonym(funConcept string) (string, bool) {
	v, ok := l.reg.Get("Fun")
	if !ok {
		return "", false
	}
	id, ok := v.Lookup(funConcept)
	if !ok {
		return "", false
	}
	ants := v.Antonyms(id)
	if len(ants) == 0 {
		return "", false
	}
	return v.Name(ants[0]), true
}
