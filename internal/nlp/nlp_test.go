package nlp

import (
	"reflect"
	"testing"

	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func testExtractor(t *testing.T) *Extractor {
	t.Helper()
	return NewExtractor(NewLexicon(vocab.DefaultRegistry()))
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("A shall start. B shall stop!  C shall send\nD shall read data")
	if len(got) != 4 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("In the pre-launch phase, OBSW001 shall accept the start-up command.")
	want := []string{"In", "the", "pre-launch", "phase", ",", "OBSW001", "shall", "accept", "the", "start-up", "command"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func mustExtract(t *testing.T, e *Extractor, sentence string) []triple.Triple {
	t.Helper()
	ts, err := e.ExtractSentence(sentence)
	if err != nil {
		t.Fatalf("ExtractSentence(%q): %v", sentence, err)
	}
	return ts
}

func TestActiveSentence(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall accept the start-up command")
	want := triple.New(
		triple.NewLiteral("OBSW001"),
		triple.NewConcept("Fun", "accept_cmd"),
		triple.NewConcept("CmdType", "start-up"),
	)
	if len(ts) != 1 || !ts[0].Equal(want) {
		t.Fatalf("got %v, want %v", ts, want)
	}
}

func TestActiveWithArticleSubject(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "The PDU9 shall send the housekeeping message")
	want := triple.New(
		triple.NewLiteral("PDU9"),
		triple.NewConcept("Fun", "send_msg"),
		triple.NewConcept("MsgType", "housekeeping"),
	)
	if len(ts) != 1 || !ts[0].Equal(want) {
		t.Fatalf("got %v, want %v", ts, want)
	}
}

func TestMultiWordObject(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall send the power amplifier message")
	want := triple.NewConcept("MsgType", "power_amplifier")
	if len(ts) != 1 || !ts[0].Object.Equal(want) {
		t.Fatalf("got %v, want object %v", ts, want)
	}
}

func TestPhrasalVerb(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "PDU9 shall power on the heater")
	if len(ts) != 1 || ts[0].Predicate.Value != "power_on" {
		t.Fatalf("got %v", ts)
	}
	if !ts[0].Object.IsLiteral() || ts[0].Object.Value != "heater" {
		t.Fatalf("unknown object should stay literal: %v", ts[0].Object)
	}
}

func TestNegationMapsToAntonym(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall not accept the shutdown command")
	// accept_cmd's first antonym in the built-in vocabulary is block_cmd.
	if len(ts) != 1 || ts[0].Predicate.Value != "block_cmd" {
		t.Fatalf("negation produced %v", ts)
	}
}

func TestNegationWithoutAntonym(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall not monitor the temperature reading")
	if len(ts) != 1 || ts[0].Predicate.Value != "not_monitor_param" {
		t.Fatalf("unmapped negation produced %v", ts)
	}
}

func TestConjunction(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall accept the start-up command and send the command ack")
	if len(ts) != 2 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	if ts[0].Predicate.Value != "accept_cmd" || ts[1].Predicate.Value != "send_msg" {
		t.Fatalf("predicates: %v / %v", ts[0].Predicate, ts[1].Predicate)
	}
	if !ts[1].Subject.Equal(ts[0].Subject) {
		t.Fatalf("conjunction lost the shared subject")
	}
	if ts[1].Object.Value != "command_ack" {
		t.Fatalf("second object = %v", ts[1].Object)
	}
}

func TestPhasePrefixPaperExample(t *testing.T) {
	// The paper's running example resources (§III-A): acquire_in with
	// the pre-launch phase, then accept_cmd start-up.
	e := testExtractor(t)
	ts := mustExtract(t, e, "In the pre-launch phase, OBSW001 shall accept the start-up command")
	if len(ts) != 2 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	wantPhase := triple.New(
		triple.NewLiteral("OBSW001"),
		triple.NewConcept("Fun", "acquire_in"),
		triple.NewConcept("InType", "pre-launch_phase"),
	)
	if !ts[0].Equal(wantPhase) {
		t.Fatalf("phase triple = %v, want %v", ts[0], wantPhase)
	}
	if ts[1].Predicate.Value != "accept_cmd" {
		t.Fatalf("main triple = %v", ts[1])
	}
}

func TestPassiveSentence(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "The start-up command shall be accepted by OBSW001")
	want := triple.New(
		triple.NewLiteral("OBSW001"),
		triple.NewConcept("Fun", "accept_cmd"),
		triple.NewConcept("CmdType", "start-up"),
	)
	if len(ts) != 1 || !ts[0].Equal(want) {
		t.Fatalf("got %v, want %v", ts, want)
	}
}

func TestPassiveIrregularParticiple(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "The housekeeping message shall be sent by TTC3")
	if len(ts) != 1 || ts[0].Predicate.Value != "send_msg" || ts[0].Subject.Value != "TTC3" {
		t.Fatalf("got %v", ts)
	}
}

func TestPassivePhrasalParticiple(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "The heater shall be powered on by PDU9")
	if len(ts) != 1 || ts[0].Predicate.Value != "power_on" {
		t.Fatalf("got %v", ts)
	}
}

func TestUnknownTypedObject(t *testing.T) {
	e := testExtractor(t)
	ts := mustExtract(t, e, "OBSW001 shall accept the warmup command")
	obj := ts[0].Object
	if !obj.IsConcept() || obj.Prefix != "CmdType" || obj.Value != "warmup" {
		t.Fatalf("unknown typed object = %v", obj)
	}
}

func TestExtractSentenceErrors(t *testing.T) {
	e := testExtractor(t)
	for _, s := range []string{
		"",
		"no modal verb here",
		"OBSW001 shall frobnicate the thing",
		"OBSW001 shall accept",
		"OBSW001 and OBSW002 shall accept the start-up command",
		"In the phase, OBSW001 shall accept the start-up command",
		"The start-up command shall be accepted near OBSW001",
	} {
		if _, err := e.ExtractSentence(s); err == nil {
			t.Errorf("ExtractSentence(%q): expected error", s)
		}
	}
}

func TestExtractDocumentMixedContent(t *testing.T) {
	e := testExtractor(t)
	doc := `('OBSW001', Fun:send_msg, MsgType:power_amplifier)
OBSW001 shall accept the start-up command.
This sentence is not a requirement at all.
During the orbit phase, TTC3 shall broadcast the housekeeping message.`
	ts, skipped := e.Extract(doc)
	if len(ts) != 4 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v", skipped)
	}
	if ts[0].Predicate.Value != "send_msg" {
		t.Fatalf("structured line not parsed first: %v", ts[0])
	}
}

func TestExtractRoundTripThroughRendering(t *testing.T) {
	// Extracted triples rendered to Turtle-like text and re-extracted
	// must be identical (the structured path round-trips the NLP path).
	e := testExtractor(t)
	ts := mustExtract(t, e, "In the launch phase, OBSW001 shall accept the start-up command and send the command ack")
	for _, tr := range ts {
		back, skipped := e.Extract(tr.String())
		if len(skipped) != 0 || len(back) != 1 || !back[0].Equal(tr) {
			t.Fatalf("round trip failed for %v: %v / %v", tr, back, skipped)
		}
	}
}

func TestLexiconObjectCoverage(t *testing.T) {
	// Every leaf of the parameter vocabularies must be resolvable, so
	// generated corpora always extract.
	reg := vocab.DefaultRegistry()
	lex := NewLexicon(reg)
	for _, prefix := range []string{"CmdType", "MsgType", "InType"} {
		v, _ := reg.Get(prefix)
		for _, leaf := range v.Leaves() {
			name := v.Name(leaf)
			if got, ok := lex.Object(name); !ok || got != prefix {
				t.Errorf("object %q: got (%q, %v), want %q", name, got, ok, prefix)
			}
		}
	}
}

func TestLexiconVerbCoverage(t *testing.T) {
	// Every verb in the lexicon must map to a resolvable Fun concept.
	reg := vocab.DefaultRegistry()
	fun, _ := reg.Get("Fun")
	lex := NewLexicon(reg)
	for lemma, concept := range lex.verbs {
		if _, ok := fun.Lookup(concept); !ok {
			t.Errorf("verb %q maps to unknown concept %q", lemma, concept)
		}
	}
	if len(lex.verbs) < 30 {
		t.Errorf("suspiciously small verb lexicon: %d", len(lex.verbs))
	}
}
