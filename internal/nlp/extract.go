package nlp

import (
	"fmt"
	"strings"

	"semtree/internal/triple"
)

// Extractor turns requirement sentences into triples using a Lexicon.
type Extractor struct {
	lex *Lexicon
}

// NewExtractor returns an extractor over the given lexicon.
func NewExtractor(lex *Lexicon) *Extractor { return &Extractor{lex: lex} }

// Extract processes a whole requirement text: Turtle-like lines are
// parsed verbatim (structured content), every other sentence goes
// through the pattern extractor. Unparseable sentences are returned in
// skipped rather than failing the document.
func (e *Extractor) Extract(text string) (triples []triple.Triple, skipped []string) {
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "(") {
			t, err := triple.ParseTriple(trimmed)
			if err != nil {
				skipped = append(skipped, trimmed)
				continue
			}
			triples = append(triples, t)
			continue
		}
		for _, sentence := range SplitSentences(trimmed) {
			ts, err := e.ExtractSentence(sentence)
			if err != nil {
				skipped = append(skipped, sentence)
				continue
			}
			triples = append(triples, ts...)
		}
	}
	return triples, skipped
}

// ExtractSentence parses one requirement sentence. Supported forms:
//
//	active:   "[In the <p> phase,] <Actor> shall [not] <verb> the <obj>
//	           [<category>] [and [not] <verb> the <obj> [<category>]]*"
//	passive:  "The <obj> [<category>] shall be <verb-past> by <Actor>"
//
// Negation maps the predicate to its vocabulary antonym when one exists
// ("shall not accept" → block_cmd); a phase prefix contributes an
// additional (Actor, Fun:acquire_in, InType:<p>_phase) triple, emitted
// first to preserve the temporal order of the requirement elements
// (§III-A footnote 1).
func (e *Extractor) ExtractSentence(sentence string) ([]triple.Triple, error) {
	tokens := Tokenize(sentence)
	if len(tokens) == 0 {
		return nil, fmt.Errorf("nlp: empty sentence")
	}
	i := 0
	var phaseObj *triple.Term
	if low(tokens[i]) == "in" || low(tokens[i]) == "during" {
		obj, next, err := e.parsePhasePrefix(tokens, i+1)
		if err != nil {
			return nil, err
		}
		phaseObj = &obj
		i = next
	}

	shall := indexOf(tokens, i, "shall")
	if shall < 0 {
		return nil, fmt.Errorf("nlp: no modal 'shall' in %q", sentence)
	}
	if shall+1 < len(tokens) && low(tokens[shall+1]) == "be" {
		ts, err := e.parsePassive(tokens, i, shall)
		if err != nil {
			return nil, err
		}
		return e.withPhase(phaseObj, ts), nil
	}

	// Active: subject tokens lie between i and shall.
	subjTokens := tokens[i:shall]
	if len(subjTokens) > 0 && isArticle(subjTokens[0]) {
		subjTokens = subjTokens[1:]
	}
	if len(subjTokens) != 1 {
		return nil, fmt.Errorf("nlp: cannot identify actor in %q", sentence)
	}
	subject := triple.NewLiteral(subjTokens[0])

	var out []triple.Triple
	i = shall + 1
	for {
		pred, obj, next, err := e.parseVerbPhrase(tokens, i)
		if err != nil {
			return nil, err
		}
		out = append(out, triple.New(subject, pred, obj))
		i = next
		if i >= len(tokens) {
			break
		}
		if low(tokens[i]) == "and" {
			i++
			continue
		}
		return nil, fmt.Errorf("nlp: trailing tokens %v in %q", tokens[i:], sentence)
	}
	return e.withPhase(phaseObj, out), nil
}

// parsePhasePrefix consumes "[the] <p...> phase ," returning the InType
// phase concept and the index after the comma.
func (e *Extractor) parsePhasePrefix(tokens []string, i int) (triple.Term, int, error) {
	if i < len(tokens) && isArticle(tokens[i]) {
		i++
	}
	start := i
	for i < len(tokens) && low(tokens[i]) != "phase" {
		i++
	}
	if i >= len(tokens) || i == start {
		return triple.Term{}, 0, fmt.Errorf("nlp: malformed phase prefix")
	}
	name := low(strings.Join(tokens[start:i], "_")) + "_phase"
	i++ // consume "phase"
	if i >= len(tokens) || tokens[i] != "," {
		return triple.Term{}, 0, fmt.Errorf("nlp: phase prefix missing comma")
	}
	return triple.NewConcept("InType", name), i + 1, nil
}

// withPhase prepends the acquire-phase triple, reusing the subject of
// the first main triple.
func (e *Extractor) withPhase(phaseObj *triple.Term, ts []triple.Triple) []triple.Triple {
	if phaseObj == nil || len(ts) == 0 {
		return ts
	}
	phase := triple.New(ts[0].Subject, triple.NewConcept("Fun", "acquire_in"), *phaseObj)
	return append([]triple.Triple{phase}, ts...)
}

// parseVerbPhrase consumes "[not] <verb> [the] <obj> [<category>]" from
// position i, stopping before "and" or the sentence end.
func (e *Extractor) parseVerbPhrase(tokens []string, i int) (pred, obj triple.Term, next int, err error) {
	negated := false
	if i < len(tokens) && low(tokens[i]) == "not" {
		negated = true
		i++
	}
	if i >= len(tokens) {
		return pred, obj, 0, fmt.Errorf("nlp: missing verb")
	}
	// Two-token verbs ("power on") take precedence.
	var concept string
	var ok bool
	if i+1 < len(tokens) {
		if concept, ok = e.lex.Verb(low(tokens[i]) + " " + low(tokens[i+1])); ok {
			i += 2
		}
	}
	if !ok {
		if concept, ok = e.lex.Verb(low(tokens[i])); !ok {
			return pred, obj, 0, fmt.Errorf("nlp: unknown verb %q", tokens[i])
		}
		i++
	}
	if negated {
		if ant, ok := e.lex.Antonym(concept); ok {
			concept = ant
		} else {
			// No recorded antinomy: keep a marked, unresolvable
			// concept (the distance layer falls back to string
			// comparison for it).
			concept = "not_" + concept
		}
	}
	pred = triple.NewConcept("Fun", concept)
	obj, next, err = e.parseObject(tokens, i)
	return pred, obj, next, err
}

// parseObject consumes "[the] <name tokens> [<category>]", resolving
// the longest token join against the lexicon. Unknown names become
// concepts of the category's vocabulary when a category noun follows,
// literals otherwise.
func (e *Extractor) parseObject(tokens []string, i int) (triple.Term, int, error) {
	if i < len(tokens) && isArticle(tokens[i]) {
		i++
	}
	// Candidate tokens run to the next conjunction or the end.
	end := i
	for end < len(tokens) && low(tokens[end]) != "and" && tokens[end] != "," {
		end++
	}
	if end == i {
		return triple.Term{}, 0, fmt.Errorf("nlp: missing object")
	}
	cand := tokens[i:end]
	max := len(cand)
	if max > 4 {
		max = 4
	}
	for k := max; k >= 1; k-- {
		name := low(strings.Join(cand[:k], "_"))
		prefix, ok := e.lex.Object(name)
		if !ok {
			continue
		}
		next := i + k
		// An optional trailing category noun must agree with the
		// object's vocabulary.
		if next < end {
			if catPrefix, isCat := e.lex.Category(cand[k]); isCat && catPrefix == prefix {
				next++
			}
		}
		return triple.NewConcept(prefix, name), next, nil
	}
	// Unknown object: use a trailing category noun to type it.
	if catPrefix, isCat := e.lex.Category(cand[len(cand)-1]); isCat && len(cand) > 1 {
		name := low(strings.Join(cand[:len(cand)-1], "_"))
		return triple.NewConcept(catPrefix, name), end, nil
	}
	if len(cand) == 1 {
		return triple.NewLiteral(cand[0]), end, nil
	}
	return triple.Term{}, 0, fmt.Errorf("nlp: unresolvable object %v", cand)
}

func low(s string) string { return strings.ToLower(s) }

func isArticle(s string) bool {
	switch low(s) {
	case "the", "a", "an":
		return true
	}
	return false
}

func indexOf(tokens []string, from int, word string) int {
	for i := from; i < len(tokens); i++ {
		if low(tokens[i]) == word {
			return i
		}
	}
	return -1
}

// parsePassive handles "<obj tokens> shall be <verb-past> by [the]
// <Actor>"; objStart marks where the object tokens begin.
func (e *Extractor) parsePassive(tokens []string, objStart, shall int) ([]triple.Triple, error) {
	i := shall + 2 // past "shall be"
	if i >= len(tokens) {
		return nil, fmt.Errorf("nlp: truncated passive sentence")
	}
	// Two-token past participles ("powered on") take precedence.
	var lemma string
	var ok bool
	if i+1 < len(tokens) {
		if lemma, ok = e.lex.PastVerb(low(tokens[i]) + " " + low(tokens[i+1])); ok {
			i += 2
		}
	}
	if !ok {
		if lemma, ok = e.lex.PastVerb(low(tokens[i])); !ok {
			return nil, fmt.Errorf("nlp: unknown past participle %q", tokens[i])
		}
		i++
	}
	concept, _ := e.lex.Verb(lemma)
	if i >= len(tokens) || low(tokens[i]) != "by" {
		return nil, fmt.Errorf("nlp: passive sentence missing 'by'")
	}
	i++
	if i < len(tokens) && isArticle(tokens[i]) {
		i++
	}
	if i != len(tokens)-1 {
		return nil, fmt.Errorf("nlp: cannot identify actor in passive sentence")
	}
	subject := triple.NewLiteral(tokens[i])

	objTokens := tokens[objStart:shall]
	if len(objTokens) > 0 && isArticle(objTokens[0]) {
		objTokens = objTokens[1:]
	}
	if len(objTokens) == 0 {
		return nil, fmt.Errorf("nlp: passive sentence missing object")
	}
	obj, next, err := e.parseObject(append([]string{"the"}, objTokens...), 0)
	if err != nil {
		return nil, err
	}
	if next != len(objTokens)+1 {
		return nil, fmt.Errorf("nlp: trailing object tokens in passive sentence")
	}
	return []triple.Triple{triple.New(subject, triple.NewConcept("Fun", concept), obj)}, nil
}
