// Package nlp turns requirement text into (subject, predicate, object)
// triples. The paper treats extraction as a solved prerequisite ("we
// are not interested in how it is possible to transform documents into
// a set of assertions/triples", §III-A, citing the iWIN system); this
// package provides the deterministic rule-based equivalent used by the
// reproduction: a tokenizer, a requirements lexicon grounded in the
// built-in vocabularies, and a pattern extractor for the active,
// passive, conjunctive, negated and phase-prefixed sentence forms that
// requirement documents use. Lines that already are Turtle-like triples
// ("structured information whose transformation … is immediate", §I)
// are parsed verbatim.
package nlp

import "strings"

// SplitSentences splits text into sentences on '.', '!', '?' and
// newline boundaries, trimming whitespace and dropping empties.
func SplitSentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		switch r {
		case '.', '!', '?', '\n':
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

// Tokenize splits a sentence into word tokens. Hyphens and underscores
// stay inside tokens (start-up, power_amplifier); commas become their
// own tokens (they delimit phase prefixes); other punctuation is
// dropped.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t':
			flush()
		case r == ',':
			flush()
			out = append(out, ",")
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			// other punctuation dropped
		}
	}
	flush()
	return out
}
