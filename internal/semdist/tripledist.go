package semdist

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// Weights are the α, β, γ coefficients of Eq. 1. They must be
// non-negative and sum to 1.
type Weights struct {
	Alpha float64 // subject weight
	Beta  float64 // predicate weight
	Gamma float64 // object weight
}

// DefaultWeights weight the predicate and object slightly below the
// subject; the inconsistency case study is most sensitive to Beta
// (see the weight ablation bench).
var DefaultWeights = Weights{Alpha: 0.4, Beta: 0.3, Gamma: 0.3}

// Validate checks non-negativity and Σ = 1 (within float tolerance).
func (w Weights) Validate() error {
	if w.Alpha < 0 || w.Beta < 0 || w.Gamma < 0 {
		return fmt.Errorf("semdist: negative weight in %+v", w)
	}
	if s := w.Alpha + w.Beta + w.Gamma; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("semdist: weights sum to %g, want 1", s)
	}
	return nil
}

// Options configure a Metric.
type Options struct {
	// Weights are Eq. 1's α, β, γ. Zero value selects DefaultWeights.
	Weights Weights
	// Concept is the taxonomy measure for concept/concept pairs.
	// Nil selects WuPalmer (the paper's example measure).
	Concept ConceptMeasure
	// NumericLiterals, when true, compares int/float literals by
	// normalized absolute difference |a−b|/(|a|+|b|) instead of
	// Levenshtein on their lexical forms. The paper prescribes a string
	// distance for all same-typed literals; this switch is an ablation.
	NumericLiterals bool
	// DisableCache turns off memoization (useful to measure its effect).
	DisableCache bool
}

// Metric computes the semantic distance between triples (Eq. 1). It is
// immutable after construction and safe for concurrent use; concept
// distances are memoized per vocabulary as a dense matrix, literal
// distances in a shared map.
type Metric struct {
	w        Weights
	concept  ConceptMeasure
	reg      *vocab.Registry
	numeric  bool
	useCache bool

	mu       sync.Mutex
	matrices map[*vocab.Vocabulary][]float64 // lazily built V×V distance matrices
	litCache sync.Map                        // string pair key → float64
}

// New builds a Metric over the vocabularies in reg.
func New(reg *vocab.Registry, opts Options) (*Metric, error) {
	w := opts.Weights
	if w == (Weights{}) {
		w = DefaultWeights
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	c := opts.Concept
	if c == nil {
		c = WuPalmer
	}
	if reg == nil {
		return nil, fmt.Errorf("semdist: nil vocabulary registry")
	}
	return &Metric{
		w:        w,
		concept:  c,
		reg:      reg,
		numeric:  opts.NumericLiterals,
		useCache: !opts.DisableCache,
		matrices: make(map[*vocab.Vocabulary][]float64),
	}, nil
}

// MustNew is New for static setup; it panics on error.
func MustNew(reg *vocab.Registry, opts Options) *Metric {
	m, err := New(reg, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Weights returns the Eq. 1 coefficients in use.
func (m *Metric) Weights() Weights { return m.w }

// Registry returns the vocabulary registry the metric resolves
// concepts against.
func (m *Metric) Registry() *vocab.Registry { return m.reg }

// Distance computes Eq. 1 between two triples. The result is in [0, 1].
func (m *Metric) Distance(a, b triple.Triple) float64 {
	return m.w.Alpha*m.TermDistance(a.Subject, b.Subject) +
		m.w.Beta*m.TermDistance(a.Predicate, b.Predicate) +
		m.w.Gamma*m.TermDistance(a.Object, b.Object)
}

// TermDistance computes the component distance between two terms,
// dispatching per §III-A:
//
//   - both literals of the same type → string distance (Levenshtein,
//     normalized), or relative numeric difference with NumericLiterals;
//   - both concepts of the same vocabulary → the configured taxonomy
//     measure;
//   - anything else (cross-vocabulary concepts, unresolvable names,
//     literal vs concept, differently-typed literals) → fallback to
//     normalized Levenshtein over the surface forms, the most
//     conservative comparison available.
func (m *Metric) TermDistance(a, b triple.Term) float64 {
	if a.Equal(b) {
		return 0
	}
	if a.IsLiteral() && b.IsLiteral() && a.LitType == b.LitType {
		if m.numeric && (a.LitType == triple.LitInt || a.LitType == triple.LitFloat) {
			return numericDistance(a.Value, b.Value)
		}
		return m.literalDistance(a.Value, b.Value)
	}
	if a.IsConcept() && b.IsConcept() && a.Prefix == b.Prefix {
		if v, ok := m.reg.Get(a.Prefix); ok {
			ca, okA := v.Lookup(a.Value)
			cb, okB := v.Lookup(b.Value)
			if okA && okB {
				return m.conceptDistance(v, ca, cb)
			}
		}
	}
	return m.literalDistance(a.Value, b.Value)
}

func (m *Metric) literalDistance(a, b string) float64 {
	if !m.useCache {
		return NormalizedLevenshtein(a, b)
	}
	if b < a {
		a, b = b, a
	}
	key := a + "\x00" + b
	if d, ok := m.litCache.Load(key); ok {
		return d.(float64)
	}
	d := NormalizedLevenshtein(a, b)
	m.litCache.Store(key, d)
	return d
}

func (m *Metric) conceptDistance(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if !m.useCache {
		return m.concept(v, a, b)
	}
	mat := m.matrix(v)
	return mat[int(a)*v.Len()+int(b)]
}

// matrix returns (building on first use) the dense pairwise distance
// matrix for vocabulary v. Vocabularies are small (tens to a few
// hundred concepts), so the matrix is cheap and makes the hot path an
// array load.
func (m *Metric) matrix(v *vocab.Vocabulary) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mat, ok := m.matrices[v]; ok {
		return mat
	}
	n := v.Len()
	mat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.concept(v, vocab.ConceptID(i), vocab.ConceptID(j))
			mat[i*n+j] = d
			mat[j*n+i] = d
		}
	}
	m.matrices[v] = mat
	return mat
}

func numericDistance(a, b string) float64 {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return NormalizedLevenshtein(a, b)
	}
	if fa == fb {
		return 0
	}
	return clamp01(math.Abs(fa-fb) / (math.Abs(fa) + math.Abs(fb)))
}
