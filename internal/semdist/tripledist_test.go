package semdist

import (
	"math/rand"
	"testing"

	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func testMetric(t *testing.T, opts Options) *Metric {
	t.Helper()
	m, err := New(vocab.DefaultRegistry(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func tr(subj, pred, obj string) triple.Triple {
	p, err := triple.ParseTriple("(" + subj + ", " + pred + ", " + obj + ")")
	if err != nil {
		panic(err)
	}
	return p
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights.Validate(); err != nil {
		t.Fatalf("DefaultWeights invalid: %v", err)
	}
	bad := []Weights{
		{0.5, 0.5, 0.5},
		{-0.2, 0.6, 0.6},
		{1, 1, -1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Weights %+v should be invalid", w)
		}
	}
}

func TestNewRejectsNilRegistry(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("expected error for nil registry")
	}
}

func TestDistanceIdentity(t *testing.T) {
	m := testMetric(t, Options{})
	a := tr("'OBSW001'", "Fun:accept_cmd", "CmdType:start-up")
	if d := m.Distance(a, a); d != 0 {
		t.Fatalf("d(a,a) = %f, want 0", d)
	}
}

func TestDistancePaperScenario(t *testing.T) {
	// The motivating example (§II): the target triple
	// (OBSW001, block_cmd, start-up) must be closer to
	// (OBSW001, accept_cmd, start-up) than to unrelated triples,
	// which is what makes k-NN retrieval of inconsistencies work.
	m := testMetric(t, Options{})
	requirement := tr("'OBSW001'", "Fun:accept_cmd", "CmdType:start-up")
	target := tr("'OBSW001'", "Fun:block_cmd", "CmdType:start-up")
	unrelatedPred := tr("'OBSW001'", "Fun:send_msg", "CmdType:start-up")
	unrelatedAll := tr("'PDU9'", "Fun:send_msg", "MsgType:housekeeping")

	dTarget := m.Distance(target, requirement)
	dPred := m.Distance(target, unrelatedPred)
	dAll := m.Distance(target, unrelatedAll)
	if dTarget >= dPred {
		t.Errorf("antonym-swap distance %f not < unrelated-predicate %f", dTarget, dPred)
	}
	if dPred >= dAll {
		t.Errorf("same-subject distance %f not < fully-unrelated %f", dPred, dAll)
	}
}

func TestDistanceSymmetryAndRange(t *testing.T) {
	m := testMetric(t, Options{})
	pool := []triple.Triple{
		tr("'OBSW001'", "Fun:accept_cmd", "CmdType:start-up"),
		tr("'OBSW001'", "Fun:block_cmd", "CmdType:start-up"),
		tr("'OBSW002'", "Fun:send_msg", "MsgType:housekeeping"),
		tr("'PDU9'", "Fun:acquire_in", "InType:pre-launch_phase"),
		tr("'42'", "Fun:store_data", "'3.5'"),
		tr("'OBSW001'", "computer", "on_state"),
	}
	for _, a := range pool {
		for _, b := range pool {
			d := m.Distance(a, b)
			if d < 0 || d > 1 {
				t.Fatalf("d(%v, %v) = %f out of range", a, b, d)
			}
			if d != m.Distance(b, a) {
				t.Fatalf("asymmetric distance for (%v, %v)", a, b)
			}
		}
	}
}

func TestTermDistanceDispatch(t *testing.T) {
	m := testMetric(t, Options{})
	t.Run("literal same type", func(t *testing.T) {
		d := m.TermDistance(triple.NewLiteral("OBSW001"), triple.NewLiteral("OBSW002"))
		if want := 1.0 / 7.0; !close(d, want) {
			t.Errorf("literal distance = %f, want %f", d, want)
		}
	})
	t.Run("concepts same vocabulary", func(t *testing.T) {
		a := triple.NewConcept("Fun", "accept_cmd")
		b := triple.NewConcept("Fun", "block_cmd")
		if d := m.TermDistance(a, b); !close(d, 1.0/3.0) {
			t.Errorf("concept distance = %f, want 1/3 (WuPalmer)", d)
		}
	})
	t.Run("synonym resolves to same concept", func(t *testing.T) {
		a := triple.NewConcept("Fun", "accept_cmd")
		b := triple.NewConcept("Fun", "accept_command")
		if d := m.TermDistance(a, b); d != 0 {
			t.Errorf("synonym distance = %f, want 0", d)
		}
	})
	t.Run("cross vocabulary falls back to string distance", func(t *testing.T) {
		a := triple.NewConcept("Fun", "accept_cmd")
		b := triple.NewConcept("CmdType", "accept_cmd")
		if d := m.TermDistance(a, b); d != 0 {
			t.Errorf("cross-vocab same-name = %f, want 0 (lexical fallback)", d)
		}
	})
	t.Run("unknown concept falls back", func(t *testing.T) {
		a := triple.NewConcept("Fun", "no_such_function")
		b := triple.NewConcept("Fun", "accept_cmd")
		d := m.TermDistance(a, b)
		if d <= 0 || d > 1 {
			t.Errorf("unknown-concept fallback = %f", d)
		}
	})
	t.Run("literal vs concept falls back", func(t *testing.T) {
		a := triple.NewLiteral("start-up")
		b := triple.NewConcept("CmdType", "start-up")
		if d := m.TermDistance(a, b); d != 0 {
			t.Errorf("surface-equal mixed terms = %f, want 0", d)
		}
	})
	t.Run("differently typed literals fall back", func(t *testing.T) {
		a := triple.NewLiteral("42") // int
		b := triple.NewString("42")  // string
		if d := m.TermDistance(a, b); d != 0 {
			t.Errorf("same lexical form, different types = %f, want 0 (lexical fallback)", d)
		}
	})
}

func TestNumericLiteralsOption(t *testing.T) {
	plain := testMetric(t, Options{})
	num := testMetric(t, Options{NumericLiterals: true})
	a, b := triple.NewLiteral("100"), triple.NewLiteral("101")
	dPlain := plain.TermDistance(a, b) // Levenshtein: 1/3
	dNum := num.TermDistance(a, b)     // 1/201
	if !close(dPlain, 1.0/3.0) {
		t.Errorf("plain = %f, want 1/3", dPlain)
	}
	if !close(dNum, 1.0/201.0) {
		t.Errorf("numeric = %f, want 1/201", dNum)
	}
}

func TestCacheConsistency(t *testing.T) {
	cached := testMetric(t, Options{})
	raw := testMetric(t, Options{DisableCache: true})
	r := rand.New(rand.NewSource(5))
	v := vocab.Functions()
	names := make([]string, 0, v.Len())
	for i := 0; i < v.Len(); i++ {
		names = append(names, v.Name(vocab.ConceptID(i)))
	}
	for trial := 0; trial < 300; trial++ {
		a := triple.NewConcept("Fun", names[r.Intn(len(names))])
		b := triple.NewConcept("Fun", names[r.Intn(len(names))])
		if dc, dr := cached.TermDistance(a, b), raw.TermDistance(a, b); dc != dr {
			t.Fatalf("cache changed result for (%s, %s): %f vs %f", a.Value, b.Value, dc, dr)
		}
	}
}

func TestCustomWeights(t *testing.T) {
	m := testMetric(t, Options{Weights: Weights{Alpha: 1, Beta: 0, Gamma: 0}})
	a := tr("'X'", "Fun:accept_cmd", "CmdType:start-up")
	b := tr("'X'", "Fun:send_msg", "CmdType:shutdown")
	if d := m.Distance(a, b); d != 0 {
		t.Fatalf("alpha-only metric saw predicate/object difference: %f", d)
	}
}

func BenchmarkTripleDistanceCached(b *testing.B) {
	m := MustNew(vocab.DefaultRegistry(), Options{})
	x := tr("'OBSW001'", "Fun:accept_cmd", "CmdType:start-up")
	y := tr("'OBSW002'", "Fun:block_cmd", "CmdType:shutdown")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkTripleDistanceUncached(b *testing.B) {
	m := MustNew(vocab.DefaultRegistry(), Options{DisableCache: true})
	x := tr("'OBSW001'", "Fun:accept_cmd", "CmdType:start-up")
	y := tr("'OBSW002'", "Fun:block_cmd", "CmdType:shutdown")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}
