package semdist

import (
	"fmt"
	"math"
	"sort"

	"semtree/internal/vocab"
)

// ConceptMeasure maps a pair of concepts of one vocabulary to a distance
// in [0, 1]. All measures in this package return 0 for identical
// concepts (an explicit normalization: Resnik similarity, for instance,
// does not natively satisfy identity of indiscernibles).
type ConceptMeasure func(v *vocab.Vocabulary, a, b vocab.ConceptID) float64

// WuPalmer is the paper's headline measure: distance
// 1 − 2·depth(LCS)/(depth(a)+depth(b)).
func WuPalmer(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	lcs := v.LCS(a, b)
	sim := 2 * float64(v.Depth(lcs)) / float64(v.Depth(a)+v.Depth(b))
	return clamp01(1 - sim)
}

// Path is the Rada et al. edge-counting distance, normalized by the
// longest possible path in the taxonomy (2·(maxDepth−1)).
func Path(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	den := 2 * float64(v.MaxDepth()-1)
	if den <= 0 {
		return 1
	}
	return clamp01(float64(v.ShortestPath(a, b)) / den)
}

// LeacockChodorow is 1 − sim/sim_max with
// sim = −log(pathNodes / (2·maxDepth)) and pathNodes the node count of
// the shortest path (edges + 1).
func LeacockChodorow(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	d := float64(2 * v.MaxDepth())
	sim := -math.Log(float64(v.ShortestPath(a, b)+1) / d)
	simMax := math.Log(d)
	if simMax <= 0 {
		return 1
	}
	return clamp01(1 - sim/simMax)
}

// Resnik is 1 − IC(LCS)/maxIC: two concepts are close when their least
// common subsumer is informative.
func Resnik(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	if v.MaxIC() <= 0 {
		return 1
	}
	return clamp01(1 - v.IC(v.LCS(a, b))/v.MaxIC())
}

// Lin is 1 − 2·IC(LCS)/(IC(a)+IC(b)).
func Lin(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	den := v.IC(a) + v.IC(b)
	if den <= 0 {
		return 1 // both are the root-like concepts; maximally unspecific
	}
	return clamp01(1 - 2*v.IC(v.LCS(a, b))/den)
}

// JiangConrath is the JC distance IC(a)+IC(b)−2·IC(LCS), normalized by
// 2·maxIC.
func JiangConrath(v *vocab.Vocabulary, a, b vocab.ConceptID) float64 {
	if a == b {
		return 0
	}
	if v.MaxIC() <= 0 {
		return 1
	}
	d := v.IC(a) + v.IC(b) - 2*v.IC(v.LCS(a, b))
	return clamp01(d / (2 * v.MaxIC()))
}

var measures = map[string]ConceptMeasure{
	"wupalmer":        WuPalmer,
	"path":            Path,
	"leacockchodorow": LeacockChodorow,
	"resnik":          Resnik,
	"lin":             Lin,
	"jiangconrath":    JiangConrath,
}

// MeasureByName resolves a measure by its lower-case name (e.g.
// "wupalmer"). It errors on unknown names and lists the alternatives.
func MeasureByName(name string) (ConceptMeasure, error) {
	if m, ok := measures[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("semdist: unknown measure %q (have %v)", name, MeasureNames())
}

// MeasureNames returns the registered measure names in sorted order.
func MeasureNames() []string {
	out := make([]string, 0, len(measures))
	for n := range measures {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
