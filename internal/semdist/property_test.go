package semdist

import (
	"testing"
	"testing/quick"

	"semtree/internal/synth"
	"semtree/internal/vocab"
)

// TestDistanceMetricPropertiesQuick checks Eq. 1 over the full
// generated triple population: range [0,1], symmetry, and identity for
// identical triples, under every concept measure.
func TestDistanceMetricPropertiesQuick(t *testing.T) {
	reg := vocab.DefaultRegistry()
	for _, name := range MeasureNames() {
		m, err := MeasureByName(name)
		if err != nil {
			t.Fatal(err)
		}
		metric := MustNew(reg, Options{Concept: m})
		f := func(seed int64) bool {
			g := synth.New(synth.Config{Seed: seed}, reg)
			a, b := g.RandomTriple(), g.RandomTriple()
			dab := metric.Distance(a, b)
			if dab < 0 || dab > 1 {
				return false
			}
			if dab != metric.Distance(b, a) {
				return false
			}
			return metric.Distance(a, a) == 0 && metric.Distance(b, b) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTriangleInequalityOverGeneratedTriples: Eq. 1 is a weighted sum
// of component distances; Levenshtein satisfies the triangle
// inequality exactly and the path-based taxonomy measures do on trees,
// so the combined distance should too (within float tolerance) for the
// default Wu-Palmer configuration restricted to same-kind terms.
// FastMap assumes approximate triangle behavior; this quantifies it:
// violations beyond tolerance fail the test.
func TestTriangleInequalityOverGeneratedTriples(t *testing.T) {
	metric := MustNew(vocab.DefaultRegistry(), Options{})
	g := synth.New(synth.Config{Seed: 77}, nil)
	pool := g.Triples(120)
	violations, checks := 0, 0
	for i := 0; i < len(pool); i += 7 {
		for j := 1; j < len(pool); j += 11 {
			for k := 2; k < len(pool); k += 13 {
				a, b, c := pool[i], pool[j], pool[k]
				checks++
				if metric.Distance(a, c) > metric.Distance(a, b)+metric.Distance(b, c)+1e-9 {
					violations++
				}
			}
		}
	}
	if checks == 0 {
		t.Fatal("no checks ran")
	}
	// Wu-Palmer is not a strict metric on DAG taxonomies; tolerate a
	// small violation rate but flag structural regressions.
	if rate := float64(violations) / float64(checks); rate > 0.02 {
		t.Fatalf("triangle inequality violated in %.1f%% of %d checks", rate*100, checks)
	}
}
