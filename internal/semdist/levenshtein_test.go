package semdist

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"accept_cmd", "block_cmd", 6},
		{"start-up", "shutdown", 7},
		{"OBSW001", "OBSW002", 1},
		{"résumé", "resume", 2}, // rune-level, not byte-level
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBounds(t *testing.T) {
	// |len(a)−len(b)| ≤ d ≤ max(len(a), len(b)), lengths in runes.
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		d := Levenshtein(a, b)
		lo := len(ra) - len(rb)
		if lo < 0 {
			lo = -lo
		}
		hi := len(ra)
		if len(rb) > hi {
			hi = len(rb)
		}
		return lo <= d && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedLevenshteinRange(t *testing.T) {
	f := func(a, b string) bool {
		d := NormalizedLevenshtein(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if d := NormalizedLevenshtein("", ""); d != 0 {
		t.Errorf("NormalizedLevenshtein(\"\", \"\") = %f, want 0", d)
	}
	if d := NormalizedLevenshtein("abc", "xyz"); d != 1 {
		t.Errorf("maximally different strings: %f, want 1", d)
	}
}
