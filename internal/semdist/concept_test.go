package semdist

import (
	"math/rand"
	"testing"

	"semtree/internal/vocab"
)

func funVocab(t *testing.T) *vocab.Vocabulary {
	t.Helper()
	return vocab.Functions()
}

func cid(t *testing.T, v *vocab.Vocabulary, name string) vocab.ConceptID {
	t.Helper()
	c, ok := v.Lookup(name)
	if !ok {
		t.Fatalf("concept %q missing", name)
	}
	return c
}

func allMeasures() map[string]ConceptMeasure { return measures }

func TestMeasuresIdentityAndRange(t *testing.T) {
	v := funVocab(t)
	r := rand.New(rand.NewSource(3))
	for name, m := range allMeasures() {
		for trial := 0; trial < 200; trial++ {
			a := vocab.ConceptID(r.Intn(v.Len()))
			b := vocab.ConceptID(r.Intn(v.Len()))
			d := m(v, a, b)
			if d < 0 || d > 1 {
				t.Fatalf("%s(%s, %s) = %f out of [0,1]", name, v.Name(a), v.Name(b), d)
			}
			if a == b && d != 0 {
				t.Fatalf("%s identity violated for %s: %f", name, v.Name(a), d)
			}
			if a != b && d != m(v, b, a) {
				t.Fatalf("%s not symmetric for (%s, %s)", name, v.Name(a), v.Name(b))
			}
		}
	}
}

func TestWuPalmerOrdering(t *testing.T) {
	v := funVocab(t)
	accept := cid(t, v, "accept_cmd")
	block := cid(t, v, "block_cmd")  // sibling: same area
	sendMsg := cid(t, v, "send_msg") // different area
	powerOn := cid(t, v, "power_on") // deeper, different area
	dSibling := WuPalmer(v, accept, block)
	dCross := WuPalmer(v, accept, sendMsg)
	dDeep := WuPalmer(v, accept, powerOn)
	if dSibling >= dCross {
		t.Errorf("sibling distance %f not < cross-area %f", dSibling, dCross)
	}
	if dSibling >= dDeep {
		t.Errorf("sibling distance %f not < deep cross-area %f", dSibling, dDeep)
	}
}

func TestWuPalmerExactValue(t *testing.T) {
	// accept_cmd and block_cmd both have depth 3 under command_handling
	// (depth 2): sim = 2·2/(3+3) = 2/3, dist = 1/3.
	v := funVocab(t)
	d := WuPalmer(v, cid(t, v, "accept_cmd"), cid(t, v, "block_cmd"))
	if want := 1.0 / 3.0; !close(d, want) {
		t.Fatalf("WuPalmer(accept_cmd, block_cmd) = %f, want %f", d, want)
	}
}

func TestPathMeasureProportionalToEdges(t *testing.T) {
	v := funVocab(t)
	accept := cid(t, v, "accept_cmd")
	block := cid(t, v, "block_cmd")
	sendMsg := cid(t, v, "send_msg")
	if Path(v, accept, block) >= Path(v, accept, sendMsg) {
		t.Errorf("2-edge path not closer than 4-edge path")
	}
}

func TestResnikSiblingsShareIC(t *testing.T) {
	// Siblings under the same informative parent are closer than
	// concepts whose LCS is the root (IC 0 → distance 1).
	v := funVocab(t)
	accept := cid(t, v, "accept_cmd")
	reject := cid(t, v, "reject_cmd")
	sendMsg := cid(t, v, "send_msg")
	if d := Resnik(v, accept, sendMsg); d != 1 {
		t.Errorf("Resnik with root LCS = %f, want 1", d)
	}
	if d := Resnik(v, accept, reject); d >= 1 {
		t.Errorf("Resnik siblings = %f, want < 1", d)
	}
}

func TestLinAndJiangConrathOrdering(t *testing.T) {
	v := funVocab(t)
	accept := cid(t, v, "accept_cmd")
	block := cid(t, v, "block_cmd")
	powerOn := cid(t, v, "power_on")
	for name, m := range map[string]ConceptMeasure{"lin": Lin, "jiangconrath": JiangConrath} {
		if m(v, accept, block) >= m(v, accept, powerOn) {
			t.Errorf("%s: same-area pair not closer than cross-area pair", name)
		}
	}
}

func TestMeasureByName(t *testing.T) {
	for _, name := range MeasureNames() {
		if _, err := MeasureByName(name); err != nil {
			t.Errorf("MeasureByName(%q): %v", name, err)
		}
	}
	if _, err := MeasureByName("cosine"); err == nil {
		t.Error("expected error for unknown measure")
	}
	if len(MeasureNames()) != 6 {
		t.Errorf("measure count = %d, want 6", len(MeasureNames()))
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
