// Package semdist implements SemTree's semantic distance layer (§III-A):
// the weighted triple distance of Eq. 1,
//
//	d(ti,tj) = α·ds(si,sj) + β·dp(pi,pj) + γ·do(oi,oj),  α+β+γ = 1,
//
// with component distances dispatched on term type: string distance
// (Levenshtein) when both elements are literals of the same type, and a
// taxonomy-based measure (Wu & Palmer, Resnik, Lin, ...) when both are
// concepts of the same vocabulary. All distances are normalized to
// [0, 1], so Eq. 1 is itself in [0, 1].
package semdist

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions, unit cost) between a and b, computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	// Trim common prefix and suffix: they never change the distance.
	for len(ra) > 0 && len(rb) > 0 && ra[0] == rb[0] {
		ra, rb = ra[1:], rb[1:]
	}
	for len(ra) > 0 && len(rb) > 0 && ra[len(ra)-1] == rb[len(rb)-1] {
		ra, rb = ra[:len(ra)-1], rb[:len(rb)-1]
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra // keep the DP row short
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedLevenshtein returns Levenshtein(a, b) divided by the length
// of the longer string, yielding a distance in [0, 1]. Two empty strings
// have distance 0.
func NormalizedLevenshtein(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
