package triple

// Triple is an RDF-style statement relating a subject to an object by
// means of a predicate (§I). In the requirements case study the subject
// is an Actor (software component or hardware device), the predicate a
// unary "function" (accept a command, send a message, ...) and the
// object the related Parameter (§III-A).
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// New builds a triple from three terms.
func New(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// Equal reports whether two triples are identical term by term.
func (t Triple) Equal(u Triple) bool {
	return t.Subject.Equal(u.Subject) &&
		t.Predicate.Equal(u.Predicate) &&
		t.Object.Equal(u.Object)
}

// String renders the triple in the paper's notation:
// ('OBSW001', Fun:accept_cmd, CmdType:start-up).
func (t Triple) String() string {
	return "(" + t.Subject.String() + ", " + t.Predicate.String() + ", " + t.Object.String() + ")"
}

// Key returns a canonical map key for the triple.
func (t Triple) Key() string {
	return t.Subject.Key() + "\x01" + t.Predicate.Key() + "\x01" + t.Object.Key()
}

// Project returns the term at position i: 0 = subject, 1 = predicate,
// 2 = object. It panics on any other index. The name follows the paper's
// projection notation t^s, t^p, t^o.
func (t Triple) Project(i int) Term {
	switch i {
	case 0:
		return t.Subject
	case 1:
		return t.Predicate
	case 2:
		return t.Object
	default:
		panic("triple: Project index out of range")
	}
}
