// Package triple implements the RDF-style data model used by SemTree:
// terms, (subject, predicate, object) triples, a Turtle-like textual
// syntax, and an append-only triple store with document provenance.
//
// The model follows the paper's convention: a term written X:x is a
// concept x whose meaning is resolved in the vocabulary registered under
// prefix X; a bare term is a concept in the standard vocabulary; a quoted
// term ('OBSW001') is a literal. Literals carry an inferred type so that
// the distance layer can dispatch on it (the paper's case (i): "two
// triples' elements are both literals/constants of the same type").
package triple

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind distinguishes vocabulary concepts from literal constants.
type TermKind uint8

const (
	// Concept is a term resolved against a vocabulary (taxonomy).
	Concept TermKind = iota
	// Literal is a typed constant (string, int, float, bool).
	Literal
)

// String returns a human-readable kind name.
func (k TermKind) String() string {
	switch k {
	case Concept:
		return "concept"
	case Literal:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// LiteralType is the inferred type of a literal term.
type LiteralType uint8

const (
	// LitString is an uninterpreted character string.
	LitString LiteralType = iota
	// LitInt is a base-10 integer.
	LitInt
	// LitFloat is a decimal floating point number.
	LitFloat
	// LitBool is true or false.
	LitBool
)

// String returns a human-readable literal type name.
func (t LiteralType) String() string {
	switch t {
	case LitString:
		return "string"
	case LitInt:
		return "int"
	case LitFloat:
		return "float"
	case LitBool:
		return "bool"
	default:
		return fmt.Sprintf("LiteralType(%d)", uint8(t))
	}
}

// StandardPrefix is the prefix assumed for concepts written without an
// explicit vocabulary prefix ("If X is not specified, we use a standard
// vocabulary" — §III-A).
const StandardPrefix = "std"

// Term is one element of a triple: either a concept in a vocabulary or a
// typed literal. The zero value is the empty string literal.
type Term struct {
	Kind    TermKind
	Prefix  string // vocabulary prefix; meaningful only for concepts
	Value   string // concept name or literal lexical form
	LitType LiteralType
}

// NewConcept returns a concept term in the vocabulary registered under
// prefix. An empty prefix selects the standard vocabulary.
func NewConcept(prefix, value string) Term {
	if prefix == "" {
		prefix = StandardPrefix
	}
	return Term{Kind: Concept, Prefix: prefix, Value: value}
}

// NewLiteral returns a literal term, inferring its type from the lexical
// form: integers, floats and booleans are recognized, everything else is
// a string.
func NewLiteral(value string) Term {
	return Term{Kind: Literal, Value: value, LitType: InferLiteralType(value)}
}

// NewString returns a string literal term without type inference.
func NewString(value string) Term {
	return Term{Kind: Literal, Value: value, LitType: LitString}
}

// InferLiteralType classifies a lexical form as int, float, bool or string.
func InferLiteralType(s string) LiteralType {
	if s == "true" || s == "false" {
		return LitBool
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return LitInt
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return LitFloat
	}
	return LitString
}

// IsConcept reports whether the term is a vocabulary concept.
func (t Term) IsConcept() bool { return t.Kind == Concept }

// IsLiteral reports whether the term is a literal constant.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// Equal reports whether two terms are identical (same kind, prefix,
// value, and — for literals — the same inferred type).
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Value != u.Value {
		return false
	}
	if t.Kind == Concept {
		return t.Prefix == u.Prefix
	}
	return t.LitType == u.LitType
}

// String renders the term in the paper's Turtle-like notation:
// concepts as Prefix:value (the standard prefix is omitted), literals
// single-quoted.
func (t Term) String() string {
	if t.Kind == Literal {
		return "'" + strings.ReplaceAll(t.Value, "'", "\\'") + "'"
	}
	if t.Prefix == "" || t.Prefix == StandardPrefix {
		return t.Value
	}
	return t.Prefix + ":" + t.Value
}

// Key returns a canonical map key for the term.
func (t Term) Key() string {
	if t.Kind == Literal {
		return "L" + t.LitType.String() + "\x00" + t.Value
	}
	p := t.Prefix
	if p == "" {
		p = StandardPrefix
	}
	return "C" + p + "\x00" + t.Value
}
