package triple

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error with its input position.
type ParseError struct {
	Line int    // 1-based line number, 0 when unknown
	Pos  int    // 0-based byte offset within the line
	Msg  string // human-readable description
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("triple: parse error at line %d, pos %d: %s", e.Line, e.Pos, e.Msg)
	}
	return fmt.Sprintf("triple: parse error at pos %d: %s", e.Pos, e.Msg)
}

// ParseTerm parses a single term:
//
//	'quoted text'  → literal (type inferred)
//	Prefix:name    → concept in vocabulary Prefix
//	name           → concept in the standard vocabulary
//	42, 3.14, true → literal (unquoted literals of non-string type)
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, &ParseError{Msg: "empty term"}
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return Term{}, &ParseError{Msg: "unterminated quoted literal"}
		}
		body := s[1 : len(s)-1]
		body = strings.ReplaceAll(body, "\\'", "'")
		return NewLiteral(body), nil
	}
	// Unquoted numeric and boolean tokens are literals.
	if lt := InferLiteralType(s); lt != LitString {
		return Term{Kind: Literal, Value: s, LitType: lt}, nil
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		prefix, name := s[:i], s[i+1:]
		if prefix == "" {
			return Term{}, &ParseError{Msg: "empty vocabulary prefix"}
		}
		if name == "" {
			return Term{}, &ParseError{Msg: "empty concept name after prefix " + prefix}
		}
		return NewConcept(prefix, name), nil
	}
	return NewConcept("", s), nil
}

// ParseTriple parses one triple in the paper's Turtle-like notation:
//
//	('OBSW001', Fun:accept_cmd, CmdType:start-up)
//
// Surrounding parentheses are optional; a trailing period is accepted.
func ParseTriple(s string) (Triple, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, ".")
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = s[1 : len(s)-1]
	}
	parts, err := splitTerms(s)
	if err != nil {
		return Triple{}, err
	}
	if len(parts) != 3 {
		return Triple{}, &ParseError{Msg: fmt.Sprintf("expected 3 terms, got %d", len(parts))}
	}
	var t Triple
	if t.Subject, err = ParseTerm(parts[0]); err != nil {
		return Triple{}, err
	}
	if t.Predicate, err = ParseTerm(parts[1]); err != nil {
		return Triple{}, err
	}
	if t.Object, err = ParseTerm(parts[2]); err != nil {
		return Triple{}, err
	}
	return t, nil
}

// splitTerms splits on commas that are outside single-quoted literals.
func splitTerms(s string) ([]string, error) {
	var parts []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '\'':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			parts = append(parts, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if inQuote {
		return nil, &ParseError{Pos: len(s), Msg: "unterminated quoted literal"}
	}
	parts = append(parts, b.String())
	return parts, nil
}

// ReadAll parses a stream of triples, one per line. Blank lines and lines
// starting with '#' are skipped. On error the returned slice contains the
// triples parsed so far.
func ReadAll(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := ParseTriple(text)
		if err != nil {
			if pe, ok := err.(*ParseError); ok {
				pe.Line = line
			}
			return out, err
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("triple: read: %w", err)
	}
	return out, nil
}

// WriteAll writes triples one per line in the canonical notation.
func WriteAll(w io.Writer, ts []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("triple: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("triple: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("triple: write: %w", err)
	}
	return nil
}
