package triple

import (
	"testing"
	"testing/quick"
)

func TestNewConceptDefaultsPrefix(t *testing.T) {
	c := NewConcept("", "start-up")
	if c.Prefix != StandardPrefix {
		t.Fatalf("prefix = %q, want %q", c.Prefix, StandardPrefix)
	}
	if !c.IsConcept() || c.IsLiteral() {
		t.Fatalf("kind predicates wrong for %v", c)
	}
}

func TestInferLiteralType(t *testing.T) {
	cases := []struct {
		in   string
		want LiteralType
	}{
		{"42", LitInt},
		{"-17", LitInt},
		{"3.14", LitFloat},
		{"-0.5", LitFloat},
		{"1e3", LitFloat},
		{"true", LitBool},
		{"false", LitBool},
		{"OBSW001", LitString},
		{"", LitString},
		{"12abc", LitString},
	}
	for _, c := range cases {
		if got := InferLiteralType(c.in); got != c.want {
			t.Errorf("InferLiteralType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTermEqual(t *testing.T) {
	a := NewConcept("Fun", "accept_cmd")
	b := NewConcept("Fun", "accept_cmd")
	if !a.Equal(b) {
		t.Errorf("identical concepts not equal")
	}
	if a.Equal(NewConcept("Cmd", "accept_cmd")) {
		t.Errorf("different prefixes compare equal")
	}
	if a.Equal(NewLiteral("accept_cmd")) {
		t.Errorf("concept equals literal")
	}
	l1, l2 := NewLiteral("42"), NewString("42")
	if l1.Equal(l2) {
		t.Errorf("int literal equals string literal of same lexical form")
	}
}

func TestTermStringNotation(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewConcept("Fun", "accept_cmd"), "Fun:accept_cmd"},
		{NewConcept("", "start-up"), "start-up"},
		{NewLiteral("OBSW001"), "'OBSW001'"},
		{NewLiteral("o'brien"), `'o\'brien'`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermKeyDistinguishesKinds(t *testing.T) {
	seen := map[string]Term{}
	terms := []Term{
		NewConcept("Fun", "x"),
		NewConcept("Cmd", "x"),
		NewConcept("", "x"),
		NewLiteral("x"),
		NewString("42"),
		NewLiteral("42"),
	}
	for _, tm := range terms {
		k := tm.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v: %q", prev, tm, k)
		}
		seen[k] = tm
	}
}

func TestTermEqualSymmetric(t *testing.T) {
	f := func(p1, v1, p2, v2 string, lit1, lit2 bool) bool {
		mk := func(p, v string, lit bool) Term {
			if lit {
				return NewLiteral(v)
			}
			return NewConcept(p, v)
		}
		a, b := mk(p1, v1, lit1), mk(p2, v2, lit2)
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermKeyEqualConsistency(t *testing.T) {
	// Equal terms must have equal keys and vice versa.
	f := func(p1, v1, p2, v2 string, lit1, lit2 bool) bool {
		mk := func(p, v string, lit bool) Term {
			if lit {
				return NewLiteral(v)
			}
			return NewConcept(p, v)
		}
		a, b := mk(p1, v1, lit1), mk(p2, v2, lit2)
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleProject(t *testing.T) {
	tr := New(NewLiteral("OBSW001"), NewConcept("Fun", "accept_cmd"), NewConcept("CmdType", "start-up"))
	if !tr.Project(0).Equal(tr.Subject) || !tr.Project(1).Equal(tr.Predicate) || !tr.Project(2).Equal(tr.Object) {
		t.Fatalf("Project disagrees with fields")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Project(3) did not panic")
		}
	}()
	tr.Project(3)
}

func TestTripleString(t *testing.T) {
	tr := New(NewLiteral("OBSW001"), NewConcept("Fun", "accept_cmd"), NewConcept("CmdType", "start-up"))
	want := "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
	if got := tr.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTripleKeyUnique(t *testing.T) {
	a := New(NewConcept("", "a"), NewConcept("", "b"), NewConcept("", "c"))
	b := New(NewConcept("", "a"), NewConcept("", "b"), NewConcept("", "d"))
	if a.Key() == b.Key() {
		t.Fatalf("distinct triples share a key")
	}
	if a.Key() != a.Key() {
		t.Fatalf("key not deterministic")
	}
}
