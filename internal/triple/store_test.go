package triple

import (
	"fmt"
	"sync"
	"testing"
)

func testTriple(i int) Triple {
	return New(
		NewLiteral(fmt.Sprintf("OBSW%03d", i)),
		NewConcept("Fun", "accept_cmd"),
		NewConcept("CmdType", "start-up"),
	)
}

func TestStoreAddGet(t *testing.T) {
	s := NewStore()
	id := s.Add(testTriple(1), Provenance{Doc: "D1", Section: "R1", Seq: 0})
	if id != 0 {
		t.Fatalf("first ID = %d, want 0", id)
	}
	e, ok := s.Get(id)
	if !ok {
		t.Fatalf("Get(%d) missing", id)
	}
	if !e.Triple.Equal(testTriple(1)) || e.Prov.Doc != "D1" {
		t.Fatalf("entry mismatch: %+v", e)
	}
	if _, ok := s.Get(99); ok {
		t.Fatalf("Get(99) should report missing")
	}
}

func TestStoreAddAllAssignsSequence(t *testing.T) {
	s := NewStore()
	ts := []Triple{testTriple(1), testTriple(2), testTriple(3)}
	first := s.AddAll(ts, Provenance{Doc: "D1", Section: "R7"})
	if first != 0 {
		t.Fatalf("first = %d, want 0", first)
	}
	for i := 0; i < 3; i++ {
		e, _ := s.Get(ID(i))
		if e.Prov.Seq != i {
			t.Errorf("seq[%d] = %d, want %d", i, e.Prov.Seq, i)
		}
		if e.Prov.Section != "R7" {
			t.Errorf("section[%d] = %q", i, e.Prov.Section)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestStoreMustGetPanicsOnUnknown(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Fatalf("MustGet on empty store did not panic")
		}
	}()
	s.MustGet(0)
}

func TestStoreEachStopsEarly(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Add(testTriple(i), Provenance{})
	}
	n := 0
	s.Each(func(id ID, e Entry) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("visited %d entries, want 4", n)
	}
}

func TestStoreByDoc(t *testing.T) {
	s := NewStore()
	s.Add(testTriple(0), Provenance{Doc: "A"})
	s.Add(testTriple(1), Provenance{Doc: "B"})
	s.Add(testTriple(2), Provenance{Doc: "A"})
	ids := s.ByDoc("A")
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("ByDoc(A) = %v, want [0 2]", ids)
	}
	if got := s.ByDoc("missing"); len(got) != 0 {
		t.Fatalf("ByDoc(missing) = %v, want empty", got)
	}
}

func TestStoreTriplesCopy(t *testing.T) {
	s := NewStore()
	s.Add(testTriple(0), Provenance{})
	ts := s.Triples()
	ts[0] = testTriple(42)
	if s.MustGet(0).Equal(testTriple(42)) {
		t.Fatalf("Triples() aliases internal storage")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := s.Add(testTriple(i), Provenance{Doc: fmt.Sprintf("D%d", w)})
				if _, ok := s.Get(id); !ok {
					t.Errorf("Get after Add failed for %d", id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*200)
	}
}
