package triple

import (
	"fmt"
	"sync"
)

// ID identifies a triple inside a Store. IDs are dense, starting at 0,
// and double as the payload identifiers carried by index points.
type ID uint64

// Provenance records where a triple came from: the document, the section
// (requirement) inside it, and the sequence number of the triple within
// the section ("the order of the triples reflects the temporal sequence
// of the requirement elements" — §III-A, footnote 1).
type Provenance struct {
	Doc     string // document identifier
	Section string // section / requirement identifier
	Seq     int    // position of the triple within the section
}

// Entry is a stored triple together with its provenance.
type Entry struct {
	Triple Triple
	Prov   Provenance
}

// Store is an append-only collection of triples with provenance. It is
// safe for concurrent use: writes take an exclusive lock, reads a shared
// one. IDs are never reused.
type Store struct {
	mu      sync.RWMutex
	entries []Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends a triple and returns its ID.
func (s *Store) Add(t Triple, p Provenance) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, Entry{Triple: t, Prov: p})
	return ID(len(s.entries) - 1)
}

// AddAll appends a batch of triples sharing one provenance, assigning
// sequence numbers in order, and returns the ID of the first one.
func (s *Store) AddAll(ts []Triple, p Provenance) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := ID(len(s.entries))
	for i, t := range ts {
		pi := p
		pi.Seq = p.Seq + i
		s.entries = append(s.entries, Entry{Triple: t, Prov: pi})
	}
	return first
}

// Get returns the entry for id. The second result is false when the ID
// is out of range.
func (s *Store) Get(id ID) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.entries) {
		return Entry{}, false
	}
	return s.entries[id], true
}

// MustGet returns the triple for id and panics if the ID is unknown.
// It is intended for internal plumbing where IDs are known valid.
func (s *Store) MustGet(id ID) Triple {
	e, ok := s.Get(id)
	if !ok {
		panic(fmt.Sprintf("triple: unknown ID %d", id))
	}
	return e.Triple
}

// Len returns the number of stored triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Each calls fn for every entry in ID order until fn returns false.
// The store must not be mutated from inside fn.
func (s *Store) Each(fn func(ID, Entry) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, e := range s.entries {
		if !fn(ID(i), e) {
			return
		}
	}
}

// Triples returns a copy of all stored triples in ID order.
func (s *Store) Triples() []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Triple, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Triple
	}
	return out
}

// ByDoc returns the IDs of all triples whose provenance names doc,
// in ID order.
func (s *Store) ByDoc(doc string) []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ID
	for i, e := range s.entries {
		if e.Prov.Doc == doc {
			out = append(out, ID(i))
		}
	}
	return out
}
