package triple

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTermForms(t *testing.T) {
	cases := []struct {
		in   string
		want Term
	}{
		{"Fun:accept_cmd", NewConcept("Fun", "accept_cmd")},
		{"start-up", NewConcept("", "start-up")},
		{"'OBSW001'", NewLiteral("OBSW001")},
		{"  CmdType:start-up ", NewConcept("CmdType", "start-up")},
		{"42", Term{Kind: Literal, Value: "42", LitType: LitInt}},
		{"3.5", Term{Kind: Literal, Value: "3.5", LitType: LitFloat}},
		{"true", Term{Kind: Literal, Value: "true", LitType: LitBool}},
		{`'o\'brien'`, NewLiteral("o'brien")},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.in)
		if err != nil {
			t.Errorf("ParseTerm(%q) error: %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseTerm(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "'unterminated", ":name", "Prefix:"} {
		if _, err := ParseTerm(in); err == nil {
			t.Errorf("ParseTerm(%q): expected error", in)
		}
	}
}

func TestParseTriplePaperExample(t *testing.T) {
	in := "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
	tr, err := ParseTriple(in)
	if err != nil {
		t.Fatalf("ParseTriple: %v", err)
	}
	want := New(NewLiteral("OBSW001"), NewConcept("Fun", "accept_cmd"), NewConcept("CmdType", "start-up"))
	if !tr.Equal(want) {
		t.Fatalf("got %v, want %v", tr, want)
	}
}

func TestParseTripleVariants(t *testing.T) {
	variants := []string{
		"('OBSW001', Fun:accept_cmd, CmdType:start-up)",
		"'OBSW001', Fun:accept_cmd, CmdType:start-up",
		"  ( 'OBSW001' ,Fun:accept_cmd,   CmdType:start-up )  ",
		"('OBSW001', Fun:accept_cmd, CmdType:start-up).",
	}
	want := New(NewLiteral("OBSW001"), NewConcept("Fun", "accept_cmd"), NewConcept("CmdType", "start-up"))
	for _, v := range variants {
		tr, err := ParseTriple(v)
		if err != nil {
			t.Errorf("ParseTriple(%q): %v", v, err)
			continue
		}
		if !tr.Equal(want) {
			t.Errorf("ParseTriple(%q) = %v, want %v", v, tr, want)
		}
	}
}

func TestParseTripleCommaInsideLiteral(t *testing.T) {
	tr, err := ParseTriple("('a, b', p, o)")
	if err != nil {
		t.Fatalf("ParseTriple: %v", err)
	}
	if tr.Subject.Value != "a, b" {
		t.Fatalf("subject = %q, want %q", tr.Subject.Value, "a, b")
	}
}

func TestParseTripleErrors(t *testing.T) {
	for _, in := range []string{"(a, b)", "(a, b, c, d)", "('x, y, z)", ""} {
		if _, err := ParseTriple(in); err == nil {
			t.Errorf("ParseTriple(%q): expected error", in)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	// Parsing the rendered form of any triple built from simple tokens
	// must give back the same triple.
	f := func(sv, pv, ov uint8) bool {
		names := []string{"accept_cmd", "block_cmd", "send_msg", "start-up", "shutdown", "OBSW001"}
		tr := New(
			NewLiteral(names[int(sv)%len(names)]),
			NewConcept("Fun", names[int(pv)%len(names)]),
			NewConcept("CmdType", names[int(ov)%len(names)]),
		)
		back, err := ParseTriple(tr.String())
		return err == nil && back.Equal(tr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadAllWriteAllRoundTrip(t *testing.T) {
	ts := []Triple{
		New(NewLiteral("OBSW001"), NewConcept("Fun", "acquire_in"), NewConcept("InType", "pre-launch_phase")),
		New(NewLiteral("OBSW001"), NewConcept("Fun", "accept_cmd"), NewConcept("CmdType", "start-up")),
		New(NewLiteral("OBSW001"), NewConcept("Fun", "send_msg"), NewConcept("MsgType", "power_amplifier")),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, ts); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip length %d, want %d", len(back), len(ts))
	}
	for i := range ts {
		if !back[i].Equal(ts[i]) {
			t.Errorf("triple %d: got %v, want %v", i, back[i], ts[i])
		}
	}
}

func TestReadAllSkipsCommentsAndBlanks(t *testing.T) {
	in := `# requirements extract
('OBSW001', Fun:accept_cmd, CmdType:start-up)

# another comment
('OBSW002', Fun:send_msg, MsgType:telemetry)
`
	ts, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
}

func TestReadAllReportsLineNumbers(t *testing.T) {
	in := "('a', p, o)\nbogus triple here\n"
	_, err := ReadAll(strings.NewReader(in))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}
