package vocab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testVocabulary builds a small diamond-shaped taxonomy:
//
//	         entity
//	        /      \
//	    moving    fixed
//	   /   |  \      \
//	car  boat  amphib  house
//	             |
//	           (also child of fixed → DAG diamond)
func testVocabulary(t *testing.T) *Vocabulary {
	t.Helper()
	b := NewBuilder("T", "entity")
	moving := b.Concept("moving", 0)
	fixed := b.Concept("fixed", 0)
	b.Concept("car", moving)
	b.Concept("boat", moving)
	b.Concept("amphib", moving, fixed)
	b.Concept("house", fixed)
	v, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return v
}

func id(t *testing.T, v *Vocabulary, name string) ConceptID {
	t.Helper()
	c, ok := v.Lookup(name)
	if !ok {
		t.Fatalf("concept %q missing", name)
	}
	return c
}

func TestDepths(t *testing.T) {
	v := testVocabulary(t)
	cases := map[string]int{
		"entity": 1, "moving": 2, "fixed": 2,
		"car": 3, "boat": 3, "amphib": 3, "house": 3,
	}
	for name, want := range cases {
		if got := v.Depth(id(t, v, name)); got != want {
			t.Errorf("Depth(%s) = %d, want %d", name, got, want)
		}
	}
	if v.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", v.MaxDepth())
	}
}

func TestLCS(t *testing.T) {
	v := testVocabulary(t)
	cases := []struct{ a, b, want string }{
		{"car", "boat", "moving"},
		{"car", "house", "entity"},
		{"car", "car", "car"},
		{"car", "moving", "moving"},
		{"amphib", "house", "fixed"},
		{"amphib", "car", "moving"},
		{"entity", "car", "entity"},
	}
	for _, c := range cases {
		got := v.LCS(id(t, v, c.a), id(t, v, c.b))
		if v.Name(got) != c.want {
			t.Errorf("LCS(%s, %s) = %s, want %s", c.a, c.b, v.Name(got), c.want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	v := testVocabulary(t)
	cases := []struct {
		a, b string
		want int
	}{
		{"car", "car", 0},
		{"car", "moving", 1},
		{"car", "boat", 2},
		{"car", "house", 4},
		{"amphib", "house", 2}, // via fixed
		{"entity", "car", 2},
	}
	for _, c := range cases {
		if got := v.ShortestPath(id(t, v, c.a), id(t, v, c.b)); got != c.want {
			t.Errorf("ShortestPath(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAncestorsAndIsAncestor(t *testing.T) {
	v := testVocabulary(t)
	amphib := id(t, v, "amphib")
	anc := v.Ancestors(amphib)
	for _, name := range []string{"amphib", "moving", "fixed", "entity"} {
		if !anc[id(t, v, name)] {
			t.Errorf("Ancestors(amphib) missing %s", name)
		}
	}
	if anc[id(t, v, "car")] {
		t.Errorf("Ancestors(amphib) wrongly contains car")
	}
	if !v.IsAncestor(id(t, v, "entity"), amphib) {
		t.Errorf("entity should be ancestor of amphib")
	}
	if v.IsAncestor(id(t, v, "car"), amphib) {
		t.Errorf("car should not be ancestor of amphib")
	}
}

func TestSynonymLookup(t *testing.T) {
	b := NewBuilder("T", "root")
	x := b.Concept("accept_cmd", 0)
	b.Synonym(x, "accept_command")
	v, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, ok := v.Lookup("accept_command")
	if !ok || got != x {
		t.Fatalf("synonym lookup = (%d, %v), want (%d, true)", got, ok, x)
	}
	if v.Name(got) != "accept_cmd" {
		t.Fatalf("canonical name = %q", v.Name(got))
	}
}

func TestAntonymSymmetric(t *testing.T) {
	b := NewBuilder("T", "root")
	a := b.Concept("on", 0)
	c := b.Concept("off", 0)
	b.Antonym(a, c)
	b.Antonym(a, c) // duplicate must be ignored
	v, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !v.IsAntonym(a, c) || !v.IsAntonym(c, a) {
		t.Fatalf("antonym relation not symmetric")
	}
	if len(v.Antonyms(a)) != 1 {
		t.Fatalf("duplicate antonym recorded: %v", v.Antonyms(a))
	}
	if v.IsAntonym(a, a) {
		t.Fatalf("concept is its own antonym")
	}
}

func TestICProperties(t *testing.T) {
	v := testVocabulary(t)
	if got := v.IC(v.Root()); got != 0 {
		t.Errorf("IC(root) = %f, want 0", got)
	}
	// IC must be monotonically non-decreasing along any root→leaf path.
	car := id(t, v, "car")
	moving := id(t, v, "moving")
	if v.IC(car) < v.IC(moving) {
		t.Errorf("IC(car)=%f < IC(moving)=%f", v.IC(car), v.IC(moving))
	}
	if v.MaxIC() <= 0 {
		t.Errorf("MaxIC = %f, want > 0", v.MaxIC())
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate concept", func(t *testing.T) {
		b := NewBuilder("T", "root")
		b.Concept("x", 0)
		b.Concept("x", 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected duplicate error")
		}
	})
	t.Run("no parent", func(t *testing.T) {
		b := NewBuilder("T", "root")
		b.Concept("orphan")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected no-parent error")
		}
	})
	t.Run("invalid parent", func(t *testing.T) {
		b := NewBuilder("T", "root")
		b.Concept("x", 42)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected invalid-parent error")
		}
	})
	t.Run("synonym collision", func(t *testing.T) {
		b := NewBuilder("T", "root")
		x := b.Concept("x", 0)
		b.Concept("y", 0)
		b.Synonym(x, "y")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected synonym collision error")
		}
	})
	t.Run("negative frequency", func(t *testing.T) {
		b := NewBuilder("T", "root")
		x := b.Concept("x", 0)
		b.Frequency(x, -1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected frequency error")
		}
	})
}

// randomVocabulary builds a random tree-shaped taxonomy for property tests.
func randomVocabulary(r *rand.Rand, n int) *Vocabulary {
	b := NewBuilder("R", "c0")
	ids := []ConceptID{0}
	for i := 1; i < n; i++ {
		parent := ids[r.Intn(len(ids))]
		id := b.Concept(nameOf(i), parent)
		ids = append(ids, id)
	}
	return b.MustBuild()
}

func nameOf(i int) string {
	return "c" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestLCSPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		v := randomVocabulary(r, 3+r.Intn(60))
		for q := 0; q < 30; q++ {
			a := ConceptID(r.Intn(v.Len()))
			c := ConceptID(r.Intn(v.Len()))
			lcs := v.LCS(a, c)
			if !v.IsAncestor(lcs, a) || !v.IsAncestor(lcs, c) {
				t.Fatalf("LCS(%d,%d)=%d is not a common ancestor", a, c, lcs)
			}
			if v.Depth(lcs) > v.Depth(a) || v.Depth(lcs) > v.Depth(c) {
				t.Fatalf("LCS deeper than an argument")
			}
			if v.LCS(c, a) != lcs {
				// In a tree the LCS is unique, so it must be symmetric.
				t.Fatalf("LCS not symmetric: LCS(%d,%d)=%d, LCS(%d,%d)=%d",
					a, c, lcs, c, a, v.LCS(c, a))
			}
		}
	}
}

func TestShortestPathPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		v := randomVocabulary(r, 3+r.Intn(60))
		for q := 0; q < 30; q++ {
			a := ConceptID(r.Intn(v.Len()))
			c := ConceptID(r.Intn(v.Len()))
			d := v.ShortestPath(a, c)
			if d != v.ShortestPath(c, a) {
				t.Fatalf("path not symmetric")
			}
			if (d == 0) != (a == c) {
				t.Fatalf("path zero iff same concept violated: d=%d a=%d c=%d", d, a, c)
			}
			// In a tree, the path through the LCS is the shortest path.
			lcs := v.LCS(a, c)
			want := v.Depth(a) + v.Depth(c) - 2*v.Depth(lcs)
			if d != want {
				t.Fatalf("path %d != depth formula %d", d, want)
			}
		}
	}
}

func TestDepthPropertyQuick(t *testing.T) {
	v := Functions()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := ConceptID(r.Intn(v.Len()))
		// Depth is 1 + min parent depth.
		if c == v.Root() {
			return v.Depth(c) == 1
		}
		min := 1 << 30
		for _, p := range v.Parents(c) {
			if v.Depth(p) < min {
				min = v.Depth(p)
			}
		}
		return v.Depth(c) == min+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(Functions(), CommandTypes())
	if _, ok := r.Get("Fun"); !ok {
		t.Fatal("Fun missing")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("unexpected vocabulary")
	}
	if err := r.Register(Functions()); err == nil {
		t.Fatal("duplicate register should fail")
	}
	got := r.Prefixes()
	if len(got) != 2 || got[0] != "CmdType" || got[1] != "Fun" {
		t.Fatalf("Prefixes = %v", got)
	}
}

func TestBuiltinVocabularies(t *testing.T) {
	reg := DefaultRegistry()
	for _, prefix := range []string{"Fun", "CmdType", "MsgType", "InType", "std"} {
		v, ok := reg.Get(prefix)
		if !ok {
			t.Fatalf("builtin %q missing", prefix)
		}
		if v.Len() < 10 {
			t.Errorf("%q suspiciously small: %d concepts", prefix, v.Len())
		}
		if v.MaxDepth() < 3 {
			t.Errorf("%q too shallow: depth %d", prefix, v.MaxDepth())
		}
	}
	// The paper's running example must resolve.
	fun, _ := reg.Get("Fun")
	accept, ok := fun.Lookup("accept_cmd")
	if !ok {
		t.Fatal("accept_cmd missing")
	}
	block, ok := fun.Lookup("block_cmd")
	if !ok {
		t.Fatal("block_cmd missing")
	}
	if !fun.IsAntonym(accept, block) {
		t.Fatal("accept_cmd and block_cmd must be antonyms (§II)")
	}
	cmd, _ := reg.Get("CmdType")
	if _, ok := cmd.Lookup("start-up"); !ok {
		t.Fatal("start-up missing")
	}
}

func TestBuiltinAntonymsShareArea(t *testing.T) {
	// Antonym pairs should be semantically close (same functional area):
	// that's what makes the paper's k-NN retrieval of inconsistencies
	// work. Verify every antonym pair has an LCS below the root.
	for _, v := range []*Vocabulary{Functions(), CommandTypes(), MessageTypes()} {
		for c := ConceptID(0); int(c) < v.Len(); c++ {
			for _, a := range v.Antonyms(c) {
				if lcs := v.LCS(c, a); lcs == v.Root() {
					t.Errorf("%s: antonyms %s / %s only share the root",
						v.Prefix(), v.Name(c), v.Name(a))
				}
			}
		}
	}
}
