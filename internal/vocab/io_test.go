package vocab

import (
	"bytes"
	"strings"
	"testing"
)

const sampleVocab = `# test vocabulary
vocab T entity
concept moving entity
concept fixed entity
concept car moving
concept amphib moving fixed   # diamond
synonym car automobile
antonym car amphib
freq car 42
`

func TestParseVocabulary(t *testing.T) {
	v, err := ParseVocabulary(strings.NewReader(sampleVocab))
	if err != nil {
		t.Fatalf("ParseVocabulary: %v", err)
	}
	if v.Prefix() != "T" || v.Len() != 5 {
		t.Fatalf("prefix %q len %d", v.Prefix(), v.Len())
	}
	car, ok := v.Lookup("automobile")
	if !ok || v.Name(car) != "car" {
		t.Fatalf("synonym lookup failed: %v %v", car, ok)
	}
	amphib, _ := v.Lookup("amphib")
	if !v.IsAntonym(car, amphib) {
		t.Fatal("antonym not recorded")
	}
	if len(v.Parents(amphib)) != 2 {
		t.Fatalf("amphib parents = %v", v.Parents(amphib))
	}
	if v.Frequency(car) != 42 {
		t.Fatalf("freq = %f", v.Frequency(car))
	}
}

func TestParseVocabularyErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"missing header":    "concept a b\n",
		"bad header":        "vocab OnlyPrefix\n",
		"unknown parent":    "vocab T root\nconcept a nope\n",
		"orphan concept":    "vocab T root\nconcept a\n",
		"unknown directive": "vocab T root\nfrobnicate x\n",
		"bad freq":          "vocab T root\nconcept a root\nfreq a lots\n",
		"freq unknown":      "vocab T root\nfreq nope 3\n",
		"synonym unknown":   "vocab T root\nsynonym nope alias\n",
		"antonym unknown":   "vocab T root\nconcept a root\nantonym a nope\n",
		"duplicate header":  "vocab T root\nvocab U root2\n",
	}
	for name, in := range cases {
		if _, err := ParseVocabulary(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	for _, orig := range []*Vocabulary{Functions(), CommandTypes(), MessageTypes(), InputTypes(), General()} {
		var buf bytes.Buffer
		if err := WriteVocabulary(&buf, orig); err != nil {
			t.Fatalf("%s: write: %v", orig.Prefix(), err)
		}
		back, err := ParseVocabulary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: parse: %v", orig.Prefix(), err)
		}
		if back.Prefix() != orig.Prefix() || back.Len() != orig.Len() {
			t.Fatalf("%s: prefix/len changed: %s/%d", orig.Prefix(), back.Prefix(), back.Len())
		}
		for id := ConceptID(0); int(id) < orig.Len(); id++ {
			name := orig.Name(id)
			bid, ok := back.Lookup(name)
			if !ok {
				t.Fatalf("%s: concept %q lost", orig.Prefix(), name)
			}
			if back.Depth(bid) != orig.Depth(id) {
				t.Fatalf("%s: depth of %q changed: %d vs %d",
					orig.Prefix(), name, back.Depth(bid), orig.Depth(id))
			}
			if back.IC(bid) != orig.IC(id) {
				t.Fatalf("%s: IC of %q changed", orig.Prefix(), name)
			}
			if len(back.Antonyms(bid)) != len(orig.Antonyms(id)) {
				t.Fatalf("%s: antonyms of %q changed", orig.Prefix(), name)
			}
		}
	}
}
