package vocab

import (
	"errors"
	"fmt"
)

// Builder constructs a Vocabulary incrementally. The first concept added
// becomes the root; every later concept must name at least one parent.
// Build validates the result (single root, acyclic, fully connected).
type Builder struct {
	v    *Vocabulary
	errs []error
}

// NewBuilder returns a builder for a vocabulary with the given prefix.
// rootName becomes the root concept.
func NewBuilder(prefix, rootName string) *Builder {
	b := &Builder{v: &Vocabulary{
		prefix:   prefix,
		byName:   make(map[string]ConceptID),
		antonyms: make(map[ConceptID][]ConceptID),
	}}
	b.addConcept(rootName)
	return b
}

func (b *Builder) addConcept(name string) ConceptID {
	if name == "" {
		b.errs = append(b.errs, errors.New("vocab: empty concept name"))
		return NoConcept
	}
	if _, dup := b.v.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("vocab: duplicate concept %q", name))
		return NoConcept
	}
	id := ConceptID(len(b.v.names))
	b.v.names = append(b.v.names, name)
	b.v.byName[name] = id
	b.v.parents = append(b.v.parents, nil)
	b.v.children = append(b.v.children, nil)
	b.v.freq = append(b.v.freq, 0)
	return id
}

// Concept adds a concept under the given parents and returns its ID.
// At least one parent is required.
func (b *Builder) Concept(name string, parents ...ConceptID) ConceptID {
	if len(parents) == 0 {
		b.errs = append(b.errs, fmt.Errorf("vocab: concept %q has no parent", name))
		return NoConcept
	}
	id := b.addConcept(name)
	if id == NoConcept {
		return id
	}
	for _, p := range parents {
		if p < 0 || int(p) >= len(b.v.names) || p == id {
			b.errs = append(b.errs, fmt.Errorf("vocab: concept %q: invalid parent %d", name, p))
			continue
		}
		b.v.parents[id] = append(b.v.parents[id], p)
		b.v.children[p] = append(b.v.children[p], id)
	}
	return id
}

// Synonym registers an alternative surface form resolving to id.
func (b *Builder) Synonym(id ConceptID, form string) {
	if id < 0 || int(id) >= len(b.v.names) {
		b.errs = append(b.errs, fmt.Errorf("vocab: synonym %q: invalid concept %d", form, id))
		return
	}
	if prev, dup := b.v.byName[form]; dup && prev != id {
		b.errs = append(b.errs, fmt.Errorf("vocab: surface form %q already maps to %q", form, b.v.names[prev]))
		return
	}
	b.v.byName[form] = id
}

// Antonym records a symmetric antinomy relation between a and b.
func (b *Builder) Antonym(a, c ConceptID) {
	if a < 0 || c < 0 || int(a) >= len(b.v.names) || int(c) >= len(b.v.names) || a == c {
		b.errs = append(b.errs, fmt.Errorf("vocab: invalid antonym pair (%d, %d)", a, c))
		return
	}
	if !b.v.IsAntonym(a, c) {
		b.v.antonyms[a] = append(b.v.antonyms[a], c)
		b.v.antonyms[c] = append(b.v.antonyms[c], a)
	}
}

// Frequency sets the own corpus occurrence count of id (default 0; a
// Laplace +1 smoothing is applied when information content is derived).
func (b *Builder) Frequency(id ConceptID, count float64) {
	if id < 0 || int(id) >= len(b.v.names) || count < 0 {
		b.errs = append(b.errs, fmt.Errorf("vocab: invalid frequency (%d, %f)", id, count))
		return
	}
	b.v.freq[id] = count
}

// Build validates and finalizes the vocabulary. After Build the builder
// must not be reused.
func (b *Builder) Build() (*Vocabulary, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	b.v.computeDerived()
	return b.v, nil
}

// MustBuild is Build for static vocabulary definitions; it panics on error.
func (b *Builder) MustBuild() *Vocabulary {
	v, err := b.Build()
	if err != nil {
		panic(err)
	}
	return v
}

func (b *Builder) validate() error {
	v := b.v
	n := len(v.names)
	// Acyclicity via DFS coloring over parent→child edges.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	var visit func(c ConceptID) error
	visit = func(c ConceptID) error {
		color[c] = gray
		for _, ch := range v.children[c] {
			switch color[ch] {
			case gray:
				return fmt.Errorf("vocab %q: cycle through %q", v.prefix, v.names[ch])
			case white:
				if err := visit(ch); err != nil {
					return err
				}
			}
		}
		color[c] = black
		return nil
	}
	if err := visit(0); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if color[i] != black {
			return fmt.Errorf("vocab %q: concept %q unreachable from root", v.prefix, v.names[i])
		}
	}
	return nil
}
