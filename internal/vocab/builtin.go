package vocab

// This file defines the built-in vocabularies that substitute for the
// paper's proprietary CIRA requirements vocabulary and the "standard
// vocabulary" used for unprefixed concepts. The domain follows §III-A:
// predicates are unary functions ('accept a command', 'send a message',
// 'acquire an input', ...), objects are the related parameters (command
// types, message types, input types), subjects are actors and stay
// literals. Antonym ("antinomy") pairs are what the inconsistency case
// study queries against (§II, §IV-B).

// Functions returns the predicate vocabulary (prefix "Fun"): the unary
// functions software requirements are expressed with, organized by
// functional area, with the antinomy relation between contradictory
// functions.
func Functions() *Vocabulary {
	b := NewBuilder("Fun", "function")
	root := ConceptID(0)

	// Command handling.
	cmdH := b.Concept("command_handling", root)
	acceptCmd := b.Concept("accept_cmd", cmdH)
	rejectCmd := b.Concept("reject_cmd", cmdH)
	blockCmd := b.Concept("block_cmd", cmdH)
	executeCmd := b.Concept("execute_cmd", cmdH)
	abortCmd := b.Concept("abort_cmd", cmdH)
	queueCmd := b.Concept("queue_cmd", cmdH)
	discardCmd := b.Concept("discard_cmd", cmdH)
	b.Synonym(acceptCmd, "accept_command")
	b.Synonym(blockCmd, "block_command")
	b.Antonym(acceptCmd, blockCmd)
	b.Antonym(acceptCmd, rejectCmd)
	b.Antonym(executeCmd, abortCmd)
	b.Antonym(queueCmd, discardCmd)

	// Messaging.
	msg := b.Concept("messaging", root)
	sendMsg := b.Concept("send_msg", msg)
	receiveMsg := b.Concept("receive_msg", msg)
	broadcastMsg := b.Concept("broadcast_msg", msg)
	suppressMsg := b.Concept("suppress_msg", msg)
	forwardMsg := b.Concept("forward_msg", msg)
	dropMsg := b.Concept("drop_msg", msg)
	b.Synonym(sendMsg, "send_message")
	b.Antonym(sendMsg, suppressMsg)
	b.Antonym(broadcastMsg, suppressMsg)
	b.Antonym(forwardMsg, dropMsg)

	// Data acquisition.
	acq := b.Concept("acquisition", root)
	acquireIn := b.Concept("acquire_in", acq)
	releaseIn := b.Concept("release_in", acq)
	sampleIn := b.Concept("sample_in", acq)
	ignoreIn := b.Concept("ignore_in", acq)
	b.Synonym(acquireIn, "acquire_input")
	b.Antonym(acquireIn, releaseIn)
	b.Antonym(acquireIn, ignoreIn)
	b.Antonym(sampleIn, ignoreIn)

	// Actuation, split in sub-areas for taxonomy depth.
	act := b.Concept("actuation", root)
	power := b.Concept("power_control", act)
	powerOn := b.Concept("power_on", power)
	powerOff := b.Concept("power_off", power)
	b.Antonym(powerOn, powerOff)
	valve := b.Concept("valve_control", act)
	openValve := b.Concept("open_valve", valve)
	closeValve := b.Concept("close_valve", valve)
	b.Antonym(openValve, closeValve)
	safety := b.Concept("safety_control", act)
	arm := b.Concept("arm_device", safety)
	disarm := b.Concept("disarm_device", safety)
	lock := b.Concept("lock_device", safety)
	unlock := b.Concept("unlock_device", safety)
	b.Antonym(arm, disarm)
	b.Antonym(lock, unlock)
	mode := b.Concept("mode_control", act)
	start := b.Concept("start_unit", mode)
	stop := b.Concept("stop_unit", mode)
	enable := b.Concept("enable_unit", mode)
	disable := b.Concept("disable_unit", mode)
	activate := b.Concept("activate_unit", mode)
	deactivate := b.Concept("deactivate_unit", mode)
	b.Antonym(start, stop)
	b.Antonym(enable, disable)
	b.Antonym(activate, deactivate)

	// Monitoring.
	mon := b.Concept("monitoring", root)
	monitor := b.Concept("monitor_param", mon)
	report := b.Concept("report_status", mon)
	raiseAlarm := b.Concept("raise_alarm", mon)
	clearAlarm := b.Concept("clear_alarm", mon)
	b.Antonym(raiseAlarm, clearAlarm)
	_ = monitor
	_ = report

	// Data management.
	data := b.Concept("data_management", root)
	storeData := b.Concept("store_data", data)
	eraseData := b.Concept("erase_data", data)
	readData := b.Concept("read_data", data)
	writeData := b.Concept("write_data", data)
	checksum := b.Concept("checksum_data", data)
	b.Antonym(storeData, eraseData)
	_ = readData
	_ = writeData
	_ = checksum

	// Corpus frequencies drive Resnik / Lin information content;
	// command handling and messaging dominate real requirement corpora.
	for id, n := range map[ConceptID]float64{
		acceptCmd: 240, rejectCmd: 60, blockCmd: 45, executeCmd: 180,
		abortCmd: 30, queueCmd: 50, discardCmd: 20,
		sendMsg: 260, receiveMsg: 210, broadcastMsg: 40, suppressMsg: 15,
		forwardMsg: 35, dropMsg: 18,
		acquireIn: 150, releaseIn: 30, sampleIn: 90, ignoreIn: 12,
		powerOn: 70, powerOff: 65, openValve: 25, closeValve: 25,
		arm: 20, disarm: 20, lock: 15, unlock: 15,
		start: 110, stop: 95, enable: 85, disable: 80,
		activate: 60, deactivate: 55,
		monitor: 130, report: 120, raiseAlarm: 45, clearAlarm: 25,
		storeData: 75, eraseData: 22, readData: 95, writeData: 88, checksum: 28,
	} {
		b.Frequency(id, n)
	}
	return b.MustBuild()
}

// CommandTypes returns the vocabulary of command parameters
// (prefix "CmdType").
func CommandTypes() *Vocabulary {
	b := NewBuilder("CmdType", "command")
	root := ConceptID(0)

	sys := b.Concept("system_cmd", root)
	startUp := b.Concept("start-up", sys)
	shutdown := b.Concept("shutdown", sys)
	reboot := b.Concept("reboot", sys)
	selfTest := b.Concept("self-test", sys)
	b.Synonym(startUp, "startup")
	b.Antonym(startUp, shutdown)

	mode := b.Concept("mode_cmd", root)
	safeMode := b.Concept("safe_mode", mode)
	nominalMode := b.Concept("nominal_mode", mode)
	standbyMode := b.Concept("standby_mode", mode)
	maintenanceMode := b.Concept("maintenance_mode", mode)
	b.Antonym(safeMode, nominalMode)

	payload := b.Concept("payload_cmd", root)
	capture := b.Concept("capture_image", payload)
	downlink := b.Concept("downlink_data", payload)
	calibrate := b.Concept("calibrate_sensor", payload)

	prop := b.Concept("propulsion_cmd", root)
	ignite := b.Concept("ignite_engine", prop)
	cutoff := b.Concept("engine_cutoff", prop)
	throttleUp := b.Concept("throttle_up", prop)
	throttleDown := b.Concept("throttle_down", prop)
	b.Antonym(ignite, cutoff)
	b.Antonym(throttleUp, throttleDown)

	for id, n := range map[ConceptID]float64{
		startUp: 180, shutdown: 140, reboot: 40, selfTest: 95,
		safeMode: 75, nominalMode: 80, standbyMode: 55, maintenanceMode: 25,
		capture: 60, downlink: 110, calibrate: 45,
		ignite: 30, cutoff: 28, throttleUp: 18, throttleDown: 18,
	} {
		b.Frequency(id, n)
	}
	return b.MustBuild()
}

// MessageTypes returns the vocabulary of message parameters
// (prefix "MsgType").
func MessageTypes() *Vocabulary {
	b := NewBuilder("MsgType", "message")
	root := ConceptID(0)

	tm := b.Concept("telemetry", root)
	housekeeping := b.Concept("housekeeping", tm)
	powerAmp := b.Concept("power_amplifier", tm)
	thermal := b.Concept("thermal_status", tm)
	attitude := b.Concept("attitude_data", tm)
	gps := b.Concept("gps_fix", tm)

	alert := b.Concept("alert", root)
	fault := b.Concept("fault_alert", alert)
	overheat := b.Concept("overheat_alert", alert)
	lowPower := b.Concept("low_power_alert", alert)
	watchdog := b.Concept("watchdog_alert", alert)

	ack := b.Concept("acknowledgement", root)
	cmdAck := b.Concept("command_ack", ack)
	cmdNack := b.Concept("command_nack", ack)
	b.Antonym(cmdAck, cmdNack)

	for id, n := range map[ConceptID]float64{
		housekeeping: 210, powerAmp: 90, thermal: 130, attitude: 120, gps: 70,
		fault: 85, overheat: 35, lowPower: 40, watchdog: 20,
		cmdAck: 160, cmdNack: 45,
	} {
		b.Frequency(id, n)
	}
	return b.MustBuild()
}

// InputTypes returns the vocabulary of input parameters (prefix "InType").
func InputTypes() *Vocabulary {
	b := NewBuilder("InType", "input")
	root := ConceptID(0)

	phase := b.Concept("phase_input", root)
	preLaunch := b.Concept("pre-launch_phase", phase)
	launch := b.Concept("launch_phase", phase)
	orbit := b.Concept("orbit_phase", phase)
	reentry := b.Concept("reentry_phase", phase)

	sensor := b.Concept("sensor_input", root)
	temp := b.Concept("temperature_reading", sensor)
	pressure := b.Concept("pressure_reading", sensor)
	gyro := b.Concept("gyro_reading", sensor)
	star := b.Concept("star_tracker_fix", sensor)
	sun := b.Concept("sun_sensor_reading", sensor)

	bus := b.Concept("bus_input", root)
	mil1553 := b.Concept("mil_std_1553_frame", bus)
	can := b.Concept("can_frame", bus)
	spacewire := b.Concept("spacewire_packet", bus)

	for id, n := range map[ConceptID]float64{
		preLaunch: 80, launch: 95, orbit: 160, reentry: 40,
		temp: 140, pressure: 110, gyro: 90, star: 55, sun: 45,
		mil1553: 75, can: 60, spacewire: 85,
	} {
		b.Frequency(id, n)
	}
	return b.MustBuild()
}

// General returns the small general-purpose vocabulary used for concepts
// written without a prefix ("If X is not specified, we use a standard
// vocabulary" — §III-A). Its shape mimics the upper levels of a
// WordNet-like noun hierarchy.
func General() *Vocabulary {
	b := NewBuilder("std", "entity")
	root := ConceptID(0)

	phys := b.Concept("physical_entity", root)
	object := b.Concept("object", phys)
	device := b.Concept("device", object)
	computer := b.Concept("computer", device)
	sensorDev := b.Concept("sensor", device)
	actuatorDev := b.Concept("actuator", device)
	substance := b.Concept("substance", phys)
	fuel := b.Concept("fuel", substance)
	gas := b.Concept("gas", substance)

	abstract := b.Concept("abstract_entity", root)
	attribute := b.Concept("attribute", abstract)
	state := b.Concept("state", attribute)
	onState := b.Concept("on_state", state)
	offState := b.Concept("off_state", state)
	b.Antonym(onState, offState)
	event := b.Concept("event", abstract)
	failure := b.Concept("failure", event)
	success := b.Concept("success", event)
	b.Antonym(failure, success)
	process := b.Concept("process", abstract)
	communication := b.Concept("communication", process)
	computation := b.Concept("computation", process)

	for id, n := range map[ConceptID]float64{
		computer: 120, sensorDev: 90, actuatorDev: 60, fuel: 25, gas: 20,
		onState: 70, offState: 65, failure: 55, success: 50,
		communication: 85, computation: 75,
	} {
		b.Frequency(id, n)
	}
	return b.MustBuild()
}

// DefaultRegistry returns a registry holding all built-in vocabularies:
// Fun, CmdType, MsgType, InType and the standard vocabulary.
func DefaultRegistry() *Registry {
	return NewRegistry(Functions(), CommandTypes(), MessageTypes(), InputTypes(), General())
}
