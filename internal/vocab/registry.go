package vocab

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps vocabulary prefixes to vocabularies, mirroring the
// paper's "the notation X:x expresses that the meaning of the concept x
// can be found by using the prefix X" (§III-A). It is safe for
// concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Vocabulary
}

// NewRegistry returns a registry holding the given vocabularies.
// It panics on duplicate prefixes (a programming error in static setup).
func NewRegistry(vs ...*Vocabulary) *Registry {
	r := &Registry{m: make(map[string]*Vocabulary, len(vs))}
	for _, v := range vs {
		if err := r.Register(v); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds a vocabulary; it fails if the prefix is already taken.
func (r *Registry) Register(v *Vocabulary) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[v.prefix]; dup {
		return fmt.Errorf("vocab: prefix %q already registered", v.prefix)
	}
	r.m[v.prefix] = v
	return nil
}

// Get returns the vocabulary registered under prefix.
func (r *Registry) Get(prefix string) (*Vocabulary, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.m[prefix]
	return v, ok
}

// Prefixes returns all registered prefixes in sorted order.
func (r *Registry) Prefixes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for p := range r.m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
