// Package vocab implements the taxonomy substrate SemTree's semantic
// distance is computed against: vocabularies of concepts organized in an
// IS-A hierarchy (a rooted DAG), with synonym surface forms, antonym
// ("antinomy" in the paper) relations between concepts, and corpus
// frequencies from which information content is derived.
//
// The paper relies on "domain specific and/or general vocabularies"
// (§III-A) both to compute concept distances (Wu & Palmer, Resnik, ...)
// and to retrieve the antinomic predicate used to build inconsistency
// target triples (§IV-B). This package provides the data structure; the
// built-in avionics requirements vocabularies live in builtin.go and the
// measures themselves in package semdist.
package vocab

import (
	"fmt"
	"math"
)

// ConceptID identifies a concept within one Vocabulary. IDs are dense,
// starting at 0 (the root).
type ConceptID int32

// NoConcept is returned by lookups that fail.
const NoConcept ConceptID = -1

// Vocabulary is an immutable taxonomy built by a Builder. All methods
// are safe for concurrent use once built.
type Vocabulary struct {
	prefix   string
	names    []string
	byName   map[string]ConceptID // canonical names and synonyms
	parents  [][]ConceptID
	children [][]ConceptID
	antonyms map[ConceptID][]ConceptID

	depth    []int32 // min edges from root + 1 (root has depth 1)
	maxDepth int

	freq    []float64 // own occurrence count per concept
	cumFreq []float64 // own + all descendants (each counted once)
	total   float64
	ic      []float64 // information content, -log p(c)
	maxIC   float64
}

// Prefix returns the vocabulary prefix concepts of this vocabulary are
// written with (e.g. "Fun" in Fun:accept_cmd).
func (v *Vocabulary) Prefix() string { return v.prefix }

// Len returns the number of concepts.
func (v *Vocabulary) Len() int { return len(v.names) }

// Root returns the root concept (always ID 0).
func (v *Vocabulary) Root() ConceptID { return 0 }

// Lookup resolves a surface form (canonical name or synonym) to its
// concept. The second result is false when the form is unknown.
func (v *Vocabulary) Lookup(name string) (ConceptID, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the canonical name of id. It panics if id is out of range.
func (v *Vocabulary) Name(id ConceptID) string { return v.names[id] }

// Parents returns the direct hypernyms of id. The returned slice must
// not be modified.
func (v *Vocabulary) Parents(id ConceptID) []ConceptID { return v.parents[id] }

// Children returns the direct hyponyms of id. The returned slice must
// not be modified.
func (v *Vocabulary) Children(id ConceptID) []ConceptID { return v.children[id] }

// IsLeaf reports whether id has no children.
func (v *Vocabulary) IsLeaf(id ConceptID) bool { return len(v.children[id]) == 0 }

// Leaves returns all leaf concepts in ID order.
func (v *Vocabulary) Leaves() []ConceptID {
	var out []ConceptID
	for id := range v.names {
		if v.IsLeaf(ConceptID(id)) {
			out = append(out, ConceptID(id))
		}
	}
	return out
}

// Depth returns the taxonomy depth of id: the minimum number of IS-A
// edges from the root plus one, so the root has depth 1. This is the
// node-counting convention Wu & Palmer uses.
func (v *Vocabulary) Depth(id ConceptID) int { return int(v.depth[id]) }

// MaxDepth returns the maximum depth over all concepts.
func (v *Vocabulary) MaxDepth() int { return v.maxDepth }

// Antonyms returns the concepts linked to id by an antinomy relation.
// The returned slice must not be modified.
func (v *Vocabulary) Antonyms(id ConceptID) []ConceptID { return v.antonyms[id] }

// IsAntonym reports whether a and b are linked by an antinomy relation.
func (v *Vocabulary) IsAntonym(a, b ConceptID) bool {
	for _, x := range v.antonyms[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Ancestors returns the set of ancestors of id including id itself.
func (v *Vocabulary) Ancestors(id ConceptID) map[ConceptID]bool {
	seen := map[ConceptID]bool{id: true}
	stack := []ConceptID{id}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range v.parents[c] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// IsAncestor reports whether anc is an ancestor of desc (or equal to it).
func (v *Vocabulary) IsAncestor(anc, desc ConceptID) bool {
	if anc == desc {
		return true
	}
	stack := []ConceptID{desc}
	seen := map[ConceptID]bool{desc: true}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range v.parents[c] {
			if p == anc {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// LCS returns the least common subsumer of a and b: the common ancestor
// with the greatest depth. Since every concept descends from the root,
// an LCS always exists.
func (v *Vocabulary) LCS(a, b ConceptID) ConceptID {
	ancA := v.Ancestors(a)
	best := ConceptID(0)
	bestDepth := int32(0)
	stack := []ConceptID{b}
	seen := map[ConceptID]bool{b: true}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ancA[c] && v.depth[c] > bestDepth {
			best, bestDepth = c, v.depth[c]
		}
		for _, p := range v.parents[c] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return best
}

// ShortestPath returns the number of IS-A edges on the shortest path
// between a and b, treating edges as undirected (the path-length used by
// Rada/Leacock-Chodorow style measures). It returns 0 when a == b.
func (v *Vocabulary) ShortestPath(a, b ConceptID) int {
	if a == b {
		return 0
	}
	// BFS over undirected hierarchy edges.
	dist := map[ConceptID]int{a: 0}
	queue := []ConceptID{a}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		d := dist[c]
		neigh := make([]ConceptID, 0, len(v.parents[c])+len(v.children[c]))
		neigh = append(neigh, v.parents[c]...)
		neigh = append(neigh, v.children[c]...)
		for _, n := range neigh {
			if _, ok := dist[n]; ok {
				continue
			}
			if n == b {
				return d + 1
			}
			dist[n] = d + 1
			queue = append(queue, n)
		}
	}
	return -1 // unreachable; cannot happen in a rooted taxonomy
}

// Frequency returns the own occurrence count of id.
func (v *Vocabulary) Frequency(id ConceptID) float64 { return v.freq[id] }

// IC returns the information content of id: -log p(c), where p(c) is
// the smoothed probability of observing c or any of its descendants.
// The root has IC 0.
func (v *Vocabulary) IC(id ConceptID) float64 { return v.ic[id] }

// MaxIC returns the maximum information content over all concepts, used
// to normalize Resnik similarity into [0,1].
func (v *Vocabulary) MaxIC() float64 { return v.maxIC }

// computeDerived fills depth, cumulative frequencies and IC. Called by
// the builder after validation.
func (v *Vocabulary) computeDerived() {
	n := len(v.names)
	// Depth: BFS from root over child edges.
	v.depth = make([]int32, n)
	for i := range v.depth {
		v.depth[i] = -1
	}
	v.depth[0] = 1
	queue := []ConceptID{0}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, ch := range v.children[c] {
			if v.depth[ch] < 0 {
				v.depth[ch] = v.depth[c] + 1
				queue = append(queue, ch)
			}
		}
	}
	v.maxDepth = 0
	for _, d := range v.depth {
		if int(d) > v.maxDepth {
			v.maxDepth = int(d)
		}
	}

	// Cumulative frequency: own + descendants, each counted once
	// (the hierarchy may be a DAG).
	v.cumFreq = make([]float64, n)
	v.total = 0
	for i := 0; i < n; i++ {
		// Laplace smoothing: every concept observed at least once, so
		// IC is finite everywhere.
		v.total += v.freq[i] + 1
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		stack := []ConceptID{ConceptID(i)}
		seen := map[ConceptID]bool{ConceptID(i): true}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sum += v.freq[c] + 1
			for _, ch := range v.children[c] {
				if !seen[ch] {
					seen[ch] = true
					stack = append(stack, ch)
				}
			}
		}
		v.cumFreq[i] = sum
	}

	v.ic = make([]float64, n)
	v.maxIC = 0
	for i := 0; i < n; i++ {
		v.ic[i] = -math.Log(v.cumFreq[i] / v.total)
		if v.ic[i] < 0 {
			v.ic[i] = 0 // the root: p == 1 up to float error
		}
		if v.ic[i] > v.maxIC {
			v.maxIC = v.ic[i]
		}
	}
}

// String summarizes the vocabulary for debugging.
func (v *Vocabulary) String() string {
	return fmt.Sprintf("vocab %q: %d concepts, max depth %d", v.prefix, len(v.names), v.maxDepth)
}
