package vocab

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual vocabulary format lets users supply their own domain
// taxonomies (the paper's "ad-hoc requirements vocabulary") without
// writing Go. One directive per line, '#' comments:
//
//	vocab Fun function            # prefix and root concept (first line)
//	concept command_handling function
//	concept accept_cmd command_handling
//	concept amphib moving fixed   # multiple parents allowed (DAG)
//	synonym accept_cmd accept_command
//	antonym accept_cmd block_cmd
//	freq accept_cmd 240
//
// Parents must be declared before their children, mirroring Builder.

// ParseVocabulary reads one vocabulary in the textual format.
func ParseVocabulary(r io.Reader) (*Vocabulary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		fields := strings.Fields(text)
		if b == nil {
			if fields[0] != "vocab" || len(fields) != 3 {
				return nil, fmt.Errorf("vocab: line %d: expected 'vocab <prefix> <root>', got %q", line, text)
			}
			b = NewBuilder(fields[1], fields[2])
			continue
		}
		switch fields[0] {
		case "concept":
			if len(fields) < 3 {
				return nil, fmt.Errorf("vocab: line %d: concept needs a name and at least one parent", line)
			}
			parents := make([]ConceptID, 0, len(fields)-2)
			for _, p := range fields[2:] {
				id, ok := b.v.byName[p]
				if !ok {
					return nil, fmt.Errorf("vocab: line %d: unknown parent %q", line, p)
				}
				parents = append(parents, id)
			}
			b.Concept(fields[1], parents...)
		case "synonym":
			if len(fields) != 3 {
				return nil, fmt.Errorf("vocab: line %d: synonym needs a concept and a surface form", line)
			}
			id, ok := b.v.byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("vocab: line %d: unknown concept %q", line, fields[1])
			}
			b.Synonym(id, fields[2])
		case "antonym":
			if len(fields) != 3 {
				return nil, fmt.Errorf("vocab: line %d: antonym needs two concepts", line)
			}
			a, okA := b.v.byName[fields[1]]
			c, okC := b.v.byName[fields[2]]
			if !okA || !okC {
				return nil, fmt.Errorf("vocab: line %d: unknown concept in antonym %q", line, text)
			}
			b.Antonym(a, c)
		case "freq":
			if len(fields) != 3 {
				return nil, fmt.Errorf("vocab: line %d: freq needs a concept and a count", line)
			}
			id, ok := b.v.byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("vocab: line %d: unknown concept %q", line, fields[1])
			}
			n, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("vocab: line %d: bad count %q", line, fields[2])
			}
			b.Frequency(id, n)
		case "vocab":
			return nil, fmt.Errorf("vocab: line %d: duplicate 'vocab' directive", line)
		default:
			return nil, fmt.Errorf("vocab: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vocab: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("vocab: empty input")
	}
	return b.Build()
}

// WriteVocabulary renders v in the textual format; parsing the output
// reconstructs an equivalent vocabulary.
func WriteVocabulary(w io.Writer, v *Vocabulary) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "vocab %s %s\n", v.prefix, v.names[0])
	// Concepts in ID order: the builder assigned IDs parents-first, so
	// the declaration order is always valid.
	for id := 1; id < len(v.names); id++ {
		fmt.Fprintf(bw, "concept %s", v.names[id])
		for _, p := range v.parents[id] {
			fmt.Fprintf(bw, " %s", v.names[p])
		}
		fmt.Fprintln(bw)
	}
	// Synonyms: every surface form that is not a canonical name.
	forms := make([]string, 0, len(v.byName))
	for form := range v.byName {
		forms = append(forms, form)
	}
	sort.Strings(forms)
	for _, form := range forms {
		id := v.byName[form]
		if v.names[id] != form {
			fmt.Fprintf(bw, "synonym %s %s\n", v.names[id], form)
		}
	}
	// Antonyms once per unordered pair.
	for id := ConceptID(0); int(id) < len(v.names); id++ {
		for _, a := range v.antonyms[id] {
			if id < a {
				fmt.Fprintf(bw, "antonym %s %s\n", v.names[id], v.names[a])
			}
		}
	}
	for id, f := range v.freq {
		if f != 0 {
			fmt.Fprintf(bw, "freq %s %g\n", v.names[id], f)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vocab: write: %w", err)
	}
	return nil
}
