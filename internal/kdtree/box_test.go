package kdtree

import (
	"math/rand"
	"testing"
)

func TestBoxMinSq(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 2}
	cases := []struct {
		q    []float64
		want float64
	}{
		{[]float64{0.5, 1}, 0},     // inside
		{[]float64{0, 2}, 0},       // on the corner
		{[]float64{2, 1}, 1},       // beyond hi on one dim
		{[]float64{-3, 1}, 9},      // beyond lo on one dim
		{[]float64{2, 4}, 1 + 4},   // beyond on both dims
		{[]float64{-1, -1}, 1 + 1}, // below on both dims
	}
	for _, c := range cases {
		if got := BoxMinSq(c.q, lo, hi); got != c.want {
			t.Errorf("BoxMinSq(%v) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestBoxOfEmpty(t *testing.T) {
	lo, hi := BoxOf(nil)
	if lo != nil || hi != nil {
		t.Fatalf("BoxOf(nil) = %v, %v; want nil boxes", lo, hi)
	}
}

// TestBoxesStayExact drives inserts and bulk loads through random
// workloads and asserts the region invariant (exact per-dimension
// bounds at every node) plus the guard's safety: the box min-distance
// never exceeds the true distance to any point in the subtree.
func TestBoxesStayExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mkPts := func(n, dim int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			c := make([]float64, dim)
			for d := range c {
				c[d] = r.Float64() * 10
			}
			pts[i] = Point{Coords: c, ID: uint64(i)}
		}
		return pts
	}
	for _, dim := range []int{1, 3, 8} {
		pts := mkPts(500, dim)
		ins, err := New(dim, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := ins.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := ins.Check(); err != nil {
			t.Fatalf("dim %d insert-built: %v", dim, err)
		}
		bulk, err := BulkLoad(mkPts(500, dim), dim, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := bulk.Check(); err != nil {
			t.Fatalf("dim %d bulk-loaded: %v", dim, err)
		}
		chain, err := BuildChain(mkPts(300, dim), dim, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Check(); err != nil {
			t.Fatalf("dim %d chain-built: %v", dim, err)
		}
		// Guard safety on the root box: min-distance lower-bounds the
		// true distance to every indexed point.
		q := mkPts(1, dim)[0].Coords
		minSq := BoxMinSq(q, ins.root.lo, ins.root.hi)
		for _, p := range ins.Points() {
			if d := EuclideanSq(q, p.Coords); d < minSq {
				t.Fatalf("dim %d: point %d at %g inside the box bound %g", dim, p.ID, d, minSq)
			}
		}
	}
}

// TestCheckBoxesDetectsCorruption: a deliberately loosened and a
// deliberately tightened box must both fail CheckBoxes — exactness is
// the invariant, not mere containment.
func TestCheckBoxesDetectsCorruption(t *testing.T) {
	tr, err := BulkLoad([]Point{
		{Coords: []float64{0, 0}, ID: 1},
		{Coords: []float64{1, 1}, ID: 2},
		{Coords: []float64{2, 0}, ID: 3},
	}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckBoxes(); err != nil {
		t.Fatalf("fresh tree: %v", err)
	}
	saved := tr.root.hi[0]
	tr.root.hi[0] = saved + 1 // looser than the data
	if err := tr.CheckBoxes(); err == nil {
		t.Fatal("loosened box passed CheckBoxes")
	}
	tr.root.hi[0] = saved - 1 // tighter than the data: prunes live points
	if err := tr.CheckBoxes(); err == nil {
		t.Fatal("tightened box passed CheckBoxes")
	}
	tr.root.hi[0] = saved
	if err := tr.CheckBoxes(); err != nil {
		t.Fatalf("restored tree: %v", err)
	}
}
