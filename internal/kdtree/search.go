package kdtree

import (
	"math"
	"sort"
	"sync"
)

// ResultSet is the paper's Rs structure (Table I): the best K
// candidates seen so far, kept sorted ascending by squared distance
// with point-ID tie-breaks. K is small in practice, so ordered
// insertion beats a heap and makes draining a straight copy. This is
// the single implementation of the result-set ordering contract —
// internal/core wraps it for the distributed protocol, so the
// tie-break rule the parallel/sequential equivalence depends on lives
// in exactly one place.
//
// Distances are accumulated *squared* for the whole traversal —
// ordering and the backtracking bound are unchanged because squaring is
// monotone — and the single sqrt per result is deferred to the client
// boundary (drain here, Tree.KNearest in core).
type ResultSet struct {
	Items []Neighbor
	K     int
}

// Full reports whether the set holds K candidates.
func (r *ResultSet) Full() bool { return len(r.Items) >= r.K }

// Worst returns the squared distance of the most distant kept candidate
// (infinite while the set is not full) — the D of Table I.
func (r *ResultSet) Worst() float64 {
	if !r.Full() {
		return math.Inf(1)
	}
	return r.Items[len(r.Items)-1].Dist
}

// NeighborLess is the total result order: ascending distance, ties
// broken by point ID for determinism.
func NeighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Point.ID < b.Point.ID
}

// Offer inserts a candidate in order, evicting the current worst when
// full. A set with K <= 0 keeps nothing.
func (r *ResultSet) Offer(n Neighbor) {
	if r.K <= 0 {
		return
	}
	if r.Full() {
		if !NeighborLess(n, r.Items[len(r.Items)-1]) {
			return
		}
	} else {
		r.Items = append(r.Items, Neighbor{})
	}
	i := len(r.Items) - 1
	for i > 0 && NeighborLess(n, r.Items[i-1]) {
		r.Items[i] = r.Items[i-1]
		i--
	}
	r.Items[i] = n
}

// drain copies the set — already ascending with deterministic
// tie-breaks — applying the deferred sqrt. The copy detaches the result
// from the pooled scratch buffer.
func (r *ResultSet) drain() []Neighbor {
	if len(r.Items) == 0 {
		return nil
	}
	out := append([]Neighbor(nil), r.Items...)
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}

// visit is one pending subtree on the explicit traversal stack.
// guardSq >= 0 guards the visit: no point of the subtree can lie closer
// to the query than sqrt(guardSq), so the subtree is skipped when the
// result ball no longer reaches it. The guard is the exact squared
// minimum distance from the query to the subtree's bounding box
// (BoxMinSq), which subsumes the splitting-plane distance of §III-B.3 —
// the box lies entirely beyond the plane, so the box bound is never
// looser and grows strictly tighter with dimensionality. The guard is
// evaluated at pop time — after the nearer sibling's subtree has been
// fully explored — which is exactly the paper's backtracking condition.
// guardSq < 0 is unconditional.
type visit struct {
	n       *node
	guardSq float64
}

// searchCtx is the pooled per-query execution context: the scratch
// result set and the visit stack. Searches borrow one, so steady-state
// queries allocate only the returned slice.
type searchCtx struct {
	rs    ResultSet
	stack []visit
}

var searchCtxPool = sync.Pool{New: func() any { return new(searchCtx) }}

func getSearchCtx(k int) *searchCtx {
	c := searchCtxPool.Get().(*searchCtx)
	c.rs.K = k
	c.rs.Items = c.rs.Items[:0]
	c.stack = c.stack[:0]
	return c
}

// euclidean returns the Euclidean distance between q and p.
func euclidean(q, p []float64) float64 {
	return math.Sqrt(EuclideanSq(q, p))
}

// EuclideanSq returns the squared Euclidean distance between q and p.
// It is the single distance kernel of the whole index — the local tree
// and the distributed engine both call it, so the metric (and any
// future change to it) lives in exactly one place, like the ResultSet
// ordering contract.
func EuclideanSq(q, p []float64) float64 {
	s := 0.0
	for i := range q {
		d := q[i] - p[i]
		s += d * d
	}
	return s
}

// KNearest returns the k points closest to q in ascending distance
// order (fewer when the tree holds fewer than k points).
func (t *Tree) KNearest(q []float64, k int) []Neighbor {
	return t.KNearestWithStats(q, k, nil)
}

// KNearestWithStats is KNearest recording traversal work into stats
// (which may be nil). The descent/backtrack structure follows §III-B.3:
// navigate to the leaf containing q, add its bucket to Rs, then walk
// back up; at each node the unexplored subtree is visited when the
// hypersphere of the current worst result reaches the subtree's
// bounding box — the exact min-distance form of the paper's
// |max(Rs) − P[SI]| > |P[SI] − Sv| splitting-plane test, which the box
// bound subsumes — or when Rs is not yet full (Rs.length() < K). The
// recursion is run as an explicit stack so the whole traversal state
// lives in one pooled context.
func (t *Tree) KNearestWithStats(q []float64, k int, stats *Stats) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	ctx := getSearchCtx(k)
	defer searchCtxPool.Put(ctx)
	ctx.stack = append(ctx.stack, visit{n: t.root, guardSq: -1})
	for len(ctx.stack) > 0 {
		v := ctx.stack[len(ctx.stack)-1]
		ctx.stack = ctx.stack[:len(ctx.stack)-1]
		// Skip only when the guard is strictly beyond the worst kept
		// candidate: at exact equality a point on the box boundary could
		// tie the k-th best with a smaller ID, and tie-breaks are part
		// of the result contract. Pruning on the strict inequality
		// keeps results byte-identical to the plane-guard traversal —
		// every skipped point is strictly worse than the kept k-th.
		if v.guardSq >= 0 && ctx.rs.Full() && ctx.rs.Worst() < v.guardSq {
			continue // backtracking prune: the result ball cannot reach the region
		}
		n := v.n
		if stats != nil {
			stats.NodesVisited++
		}
		if n.leaf {
			if stats != nil {
				stats.LeavesVisited++
				stats.PointsScanned += len(n.bucket)
			}
			for _, p := range n.bucket {
				ctx.rs.Offer(Neighbor{Point: p, Dist: EuclideanSq(q, p.Coords)})
			}
			continue
		}
		near, far := n.left, n.right
		if q[n.splitDim] > n.splitVal {
			near, far = far, near
		}
		// LIFO: far is guarded by its region's exact min-distance and
		// pops only after near's whole subtree has been explored. An
		// empty far subtree (nil box) can never contribute; an infinite
		// guard prunes it as soon as the result set fills.
		guard := math.Inf(1)
		if far.lo != nil {
			guard = BoxMinSq(q, far.lo, far.hi)
		}
		ctx.stack = append(ctx.stack, visit{n: far, guardSq: guard}, visit{n: near, guardSq: -1})
	}
	return ctx.rs.drain()
}

// RangeSearch returns every point within distance d of q, in ascending
// distance order.
func (t *Tree) RangeSearch(q []float64, d float64) []Neighbor {
	return t.RangeSearchWithStats(q, d, nil)
}

// RangeSearchWithStats is RangeSearch recording traversal work into
// stats (which may be nil). Per §III-B.4: while descending, every
// child whose region intersects the query ball is visited — the exact
// min-distance form of the paper's |P[SI] − Sv| < D border test, so
// both children are visited at a border node and provably-empty
// regions are skipped outright; results are gathered on the way back,
// compared on squared distances, and sorted plus square-rooted exactly
// once at the end.
func (t *Tree) RangeSearchWithStats(q []float64, d float64, stats *Stats) []Neighbor {
	if d < 0 || t.size == 0 {
		return nil
	}
	var out []Neighbor
	t.rangeVisit(t.root, q, d*d, &out, stats)
	sort.Slice(out, func(i, j int) bool { return NeighborLess(out[i], out[j]) })
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}

func (t *Tree) rangeVisit(n *node, q []float64, dd float64, out *[]Neighbor, stats *Stats) {
	if stats != nil {
		stats.NodesVisited++
	}
	if n.leaf {
		if stats != nil {
			stats.LeavesVisited++
			stats.PointsScanned += len(n.bucket)
		}
		for _, p := range n.bucket {
			if sq := EuclideanSq(q, p.Coords); sq <= dd {
				*out = append(*out, Neighbor{Point: p, Dist: sq})
			}
		}
		return
	}
	// The paper states the descend-both condition on the splitting
	// plane (|P[SI] − Sv| < D); the region guard is its exact form: a
	// child is visited iff its bounding box comes within D of the query
	// (<=, not <, so points lying at distance exactly D are not missed
	// — results use dist <= D). Children whose region provably holds no
	// match are skipped even on the navigation side.
	if n.left.lo != nil && BoxMinSq(q, n.left.lo, n.left.hi) <= dd {
		t.rangeVisit(n.left, q, dd, out, stats)
	}
	if n.right.lo != nil && BoxMinSq(q, n.right.lo, n.right.hi) <= dd {
		t.rangeVisit(n.right, q, dd, out, stats)
	}
}
