package kdtree

import (
	"container/heap"
	"math"
	"sort"
)

// resultSet is a bounded max-heap of neighbors: the worst (most
// distant) candidate sits at the top so it can be evicted in O(log k).
// It implements the paper's Rs structure (Table I).
type resultSet struct {
	items []Neighbor
	k     int
}

func (r *resultSet) Len() int           { return len(r.items) }
func (r *resultSet) Less(i, j int) bool { return r.items[i].Dist > r.items[j].Dist }
func (r *resultSet) Swap(i, j int)      { r.items[i], r.items[j] = r.items[j], r.items[i] }
func (r *resultSet) Push(x interface{}) { r.items = append(r.items, x.(Neighbor)) }
func (r *resultSet) Pop() interface{} {
	x := r.items[len(r.items)-1]
	r.items = r.items[:len(r.items)-1]
	return x
}
func (r *resultSet) full() bool { return len(r.items) >= r.k }
func (r *resultSet) worst() float64 {
	if len(r.items) == 0 {
		return math.Inf(1)
	}
	return r.items[0].Dist
}

// offer inserts a candidate, evicting the current worst when full.
func (r *resultSet) offer(n Neighbor) {
	if !r.full() {
		heap.Push(r, n)
		return
	}
	if n.Dist < r.worst() {
		r.items[0] = n
		heap.Fix(r, 0)
	}
}

// sorted drains the set into ascending-distance order, breaking ties by
// point ID so results are deterministic.
func (r *resultSet) sorted() []Neighbor {
	out := append([]Neighbor(nil), r.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}

// euclidean returns the Euclidean distance between q and p.
func euclidean(q, p []float64) float64 {
	s := 0.0
	for i := range q {
		d := q[i] - p[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// KNearest returns the k points closest to q in ascending distance
// order (fewer when the tree holds fewer than k points).
func (t *Tree) KNearest(q []float64, k int) []Neighbor {
	return t.KNearestWithStats(q, k, nil)
}

// KNearestWithStats is KNearest recording traversal work into stats
// (which may be nil). The descent/backtrack structure follows §III-B.3:
// navigate to the leaf containing q, add its bucket to Rs, then walk
// back up; at each node the unexplored subtree is visited when
// |max(Rs) − P[SI]| > |P[SI] − Sv| — i.e. the hypersphere of the
// current worst result crosses the splitting hyperplane — or when Rs is
// not yet full (Rs.length() < K).
func (t *Tree) KNearestWithStats(q []float64, k int, stats *Stats) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	rs := &resultSet{k: k}
	t.knnVisit(t.root, q, rs, stats)
	return rs.sorted()
}

func (t *Tree) knnVisit(n *node, q []float64, rs *resultSet, stats *Stats) {
	if stats != nil {
		stats.NodesVisited++
	}
	if n.leaf {
		if stats != nil {
			stats.LeavesVisited++
			stats.PointsScanned += len(n.bucket)
		}
		for _, p := range n.bucket {
			rs.offer(Neighbor{Point: p, Dist: euclidean(q, p.Coords)})
		}
		return
	}
	near, far := n.left, n.right
	if q[n.splitDim] > n.splitVal {
		near, far = far, near
	}
	t.knnVisit(near, q, rs, stats)
	// Backtracking condition (logical disjunction of the two
	// sub-conditions in §III-B.3).
	planeDist := math.Abs(q[n.splitDim] - n.splitVal)
	if !rs.full() || rs.worst() > planeDist {
		t.knnVisit(far, q, rs, stats)
	}
}

// RangeSearch returns every point within distance d of q, in ascending
// distance order.
func (t *Tree) RangeSearch(q []float64, d float64) []Neighbor {
	return t.RangeSearchWithStats(q, d, nil)
}

// RangeSearchWithStats is RangeSearch recording traversal work into
// stats (which may be nil). Per §III-B.4: while descending, when
// |P[SI] − Sv| < D both children are visited, otherwise navigation
// proceeds on one side as in the insertion algorithm; results are
// gathered on the way back.
func (t *Tree) RangeSearchWithStats(q []float64, d float64, stats *Stats) []Neighbor {
	if d < 0 || t.size == 0 {
		return nil
	}
	var out []Neighbor
	t.rangeVisit(t.root, q, d, &out, stats)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}

func (t *Tree) rangeVisit(n *node, q []float64, d float64, out *[]Neighbor, stats *Stats) {
	if stats != nil {
		stats.NodesVisited++
	}
	if n.leaf {
		if stats != nil {
			stats.LeavesVisited++
			stats.PointsScanned += len(n.bucket)
		}
		for _, p := range n.bucket {
			if dist := euclidean(q, p.Coords); dist <= d {
				*out = append(*out, Neighbor{Point: p, Dist: dist})
			}
		}
		return
	}
	// The paper states the both-children condition as strict <; we use
	// <= so that points lying at distance exactly D across the
	// splitting plane are not missed (results use dist <= D).
	if math.Abs(q[n.splitDim]-n.splitVal) <= d {
		t.rangeVisit(n.left, q, d, out, stats)
		t.rangeVisit(n.right, q, d, out, stats)
		return
	}
	if q[n.splitDim] <= n.splitVal {
		t.rangeVisit(n.left, q, d, out, stats)
	} else {
		t.rangeVisit(n.right, q, d, out, stats)
	}
}
