package kdtree

import (
	"math/rand"
	"testing"
)

func TestFlattenStructure(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := randomPoints(r, 300, 3)
	tr, err := BulkLoad(pts, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	flat := tr.Flatten()
	leaves, points := 0, 0
	for i, n := range flat {
		if n.Leaf {
			leaves++
			points += len(n.Bucket)
			if n.Left != -1 || n.Right != -1 {
				t.Fatalf("leaf %d has children", i)
			}
			continue
		}
		for _, c := range []int32{n.Left, n.Right} {
			if c <= 0 || int(c) >= len(flat) {
				t.Fatalf("node %d child %d out of range", i, c)
			}
		}
	}
	if leaves != tr.LeafCount() {
		t.Fatalf("flat leaves = %d, tree reports %d", leaves, tr.LeafCount())
	}
	if points != tr.Len() {
		t.Fatalf("flat points = %d, tree holds %d", points, tr.Len())
	}
	// Every non-root node is referenced exactly once.
	refs := make([]int, len(flat))
	for _, n := range flat {
		if !n.Leaf {
			refs[n.Left]++
			refs[n.Right]++
		}
	}
	if refs[0] != 0 {
		t.Fatalf("root referenced %d times", refs[0])
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != 1 {
			t.Fatalf("node %d referenced %d times", i, refs[i])
		}
	}
}

func TestSubtreeExtraction(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	pts := randomPoints(r, 200, 2)
	tr, err := BulkLoad(pts, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat := tr.Flatten()
	if flat[0].Leaf {
		t.Skip("tree too small")
	}
	left, err := Subtree(flat, flat[0].Left)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Subtree(flat, flat[0].Right)
	if err != nil {
		t.Fatal(err)
	}
	count := func(f []FlatNode) int {
		n := 0
		for _, fn := range f {
			n += len(fn.Bucket)
		}
		return n
	}
	if count(left)+count(right) != tr.Len() {
		t.Fatalf("subtree points %d + %d != %d", count(left), count(right), tr.Len())
	}
	// Extracted fragments are self-contained: indexes in range.
	for _, f := range [][]FlatNode{left, right} {
		for i, n := range f {
			if n.Leaf {
				continue
			}
			if n.Left <= 0 || int(n.Left) >= len(f) || n.Right <= 0 || int(n.Right) >= len(f) {
				t.Fatalf("fragment node %d has out-of-range children", i)
			}
		}
	}
	if _, err := Subtree(flat, int32(len(flat))); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}
