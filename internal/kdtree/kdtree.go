// Package kdtree implements the sequential bucket KD-tree SemTree is
// built from (§III-B): data points live only in leaf buckets; routing
// nodes carry a split index Sr and split value Sv; navigation compares
// P[Sr] against Sv at each level. The package provides dynamic
// insertion with leaf splitting, balanced bulk-loading, the "totally
// unbalanced (chain)" construction used as the worst case in the
// paper's evaluation, and the k-nearest / range search procedures.
//
// The distributed version lives in internal/core; this package is both
// its single-partition building block, the sequential baseline of
// Figures 4 and 6, and the reference oracle the distributed tree is
// property-tested against.
package kdtree

import (
	"fmt"
	"sort"
)

// Point is an indexed vector with an opaque payload identifier
// (in SemTree the triple ID). Coords must not be mutated after the
// point is handed to a tree.
type Point struct {
	Coords []float64
	ID     uint64
}

// Neighbor is a search result: a point and its distance to the query.
type Neighbor struct {
	Point Point
	Dist  float64
}

// Stats counts the work done by a traversal; pass to the *WithStats
// search variants to measure pruning effectiveness. The counters map
// onto the distributed engine's per-query ExecStats so local and
// distributed measurements compare directly: NodesVisited ↔
// ExecStats.NodesVisited, LeavesVisited ↔ ExecStats.BucketsScanned,
// and PointsScanned ↔ ExecStats.DistanceEvals (every bucket point
// examined costs exactly one distance evaluation).
type Stats struct {
	NodesVisited  int // routing + leaf nodes touched
	LeavesVisited int // leaf nodes touched
	PointsScanned int // candidate points distance-tested in leaf buckets
}

// node is either a routing node (leaf == false: splitDim/splitVal/
// children valid) or a leaf (bucket valid). Points with
// coords[splitDim] <= splitVal belong to the left subtree.
//
// lo/hi is the node's region metadata: the exact d-dimensional
// bounding box of every point in the subtree (nil for an empty
// subtree). The box is the search guard — its minimum distance to the
// query (BoxMinSq) subsumes the splitting-plane bound of §III-B.3,
// which only measures one dimension — and is kept exactly tight:
// expanded point-by-point on insert (points are never removed), and
// recomputed from buckets on splits and bulk loads.
type node struct {
	splitDim    int
	splitVal    float64
	left, right *node
	leaf        bool
	bucket      []Point
	lo, hi      []float64
}

// Tree is a sequential bucket KD-tree. It is not safe for concurrent
// mutation; concurrent reads are safe once building is done.
type Tree struct {
	dim        int
	bucketSize int
	root       *node
	size       int
}

// DefaultBucketSize is the leaf capacity Bs used when none is given.
const DefaultBucketSize = 16

// New returns an empty tree for points of the given dimensionality.
// bucketSize <= 0 selects DefaultBucketSize.
func New(dim, bucketSize int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("kdtree: dimension %d must be positive", dim)
	}
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	return &Tree{
		dim:        dim,
		bucketSize: bucketSize,
		root:       &node{leaf: true},
	}, nil
}

// Dim returns the dimensionality of indexed points.
func (t *Tree) Dim() int { return t.dim }

// BucketSize returns the leaf capacity Bs.
func (t *Tree) BucketSize() int { return t.bucketSize }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (a single leaf root has height 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := height(n.left), height(n.right)
	if r > l {
		l = r
	}
	return l + 1
}

// Insert adds a point, splitting the target leaf when its bucket
// saturates (Figure 1's red-node split).
func (t *Tree) Insert(p Point) error {
	if len(p.Coords) != t.dim {
		return fmt.Errorf("kdtree: point has %d coords, tree dimension is %d", len(p.Coords), t.dim)
	}
	n := t.root
	// Every node on the descent path gains the point, so every box on
	// the path expands; expansion keeps boxes exactly tight because
	// points are never removed.
	n.expandBox(p.Coords)
	for !n.leaf {
		if p.Coords[n.splitDim] <= n.splitVal {
			n = n.left
		} else {
			n = n.right
		}
		n.expandBox(p.Coords)
	}
	n.bucket = append(n.bucket, p)
	t.size++
	if len(n.bucket) > t.bucketSize {
		t.splitLeaf(n)
	}
	return nil
}

// splitLeaf converts a saturated leaf into a routing node with two leaf
// children. The split dimension is the one with the largest spread
// (letting the tree "adapt to different densities in various regions of
// the space", §III-B); when every dimension has zero spread the bucket
// is unsplittable (all points identical) and is allowed to exceed Bs.
func (t *Tree) splitLeaf(n *node) {
	dim, lo, hi, ok := widestDimension(n.bucket, t.dim)
	if !ok {
		return // all points identical; oversized bucket stands
	}
	splitVal := chooseSplitValue(n.bucket, dim, lo, hi)
	left := &node{leaf: true}
	right := &node{leaf: true}
	for _, p := range n.bucket {
		if p.Coords[dim] <= splitVal {
			left.bucket = append(left.bucket, p)
		} else {
			right.bucket = append(right.bucket, p)
		}
	}
	left.lo, left.hi = BoxOf(left.bucket)
	right.lo, right.hi = BoxOf(right.bucket)
	n.leaf = false
	n.bucket = nil
	n.splitDim = dim
	n.splitVal = splitVal
	n.left = left
	n.right = right
}

// widestDimension returns the dimension with the largest value spread
// within the bucket, with its min and max. ok is false when every
// dimension is constant.
func widestDimension(bucket []Point, dims int) (dim int, lo, hi float64, ok bool) {
	bestSpread := 0.0
	for d := 0; d < dims; d++ {
		mn, mx := bucket[0].Coords[d], bucket[0].Coords[d]
		for _, p := range bucket[1:] {
			v := p.Coords[d]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if spread := mx - mn; spread > bestSpread {
			bestSpread, dim, lo, hi, ok = spread, d, mn, mx, true
		}
	}
	return dim, lo, hi, ok
}

// chooseSplitValue picks Sv along dim: the median bucket value when it
// separates the points, otherwise the midpoint of the range. Both
// choices guarantee non-empty halves under the "<= goes left" rule,
// because lo < hi.
func chooseSplitValue(bucket []Point, dim int, lo, hi float64) float64 {
	vals := make([]float64, len(bucket))
	for i, p := range bucket {
		vals[i] = p.Coords[dim]
	}
	//semtree:allow boundaryonce: construction-time median selection when splitting a leaf; not on the query-result path
	sort.Float64s(vals)
	med := vals[(len(vals)-1)/2]
	if med < hi {
		return med
	}
	return (lo + hi) / 2
}

// Points returns all indexed points in traversal order.
func (t *Tree) Points() []Point {
	out := make([]Point, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			out = append(out, n.bucket...)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// LeafCount returns the number of leaf nodes.
func (t *Tree) LeafCount() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			count++
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return count
}
