package kdtree

// Axis-aligned bounding boxes are the region metadata behind the
// min-distance pruning guard: every subtree carries the exact box of
// its points, and a subtree is skipped when the box provably cannot
// hold a better candidate. The box bound subsumes the paper's
// splitting-plane bound (§III-B.3): the plane distance measures the gap
// along one dimension only, while BoxMinSq accumulates it over every
// dimension the query falls outside of, so the guard tightens with
// dimensionality exactly where the plane guard degrades.

// BoxMinSq returns the exact squared Euclidean distance from q to the
// axis-aligned box [lo, hi] — zero when q lies inside. It is the
// single min-distance kernel of the index: the local tree and the
// distributed engine both prune with it, like EuclideanSq for the
// point metric.
func BoxMinSq(q, lo, hi []float64) float64 {
	s := 0.0
	for i, v := range q {
		if v < lo[i] {
			d := lo[i] - v
			s += d * d
		} else if v > hi[i] {
			d := v - hi[i]
			s += d * d
		}
	}
	return s
}

// BoxOf returns the tight bounding box of pts (nil, nil when pts is
// empty). The returned slices are freshly allocated.
func BoxOf(pts []Point) (lo, hi []float64) {
	if len(pts) == 0 {
		return nil, nil
	}
	lo = append([]float64(nil), pts[0].Coords...)
	hi = append([]float64(nil), pts[0].Coords...)
	for _, p := range pts[1:] {
		for d, v := range p.Coords {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return lo, hi
}

// ExpandBox grows [lo, hi] to include c — in place when the box is
// already materialized, freshly allocated from c when lo is nil. It is
// the single grow-to-include kernel of the region metadata (like
// BoxOf/BoxMinSq): every layer that maintains the exactness invariant
// expands through it, so the rule cannot silently diverge.
func ExpandBox(lo, hi, c []float64) ([]float64, []float64) {
	if lo == nil {
		return append([]float64(nil), c...), append([]float64(nil), c...)
	}
	for d, v := range c {
		if v < lo[d] {
			lo[d] = v
		}
		if v > hi[d] {
			hi[d] = v
		}
	}
	return lo, hi
}

// expandBox grows the node's box to include c; the first point
// materializes the box.
func (n *node) expandBox(c []float64) {
	n.lo, n.hi = ExpandBox(n.lo, n.hi, c)
}

// computeBoxes derives every subtree box bottom-up: a leaf's box from
// its bucket, a routing node's as the union of its children's. The
// bulk builders call it once after shaping the tree.
func computeBoxes(n *node) (lo, hi []float64) {
	if n == nil {
		return nil, nil
	}
	if n.leaf {
		n.lo, n.hi = BoxOf(n.bucket)
		return n.lo, n.hi
	}
	llo, lhi := computeBoxes(n.left)
	rlo, rhi := computeBoxes(n.right)
	n.lo, n.hi = unionBox(llo, lhi, rlo, rhi)
	return n.lo, n.hi
}

// unionBox returns a fresh box covering both inputs; either side may be
// nil (empty subtree).
func unionBox(alo, ahi, blo, bhi []float64) (lo, hi []float64) {
	if alo == nil {
		if blo == nil {
			return nil, nil
		}
		return append([]float64(nil), blo...), append([]float64(nil), bhi...)
	}
	lo = append([]float64(nil), alo...)
	hi = append([]float64(nil), ahi...)
	if blo == nil {
		return lo, hi
	}
	for d := range lo {
		if blo[d] < lo[d] {
			lo[d] = blo[d]
		}
		if bhi[d] > hi[d] {
			hi[d] = bhi[d]
		}
	}
	return lo, hi
}
