package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(r *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		pts[i] = Point{Coords: c, ID: uint64(i)}
	}
	return pts
}

// clusteredPoints produces points with heavy duplication to stress the
// split logic (requirement corpora repeat triples heavily).
func clusteredPoints(r *rand.Rand, n, dim int) []Point {
	centers := randomPoints(r, 1+n/10, dim)
	pts := make([]Point, n)
	for i := range pts {
		center := centers[r.Intn(len(centers))]
		c := append([]float64(nil), center.Coords...)
		if r.Intn(3) == 0 { // 1/3 exact duplicates
			for d := range c {
				c[d] += r.NormFloat64() * 0.01
			}
		}
		pts[i] = Point{Coords: c, ID: uint64(i)}
	}
	return pts
}

func bruteKNN(pts []Point, q []float64, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{Point: p, Dist: euclidean(q, p.Coords)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Point.ID < all[j].Point.ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func bruteRange(pts []Point, q []float64, d float64) []Neighbor {
	var out []Neighbor
	for _, p := range pts {
		if dist := euclidean(q, p.Coords); dist <= d {
			out = append(out, Neighbor{Point: p, Dist: dist})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("dim 0 accepted")
	}
	tr, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BucketSize() != DefaultBucketSize {
		t.Fatalf("default bucket = %d", tr.BucketSize())
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr, _ := New(3, 4)
	if err := tr.Insert(Point{Coords: []float64{1, 2}}); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
}

func TestInsertAndInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, _ := New(4, 8)
	pts := randomPoints(r, 500, 4)
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := len(tr.Points()); got != 500 {
		t.Fatalf("Points() returned %d", got)
	}
}

func TestInsertDuplicateHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, _ := New(3, 4)
	pts := clusteredPoints(r, 300, 3)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after duplicate-heavy inserts: %v", err)
	}
}

func TestAllIdenticalPointsOversizedBucket(t *testing.T) {
	tr, _ := New(2, 4)
	for i := 0; i < 20; i++ {
		if err := tr.Insert(Point{Coords: []float64{1, 1}, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if tr.Height() != 1 {
		t.Fatalf("identical points should stay in one oversized leaf, height=%d", tr.Height())
	}
	got := tr.KNearest([]float64{1, 1}, 5)
	if len(got) != 5 || got[0].Dist != 0 {
		t.Fatalf("KNearest on identical points: %v", got)
	}
}

func TestBulkLoadBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 4096, 4)
	tr, err := BulkLoad(pts, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// 4096/16 = 256 leaves → perfectly balanced height 9; allow slack.
	maxH := int(math.Ceil(math.Log2(4096.0/16.0))) + 3
	if h := tr.Height(); h > maxH {
		t.Fatalf("bulk-loaded height %d exceeds %d", h, maxH)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad([]Point{{Coords: []float64{1}}}, 2, 4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestBuildChainDegenerateHeight(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 640, 3)
	tr, err := BuildChain(pts, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// 640/16 = 40 buckets → height ~40.
	if h := tr.Height(); h < 30 {
		t.Fatalf("chain height %d, want ~40 (degenerate)", h)
	}
	if tr.Len() != 640 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestChainVsBalancedSearchEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randomPoints(r, 500, 3)
	balanced, _ := BulkLoad(append([]Point(nil), pts...), 3, 8)
	chain, _ := BuildChain(append([]Point(nil), pts...), 3, 8)
	for q := 0; q < 30; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		a := balanced.KNearest(query, 7)
		b := chain.KNearest(query, 7)
		if !sameDistances(a, b) {
			t.Fatalf("balanced and chain disagree for %v:\n%v\n%v", query, a, b)
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(400)
		dim := 1 + r.Intn(5)
		bucket := 1 + r.Intn(20)
		pts := clusteredPoints(r, n, dim)
		tr, err := BulkLoad(append([]Point(nil), pts...), dim, bucket)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			query := make([]float64, dim)
			for d := range query {
				query[d] = r.Float64() * 100
			}
			k := 1 + r.Intn(12)
			got := tr.KNearest(query, k)
			want := bruteKNN(pts, query, k)
			if !sameDistances(got, want) {
				t.Fatalf("trial %d: KNN mismatch (n=%d dim=%d k=%d)\ngot  %v\nwant %v",
					trial, n, dim, k, got, want)
			}
		}
	}
}

func TestKNearestAfterIncrementalInserts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dim := 3
	tr, _ := New(dim, 8)
	var pts []Point
	for i := 0; i < 600; i++ {
		p := Point{Coords: []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}, ID: uint64(i)}
		pts = append(pts, p)
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			query := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
			if got, want := tr.KNearest(query, 5), bruteKNN(pts, query, 5); !sameDistances(got, want) {
				t.Fatalf("after %d inserts: KNN mismatch", i+1)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(400)
		dim := 1 + r.Intn(5)
		pts := clusteredPoints(r, n, dim)
		tr, err := BulkLoad(append([]Point(nil), pts...), dim, 8)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			query := make([]float64, dim)
			for d := range query {
				query[d] = r.Float64() * 100
			}
			d := r.Float64() * 30
			got := tr.RangeSearch(query, d)
			want := bruteRange(pts, query, d)
			if !sameNeighborSets(got, want) {
				t.Fatalf("trial %d: range mismatch (n=%d dim=%d d=%f): got %d, want %d",
					trial, n, dim, d, len(got), len(want))
			}
		}
	}
}

func TestRangeExactBoundaryIncluded(t *testing.T) {
	tr, _ := New(1, 1)
	for i, x := range []float64{0, 1, 2, 3} {
		if err := tr.Insert(Point{Coords: []float64{x}, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.RangeSearch([]float64{0}, 2)
	if len(got) != 3 {
		t.Fatalf("range [0,2] returned %d points, want 3 (boundary point at exactly d)", len(got))
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	tr, _ := New(2, 4)
	if got := tr.KNearest([]float64{0, 0}, 3); got != nil {
		t.Fatalf("empty tree KNN = %v", got)
	}
	if err := tr.Insert(Point{Coords: []float64{1, 1}, ID: 7}); err != nil {
		t.Fatal(err)
	}
	if got := tr.KNearest([]float64{0, 0}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	got := tr.KNearest([]float64{0, 0}, 10)
	if len(got) != 1 || got[0].Point.ID != 7 {
		t.Fatalf("k>size = %v", got)
	}
	if got := tr.RangeSearch([]float64{0, 0}, -1); got != nil {
		t.Fatalf("negative range returned %v", got)
	}
}

func TestStatsPruning(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randomPoints(r, 2000, 3)
	tr, _ := BulkLoad(pts, 3, 16)
	var s Stats
	tr.KNearestWithStats([]float64{50, 50, 50}, 3, &s)
	if s.NodesVisited == 0 || s.LeavesVisited == 0 || s.PointsScanned == 0 {
		t.Fatalf("stats not recorded: %+v", s)
	}
	if s.PointsScanned >= 2000 {
		t.Fatalf("no pruning: scanned %d of 2000", s.PointsScanned)
	}
}

func TestChainScansMoreThanBalanced(t *testing.T) {
	// The premise of Figures 4 and 6: a chain tree does far more work.
	r := rand.New(rand.NewSource(10))
	pts := randomPoints(r, 2000, 3)
	balanced, _ := BulkLoad(append([]Point(nil), pts...), 3, 16)
	chain, _ := BuildChain(append([]Point(nil), pts...), 3, 16)
	var sb, sc Stats
	q := []float64{50, 50, 50}
	balanced.KNearestWithStats(q, 3, &sb)
	chain.KNearestWithStats(q, 3, &sc)
	if sc.NodesVisited <= sb.NodesVisited {
		t.Fatalf("chain visited %d nodes, balanced %d — expected chain to be worse",
			sc.NodesVisited, sb.NodesVisited)
	}
}

func sameDistances(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func sameNeighborSets(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	ids := map[uint64]bool{}
	for _, n := range a {
		ids[n.Point.ID] = true
	}
	for _, n := range b {
		if !ids[n.Point.ID] {
			return false
		}
	}
	return true
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, b.N, 8)
	tr, _ := New(8, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNearestBalanced(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 100_000, 8)
	tr, _ := BulkLoad(pts, 8, 16)
	q := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range q {
			q[d] = r.Float64() * 100
		}
		tr.KNearest(q, 3)
	}
}
