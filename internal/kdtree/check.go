package kdtree

import (
	"fmt"
	"math"
)

// Check validates the structural invariants of the tree and returns the
// first violation found. It is used by the test suite and by the
// distributed core's property tests.
//
// Invariants:
//  1. every node is either a routing node with two children or a leaf
//     with a bucket (never both, never neither);
//  2. every point in the left subtree of a routing node has
//     coords[splitDim] <= splitVal, every point in the right subtree
//     has coords[splitDim] > splitVal (checked transitively against
//     all ancestors);
//  3. leaf buckets respect the bucket size unless unsplittable (all
//     points equal on every dimension);
//  4. the tree size equals the number of points in the leaves;
//  5. every point has the tree's dimensionality;
//  6. every node's bounding box is the exact (tight, per-dimension)
//     bound of the points in its subtree — nil for an empty subtree —
//     so the min-distance pruning guard is never looser than the data
//     and never admits a skip it cannot prove (CheckBoxes).
func (t *Tree) Check() error {
	counted := 0
	// Per-dimension bounds implied by the ancestor chain.
	lo := make([]float64, t.dim)
	hi := make([]float64, t.dim)
	for d := range lo {
		lo[d] = math.Inf(-1)
		hi[d] = math.Inf(1)
	}
	if err := t.checkNode(t.root, lo, hi, &counted); err != nil {
		return err
	}
	if counted != t.size {
		return fmt.Errorf("kdtree: size %d but %d points in leaves", t.size, counted)
	}
	return t.CheckBoxes()
}

// CheckBoxes validates the region-metadata invariant on its own: every
// node's box must exactly equal the per-dimension min/max of the points
// in its subtree. Exactness matters in both directions — a box looser
// than the data weakens pruning silently, a box tighter than the data
// prunes live candidates and corrupts results. It is also run by the
// distributed core's consistency checks after splits, spills and
// rebalances.
func (t *Tree) CheckBoxes() error {
	_, _, err := checkBox(t.root)
	return err
}

func checkBox(n *node) (lo, hi []float64, err error) {
	if n == nil {
		return nil, nil, fmt.Errorf("kdtree: nil node")
	}
	if n.leaf {
		lo, hi = BoxOf(n.bucket)
	} else {
		llo, lhi, err := checkBox(n.left)
		if err != nil {
			return nil, nil, err
		}
		rlo, rhi, err := checkBox(n.right)
		if err != nil {
			return nil, nil, err
		}
		lo, hi = unionBox(llo, lhi, rlo, rhi)
	}
	if err := boxExact(n.lo, n.hi, lo, hi); err != nil {
		return nil, nil, err
	}
	return lo, hi, nil
}

// boxExact compares a stored box against the recomputed ground truth.
// Malformed shapes (one side nil, wrong dimensionality) are reported
// as errors too — the checker must diagnose corruption, not panic on
// it.
func boxExact(gotLo, gotHi, wantLo, wantHi []float64) error {
	if (gotLo == nil) != (wantLo == nil) || (gotHi == nil) != (wantLo == nil) {
		return fmt.Errorf("kdtree: box nil-ness lo=%v hi=%v, want %v",
			gotLo == nil, gotHi == nil, wantLo == nil)
	}
	if len(gotLo) != len(wantLo) || len(gotHi) != len(wantLo) {
		return fmt.Errorf("kdtree: box dims lo=%d hi=%d, want %d",
			len(gotLo), len(gotHi), len(wantLo))
	}
	for d := range wantLo {
		if gotLo[d] != wantLo[d] || gotHi[d] != wantHi[d] {
			return fmt.Errorf("kdtree: box dim %d [%g, %g], want exact [%g, %g]",
				d, gotLo[d], gotHi[d], wantLo[d], wantHi[d])
		}
	}
	return nil
}

func (t *Tree) checkNode(n *node, lo, hi []float64, counted *int) error {
	if n == nil {
		return fmt.Errorf("kdtree: nil node")
	}
	if n.leaf {
		if n.left != nil || n.right != nil {
			return fmt.Errorf("kdtree: leaf with children")
		}
		if len(n.bucket) > t.bucketSize && !allEqual(n.bucket) {
			return fmt.Errorf("kdtree: splittable bucket of %d exceeds Bs=%d", len(n.bucket), t.bucketSize)
		}
		for _, p := range n.bucket {
			if len(p.Coords) != t.dim {
				return fmt.Errorf("kdtree: point %d has %d coords, want %d", p.ID, len(p.Coords), t.dim)
			}
			for d, v := range p.Coords {
				// lo is exclusive (right side of an ancestor split),
				// hi is inclusive (left side).
				if !(v > lo[d]) || !(v <= hi[d]) {
					return fmt.Errorf("kdtree: point %d dim %d value %g outside (%g, %g]", p.ID, d, v, lo[d], hi[d])
				}
			}
		}
		*counted += len(n.bucket)
		return nil
	}
	if n.left == nil || n.right == nil || n.bucket != nil {
		return fmt.Errorf("kdtree: malformed routing node")
	}
	if n.splitDim < 0 || n.splitDim >= t.dim {
		return fmt.Errorf("kdtree: split dimension %d out of range", n.splitDim)
	}
	if !(n.splitVal > lo[n.splitDim]) || !(n.splitVal < hi[n.splitDim]) {
		return fmt.Errorf("kdtree: split value %g outside ancestor bounds (%g, %g)",
			n.splitVal, lo[n.splitDim], hi[n.splitDim])
	}
	savedHi := hi[n.splitDim]
	hi[n.splitDim] = n.splitVal
	if err := t.checkNode(n.left, lo, hi, counted); err != nil {
		return err
	}
	hi[n.splitDim] = savedHi

	savedLo := lo[n.splitDim]
	lo[n.splitDim] = n.splitVal
	if err := t.checkNode(n.right, lo, hi, counted); err != nil {
		return err
	}
	lo[n.splitDim] = savedLo
	return nil
}

func allEqual(bucket []Point) bool {
	for _, p := range bucket[1:] {
		for d := range p.Coords {
			if p.Coords[d] != bucket[0].Coords[d] {
				return false
			}
		}
	}
	return true
}
