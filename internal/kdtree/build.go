package kdtree

import (
	"fmt"
	"sort"
)

// BulkLoad builds a balanced tree over pts by recursive median splits
// ("Kd-trees are more efficient in bulk-loading situations (as required
// by our approach)" — §III-B). The input slice is reordered in place.
func BulkLoad(pts []Point, dim, bucketSize int) (*Tree, error) {
	t, err := New(dim, bucketSize)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("kdtree: point %d has %d coords, want %d", i, len(p.Coords), dim)
		}
	}
	t.root = buildBalanced(pts, dim, t.bucketSize)
	t.size = len(pts)
	computeBoxes(t.root)
	return t, nil
}

func buildBalanced(pts []Point, dims, bucketSize int) *node {
	if len(pts) <= bucketSize {
		return &node{leaf: true, bucket: append([]Point(nil), pts...)}
	}
	d, _, _, ok := widestDimension(pts, dims)
	if !ok {
		// All points identical: unsplittable oversized leaf.
		return &node{leaf: true, bucket: append([]Point(nil), pts...)}
	}
	//semtree:allow boundaryonce: construction-time sort to pick the median cut; not on the query-result path
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[d] < pts[j].Coords[d] })
	// A valid cut c needs pts[c-1] < pts[c] on dimension d, so that
	// "<= goes left" keeps both halves non-empty with duplicates
	// present. Pick the valid cut closest to the median.
	mid := len(pts) / 2
	cutUp := mid
	for cutUp < len(pts) && pts[cutUp].Coords[d] == pts[cutUp-1].Coords[d] {
		cutUp++
	}
	cutDown := mid
	for cutDown > 0 && pts[cutDown].Coords[d] == pts[cutDown-1].Coords[d] {
		cutDown--
	}
	var cut int
	switch {
	case cutUp < len(pts) && cutDown > 0:
		if cutUp-mid <= mid-cutDown {
			cut = cutUp
		} else {
			cut = cutDown
		}
	case cutUp < len(pts):
		cut = cutUp
	case cutDown > 0:
		cut = cutDown
	default:
		// Unreachable: widestDimension guarantees spread > 0, so some
		// adjacent pair differs. Fall back defensively.
		return &node{leaf: true, bucket: append([]Point(nil), pts...)}
	}
	splitVal := pts[cut-1].Coords[d]
	return &node{
		splitDim: d,
		splitVal: splitVal,
		left:     buildBalanced(pts[:cut], dims, bucketSize),
		right:    buildBalanced(pts[cut:], dims, bucketSize),
	}
}

// BuildChain builds the paper's "totally unbalanced (chain)" tree: the
// points are sorted on the first coordinate and each routing node peels
// one leaf bucket off the left side, so the tree height is ~N/Bs. It is
// the worst-case structure of Figures 3, 4 and 6. The input slice is
// reordered in place.
func BuildChain(pts []Point, dim, bucketSize int) (*Tree, error) {
	t, err := New(dim, bucketSize)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("kdtree: point %d has %d coords, want %d", i, len(p.Coords), dim)
		}
	}
	//semtree:allow boundaryonce: construction-time sort for the degenerate-chain builder; not on the query-result path
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[0] < pts[j].Coords[0] })
	t.root = buildChain(pts, t.bucketSize)
	t.size = len(pts)
	computeBoxes(t.root)
	return t, nil
}

func buildChain(pts []Point, bucketSize int) *node {
	if len(pts) <= bucketSize {
		return &node{leaf: true, bucket: append([]Point(nil), pts...)}
	}
	// Take the first bucketSize points, extending over duplicates of the
	// boundary value so the "<= goes left" invariant holds.
	cut := bucketSize
	for cut < len(pts) && pts[cut].Coords[0] == pts[cut-1].Coords[0] {
		cut++
	}
	if cut == len(pts) {
		return &node{leaf: true, bucket: append([]Point(nil), pts...)}
	}
	return &node{
		splitDim: 0,
		splitVal: pts[cut-1].Coords[0],
		left:     &node{leaf: true, bucket: append([]Point(nil), pts[:cut]...)},
		right:    buildChain(pts[cut:], bucketSize),
	}
}
