package kdtree

import "fmt"

// FlatNode is one node of a flattened tree: children are indexes into
// the flat slice (-1 for none). Flattening gives external systems —
// the distributed rebalancer, persistence — a structural view without
// exposing internal pointers.
type FlatNode struct {
	Leaf     bool
	SplitDim int32
	SplitVal float64
	Left     int32 // index into the flat slice, -1 when leaf
	Right    int32
	Bucket   []Point   // shared with the tree; treat as read-only
	Lo, Hi   []float64 // subtree bounding box; shared, read-only, nil when empty
}

// Flatten returns the tree's nodes in preorder, root at index 0.
func (t *Tree) Flatten() []FlatNode {
	var out []FlatNode
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		idx := int32(len(out))
		out = append(out, FlatNode{Leaf: n.leaf, Left: -1, Right: -1, Lo: n.lo, Hi: n.hi})
		if n.leaf {
			out[idx].Bucket = n.bucket
			return idx
		}
		out[idx].SplitDim = int32(n.splitDim)
		out[idx].SplitVal = n.splitVal
		out[idx].Left = walk(n.left)
		out[idx].Right = walk(n.right)
		return idx
	}
	walk(t.root)
	return out
}

// Subtree extracts the subtree rooted at root from a flat tree as a
// self-contained flat tree (indexes renumbered, root at 0).
func Subtree(flat []FlatNode, root int32) ([]FlatNode, error) {
	if root < 0 || int(root) >= len(flat) {
		return nil, fmt.Errorf("kdtree: subtree root %d out of range", root)
	}
	var out []FlatNode
	var walk func(idx int32) (int32, error)
	walk = func(idx int32) (int32, error) {
		if idx < 0 || int(idx) >= len(flat) {
			return 0, fmt.Errorf("kdtree: dangling child index %d", idx)
		}
		n := flat[idx]
		at := int32(len(out))
		out = append(out, FlatNode{
			Leaf: n.Leaf, SplitDim: n.SplitDim, SplitVal: n.SplitVal,
			Left: -1, Right: -1, Bucket: n.Bucket, Lo: n.Lo, Hi: n.Hi,
		})
		if n.Leaf {
			return at, nil
		}
		l, err := walk(n.Left)
		if err != nil {
			return 0, err
		}
		r, err := walk(n.Right)
		if err != nil {
			return 0, err
		}
		out[at].Left = l
		out[at].Right = r
		return at, nil
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}
