package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"semtree"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

// testIndex builds a small deterministic multi-partition index over
// synthetic requirement triples.
func testIndex(t testing.TB, n int) *semtree.Index {
	t.Helper()
	gen := synth.New(synth.Config{Seed: 42, Actors: 200}, nil)
	store := triple.NewStore()
	for i, tr := range gen.Triples(n) {
		store.Add(tr, triple.Provenance{Doc: "doc", Section: "sec", Seq: i})
	}
	idx, err := semtree.Build(store, semtree.Options{
		Seed:              42,
		PartitionCapacity: 64,
		MaxPartitions:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// testQueries returns deterministic query triples disjoint from the
// indexed workload.
func testQueries(n int) []triple.Triple {
	gen := synth.New(synth.Config{Seed: 43, Actors: 200}, nil)
	qs := make([]triple.Triple, n)
	for i := range qs {
		qs[i] = gen.RandomTriple()
	}
	return qs
}

// startServer runs srv on a loopback listener and returns its address.
// The cleanup drains the server (bounded) so tests never leak its
// goroutines.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		dctx, dcancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		defer dcancel()
		_ = srv.Drain(dctx)
		cancel()
		<-done
	})
	return lis.Addr().String()
}

// TestWireParity is the end-to-end acceptance gate: for a fixed seeded
// tree, the answers a serve.Client gets over TCP must be byte-identical
// to the in-process Searcher's — matches (IDs, triples, provenance,
// distances), ExecStats including the protocol choice (only the
// measured wall time may differ), and sentinel errors under errors.Is.
func TestWireParity(t *testing.T) {
	idx := testIndex(t, 600)
	srv, err := NewServer(Config{
		Index: idx,
		Tenants: []TenantConfig{{
			Name:    "parity",
			Token:   "parity-token",
			Options: []semtree.SearchOption{semtree.WithProtocol(semtree.ProtocolSequential)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	cl, err := Dial(t.Context(), addr, "parity-token")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The in-process reference runs the same sequential protocol so the
	// deterministic stats fields agree exactly.
	ref := idx.Searcher(semtree.WithProtocol(semtree.ProtocolSequential))

	shapes := []struct {
		name string
		opts []semtree.SearchOption
	}{
		{"knn", []semtree.SearchOption{semtree.WithK(5)}},
		{"knn-exact", []semtree.SearchOption{semtree.WithK(3), semtree.WithExactFactor(4)}},
		{"range", []semtree.SearchOption{semtree.WithMode(semtree.ModeRange), semtree.WithRadius(0.35)}},
		{"range-truncated", []semtree.SearchOption{semtree.WithRadius(0.5), semtree.WithK(4)}},
		{"knn-of-nothing", []semtree.SearchOption{semtree.WithK(0)}},
	}
	for qi, q := range testQueries(6) {
		for _, shape := range shapes {
			want, wantErr := ref.With(shape.opts...).Search(t.Context(), q)
			got, gotErr := cl.Search(t.Context(), q, shape.opts...)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("q%d %s: err mismatch: in-process %v, wire %v", qi, shape.name, wantErr, gotErr)
			}
			if wantErr != nil && !errors.Is(gotErr, wantErr) {
				t.Fatalf("q%d %s: wire error %v does not match in-process sentinel %v", qi, shape.name, gotErr, wantErr)
			}
			// Wall is measured time — the only field allowed to differ.
			want.Stats.Wall, got.Stats.Wall = 0, 0
			if !reflect.DeepEqual(want.Matches, got.Matches) {
				t.Fatalf("q%d %s: matches diverge:\nin-process %+v\nwire       %+v", qi, shape.name, want.Matches, got.Matches)
			}
			if !reflect.DeepEqual(want.Stats, got.Stats) {
				t.Fatalf("q%d %s: stats diverge:\nin-process %+v\nwire       %+v", qi, shape.name, want.Stats, got.Stats)
			}
			if got.Stats.Protocol != want.Stats.Protocol {
				t.Fatalf("q%d %s: protocol choice diverged: %q vs %q", qi, shape.name, got.Stats.Protocol, want.Stats.Protocol)
			}
		}
	}
}

// TestWireDeadlinePropagation: a context deadline must cross the wire
// and come back as the context sentinel, matching the in-process error
// contract under errors.Is.
func TestWireDeadlinePropagation(t *testing.T) {
	idx := testIndex(t, 400)
	srv, err := NewServer(Config{Index: idx, Tenants: []TenantConfig{{Name: "t", Token: "tok"}}})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	cl, err := Dial(t.Context(), addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithDeadline(t.Context(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = cl.Search(ctx, testQueries(1)[0], semtree.WithK(3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAuthAndTenantIsolation: a wrong token is refused at dial with the
// typed ErrAuth; a zero-quota tenant is rejected over the wire with
// ErrQuotaExhausted (decoding to the same sentinel) while an open
// tenant on the same server keeps answering, and the starved tenant's
// rejections spend zero fabric messages (metered counters stay zero).
// Runs under -race in the CI sweep alongside everything else.
func TestAuthAndTenantIsolation(t *testing.T) {
	idx := testIndex(t, 400)
	srv, err := NewServer(Config{
		Index: idx,
		Tenants: []TenantConfig{
			{Name: "open", Token: "open-tok"},
			{Name: "starved", Token: "starved-tok",
				Options: []semtree.SearchOption{semtree.WithQuota(0, 0)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	if _, err := Dial(t.Context(), addr, "wrong-token"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad token: err = %v, want ErrAuth", err)
	}

	open, err := Dial(t.Context(), addr, "open-tok")
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	starved, err := Dial(t.Context(), addr, "starved-tok")
	if err != nil {
		t.Fatal(err)
	}
	defer starved.Close()

	qs := testQueries(8)
	var wg sync.WaitGroup
	errsOpen := make([]error, len(qs))
	errsStarved := make([]error, len(qs))
	for i, q := range qs {
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, errsOpen[i] = open.Search(t.Context(), q, semtree.WithK(3))
		}()
		go func() {
			defer wg.Done()
			_, errsStarved[i] = starved.Search(t.Context(), q, semtree.WithK(3))
		}()
	}
	wg.Wait()
	for i := range qs {
		if errsOpen[i] != nil {
			t.Fatalf("open tenant query %d failed: %v", i, errsOpen[i])
		}
		if !errors.Is(errsStarved[i], semtree.ErrQuotaExhausted) {
			t.Fatalf("starved tenant query %d: err = %v, want ErrQuotaExhausted", i, errsStarved[i])
		}
	}
	st, ok := srv.TenantStats("starved")
	if !ok {
		t.Fatal("no stats for tenant starved")
	}
	if st.Admitted != 0 || st.RejectedQuota != int64(len(qs)) || st.MeteredFabricMessages != 0 {
		t.Fatalf("starved tenant stats polluted: %+v", st)
	}
}

// TestGracefulDrain: with queries in flight, Drain must deliver every
// admitted query's answer (zero dropped), refuse late requests with the
// typed retryable ErrDraining, refuse new connections, and leak no
// goroutines.
func TestGracefulDrain(t *testing.T) {
	idx := testIndex(t, 600)
	before := runtime.NumGoroutine()
	srv, err := NewServer(Config{Index: idx, Tenants: []TenantConfig{{Name: "t", Token: "tok"}}})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(ctx, lis)
	}()
	addr := lis.Addr().String()

	// One client (and so one established connection) per request: every
	// request is on a live, authenticated connection before the drain
	// starts, which is what makes the zero-dropped contract assertable —
	// a request still dialing when the listener closes was never the
	// server's to lose.
	const n = 32
	clients := make([]*Client, n)
	for i := range clients {
		cl, err := Dial(t.Context(), addr, "tok")
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
		defer cl.Close()
	}

	qs := testQueries(n)
	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, results[i] = clients[i].Search(t.Context(), qs[i], semtree.WithK(5), semtree.WithExactFactor(8))
		}()
	}
	dctx, dcancel := context.WithTimeout(t.Context(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	// Zero dropped: every request either completed with its answer or
	// was refused with the typed draining sentinel — never a transport
	// error, never silence.
	var answered, refused int
	for i, err := range results {
		switch {
		case err == nil:
			answered++
		case errors.Is(err, ErrDraining):
			refused++
		default:
			t.Fatalf("query %d dropped with untyped error: %v", i, err)
		}
	}
	t.Logf("drain: %d answered, %d refused (typed)", answered, refused)

	// The drained server refuses new connections.
	if _, err := Dial(t.Context(), addr, "tok"); err == nil {
		t.Fatal("dial after drain succeeded")
	}
	for _, cl := range clients {
		cl.Close()
	}
	cancel()
	<-serveDone

	// No goroutine may outlive the drain (the accept loop, connection
	// handlers, request handlers and the lease loop all exit).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across drain: %d running, started with %d", runtime.NumGoroutine(), before)
}

// TestSaveConcurrentWithServeQueries is the serving-tier extension of
// TestSaveConcurrentWithInsert: the admin snapshot endpoint triggers
// the single-critical-section Save on the serving index while live
// network queries and concurrent inserts hammer it. The snapshot must
// be loadable and internally consistent (store ↔ embedding pairing),
// and an un-privileged tenant must be refused with ErrNotAdmin.
func TestSaveConcurrentWithServeQueries(t *testing.T) {
	idx := testIndex(t, 500)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "live.semtree")
	srv, err := NewServer(Config{
		Index:        idx,
		SnapshotPath: snapPath,
		Tenants: []TenantConfig{
			{Name: "admin", Token: "admin-tok", Admin: true},
			{Name: "plain", Token: "plain-tok"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	admin, err := Dial(t.Context(), addr, "admin-tok")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	plain, err := Dial(t.Context(), addr, "plain-tok")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	if _, err := plain.Snapshot(t.Context()); !errors.Is(err, ErrNotAdmin) {
		t.Fatalf("un-privileged snapshot: err = %v, want ErrNotAdmin", err)
	}

	// Race: network queries, direct inserts and wire-triggered Saves,
	// all concurrent.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	qs := testQueries(16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := plain.Search(t.Context(), qs[i%len(qs)], semtree.WithK(3)); err != nil {
				t.Errorf("query under snapshot: %v", err)
				return
			}
		}
	}()
	gen := synth.New(synth.Config{Seed: 99, Actors: 200}, nil)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := idx.Insert(gen.RandomTriple(), triple.Provenance{Doc: "live", Seq: i}); err != nil {
				t.Errorf("insert under snapshot: %v", err)
				return
			}
		}
	}()
	var lastBytes uint64
	for i := 0; i < 5; i++ {
		n, err := admin.Snapshot(t.Context())
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if n == 0 {
			t.Fatalf("snapshot %d: zero bytes written", i)
		}
		lastBytes = n
	}
	close(stop)
	wg.Wait()

	if srv.Stats().Snapshots != 5 {
		t.Fatalf("snapshot counter = %d, want 5", srv.Stats().Snapshots)
	}
	// The last snapshot written must load and answer.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil || uint64(fi.Size()) != lastBytes {
		t.Fatalf("snapshot size = %v (err %v), ack said %d", fi.Size(), err, lastBytes)
	}
	loaded, err := semtree.Load(f, semtree.Options{})
	if err != nil {
		t.Fatalf("loading the live snapshot: %v", err)
	}
	defer loaded.Close()
	ms, err := loaded.KNearest(t.Context(), qs[0], 3)
	if err != nil || len(ms) == 0 {
		t.Fatalf("loaded snapshot query: %v (%d matches)", err, len(ms))
	}
}

// TestAllocatorSplit pins the allocator's share arithmetic with an
// injected clock: equal split without demand, demand-weighted split
// with it, shares always summing to the fleet-wide rate, and a dead
// front-end's share flowing back after the TTL.
func TestAllocatorSplit(t *testing.T) {
	clock := time.Unix(5000, 0)
	a := NewAllocator(AllocatorConfig{
		TTL:     2 * time.Second,
		Tenants: map[string]semtree.QuotaConfig{"acme": {Capacity: 1000, RefillPerSec: 100}},
	})
	a.now = func() time.Time { return clock }

	// Unmanaged tenant: TTL 0 ("keep your local config").
	if g := a.grant(leaseReportFrame{Tenant: "other", FrontEnd: "fe1"}); g.TTLNanos != 0 {
		t.Fatalf("unmanaged tenant got a lease: %+v", g)
	}

	// Single front-end, no demand: the full fleet rate.
	g := a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe1"})
	if g.Capacity != 1000 || g.RefillPerSec != 100 {
		t.Fatalf("single front-end grant = %+v, want the full fleet rate", g)
	}

	// Two front-ends, no demand: equal split, summing to the fleet.
	g2 := a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe2"})
	if g2.RefillPerSec != 50 {
		t.Fatalf("second front-end equal split = %+v, want refill 50", g2)
	}

	// Demand-weighted: 300 qps vs 100 qps → 75%/25% of the refill. The
	// split converges one report round after demand shifts (the first
	// report lands before the peer's demand is known), so report both,
	// then read the settled shares.
	a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe1", DemandQPS: 300})
	g2 = a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe2", DemandQPS: 100})
	g1 := a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe1", DemandQPS: 300})
	if g1.RefillPerSec != 75 || g2.RefillPerSec != 25 {
		t.Fatalf("demand split = %v + %v, want 75 + 25", g1.RefillPerSec, g2.RefillPerSec)
	}
	if sum := g1.RefillPerSec + g2.RefillPerSec; sum != 100 {
		t.Fatalf("shares sum to %v, want the fleet-wide 100", sum)
	}

	// fe1 dies; past the TTL its share returns to fe2.
	clock = clock.Add(3 * time.Second)
	g2 = a.grant(leaseReportFrame{Tenant: "acme", FrontEnd: "fe2", DemandQPS: 100})
	if g2.Capacity != 1000 || g2.RefillPerSec != 100 {
		t.Fatalf("survivor's grant after TTL expiry = %+v, want the full fleet rate", g2)
	}
}

// TestFleetQuotaConvergence is the end-to-end distributed-quota
// contract: two front-ends over one index, one allocator, one quota'd
// tenant. Before any lease each front-end independently grants the full
// fleet rate (2× total); once the lease loops run, the per-front-end
// buckets must converge so the capacities sum to the fleet-wide
// configuration, not a multiple of it.
func TestFleetQuotaConvergence(t *testing.T) {
	idx := testIndex(t, 400)
	const fleetCap, fleetRefill = 50000.0, 5000.0
	tenants := func() []TenantConfig {
		return []TenantConfig{{
			Name:  "acme",
			Token: "tok",
			Options: []semtree.SearchOption{
				semtree.WithQuota(fleetCap, fleetRefill),
			},
		}}
	}

	alloc := NewAllocator(AllocatorConfig{
		Token:   "fleet-secret",
		TTL:     time.Second,
		Tenants: map[string]semtree.QuotaConfig{"acme": {Capacity: fleetCap, RefillPerSec: fleetRefill}},
	})
	alis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	allocDone := make(chan struct{})
	actx, acancel := context.WithCancel(t.Context())
	go func() {
		defer close(allocDone)
		_ = alloc.Serve(actx, alis)
	}()
	t.Cleanup(func() { acancel(); <-allocDone })

	servers := make([]*Server, 2)
	for i := range servers {
		srv, err := NewServer(Config{
			Index:          idx,
			Tenants:        tenants(),
			FrontEndID:     fmt.Sprintf("fe%d", i),
			AllocatorAddr:  alis.Addr().String(),
			AllocatorToken: "fleet-secret",
			LeaseInterval:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		startServer(t, srv)
	}

	// Wait (bounded) for both lease loops to have applied a split
	// grant: each front-end's capacity drops to half the fleet's.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caps := make([]float64, 2)
		for i, srv := range servers {
			st, ok := srv.TenantStats("acme")
			if !ok || !st.QuotaEnabled {
				t.Fatal("tenant acme has no quota snapshot")
			}
			caps[i] = st.QuotaCapacity
		}
		if caps[0]+caps[1] <= fleetCap*1.01 && caps[0] > 0 && caps[1] > 0 {
			t.Logf("converged: per-front-end capacities %v sum to fleet %v", caps, fleetCap)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet capacities never converged: %v (fleet-wide %v)", caps, fleetCap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHelloVersionMismatch: a future protocol version is refused with
// the typed ErrVersion, not a hang or a guess.
func TestHelloVersionMismatch(t *testing.T) {
	idx := testIndex(t, 200)
	srv, err := NewServer(Config{Index: idx, Tenants: []TenantConfig{{Name: "t", Token: "tok"}}})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, encodeHello(helloFrame{Version: protoVersion + 9, Token: "tok"})); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	ack := frame.(helloAckFrame)
	if dec := semtree.DecodeError(ack.Code, ack.Msg, 0); !errors.Is(dec, ErrVersion) {
		t.Fatalf("version mismatch decoded to %v, want ErrVersion", dec)
	}
}
