package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"semtree"
)

// TenantConfig describes one tenant the server will answer for: the
// auth token its connections present, the scheduler-level search
// options (WithQuota, WithMaxInFlight, WithAdmissionControl,
// WithProtocol, ...) that shape its admission machinery, and whether it
// may trigger admin operations. The options are the same functional
// options the in-process API takes — the serving tier adds no second
// configuration language.
type TenantConfig struct {
	// Name identifies the tenant in stats, lease reports and logs.
	Name string
	// Token is the shared secret connections present in their hello.
	Token string
	// Admin grants access to admin frames (the snapshot trigger).
	Admin bool
	// Options configure the tenant's Searcher. Query-level options set
	// here (WithK, ...) become defaults a wire request overrides.
	Options []semtree.SearchOption
}

// Config configures a Server.
type Config struct {
	// Index is the index the server answers from. Required.
	Index *semtree.Index
	// Tenants maps auth tokens onto per-tenant searchers. At least one
	// is required.
	Tenants []TenantConfig
	// SnapshotPath is where the admin snapshot frame writes the index
	// (atomically: temp file + rename). Empty disables the endpoint.
	SnapshotPath string
	// FrontEndID names this front-end in lease reports. Required when
	// AllocatorAddr is set.
	FrontEndID string
	// AllocatorAddr, when set, enables fleet-wide quotas: the server
	// periodically reports each quota'd tenant's demand to the
	// allocator at this address and applies the leased refill share to
	// the tenant's bucket.
	AllocatorAddr string
	// AllocatorToken authenticates the lease connection.
	AllocatorToken string
	// LeaseInterval is the report/renew period (default 200ms).
	LeaseInterval time.Duration
	// HelloTimeout bounds how long an accepted connection may take to
	// present its hello (default 10s) so an idle dialer cannot pin a
	// handler goroutine forever.
	HelloTimeout time.Duration
	// DrainGrace is how long Drain keeps live connections answering
	// (with typed ErrDraining refusals) after the in-flight count first
	// reaches zero, so requests already on the wire when the drain
	// began are refused instead of dropped (default 250ms).
	DrainGrace time.Duration
}

// tenant is the server-side state of one configured tenant.
type tenant struct {
	name     string
	admin    bool
	searcher *semtree.Searcher
	quota    *semtree.QuotaConfig // fleet-wide config; nil = unquota'd

	// lastArrived supports the lease agent's demand measurement: the
	// admitted+quota-rejected counter at the previous report.
	lastArrived int64
}

// ServerStats is a snapshot of the server's request counters.
type ServerStats struct {
	// Conns counts accepted connections that passed the hello.
	Conns int64
	// Served counts search requests answered (success or typed error).
	Served int64
	// RejectedDraining counts requests refused with ErrDraining.
	RejectedDraining int64
	// Snapshots counts admin snapshots taken.
	Snapshots int64
}

// Server hosts per-tenant Searchers behind the serve wire protocol.
// Connections are concurrent and so are requests within one connection:
// every search frame runs on its own goroutine and responses are
// serialized by a per-connection write lock, so a slow query never
// blocks the queries behind it.
type Server struct {
	cfg     Config
	tenants map[string]*tenant // keyed by token

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}

	draining atomic.Bool
	reqWG    sync.WaitGroup // in-flight request handlers
	connWG   sync.WaitGroup // connection handlers + accept loop

	connCount        atomic.Int64
	served           atomic.Int64
	rejectedDraining atomic.Int64
	snapshots        atomic.Int64
}

// NewServer builds a server over cfg, constructing one Searcher per
// tenant (each with its own scheduler, quota bucket and admission
// queue — the same isolation the in-process API gives).
func NewServer(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("serve: Config.Index is required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: at least one tenant is required")
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.LeaseInterval <= 0 {
		cfg.LeaseInterval = 200 * time.Millisecond
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	if cfg.AllocatorAddr != "" && cfg.FrontEndID == "" {
		return nil, fmt.Errorf("serve: FrontEndID is required with AllocatorAddr")
	}
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
		conns:   make(map[net.Conn]struct{}),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Token]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant token (tenant %q)", tc.Name)
		}
		// The options applied to a zero SearchOptions reveal the
		// tenant's fleet-wide quota — the single source of truth the
		// lease agent scales shares from.
		var o semtree.SearchOptions
		for _, opt := range tc.Options {
			opt(&o)
		}
		s.tenants[tc.Token] = &tenant{
			name:     tc.Name,
			admin:    tc.Admin,
			searcher: cfg.Index.Searcher(tc.Options...),
			quota:    o.Quota,
		}
	}
	return s, nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:            s.connCount.Load(),
		Served:           s.served.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Snapshots:        s.snapshots.Load(),
	}
}

// TenantStats returns the named tenant's scheduler snapshot (admission
// counters, quota level, metered cost), or false if no such tenant.
func (s *Server) TenantStats(name string) (semtree.SchedulerStats, bool) {
	for _, t := range s.tenants {
		if t.name == name {
			return t.searcher.SchedulerStats(), true
		}
	}
	return semtree.SchedulerStats{}, false
}

// Serve accepts connections on lis until ctx is done or Drain is
// called, then returns. Each connection and each request within it runs
// on its own goroutine; Serve itself blocks. The listener is owned by
// the server from here on.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()

	if s.cfg.AllocatorAddr != "" {
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.leaseLoop(ctx)
		}()
	}
	stop := context.AfterFunc(ctx, func() { _ = lis.Close() })
	defer stop()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return nil // listener closed by Drain
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(ctx, conn)
		}()
	}
}

// Drain performs the graceful-shutdown contract: stop accepting new
// connections, refuse new requests on live connections with the typed
// retryable ErrDraining, let every in-flight request finish and get its
// response written, hold the connections open for a grace window so
// requests already on the wire when the drain began still get their
// typed refusal (a frame can sit in a kernel buffer while the in-flight
// count reads zero — closing at that instant would drop it silently),
// then close the connections. Zero admitted requests are dropped. ctx
// bounds the wait; an expired ctx abandons the stragglers and returns
// its error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.lis != nil {
		_ = s.lis.Close()
	}
	s.mu.Unlock()

	// Wait for in-flight request handlers — each holds a reqWG slot
	// from frame decode to response write — then for the grace window,
	// then for the refusals the grace window admitted.
	var err error
	wait := func(d time.Duration) {
		done := make(chan struct{})
		go func() {
			s.reqWG.Wait()
			if d > 0 {
				timer := time.NewTimer(d)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-ctx.Done():
				}
				s.reqWG.Wait()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	wait(s.cfg.DrainGrace)

	// Responses are out (or abandoned): snap the connections shut so
	// their read loops unblock, and wait for every handler goroutine.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// connWriter serializes frame writes onto one connection: concurrent
// request handlers share it.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.conn, payload)
}

func (s *Server) track(conn net.Conn) func() {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}
}

// handleConn runs one connection: hello exchange, then a read loop that
// spawns one goroutine per request. A protocol error closes the
// connection — framing cannot be resynchronized after garbage.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer s.track(conn)()

	// The hello must arrive promptly; afterwards the connection may
	// idle indefinitely between requests.
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	payload, err := readFrame(conn)
	if err != nil {
		return
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		return
	}
	hello, ok := frame.(helloFrame)
	if !ok {
		return
	}
	w := &connWriter{conn: conn}
	refuse := func(sentinel error) {
		code, msg, _ := encodeError(sentinel)
		_ = w.write(encodeHelloAck(helloAckFrame{Version: protoVersion, Code: code, Msg: msg}))
	}
	if hello.Version != protoVersion {
		refuse(fmt.Errorf("%w: server speaks %d, client sent %d", ErrVersion, protoVersion, hello.Version))
		return
	}
	t, ok := s.tenants[hello.Token]
	if !ok {
		refuse(ErrAuth)
		return
	}
	if s.draining.Load() {
		refuse(ErrDraining)
		return
	}
	if err := w.write(encodeHelloAck(helloAckFrame{Version: protoVersion})); err != nil {
		return
	}
	s.connCount.Add(1)
	_ = conn.SetReadDeadline(time.Time{})

	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // clean close, peer gone, or unframeable garbage
		}
		frame, err := decodeFrame(payload)
		if err != nil {
			return
		}
		switch f := frame.(type) {
		case searchFrame:
			s.reqWG.Add(1)
			go func() {
				defer s.reqWG.Done()
				s.handleSearch(ctx, t, w, f)
			}()
		case snapshotFrame:
			s.reqWG.Add(1)
			go func() {
				defer s.reqWG.Done()
				s.handleSnapshot(t, w, f)
			}()
		default:
			return // a server never receives acks or results
		}
	}
}

// handleSearch answers one query. The request's absolute deadline is
// rebuilt into a context derived from the server's own, so both a
// client deadline and a server shutdown bound the execution; the
// decoded request fields are applied as functional options over the
// tenant's searcher, sharing its scheduler and quota bucket.
func (s *Server) handleSearch(ctx context.Context, t *tenant, w *connWriter, f searchFrame) {
	reply := func(r resultFrame) {
		r.ReqID = f.ReqID
		_ = w.write(encodeResult(r))
	}
	if s.draining.Load() {
		code, msg, detail := encodeError(ErrDraining)
		s.rejectedDraining.Add(1)
		reply(resultFrame{HasErr: true, Code: code, Msg: msg, Detail: detail})
		return
	}
	if f.Mode > uint8(semtree.ModeRange) {
		code, msg, detail := encodeError(fmt.Errorf("%w: unknown search mode %d", ErrProtocol, f.Mode))
		reply(resultFrame{HasErr: true, Code: code, Msg: msg, Detail: detail})
		return
	}
	if f.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, f.Deadline))
		defer cancel()
	}
	// Zero-valued request fields mean "not specified": the tenant's
	// configured defaults stand. Only explicit overrides are applied —
	// a client that sets nothing gets exactly the tenant's searcher.
	var wopts []semtree.SearchOption
	if f.Mode != uint8(semtree.ModeAuto) {
		wopts = append(wopts, semtree.WithMode(semtree.SearchMode(f.Mode)))
	}
	if f.K > 0 {
		wopts = append(wopts, semtree.WithK(int(f.K)))
	}
	if f.Radius > 0 {
		wopts = append(wopts, semtree.WithRadius(f.Radius))
	}
	if f.ExactFactor > 0 {
		wopts = append(wopts, semtree.WithExactFactor(int(f.ExactFactor)))
	}
	sr := t.searcher.With(wopts...)
	res, _ := sr.Search(ctx, f.Query)
	s.served.Add(1)

	out := resultFrame{Stats: toWireStats(res.Stats)}
	if res.Err != nil {
		out.HasErr = true
		out.Code, out.Msg, out.Detail = encodeError(res.Err)
	} else {
		out.Matches = make([]wireMatch, len(res.Matches))
		for i, m := range res.Matches {
			out.Matches[i] = wireMatch{
				ID:      uint64(m.ID),
				Dist:    m.Dist,
				Triple:  m.Triple,
				Doc:     m.Prov.Doc,
				Section: m.Prov.Section,
				Seq:     int64(m.Prov.Seq),
			}
		}
	}
	reply(out)
}

// handleSnapshot services the admin snapshot trigger: Save the serving
// index to the configured path, atomically (temp file + rename), while
// queries keep running — the single-critical-section Save guarantees a
// consistent snapshot without stopping the world.
func (s *Server) handleSnapshot(t *tenant, w *connWriter, f snapshotFrame) {
	reply := func(r snapshotAckFrame) {
		r.ReqID = f.ReqID
		_ = w.write(encodeSnapshotAck(r))
	}
	fail := func(err error) {
		code, msg, detail := encodeError(err)
		reply(snapshotAckFrame{HasErr: true, Code: code, Msg: msg, Detail: detail})
	}
	if !t.admin {
		fail(ErrNotAdmin)
		return
	}
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		fail(ErrDraining)
		return
	}
	if s.cfg.SnapshotPath == "" {
		fail(errors.New("serve: no snapshot path configured"))
		return
	}
	n, err := s.snapshotTo(s.cfg.SnapshotPath)
	if err != nil {
		fail(err)
		return
	}
	s.snapshots.Add(1)
	reply(snapshotAckFrame{Bytes: n})
}

func (s *Server) snapshotTo(path string) (uint64, error) {
	tmp, err := os.CreateTemp(dirOf(path), ".semtree-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if err := semtree.Save(tmp, s.cfg.Index); err != nil {
		tmp.Close()
		return 0, err
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return uint64(info.Size()), nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// toWireStats projects ExecStats onto the wire layout.
func toWireStats(st semtree.ExecStats) wireStats {
	return wireStats{
		NodesVisited:   st.NodesVisited,
		BucketsScanned: st.BucketsScanned,
		DistanceEvals:  st.DistanceEvals,
		Partitions:     int64(st.Partitions),
		FabricMessages: st.FabricMessages,
		ProbeMisses:    st.ProbeMisses,
		WallNanos:      int64(st.Wall),
		Protocol:       st.Protocol,
	}
}

// fromWireStats is the inverse projection, used by the client.
func fromWireStats(ws wireStats) semtree.ExecStats {
	return semtree.ExecStats{
		NodesVisited:   ws.NodesVisited,
		BucketsScanned: ws.BucketsScanned,
		DistanceEvals:  ws.DistanceEvals,
		Partitions:     int(ws.Partitions),
		FabricMessages: ws.FabricMessages,
		ProbeMisses:    ws.ProbeMisses,
		Wall:           time.Duration(ws.WallNanos),
		Protocol:       ws.Protocol,
	}
}

// leaseLoop is the front-end half of the distributed-quota protocol:
// every LeaseInterval it reports each quota'd tenant's recent demand to
// the allocator and applies the granted share to the tenant's bucket in
// place (SetQuotaRate keeps earned tokens). If the allocator is
// unreachable the tenants keep their current rates — fail-static: a
// brief allocator outage neither drains nor un-throttles anyone.
func (s *Server) leaseLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.LeaseInterval)
	defer ticker.Stop()
	var cc *leaseConn
	defer func() {
		if cc != nil {
			cc.close()
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if s.draining.Load() {
			return
		}
		if cc == nil {
			var err error
			cc, err = dialLease(ctx, s.cfg.AllocatorAddr, s.cfg.AllocatorToken)
			if err != nil {
				continue // retry next tick
			}
		}
		for _, t := range s.tenants {
			if t.quota == nil {
				continue
			}
			st := t.searcher.SchedulerStats()
			arrived := st.Admitted + st.RejectedQuota
			demand := float64(arrived-t.lastArrived) / s.cfg.LeaseInterval.Seconds()
			t.lastArrived = arrived
			grant, err := cc.report(ctx, leaseReportFrame{
				Tenant:    t.name,
				FrontEnd:  s.cfg.FrontEndID,
				DemandQPS: demand,
			})
			if err != nil {
				cc.close()
				cc = nil
				break // redial next tick
			}
			if grant.TTLNanos <= 0 {
				continue // allocator does not manage this tenant
			}
			t.searcher.SetQuotaRate(grant.Capacity, grant.RefillPerSec)
		}
	}
}
