package serve

import (
	"errors"
	"reflect"
	"testing"

	"semtree/internal/triple"
)

// FuzzServeFrame: the frame decoder must never panic on arbitrary
// bytes — the same posture as the snapshot fuzzers. Malformed payloads
// must surface as the typed ErrProtocol (so a hostile peer produces a
// clean typed close, not a crash), and every payload the decoder
// accepts must re-encode byte-identically — the decoder admits exactly
// the canonical wire form, nothing looser.
func FuzzServeFrame(f *testing.F) {
	q := triple.Triple{
		Subject:   triple.NewConcept("std", "OBSW001"),
		Predicate: triple.NewConcept("Fun", "block_cmd"),
		Object:    triple.NewConcept("CmdType", "start-up"),
	}
	f.Add(encodeHello(helloFrame{Version: protoVersion, Token: "tok"}))
	f.Add(encodeHelloAck(helloAckFrame{Version: protoVersion}))
	f.Add(encodeSearch(searchFrame{ReqID: 7, Deadline: 123, Mode: 1, K: 5, ExactFactor: 2, Radius: 0.5, Query: q}))
	f.Add(encodeResult(resultFrame{ReqID: 7, Matches: []wireMatch{{ID: 3, Dist: 0.25, Triple: q, Doc: "d", Section: "s", Seq: 1}}}))
	f.Add(encodeResult(resultFrame{ReqID: 9, HasErr: true, Code: 3, Msg: "quota", Detail: 0}))
	f.Add(encodeSnapshot(snapshotFrame{ReqID: 1}))
	f.Add(encodeSnapshotAck(snapshotAckFrame{ReqID: 1, Bytes: 4096}))
	f.Add(encodeLeaseReport(leaseReportFrame{Tenant: "acme", FrontEnd: "fe0", DemandQPS: 12.5}))
	f.Add(encodeLeaseGrant(leaseGrantFrame{Tenant: "acme", Capacity: 100, RefillPerSec: 25, TTLNanos: 1e9}))
	f.Add([]byte{})
	f.Add([]byte{ftSearch})
	f.Add([]byte{255, 0, 0, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > maxFrameSize {
			return // readFrame rejects these before decodeFrame runs
		}
		frame, err := decodeFrame(payload)
		if err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("malformed payload produced an untyped error: %v", err)
			}
			return
		}
		// Accepted payloads are canonical: re-encoding the decoded frame
		// reproduces the input bit for bit.
		var re []byte
		switch fr := frame.(type) {
		case helloFrame:
			re = encodeHello(fr)
		case helloAckFrame:
			re = encodeHelloAck(fr)
		case searchFrame:
			re = encodeSearch(fr)
		case resultFrame:
			re = encodeResult(fr)
		case snapshotFrame:
			re = encodeSnapshot(fr)
		case snapshotAckFrame:
			re = encodeSnapshotAck(fr)
		case leaseReportFrame:
			re = encodeLeaseReport(fr)
		case leaseGrantFrame:
			re = encodeLeaseGrant(fr)
		default:
			t.Fatalf("decoder returned unknown frame type %T", frame)
		}
		if !reflect.DeepEqual(re, payload) {
			t.Fatalf("accepted payload is not canonical:\nin  %x\nout %x", payload, re)
		}
	})
}
