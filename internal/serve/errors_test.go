package serve

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"semtree"
)

// TestServeErrorCodesComplete mirrors the facade's registry-
// completeness test over the serving tier: every exported Err*
// sentinel this package declares must carry a wire code in the 64+
// range, so a new protocol-level sentinel cannot ship without crossing
// the wire typed.
func TestServeErrorCodesComplete(t *testing.T) {
	instances := map[string]error{
		"ErrProtocol": ErrProtocol,
		"ErrAuth":     ErrAuth,
		"ErrDraining": ErrDraining,
		"ErrVersion":  ErrVersion,
		"ErrNotAdmin": ErrNotAdmin,
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var found int
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, n := range vs.Names {
						if !ast.IsExported(n.Name) || !strings.HasPrefix(n.Name, "Err") {
							continue
						}
						found++
						inst, ok := instances[n.Name]
						if !ok {
							t.Errorf("exported sentinel %s has no entry in this test's instance table", n.Name)
							continue
						}
						c := semtree.CodeOf(inst)
						if c == semtree.CodeUnknown {
							t.Errorf("sentinel %s has no registered wire code", n.Name)
						}
						if c < 64 {
							t.Errorf("sentinel %s has code %d, below the serving tier's 64+ range", n.Name, c)
						}
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("found no exported Err* declarations — parser broken?")
	}
}

// TestServeErrorRoundTrip: each serve sentinel crosses the wire and
// decodes back to itself under errors.Is, exactly like the facade's.
func TestServeErrorRoundTrip(t *testing.T) {
	for _, s := range []error{ErrProtocol, ErrAuth, ErrDraining, ErrVersion, ErrNotAdmin} {
		code, msg, detail := encodeError(s)
		if dec := semtree.DecodeError(code, msg, detail); !errors.Is(dec, s) || dec.Error() != s.Error() {
			t.Errorf("%v: wire round trip lost the sentinel (got %v)", s, dec)
		}
	}
	// Wrapped forms keep the message and the sentinel.
	werr := fmt.Errorf("while serving request 12: %w", ErrDraining)
	code, msg, detail := encodeError(werr)
	dec := semtree.DecodeError(code, msg, detail)
	if !errors.Is(dec, ErrDraining) || dec.Error() != werr.Error() {
		t.Errorf("wrapped draining error round trip: got %v", dec)
	}
}
