package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"semtree"
)

// This file is the distributed-quota seam. PR 4's token buckets are
// per-process: a tenant configured for 25 qps gets 25 qps *per
// front-end*, so a fleet of N silently multiplies every quota by N. The
// allocator closes that hole without a shared datastore: it owns each
// tenant's fleet-wide bucket definition and leases refill *shares* to
// front-ends over the same wire protocol the queries ride. Front-ends
// report demand (their recent arrival rate for the tenant) every
// LeaseInterval; the allocator splits the tenant's capacity and refill
// across the front-ends reporting within the lease TTL, proportional to
// demand (equal split when nobody reports demand), so the shares always
// sum to the configured fleet-wide rate. A front-end applies its share
// with Searcher.SetQuotaRate — in place, keeping earned tokens — and a
// front-end that dies simply stops renewing: after one TTL its share
// flows back to the survivors. The allocator is soft state; losing it
// freezes the current split (fail-static) rather than opening or
// closing the floodgates.

// AllocatorConfig configures the central quota allocator.
type AllocatorConfig struct {
	// Token authenticates front-ends (hello token of lease
	// connections).
	Token string
	// Tenants maps tenant names onto their FLEET-WIDE bucket: the
	// capacity and refill rate the whole fleet shares.
	Tenants map[string]semtree.QuotaConfig
	// TTL is how long a front-end's report stays live; a front-end that
	// has not renewed within TTL stops counting toward the split
	// (default 2s).
	TTL time.Duration
}

// Allocator is the lease server. It speaks the serve wire protocol
// (hello, then leaseReport→leaseGrant request/response pairs) and holds
// only soft state: the last demand report per (tenant, front-end).
type Allocator struct {
	cfg AllocatorConfig

	mu      sync.Mutex
	lis     net.Listener
	reports map[string]map[string]alloReport // tenant → front-end → report

	connWG sync.WaitGroup

	// now is the injected clock (tests freeze it to step TTL expiry
	// deterministically).
	now func() time.Time
}

type alloReport struct {
	demand float64
	at     time.Time
}

// NewAllocator builds an allocator over cfg.
func NewAllocator(cfg AllocatorConfig) *Allocator {
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Second
	}
	return &Allocator{
		cfg:     cfg,
		reports: make(map[string]map[string]alloReport),
		now:     time.Now,
	}
}

// Serve accepts lease connections on lis until ctx is done or the
// listener is closed.
func (a *Allocator) Serve(ctx context.Context, lis net.Listener) error {
	a.mu.Lock()
	a.lis = lis
	a.mu.Unlock()
	stop := context.AfterFunc(ctx, func() { _ = lis.Close() })
	defer stop()
	for {
		conn, err := lis.Accept()
		if err != nil {
			a.connWG.Wait()
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return nil
		}
		a.connWG.Add(1)
		go func() {
			defer a.connWG.Done()
			defer conn.Close()
			a.handleConn(conn)
		}()
	}
}

// Close stops the listener; in-flight lease exchanges finish.
func (a *Allocator) Close() error {
	a.mu.Lock()
	lis := a.lis
	a.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	a.connWG.Wait()
	return nil
}

func (a *Allocator) handleConn(conn net.Conn) {
	_ = conn.SetReadDeadline(a.now().Add(10 * time.Second))
	payload, err := readFrame(conn)
	if err != nil {
		return
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		return
	}
	hello, ok := frame.(helloFrame)
	if !ok {
		return
	}
	if hello.Version != protoVersion {
		code, msg, _ := encodeError(ErrVersion)
		_ = writeFrame(conn, encodeHelloAck(helloAckFrame{Version: protoVersion, Code: code, Msg: msg}))
		return
	}
	if hello.Token != a.cfg.Token {
		code, msg, _ := encodeError(ErrAuth)
		_ = writeFrame(conn, encodeHelloAck(helloAckFrame{Version: protoVersion, Code: code, Msg: msg}))
		return
	}
	if err := writeFrame(conn, encodeHelloAck(helloAckFrame{Version: protoVersion})); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		frame, err := decodeFrame(payload)
		if err != nil {
			return
		}
		rep, ok := frame.(leaseReportFrame)
		if !ok {
			return
		}
		grant := a.grant(rep)
		if err := writeFrame(conn, encodeLeaseGrant(grant)); err != nil {
			return
		}
	}
}

// grant records one report and computes the reporter's share. Shares of
// the front-ends with a live report always sum to the tenant's
// fleet-wide capacity and refill — proportional to reported demand, or
// an equal split while no one reports demand (startup, idle fleet).
func (a *Allocator) grant(rep leaseReportFrame) leaseGrantFrame {
	fleet, managed := a.cfg.Tenants[rep.Tenant]
	if !managed {
		// TTL 0 tells the front-end "not mine": it keeps its local
		// configuration.
		return leaseGrantFrame{Tenant: rep.Tenant}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	byFE := a.reports[rep.Tenant]
	if byFE == nil {
		byFE = make(map[string]alloReport)
		a.reports[rep.Tenant] = byFE
	}
	if rep.DemandQPS < 0 {
		rep.DemandQPS = 0
	}
	byFE[rep.FrontEnd] = alloReport{demand: rep.DemandQPS, at: now}

	var live int
	var total float64
	for fe, r := range byFE {
		if now.Sub(r.at) > a.cfg.TTL {
			delete(byFE, fe)
			continue
		}
		live++
		total += r.demand
	}
	// The reporter itself is always live (it reported just now).
	share := 1.0 / float64(live)
	if total > 0 {
		share = byFE[rep.FrontEnd].demand / total
	}
	return leaseGrantFrame{
		Tenant:       rep.Tenant,
		Capacity:     fleet.Capacity * share,
		RefillPerSec: fleet.RefillPerSec * share,
		TTLNanos:     int64(a.cfg.TTL),
	}
}

// leaseConn is the front-end's connection to the allocator: one
// request/response exchange at a time, with a fixed per-exchange
// deadline so a hung allocator can never wedge the lease loop (and
// therefore Drain).
type leaseConn struct {
	conn net.Conn
}

// leaseExchangeTimeout bounds one report→grant round trip.
const leaseExchangeTimeout = 2 * time.Second

func dialLease(ctx context.Context, addr, token string) (*leaseConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(leaseExchangeTimeout))
	if err := writeFrame(conn, encodeHello(helloFrame{Version: protoVersion, Token: token})); err != nil {
		conn.Close()
		return nil, err
	}
	payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ack, ok := frame.(helloAckFrame)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("%w: expected hello ack", ErrProtocol)
	}
	if ack.Code != 0 {
		conn.Close()
		return nil, semtree.DecodeError(ack.Code, ack.Msg, 0)
	}
	_ = conn.SetDeadline(time.Time{})
	return &leaseConn{conn: conn}, nil
}

func (c *leaseConn) report(ctx context.Context, rep leaseReportFrame) (leaseGrantFrame, error) {
	deadline := time.Now().Add(leaseExchangeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})
	if err := writeFrame(c.conn, encodeLeaseReport(rep)); err != nil {
		return leaseGrantFrame{}, err
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return leaseGrantFrame{}, err
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		return leaseGrantFrame{}, err
	}
	grant, ok := frame.(leaseGrantFrame)
	if !ok {
		return leaseGrantFrame{}, fmt.Errorf("%w: expected lease grant", ErrProtocol)
	}
	return grant, nil
}

func (c *leaseConn) close() { _ = c.conn.Close() }
