package serve

import (
	"errors"

	"semtree"
)

// The serving tier's own sentinels. Like the facade's, each carries a
// wire-stable code — registered in the 64+ range the facade reserves
// for this package — so both sides of the wire agree on errors.Is
// semantics for protocol-level failures too. TestServeErrorCodesComplete
// mirrors the facade's registry-completeness test over this package.
var (
	// ErrProtocol marks a malformed frame: bad length prefix, unknown
	// frame type, truncated body, or trailing bytes. The connection that
	// produced it is closed — framing cannot be resynchronized.
	ErrProtocol = errors.New("serve: malformed frame")
	// ErrAuth marks a hello whose token maps to no configured tenant.
	ErrAuth = errors.New("serve: authentication failed")
	// ErrDraining marks a request refused because the server is
	// draining: it stopped accepting work but is finishing what it
	// admitted. Retryable by contract — another front-end (or the
	// restarted server) will take the request.
	ErrDraining = errors.New("serve: server draining")
	// ErrVersion marks a hello with a protocol version the server does
	// not speak.
	ErrVersion = errors.New("serve: protocol version mismatch")
	// ErrNotAdmin marks an admin frame (snapshot trigger) from a tenant
	// without admin rights.
	ErrNotAdmin = errors.New("serve: admin access denied")
)

// Wire codes of the serve sentinels (64+ is the serving-tier range; see
// semtree.ErrorCode). Append; never renumber.
const (
	codeProtocol semtree.ErrorCode = 64
	codeAuth     semtree.ErrorCode = 65
	codeDraining semtree.ErrorCode = 66
	codeVersion  semtree.ErrorCode = 67
	codeNotAdmin semtree.ErrorCode = 68
)

func init() {
	semtree.RegisterErrorCode(codeProtocol, ErrProtocol)
	semtree.RegisterErrorCode(codeAuth, ErrAuth)
	semtree.RegisterErrorCode(codeDraining, ErrDraining)
	semtree.RegisterErrorCode(codeVersion, ErrVersion)
	semtree.RegisterErrorCode(codeNotAdmin, ErrNotAdmin)
}

// Retryable reports whether err is a typed retryable serve failure: the
// request provably did not execute and another attempt (typically
// against another front-end) is safe and useful. Only ErrDraining
// qualifies today; quota and admission rejections are deliberate
// back-pressure and retrying them defeats the throttle.
func Retryable(err error) bool {
	return errors.Is(err, ErrDraining)
}
