// Package serve is SemTree's network serving tier: a standalone server
// that hosts per-tenant Searchers behind a concurrent length-prefixed
// binary protocol, a pooled retrying Client, and a distributed-quota
// allocator that leases refill shares to front-ends so a tenant's quota
// holds fleet-wide, not per process.
//
// The wire contract is deliberately narrow and stable:
//
//   - Frames are length-prefixed (uint32 big-endian, capped at
//     maxFrameSize) and carry one type byte plus a fixed-layout body.
//     Malformed bytes decode to a typed ErrProtocol, never a panic
//     (FuzzServeFrame enforces this).
//   - A connection opens with a versioned hello carrying the tenant's
//     auth token; the server maps the token onto that tenant's Searcher
//     — and therefore its admission limits and quota bucket.
//   - Each request carries an absolute deadline (unix nanoseconds,
//     0 = none) that the server rebuilds into a context, so an expired
//     query stops traversing the tree remotely exactly as it would in
//     process.
//   - Errors cross the wire as (code, message, detail) using the
//     facade's wire-stable error-code registry, so a server-side
//     rejection decodes client-side to the same sentinel under
//     errors.Is.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"semtree"
	"semtree/internal/triple"
)

// protoVersion is the serve protocol version, sent in both directions
// of the hello exchange. A server refuses a hello whose version it does
// not speak with ErrVersion rather than guessing at frame layouts.
const protoVersion uint32 = 1

// maxFrameSize caps one frame's payload. A length prefix beyond the cap
// is a protocol error before any allocation happens, so a hostile
// 4 GiB prefix cannot balloon memory.
const maxFrameSize = 1 << 20

// Frame type bytes. Append new types; never renumber.
const (
	ftHello       uint8 = 1 // client → server: version, auth token
	ftHelloAck    uint8 = 2 // server → client: version, error code/msg
	ftSearch      uint8 = 3 // client → server: one query
	ftResult      uint8 = 4 // server → client: one query's answer
	ftSnapshot    uint8 = 5 // client → server: admin snapshot trigger
	ftSnapshotAck uint8 = 6 // server → client: snapshot outcome
	ftLeaseReport uint8 = 7 // front-end → allocator: tenant demand
	ftLeaseGrant  uint8 = 8 // allocator → front-end: refill share
)

// helloFrame opens a connection: the client's protocol version and the
// tenant auth token.
type helloFrame struct {
	Version uint32
	Token   string
}

// helloAckFrame answers the hello. Code 0 means the connection is
// accepted; otherwise Code/Msg/Detail carry the typed rejection
// (ErrVersion, ErrAuth, ErrDraining) and the server closes the
// connection after writing the ack.
type helloAckFrame struct {
	Version uint32
	Code    semtree.ErrorCode
	Msg     string
}

// searchFrame is one query. Mode, K, Radius and ExactFactor are decoded
// into the facade's functional options (WithMode, WithK, WithRadius,
// WithExactFactor) over the tenant's searcher — the options surface is
// the single source of truth for what a wire request can express.
// Deadline is absolute unix nanoseconds; 0 means none.
type searchFrame struct {
	ReqID       uint64
	Deadline    int64
	Mode        uint8
	K           int64
	ExactFactor int64
	Radius      float64
	Query       triple.Triple
}

// wireStats is ExecStats in wire layout.
type wireStats struct {
	NodesVisited   int64
	BucketsScanned int64
	DistanceEvals  int64
	Partitions     int64
	FabricMessages int64
	ProbeMisses    int64
	WallNanos      int64
	Protocol       string
}

// wireMatch is one retrieval result in wire layout.
type wireMatch struct {
	ID      uint64
	Dist    float64
	Triple  triple.Triple
	Doc     string
	Section string
	Seq     int64
}

// resultFrame answers one searchFrame. HasErr marks a failed query;
// Code/Msg/Detail then decode to the original sentinel via
// semtree.DecodeError. Stats always describes what the query spent
// (zero for rejected queries — the admission contract).
type resultFrame struct {
	ReqID   uint64
	HasErr  bool
	Code    semtree.ErrorCode
	Msg     string
	Detail  uint64
	Stats   wireStats
	Matches []wireMatch
}

// snapshotFrame triggers a server-side Save (admin tenants only).
type snapshotFrame struct {
	ReqID uint64
}

// snapshotAckFrame reports the snapshot outcome and the byte size
// written.
type snapshotAckFrame struct {
	ReqID  uint64
	HasErr bool
	Code   semtree.ErrorCode
	Msg    string
	Detail uint64
	Bytes  uint64
}

// leaseReportFrame is a front-end's periodic demand report for one
// tenant: DemandQPS is the tenant's recent arrival rate (admitted plus
// quota-rejected queries per second) at this front-end.
type leaseReportFrame struct {
	Tenant    string
	FrontEnd  string
	DemandQPS float64
}

// leaseGrantFrame is the allocator's answer: this front-end's leased
// share of the tenant's fleet-wide bucket, valid for TTLNanos. The
// shares granted to all live front-ends of a tenant sum to the tenant's
// configured fleet-wide capacity and refill rate.
type leaseGrantFrame struct {
	Tenant       string
	Capacity     float64
	RefillPerSec float64
	TTLNanos     int64
}

// --- encoding ---
//
// All integers are big-endian. Strings are uint32 length + bytes.
// Encoders append to a caller-owned buffer; decoders consume an rbuf
// that latches the first error, so a malformed frame yields exactly one
// typed ErrProtocol and never panics or over-reads.

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendTerm(b []byte, t triple.Term) []byte {
	b = appendU8(b, uint8(t.Kind))
	b = appendU8(b, uint8(t.LitType))
	b = appendStr(b, t.Prefix)
	return appendStr(b, t.Value)
}

func appendTriple(b []byte, t triple.Triple) []byte {
	b = appendTerm(b, t.Subject)
	b = appendTerm(b, t.Predicate)
	return appendTerm(b, t.Object)
}

// rbuf is a latching frame reader: the first short read or cap breach
// sets err and every later read returns zero values, so decoders are
// written straight-line and checked once at the end.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrProtocol, r.off)
	}
}

func (r *rbuf) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

// boolean is strict: only 0 and 1 are valid encodings, so every
// accepted frame is canonical (re-encodes byte-identically).
func (r *rbuf) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: non-canonical boolean at offset %d", ErrProtocol, r.off-1)
		}
		return false
	}
}

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) term() triple.Term {
	var t triple.Term
	t.Kind = triple.TermKind(r.u8())
	t.LitType = triple.LiteralType(r.u8())
	t.Prefix = r.str()
	t.Value = r.str()
	return t
}

func (r *rbuf) triple() triple.Triple {
	var t triple.Triple
	t.Subject = r.term()
	t.Predicate = r.term()
	t.Object = r.term()
	return t
}

// done finishes a frame decode: the latched error if any, else a
// protocol error when the frame carried trailing bytes (a frame is
// exactly its layout, nothing more).
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(r.b)-r.off)
	}
	return nil
}

// --- per-frame encode/decode ---

func encodeHello(f helloFrame) []byte {
	b := appendU8(nil, ftHello)
	b = appendU32(b, f.Version)
	return appendStr(b, f.Token)
}

func encodeHelloAck(f helloAckFrame) []byte {
	b := appendU8(nil, ftHelloAck)
	b = appendU32(b, f.Version)
	b = appendU32(b, uint32(f.Code))
	return appendStr(b, f.Msg)
}

func encodeSearch(f searchFrame) []byte {
	b := appendU8(nil, ftSearch)
	b = appendU64(b, f.ReqID)
	b = appendI64(b, f.Deadline)
	b = appendU8(b, f.Mode)
	b = appendI64(b, f.K)
	b = appendI64(b, f.ExactFactor)
	b = appendF64(b, f.Radius)
	return appendTriple(b, f.Query)
}

func encodeResult(f resultFrame) []byte {
	b := appendU8(nil, ftResult)
	b = appendU64(b, f.ReqID)
	b = appendBool(b, f.HasErr)
	b = appendU32(b, uint32(f.Code))
	b = appendStr(b, f.Msg)
	b = appendU64(b, f.Detail)
	b = appendI64(b, f.Stats.NodesVisited)
	b = appendI64(b, f.Stats.BucketsScanned)
	b = appendI64(b, f.Stats.DistanceEvals)
	b = appendI64(b, f.Stats.Partitions)
	b = appendI64(b, f.Stats.FabricMessages)
	b = appendI64(b, f.Stats.ProbeMisses)
	b = appendI64(b, f.Stats.WallNanos)
	b = appendStr(b, f.Stats.Protocol)
	b = appendU32(b, uint32(len(f.Matches)))
	for _, m := range f.Matches {
		b = appendU64(b, m.ID)
		b = appendF64(b, m.Dist)
		b = appendTriple(b, m.Triple)
		b = appendStr(b, m.Doc)
		b = appendStr(b, m.Section)
		b = appendI64(b, m.Seq)
	}
	return b
}

func encodeSnapshot(f snapshotFrame) []byte {
	b := appendU8(nil, ftSnapshot)
	return appendU64(b, f.ReqID)
}

func encodeSnapshotAck(f snapshotAckFrame) []byte {
	b := appendU8(nil, ftSnapshotAck)
	b = appendU64(b, f.ReqID)
	b = appendBool(b, f.HasErr)
	b = appendU32(b, uint32(f.Code))
	b = appendStr(b, f.Msg)
	b = appendU64(b, f.Detail)
	return appendU64(b, f.Bytes)
}

func encodeLeaseReport(f leaseReportFrame) []byte {
	b := appendU8(nil, ftLeaseReport)
	b = appendStr(b, f.Tenant)
	b = appendStr(b, f.FrontEnd)
	return appendF64(b, f.DemandQPS)
}

func encodeLeaseGrant(f leaseGrantFrame) []byte {
	b := appendU8(nil, ftLeaseGrant)
	b = appendStr(b, f.Tenant)
	b = appendF64(b, f.Capacity)
	b = appendF64(b, f.RefillPerSec)
	return appendI64(b, f.TTLNanos)
}

// decodeFrame parses one frame payload (the bytes after the length
// prefix) into its typed struct. Unknown types and malformed bodies
// return an error wrapping ErrProtocol; decodeFrame never panics —
// FuzzServeFrame holds it to that.
func decodeFrame(payload []byte) (any, error) {
	r := &rbuf{b: payload}
	switch ft := r.u8(); ft {
	case ftHello:
		var f helloFrame
		f.Version = r.u32()
		f.Token = r.str()
		return f, r.done()
	case ftHelloAck:
		var f helloAckFrame
		f.Version = r.u32()
		f.Code = semtree.ErrorCode(r.u32())
		f.Msg = r.str()
		return f, r.done()
	case ftSearch:
		var f searchFrame
		f.ReqID = r.u64()
		f.Deadline = r.i64()
		f.Mode = r.u8()
		f.K = r.i64()
		f.ExactFactor = r.i64()
		f.Radius = r.f64()
		f.Query = r.triple()
		return f, r.done()
	case ftResult:
		var f resultFrame
		f.ReqID = r.u64()
		f.HasErr = r.boolean()
		f.Code = semtree.ErrorCode(r.u32())
		f.Msg = r.str()
		f.Detail = r.u64()
		f.Stats.NodesVisited = r.i64()
		f.Stats.BucketsScanned = r.i64()
		f.Stats.DistanceEvals = r.i64()
		f.Stats.Partitions = r.i64()
		f.Stats.FabricMessages = r.i64()
		f.Stats.ProbeMisses = r.i64()
		f.Stats.WallNanos = r.i64()
		f.Stats.Protocol = r.str()
		n := int(r.u32())
		// Each match is ≥ 50 bytes on the wire; a count the payload
		// cannot possibly hold is rejected before allocation.
		if r.err == nil && n > len(r.b)/50+1 {
			return nil, fmt.Errorf("%w: match count %d exceeds frame", ErrProtocol, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var m wireMatch
			m.ID = r.u64()
			m.Dist = r.f64()
			m.Triple = r.triple()
			m.Doc = r.str()
			m.Section = r.str()
			m.Seq = r.i64()
			f.Matches = append(f.Matches, m)
		}
		return f, r.done()
	case ftSnapshot:
		var f snapshotFrame
		f.ReqID = r.u64()
		return f, r.done()
	case ftSnapshotAck:
		var f snapshotAckFrame
		f.ReqID = r.u64()
		f.HasErr = r.boolean()
		f.Code = semtree.ErrorCode(r.u32())
		f.Msg = r.str()
		f.Detail = r.u64()
		f.Bytes = r.u64()
		return f, r.done()
	case ftLeaseReport:
		var f leaseReportFrame
		f.Tenant = r.str()
		f.FrontEnd = r.str()
		f.DemandQPS = r.f64()
		return f, r.done()
	case ftLeaseGrant:
		var f leaseGrantFrame
		f.Tenant = r.str()
		f.Capacity = r.f64()
		f.RefillPerSec = r.f64()
		f.TTLNanos = r.i64()
		return f, r.done()
	default:
		if r.err != nil {
			return nil, r.err // empty payload: no type byte at all
		}
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrProtocol, ft)
	}
}

// writeFrame writes one length-prefixed frame. Callers serialize writes
// per connection (the server holds a per-connection write mutex; the
// client runs one request per pooled connection).
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(payload))
	}
	hdr := appendU32(make([]byte, 0, 4+len(payload)), uint32(len(payload)))
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one length-prefixed frame payload. An oversized
// length prefix is a typed protocol error surfaced before any payload
// allocation.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // transport-level: EOF on clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: frame length %d exceeds cap", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short frame: %v", ErrProtocol, err)
	}
	return payload, nil
}

// encodeError projects err onto the wire triplet via the facade
// registry.
func encodeError(err error) (code semtree.ErrorCode, msg string, detail uint64) {
	return semtree.CodeOf(err), err.Error(), semtree.ErrorDetail(err)
}
