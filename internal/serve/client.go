package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semtree"
	"semtree/internal/triple"
)

// Client talks to one semtree-serve front-end. It pools connections
// (one in-flight request per pooled connection, like database/sql), is
// safe for concurrent use, and retries typed-retryable failures —
// ErrDraining and transport errors on requests that provably did not
// execute — on a fresh connection. Search results decode to the same
// types the in-process API returns: semtree.Result with matches,
// ExecStats (including the server's protocol choice) and sentinel
// errors that satisfy errors.Is exactly as they would in process.
type Client struct {
	addr  string
	token string

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	reqID atomic.Uint64
}

// maxIdleConns bounds the pool; excess connections close on release.
const maxIdleConns = 4

// clientRetries is the attempt budget for retryable failures.
const clientRetries = 3

type clientConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to a front-end and performs the hello exchange, so
// authentication and version failures surface here as the typed
// sentinels (ErrAuth, ErrVersion, ErrDraining) rather than on the
// first query. The context bounds the dial and the hello.
func Dial(ctx context.Context, addr, token string) (*Client, error) {
	c := &Client{addr: addr, token: token}
	cc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.put(cc)
	return c, nil
}

func (c *Client) dial(ctx context.Context) (*clientConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{conn: conn, br: bufio.NewReader(conn)}
	if err := armDeadline(ctx, conn); err != nil {
		conn.Close()
		return nil, err
	}
	defer disarmDeadline(conn)
	if err := writeFrame(conn, encodeHello(helloFrame{Version: protoVersion, Token: c.token})); err != nil {
		conn.Close()
		return nil, c.ctxOr(ctx, err)
	}
	frame, err := c.readOne(ctx, cc)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ack, ok := frame.(helloAckFrame)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("%w: expected hello ack", ErrProtocol)
	}
	if ack.Code != 0 {
		conn.Close()
		return nil, semtree.DecodeError(ack.Code, ack.Msg, 0)
	}
	return cc, nil
}

// get returns a pooled connection or dials a fresh one.
func (c *Client) get(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("serve: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	return c.dial(ctx)
}

// put releases a healthy connection back to the pool.
func (c *Client) put(cc *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= maxIdleConns {
		cc.conn.Close()
		return
	}
	c.idle = append(c.idle, cc)
}

// Close closes all pooled connections. In-flight requests on
// checked-out connections finish; their connections close on release.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		cc.conn.Close()
	}
	c.idle = nil
	return nil
}

// armDeadline mirrors the cluster fabric's idiom: the context deadline
// caps the connection's reads and writes, and plain cancellation snaps
// the deadlines shut. Callers must disarm before pooling.
func armDeadline(ctx context.Context, conn net.Conn) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	return nil
}

func disarmDeadline(conn net.Conn) { _ = conn.SetDeadline(time.Time{}) }

// ctxOr prefers the context's own error over a transport error it
// caused (a snapped deadline surfaces as a net timeout).
func (c *Client) ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// readOne reads and decodes one frame, honoring ctx cancellation via
// the connection deadline.
func (c *Client) readOne(ctx context.Context, cc *clientConn) (any, error) {
	stop := context.AfterFunc(ctx, func() { _ = cc.conn.SetDeadline(time.Now()) })
	defer stop()
	payload, err := readFrame(cc.br)
	if err != nil {
		return nil, c.ctxOr(ctx, err)
	}
	frame, err := decodeFrame(payload)
	if err != nil {
		return nil, c.ctxOr(ctx, err)
	}
	return frame, nil
}

// Search answers one query over the wire. Options are the facade's own
// query-level options (WithMode, WithK, WithRadius, WithExactFactor);
// scheduler-level options are the server's tenant configuration and are
// ignored here. The context's deadline crosses the wire and bounds the
// server-side execution; its cancellation cuts the local wait. Like
// Searcher.Search, the per-query error is returned both in Result.Err
// and as the second value, and it matches the in-process sentinels
// under errors.Is.
func (c *Client) Search(ctx context.Context, q triple.Triple, opts ...semtree.SearchOption) (semtree.Result, error) {
	var o semtree.SearchOptions
	for _, opt := range opts {
		opt(&o)
	}
	req := searchFrame{
		Mode:        uint8(o.Mode),
		K:           int64(o.K),
		ExactFactor: int64(o.ExactFactor),
		Radius:      o.Radius,
		Query:       q,
	}
	var lastErr, lastTyped error
	for attempt := 0; attempt < clientRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return semtree.Result{Err: err}, err
		}
		res, err := c.searchOnce(ctx, req)
		if err == nil {
			if Retryable(res.Err) && attempt < clientRetries-1 {
				lastErr, lastTyped = res.Err, res.Err
				continue
			}
			return res, res.Err
		}
		// Context errors and typed rejections are final; transport
		// errors retry on a fresh connection — the frame either never
		// arrived or the answer was lost, and search is idempotent.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return semtree.Result{Err: err}, err
		}
		lastErr = err
	}
	// When a retry died at the transport (e.g. the draining server
	// stopped listening), the typed refusal an earlier attempt carried
	// is the truthful, actionable answer — surface it over the dial
	// noise.
	if lastTyped != nil {
		lastErr = lastTyped
	}
	return semtree.Result{Err: lastErr}, lastErr
}

func (c *Client) searchOnce(ctx context.Context, req searchFrame) (semtree.Result, error) {
	cc, err := c.get(ctx)
	if err != nil {
		return semtree.Result{}, err
	}
	req.ReqID = c.reqID.Add(1)
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = d.UnixNano()
	} else {
		req.Deadline = 0
	}
	if err := armDeadline(ctx, cc.conn); err != nil {
		cc.conn.Close()
		return semtree.Result{}, err
	}
	if err := writeFrame(cc.conn, encodeSearch(req)); err != nil {
		cc.conn.Close()
		return semtree.Result{}, c.ctxOr(ctx, err)
	}
	frame, err := c.readOne(ctx, cc)
	if err != nil {
		cc.conn.Close()
		return semtree.Result{}, err
	}
	rf, ok := frame.(resultFrame)
	if !ok || rf.ReqID != req.ReqID {
		cc.conn.Close()
		return semtree.Result{}, fmt.Errorf("%w: unexpected response frame", ErrProtocol)
	}
	disarmDeadline(cc.conn)
	c.put(cc)

	res := semtree.Result{Stats: fromWireStats(rf.Stats)}
	if rf.HasErr {
		res.Err = semtree.DecodeError(rf.Code, rf.Msg, rf.Detail)
		return res, nil
	}
	if n := len(rf.Matches); n > 0 {
		res.Matches = make([]semtree.Match, n)
		for i, m := range rf.Matches {
			res.Matches[i] = semtree.Match{
				ID:     triple.ID(m.ID),
				Triple: m.Triple,
				Prov:   triple.Provenance{Doc: m.Doc, Section: m.Section, Seq: int(m.Seq)},
				Dist:   m.Dist,
			}
		}
	}
	return res, nil
}

// Snapshot triggers a server-side Save of the serving index to the
// server's configured snapshot path (admin tenants only) and returns
// the snapshot's byte size. The server saves under its single critical
// section while queries keep running.
func (c *Client) Snapshot(ctx context.Context) (uint64, error) {
	cc, err := c.get(ctx)
	if err != nil {
		return 0, err
	}
	reqID := c.reqID.Add(1)
	if err := armDeadline(ctx, cc.conn); err != nil {
		cc.conn.Close()
		return 0, err
	}
	if err := writeFrame(cc.conn, encodeSnapshot(snapshotFrame{ReqID: reqID})); err != nil {
		cc.conn.Close()
		return 0, c.ctxOr(ctx, err)
	}
	frame, err := c.readOne(ctx, cc)
	if err != nil {
		cc.conn.Close()
		return 0, err
	}
	ack, ok := frame.(snapshotAckFrame)
	if !ok || ack.ReqID != reqID {
		cc.conn.Close()
		return 0, fmt.Errorf("%w: unexpected response frame", ErrProtocol)
	}
	disarmDeadline(cc.conn)
	c.put(cc)
	if ack.HasErr {
		return 0, semtree.DecodeError(ack.Code, ack.Msg, ack.Detail)
	}
	return ack.Bytes, nil
}
