package synth

import (
	"testing"

	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func TestTriplesSchemaAndDeterminism(t *testing.T) {
	g1 := New(Config{Seed: 7}, nil)
	g2 := New(Config{Seed: 7}, nil)
	ts1 := g1.Triples(500)
	ts2 := g2.Triples(500)
	fun := vocab.Functions()
	for i, tr := range ts1 {
		if !tr.Subject.IsLiteral() {
			t.Fatalf("triple %d: subject %v not a literal actor", i, tr.Subject)
		}
		if tr.Predicate.Prefix != "Fun" {
			t.Fatalf("triple %d: predicate %v not a Fun concept", i, tr.Predicate)
		}
		if _, ok := fun.Lookup(tr.Predicate.Value); !ok {
			t.Fatalf("triple %d: unknown predicate %q", i, tr.Predicate.Value)
		}
		if !tr.Equal(ts2[i]) {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, tr, ts2[i])
		}
	}
	// Different seeds must diverge.
	g3 := New(Config{Seed: 8}, nil)
	same := 0
	for i, tr := range g3.Triples(500) {
		if tr.Equal(ts1[i]) {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/500 identical triples", same)
	}
}

func TestConflictOfDefinition(t *testing.T) {
	g := New(Config{Seed: 3}, nil)
	fun := vocab.Functions()
	conflicts := 0
	for i := 0; i < 300; i++ {
		tr := g.RandomTriple()
		c, ok := g.ConflictOf(tr)
		if !ok {
			continue
		}
		conflicts++
		if !c.Subject.Equal(tr.Subject) || !c.Object.Equal(tr.Object) {
			t.Fatalf("conflict changed subject/object: %v vs %v", c, tr)
		}
		a, _ := fun.Lookup(tr.Predicate.Value)
		b, _ := fun.Lookup(c.Predicate.Value)
		if !fun.IsAntonym(a, b) {
			t.Fatalf("conflict predicates not antonyms: %v vs %v", tr.Predicate, c.Predicate)
		}
	}
	if conflicts < 100 {
		t.Fatalf("only %d/300 triples had conflicts — vocabulary antinomy too sparse", conflicts)
	}
}

func TestCorpusRoundTripsThroughNLP(t *testing.T) {
	g := New(Config{Seed: 11, Docs: 20, SectionsPerDoc: 6}, nil)
	b := g.Corpus()
	if len(b.Skipped) != 0 {
		t.Fatalf("generated sentences failed to extract: %v", b.Skipped[:min(5, len(b.Skipped))])
	}
	if b.Corpus.NumTriples() < 150 {
		t.Fatalf("suspiciously few triples: %d", b.Corpus.NumTriples())
	}
	if len(b.Corpus.Docs) != 20 {
		t.Fatalf("docs = %d", len(b.Corpus.Docs))
	}
}

func TestCorpusPlantedPairsAreInconsistent(t *testing.T) {
	g := New(Config{Seed: 13, Docs: 30, SectionsPerDoc: 8, InconsistencyRate: 0.4}, nil)
	b := g.Corpus()
	if len(b.Planted) < 10 {
		t.Fatalf("only %d planted pairs", len(b.Planted))
	}
	fun := vocab.Functions()
	for _, p := range b.Planted {
		req, ok1 := b.Corpus.Store.Get(p.Requirement)
		con, ok2 := b.Corpus.Store.Get(p.Conflict)
		if !ok1 || !ok2 {
			t.Fatalf("planted pair references missing triples: %+v", p)
		}
		if !req.Triple.Subject.Equal(con.Triple.Subject) {
			t.Fatalf("planted pair subjects differ: %v vs %v", req.Triple, con.Triple)
		}
		if !req.Triple.Object.Equal(con.Triple.Object) {
			t.Fatalf("planted pair objects differ: %v vs %v", req.Triple, con.Triple)
		}
		a, _ := fun.Lookup(req.Triple.Predicate.Value)
		c, _ := fun.Lookup(con.Triple.Predicate.Value)
		if !fun.IsAntonym(a, c) {
			t.Fatalf("planted pair predicates not antonyms: %v vs %v", req.Triple, con.Triple)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	b1 := New(Config{Seed: 17}, nil).Corpus()
	b2 := New(Config{Seed: 17}, nil).Corpus()
	if b1.Corpus.NumTriples() != b2.Corpus.NumTriples() {
		t.Fatalf("triple counts differ: %d vs %d", b1.Corpus.NumTriples(), b2.Corpus.NumTriples())
	}
	if len(b1.Planted) != len(b2.Planted) {
		t.Fatalf("planted counts differ: %d vs %d", len(b1.Planted), len(b2.Planted))
	}
	for i := range b1.Planted {
		if b1.Planted[i] != b2.Planted[i] {
			t.Fatalf("planted[%d] differs", i)
		}
	}
}

func TestPanelExactWithoutNoise(t *testing.T) {
	p := NewPanel(5, 0, 0, 1)
	trueSet := []triple.ID{3, 1, 2}
	got := p.GroundTruth(trueSet, []triple.ID{10, 11})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("noise-free panel = %v", got)
	}
}

func TestPanelMissesEverythingAtRateOne(t *testing.T) {
	p := NewPanel(5, 1, 0, 1)
	if got := p.GroundTruth([]triple.ID{1, 2, 3}, nil); len(got) != 0 {
		t.Fatalf("full-miss panel = %v", got)
	}
}

func TestPanelMajorityDampsNoise(t *testing.T) {
	// With small miss and spurious rates, the majority vote should keep
	// nearly all true items and nearly no spurious ones.
	p := NewPanel(5, 0.1, 0.05, 42)
	trueSet := make([]triple.ID, 100)
	near := make([]triple.ID, 100)
	for i := range trueSet {
		trueSet[i] = triple.ID(i)
		near[i] = triple.ID(1000 + i)
	}
	got := p.GroundTruth(trueSet, near)
	kept, spurious := 0, 0
	for _, id := range got {
		if id < 1000 {
			kept++
		} else {
			spurious++
		}
	}
	if kept < 95 {
		t.Fatalf("majority vote kept only %d/100 true items", kept)
	}
	if spurious > 5 {
		t.Fatalf("majority vote admitted %d spurious items", spurious)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
