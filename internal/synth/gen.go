// Package synth generates the synthetic workloads that substitute for
// the paper's proprietary CIRA corpus: "several hundreds of documents
// from which about 100,000 triples were extracted" (§IV). It produces
//
//   - requirement triples directly (the fast path feeding the index
//     benchmarks at 100k-triple scale),
//   - whole documents of requirement *text* that round-trip through the
//     NLP extractor, with *planted inconsistencies* (pairs of
//     requirements with the same actor and parameter but antinomic
//     functions, §II) recorded as ground truth,
//   - a simulated annotator panel that perturbs the exact ground truth
//     the way a group of human software engineers would (§IV-B used 5
//     CIRA engineers).
//
// Everything is deterministic under a seed.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"semtree/internal/nlp"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// Config parameterizes generation. Zero values select the defaults.
type Config struct {
	Seed                int64
	Actors              int     // distinct actor components (default 40)
	Docs                int     // documents (default 50)
	SectionsPerDoc      int     // requirements per document (default 10)
	SentencesPerSection int     // sentences per requirement (default 2)
	InconsistencyRate   float64 // sections planting a conflict (default 0.15)
	PassiveRate         float64 // passive-voice sentences (default 0.2)
	PhaseRate           float64 // phase-prefixed sentences (default 0.2)
	ConjunctionRate     float64 // two-verb sentences (default 0.2)
	NegationRate        float64 // negated renderings (default 0.1)
}

func (c Config) withDefaults() Config {
	if c.Actors <= 0 {
		c.Actors = 40
	}
	if c.Docs <= 0 {
		c.Docs = 50
	}
	if c.SectionsPerDoc <= 0 {
		c.SectionsPerDoc = 10
	}
	if c.SentencesPerSection <= 0 {
		c.SentencesPerSection = 2
	}
	if c.InconsistencyRate == 0 {
		c.InconsistencyRate = 0.15
	}
	if c.PassiveRate == 0 {
		c.PassiveRate = 0.2
	}
	if c.PhaseRate == 0 {
		c.PhaseRate = 0.2
	}
	if c.ConjunctionRate == 0 {
		c.ConjunctionRate = 0.2
	}
	if c.NegationRate == 0 {
		c.NegationRate = 0.1
	}
	return c
}

// predFamily maps each Fun leaf to the kind of object it takes:
// a parameter vocabulary prefix, or the literal pools "device"/"region".
var predFamily = map[string]string{
	"accept_cmd": "CmdType", "reject_cmd": "CmdType", "block_cmd": "CmdType",
	"execute_cmd": "CmdType", "abort_cmd": "CmdType", "queue_cmd": "CmdType",
	"discard_cmd": "CmdType",
	"send_msg":    "MsgType", "receive_msg": "MsgType", "broadcast_msg": "MsgType",
	"suppress_msg": "MsgType", "forward_msg": "MsgType", "drop_msg": "MsgType",
	"report_status": "MsgType", "raise_alarm": "MsgType", "clear_alarm": "MsgType",
	"acquire_in": "InType", "release_in": "InType", "sample_in": "InType",
	"ignore_in": "InType", "monitor_param": "InType",
	"power_on": "device", "power_off": "device", "open_valve": "device",
	"close_valve": "device", "arm_device": "device", "disarm_device": "device",
	"lock_device": "device", "unlock_device": "device", "start_unit": "device",
	"stop_unit": "device", "enable_unit": "device", "disable_unit": "device",
	"activate_unit": "device", "deactivate_unit": "device",
	"store_data": "region", "erase_data": "region", "read_data": "region",
	"write_data": "region", "checksum_data": "region",
}

var devicePool = []string{
	"heater_1", "heater_2", "valve_A", "valve_B", "pump_1", "antenna_2",
	"gyro_unit", "star_tracker", "battery_bank", "tank_pressurizer",
}

var regionPool = []string{
	"log_area", "config_bank", "image_buffer", "telemetry_archive", "boot_sector",
}

var actorPrefixes = []string{"OBSW", "PDU", "TTC", "AOCS", "CDMU", "EPS", "RCS"}

// Generator produces deterministic synthetic workloads.
type Generator struct {
	cfg Config
	rng *rand.Rand
	reg *vocab.Registry
	lex *nlp.Lexicon

	actors    []string
	funLeaves []string            // Fun predicates with a known family
	objLeaves map[string][]string // prefix → parameter leaf names
}

// New returns a generator over the given registry (nil selects the
// built-in vocabularies).
func New(cfg Config, reg *vocab.Registry) *Generator {
	if reg == nil {
		reg = vocab.DefaultRegistry()
	}
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		reg:       reg,
		lex:       nlp.NewLexicon(reg),
		objLeaves: make(map[string][]string),
	}
	for i := 0; i < cfg.Actors; i++ {
		prefix := actorPrefixes[i%len(actorPrefixes)]
		g.actors = append(g.actors, fmt.Sprintf("%s%03d", prefix, i+1))
	}
	fun, _ := reg.Get("Fun")
	for _, leaf := range fun.Leaves() {
		if _, ok := predFamily[fun.Name(leaf)]; ok {
			g.funLeaves = append(g.funLeaves, fun.Name(leaf))
		}
	}
	for _, prefix := range []string{"CmdType", "MsgType", "InType"} {
		v, _ := reg.Get(prefix)
		for _, leaf := range v.Leaves() {
			g.objLeaves[prefix] = append(g.objLeaves[prefix], v.Name(leaf))
		}
	}
	return g
}

// Lexicon returns the lexicon the generator renders against.
func (g *Generator) Lexicon() *nlp.Lexicon { return g.lex }

// Actor returns a random actor identifier.
func (g *Generator) Actor() string { return g.actors[g.rng.Intn(len(g.actors))] }

// RandomTriple generates one requirement triple: an actor, a function
// predicate, and an object of the predicate's family.
func (g *Generator) RandomTriple() triple.Triple {
	pred := g.funLeaves[g.rng.Intn(len(g.funLeaves))]
	return g.tripleWithPredicate(g.Actor(), pred)
}

func (g *Generator) tripleWithPredicate(actor, pred string) triple.Triple {
	var obj triple.Term
	switch fam := predFamily[pred]; fam {
	case "device":
		obj = triple.NewLiteral(devicePool[g.rng.Intn(len(devicePool))])
	case "region":
		obj = triple.NewLiteral(regionPool[g.rng.Intn(len(regionPool))])
	default:
		leaves := g.objLeaves[fam]
		obj = triple.NewConcept(fam, leaves[g.rng.Intn(len(leaves))])
	}
	return triple.New(triple.NewLiteral(actor), triple.NewConcept("Fun", pred), obj)
}

// Triples generates n requirement triples (the direct 100k-scale path).
func (g *Generator) Triples(n int) []triple.Triple {
	out := make([]triple.Triple, n)
	for i := range out {
		out[i] = g.RandomTriple()
	}
	return out
}

// ConflictOf returns a triple inconsistent with t per §II: same
// subject, same object, predicate replaced by a vocabulary antonym. ok
// is false when the predicate has no recorded antinomy.
func (g *Generator) ConflictOf(t triple.Triple) (triple.Triple, bool) {
	fun, _ := g.reg.Get("Fun")
	id, ok := fun.Lookup(t.Predicate.Value)
	if !ok {
		return triple.Triple{}, false
	}
	ants := fun.Antonyms(id)
	if len(ants) == 0 {
		return triple.Triple{}, false
	}
	ant := ants[g.rng.Intn(len(ants))]
	out := t
	out.Predicate = triple.NewConcept("Fun", fun.Name(ant))
	return out, true
}

// objectText renders a term the way a requirement author writes it.
func objectText(o triple.Term) string {
	if o.IsLiteral() {
		return o.Value
	}
	name := strings.ReplaceAll(o.Value, "_", " ")
	switch o.Prefix {
	case "CmdType":
		return name + " command"
	case "MsgType":
		return name + " message"
	default:
		return name
	}
}

// renderActive renders "<Actor> shall <verb> the <object>". With
// negate, it renders "shall not <verb'>" using a verb whose antonym
// maps back to t's predicate, so extraction round-trips; ok is false
// when no such verb exists.
func (g *Generator) renderActive(t triple.Triple, negate bool) (string, bool) {
	verb, ok := g.verbFor(t.Predicate.Value, negate)
	if !ok {
		return "", false
	}
	not := ""
	if negate {
		not = "not "
	}
	return fmt.Sprintf("%s shall %s%s the %s.", t.Subject.Value, not, verb, objectText(t.Object)), true
}

// renderPassive renders "The <object> shall be <participle> by <Actor>".
func (g *Generator) renderPassive(t triple.Triple) (string, bool) {
	lemma, ok := g.lex.Lemma(t.Predicate.Value)
	if !ok {
		return "", false
	}
	part, ok := g.lex.ParticipleOf(lemma)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("The %s shall be %s by %s.", objectText(t.Object), part, t.Subject.Value), true
}

// renderConjunction renders two same-subject triples as one sentence.
func (g *Generator) renderConjunction(a, b triple.Triple) (string, bool) {
	va, okA := g.verbFor(a.Predicate.Value, false)
	vb, okB := g.verbFor(b.Predicate.Value, false)
	if !okA || !okB {
		return "", false
	}
	return fmt.Sprintf("%s shall %s the %s and %s the %s.",
		a.Subject.Value, va, objectText(a.Object), vb, objectText(b.Object)), true
}

// renderWithPhase prefixes a sentence with a phase clause; the phase
// triple (subject, acquire_in, phase) is implied and extracted first.
func renderWithPhase(phase triple.Term, sentence string) string {
	name := strings.TrimSuffix(phase.Value, "_phase")
	name = strings.ReplaceAll(name, "_", " ")
	return fmt.Sprintf("In the %s phase, %s", name, lowerFirst(sentence))
}

func lowerFirst(s string) string { return s } // actor names keep their case

// verbFor picks a verb rendering predicate pred, honoring negation:
// for negate, a verb whose first antonym is pred.
func (g *Generator) verbFor(pred string, negate bool) (string, bool) {
	if !negate {
		return g.lex.Lemma(pred)
	}
	fun, _ := g.reg.Get("Fun")
	id, ok := fun.Lookup(pred)
	if !ok {
		return "", false
	}
	for _, cand := range fun.Antonyms(id) {
		name := fun.Name(cand)
		// Extraction maps "not <verb>" to the verb's *first* antonym;
		// require the round trip to land on pred.
		if ant, ok := g.lex.Antonym(name); ok && ant == pred {
			if lemma, ok := g.lex.Lemma(name); ok {
				return lemma, true
			}
		}
	}
	return "", false
}

// PhaseTerm returns a random launch-phase concept.
func (g *Generator) PhaseTerm() triple.Term {
	in, _ := g.reg.Get("InType")
	var phases []string
	for _, leaf := range in.Leaves() {
		if strings.HasSuffix(in.Name(leaf), "_phase") {
			phases = append(phases, in.Name(leaf))
		}
	}
	return triple.NewConcept("InType", phases[g.rng.Intn(len(phases))])
}
