package synth

import (
	"math/rand"
	"sort"

	"semtree/internal/triple"
)

// Panel simulates the group of software engineers who provided the
// ground truth in the paper's effectiveness study (§IV-B: 5 persons at
// CIRA). Each simulated annotator independently reviews the exact
// inconsistency set, missing true items with MissRate and flagging
// plausible-but-wrong near misses with SpuriousRate; the panel's ground
// truth is the majority vote.
type Panel struct {
	Annotators   int     // panel size (default 5)
	MissRate     float64 // per-annotator false-negative probability
	SpuriousRate float64 // per-annotator false-positive probability per near miss
	rng          *rand.Rand
}

// NewPanel returns a deterministic annotator panel.
func NewPanel(annotators int, missRate, spuriousRate float64, seed int64) *Panel {
	if annotators <= 0 {
		annotators = 5
	}
	return &Panel{
		Annotators:   annotators,
		MissRate:     missRate,
		SpuriousRate: spuriousRate,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// GroundTruth returns the panel's majority-vote annotation given the
// exact true inconsistency set and the near misses annotators might
// wrongly flag. The result is sorted by ID.
func (p *Panel) GroundTruth(trueSet, nearMisses []triple.ID) []triple.ID {
	votes := make(map[triple.ID]int)
	for a := 0; a < p.Annotators; a++ {
		for _, id := range trueSet {
			if p.rng.Float64() >= p.MissRate {
				votes[id]++
			}
		}
		for _, id := range nearMisses {
			if p.rng.Float64() < p.SpuriousRate {
				votes[id]++
			}
		}
	}
	var out []triple.ID
	for id, v := range votes {
		if v > p.Annotators/2 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
