package synth

import (
	"fmt"
	"strings"

	"semtree/internal/docs"
	"semtree/internal/nlp"
	"semtree/internal/triple"
)

// Planted records one planted inconsistency: the requirement triple and
// the conflicting triple (same subject and object, antinomic
// predicates) hidden elsewhere in the corpus. These pairs are the exact
// ground truth the effectiveness evaluation (Figure 8) is scored
// against.
type Planted struct {
	Requirement triple.ID
	Conflict    triple.ID
}

// CorpusBundle is a generated corpus with its ground truth.
type CorpusBundle struct {
	Corpus  *docs.Corpus
	Planted []Planted
	Skipped []string // sentences the extractor could not parse (should be empty)
}

// Corpus generates requirement documents as text, ingests them through
// the NLP extractor, and resolves the planted-conflict ground truth to
// stored triple IDs.
func (g *Generator) Corpus() *CorpusBundle {
	type pendingConflict struct {
		reqDoc    string
		targetDoc int
		req       triple.Triple
		conflict  triple.Triple
	}

	srcs := make([]docs.DocumentSource, g.cfg.Docs)
	var pend []pendingConflict
	for d := range srcs {
		docID := fmt.Sprintf("DOC-%03d", d+1)
		srcs[d] = docs.DocumentSource{
			ID:    docID,
			Title: fmt.Sprintf("On-board software requirements, volume %d", d+1),
		}
		for s := 0; s < g.cfg.SectionsPerDoc; s++ {
			secID := fmt.Sprintf("REQ-%03d-%02d", d+1, s+1)
			sentences, mains := g.planSection()
			if len(sentences) == 0 {
				continue
			}
			srcs[d].Sections = append(srcs[d].Sections, docs.SectionSource{
				ID:   secID,
				Text: strings.Join(sentences, " "),
			})
			if g.rng.Float64() >= g.cfg.InconsistencyRate {
				continue
			}
			for _, mi := range g.rng.Perm(len(mains)) {
				conflict, ok := g.ConflictOf(mains[mi])
				if !ok {
					continue
				}
				pend = append(pend, pendingConflict{
					reqDoc:    docID,
					targetDoc: g.rng.Intn(g.cfg.Docs),
					req:       mains[mi],
					conflict:  conflict,
				})
				break
			}
		}
	}

	// Plant each conflict as an extra requirement section of its
	// target document.
	for i, pc := range pend {
		sentence, ok := g.renderActive(pc.conflict, false)
		if !ok {
			continue
		}
		srcs[pc.targetDoc].Sections = append(srcs[pc.targetDoc].Sections, docs.SectionSource{
			ID:   fmt.Sprintf("REQ-%03d-C%02d", pc.targetDoc+1, i+1),
			Text: sentence,
		})
	}

	ex := nlp.NewExtractor(g.lex)
	c := docs.NewCorpus()
	var skipped []string
	for _, src := range srcs {
		skipped = append(skipped, c.Ingest(src, ex)...)
	}

	// Resolve planted pairs to stored IDs: key by (triple, document) and
	// pop instances so duplicates pair up one-to-one.
	index := make(map[string][]triple.ID)
	key := func(t triple.Triple, doc string) string { return t.Key() + "\x02" + doc }
	c.Store.Each(func(id triple.ID, e triple.Entry) bool {
		k := key(e.Triple, e.Prov.Doc)
		index[k] = append(index[k], id)
		return true
	})
	pop := func(k string) (triple.ID, bool) {
		ids := index[k]
		if len(ids) == 0 {
			return 0, false
		}
		index[k] = ids[1:]
		return ids[0], true
	}
	var planted []Planted
	for _, pc := range pend {
		reqID, okR := pop(key(pc.req, pc.reqDoc))
		conID, okC := pop(key(pc.conflict, srcs[pc.targetDoc].ID))
		if okR && okC {
			planted = append(planted, Planted{Requirement: reqID, Conflict: conID})
		}
	}
	return &CorpusBundle{Corpus: c, Planted: planted, Skipped: skipped}
}

// planSection produces the sentences of one requirement section and the
// main triples they encode (phase-prefix triples excluded: conflicts
// are planted on the main assertions only).
func (g *Generator) planSection() (sentences []string, mains []triple.Triple) {
	for s := 0; s < g.cfg.SentencesPerSection; s++ {
		t := g.RandomTriple()
		roll := g.rng.Float64()
		var sentence string
		var ts []triple.Triple
		switch {
		case roll < g.cfg.PassiveRate:
			if txt, ok := g.renderPassive(t); ok {
				sentence, ts = txt, []triple.Triple{t}
			}
		case roll < g.cfg.PassiveRate+g.cfg.ConjunctionRate:
			t2 := g.tripleWithPredicate(t.Subject.Value, g.funLeaves[g.rng.Intn(len(g.funLeaves))])
			if txt, ok := g.renderConjunction(t, t2); ok {
				sentence, ts = txt, []triple.Triple{t, t2}
			}
		case roll < g.cfg.PassiveRate+g.cfg.ConjunctionRate+g.cfg.NegationRate:
			if txt, ok := g.renderActive(t, true); ok {
				sentence, ts = txt, []triple.Triple{t}
			}
		}
		if sentence == "" {
			txt, ok := g.renderActive(t, false)
			if !ok {
				continue
			}
			sentence, ts = txt, []triple.Triple{t}
		}
		if g.rng.Float64() < g.cfg.PhaseRate {
			sentence = renderWithPhase(g.PhaseTerm(), sentence)
		}
		sentences = append(sentences, sentence)
		mains = append(mains, ts...)
	}
	return sentences, mains
}
