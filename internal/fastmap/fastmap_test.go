package fastmap

import (
	"math"
	"math/rand"
	"testing"
)

// euclideanPoints builds n random points in dim dimensions; the ground
// distance is genuinely Euclidean, so FastMap should recover it well.
func euclideanPoints(r *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = r.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

func TestBuildRejectsNilDistance(t *testing.T) {
	if _, _, err := Build[int](nil, nil, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	dist := func(a, b int) float64 { return math.Abs(float64(a - b)) }
	m, coords, err := Build(nil, dist, Options{Dims: 4})
	if err != nil || len(coords) != 0 {
		t.Fatalf("empty build: %v, %d coords", err, len(coords))
	}
	if got := m.Map(42); len(got) != 4 {
		t.Fatalf("Map on empty mapper returned %d dims", len(got))
	}

	m, coords, err = Build([]int{7}, dist, Options{Dims: 4})
	if err != nil {
		t.Fatalf("single build: %v", err)
	}
	for _, c := range coords[0] {
		if c != 0 {
			t.Fatalf("single object should map to origin, got %v", coords[0])
		}
	}
	if got := m.Map(7); Euclidean(got, coords[0]) != 0 {
		t.Fatalf("Map(same single object) = %v, want %v", got, coords[0])
	}
}

func TestEmbeddingPreservesEuclideanDistances(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pts := euclideanPoints(r, 120, 4)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	_, coords, err := Build(pts, dist, Options{Dims: 4, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := Stress(pts, dist, coords, 2000, 2)
	if s > 0.12 {
		t.Fatalf("stress %f too high for a 4-dim Euclidean source in 4 dims", s)
	}
}

func TestEmbeddingContractsNonEuclidean(t *testing.T) {
	// With a non-Euclidean metric the embedding still must not blow up:
	// coordinates are finite and the stress is bounded.
	r := rand.New(rand.NewSource(9))
	objs := make([]string, 80)
	letters := []rune("abcdefg")
	for i := range objs {
		n := 3 + r.Intn(8)
		s := make([]rune, n)
		for j := range s {
			s[j] = letters[r.Intn(len(letters))]
		}
		objs[i] = string(s)
	}
	dist := func(a, b string) float64 {
		// crude edit-ish distance: |len diff| + per-position mismatch
		la, lb := len(a), len(b)
		if la > lb {
			a, b, la, lb = b, a, lb, la
		}
		d := float64(lb - la)
		for i := 0; i < la; i++ {
			if a[i] != b[i] {
				d++
			}
		}
		return d
	}
	_, coords, err := Build(objs, dist, Options{Dims: 6, Seed: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i, c := range coords {
		for _, x := range c {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("coords[%d] contains NaN/Inf: %v", i, c)
			}
		}
	}
	if s := Stress(objs, dist, coords, 2000, 4); s > 1 {
		t.Fatalf("stress %f > 1", s)
	}
}

func TestPivotProjectionsOnFirstAxis(t *testing.T) {
	// On the first axis, pivot A maps to 0 and pivot B to d(A,B): the
	// cosine-law projection fixes both endpoints.
	r := rand.New(rand.NewSource(17))
	pts := euclideanPoints(r, 60, 3)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	m, coords, err := Build(pts, dist, Options{Dims: 3, Seed: 5})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Recover pivot indices by matching coordinates.
	xA := m.Map(m.pivotA[0])
	xB := m.Map(m.pivotB[0])
	if math.Abs(xA[0]) > 1e-9 {
		t.Errorf("pivot A first coordinate = %f, want 0", xA[0])
	}
	if math.Abs(xB[0]-m.dAB[0]) > 1e-9 {
		t.Errorf("pivot B first coordinate = %f, want %f", xB[0], m.dAB[0])
	}
	_ = coords
}

func TestMapConsistentWithBuild(t *testing.T) {
	// Mapping a training object out-of-sample must land exactly on its
	// build-time coordinates (the recursion is identical).
	r := rand.New(rand.NewSource(23))
	pts := euclideanPoints(r, 50, 3)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	m, coords, err := Build(pts, dist, Options{Dims: 5, Seed: 6})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i, p := range pts {
		got := m.Map(p)
		if d := Euclidean(got, coords[i]); d > 1e-6 {
			t.Fatalf("object %d: Map differs from build coords by %g (%v vs %v)", i, d, got, coords[i])
		}
	}
}

func TestMapPreservesNeighborhoods(t *testing.T) {
	// For a query point, the nearest object in the original space
	// should rank among the nearest few in the embedded space.
	r := rand.New(rand.NewSource(31))
	pts := euclideanPoints(r, 200, 3)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	m, coords, err := Build(pts, dist, Options{Dims: 3, Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	hits := 0
	const trials = 50
	for q := 0; q < trials; q++ {
		query := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		trueNN, bestD := -1, math.Inf(1)
		for i, p := range pts {
			if d := dist(query, p); d < bestD {
				trueNN, bestD = i, d
			}
		}
		qc := m.Map(query)
		// rank of trueNN in embedded space
		dNN := Euclidean(qc, coords[trueNN])
		rank := 0
		for i := range pts {
			if Euclidean(qc, coords[i]) < dNN {
				rank++
			}
		}
		if rank < 5 {
			hits++
		}
	}
	if hits < trials*7/10 {
		t.Fatalf("true NN ranked in embedded top-5 only %d/%d times", hits, trials)
	}
}

func TestDegenerateAllEqualObjects(t *testing.T) {
	objs := []int{1, 1, 1, 1}
	dist := func(a, b int) float64 { return 0 }
	m, coords, err := Build(objs, dist, Options{Dims: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, c := range coords {
		for _, x := range c {
			if x != 0 {
				t.Fatalf("identical objects must map to origin, got %v", coords)
			}
		}
	}
	if got := m.Map(1); Euclidean(got, coords[0]) != 0 {
		t.Fatalf("Map of identical object = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	pts := euclideanPoints(r, 64, 3)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	_, c1, _ := Build(pts, dist, Options{Dims: 4, Seed: 9})
	_, c2, _ := Build(pts, dist, Options{Dims: 4, Seed: 9})
	for i := range c1 {
		for d := range c1[i] {
			if c1[i][d] != c2[i][d] {
				t.Fatalf("same seed produced different embeddings at [%d][%d]", i, d)
			}
		}
	}
}

func TestStressDecreasesWithDims(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := euclideanPoints(r, 150, 6)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 3, 6} {
		_, coords, err := Build(pts, dist, Options{Dims: k, Seed: 11})
		if err != nil {
			t.Fatalf("Build k=%d: %v", k, err)
		}
		s := Stress(pts, dist, coords, 3000, 12)
		if s > prev+0.05 { // allow small sampling noise
			t.Fatalf("stress increased when adding dims: k=%d s=%f prev=%f", k, s, prev)
		}
		prev = s
	}
}

func BenchmarkBuild1k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := euclideanPoints(r, 1000, 4)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(pts, dist, Options{Dims: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
