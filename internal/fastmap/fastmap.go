// Package fastmap implements the FastMap algorithm of Faloutsos & Lin
// (SIGMOD 1995), which SemTree uses to map triples — given only the
// semantic distance function of Eq. 1 — into a k-dimensional vector
// space indexable by a KD-tree (§III-A, feature iii).
//
// FastMap picks, per axis, two distant "pivot" objects via a linear-time
// heuristic and projects every object onto the line through them using
// the cosine law; subsequent axes work in the residual ("projected")
// distance, obtained by subtracting the coordinate differences already
// assigned. The Mapper retains the pivot objects and their coordinates,
// so out-of-sample objects (queries) can be mapped later with the same
// recursion.
package fastmap

import (
	"errors"
	"math"
	"math/rand"
)

// DistFunc is a non-negative, symmetric distance between two objects.
type DistFunc[T any] func(a, b T) float64

// Options configure Build.
type Options struct {
	// Dims is the target dimensionality k. Default 8.
	Dims int
	// PivotIterations is the number of passes of the choose-distant-
	// objects heuristic per axis. Default 5 (the paper's constant).
	PivotIterations int
	// Seed drives the initial pivot choice, making builds deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Dims <= 0 {
		o.Dims = 8
	}
	if o.PivotIterations <= 0 {
		o.PivotIterations = 5
	}
	return o
}

// Mapper embeds objects into the k-dimensional FastMap space. It is
// immutable after Build and safe for concurrent use.
type Mapper[T any] struct {
	dims    int
	dist    DistFunc[T]
	pivotA  []T         // per axis
	pivotB  []T         // per axis
	coordsA [][]float64 // full coordinates of pivotA per axis
	coordsB [][]float64 // full coordinates of pivotB per axis
	dAB     []float64   // residual pivot distance at each axis (not squared)
}

// Build runs FastMap over objs and returns the mapper plus the
// coordinates of every input object (row i ↔ objs[i]).
func Build[T any](objs []T, dist DistFunc[T], opts Options) (*Mapper[T], [][]float64, error) {
	if dist == nil {
		return nil, nil, errors.New("fastmap: nil distance function")
	}
	opts = opts.withDefaults()
	n := len(objs)
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = make([]float64, opts.Dims)
	}
	m := &Mapper[T]{
		dims:    opts.Dims,
		dist:    dist,
		pivotA:  make([]T, opts.Dims),
		pivotB:  make([]T, opts.Dims),
		coordsA: make([][]float64, opts.Dims),
		coordsB: make([][]float64, opts.Dims),
		dAB:     make([]float64, opts.Dims),
	}
	if n == 0 {
		// A mapper with no pivots maps everything to the origin.
		for ax := 0; ax < opts.Dims; ax++ {
			m.coordsA[ax] = make([]float64, opts.Dims)
			m.coordsB[ax] = make([]float64, opts.Dims)
		}
		return m, coords, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	// resid2 is the squared residual distance at axis ax between
	// objects i and j: base² minus the squared coordinate differences
	// on axes < ax, clamped at 0 (the semantic distance need not be
	// Euclidean).
	resid2 := func(ax, i, j int) float64 {
		d := dist(objs[i], objs[j])
		r := d * d
		for h := 0; h < ax; h++ {
			diff := coords[i][h] - coords[j][h]
			r -= diff * diff
		}
		if r < 0 {
			return 0
		}
		return r
	}

	for ax := 0; ax < opts.Dims; ax++ {
		// Choose-distant-objects heuristic.
		b := rng.Intn(n)
		a := b
		for it := 0; it < opts.PivotIterations; it++ {
			a = argmaxResid(resid2, ax, b, n)
			nb := argmaxResid(resid2, ax, a, n)
			if nb == b {
				break // converged
			}
			b = nb
		}
		dab2 := resid2(ax, a, b)
		m.pivotA[ax], m.pivotB[ax] = objs[a], objs[b]
		m.dAB[ax] = math.Sqrt(dab2)
		if dab2 == 0 {
			// All residual distances are zero: every remaining
			// coordinate is 0 for every object.
			m.coordsA[ax] = append([]float64(nil), coords[a]...)
			m.coordsB[ax] = append([]float64(nil), coords[b]...)
			continue
		}
		for i := 0; i < n; i++ {
			dai2 := resid2(ax, a, i)
			dbi2 := resid2(ax, b, i)
			coords[i][ax] = (dai2 + dab2 - dbi2) / (2 * m.dAB[ax])
		}
		m.coordsA[ax] = append([]float64(nil), coords[a]...)
		m.coordsB[ax] = append([]float64(nil), coords[b]...)
	}
	return m, coords, nil
}

func argmaxResid(resid2 func(ax, i, j int) float64, ax, from, n int) int {
	best, bestD := 0, -1.0
	for i := 0; i < n; i++ {
		if i == from {
			continue
		}
		if d := resid2(ax, from, i); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Dims returns the dimensionality of the embedding.
func (m *Mapper[T]) Dims() int { return m.dims }

// Map embeds an out-of-sample object using the stored pivots. The
// recursion mirrors Build: the residual distance between obj and a
// pivot at axis ax subtracts the squared coordinate differences
// assigned on earlier axes.
func (m *Mapper[T]) Map(obj T) []float64 {
	out := make([]float64, m.dims)
	residTo := func(ax int, pivot T, pivotCoords []float64) float64 {
		d := m.dist(obj, pivot)
		r := d * d
		for h := 0; h < ax; h++ {
			diff := out[h] - pivotCoords[h]
			r -= diff * diff
		}
		if r < 0 {
			return 0
		}
		return r
	}
	for ax := 0; ax < m.dims; ax++ {
		dab := m.dAB[ax]
		if dab == 0 {
			continue // axis collapsed during build
		}
		dai2 := residTo(ax, m.pivotA[ax], m.coordsA[ax])
		dbi2 := residTo(ax, m.pivotB[ax], m.coordsB[ax])
		out[ax] = (dai2 + dab*dab - dbi2) / (2 * dab)
	}
	return out
}

// MapAll embeds a batch of out-of-sample objects.
func (m *Mapper[T]) MapAll(objs []T) [][]float64 {
	out := make([][]float64, len(objs))
	for i, o := range objs {
		out[i] = m.Map(o)
	}
	return out
}

// Snapshot is the serializable state of a Mapper: the pivot objects,
// their full coordinates, and the per-axis pivot distances. Combined
// with the (non-serializable) distance function it reconstructs the
// exact embedding, so an index can be persisted and reloaded.
type Snapshot[T any] struct {
	Dims    int
	PivotA  []T
	PivotB  []T
	CoordsA [][]float64
	CoordsB [][]float64
	DAB     []float64
}

// Snapshot extracts the mapper's serializable state.
func (m *Mapper[T]) Snapshot() Snapshot[T] {
	return Snapshot[T]{
		Dims:    m.dims,
		PivotA:  append([]T(nil), m.pivotA...),
		PivotB:  append([]T(nil), m.pivotB...),
		CoordsA: append([][]float64(nil), m.coordsA...),
		CoordsB: append([][]float64(nil), m.coordsB...),
		DAB:     append([]float64(nil), m.dAB...),
	}
}

// FromSnapshot reconstructs a Mapper from a snapshot and the distance
// function it was built under. It validates the snapshot's internal
// consistency.
func FromSnapshot[T any](s Snapshot[T], dist DistFunc[T]) (*Mapper[T], error) {
	if dist == nil {
		return nil, errors.New("fastmap: nil distance function")
	}
	if s.Dims <= 0 {
		return nil, errors.New("fastmap: snapshot has non-positive dims")
	}
	if len(s.PivotA) != s.Dims || len(s.PivotB) != s.Dims ||
		len(s.CoordsA) != s.Dims || len(s.CoordsB) != s.Dims || len(s.DAB) != s.Dims {
		return nil, errors.New("fastmap: snapshot arrays disagree with dims")
	}
	for ax := 0; ax < s.Dims; ax++ {
		if s.DAB[ax] < 0 {
			return nil, errors.New("fastmap: negative pivot distance in snapshot")
		}
		if s.DAB[ax] > 0 && (len(s.CoordsA[ax]) != s.Dims || len(s.CoordsB[ax]) != s.Dims) {
			return nil, errors.New("fastmap: pivot coordinates disagree with dims")
		}
	}
	return &Mapper[T]{
		dims:    s.Dims,
		dist:    dist,
		pivotA:  s.PivotA,
		pivotB:  s.PivotB,
		coordsA: s.CoordsA,
		coordsB: s.CoordsB,
		dAB:     s.DAB,
	}, nil
}

// Euclidean returns the Euclidean distance between two coordinate
// vectors of equal length.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Stress estimates the normalized embedding stress
// sqrt(Σ(d̂−d)² / Σd²) over up to samplePairs random object pairs,
// where d is the original distance and d̂ the Euclidean distance of the
// images. Lower is better; 0 means a perfect isometry.
func Stress[T any](objs []T, dist DistFunc[T], coords [][]float64, samplePairs int, seed int64) float64 {
	n := len(objs)
	if n < 2 || samplePairs <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	num, den := 0.0, 0.0
	for s := 0; s < samplePairs; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		d := dist(objs[i], objs[j])
		dh := Euclidean(coords[i], coords[j])
		num += (dh - d) * (dh - d)
		den += d * d
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
