package fastmap

import (
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	pts := euclideanPoints(r, 80, 3)
	dist := func(a, b []float64) float64 { return Euclidean(a, b) }
	m, _, err := Build(pts, dist, Options{Dims: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(m.Snapshot(), dist)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	for q := 0; q < 40; q++ {
		query := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		a, b := m.Map(query), back.Map(query)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("restored mapper diverged at query %d dim %d: %v vs %v", q, d, a, b)
			}
		}
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	dist := func(a, b int) float64 { return 0 }
	cases := map[string]Snapshot[int]{
		"zero dims":      {Dims: 0},
		"short pivots":   {Dims: 3, PivotA: make([]int, 2), PivotB: make([]int, 3), CoordsA: make([][]float64, 3), CoordsB: make([][]float64, 3), DAB: make([]float64, 3)},
		"negative dAB":   {Dims: 1, PivotA: make([]int, 1), PivotB: make([]int, 1), CoordsA: [][]float64{{0}}, CoordsB: [][]float64{{0}}, DAB: []float64{-1}},
		"coords too few": {Dims: 2, PivotA: make([]int, 2), PivotB: make([]int, 2), CoordsA: [][]float64{{0}, {0}}, CoordsB: [][]float64{{0, 0}, {0, 0}}, DAB: []float64{1, 1}},
	}
	for name, s := range cases {
		if _, err := FromSnapshot(s, dist); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := FromSnapshot(Snapshot[int]{Dims: 1, PivotA: make([]int, 1), PivotB: make([]int, 1), CoordsA: [][]float64{{0}}, CoordsB: [][]float64{{0}}, DAB: []float64{0}}, nil); err == nil {
		t.Error("nil dist accepted")
	}
}
