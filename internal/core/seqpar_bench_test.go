package core

// Benchmarks for the two cross-partition k-nearest protocols. The
// sequential protocol minimizes total work (each hop carries the
// tightest bound); the probe-then-fan-out protocol trades extra
// examined candidates for overlapped message waves, which wins once
// per-hop latency or idle cores dominate. KNearestBatch therefore runs
// seq per query under its worker pool, while single KNearest fans out.

import (
	"context"
	"math/rand"
	"testing"

	"semtree/internal/kdtree"
)

func benchQueryTree(b *testing.B, m int) (*Tree, [][]float64) {
	return benchQueryTreeGuard(b, m, false)
}

// benchQueryTreeGuard is benchQueryTree with the pruning guard
// selectable: planeGuard pins the paper's splitting-plane bound, the
// default is the region (bounding-box) min-distance guard.
func benchQueryTreeGuard(b *testing.B, m int, planeGuard bool) (*Tree, [][]float64) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	pts := make([]kdtree.Point, 20000)
	for i := range pts {
		c := make([]float64, 8)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		pts[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	capacity := 0
	if m > 1 {
		capacity = (m - 1) * 16
	}
	tr, err := New(Config{Dim: 8, BucketSize: 16, PartitionCapacity: capacity,
		MaxPartitions: m, PlaneGuardOnly: planeGuard})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	if err := tr.InsertBatchAsync(pts, 256); err != nil {
		b.Fatal(err)
	}
	tr.Flush()
	qs := make([][]float64, 256)
	for i := range qs {
		c := make([]float64, 8)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		qs[i] = c
	}
	return tr, qs
}

func BenchmarkKNNProtocols(b *testing.B) {
	tr, qs := benchQueryTree(b, 5)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.knn(context.Background(), qs[i%len(qs)], 3, ProtocolSequential); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fanout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.knn(context.Background(), qs[i%len(qs)], 3, ProtocolFanOut); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKNNPlacement measures the geometry-aware placement kernel
// against the legacy round-robin scatter on a clustered workload:
// identical results, fewer partitions and messages per query under the
// box policy. Part of CI's bench-baseline regression gate.
func BenchmarkKNNPlacement(b *testing.B) {
	for _, mode := range []struct {
		name   string
		policy PlacementPolicy
	}{{"placed", PlacementBox}, {"rr", PlacementRoundRobin}} {
		b.Run(mode.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(3))
			pts := clusteredPoints(r, 20000, 8, 10)
			tr, err := New(Config{Dim: 8, BucketSize: 16, PartitionCapacity: 4 * 16,
				MaxPartitions: 5, Placement: mode.policy})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { tr.Close() })
			if err := tr.InsertBatchAsync(pts, 64); err != nil {
				b.Fatal(err)
			}
			tr.Flush()
			// Queries live inside the clusters (perturbed data points),
			// where a clustered layout keeps the fan-out local.
			qs := make([][]float64, 256)
			for i := range qs {
				base := pts[r.Intn(len(pts))].Coords
				q := make([]float64, len(base))
				for d := range q {
					q[d] = base[d] + r.NormFloat64()
				}
				qs[i] = q
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tr.knn(context.Background(), qs[i%len(qs)], 3, ProtocolFanOut); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNNRegionPrune measures the region (bounding-box)
// min-distance guard against the paper's splitting-plane bound on the
// same multi-partition workload: identical results, fewer nodes and
// messages per query. Part of CI's bench-baseline regression gate.
func BenchmarkKNNRegionPrune(b *testing.B) {
	for _, mode := range []struct {
		name       string
		planeGuard bool
	}{{"region", false}, {"plane", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tr, qs := benchQueryTreeGuard(b, 5, mode.planeGuard)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tr.knn(context.Background(), qs[i%len(qs)], 3, ProtocolFanOut); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
