//semtree:clocksealed — scheduler, quota, and cost-model logic reads time only through the injected clock seam

package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"semtree/internal/kdtree"
)

// Protocol selects the cross-partition k-NN execution strategy of a
// query. ProtocolAuto — the default — defers the choice to the
// scheduler's online cost model, per query: the sequential protocol
// when the workload is CPU-bound, the probe-then-fan-out when per-hop
// fabric latency dominates compute. The fixed values pin one strategy
// regardless of the estimates. All three return identical results —
// the protocols are equivalence-tested — so the choice is purely a
// latency/total-work trade (§V's cost model, decided online).
type Protocol int

const (
	// ProtocolAuto picks sequential vs fan-out per query from the cost
	// model's current estimates.
	ProtocolAuto Protocol = iota
	// ProtocolSequential forces the paper's sequential Rs-forwarding
	// protocol (§III-B.3): minimal total work, one serial hop per
	// cross-partition visit.
	ProtocolSequential
	// ProtocolFanOut forces the probe-then-fan-out protocol: overlapped
	// hops, at most three serial message waves per query.
	ProtocolFanOut
	// ProtocolRange is the border-node fan-out range protocol
	// (§III-B.4); range queries have exactly one strategy, so this
	// value exists for cost estimation, not for selection.
	ProtocolRange
)

// String returns the ExecStats.Protocol vocabulary name.
func (p Protocol) String() string {
	switch p {
	case ProtocolAuto:
		return "auto"
	case ProtocolFanOut:
		return ProtocolNameParallel
	case ProtocolRange:
		return ProtocolNameRange
	default:
		return ProtocolNameSequential
	}
}

// ErrAdmissionRejected is returned for a query the scheduler refused to
// run because the max-in-flight limit was saturated and the bounded
// admission queue was full. The caller should shed the query or retry
// with backoff; waiting longer would only grow an unbounded queue.
var ErrAdmissionRejected = errors.New("core: admission rejected: scheduler at capacity")

// ErrDeadlineBudget is returned for a query whose context deadline is
// provably insufficient: the cost model's estimate of the query's wall
// time already exceeds the remaining budget, so running it would only
// burn partition compute on an answer nobody will receive.
var ErrDeadlineBudget = errors.New("core: deadline budget below estimated query cost")

// SchedulerConfig configures one Scheduler over a Tree.
type SchedulerConfig struct {
	// Protocol is the cross-partition k-NN strategy; ProtocolAuto (the
	// zero value) lets the cost model decide per query.
	Protocol Protocol
	// MaxInFlight bounds the queries executing concurrently through
	// this scheduler, across all batches and goroutines using it.
	// 0 means unlimited.
	MaxInFlight int
	// QueueDepth bounds how many admissions may wait for an in-flight
	// slot before new arrivals are rejected with ErrAdmissionRejected.
	// 0 defaults to MaxInFlight; negative means no queue (reject as
	// soon as MaxInFlight is saturated). Ignored when MaxInFlight is 0.
	QueueDepth int
	// Admission enables the deadline-budget check: a query whose
	// context deadline leaves less time than the estimated query cost —
	// including the expected wait behind the queries already queued —
	// is rejected with ErrDeadlineBudget instead of executed.
	Admission bool
	// Quota, when non-nil, enforces a per-scheduler (i.e. per-tenant)
	// token-bucket cost quota: each admission charges the cost model's
	// estimate of the query against the bucket and the completed
	// query's observed ExecStats settle the difference. An exhausted
	// bucket rejects with ErrQuotaExhausted before any fabric message
	// is spent. See QuotaConfig and CostOf for the cost-unit scale.
	Quota *QuotaConfig
}

// Scheduler runs queries against a Tree under one admission policy:
// per-query protocol choice (sequential vs fan-out, from the shared
// cost model), a max-in-flight limit with a bounded admission queue,
// and an optional deadline-budget check. It is the admission-control
// layer of the RunBatch choke point — every query a scheduler batch
// dispatches passes admit() first — and is safe for concurrent use;
// the in-flight limit is enforced across everything issued through the
// same Scheduler. Rejections are typed (ErrAdmissionRejected,
// ErrDeadlineBudget) and attributed per query, so shed load is
// distinguishable from failed queries.
type Scheduler struct {
	t          *Tree
	cfg        SchedulerConfig
	queueDepth int64
	slots      chan struct{} // nil when MaxInFlight is unlimited
	quota      *quotaBucket  // nil when no quota is configured

	// clock is the injected time source for admission decisions —
	// time.Now in production, a fake in tests — shared with the quota
	// bucket so deadline-budget checks and refills advance together.
	clock func() time.Time

	queued         atomic.Int64 // currently waiting for a slot
	inFlight       atomic.Int64 // currently executing
	admitted       atomic.Int64
	rejectedLoad   atomic.Int64
	rejectedBudget atomic.Int64
	rejectedQuota  atomic.Int64

	// Cost metering: cumulative observed cost of every query this
	// scheduler executed (admitted and run, whether it succeeded or
	// not), drawn from the ExecStats stream. Per-scheduler, so a
	// Searcher-per-tenant facade gets per-tenant totals for free.
	meterDists atomic.Int64
	meterMsgs  atomic.Int64
	meterWall  atomic.Int64 // nanoseconds
}

// NewScheduler returns a scheduler over the tree. Schedulers share the
// tree's cost model — estimates learned through one benefit all — but
// enforce their own admission policy and keep their own counters, so a
// facade can run one per tenant or per traffic class.
func (t *Tree) NewScheduler(cfg SchedulerConfig) *Scheduler {
	s := &Scheduler{t: t, cfg: cfg, clock: time.Now}
	if cfg.Quota != nil {
		s.quota = newQuotaBucket(*cfg.Quota, s.clock)
	}
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
		switch {
		case cfg.QueueDepth == 0:
			s.queueDepth = int64(cfg.MaxInFlight)
		case cfg.QueueDepth > 0:
			s.queueDepth = int64(cfg.QueueDepth)
		}
	}
	return s
}

// SchedulerStats is a point-in-time snapshot of a scheduler: admission
// counters, the cost model's current estimates, and the protocol-choice
// histogram.
type SchedulerStats struct {
	// Admitted counts queries that passed admission and executed
	// (including ones that later failed or were cut off).
	Admitted int64
	// RejectedLoad counts ErrAdmissionRejected rejections.
	RejectedLoad int64
	// RejectedBudget counts ErrDeadlineBudget rejections.
	RejectedBudget int64
	// RejectedQuota counts ErrQuotaExhausted rejections.
	RejectedQuota int64
	// Queued is the number of queries currently waiting for an
	// in-flight slot; InFlight the number currently executing.
	Queued   int64
	InFlight int64
	// HopLatency and NodeCompute are the cost model's current unit
	// prices: estimated fabric transit per hop, and compute per
	// visited tree node.
	HopLatency  time.Duration
	NodeCompute time.Duration
	// EstSequentialWall and EstFanOutWall are the modeled per-query
	// wall times of the two k-NN protocols at the current estimates —
	// the comparison ProtocolAuto decides on.
	EstSequentialWall time.Duration
	EstFanOutWall     time.Duration
	// ObservedSequentialWall and ObservedFanOutWall are the EWMAs of
	// the wall times queries actually reported per protocol (zero
	// until that protocol has run). Divergence from the modeled walls
	// means the cost model's unit prices are off for this workload.
	ObservedSequentialWall time.Duration
	ObservedFanOutWall     time.Duration
	// Choices is the protocol-choice histogram of the tree's cost
	// model, keyed by executed protocol name ("sequential", "parallel")
	// with an "auto:" prefix for choices the model made (vs the caller
	// forcing the protocol). The histogram is shared across every
	// scheduler of the same tree.
	Choices map[string]int64
	// MeteredDistanceEvals, MeteredFabricMessages and MeteredWall are
	// the cumulative observed cost of every query this scheduler
	// executed — the ExecStats stream summed per scheduler, i.e. per
	// tenant when the facade runs a Searcher per tenant. Rejected
	// queries contribute nothing (they did no work).
	MeteredDistanceEvals  int64
	MeteredFabricMessages int64
	MeteredWall           time.Duration
	// MeteredCost is the metered totals priced on the cost-unit scale:
	// CostOf applied to the summed stats (CostOf is linear, so the sum
	// of per-query costs equals the cost of the sums).
	MeteredCost float64
	// QuotaCapacity and QuotaLevel describe the scheduler's token
	// bucket: the configured burst capacity and the cost units
	// currently available (after lazy refill). Both are zero when no
	// quota is configured — distinguish "no quota" from a configured
	// zero-capacity bucket via QuotaEnabled.
	QuotaEnabled  bool
	QuotaCapacity float64
	QuotaLevel    float64
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedulerStats {
	parts := s.t.PartitionCount()
	hop, cmp, seqWall, fanWall, choices := s.t.model.snapshot(parts)
	estSeq, estFan := s.t.model.estimates(parts)
	st := SchedulerStats{
		Admitted:               s.admitted.Load(),
		RejectedLoad:           s.rejectedLoad.Load(),
		RejectedBudget:         s.rejectedBudget.Load(),
		RejectedQuota:          s.rejectedQuota.Load(),
		Queued:                 s.queued.Load(),
		InFlight:               s.inFlight.Load(),
		HopLatency:             hop,
		NodeCompute:            cmp,
		EstSequentialWall:      estSeq,
		EstFanOutWall:          estFan,
		ObservedSequentialWall: seqWall,
		ObservedFanOutWall:     fanWall,
		Choices:                choices,
		MeteredDistanceEvals:   s.meterDists.Load(),
		MeteredFabricMessages:  s.meterMsgs.Load(),
		MeteredWall:            time.Duration(s.meterWall.Load()),
	}
	st.MeteredCost = CostOf(ExecStats{
		DistanceEvals:  st.MeteredDistanceEvals,
		FabricMessages: st.MeteredFabricMessages,
		Wall:           st.MeteredWall,
	})
	if s.quota != nil {
		st.QuotaEnabled = true
		st.QuotaLevel, st.QuotaCapacity = s.quota.snapshot()
	}
	return st
}

// resolve maps the configured protocol to the one a query would run
// under right now (ProtocolAuto asks the model).
func (s *Scheduler) resolve() Protocol {
	if s.cfg.Protocol == ProtocolAuto {
		return s.t.model.choose(s.t.PartitionCount())
	}
	return s.cfg.Protocol
}

// admit is the admission decision for one query about to run under
// protocol p. It returns a release closure and the quota charge on
// success, or a typed rejection. Order: the deadline-budget check first
// (rejecting there costs nothing and frees no slot), then the quota
// bucket (charged with the cost model's estimate; refunded if a later
// stage rejects), then the in-flight limit with its bounded queue. A
// context that dies while queued returns its error. Every rejection
// happens before the query touches the fabric — a rejected query
// spends zero messages.
func (s *Scheduler) admit(ctx context.Context, p Protocol) (release func(), charged float64, err error) {
	if s.cfg.Admission {
		if dl, ok := ctx.Deadline(); ok {
			if est := s.t.model.estimateWall(p, s.t.PartitionCount()); est > 0 {
				// Queue-aware budget: a saturated scheduler makes the
				// query wait behind the ones already queued, so the
				// expected queue wait (Queued × EstWall / MaxInFlight)
				// is charged against the deadline alongside the query's
				// own estimated wall.
				wait := time.Duration(0)
				if s.cfg.MaxInFlight > 0 {
					wait = time.Duration(s.queued.Load()) * est / time.Duration(s.cfg.MaxInFlight)
				}
				if dl.Sub(s.clock()) < est+wait {
					s.rejectedBudget.Add(1)
					return nil, 0, ErrDeadlineBudget
				}
			}
		}
	}
	if s.quota != nil {
		est := s.t.model.estimateCost(p)
		var ok bool
		if charged, ok = s.quota.take(est); !ok {
			s.rejectedQuota.Add(1)
			return nil, 0, ErrQuotaExhausted
		}
	}
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			// Saturated: join the bounded admission queue, or shed. A
			// query charged against the quota but shed here never ran,
			// so its charge is refunded.
			if s.queued.Add(1) > s.queueDepth {
				s.queued.Add(-1)
				s.rejectedLoad.Add(1)
				if s.quota != nil {
					s.quota.refund(charged)
				}
				return nil, 0, ErrAdmissionRejected
			}
			select {
			case s.slots <- struct{}{}:
				s.queued.Add(-1)
			case <-ctx.Done():
				s.queued.Add(-1)
				if s.quota != nil {
					s.quota.refund(charged)
				}
				return nil, 0, ctx.Err()
			}
		}
	}
	s.admitted.Add(1)
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		if s.slots != nil {
			<-s.slots
		}
	}, charged, nil
}

// complete settles one executed query: the observed ExecStats are
// metered into the scheduler's cumulative totals and, under a quota,
// reconciled against the admission charge. Runs for every admitted
// query — failed and cut-off queries did their work too.
func (s *Scheduler) complete(charged float64, st ExecStats) {
	s.meterDists.Add(st.DistanceEvals)
	s.meterMsgs.Add(st.FabricMessages)
	s.meterWall.Add(int64(st.Wall))
	if s.quota != nil {
		s.quota.reconcile(charged, CostOf(st))
	}
}

// KNearest answers one k-nearest query through the scheduler: protocol
// choice, admission, execution, stats.
func (s *Scheduler) KNearest(ctx context.Context, q []float64, k int) ([]kdtree.Neighbor, ExecStats, error) {
	r := s.knnOne(ctx, q, k)
	return r.Neighbors, r.Stats, r.Err
}

// RangeSearch answers one range query through the scheduler.
func (s *Scheduler) RangeSearch(ctx context.Context, q []float64, d float64) ([]kdtree.Neighbor, ExecStats, error) {
	r := s.rangeOne(ctx, q, d)
	return r.Neighbors, r.Stats, r.Err
}

// KNearestBatch answers one k-nearest query per element of qs on a
// bounded worker pool, with every dispatched query passing admission —
// this is the RunBatch choke point with the admission controller
// installed. results[i] answers qs[i]; rejections and failures are
// attributed per query, and entries never dispatched because ctx
// expired carry the context's error.
func (s *Scheduler) KNearestBatch(ctx context.Context, qs [][]float64, k, workers int) []QueryResult {
	out := make([]QueryResult, len(qs))
	_ = RunBatch(ctx, len(qs), workers, func(i int) error {
		out[i] = s.knnOne(ctx, qs[i], k)
		return out[i].Err
	})
	markUndispatched(ctx, out)
	return out
}

// RangeBatch is KNearestBatch for range queries.
func (s *Scheduler) RangeBatch(ctx context.Context, qs [][]float64, d float64, workers int) []QueryResult {
	out := make([]QueryResult, len(qs))
	_ = RunBatch(ctx, len(qs), workers, func(i int) error {
		out[i] = s.rangeOne(ctx, qs[i], d)
		return out[i].Err
	})
	markUndispatched(ctx, out)
	return out
}

// knnOne runs one admission-controlled k-nearest query. The protocol is
// resolved exactly once, before admission, so the budget check prices
// the strategy that actually runs — a concurrent estimate update cannot
// split estimate and execution across strategies, and the model's
// choose() runs once per query, not twice.
func (s *Scheduler) knnOne(ctx context.Context, q []float64, k int) QueryResult {
	p := s.resolve()
	release, charged, err := s.admit(ctx, p)
	if err != nil {
		return QueryResult{Err: err}
	}
	defer release()
	var r QueryResult
	r.Neighbors, r.Stats, r.Err = s.t.knnResolved(ctx, q, k, p, s.cfg.Protocol == ProtocolAuto)
	s.complete(charged, r.Stats)
	return r
}

// rangeOne runs one admission-controlled range query.
func (s *Scheduler) rangeOne(ctx context.Context, q []float64, d float64) QueryResult {
	release, charged, err := s.admit(ctx, ProtocolRange)
	if err != nil {
		return QueryResult{Err: err}
	}
	defer release()
	var r QueryResult
	r.Neighbors, r.Stats, r.Err = s.t.RangeSearchStats(ctx, q, d)
	s.complete(charged, r.Stats)
	return r
}

// SetQuotaRate retargets the scheduler's token bucket at runtime:
// tokens already earned accrue at the old rate first, then the bucket
// refills at the new rate with the new burst capacity (the level is
// clamped into it). It reports false — and changes nothing — when the
// scheduler was built without a quota; a lease cannot conjure a bucket
// that admission never consults. This is the seam the serving tier's
// distributed-quota allocator drives: a tenant's global refill is
// split into per-front-end lease shares, each applied to that
// front-end's scheduler here.
func (s *Scheduler) SetQuotaRate(capacity, refillPerSec float64) bool {
	if s.quota == nil {
		return false
	}
	s.quota.setRate(capacity, refillPerSec)
	return true
}
