package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// Tests for the background repacker: a zero budget moves nothing, a
// real pass migrates worst-placed leaves without changing any query
// result, the region metadata stays exact throughout (the PR 5
// invariant checks), and the whole protocol survives concurrent
// inserts and queries under the race detector.

func TestRepackZeroBudget(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	pts := clusteredPoints(r, 1500, 6, 4)
	tr := mustTree(t, Config{
		Dim: 6, BucketSize: 8,
		PartitionCapacity: 100, MaxPartitions: 5,
		Placement: PlacementRoundRobin,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	before, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, -3} {
		st, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: budget})
		if err != nil {
			t.Fatal(err)
		}
		if st != (RepackStats{}) {
			t.Fatalf("budget %d: non-zero stats %+v", budget, st)
		}
	}
	after, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Points != after.Points || before.Nodes != after.Nodes {
		t.Fatalf("zero-budget repack changed the tree: %+v -> %+v", before, after)
	}
}

// TestRepackMovesAndKeepsBoxesExact: a round-robin-built tree (the
// worst-placed layout) must yield migrations, keep every box exact,
// preserve the total point count, and return byte-identical query
// results before and after the pass.
func TestRepackMovesAndKeepsBoxesExact(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	pts := clusteredPoints(r, 2500, 8, 5)
	tr := mustTree(t, Config{
		Dim: 8, BucketSize: 8,
		PartitionCapacity: 128, MaxPartitions: 5,
		Placement: PlacementRoundRobin,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 25)
	for i := range queries {
		queries[i] = clusteredPoints(r, 1, 8, 5)[0].Coords
	}
	var before [][]kdtree.Neighbor
	for _, q := range queries {
		ns, err := tr.KNearest(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, ns)
	}

	st, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.Moved == 0 {
		t.Fatalf("repack moved nothing on a round-robin layout: %+v", st)
	}
	if st.MovedPoints <= 0 {
		t.Fatalf("moved %d leaves but %d points: %+v", st.Moved, st.MovedPoints, st)
	}

	checkPartitionBoxes(t, tr)
	stats, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != len(pts) {
		t.Fatalf("points after repack = %d, want %d", stats.Points, len(pts))
	}
	for i, q := range queries {
		after, err := tr.KNearest(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(before[i]) {
			t.Fatalf("query %d: len %d != %d after repack", i, len(after), len(before[i]))
		}
		for j := range after {
			if !sameNeighbor(after[j], before[i][j]) {
				t.Fatalf("query %d item %d changed after repack: (%d,%v) != (%d,%v)", i, j,
					after[j].Point.ID, after[j].Dist, before[i][j].Point.ID, before[i][j].Dist)
			}
		}
	}

	// A second pass over the improved layout must still be consistent
	// (and typically finds little left to move).
	if _, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 16}); err != nil {
		t.Fatal(err)
	}
	checkPartitionBoxes(t, tr)
}

// TestRepackConcurrentInsertQuery runs inserts, queries and repack
// passes concurrently — the migration protocol's whole point — then
// quiesces and asserts box exactness and agreement with the
// brute-force oracle over everything inserted.
func TestRepackConcurrentInsertQuery(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	const dim, clusters = 6, 4
	base := clusteredPoints(r, 1200, dim, clusters)
	extra := clusteredPoints(r, 800, dim, clusters)
	for i := range extra {
		extra[i].ID = uint64(len(base) + i)
	}
	tr := mustTree(t, Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 80, MaxPartitions: 5,
		Placement: PlacementRoundRobin, // leave work for the repacker
	})
	if err := tr.InsertAll(base, 1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	// Inserters: two workers splitting the extra points.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(extra); i += 2 {
				if err := tr.Insert(extra[i]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Queriers: results must stay well-formed throughout (the exact
	// oracle check happens after quiescence).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				q := clusteredPoints(qr, 1, dim, clusters)[0].Coords
				ns, err := tr.KNearest(context.Background(), q, 5)
				if err != nil {
					errc <- err
					return
				}
				for j := 1; j < len(ns); j++ {
					if ns[j].Dist < ns[j-1].Dist {
						errc <- errOutOfOrder
						return
					}
				}
			}
		}(int64(61 + w))
	}
	// Repacker: small budgets, many passes, racing everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 3}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	tr.Flush()
	checkPartitionBoxes(t, tr)
	all := append(append([]kdtree.Point(nil), base...), extra...)
	stats, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != len(all) {
		t.Fatalf("points after concurrent repack = %d, want %d", stats.Points, len(all))
	}
	for trial := 0; trial < 15; trial++ {
		q := clusteredPoints(r, 1, dim, clusters)[0].Coords
		got, err := tr.KNearest(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(all, q, 5); !sameIDSets(got, want) {
			t.Fatalf("trial %d: disagrees with oracle after concurrent repack", trial)
		}
	}
}

// TestRepackReaches pins the planner's acyclicity primitive: a move
// src→dest is refused exactly when dest already reaches src.
func TestRepackReaches(t *testing.T) {
	adj := map[cluster.NodeID][]cluster.NodeID{
		0: {1, 2},
		1: {3},
		2: {3},
	}
	if !reaches(adj, 0, 3) {
		t.Fatal("0 must reach 3 via either branch")
	}
	if reaches(adj, 3, 0) {
		t.Fatal("3 must not reach 0")
	}
	if !reaches(adj, 2, 2) {
		t.Fatal("a node reaches itself")
	}
	// The deadlock shape the check exists for: an edge 3→0 would close
	// a cycle because 0 reaches 3; an edge 1→2 is fine.
	if !reaches(adj, 0, 3) || reaches(adj, 2, 1) {
		t.Fatal("cycle test disagrees")
	}
}

// TestRepackKeepsPartitionGraphAcyclic: after repeated repack passes
// over a tree with many cross-partition edges, the partition graph
// must still be a DAG — a cycle is the lock-order deadlock the planner
// exists to prevent.
func TestRepackKeepsPartitionGraphAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	pts := clusteredPoints(r, 2500, 6, 5)
	tr := mustTree(t, Config{
		Dim: 6, BucketSize: 8,
		PartitionCapacity: 100, MaxPartitions: 6,
		Placement: PlacementRoundRobin,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 4; pass++ {
		if _, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 8}); err != nil {
			t.Fatal(err)
		}
		adj := make(map[cluster.NodeID][]cluster.NodeID)
		var ids []cluster.NodeID
		tr.mu.RLock()
		parts := append([]*partition(nil), tr.parts...)
		tr.mu.RUnlock()
		for _, p := range parts {
			resp, err := tr.call(cluster.ClientID, p.id, repackScanReq{})
			if err != nil {
				t.Fatal(err)
			}
			adj[p.id] = resp.(repackScanResp).Out
			ids = append(ids, p.id)
		}
		for _, from := range ids {
			for _, via := range adj[from] {
				if reaches(adj, via, from) {
					t.Fatalf("pass %d: edge %d->%d sits on a cycle", pass, from, via)
				}
			}
		}
	}
}

// errOutOfOrder reports a mid-flight query whose neighbors came back
// unsorted — impossible unless a migration corrupted a traversal.
var errOutOfOrder = &orderError{}

type orderError struct{}

func (*orderError) Error() string { return "core: k-NN result out of order during repack" }
