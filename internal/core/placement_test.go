package core

import (
	"context"
	"math/rand"
	"testing"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// Tests for the geometry-aware placement kernel: the greedy assignment
// must spread over empty targets first and cluster after, be
// deterministic, and — on clustered workloads — produce a layout whose
// queries touch no more (and typically fewer) partitions than the
// round-robin baseline while returning byte-identical results.

// clusteredPoints generates n points in `clusters` Gaussian blobs with
// centers uniform in [0, 100)^dim — the workload where placement
// matters: geometrically close buckets exist to be co-located.
func clusteredPoints(r *rand.Rand, n, dim, clusters int) []kdtree.Point {
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		centers[i] = c
	}
	pts := make([]kdtree.Point, n)
	for i := range pts {
		center := centers[i%clusters]
		c := make([]float64, dim)
		for d := range c {
			c[d] = center[d] + r.NormFloat64()*2
		}
		pts[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	return pts
}

func TestPlaceSubtreesSpreadsThenClusters(t *testing.T) {
	// Two tight pairs of boxes far apart; two empty targets. The kernel
	// must anchor one pair member per target (spread), then join each
	// remaining box with its geometric partner (cluster).
	mkBox := func(at float64) placeBox {
		return placeBox{lo: []float64{at, at}, hi: []float64{at + 1, at + 1}, points: 8}
	}
	subs := []placeBox{mkBox(0), mkBox(90), mkBox(2), mkBox(92)}
	targets := []placeTarget{{id: 1}, {id: 2}}
	assign := placeSubtrees(subs, targets, nil)
	if assign[0] != assign[2] || assign[1] != assign[3] {
		t.Fatalf("close boxes split across targets: %v", assign)
	}
	if assign[0] == assign[1] {
		t.Fatalf("far boxes piled on one target: %v", assign)
	}
}

func TestPlaceSubtreesDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var subs []placeBox
	for i := 0; i < 20; i++ {
		lo := []float64{r.Float64() * 100, r.Float64() * 100}
		subs = append(subs, placeBox{
			lo: lo, hi: []float64{lo[0] + r.Float64()*5, lo[1] + r.Float64()*5},
			points: 1 + r.Intn(16),
		})
	}
	targets := []placeTarget{{id: 1}, {id: 2}, {id: 3}}
	first := placeSubtrees(subs, targets, nil)
	for trial := 0; trial < 5; trial++ {
		if got := placeSubtrees(subs, targets, nil); len(got) != len(first) {
			t.Fatal("assignment length changed")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d: assignment differs at %d: %d != %d", trial, i, got[i], first[i])
				}
			}
		}
	}
}

func TestPlaceSubtreesHopPreference(t *testing.T) {
	// A geometric near-tie must resolve toward the cheaper destination.
	sub := placeBox{lo: []float64{50, 50}, hi: []float64{51, 51}, points: 8}
	targets := []placeTarget{
		{id: 1, lo: []float64{0, 0}, hi: []float64{40, 40}, points: 10},
		{id: 2, lo: []float64{60, 60}, hi: []float64{100, 100}, points: 10},
	}
	hop := func(id cluster.NodeID) float64 {
		if id == 1 {
			return 5e6 // 5ms to target 1
		}
		return 0
	}
	scores := placeScores(sub, targets, hop)
	if scores[1] >= scores[0] {
		t.Fatalf("cheap destination not preferred: scores %v", scores)
	}
}

// placementPair builds two trees over the same clustered points and
// topology, differing only in Config.Placement.
func placementPair(t *testing.T, pts []kdtree.Point, dim int) (placed, rr *Tree) {
	t.Helper()
	mk := func(policy PlacementPolicy) *Tree {
		tr := mustTree(t, Config{
			Dim: dim, BucketSize: 8,
			PartitionCapacity: 128, MaxPartitions: 5,
			Placement: policy,
		})
		if err := tr.InsertAll(pts, 1); err != nil {
			t.Fatal(err)
		}
		if got := tr.PartitionCount(); got < 3 {
			t.Fatalf("partitions = %d, want >= 3 for a meaningful layout", got)
		}
		return tr
	}
	return mk(PlacementBox), mk(PlacementRoundRobin)
}

// TestPlacementIdenticalResults: the placement policy must not change
// any query result — same points, same order, same distance bits —
// while the placed layout's queries touch no more partitions in total
// than round-robin's.
func TestPlacementIdenticalResults(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	pts := clusteredPoints(r, 3000, 8, 6)
	placed, rr := placementPair(t, pts, 8)
	var placedParts, rrParts int64
	for trial := 0; trial < 40; trial++ {
		q := clusteredPoints(r, 1, 8, 6)[0].Coords
		for _, k := range []int{1, 3, 10} {
			want, wantSt, err := rr.knn(context.Background(), q, k, ProtocolFanOut)
			if err != nil {
				t.Fatal(err)
			}
			got, gotSt, err := placed.knn(context.Background(), q, k, ProtocolFanOut)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d != %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if !sameNeighbor(got[i], want[i]) {
					t.Fatalf("trial %d k=%d item %d: (%d,%v) != (%d,%v)", trial, k, i,
						got[i].Point.ID, got[i].Dist, want[i].Point.ID, want[i].Dist)
				}
			}
			placedParts += int64(gotSt.Partitions)
			rrParts += int64(wantSt.Partitions)
		}
	}
	if placedParts > rrParts {
		t.Fatalf("placed layout touched more partitions than round-robin: %d > %d", placedParts, rrParts)
	}
	checkPartitionBoxes(t, placed)
	checkPartitionBoxes(t, rr)
}

// TestRebalancePlacementExact: a rebalance under the box policy must
// keep boxes exact and results correct (the frontier install goes
// through the same kernel).
func TestRebalancePlacementExact(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	pts := clusteredPoints(r, 2000, 6, 4)
	tr := mustTree(t, Config{
		Dim: 6, BucketSize: 8,
		PartitionCapacity: 100, MaxPartitions: 5,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	checkPartitionBoxes(t, tr)
	for trial := 0; trial < 20; trial++ {
		q := clusteredPoints(r, 1, 6, 4)[0].Coords
		got, err := tr.KNearest(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, q, 5); !sameIDSets(got, want) {
			t.Fatalf("trial %d: rebalanced tree disagrees with oracle", trial)
		}
	}
}
