package core

// Tests for the concurrent query engine: the parallel k-NN fan-out must
// be indistinguishable from the paper's sequential Rs-forwarding
// protocol, and the batched surfaces must agree with looped single
// calls.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// sameNeighbor compares result entries exactly (Point.Coords is a
// slice, so Neighbor is not ==-comparable).
func sameNeighbor(a, b kdtree.Neighbor) bool {
	return a.Point.ID == b.Point.ID && a.Dist == b.Dist
}

// multiPartitionTree builds a tree guaranteed to spread data across
// several partitions, so k-NN traversals cross partition boundaries.
func multiPartitionTree(t *testing.T, r *rand.Rand, n, dim int) (*Tree, []kdtree.Point) {
	t.Helper()
	pts := randomPoints(r, n, dim)
	tr := mustTree(t, Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.PartitionCount(); got < 4 {
		t.Fatalf("partitions = %d, want >= 4 for a meaningful fan-out", got)
	}
	return tr, pts
}

// TestKNNParallelMatchesSequential: the parallel fan-out must return
// byte-identical results — same points, same order, same distance
// bits — as the sequential protocol, across ks and queries.
func TestKNNParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr, pts := multiPartitionTree(t, r, 3000, 4)
	for trial := 0; trial < 60; trial++ {
		q := randomPoints(r, 1, 4)[0].Coords
		for _, k := range []int{1, 3, 10, 40} {
			seq, _, err := tr.knn(context.Background(), q, k, ProtocolSequential)
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := tr.knn(context.Background(), q, k, ProtocolFanOut)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(par) {
				t.Fatalf("trial %d k=%d: len seq=%d par=%d", trial, k, len(seq), len(par))
			}
			for i := range seq {
				if seq[i].Point.ID != par[i].Point.ID || seq[i].Dist != par[i].Dist {
					t.Fatalf("trial %d k=%d item %d: seq=(%d,%v) par=(%d,%v)",
						trial, k, i, seq[i].Point.ID, seq[i].Dist, par[i].Point.ID, par[i].Dist)
				}
			}
		}
	}
	// Sanity: the parallel path matches the brute-force oracle too.
	q := randomPoints(r, 1, 4)[0].Coords
	got, err := tr.KNearest(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteKNN(pts, q, 5); !sameIDSets(got, want) {
		t.Fatalf("parallel kNN disagrees with oracle")
	}
}

// TestKNearestBatchMatchesLoop: the batched surface must agree with a
// loop of single calls, for every worker-pool width.
func TestKNearestBatchMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tr, _ := multiPartitionTree(t, r, 2000, 3)
	qs := make([][]float64, 32)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	want := make([][]kdtree.Neighbor, len(qs))
	for i, q := range qs {
		ns, err := tr.KNearest(context.Background(), q, 4)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ns
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := tr.KNearestBatch(context.Background(), qs, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: len %d != %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if !sameNeighbor(got[i][j], want[i][j]) {
					t.Fatalf("workers=%d query %d item %d: %+v != %+v",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestRangeBatchMatchesLoop: ditto for range queries, which also pins
// the single-sort ordering contract (ascending distance, ID ties).
func TestRangeBatchMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tr, pts := multiPartitionTree(t, r, 2000, 3)
	qs := make([][]float64, 16)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	const d = 25.0
	got, err := tr.RangeBatch(context.Background(), qs, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := tr.RangeSearch(context.Background(), q, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: len %d != %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if !sameNeighbor(got[i][j], want[j]) {
				t.Fatalf("query %d item %d differs", i, j)
			}
			if j > 0 && !neighborLess(want[j-1], want[j]) && !sameNeighbor(want[j-1], want[j]) {
				t.Fatalf("query %d: result not in (Dist, ID) order at %d", i, j)
			}
		}
		if bf := bruteRange(pts, q, d); !sameIDSets(got[i], bf) {
			t.Fatalf("query %d: range disagrees with oracle", i)
		}
	}
}

// TestBatchEmptyAndErrors: degenerate batch inputs and the
// first-error contract.
func TestBatchEmptyAndErrors(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2})
	if out, err := tr.KNearestBatch(context.Background(), nil, 3, 4); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	// A query with the wrong dimensionality errors without poisoning
	// the rest of the batch.
	if err := tr.Insert(kdtree.Point{Coords: []float64{1, 2}, ID: 1}); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{1, 2}, {3}, {4, 5}}
	out, err := tr.KNearestBatch(context.Background(), qs, 1, 2)
	if err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	if len(out[0]) != 1 || out[1] != nil || len(out[2]) != 1 {
		t.Fatalf("batch results around the error wrong: %v", out)
	}
}

// TestKNNParallelSurvivesConcurrentInserts: batched queries racing
// inserts must neither crash nor corrupt results (run with -race).
func TestKNNParallelSurvivesConcurrentInserts(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9,
	})
	seedPts := randomPoints(r, 500, 3)
	if err := tr.InsertAll(seedPts, 1); err != nil {
		t.Fatal(err)
	}
	extra := randomPoints(r, 500, 3)
	for i := range extra {
		extra[i].ID += 500
	}
	qs := make([][]float64, 64)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range extra {
			if err := tr.Insert(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 8; round++ {
		res, err := tr.KNearestBatch(context.Background(), qs, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, ns := range res {
			if len(ns) != 3 {
				t.Fatalf("round %d query %d: %d results", round, i, len(ns))
			}
		}
	}
	wg.Wait()
}

// TestKNNParallelPropagatesFabricErrors: on a lossy fabric, the
// parallel fan-out must either answer exactly (retries absorbed the
// failures) or surface an error — never return a silent partial set.
func TestKNNParallelPropagatesFabricErrors(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	pts := randomPoints(r, 1000, 3)
	fabric := cluster.NewInProc(cluster.InProcOptions{FailureRate: 0.05, Seed: 1})
	defer fabric.Close()
	tr, err := New(Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9,
		Fabric: fabric, RetryAttempts: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randomPoints(r, 1, 3)[0].Coords
		got, err := tr.KNearest(context.Background(), q, 5)
		if err != nil {
			continue // surfaced, not swallowed: acceptable on a lossy fabric
		}
		if want := bruteKNN(pts, q, 5); !sameIDSets(got, want) {
			t.Fatalf("trial %d: lossy fabric produced a silent partial answer", trial)
		}
	}
}

// TestKNNEquivalenceOnTies stresses the tie handling the random-float
// equivalence test cannot reach: integer grid coordinates put many
// points at exactly equal distances and exactly on splitting planes,
// where an over-eager prune (skip at guard == worst) would let the two
// protocols keep different tied winners.
func TestKNNEquivalenceOnTies(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	pts := make([]kdtree.Point, 1500)
	for i := range pts {
		pts[i] = kdtree.Point{
			Coords: []float64{float64(r.Intn(6)), float64(r.Intn(6)), float64(r.Intn(6))},
			ID:     uint64(i),
		}
	}
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := []float64{float64(r.Intn(6)), float64(r.Intn(6)), float64(r.Intn(6))}
		for _, k := range []int{1, 3, 8} {
			seq, _, err := tr.knn(context.Background(), q, k, ProtocolSequential)
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := tr.knn(context.Background(), q, k, ProtocolFanOut)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(pts, q, k)
			if len(seq) != len(par) || len(seq) != len(want) {
				t.Fatalf("trial %d k=%d: lens seq=%d par=%d brute=%d",
					trial, k, len(seq), len(par), len(want))
			}
			for i := range seq {
				if seq[i].Point.ID != par[i].Point.ID || seq[i].Dist != par[i].Dist {
					t.Fatalf("trial %d k=%d item %d: seq=(%d,%v) par=(%d,%v)",
						trial, k, i, seq[i].Point.ID, seq[i].Dist, par[i].Point.ID, par[i].Dist)
				}
				if seq[i].Point.ID != want[i].Point.ID {
					t.Fatalf("trial %d k=%d item %d: tie-break disagrees with oracle: got %d want %d",
						trial, k, i, seq[i].Point.ID, want[i].Point.ID)
				}
			}
		}
	}
}

// --- context-first API: cancellation, deadlines, execution stats ---

// waitGoroutines polls until the goroutine count settles back to at
// most base (with slack for runtime background goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestKNNCancelledBeforeStart: an already-cancelled context must return
// context.Canceled without sending a single fabric message.
func TestKNNCancelledBeforeStart(t *testing.T) {
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	defer fabric.Close()
	r := rand.New(rand.NewSource(31))
	tr := mustTree(t, Config{Dim: 3, BucketSize: 8, Fabric: fabric})
	if err := tr.InsertAll(randomPoints(r, 200, 3), 1); err != nil {
		t.Fatal(err)
	}
	before := fabric.Stats().Messages
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []Protocol{ProtocolSequential, ProtocolFanOut, ProtocolAuto} {
		if _, _, err := tr.knn(ctx, []float64{1, 2, 3}, 5, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("protocol=%v: err = %v, want context.Canceled", p, err)
		}
	}
	if _, err := tr.RangeSearch(ctx, []float64{1, 2, 3}, 10); !errors.Is(err, context.Canceled) {
		t.Fatal("range did not observe the dead context")
	}
	if after := fabric.Stats().Messages; after != before {
		t.Fatalf("dead-context queries still sent %d messages", after-before)
	}
}

// TestKNNDeadlineAbortsFanOut: on a fabric whose per-hop latency far
// exceeds the query deadline, a multi-partition fan-out must return
// promptly with the deadline error — before any slow partition could
// have replied (one hop costs 300ms, so answering at all within the
// asserted bound proves the outstanding replies were abandoned) — and
// must not leak its fan-out goroutines.
func TestKNNDeadlineAbortsFanOut(t *testing.T) {
	const hop = 300 * time.Millisecond
	r := rand.New(rand.NewSource(37))
	pts := randomPoints(r, 3000, 4)
	// Build over a fast fabric, then degrade the network so only the
	// query pays the hop latency.
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	defer fabric.Close()
	tr := mustTree(t, Config{
		Dim: 4, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9, Fabric: fabric,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if tr.PartitionCount() < 4 {
		t.Fatalf("partitions = %d, want a multi-partition fan-out", tr.PartitionCount())
	}
	fabric.SetLatency(hop)
	base := runtime.NumGoroutine() + 4
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.KNearest(ctx, randomPoints(r, 1, 4)[0].Coords, 10)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Generous wall-clock bound: well under one 300ms hop, so the
	// query cannot have waited out even a single slow partition reply.
	if elapsed >= hop {
		t.Fatalf("expired query took %v, want < one %v hop", elapsed, hop)
	}
	waitGoroutines(t, base)
}

// TestRunBatchStopsOnCancel: once the context is done the pool must
// stop dispatching; items already dispatched finish.
func TestRunBatchStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := RunBatch(ctx, 1000, 4, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool dispatched the whole batch (%d) despite cancellation", n)
	}
	// Batch surfaces attribute the context error to undispatched
	// entries and keep dispatched answers.
	tr := mustTree(t, Config{Dim: 2})
	if err := tr.Insert(kdtree.Point{Coords: []float64{1, 2}, ID: 1}); err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 64)
	for i := range qs {
		qs[i] = []float64{1, 2}
	}
	res := tr.KNearestBatchStats(ctx, qs, 1, 4) // ctx already cancelled
	for i, qr := range res {
		if !errors.Is(qr.Err, context.Canceled) {
			t.Fatalf("entry %d: err = %v, want context.Canceled", i, qr.Err)
		}
	}
}

// TestExecStatsPopulated: with a background context the redesigned API
// answers exactly as before and reports the work done — fabric
// messages, nodes visited, partitions — for both protocols and ranges.
func TestExecStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	tr, pts := multiPartitionTree(t, r, 3000, 4)
	q := randomPoints(r, 1, 4)[0].Coords

	ns, st, err := tr.KNearestStats(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteKNN(pts, q, 5); !sameIDSets(ns, want) {
		t.Fatal("stats variant disagrees with oracle")
	}
	if st.Protocol != ProtocolNameParallel && st.Protocol != ProtocolNameSequential {
		// ProtocolAuto stamps whichever protocol the cost model chose;
		// on an in-process fabric that is normally the sequential one.
		t.Fatalf("protocol = %q", st.Protocol)
	}
	if st.NodesVisited <= 0 || st.BucketsScanned <= 0 || st.DistanceEvals <= 0 {
		t.Fatalf("traversal counters empty: %+v", st)
	}
	if st.FabricMessages < 2 || st.Partitions < 2 {
		t.Fatalf("cross-partition query reported %d messages over %d partitions", st.FabricMessages, st.Partitions)
	}
	if st.Wall <= 0 {
		t.Fatalf("wall time not measured: %+v", st)
	}
	// The message counter must agree with the fabric's own accounting.
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	defer fabric.Close()
	tr2 := mustTree(t, Config{
		Dim: 4, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9, Fabric: fabric,
	})
	if err := tr2.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	for _, protocol := range []Protocol{ProtocolFanOut, ProtocolSequential} {
		before := fabric.Stats().Messages
		_, st, err := tr2.knn(context.Background(), q, 5, protocol)
		if err != nil {
			t.Fatal(err)
		}
		if got := fabric.Stats().Messages - before; got != st.FabricMessages {
			t.Fatalf("protocol=%v: ExecStats.FabricMessages = %d, fabric counted %d", protocol, st.FabricMessages, got)
		}
	}

	// Range stats.
	rs, rst, err := tr.RangeSearchStats(context.Background(), q, 25)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteRange(pts, q, 25); !sameIDSets(rs, want) {
		t.Fatal("range stats variant disagrees with oracle")
	}
	if rst.Protocol != ProtocolNameRange || rst.NodesVisited <= 0 {
		t.Fatalf("range stats empty: %+v", rst)
	}

	// Batch stats: every entry answered, every entry accounted.
	qs := make([][]float64, 8)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 4)[0].Coords
	}
	res := tr.KNearestBatchStats(context.Background(), qs, 3, 4)
	for i, qr := range res {
		if qr.Err != nil {
			t.Fatalf("entry %d: %v", i, qr.Err)
		}
		if qr.Stats.Protocol != ProtocolNameSequential || qr.Stats.NodesVisited <= 0 {
			t.Fatalf("entry %d stats: %+v", i, qr.Stats)
		}
		if want := bruteKNN(pts, qs[i], 3); !sameIDSets(qr.Neighbors, want) {
			t.Fatalf("entry %d disagrees with oracle", i)
		}
	}
}

// TestBatchPerQueryErrors: a bad query carries its own error and the
// healthy queries still answer (the batched QueryResult contract).
func TestBatchPerQueryErrors(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2})
	if err := tr.Insert(kdtree.Point{Coords: []float64{1, 2}, ID: 1}); err != nil {
		t.Fatal(err)
	}
	res := tr.KNearestBatchStats(context.Background(), [][]float64{{1, 2}, {3}, {4, 5}}, 1, 2)
	if res[0].Err != nil || len(res[0].Neighbors) != 1 {
		t.Fatalf("healthy entry 0 poisoned: %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("dimension mismatch not attributed to its query")
	}
	if res[2].Err != nil || len(res[2].Neighbors) != 1 {
		t.Fatalf("healthy entry 2 poisoned: %+v", res[2])
	}
}
