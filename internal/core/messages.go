// Package core implements SemTree's distributed KD-tree (§III-B): a
// partition tree whose nodes are hosted by fabric compute nodes. Data
// points live only in leaf buckets; a root partition holds routing
// nodes; navigation, insertion and search cross partition boundaries
// through fabric messages, mirroring the paper's MPJ protocol.
//
// The three algorithms of the paper map to:
//
//   - Distributed insertion (§III-B.1): Tree.Insert / InsertAll —
//     navigate by (Sr, Sv) comparisons, forwarding to the partition
//     hosting the child when Cp != Childp, splitting saturated leaves.
//   - Build partition (§III-B.2): triggered when a partition's
//     resource condition fires; the partition's leaves are moved into
//     newly created partitions and direct links are installed.
//   - Distributed k-nearest and range search (§III-B.3, §III-B.4):
//     Tree.KNearest / Tree.RangeSearch — the sequential backtracking
//     procedures, carrying the result set Rs across partitions; range
//     search fans out in parallel at border nodes.
package core

import (
	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// childRef addresses a tree node: the partition hosting it and the node
// index inside that partition's arena. A ref is "local" to a partition
// when Part equals that partition's own fabric ID (the paper's
// Cp == Childp test).
type childRef struct {
	Part cluster.NodeID
	Node int32
}

// insertReq asks a partition to insert Point into the subtree rooted at
// its node Node. When Async is set, cross-partition forwarding uses
// one-way mailbox messages (fire-and-forget, like the paper's MPJ
// pipeline) instead of nested synchronous calls.
type insertReq struct {
	Node  int32
	Point kdtree.Point
	Async bool
}

// insertResp acknowledges an insertion.
type insertResp struct{}

// batchEntry is one point of a batched insert, tagged with the node at
// which its descent (re-)enters the receiving partition.
type batchEntry struct {
	Node  int32
	Point kdtree.Point
}

// insertBatchReq carries a batch of points through the one-way insert
// pipeline. Batching amortizes per-message costs exactly like a real
// bulk load ("Kd-trees are more efficient in bulk-loading situations
// (as required by our approach)" — §III-B); the receiving partition
// applies local entries and re-batches the rest per target partition.
type insertBatchReq struct {
	Entries []batchEntry
}

// knnEntry is one guarded subtree of a fanned-out k-nearest
// continuation: the node index in the receiving partition, plus the
// subtree's pruning guard — the exact squared minimum distance from
// the query to the subtree's bounding box when the sender knows it,
// falling back to the squared splitting-plane distance (§III-B.3) for
// a subtree whose region metadata is unknown; < 0 is unconditional.
// The receiver re-checks the guard against its evolving result set, so
// a subtree another entry already ruled out costs nothing.
type knnEntry struct {
	Node    int32
	GuardSq float64
}

// knnReq asks a partition to continue a k-nearest search. Rs carries
// the current result set (Table I), so the remote side prunes with the
// same bound the caller had; the response returns the merged set.
// Neighbor distances are *squared* Euclidean distances everywhere on
// the wire — the single deferred sqrt is applied once at the client
// boundary (Tree.KNearest).
//
// Seq selects the paper's strictly sequential protocol rooted at Node:
// the caller blocks on each cross-partition hop and adopts the merged
// set before continuing. When Seq is false (the default), the caller
// finishes its local traversal first, groups the surviving remote
// subtrees by hosting partition, and sends each partition ONE request
// carrying all its Entries (Node is ignored when Entries is set) — at
// most M−1 parallel messages per wave, the paper's §III-C bound. Rs is
// then a snapshot: a pruning hint only, so both modes return identical
// result sets.
type knnReq struct {
	Node    int32
	Query   []float64
	K       int
	Rs      []kdtree.Neighbor
	Seq     bool
	Entries []knnEntry
}

// queryStats is the work accounting one partition reports with a query
// response: its own traversal counters plus everything it aggregated
// from the partitions it contacted downstream. Callers fold the
// response stats into their own, so the client-facing total (ExecStats)
// is an exact sum over every partition the query executed on,
// regardless of protocol or nesting depth.
type queryStats struct {
	Nodes   int64 // tree nodes visited (popped and not pruned)
	Buckets int64 // leaf buckets scanned
	Dists   int64 // point distance evaluations
	Msgs    int64 // fabric calls issued downstream on behalf of the query
	Parts   int64 // partition handler executions (this one + downstream)
	Misses  int64 // downstream k-NN calls whose reply did not improve the Rs they were sent
}

// merge adds another partition's stats field-by-field.
func (s *queryStats) merge(o queryStats) {
	s.Nodes += o.Nodes
	s.Buckets += o.Buckets
	s.Dists += o.Dists
	s.Msgs += o.Msgs
	s.Parts += o.Parts
	s.Misses += o.Misses
}

// fold accumulates a downstream response's stats, charging the one
// message that carried it.
func (s *queryStats) fold(o queryStats) {
	s.merge(o)
	s.Msgs++
}

// knnResp carries the merged result set back: the top K of the request
// seed plus the visited subtrees, sorted ascending by (squared
// distance, point ID). In parallel mode it may repeat seed points; the
// caller's merge deduplicates by point ID. Stats reports the work done
// by this partition and everything downstream of it.
type knnResp struct {
	Rs    []kdtree.Neighbor
	Stats queryStats
}

// rangeReq asks a partition for all points within D of Query in the
// subtree rooted at Node. D is on the (un-squared) distance scale.
type rangeReq struct {
	Node  int32
	Query []float64
	D     float64
}

// rangeResp carries the subtree's matches back. Ordering contract:
// Neighbors is an *unsorted* concatenation of partial result sets in
// traversal/arrival order, with squared distances; matches are sorted
// (ascending distance, ties by point ID) and square-rooted exactly
// once, at the client boundary in Tree.RangeSearch. Intermediate
// partitions must not sort — that work would be thrown away by the
// merge at the next hop up. Stats aggregates like knnResp.Stats.
type rangeResp struct {
	Neighbors []kdtree.Neighbor
	Stats     queryStats
}

// adoptReq moves a leaf bucket into a (newly created) partition during
// the build-partition algorithm (Figure 2's Lc relocation). Lo/Hi is
// the bucket's exact bounding box: the remote subtree's region ships
// in its registration message, so the source partition can cache it
// and keep pruning the relocated subtree by true min-distance.
type adoptReq struct {
	Bucket []kdtree.Point
	Lo, Hi []float64
}

// adoptResp returns the node index of the adopted leaf, which becomes
// the target of the direct link installed in the source partition.
type adoptResp struct {
	Node int32
}

// statsReq asks a partition for its local statistics.
type statsReq struct{}

// statsResp reports one partition's state.
type statsResp struct {
	Points   int
	Nodes    int
	Leaves   int
	NavSteps int64
	BoxWork  int64
}

// heightReq asks for the height of the subtree rooted at Node,
// following cross-partition links.
type heightReq struct {
	Node int32
}

// heightResp carries the subtree height.
type heightResp struct {
	Height int
}

func init() {
	// Register every protocol type so the TCP fabric can carry it.
	cluster.RegisterMessage(insertReq{})
	cluster.RegisterMessage(insertResp{})
	cluster.RegisterMessage(insertBatchReq{})
	cluster.RegisterMessage(knnReq{})
	cluster.RegisterMessage(knnResp{})
	cluster.RegisterMessage(rangeReq{})
	cluster.RegisterMessage(rangeResp{})
	cluster.RegisterMessage(adoptReq{})
	cluster.RegisterMessage(adoptResp{})
	cluster.RegisterMessage(statsReq{})
	cluster.RegisterMessage(statsResp{})
	cluster.RegisterMessage(heightReq{})
	cluster.RegisterMessage(heightResp{})
}
