package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// pnode is one tree node hosted by a partition. Exactly one of three
// states holds:
//
//   - leaf:    data node, bucket valid;
//   - routing: splitDim/splitVal/left/right valid — an *edge node* when
//     a child lives on another partition, *internal* otherwise (§III-B.1);
//   - moved:   tombstone left behind by the build-partition algorithm;
//     fwd is the direct link to the adopting partition, so in-flight
//     operations that resolved this node keep working.
//
// lo/hi is the node's region metadata: the exact bounding box of every
// point in its *logical* subtree — including points hosted by other
// partitions beneath cross-partition children — maintained exactly
// like the sequential tree's (expanded on the insert descent path,
// recomputed from buckets on splits, shipped with relocations). The
// box is the k-NN/range pruning guard; a tombstone's box is cleared
// (its region lives on in the parent's edge and the remote-box cache).
type pnode struct {
	leaf  bool
	moved bool
	// migrating marks a leaf the background repacker is draining to
	// another partition: it keeps serving reads and absorbing inserts
	// (the deltas forward before commit), but splits are deferred and
	// spills skip it until the migration commits or aborts.
	migrating bool
	fwd       childRef
	splitDim  int32
	splitVal  float64
	left      childRef
	right     childRef
	bucket    []kdtree.Point
	lo, hi    []float64
}

// partition is one fabric-hosted piece of the SemTree. Nodes live in an
// arena addressed by index; cross-partition children are childRefs with
// a foreign Part. Navigation takes the read lock; mutation (insert,
// split, spill) the write lock. Locks are never held while waiting on
// an *upstream* partition — call edges follow the partition DAG, so
// lock acquisition cannot cycle.
type partition struct {
	t  *Tree
	id cluster.NodeID

	mu     sync.RWMutex
	nodes  []pnode
	points int

	// remoteBoxes caches the bounding box of every cross-partition
	// subtree this partition links to, keyed by the edge's childRef.
	// Entries are installed when a subtree registers (buildPartition's
	// adopt handshake, rebalance's trunk install) and expanded when an
	// insert forwards through the edge, so the search guard for a
	// remote child is the same exact min-distance bound a local child
	// gets. Guarded by mu like the arena; boxes are owned copies, never
	// aliased with another partition's (the remote side keeps expanding
	// its own).
	remoteBoxes map[childRef]box

	// boxWork counts box-maintenance writes (path-box growth plus
	// remote-edge cache expansions). Guarded by mu: every writer holds
	// the write lock, handleStats reads under the read lock.
	boxWork int64

	navSteps atomic.Int64 // nodes traversed by insert descents
	inserts  atomic.Int64 // insertions applied locally
	spills   atomic.Int64 // build-partition runs
}

// handle dispatches one fabric message. Only the query handlers consume
// the caller's context: mutating operations (insert, adopt, rebalance
// plumbing) run to completion once delivered, so a cancelled client
// never leaves the tree half-modified.
func (p *partition) handle(ctx context.Context, from cluster.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case insertReq:
		return p.handleInsert(r)
	case insertBatchReq:
		return p.handleInsertBatch(r)
	case bulkAddReq:
		return p.handleBulkAdd(r)
	case graftReq:
		return p.handleBulkGraft(r)
	case snapshotReq:
		return p.handleSnapshot()
	case restoreReq:
		return p.handleRestore(r)
	case knnReq:
		return p.handleKNN(ctx, r)
	case rangeReq:
		return p.handleRange(ctx, r)
	case adoptReq:
		return p.handleAdopt(r)
	case statsReq:
		return p.handleStats()
	case heightReq:
		return p.handleHeight(r)
	case collectReq:
		return p.handleCollect(r)
	case resetReq:
		return p.handleReset(r)
	case installReq:
		return p.handleInstall(r)
	case repackScanReq:
		return p.handleRepackScan()
	case migrateReq:
		return p.handleMigrate(r)
	default:
		return nil, fmt.Errorf("core: partition %d: unknown request %T", p.id, req)
	}
}

// local reports whether ref points into this partition (Cp == Childp).
func (p *partition) local(ref childRef) bool { return ref.Part == p.id }

// addNode appends a node to the arena; callers hold the write lock.
func (p *partition) addNode(n pnode) int32 {
	p.nodes = append(p.nodes, n)
	return int32(len(p.nodes) - 1)
}

// descend walks from idx towards the leaf that should hold pt, under
// at least the read lock. It stops at a local leaf (remote == false)
// or at the first reference leaving the partition (remote == true),
// appending every non-tombstone node it routes through to path — the
// nodes whose bounding boxes must grow when the insert lands (routing
// decisions are immutable once made, so a recorded path stays the
// point's route even if a later lock upgrade raced a leaf split).
func (p *partition) descend(idx int32, pt []float64, path *[]int32) (leafIdx int32, ref childRef, remote bool) {
	steps := int64(0)
	defer func() { p.navSteps.Add(steps) }()
	for {
		n := &p.nodes[idx]
		steps++
		if n.moved {
			return 0, n.fwd, true
		}
		*path = append(*path, idx)
		if n.leaf {
			return idx, childRef{}, false
		}
		var c childRef
		if pt[n.splitDim] <= n.splitVal {
			c = n.left
		} else {
			c = n.right
		}
		if !p.local(c) {
			return 0, c, true
		}
		idx = c.Node
	}
}

// handleInsert implements the distributed insertion algorithm
// (§III-B.1). Navigation runs under the read lock; the leaf mutation
// re-validates under the write lock (a concurrent split or spill may
// have changed the node in between) and loops or forwards as needed.
// No lock is held while forwarding to another partition. Whatever the
// outcome — local landing or cross-partition forward — every box on
// the descent path expands to include the point (the point belongs to
// each of those logical subtrees), and a forward additionally grows
// the cached box of the edge it leaves through. Expansion precedes the
// forward, so on a lossy or failing fabric a dropped point can leave
// boxes covering a point that never landed: dilation is always
// pruning-safe (a looser box only skips less), and exactness — what
// the consistency checks assert — holds under reliable delivery,
// matching the async path's at-most-once contract (a drop already
// loses the point itself).
func (p *partition) handleInsert(r insertReq) (any, error) {
	forward := func(ref childRef) error {
		req := insertReq{Node: ref.Node, Point: r.Point, Async: r.Async}
		if r.Async {
			return p.t.fabric.Send(p.id, ref.Part, req)
		}
		_, err := p.t.call(p.id, ref.Part, req)
		return err
	}
	idx := r.Node
	var path []int32
	for {
		p.mu.RLock()
		leafIdx, ref, remote := p.descend(idx, r.Point.Coords, &path)
		needsExpand := remote && p.forwardNeedsExpand(path, ref, r.Point.Coords)
		p.mu.RUnlock()
		if remote {
			// Warm path: a point inside every region it routes through
			// forwards without the write lock.
			if needsExpand {
				p.mu.Lock()
				p.expandPathBoxes(path, r.Point.Coords)
				p.expandRemoteBox(ref, r.Point.Coords)
				p.mu.Unlock()
			}
			return insertResp{}, forward(ref)
		}

		p.mu.Lock()
		n := &p.nodes[leafIdx]
		switch {
		case n.moved:
			ref := n.fwd
			p.expandPathBoxes(path, r.Point.Coords)
			p.expandRemoteBox(ref, r.Point.Coords)
			p.mu.Unlock()
			return insertResp{}, forward(ref)
		case !n.leaf:
			// A concurrent insert split this leaf; resume from it. The
			// path keeps accumulating — descend re-appends leafIdx, and
			// box expansion is idempotent.
			idx = leafIdx
			p.mu.Unlock()
			continue
		}
		p.expandPathBoxes(path, r.Point.Coords)
		n.bucket = append(n.bucket, r.Point)
		p.points++
		p.inserts.Add(1)
		if len(n.bucket) > p.t.cfg.BucketSize {
			p.splitLeaf(leafIdx)
		}
		spill := p.capacityExceededLocked()
		p.mu.Unlock()
		if spill {
			p.buildPartition()
		}
		return insertResp{}, nil
	}
}

// handleInsertBatch applies a batch of pipelined inserts. The whole
// batch runs under one write lock (no per-point lock churn and no
// re-validation needed); entries whose descent leaves the partition are
// re-grouped per target and forwarded as one message each, after the
// lock is released.
func (p *partition) handleInsertBatch(r insertBatchReq) (any, error) {
	var forwards map[cluster.NodeID][]batchEntry
	var path []int32
	p.mu.Lock()
	for _, e := range r.Entries {
		path = path[:0]
		leafIdx, ref, remote := p.descend(e.Node, e.Point.Coords, &path)
		p.expandPathBoxes(path, e.Point.Coords)
		if remote {
			p.expandRemoteBox(ref, e.Point.Coords)
			if forwards == nil {
				forwards = make(map[cluster.NodeID][]batchEntry)
			}
			forwards[ref.Part] = append(forwards[ref.Part], batchEntry{Node: ref.Node, Point: e.Point})
			continue
		}
		n := &p.nodes[leafIdx]
		n.bucket = append(n.bucket, e.Point)
		p.points++
		p.inserts.Add(1)
		if len(n.bucket) > p.t.cfg.BucketSize {
			p.splitLeaf(leafIdx)
		}
	}
	spill := p.capacityExceededLocked()
	p.mu.Unlock()
	for part, entries := range forwards {
		// One-way, at-most-once: a drop loses the batch, mirroring the
		// async single-insert semantics.
		_ = p.t.fabric.Send(p.id, part, insertBatchReq{Entries: entries})
	}
	if spill {
		p.buildPartition()
	}
	return insertResp{}, nil
}

// splitLeaf turns a saturated leaf into a routing node with two local
// leaf children (Figure 1). Callers hold the write lock.
func (p *partition) splitLeaf(idx int32) {
	if p.nodes[idx].migrating {
		// A migration is draining this bucket; splitting would detach
		// the delta stream. The adopting side splits on arrival.
		return
	}
	bucket := p.nodes[idx].bucket
	var dim int
	var splitVal float64
	var ok bool
	if p.t.cfg.Unbalanced {
		dim, splitVal, ok = chainSplit(bucket)
	}
	if !ok {
		dim, splitVal, ok = medianSplit(bucket, p.t.cfg.Dim)
	}
	if !ok {
		return // all points identical: oversized leaf stands
	}
	var lb, rb []kdtree.Point
	for _, pt := range bucket {
		if pt.Coords[dim] <= splitVal {
			lb = append(lb, pt)
		} else {
			rb = append(rb, pt)
		}
	}
	llo, lhi := kdtree.BoxOf(lb)
	rlo, rhi := kdtree.BoxOf(rb)
	li := p.addNode(pnode{leaf: true, bucket: lb, lo: llo, hi: lhi})
	ri := p.addNode(pnode{leaf: true, bucket: rb, lo: rlo, hi: rhi})
	n := &p.nodes[idx] // re-take: addNode may have grown the arena
	n.leaf = false
	n.bucket = nil
	n.splitDim = int32(dim)
	n.splitVal = splitVal
	n.left = childRef{Part: p.id, Node: li}
	n.right = childRef{Part: p.id, Node: ri}
}

// medianSplit picks the widest dimension and a value separating the
// bucket (median when it separates, midpoint otherwise).
func medianSplit(bucket []kdtree.Point, dims int) (dim int, splitVal float64, ok bool) {
	bestSpread := 0.0
	var lo, hi float64
	for d := 0; d < dims; d++ {
		mn, mx := bucket[0].Coords[d], bucket[0].Coords[d]
		for _, p := range bucket[1:] {
			v := p.Coords[d]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if spread := mx - mn; spread > bestSpread {
			bestSpread, dim, lo, hi, ok = spread, d, mn, mx, true
		}
	}
	if !ok {
		return 0, 0, false
	}
	vals := make([]float64, len(bucket))
	for i, p := range bucket {
		vals[i] = p.Coords[dim]
	}
	//semtree:allow boundaryonce: construction-time median selection when splitting a leaf; not on the query-result path
	sort.Float64s(vals)
	med := vals[(len(vals)-1)/2]
	if med < hi {
		return dim, med, true
	}
	return dim, (lo + hi) / 2, true
}

// chainSplit is the degenerate split policy behind the paper's "totally
// unbalanced" curves: split on dimension 0 at the predecessor of the
// maximum, so monotonically increasing inserts grow a right-leaning
// chain. ok is false when dimension 0 has no spread.
func chainSplit(bucket []kdtree.Point) (dim int, splitVal float64, ok bool) {
	mx := bucket[0].Coords[0]
	for _, p := range bucket[1:] {
		if v := p.Coords[0]; v > mx {
			mx = v
		}
	}
	// splitVal is the largest value strictly below the maximum, so the
	// maximum (and its duplicates) form the right side.
	havePred := false
	var pred float64
	for _, p := range bucket {
		if v := p.Coords[0]; v < mx && (!havePred || v > pred) {
			pred, havePred = v, true
		}
	}
	if !havePred {
		return 0, 0, false // no spread on dim 0
	}
	return 0, pred, true
}

// capacityExceededLocked evaluates the partition's resource condition
// (§III-B.1: "dynamically evaluated at run-time … or statically
// fixed"). Callers hold at least the read lock.
func (p *partition) capacityExceededLocked() bool {
	cfg := p.t.cfg
	if !p.t.hasPartitionBudget() {
		return false
	}
	if cfg.CapacityCheck != nil {
		return cfg.CapacityCheck(PartitionInfo{
			Points:   p.points,
			Nodes:    len(p.nodes),
			Capacity: cfg.PartitionCapacity,
		})
	}
	return cfg.PartitionCapacity > 0 && p.points > cfg.PartitionCapacity
}

// buildPartition implements §III-B.2: when the resource condition
// fires, the partition's leaf nodes are moved into newly created
// partitions and direct links replace the local references; the moved
// leaves stay behind as forwarding tombstones for in-flight operations.
// When fewer compute nodes remain than leaves exist, the available new
// partitions adopt the leaves as the placement kernel assigns them —
// geometrically close leaves together (Config.Placement; round-robin
// under the ablation policy) — a budget-limited variant of the paper's
// one-partition-per-leaf procedure.
func (p *partition) buildPartition() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.capacityExceededLocked() {
		return // a concurrent spill already ran
	}

	// Movable leaves are leaf children of local routing nodes; the
	// partition's own subtree roots must stay for routing.
	type move struct {
		parent int32
		right  bool
		leaf   int32
	}
	var moves []move
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.leaf || n.moved {
			continue
		}
		if p.local(n.left) {
			if c := &p.nodes[n.left.Node]; c.leaf && !c.moved && !c.migrating {
				moves = append(moves, move{int32(i), false, n.left.Node})
			}
		}
		if p.local(n.right) {
			if c := &p.nodes[n.right.Node]; c.leaf && !c.moved && !c.migrating {
				moves = append(moves, move{int32(i), true, n.right.Node})
			}
		}
	}
	if len(moves) == 0 {
		return
	}
	targets := p.t.allocPartitions(len(moves))
	if len(targets) == 0 {
		return
	}
	p.spills.Add(1)
	// Assign every movable leaf a target up front: the placement
	// kernel packs geometrically close leaves onto the same partition
	// (round-robin under the ablation policy). The kernel is pure
	// computation over the leaves' boxes, safe under the spill lock.
	assign := make([]cluster.NodeID, len(moves))
	if p.t.cfg.Placement == PlacementRoundRobin {
		for k := range moves {
			assign[k] = targets[k%len(targets)]
		}
	} else {
		subs := make([]placeBox, len(moves))
		for k, mv := range moves {
			leaf := &p.nodes[mv.leaf]
			subs[k] = placeBox{lo: leaf.lo, hi: leaf.hi, points: len(leaf.bucket)}
		}
		tgs := make([]placeTarget, len(targets))
		for i, id := range targets {
			tgs[i] = placeTarget{id: id}
		}
		for k, ti := range placeSubtrees(subs, tgs, p.t.model.hopToNs) {
			assign[k] = targets[ti]
		}
	}
	for k, mv := range moves {
		target := assign[k]
		leaf := &p.nodes[mv.leaf]
		// The subtree's region ships with its registration: the adopted
		// side installs it as the new root's box, and the cached copy
		// here keeps pruning the relocated subtree by exact
		// min-distance (and grows when inserts forward through the
		// direct link).
		//semtree:allow lockedcall: adoption targets are fresh partitions that never call back into this one; the spill lock cannot cycle
		resp, err := p.t.call(p.id, target, adoptReq{Bucket: leaf.bucket, Lo: leaf.lo, Hi: leaf.hi})
		if err != nil {
			continue // leaf stays local; a later spill may retry
		}
		ref := childRef{Part: target, Node: resp.(adoptResp).Node}
		if leaf.lo != nil {
			if p.remoteBoxes == nil {
				p.remoteBoxes = make(map[childRef]box)
			}
			p.remoteBoxes[ref] = copyBox(leaf.lo, leaf.hi)
		}
		if mv.right {
			p.nodes[mv.parent].right = ref
		} else {
			p.nodes[mv.parent].left = ref
		}
		p.points -= len(leaf.bucket)
		leaf.bucket = nil
		leaf.moved = true
		leaf.leaf = false
		leaf.fwd = ref
		leaf.lo, leaf.hi = nil, nil
	}
}

// handleAdopt installs a moved leaf bucket as a new subtree root and
// returns its node index (the other end of Figure 2's direct link).
// The shipped region becomes the new root's box — recomputed from the
// bucket when an older sender did not provide one — and is copied, so
// this partition's future expansions never alias the sender's cache.
func (p *partition) handleAdopt(r adoptReq) (any, error) {
	lo, hi := r.Lo, r.Hi
	if lo == nil {
		lo, hi = kdtree.BoxOf(r.Bucket)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.addNode(pnode{
		leaf: true, bucket: r.Bucket,
		lo: append([]float64(nil), lo...),
		hi: append([]float64(nil), hi...),
	})
	p.points += len(r.Bucket)
	return adoptResp{Node: idx}, nil
}

// handleStats reports local counters.
func (p *partition) handleStats() (any, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	leaves := 0
	for i := range p.nodes {
		if p.nodes[i].leaf {
			leaves++
		}
	}
	return statsResp{
		Points:   p.points,
		Nodes:    len(p.nodes),
		Leaves:   leaves,
		NavSteps: p.navSteps.Load(),
		BoxWork:  p.boxWork,
	}, nil
}

// handleHeight computes the height of the subtree rooted at r.Node,
// following cross-partition links.
func (p *partition) handleHeight(r heightReq) (any, error) {
	h, err := p.heightVisit(r.Node)
	if err != nil {
		return nil, err
	}
	return heightResp{Height: h}, nil
}

func (p *partition) heightVisit(idx int32) (int, error) {
	p.mu.RLock()
	n := p.nodes[idx] // copy: we release the lock around remote calls
	p.mu.RUnlock()
	if n.moved {
		return p.remoteHeight(n.fwd)
	}
	if n.leaf {
		return 1, nil
	}
	childHeight := func(ref childRef) (int, error) {
		if p.local(ref) {
			return p.heightVisit(ref.Node)
		}
		return p.remoteHeight(ref)
	}
	lh, err := childHeight(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := childHeight(n.right)
	if err != nil {
		return 0, err
	}
	if rh > lh {
		lh = rh
	}
	return lh + 1, nil
}

func (p *partition) remoteHeight(ref childRef) (int, error) {
	resp, err := p.t.call(p.id, ref.Part, heightReq{Node: ref.Node})
	if err != nil {
		return 0, err
	}
	return resp.(heightResp).Height, nil
}
