package core

// Tests for the per-tenant quota layer: the token bucket's edge cases
// (zero capacity, fake-clock refill, reconciliation clamping), the
// zero-fabric-message rejection contract of ErrQuotaExhausted (the same
// parity harness as the ErrDeadlineBudget test), tenant isolation under
// concurrency, exact cost metering, and the queue-aware deadline
// budget.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestQuotaBucketEdges: the bucket primitive itself. A zero-capacity
// bucket admits nothing even at a zero estimate; reconciliation with an
// observed cost far above the charge clamps at zero instead of going
// negative; refunds clamp at capacity.
func TestQuotaBucketEdges(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }

	empty := newQuotaBucket(QuotaConfig{Capacity: 0, RefillPerSec: 1e6}, now)
	if _, ok := empty.take(0); ok {
		t.Fatal("zero-capacity bucket admitted a query")
	}

	b := newQuotaBucket(QuotaConfig{Capacity: 100, RefillPerSec: 0}, now)
	if charged, ok := b.take(30); !ok || charged != 30 {
		t.Fatalf("full bucket take(30) = (%v, %v), want (30, true)", charged, ok)
	}
	b.reconcile(30, 1e9) // observed cost wildly above the estimate
	if level, _ := b.snapshot(); level != 0 {
		t.Fatalf("reconciliation drove the bucket to %v, want clamp at 0", level)
	}
	if _, ok := b.take(0); ok {
		t.Fatal("drained bucket admitted a query")
	}
	b.refund(1e9)
	if level, capacity := b.snapshot(); level != 100 || capacity != 100 {
		t.Fatalf("refund level = %v (cap %v), want clamp at capacity", level, capacity)
	}
	b.reconcile(50, 0) // full refund of an uncharged overestimate
	if level, _ := b.snapshot(); level != 100 {
		t.Fatalf("over-refund level = %v, want clamp at capacity", level)
	}

	// An estimate above Capacity must not lock the tenant out: the
	// full bucket admits it, charging everything it holds, and the
	// next full-refill interval admits again.
	small := newQuotaBucket(QuotaConfig{Capacity: 50, RefillPerSec: 100}, now)
	if charged, ok := small.take(80); !ok || charged != 50 {
		t.Fatalf("full undersized bucket take(80) = (%v, %v), want (50, true)", charged, ok)
	}
	if _, ok := small.take(80); ok {
		t.Fatal("drained undersized bucket admitted an oversized estimate")
	}
	clock = clock.Add(time.Second) // refill 100 units, clamped to 50: full again
	if charged, ok := small.take(80); !ok || charged != 50 {
		t.Fatalf("refilled undersized bucket take(80) = (%v, %v), want (50, true)", charged, ok)
	}
}

// TestQuotaZeroCapacityZeroMessages: a scheduler with a zero-capacity
// quota rejects every query with ErrQuotaExhausted and — the admission
// contract — spends zero fabric messages doing so. Same message-count
// parity harness as TestAdmissionDeadlineBudget.
func TestQuotaZeroCapacityZeroMessages(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	tr, fabric, _ := latencyTree(t, r, 1500, 3)
	s := tr.NewScheduler(SchedulerConfig{Quota: &QuotaConfig{Capacity: 0, RefillPerSec: 100}})
	before := fabric.Stats().Messages
	for i := 0; i < 5; i++ {
		_, _, err := s.KNearest(context.Background(), randomPoints(r, 1, 3)[0].Coords, 3)
		if !errors.Is(err, ErrQuotaExhausted) {
			t.Fatalf("query %d: err = %v, want ErrQuotaExhausted", i, err)
		}
	}
	if after := fabric.Stats().Messages; after != before {
		t.Fatalf("quota-rejected queries still sent %d fabric messages", after-before)
	}
	st := s.Stats()
	if st.RejectedQuota != 5 || st.Admitted != 0 {
		t.Fatalf("stats = %+v, want 5 quota rejections, 0 admitted", st)
	}
	if !st.QuotaEnabled || st.QuotaCapacity != 0 || st.QuotaLevel != 0 {
		t.Fatalf("quota snapshot = enabled=%v level=%v cap=%v, want enabled zero bucket",
			st.QuotaEnabled, st.QuotaLevel, st.QuotaCapacity)
	}
	if st.MeteredDistanceEvals != 0 || st.MeteredFabricMessages != 0 || st.MeteredWall != 0 {
		t.Fatalf("rejected queries were metered: %+v", st)
	}
}

// TestQuotaRefillRestoresAdmission: drain a bucket until the tenant is
// throttled, then advance a fake clock. An advance smaller than the
// deficit interval must stay throttled; advancing past it must admit
// again — refill timing is exact, not background-goroutine-eventual.
func TestQuotaRefillRestoresAdmission(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	tr, _, _ := latencyTree(t, r, 1500, 3)

	const refillPerSec = 1000.0
	s := tr.NewScheduler(SchedulerConfig{
		Protocol: ProtocolSequential,
		Quota:    &QuotaConfig{Capacity: 5000, RefillPerSec: refillPerSec},
	})
	clock := time.Unix(1000, 0)
	s.quota.now = func() time.Time { return clock }
	s.quota.last = clock

	// Drain: with the clock frozen nothing refills, so a hammering
	// tenant must hit ErrQuotaExhausted within a bounded query count.
	q := randomPoints(r, 1, 3)[0].Coords
	throttled := false
	for i := 0; i < 500; i++ {
		_, _, err := s.KNearest(context.Background(), q, 3)
		if errors.Is(err, ErrQuotaExhausted) {
			throttled = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !throttled {
		t.Fatalf("5000-unit bucket never exhausted: %+v", s.Stats())
	}

	// The deficit is what the bucket lacks to cover the next estimate.
	level, _ := s.quota.snapshot()
	est := tr.model.estimateCost(ProtocolSequential)
	deficit := est - level
	if deficit <= 0 {
		t.Fatalf("rejected with level %v >= estimate %v", level, est)
	}

	// Half the deficit interval: still throttled.
	clock = clock.Add(time.Duration(deficit / 2 / refillPerSec * float64(time.Second)))
	if _, _, err := s.KNearest(context.Background(), q, 3); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("half-refilled bucket: err = %v, want ErrQuotaExhausted", err)
	}

	// The full deficit interval (plus margin): admitted again.
	clock = clock.Add(time.Duration(deficit/refillPerSec*float64(time.Second)) + time.Millisecond)
	if _, _, err := s.KNearest(context.Background(), q, 3); err != nil {
		t.Fatalf("refilled bucket still rejects: %v", err)
	}
}

// TestQuotaTenantIsolation: two schedulers over the same tree are two
// tenants. A zero-capacity tenant hammering concurrently must be fully
// rejected while an unthrottled tenant's queries all run, and the
// metering/counters of each must see only its own traffic. Run under
// -race in CI, this also exercises the bucket's locking.
func TestQuotaTenantIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	tr, _, _ := latencyTree(t, r, 1500, 3)
	starved := tr.NewScheduler(SchedulerConfig{Quota: &QuotaConfig{Capacity: 0}})
	open := tr.NewScheduler(SchedulerConfig{})

	const n = 24
	qs := make([][]float64, n)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	var wg sync.WaitGroup
	var starvedRes, openRes []QueryResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		starvedRes = starved.KNearestBatch(context.Background(), qs, 3, 4)
	}()
	go func() {
		defer wg.Done()
		openRes = open.KNearestBatch(context.Background(), qs, 3, 4)
	}()
	wg.Wait()

	for i, qr := range starvedRes {
		if !errors.Is(qr.Err, ErrQuotaExhausted) {
			t.Fatalf("starved tenant query %d: err = %v, want ErrQuotaExhausted", i, qr.Err)
		}
	}
	for i, qr := range openRes {
		if qr.Err != nil {
			t.Fatalf("open tenant query %d: %v", i, qr.Err)
		}
	}
	sst, ost := starved.Stats(), open.Stats()
	if sst.RejectedQuota != n || sst.Admitted != 0 || sst.MeteredFabricMessages != 0 {
		t.Fatalf("starved tenant stats polluted: %+v", sst)
	}
	if ost.RejectedQuota != 0 || ost.Admitted != n || ost.MeteredFabricMessages == 0 {
		t.Fatalf("open tenant stats wrong: %+v", ost)
	}
}

// TestSchedulerMetering: the metered totals are the exact sum of the
// ExecStats every executed query reported, and MeteredCost is CostOf of
// those sums.
func TestSchedulerMetering(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	tr, _, _ := latencyTree(t, r, 1200, 3)
	s := tr.NewScheduler(SchedulerConfig{})
	qs := make([][]float64, 10)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	res := s.KNearestBatch(context.Background(), qs, 3, 4)
	var want ExecStats
	for i, qr := range res {
		if qr.Err != nil {
			t.Fatalf("query %d: %v", i, qr.Err)
		}
		want.DistanceEvals += qr.Stats.DistanceEvals
		want.FabricMessages += qr.Stats.FabricMessages
		want.Wall += qr.Stats.Wall
	}
	st := s.Stats()
	if st.MeteredDistanceEvals != want.DistanceEvals ||
		st.MeteredFabricMessages != want.FabricMessages ||
		st.MeteredWall != want.Wall {
		t.Fatalf("metered totals %d/%d/%v, want %d/%d/%v",
			st.MeteredDistanceEvals, st.MeteredFabricMessages, st.MeteredWall,
			want.DistanceEvals, want.FabricMessages, want.Wall)
	}
	if got := CostOf(want); st.MeteredCost != got {
		t.Fatalf("MeteredCost = %v, want CostOf(sums) = %v", st.MeteredCost, got)
	}
	if st.MeteredCost <= 0 {
		t.Fatalf("metered cost not positive: %v", st.MeteredCost)
	}
}

// TestQueueAwareDeadlineBudget: a deadline that covers the query's own
// estimated wall must be admitted on an idle scheduler, but the same
// deadline must be rejected with ErrDeadlineBudget when the scheduler
// has a deep admission queue — the expected queue wait
// (Queued × EstWall / MaxInFlight) is charged against the budget.
func TestQueueAwareDeadlineBudget(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	tr, fabric, _ := latencyTree(t, r, 1500, 3)
	fabric.SetLatency(2 * time.Millisecond)
	defer fabric.SetLatency(0)
	s := tr.NewScheduler(SchedulerConfig{
		Protocol: ProtocolSequential, Admission: true, MaxInFlight: 1,
	})
	// Warm the model so the wall estimate is real.
	for i := 0; i < 3; i++ {
		if _, _, err := s.KNearest(context.Background(), randomPoints(r, 1, 3)[0].Coords, 3); err != nil {
			t.Fatal(err)
		}
	}
	est := tr.model.estimateWall(ProtocolSequential, tr.PartitionCount())
	if est <= 0 {
		t.Fatal("model learned no wall estimate")
	}

	// Idle scheduler: a 3×est budget is admissible.
	ctx, cancel := context.WithTimeout(context.Background(), 3*est)
	release, _, err := s.admit(ctx, ProtocolSequential)
	cancel()
	if err != nil {
		t.Fatalf("idle admit with 3x budget: %v", err)
	}
	release()

	// Ten queries already queued behind one slot: expected wait is
	// 10×est, so the same 3×est budget is now provably insufficient.
	s.queued.Add(10)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 3*est)
	defer cancel2()
	if _, _, err := s.admit(ctx2, ProtocolSequential); !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("deep-queue admit: err = %v, want ErrDeadlineBudget", err)
	}
	s.queued.Add(-10)
	if st := s.Stats(); st.RejectedBudget != 1 {
		t.Fatalf("stats = %+v, want 1 budget rejection", st)
	}
}

// TestQuotaSetRate: the distributed-quota lease seam. Retargeting the
// bucket accrues at the old rate up to the switch instant, applies the
// new rate strictly afterwards, and clamps the level into the new
// capacity — a lease renewal can neither drop earned tokens nor grant
// retroactive ones.
func TestQuotaSetRate(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }

	b := newQuotaBucket(QuotaConfig{Capacity: 100, RefillPerSec: 10}, now)
	if charged, ok := b.take(100); !ok || charged != 100 {
		t.Fatalf("drain take = (%v, %v)", charged, ok)
	}
	clock = clock.Add(2 * time.Second) // +20 at the old rate
	b.setRate(50, 40)                  // halve the burst, quadruple the refill
	if level, capacity := b.snapshot(); level != 20 || capacity != 50 {
		t.Fatalf("after setRate: level %v cap %v, want 20 earned at the old rate, cap 50", level, capacity)
	}
	clock = clock.Add(time.Second) // +40 at the new rate, clamped to the new cap
	if level, _ := b.snapshot(); level != 50 {
		t.Fatalf("new-rate accrual: level %v, want clamp at new capacity 50", level)
	}

	// Shrinking capacity below the current level clamps immediately.
	b.setRate(10, 40)
	if level, capacity := b.snapshot(); level != 10 || capacity != 10 {
		t.Fatalf("shrink: level %v cap %v, want both 10", level, capacity)
	}
}

// TestSchedulerSetQuotaRate: the scheduler-level seam refuses to
// conjure a bucket for an unquota'd scheduler and retargets a real one
// so admission reflects the lease within the same instant.
func TestSchedulerSetQuotaRate(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	tr, _, _ := latencyTree(t, r, 500, 3)

	open := tr.NewScheduler(SchedulerConfig{})
	if open.SetQuotaRate(100, 10) {
		t.Fatal("SetQuotaRate on a quota-less scheduler must report false")
	}

	s := tr.NewScheduler(SchedulerConfig{Quota: &QuotaConfig{Capacity: 1000, RefillPerSec: 0}})
	clock := time.Unix(2000, 0)
	s.quota.now = func() time.Time { return clock }
	s.quota.last = clock
	if !s.SetQuotaRate(0, 0) {
		t.Fatal("SetQuotaRate on a quota'd scheduler must report true")
	}
	// Leased down to zero: the next admission is rejected with the
	// typed quota error (the drain-a-tenant lease).
	q := randomPoints(r, 1, 3)[0].Coords
	_, _, err := s.KNearest(context.Background(), q, 1)
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("after a zero lease: err = %v, want ErrQuotaExhausted", err)
	}
	st := s.Stats()
	if !st.QuotaEnabled || st.QuotaCapacity != 0 {
		t.Fatalf("stats after zero lease: %+v", st)
	}

	// Leased back up: a renewal grants headroom, not instant tokens —
	// the bucket earns them at the new rate, so after a refill interval
	// admission resumes.
	if !s.SetQuotaRate(1e6, 1e6) {
		t.Fatal("re-lease failed")
	}
	clock = clock.Add(time.Second)
	if _, _, err := s.KNearest(context.Background(), q, 1); err != nil {
		t.Fatalf("after re-lease: %v", err)
	}
}
