package core

import (
	"sort"

	"semtree/internal/cluster"
)

// Geometry-aware partition placement: the build-partition algorithm
// (§III-B.2) and the rebalance trunk install decide *where* a subtree
// lives, and PR 5's exact per-subtree bounding boxes make that decision
// informable. Instead of scattering leaves round-robin, the placement
// kernel scores every candidate partition by how little its union box
// must grow to absorb the subtree (the R-tree least-enlargement
// heuristic), nudged by current load and by the cost model's
// per-destination hop estimate — so spatially close subtrees land
// together, a broad query's fan-out stays bounded by the geometry of
// its region instead of by the partition count, and nearby compute
// nodes are preferred when the fabric's latency is non-uniform.
// Config.Placement selects the policy; PlacementRoundRobin restores the
// legacy behavior as the ablation baseline the `placement` bench figure
// measures against.

// PlacementPolicy selects how spilled and rebalanced subtrees are
// assigned to partitions.
type PlacementPolicy int

const (
	// PlacementBox (the default) scores candidate partitions by
	// bounding-box enlargement plus load and per-destination hop cost,
	// clustering geometrically close subtrees on the same partition.
	PlacementBox PlacementPolicy = iota
	// PlacementRoundRobin restores the legacy arena-order round-robin
	// assignment, as the ablation baseline for the placement figure.
	PlacementRoundRobin
)

const (
	// placeLoadWeight weighs a candidate's normalized load against the
	// geometric term: geometry dominates (it is what bounds query
	// fan-out), load breaks up pathological pile-ups on one partition.
	placeLoadWeight = 0.25
	// placeHopWeight weighs the candidate's per-destination hop
	// estimate, so a geometric near-tie resolves toward the cheaper
	// compute node when the fabric's latency is non-uniform.
	placeHopWeight = 0.25
)

// placeBox is one subtree to place: its exact bounding box and point
// count. A nil box (empty subtree) fits anywhere for free.
type placeBox struct {
	lo, hi []float64
	points int
}

// placeTarget is one candidate partition as the kernel sees it: the
// union box of the data it already hosts (nil when empty) and its
// current load.
type placeTarget struct {
	id     cluster.NodeID
	lo, hi []float64
	points int
}

// boxEnlargement is the growth in total margin (summed side lengths)
// of the target union box when it absorbs the subtree box. An empty
// target absorbs any box for free — which is what makes the greedy
// kernel spread first and cluster after: subtrees fill empty
// partitions before competing for the geometrically closest one.
func boxEnlargement(tlo, thi, slo, shi []float64) float64 {
	if tlo == nil || slo == nil {
		return 0
	}
	e := 0.0
	for d := range tlo {
		lo, hi := tlo[d], thi[d]
		if slo[d] < lo {
			lo = slo[d]
		}
		if shi[d] > hi {
			hi = shi[d]
		}
		e += (hi - lo) - (thi[d] - tlo[d])
	}
	return e
}

// unionExpand grows the union box [lo, hi] to cover [alo, ahi],
// materializing an owned copy on first use. A nil addend leaves the
// union unchanged.
func unionExpand(lo, hi, alo, ahi []float64) ([]float64, []float64) {
	if alo == nil {
		return lo, hi
	}
	if lo == nil {
		return append([]float64(nil), alo...), append([]float64(nil), ahi...)
	}
	for d := range lo {
		if alo[d] < lo[d] {
			lo[d] = alo[d]
		}
		if ahi[d] > hi[d] {
			hi[d] = ahi[d]
		}
	}
	return lo, hi
}

// placeScores prices one subtree against every candidate target:
// normalized box enlargement plus weighted load and hop fractions,
// lower is better. Each component is normalized over the candidate set
// (the max observed value), so the score is scale-free in both the
// coordinate space and the fabric's latency range. hopNs may be nil
// when no per-destination estimates are wanted.
func placeScores(sub placeBox, targets []placeTarget, hopNs func(cluster.NodeID) float64) []float64 {
	enl := make([]float64, len(targets))
	maxEnl := 0.0
	maxLoad := 0
	for i, tg := range targets {
		enl[i] = boxEnlargement(tg.lo, tg.hi, sub.lo, sub.hi)
		if enl[i] > maxEnl {
			maxEnl = enl[i]
		}
		if tg.points > maxLoad {
			maxLoad = tg.points
		}
	}
	var hops []float64
	maxHop := 0.0
	if hopNs != nil {
		hops = make([]float64, len(targets))
		for i, tg := range targets {
			hops[i] = hopNs(tg.id)
			if hops[i] > maxHop {
				maxHop = hops[i]
			}
		}
	}
	scores := make([]float64, len(targets))
	for i, tg := range targets {
		s := 0.0
		if maxEnl > 0 {
			s = enl[i] / maxEnl
		}
		if maxLoad > 0 {
			s += placeLoadWeight * float64(tg.points) / float64(maxLoad)
		}
		if maxHop > 0 {
			s += placeHopWeight * hops[i] / maxHop
		}
		scores[i] = s
	}
	return scores
}

// placeSubtrees greedily assigns every subtree to one target and
// returns the chosen target index per subtree (in the subtrees' input
// order). Subtrees are placed largest-first — big subtrees anchor the
// layout, small ones then join whichever anchor they enlarge least —
// and every assignment updates the running union box and load, so one
// call packs a whole spill coherently. Ties resolve to the lowest
// target index; the assignment is deterministic for fixed inputs.
func placeSubtrees(subs []placeBox, targets []placeTarget, hopNs func(cluster.NodeID) float64) []int {
	order := make([]int, len(subs))
	for i := range order {
		order[i] = i
	}
	//semtree:allow boundaryonce: placement-time largest-first ordering at spill/rebalance; not on the query-result path
	sort.Slice(order, func(a, b int) bool {
		if subs[order[a]].points != subs[order[b]].points {
			return subs[order[a]].points > subs[order[b]].points
		}
		return order[a] < order[b]
	})
	state := make([]placeTarget, len(targets))
	copy(state, targets)
	for i := range state {
		// Owned box copies: assignments expand them.
		state[i].lo = append([]float64(nil), state[i].lo...)
		state[i].hi = append([]float64(nil), state[i].hi...)
		if len(state[i].lo) == 0 {
			state[i].lo, state[i].hi = nil, nil
		}
	}
	assign := make([]int, len(subs))
	for _, si := range order {
		scores := placeScores(subs[si], state, hopNs)
		best := 0
		for j := 1; j < len(scores); j++ {
			if scores[j] < scores[best] {
				best = j
			}
		}
		assign[si] = best
		state[best].lo, state[best].hi = unionExpand(state[best].lo, state[best].hi, subs[si].lo, subs[si].hi)
		state[best].points += subs[si].points
	}
	return assign
}
