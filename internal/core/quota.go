//semtree:clocksealed — scheduler, quota, and cost-model logic reads time only through the injected clock seam

package core

import (
	"errors"
	"sync"
	"time"
)

// This file is the per-tenant quota layer of the scheduler. The paper's
// §V states query cost in fabric messages and nodes visited; PR 3's
// cost model estimates that cost online, and the scheduler here turns
// the estimate into an enforced budget: every Scheduler (one per
// Searcher, i.e. per tenant) can carry a token bucket denominated in
// cost units, charged at admission with the model's estimate of the
// query about to run and reconciled with the query's observed ExecStats
// on completion. A tenant whose bucket is empty is rejected with
// ErrQuotaExhausted before any fabric message is spent — the same
// zero-cost rejection contract as ErrDeadlineBudget.

// Cost-unit prices. One cost unit is one point-to-query distance
// evaluation — the paper's innermost unit of query work — and the other
// ExecStats components are priced relative to it. The scale is
// deliberately coarse: quotas ration aggregate work across tenants,
// they do not bill microseconds.
const (
	// CostPerDistanceEval prices one point distance evaluation: the
	// unit of the scale.
	CostPerDistanceEval = 1.0
	// CostPerFabricMessage prices one fabric call — serialization,
	// transit and a remote handler dispatch, worth roughly a leaf
	// bucket scan of work.
	CostPerFabricMessage = 32.0
	// CostPerWallMilli prices a millisecond of client-observed wall
	// time, so queries that occupy the fabric longer (high-latency
	// hops, deep sequential chains) drain more budget than their
	// counter totals alone suggest.
	CostPerWallMilli = 4.0
)

// CostOf prices one query's observed execution in cost units. The
// function is linear in the ExecStats components, so the cost of a
// workload is CostOf of its summed stats — which is how SchedulerStats
// reports MeteredCost.
func CostOf(st ExecStats) float64 {
	return float64(st.DistanceEvals)*CostPerDistanceEval +
		float64(st.FabricMessages)*CostPerFabricMessage +
		float64(st.Wall)/float64(time.Millisecond)*CostPerWallMilli
}

// ErrQuotaExhausted is returned for a query rejected because the
// scheduler's token bucket holds fewer cost units than the query is
// estimated to need. Like every admission rejection it is decided
// before the query touches the fabric — a quota-rejected query spends
// zero messages. The bucket refills at the configured rate; callers
// should back off for roughly EstimatedCost/RefillPerSec and retry.
var ErrQuotaExhausted = errors.New("core: per-tenant quota exhausted")

// QuotaConfig configures one scheduler's token bucket, in cost units
// (see CostOf). The bucket starts full. A nil *QuotaConfig on
// SchedulerConfig disables quota enforcement entirely; a zero Capacity
// with quotas enabled admits nothing — useful for draining a tenant.
// A Capacity below one query's estimated cost does not lock the tenant
// out: a full bucket always admits, so throughput degrades to one
// query per Capacity/RefillPerSec interval.
type QuotaConfig struct {
	// Capacity is the bucket size: the largest burst of cost a tenant
	// may spend at once.
	Capacity float64
	// RefillPerSec is the sustained spend rate: cost units restored per
	// second, accrued lazily at admission time (no background
	// goroutine). 0 means the bucket never refills.
	RefillPerSec float64
}

// quotaBucket is a lazily refilled token bucket. Refill happens under
// the same mutex as the take, on the admission path — one time.Now per
// admission, nothing in the background. The level is clamped to
// [0, Capacity] at every transition, so estimate-vs-observed
// reconciliation can never drive it negative (which would silently
// extend the tenant's penalty beyond its configured burst).
type quotaBucket struct {
	mu       sync.Mutex
	capacity float64
	refill   float64
	level    float64
	last     time.Time
	now      func() time.Time // injectable for tests; time.Now in production
}

func newQuotaBucket(cfg QuotaConfig, now func() time.Time) *quotaBucket {
	b := &quotaBucket{capacity: cfg.Capacity, refill: cfg.RefillPerSec, now: now}
	b.level = b.capacity
	b.last = now()
	return b
}

// refillLocked accrues tokens for the time elapsed since the last
// transition. Callers hold b.mu.
func (b *quotaBucket) refillLocked() {
	t := b.now()
	if b.refill > 0 {
		if dt := t.Sub(b.last).Seconds(); dt > 0 {
			b.level = min(b.capacity, b.level+dt*b.refill)
		}
	}
	b.last = t
}

// take admits one query estimated to cost est units: it refills lazily,
// then charges the estimate, returning what was actually deducted. An
// empty bucket admits nothing, even at a zero estimate (a cold cost
// model must not grant free queries to an exhausted tenant). A *full*
// bucket admits even an estimate above its capacity, charging whatever
// it holds — an undersized bucket (or a cost-model estimate that
// drifted past Capacity) degrades to one query per full-refill
// interval instead of locking the tenant out forever.
func (b *quotaBucket) take(est float64) (charged float64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.level <= 0 || (b.level < est && b.level < b.capacity) {
		return 0, false
	}
	charged = est
	if charged > b.level {
		charged = b.level // oversized estimate admitted on a full bucket
	}
	b.level -= charged
	return charged, true
}

// refund returns an admission charge for a query that was charged but
// never ran (shed at the in-flight limit, or its context died while
// queued).
func (b *quotaBucket) refund(x float64) {
	b.mu.Lock()
	b.level = min(b.capacity, b.level+x)
	b.mu.Unlock()
}

// reconcile settles a completed query: the admission charge was an
// estimate, the observed ExecStats are the truth. Underestimates drain
// the remaining difference, overestimates are refunded; either way the
// level stays within [0, Capacity]. Because charged is what take
// actually deducted, the net effect of take+reconcile is exactly
// clamp(level − observed).
func (b *quotaBucket) reconcile(charged, observed float64) {
	b.mu.Lock()
	b.level += charged - observed
	if b.level < 0 {
		b.level = 0
	} else if b.level > b.capacity {
		b.level = b.capacity
	}
	b.mu.Unlock()
}

// snapshot reports the current level (after lazy refill) and capacity.
func (b *quotaBucket) snapshot() (level, capacity float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.level, b.capacity
}

// setRate retargets the bucket at runtime: the level accrues at the
// old rate up to now, then capacity and refill switch to the new
// values (level clamped into the new capacity). This is the
// distributed-quota lease seam — a fleet allocator leases each
// front-end a share of a tenant's global refill rate, and the lease is
// applied here without dropping tokens already earned or granting
// retroactive ones.
func (b *quotaBucket) setRate(capacity, refillPerSec float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.capacity = capacity
	b.refill = refillPerSec
	if b.level > b.capacity {
		b.level = b.capacity
	}
}
