package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

func TestRebalanceFixesChain(t *testing.T) {
	// Degenerate chain → Rebalance → logarithmic height, same answers.
	tr := mustTree(t, Config{Dim: 2, BucketSize: 8, Unbalanced: true})
	var pts []kdtree.Point
	for i := 0; i < 800; i++ {
		p := kdtree.Point{Coords: []float64{float64(i), float64(i % 7)}, ID: uint64(i)}
		pts = append(pts, p)
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	before, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if before < 50 {
		t.Fatalf("chain did not degenerate: height %d", before)
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	after, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	maxH := int(math.Ceil(math.Log2(800.0/8.0))) + 3
	if after > maxH {
		t.Fatalf("height after rebalance %d, want <= %d", after, maxH)
	}
	if tr.Len() != 800 {
		t.Fatalf("Len after rebalance = %d", tr.Len())
	}
	r := rand.New(rand.NewSource(1))
	for q := 0; q < 25; q++ {
		query := []float64{r.Float64() * 800, r.Float64() * 7}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 5); !sameDistances(got, want) {
			t.Fatalf("KNN mismatch after rebalance")
		}
	}
}

func TestRebalanceDistributesAcrossPartitions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 3000, 3)
	// Build with capacity 0: everything lands in one partition even
	// though the budget allows 6 — Rebalance must then spread it.
	tr := mustTree(t, Config{Dim: 3, BucketSize: 16, MaxPartitions: 6})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if tr.PartitionCount() != 1 {
		t.Fatalf("pre-rebalance partitions = %d", tr.PartitionCount())
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if tr.PartitionCount() != 6 {
		t.Fatalf("post-rebalance partitions = %d, want 6", tr.PartitionCount())
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 3000 {
		t.Fatalf("points after rebalance = %d", st.Points)
	}
	if st.PartitionPoints[0] != 0 {
		t.Fatalf("root partition still holds %d points", st.PartitionPoints[0])
	}
	nonEmpty := 0
	for _, n := range st.PartitionPoints[1:] {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 5 {
		t.Fatalf("data partitions holding points: %d, want 5 (%v)", nonEmpty, st.PartitionPoints)
	}
	for q := 0; q < 20; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 4); !sameDistances(got, want) {
			t.Fatal("KNN mismatch after distributed rebalance")
		}
		gotR, err := tr.RangeSearch(context.Background(), query, 20)
		if err != nil {
			t.Fatal(err)
		}
		if wantR := bruteRange(pts, query, 20); !sameIDSets(gotR, wantR) {
			t.Fatal("range mismatch after distributed rebalance")
		}
	}
}

func TestRebalanceEmptyTree(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxPartitions: 3})
	if err := tr.Rebalance(); err != nil {
		t.Fatalf("Rebalance on empty tree: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Still usable afterwards.
	if err := tr.Insert(kdtree.Point{Coords: []float64{1, 2}, ID: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.KNearest(context.Background(), []float64{0, 0}, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("insert after empty rebalance: %v %v", got, err)
	}
}

func TestRebalanceTinyDataManyPartitions(t *testing.T) {
	// Fewer points than a single bucket with M=8: the whole tree stays
	// on the root partition.
	tr := mustTree(t, Config{Dim: 2, BucketSize: 16, MaxPartitions: 8})
	var pts []kdtree.Point
	for i := 0; i < 5; i++ {
		p := kdtree.Point{Coords: []float64{float64(i), 0}, ID: uint64(i)}
		pts = append(pts, p)
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.KNearest(context.Background(), []float64{2.1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteKNN(pts, []float64{2.1, 0}, 2); !sameDistances(got, want) {
		t.Fatal("KNN mismatch after tiny rebalance")
	}
}

func TestRebalanceThenInsertAndSpill(t *testing.T) {
	// After a rebalance the tree must keep working dynamically:
	// inserts, splits, further spills.
	r := rand.New(rand.NewSource(3))
	tr := mustTree(t, Config{Dim: 3, BucketSize: 8, PartitionCapacity: 200, MaxPartitions: 4})
	pts := randomPoints(r, 600, 3)
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	more := randomPoints(r, 600, 3)
	for i := range more {
		more[i].ID += 10000
	}
	if err := tr.InsertAll(more, 1); err != nil {
		t.Fatal(err)
	}
	all := append(append([]kdtree.Point(nil), pts...), more...)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != len(all) {
		t.Fatalf("points = %d, want %d", st.Points, len(all))
	}
	for q := 0; q < 20; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(all, query, 5); !sameDistances(got, want) {
			t.Fatal("KNN mismatch after rebalance+insert")
		}
	}
}

func TestRebalanceOverTCP(t *testing.T) {
	fabric := cluster.NewTCP()
	defer fabric.Close()
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 400, 3)
	tr := mustTree(t, Config{Dim: 3, BucketSize: 8, MaxPartitions: 3, Fabric: fabric})
	if err := tr.InsertAll(pts, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatalf("Rebalance over TCP: %v", err)
	}
	if tr.PartitionCount() != 3 {
		t.Fatalf("partitions = %d", tr.PartitionCount())
	}
	for q := 0; q < 10; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 3)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 3); !sameDistances(got, want) {
			t.Fatal("KNN mismatch after TCP rebalance")
		}
	}
}
