package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// Partition snapshot persistence: the distributed tree's whole layout —
// every partition's node arena, exact per-subtree bounding boxes, and
// the remote-box caches guarding cross-partition edges — serialized so
// a fleet restarts without re-ingesting. Restore rebuilds partitions
// bit-for-bit: the arenas, boxes and caches are identical, so every
// traversal takes the same path and query results are byte-identical
// to the pre-save tree (the invariant the snapshot tests and the churn
// bench runner assert).
//
// Snapshots address partitions by ordinal (their position in the
// tree's partition list), never by fabric NodeID: a restore lands on a
// fresh fabric whose IDs need not match. Taking a snapshot requires
// quiescence — no concurrent inserts, bulk loads or repack passes —
// like Rebalance; a migration caught in flight is refused.
//
// Restore trusts nothing: Validate walks the snapshot's cross-partition
// node graph iteratively (corrupt input must not overflow the stack),
// requiring exactly-one-state nodes, in-range references, a strict tree
// reachable from the root with tombstones as the only unreachable
// nodes, per-partition point accounting, and exact boxes everywhere —
// every violation is reported as ErrSnapshotCorrupt, never a panic.

// ErrSnapshotCorrupt reports snapshot bytes or structure that cannot be
// restored: truncated or garbled encodings, unknown format versions,
// and structural violations (bad references, inconsistent counts,
// inexact boxes). Test with errors.Is.
var ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")

// SnapshotFormat is the version of the partition snapshot structure.
// Decoders accept exactly this version; anything else is corrupt (the
// facade's index snapshot carries its own envelope version on top).
const SnapshotFormat = 1

// Validation bounds: a snapshot claiming more is corrupt by fiat long
// before any allocation happens.
const (
	maxSnapshotParts = 1 << 16
	maxSnapshotDim   = 1 << 12
)

// SnapRef addresses a node in a TreeSnapshot: the partition's ordinal
// in TreeSnapshot.Parts and the node's arena index.
type SnapRef struct {
	Part int32
	Node int32
}

// SnapNode is one serialized arena node. Exactly one of the pnode
// states holds: Leaf (Bucket valid), Moved (Fwd valid), or routing
// (SplitDim/SplitVal/Left/Right valid). Lo/Hi is the node's exact
// logical-subtree bounding box, nil when empty.
type SnapNode struct {
	Leaf     bool
	Moved    bool
	Fwd      SnapRef
	SplitDim int32
	SplitVal float64
	Left     SnapRef
	Right    SnapRef
	Bucket   []kdtree.Point
	Lo, Hi   []float64
}

// SnapRemoteBox is one cached cross-partition region: the edge's
// target and the exact box of the subtree behind it.
type SnapRemoteBox struct {
	Ref    SnapRef
	Lo, Hi []float64
}

// PartitionSnapshot is one partition's full state.
type PartitionSnapshot struct {
	Nodes  []SnapNode
	Points int
	Remote []SnapRemoteBox
}

// TreeSnapshot is the whole distributed tree, partition ordinal 0
// holding the tree root at node 0.
type TreeSnapshot struct {
	Format int
	Dim    int
	Size   int64
	Parts  []PartitionSnapshot
}

// snapWireNode mirrors SnapNode with fabric NodeIDs in the refs: the
// form partitions produce and consume; the client translates to and
// from ordinals.
type snapWireNode struct {
	Leaf     bool
	Moved    bool
	Fwd      childRef
	SplitDim int32
	SplitVal float64
	Left     childRef
	Right    childRef
	Bucket   []kdtree.Point
	Lo, Hi   []float64
}

// snapWireBox mirrors SnapRemoteBox with a fabric NodeID ref.
type snapWireBox struct {
	Ref    childRef
	Lo, Hi []float64
}

// snapshotReq asks a partition for a deep copy of its state.
type snapshotReq struct{}

type snapshotResp struct {
	Nodes  []snapWireNode
	Points int
	Remote []snapWireBox
}

// restoreReq replaces a partition's state wholesale; refs are already
// translated to the receiving fabric's NodeIDs.
type restoreReq struct {
	Nodes  []snapWireNode
	Points int
	Remote []snapWireBox
}

type restoreResp struct{}

func init() {
	cluster.RegisterMessage(snapshotReq{})
	cluster.RegisterMessage(snapshotResp{})
	cluster.RegisterMessage(restoreReq{})
	cluster.RegisterMessage(restoreResp{})
}

// handleSnapshot deep-copies the partition's state under the read lock.
// Buckets share point storage (points are immutable), but boxes are
// owned copies — the live arena keeps expanding its own. A migration
// caught in flight violates the snapshot's quiescence contract and is
// refused rather than serialized inconsistently.
func (p *partition) handleSnapshot() (any, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	resp := snapshotResp{Points: p.points}
	resp.Nodes = make([]snapWireNode, len(p.nodes))
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.migrating {
			return nil, fmt.Errorf("core: snapshot requires quiescence: partition %d has a migration in flight", p.id)
		}
		resp.Nodes[i] = snapWireNode{
			Leaf: n.leaf, Moved: n.moved, Fwd: n.fwd,
			SplitDim: n.splitDim, SplitVal: n.splitVal,
			Left: n.left, Right: n.right,
			Bucket: append([]kdtree.Point(nil), n.bucket...),
			Lo:     append([]float64(nil), n.lo...),
			Hi:     append([]float64(nil), n.hi...),
		}
	}
	for ref, b := range p.remoteBoxes {
		resp.Remote = append(resp.Remote, snapWireBox{
			Ref: ref,
			Lo:  append([]float64(nil), b.lo...),
			Hi:  append([]float64(nil), b.hi...),
		})
	}
	return resp, nil
}

// handleRestore replaces the partition's state wholesale under the
// write lock. Slices are copied: on an in-process fabric the request
// aliases client memory.
func (p *partition) handleRestore(r restoreReq) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes = make([]pnode, len(r.Nodes))
	for i, wn := range r.Nodes {
		p.nodes[i] = pnode{
			leaf: wn.Leaf, moved: wn.Moved, fwd: wn.Fwd,
			splitDim: wn.SplitDim, splitVal: wn.SplitVal,
			left: wn.Left, right: wn.Right,
			bucket: append([]kdtree.Point(nil), wn.Bucket...),
			lo:     append([]float64(nil), wn.Lo...),
			hi:     append([]float64(nil), wn.Hi...),
		}
	}
	p.points = r.Points
	p.remoteBoxes = nil
	for _, e := range r.Remote {
		if p.remoteBoxes == nil {
			p.remoteBoxes = make(map[childRef]box)
		}
		p.remoteBoxes[e.Ref] = copyBox(e.Lo, e.Hi)
	}
	return restoreResp{}, nil
}

// Snapshot captures the whole tree's layout. It requires quiescence
// (like Rebalance): a partition or migration appearing mid-capture is
// reported as an error, never a torn snapshot.
func (t *Tree) Snapshot() (*TreeSnapshot, error) {
	t.mu.RLock()
	parts := append([]*partition(nil), t.parts...)
	t.mu.RUnlock()
	ord := make(map[cluster.NodeID]int32, len(parts))
	for i, p := range parts {
		ord[p.id] = int32(i)
	}
	toRef := func(ref childRef) (SnapRef, error) {
		o, ok := ord[ref.Part]
		if !ok {
			return SnapRef{}, fmt.Errorf("core: snapshot requires quiescence: reference to partition %d created mid-capture", ref.Part)
		}
		return SnapRef{Part: o, Node: ref.Node}, nil
	}
	snap := &TreeSnapshot{Format: SnapshotFormat, Dim: t.cfg.Dim, Size: t.size.Load()}
	for _, p := range parts {
		resp, err := t.call(cluster.ClientID, p.id, snapshotReq{})
		if err != nil {
			return nil, err
		}
		pr := resp.(snapshotResp)
		ps := PartitionSnapshot{Points: pr.Points}
		ps.Nodes = make([]SnapNode, len(pr.Nodes))
		for i, wn := range pr.Nodes {
			sn := SnapNode{
				Leaf: wn.Leaf, Moved: wn.Moved,
				SplitDim: wn.SplitDim, SplitVal: wn.SplitVal,
				Bucket: wn.Bucket, Lo: wn.Lo, Hi: wn.Hi,
			}
			switch {
			case wn.Moved:
				if sn.Fwd, err = toRef(wn.Fwd); err != nil {
					return nil, err
				}
			case !wn.Leaf:
				if sn.Left, err = toRef(wn.Left); err != nil {
					return nil, err
				}
				if sn.Right, err = toRef(wn.Right); err != nil {
					return nil, err
				}
			}
			ps.Nodes[i] = sn
		}
		for _, e := range pr.Remote {
			ref, err := toRef(e.Ref)
			if err != nil {
				return nil, err
			}
			ps.Remote = append(ps.Remote, SnapRemoteBox{Ref: ref, Lo: e.Lo, Hi: e.Hi})
		}
		snap.Parts = append(snap.Parts, ps)
	}
	return snap, nil
}

// RestoreTree reconstructs a tree from a snapshot on a fresh set of
// partitions. cfg.Dim is taken from the snapshot and cfg.MaxPartitions
// is raised to the snapshot's partition count when lower (the snapshot
// describes a fleet that already exists; the budget only limits future
// growth). The snapshot is validated first: malformed input returns
// ErrSnapshotCorrupt. The restored tree answers every query
// byte-identically to the tree the snapshot was taken from.
func RestoreTree(cfg Config, snap *TreeSnapshot) (*Tree, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	cfg.Dim = snap.Dim
	if cfg.MaxPartitions < len(snap.Parts) {
		cfg.MaxPartitions = len(snap.Parts)
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ids := []cluster.NodeID{t.rootPartition().id}
	ids = append(ids, t.allocPartitions(len(snap.Parts)-1)...)
	if len(ids) != len(snap.Parts) {
		t.Close()
		return nil, fmt.Errorf("core: restore allocated %d of %d partitions", len(ids), len(snap.Parts))
	}
	toRef := func(r SnapRef) childRef {
		return childRef{Part: ids[r.Part], Node: r.Node}
	}
	for i, ps := range snap.Parts {
		req := restoreReq{Points: ps.Points}
		req.Nodes = make([]snapWireNode, len(ps.Nodes))
		for j, sn := range ps.Nodes {
			wn := snapWireNode{
				Leaf: sn.Leaf, Moved: sn.Moved,
				SplitDim: sn.SplitDim, SplitVal: sn.SplitVal,
				Bucket: sn.Bucket, Lo: sn.Lo, Hi: sn.Hi,
			}
			switch {
			case sn.Moved:
				wn.Fwd = toRef(sn.Fwd)
			case !sn.Leaf:
				wn.Left = toRef(sn.Left)
				wn.Right = toRef(sn.Right)
			}
			req.Nodes[j] = wn
		}
		for _, e := range ps.Remote {
			req.Remote = append(req.Remote, snapWireBox{Ref: toRef(e.Ref), Lo: e.Lo, Hi: e.Hi})
		}
		if _, err := t.call(cluster.ClientID, ids[i], req); err != nil {
			t.Close()
			return nil, fmt.Errorf("core: restore partition %d: %w", i, err)
		}
	}
	t.size.Store(snap.Size)
	return t, nil
}

// EncodeSnapshot writes the snapshot's gob encoding to w.
func EncodeSnapshot(w io.Writer, s *TreeSnapshot) error {
	return gob.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a gob-encoded snapshot from r. Truncated or
// garbled input returns ErrSnapshotCorrupt; the result is not yet
// structurally validated (RestoreTree does that).
func DecodeSnapshot(r io.Reader) (*TreeSnapshot, error) {
	var s TreeSnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrSnapshotCorrupt, err)
	}
	return &s, nil
}

// corrupt builds an ErrSnapshotCorrupt violation report.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// Validate checks the snapshot's structural invariants — the same ones
// a live tree maintains — and returns ErrSnapshotCorrupt on any
// violation: unknown format, out-of-range references, nodes in an
// impossible state, a reachable graph that is not a strict tree,
// point-count mismatches, or boxes that are not exactly the box of the
// points below them. The walk is iterative: adversarial input cannot
// overflow the stack.
func (s *TreeSnapshot) Validate() error {
	if s.Format != SnapshotFormat {
		return corrupt("format %d, want %d", s.Format, SnapshotFormat)
	}
	if s.Dim < 1 || s.Dim > maxSnapshotDim {
		return corrupt("dimension %d out of range", s.Dim)
	}
	if len(s.Parts) < 1 || len(s.Parts) > maxSnapshotParts {
		return corrupt("%d partitions out of range", len(s.Parts))
	}
	if len(s.Parts[0].Nodes) == 0 {
		return corrupt("root partition has no nodes")
	}
	refOK := func(r SnapRef) bool {
		return r.Part >= 0 && int(r.Part) < len(s.Parts) &&
			r.Node >= 0 && int(r.Node) < len(s.Parts[r.Part].Nodes)
	}
	boxOK := func(lo, hi []float64) bool {
		if (lo == nil) != (hi == nil) {
			return false
		}
		return lo == nil || (len(lo) == s.Dim && len(hi) == s.Dim)
	}
	total := int64(0)
	for pi := range s.Parts {
		ps := &s.Parts[pi]
		if ps.Points < 0 {
			return corrupt("partition %d: negative point count", pi)
		}
		local := 0
		for ni := range ps.Nodes {
			n := &ps.Nodes[ni]
			if n.Leaf && n.Moved {
				return corrupt("partition %d node %d: leaf and tombstone at once", pi, ni)
			}
			if !boxOK(n.Lo, n.Hi) {
				return corrupt("partition %d node %d: malformed box", pi, ni)
			}
			switch {
			case n.Moved:
				if len(n.Bucket) != 0 || n.Lo != nil {
					return corrupt("partition %d node %d: tombstone carries data", pi, ni)
				}
				if !refOK(n.Fwd) {
					return corrupt("partition %d node %d: dangling forward", pi, ni)
				}
			case n.Leaf:
				for bi, pt := range n.Bucket {
					if len(pt.Coords) != s.Dim {
						return corrupt("partition %d node %d: point %d has %d coords, want %d", pi, ni, bi, len(pt.Coords), s.Dim)
					}
				}
				lo, hi := kdtree.BoxOf(n.Bucket)
				if !boxEqual(lo, hi, n.Lo, n.Hi) {
					return corrupt("partition %d node %d: leaf box not exact", pi, ni)
				}
				local += len(n.Bucket)
			default:
				if len(n.Bucket) != 0 {
					return corrupt("partition %d node %d: routing node carries a bucket", pi, ni)
				}
				if int(n.SplitDim) < 0 || int(n.SplitDim) >= s.Dim {
					return corrupt("partition %d node %d: split dimension %d out of range", pi, ni, n.SplitDim)
				}
				if !refOK(n.Left) || !refOK(n.Right) {
					return corrupt("partition %d node %d: dangling child", pi, ni)
				}
			}
		}
		if local != ps.Points {
			return corrupt("partition %d: %d bucket points, Points says %d", pi, local, ps.Points)
		}
		total += int64(local)
		for ei, e := range ps.Remote {
			if !refOK(e.Ref) {
				return corrupt("partition %d remote entry %d: dangling reference", pi, ei)
			}
			if e.Lo == nil || !boxOK(e.Lo, e.Hi) {
				return corrupt("partition %d remote entry %d: malformed box", pi, ei)
			}
			tn := &s.Parts[e.Ref.Part].Nodes[e.Ref.Node]
			if !boxEqual(e.Lo, e.Hi, tn.Lo, tn.Hi) {
				return corrupt("partition %d remote entry %d: cached box not exact", pi, ei)
			}
		}
	}
	if total != s.Size {
		return corrupt("%d points across partitions, Size says %d", total, s.Size)
	}
	return s.validateReachable()
}

// validateReachable walks the child graph from the root iteratively,
// requiring a strict tree (each node one parent, no cycles, no
// tombstones as children), exact routing boxes (the union of the
// children's), and that everything unreachable is a tombstone.
func (s *TreeSnapshot) validateReachable() error {
	node := func(r SnapRef) *SnapNode { return &s.Parts[r.Part].Nodes[r.Node] }
	seen := make(map[SnapRef]bool)
	// Two-phase iterative DFS: push(enter ref) visits, push(exit ref)
	// re-checks the box once both children were visited.
	type frame struct {
		ref  SnapRef
		exit bool
	}
	stack := []frame{{ref: SnapRef{}}}
	seen[SnapRef{}] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := node(f.ref)
		if f.exit {
			l, r := node(n.Left), node(n.Right)
			lo, hi := unionExpand(append([]float64(nil), l.Lo...), append([]float64(nil), l.Hi...), r.Lo, r.Hi)
			if !boxEqual(lo, hi, n.Lo, n.Hi) {
				return corrupt("partition %d node %d: routing box not the union of its children", f.ref.Part, f.ref.Node)
			}
			continue
		}
		if n.Moved {
			return corrupt("partition %d node %d: tombstone reachable as a child", f.ref.Part, f.ref.Node)
		}
		if n.Leaf {
			continue
		}
		stack = append(stack, frame{ref: f.ref, exit: true})
		for _, c := range []SnapRef{n.Left, n.Right} {
			if seen[c] {
				return corrupt("partition %d node %d: child %v has two parents or sits on a cycle", f.ref.Part, f.ref.Node, c)
			}
			seen[c] = true
			stack = append(stack, frame{ref: c})
		}
	}
	for pi := range s.Parts {
		for ni := range s.Parts[pi].Nodes {
			if n := &s.Parts[pi].Nodes[ni]; !n.Moved && !seen[SnapRef{Part: int32(pi), Node: int32(ni)}] {
				return corrupt("partition %d node %d: unreachable non-tombstone", pi, ni)
			}
		}
	}
	return nil
}

// boxEqual reports exact equality of two boxes (nil equals nil).
func boxEqual(alo, ahi, blo, bhi []float64) bool {
	if (alo == nil) != (blo == nil) || len(alo) != len(blo) {
		return false
	}
	for d := range alo {
		if alo[d] != blo[d] || ahi[d] != bhi[d] {
			return false
		}
	}
	return true
}
