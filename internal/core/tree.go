package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// PartitionInfo is handed to a dynamic capacity check (the run-time
// evaluated resource condition of §III-B.1).
type PartitionInfo struct {
	Points   int // points currently hosted by the partition
	Nodes    int // tree nodes hosted (routing + leaf + tombstones)
	Capacity int // the configured PartitionCapacity
}

// Config configures a distributed SemTree.
type Config struct {
	// Dim is the dimensionality of indexed points (the FastMap k).
	Dim int
	// BucketSize is the leaf capacity Bs. Default 16.
	BucketSize int
	// PartitionCapacity is the number of points a partition may host
	// before the build-partition algorithm fires. 0 disables spilling
	// (a single partition holds everything).
	PartitionCapacity int
	// MaxPartitions is the paper's M: the number of compute nodes
	// available, including the root partition. Default 1.
	MaxPartitions int
	// Fabric carries inter-partition messages. Nil selects a private
	// in-process fabric with zero latency.
	Fabric cluster.Fabric
	// Unbalanced selects the degenerate chain split policy, reproducing
	// the paper's "totally unbalanced" configuration.
	Unbalanced bool
	// RetryAttempts bounds per-message retries on transient fabric
	// failures. Default 3. Retries are safe because delivery failures
	// happen before the handler runs (at-most-once processing).
	RetryAttempts int
	// CapacityCheck, when set, replaces the static points>capacity
	// condition with a dynamic one.
	CapacityCheck func(PartitionInfo) bool
	// PlaneGuardOnly restores the paper's one-dimensional
	// splitting-plane pruning bound (§III-B.3) in place of the exact
	// region (bounding-box) min-distance guard. Results are identical
	// either way — the region guard is never looser, so it only skips
	// work — which makes this flag the ablation lever the `pruning`
	// bench figure and the equivalence tests measure the guard with.
	PlaneGuardOnly bool
	// Placement selects how spilled and rebalanced subtrees are
	// assigned to partitions. The default (PlacementBox) clusters
	// geometrically close subtrees on the same partition via the
	// box-enlargement kernel; PlacementRoundRobin restores the legacy
	// scatter as the ablation baseline of the `placement` bench
	// figure. Results are identical either way — exact k-NN and range
	// results do not depend on which partition hosts which subtree.
	Placement PlacementPolicy
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("core: dimension %d must be positive", c.Dim)
	}
	if c.BucketSize <= 0 {
		c.BucketSize = kdtree.DefaultBucketSize
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 1
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.PartitionCapacity < 0 {
		return c, fmt.Errorf("core: negative partition capacity %d", c.PartitionCapacity)
	}
	return c, nil
}

// Tree is the distributed SemTree index. The structure is reachable
// only through fabric messages addressed to the root partition, exactly
// as a client of the paper's system would use it. All methods are safe
// for concurrent use.
type Tree struct {
	cfg       Config
	fabric    cluster.Fabric // observation-wrapped; all tree traffic goes through it
	inner     cluster.Fabric // the fabric as configured (closed on Close when owned)
	ownFabric bool

	// model is the scheduler's online cost model; it is always on (the
	// observations are a few arithmetic ops per query) and shared by
	// every Scheduler created over this tree.
	model *costModel
	// sched is the tree's own default scheduler: ProtocolAuto, no
	// admission limits. Tree.KNearest and the batch surfaces route
	// their protocol choice through it.
	sched *Scheduler

	mu    sync.RWMutex
	parts []*partition

	// repackMu serializes background repacking passes; the planner's
	// partition-graph acyclicity check assumes no concurrent planner.
	repackMu sync.Mutex

	// bulkMu serializes BulkLoad passes: two concurrent bulk builds
	// would race for the root graft and orphan each other's installs.
	// Single inserts and queries never take it.
	bulkMu sync.Mutex

	size atomic.Int64
}

// TreeStats aggregates the state of every partition plus fabric
// accounting.
type TreeStats struct {
	Points          int
	Partitions      int
	PartitionPoints []int // per-partition hosted points
	Nodes           int
	Leaves          int
	NavSteps        int64 // total nodes traversed by insert descents
	Inserts         int64
	// BoxWork counts box-maintenance writes: node boxes grown on insert
	// descent paths plus remote-edge cache expansions. The churn bench
	// figure reports it per insert as the region-metadata overhead of a
	// growing tree.
	BoxWork int64
	Fabric  cluster.Stats
}

// New creates a distributed SemTree with its root partition.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, inner: cfg.Fabric, model: newCostModel()}
	if t.inner == nil {
		t.inner = cluster.NewInProc(cluster.InProcOptions{})
		t.ownFabric = true
	}
	// The cost model subscribes to the fabric's latency observation
	// point: every Call the tree issues is timed at the transport
	// boundary and fed to the hop estimator.
	t.fabric = cluster.Observe(t.inner, t.model.observeSample)
	t.sched = t.NewScheduler(SchedulerConfig{})
	if _, err := t.addPartition(); err != nil {
		return nil, err
	}
	return t, nil
}

// addPartition registers a new partition on the fabric. The first one
// becomes the root partition.
func (t *Tree) addPartition() (*partition, error) {
	p := &partition{t: t}
	id, err := t.fabric.AddNode(p.handle)
	if err != nil {
		return nil, err
	}
	p.id = id
	t.mu.Lock()
	if len(t.parts) == 0 {
		// The root partition starts with the tree root: one empty
		// leaf at node index 0, where Insert and the searches enter.
		p.nodes = []pnode{{leaf: true}}
	}
	t.parts = append(t.parts, p)
	t.mu.Unlock()
	return p, nil
}

// rootPartition returns the partition holding the tree root.
func (t *Tree) rootPartition() *partition {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts[0]
}

// hasPartitionBudget reports whether more partitions may be created.
func (t *Tree) hasPartitionBudget() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts) < t.cfg.MaxPartitions
}

// allocPartitions creates up to want new partitions, bounded by the
// remaining MaxPartitions budget, and returns their fabric IDs.
func (t *Tree) allocPartitions(want int) []cluster.NodeID {
	t.mu.RLock()
	budget := t.cfg.MaxPartitions - len(t.parts)
	t.mu.RUnlock()
	if want > budget {
		want = budget
	}
	var ids []cluster.NodeID
	for i := 0; i < want; i++ {
		p, err := t.addPartition()
		if err != nil {
			break
		}
		ids = append(ids, p.id)
	}
	return ids
}

// call sends one fabric message with transient-failure retries, outside
// any query context (inserts, maintenance, stats — operations that run
// to completion once started).
func (t *Tree) call(from, to cluster.NodeID, req any) (any, error) {
	//semtree:allow ctxfirst: inserts and maintenance run to completion once started, by documented contract
	return t.callCtx(context.Background(), from, to, req)
}

// callCtx sends one fabric message under the query's context: the
// transports abandon in-flight replies when ctx expires, and retries
// stop as soon as it is done.
func (t *Tree) callCtx(ctx context.Context, from, to cluster.NodeID, req any) (any, error) {
	return cluster.CallRetry(ctx, t.fabric, from, to, req, t.cfg.RetryAttempts)
}

// Insert adds a point, entering at the root node of the root partition
// (§III-B.1).
func (t *Tree) Insert(p kdtree.Point) error {
	if len(p.Coords) != t.cfg.Dim {
		return fmt.Errorf("core: point has %d coords, tree dimension is %d", len(p.Coords), t.cfg.Dim)
	}
	root := t.rootPartition()
	if _, err := t.call(cluster.ClientID, root.id, insertReq{Node: 0, Point: p}); err != nil {
		return err
	}
	t.size.Add(1)
	return nil
}

// InsertAsync enqueues a point through the fabric's one-way mailbox
// path: the root partition routes it and forwards across partitions
// with fire-and-forget messages, exactly like an MPJ insert pipeline.
// Use Flush to wait for all enqueued points to land. Delivery is
// at-most-once — on a fabric with failure injection, dropped messages
// lose points (Stats().Points reveals the loss).
func (t *Tree) InsertAsync(p kdtree.Point) error {
	if len(p.Coords) != t.cfg.Dim {
		return fmt.Errorf("core: point has %d coords, tree dimension is %d", len(p.Coords), t.cfg.Dim)
	}
	root := t.rootPartition()
	if err := t.fabric.Send(cluster.ClientID, root.id, insertReq{Node: 0, Point: p, Async: true}); err != nil {
		return err
	}
	t.size.Add(1)
	return nil
}

// Flush waits until all asynchronously inserted points have been
// applied, including cross-partition forwards still in flight.
func (t *Tree) Flush() { t.fabric.Flush() }

// DefaultBatchSize is the pipeline batch used by InsertBatchAsync when
// none is given.
const DefaultBatchSize = 64

// InsertBatchAsync enqueues pts through the one-way pipeline in chunks
// of batchSize (DefaultBatchSize when <= 0). Batching amortizes
// per-message cost: this is the bulk-load path the index-building
// benchmarks (Figure 3) measure. Call Flush to wait for completion.
func (t *Tree) InsertBatchAsync(pts []kdtree.Point, batchSize int) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	for i, p := range pts {
		if len(p.Coords) != t.cfg.Dim {
			return fmt.Errorf("core: point %d has %d coords, tree dimension is %d", i, len(p.Coords), t.cfg.Dim)
		}
	}
	root := t.rootPartition()
	for start := 0; start < len(pts); start += batchSize {
		end := start + batchSize
		if end > len(pts) {
			end = len(pts)
		}
		entries := make([]batchEntry, 0, end-start)
		for _, p := range pts[start:end] {
			entries = append(entries, batchEntry{Node: 0, Point: p})
		}
		if err := t.fabric.Send(cluster.ClientID, root.id, insertBatchReq{Entries: entries}); err != nil {
			return err
		}
		t.size.Add(int64(end - start))
	}
	return nil
}

// InsertAll inserts points concurrently with the given number of
// workers ("using M−1 data partitions, we can perform in the best case
// M−1 parallel operations maximizing our throughput" — §III-C). It
// returns the first error; remaining points are still attempted.
func (t *Tree) InsertAll(pts []kdtree.Point, workers int) error {
	if workers <= 1 {
		for _, p := range pts {
			if err := t.Insert(p); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	ch := make(chan kdtree.Point, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if err := t.Insert(p); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for _, p := range pts {
		ch <- p
	}
	close(ch)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// Protocol names reported in ExecStats.Protocol.
const (
	// ProtocolNameParallel is the probe-then-fan-out cross-partition
	// k-NN protocol (hop-overlapping latency path).
	ProtocolNameParallel = "parallel"
	// ProtocolNameSequential is the paper's sequential Rs-forwarding
	// k-NN protocol (§III-B.3; minimal total work).
	ProtocolNameSequential = "sequential"
	// ProtocolNameRange is the border-node fan-out range protocol
	// (§III-B.4).
	ProtocolNameRange = "range"
)

// ExecStats is the per-query execution accounting of the distributed
// engine — the paper's cost model (§V states query cost in messages and
// nodes visited) surfaced per request, so callers can observe what a
// query actually cost and drive admission control or adaptive protocol
// choice from it. Counters are exact sums over every partition the
// query executed on.
type ExecStats struct {
	// NodesVisited counts tree nodes popped and examined (pruned
	// subtrees cost nothing).
	NodesVisited int64
	// BucketsScanned counts leaf buckets whose points were examined.
	BucketsScanned int64
	// DistanceEvals counts point-to-query distance evaluations.
	DistanceEvals int64
	// Partitions counts partition handler executions on behalf of the
	// query (a partition reached through two different paths counts
	// twice — it did the work twice).
	Partitions int
	// FabricMessages counts fabric calls issued for the query,
	// including the client's own call to the root partition.
	FabricMessages int64
	// ProbeMisses counts downstream k-NN calls whose reply did not
	// improve the result-set snapshot they were sent: partitions probed
	// for nothing. A guarded probe that misses is exactly the work a
	// tight enough bound would have skipped, so the count is the direct
	// measure of pruning quality (the `pruning` bench figure plots it
	// against the plane-guard baseline as dimensionality grows) — with
	// an irreducible floor: mandatory routing hops (the partition
	// hosting the query's own region, whose min-distance guard is 0)
	// count as misses when the caller's seed already held all k best,
	// and no bound can skip those. Each call is judged against its own
	// seed, so the count is deterministic for a fixed tree and query.
	ProbeMisses int64
	// Wall is the client-observed execution time of the query,
	// including all fabric transit.
	Wall time.Duration
	// Protocol names the cross-partition protocol used (Protocol*
	// constants).
	Protocol string
}

// fromWire converts aggregated wire stats into the client-facing form,
// charging the client's own root call.
func (s *ExecStats) fromWire(w queryStats) {
	s.NodesVisited = w.Nodes
	s.BucketsScanned = w.Buckets
	s.DistanceEvals = w.Dists
	s.Partitions = int(w.Parts)
	s.FabricMessages = w.Msgs + 1
	s.ProbeMisses = w.Misses
}

// QueryResult is one per-query outcome of a batched search: the
// neighbors, what computing them cost, and the query's own error.
// Batched surfaces report errors per query so one bad query cannot
// poison its batch.
type QueryResult struct {
	Neighbors []kdtree.Neighbor
	Stats     ExecStats
	Err       error
}

// KNearest returns the k points closest to q, ascending by distance
// (ties broken by point ID). The cross-partition protocol is chosen
// per query by the scheduler's cost model (ProtocolAuto): the paper's
// sequential Rs-forwarding when the workload is CPU-bound, the
// probe-then-fan-out when per-hop fabric latency dominates. Both
// protocols return identical results; ExecStats.Protocol names the one
// that ran. The context bounds the query: cancellation or an expired
// deadline aborts the traversal and abandons outstanding partition
// replies.
func (t *Tree) KNearest(ctx context.Context, q []float64, k int) ([]kdtree.Neighbor, error) {
	ns, _, err := t.knn(ctx, q, k, ProtocolAuto)
	return ns, err
}

// KNearestStats is KNearest returning the query's execution stats.
func (t *Tree) KNearestStats(ctx context.Context, q []float64, k int) ([]kdtree.Neighbor, ExecStats, error) {
	return t.knn(ctx, q, k, ProtocolAuto)
}

// knn runs one k-nearest query under the given protocol; ProtocolAuto
// asks the cost model. Both fixed protocols return identical results,
// which the equivalence tests assert. The wire protocol carries squared
// distances (see knnReq); the single deferred sqrt happens here, at the
// client boundary. An already-done context returns its error without
// touching the tree. Completed queries feed their ExecStats back into
// the cost model — the observation loop that makes the choice adaptive.
func (t *Tree) knn(ctx context.Context, q []float64, k int, p Protocol) ([]kdtree.Neighbor, ExecStats, error) {
	auto := p == ProtocolAuto
	if auto {
		p = t.model.choose(t.PartitionCount())
	}
	return t.knnResolved(ctx, q, k, p, auto)
}

// knnResolved is knn after protocol resolution: p is a fixed protocol
// (never ProtocolAuto); auto records whether the cost model chose it,
// for histogram attribution. The Scheduler calls this directly with the
// protocol it priced at admission, so the budget-checked strategy and
// the executed one cannot diverge.
func (t *Tree) knnResolved(ctx context.Context, q []float64, k int, p Protocol, auto bool) ([]kdtree.Neighbor, ExecStats, error) {
	seq := p != ProtocolFanOut
	st := ExecStats{Protocol: ProtocolNameSequential}
	idx := idxSeq
	if !seq {
		st.Protocol = ProtocolNameParallel
		idx = idxFan
	}
	// The ctx check comes first: a cancelled query reports the
	// cancellation, not a validation error about coords it may never
	// have embedded.
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if len(q) != t.cfg.Dim {
		return nil, st, fmt.Errorf("core: query has %d coords, tree dimension is %d", len(q), t.cfg.Dim)
	}
	if k <= 0 || t.size.Load() == 0 {
		return nil, st, nil
	}
	t.model.countChoice(st.Protocol, auto)
	root := t.rootPartition()
	start := time.Now()
	resp, err := t.callCtx(ctx, cluster.ClientID, root.id, knnReq{Node: 0, Query: q, K: k, Seq: seq})
	st.Wall = time.Since(start)
	if err != nil {
		return nil, st, err
	}
	kr := resp.(knnResp)
	st.fromWire(kr.Stats)
	t.model.observeQuery(idx, st)
	out := kr.Rs
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out, st, nil
}

// RangeSearch returns every point within distance d of q, ascending by
// distance (ties broken by point ID). Partitions return unsorted
// squared-distance partial sets (the rangeResp ordering contract); the
// merged result is sorted and square-rooted exactly once, here. The
// context bounds the query like KNearest's.
func (t *Tree) RangeSearch(ctx context.Context, q []float64, d float64) ([]kdtree.Neighbor, error) {
	ns, _, err := t.RangeSearchStats(ctx, q, d)
	return ns, err
}

// RangeSearchStats is RangeSearch returning the query's execution
// stats.
func (t *Tree) RangeSearchStats(ctx context.Context, q []float64, d float64) ([]kdtree.Neighbor, ExecStats, error) {
	st := ExecStats{Protocol: ProtocolNameRange}
	if err := ctx.Err(); err != nil {
		return nil, st, err // before validation, as in knn
	}
	if len(q) != t.cfg.Dim {
		return nil, st, fmt.Errorf("core: query has %d coords, tree dimension is %d", len(q), t.cfg.Dim)
	}
	if d < 0 || t.size.Load() == 0 {
		return nil, st, nil
	}
	root := t.rootPartition()
	start := time.Now()
	resp, err := t.callCtx(ctx, cluster.ClientID, root.id, rangeReq{Node: 0, Query: q, D: d})
	st.Wall = time.Since(start)
	if err != nil {
		return nil, st, err
	}
	rr := resp.(rangeResp)
	st.fromWire(rr.Stats)
	t.model.observeQuery(idxRange, st)
	out := rr.Neighbors
	sort.Slice(out, func(i, j int) bool { return neighborLess(out[i], out[j]) })
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out, st, nil
}

// KNearestBatch answers one k-nearest query per element of qs, running
// a bounded worker pool over the fabric ("using M−1 data partitions, we
// can perform in the best case M−1 parallel operations maximizing our
// throughput" — §III-C, applied to the query path). The cross-partition
// protocol is chosen per query by the cost model (ProtocolAuto): on a
// fast fabric that resolves to the sequential protocol — the pool
// already saturates the partitions and the tightest pruning bound
// minimizes total work — and under dominant hop latency to the
// fan-out; a Scheduler pins a fixed protocol when the caller must.
// workers <= 0 selects GOMAXPROCS. results[i] answers qs[i]; every
// query is attempted and the first per-query error (by index) is
// returned. Once ctx is done no further queries are dispatched.
func (t *Tree) KNearestBatch(ctx context.Context, qs [][]float64, k, workers int) ([][]kdtree.Neighbor, error) {
	return flattenBatch(t.KNearestBatchStats(ctx, qs, k, workers))
}

// KNearestBatchStats is KNearestBatch with per-query outcomes: each
// QueryResult carries the query's neighbors, execution stats and error,
// so one failed query does not poison the batch. Queries never
// dispatched because ctx expired carry the context's error.
func (t *Tree) KNearestBatchStats(ctx context.Context, qs [][]float64, k, workers int) []QueryResult {
	return t.sched.KNearestBatch(ctx, qs, k, workers)
}

// RangeBatch answers one range query per element of qs with a bounded
// worker pool; see KNearestBatch for the pooling and error contract.
func (t *Tree) RangeBatch(ctx context.Context, qs [][]float64, d float64, workers int) ([][]kdtree.Neighbor, error) {
	return flattenBatch(t.RangeBatchStats(ctx, qs, d, workers))
}

// RangeBatchStats is RangeBatch with per-query outcomes; see
// KNearestBatchStats.
func (t *Tree) RangeBatchStats(ctx context.Context, qs [][]float64, d float64, workers int) []QueryResult {
	return t.sched.RangeBatch(ctx, qs, d, workers)
}

// markUndispatched attributes the context error to batch entries the
// worker pool never reached (recognizable by their unset Protocol: a
// dispatched query always stamps one, even on failure).
func markUndispatched(ctx context.Context, out []QueryResult) {
	err := ctx.Err()
	if err == nil {
		return
	}
	for i := range out {
		if out[i].Stats.Protocol == "" && out[i].Err == nil {
			out[i].Err = err
		}
	}
}

// flattenBatch reduces per-query outcomes to the plain slice-of-slices
// shape plus the first error by index.
func flattenBatch(res []QueryResult) ([][]kdtree.Neighbor, error) {
	out := make([][]kdtree.Neighbor, len(res))
	var first error
	for i := range res {
		out[i] = res[i].Neighbors
		if res[i].Err != nil && first == nil {
			first = res[i].Err
		}
	}
	return out, first
}

// RunBatch runs fn(0..n-1) on a bounded worker pool, returning the
// first error after every dispatched call has finished. Workers pull
// indices from a shared counter, so skewed per-item costs balance out;
// once ctx is done, workers stop pulling — already-running calls finish
// (or abort on their own ctx checks) but nothing new is dispatched, and
// the context's error is returned if no earlier error was recorded.
// workers <= 0 selects GOMAXPROCS. It is the one choke point every
// batched surface (tree batches, the facade Searcher) funnels through —
// admission control and quotas belong here.
func RunBatch(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline: single-query facade calls and 1-worker pools should
		// not pay goroutine spawn + WaitGroup sync.
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		errMu sync.Mutex
		first error
	)
	record := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(err)
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return int(t.size.Load()) }

// PartitionCount returns the number of partitions in use.
func (t *Tree) PartitionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts)
}

// Height returns the number of levels of the distributed tree,
// following cross-partition links.
func (t *Tree) Height() (int, error) {
	root := t.rootPartition()
	resp, err := t.call(cluster.ClientID, root.id, heightReq{Node: 0})
	if err != nil {
		return 0, err
	}
	return resp.(heightResp).Height, nil
}

// Stats gathers per-partition statistics through the fabric. The
// partition list is snapshotted first; no tree lock is held while
// messaging (partitions may be spilling concurrently).
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.RLock()
	parts := append([]*partition(nil), t.parts...)
	t.mu.RUnlock()
	st := TreeStats{Partitions: len(parts)}
	for _, p := range parts {
		resp, err := t.call(cluster.ClientID, p.id, statsReq{})
		if err != nil {
			return st, err
		}
		pr := resp.(statsResp)
		st.Points += pr.Points
		st.PartitionPoints = append(st.PartitionPoints, pr.Points)
		st.Nodes += pr.Nodes
		st.Leaves += pr.Leaves
		st.NavSteps += pr.NavSteps
		st.BoxWork += pr.BoxWork
		st.Inserts += p.inserts.Load()
	}
	st.Fabric = t.fabric.Stats()
	return st, nil
}

// Close releases the private fabric when the tree owns one.
func (t *Tree) Close() error {
	if t.ownFabric {
		return t.inner.Close()
	}
	return nil
}

// ErrNotFound is returned by lookups that match nothing.
var ErrNotFound = errors.New("core: not found")
