package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// PartitionInfo is handed to a dynamic capacity check (the run-time
// evaluated resource condition of §III-B.1).
type PartitionInfo struct {
	Points   int // points currently hosted by the partition
	Nodes    int // tree nodes hosted (routing + leaf + tombstones)
	Capacity int // the configured PartitionCapacity
}

// Config configures a distributed SemTree.
type Config struct {
	// Dim is the dimensionality of indexed points (the FastMap k).
	Dim int
	// BucketSize is the leaf capacity Bs. Default 16.
	BucketSize int
	// PartitionCapacity is the number of points a partition may host
	// before the build-partition algorithm fires. 0 disables spilling
	// (a single partition holds everything).
	PartitionCapacity int
	// MaxPartitions is the paper's M: the number of compute nodes
	// available, including the root partition. Default 1.
	MaxPartitions int
	// Fabric carries inter-partition messages. Nil selects a private
	// in-process fabric with zero latency.
	Fabric cluster.Fabric
	// Unbalanced selects the degenerate chain split policy, reproducing
	// the paper's "totally unbalanced" configuration.
	Unbalanced bool
	// RetryAttempts bounds per-message retries on transient fabric
	// failures. Default 3. Retries are safe because delivery failures
	// happen before the handler runs (at-most-once processing).
	RetryAttempts int
	// CapacityCheck, when set, replaces the static points>capacity
	// condition with a dynamic one.
	CapacityCheck func(PartitionInfo) bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("core: dimension %d must be positive", c.Dim)
	}
	if c.BucketSize <= 0 {
		c.BucketSize = kdtree.DefaultBucketSize
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 1
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.PartitionCapacity < 0 {
		return c, fmt.Errorf("core: negative partition capacity %d", c.PartitionCapacity)
	}
	return c, nil
}

// Tree is the distributed SemTree index. The structure is reachable
// only through fabric messages addressed to the root partition, exactly
// as a client of the paper's system would use it. All methods are safe
// for concurrent use.
type Tree struct {
	cfg       Config
	fabric    cluster.Fabric
	ownFabric bool

	mu    sync.RWMutex
	parts []*partition

	size atomic.Int64
}

// TreeStats aggregates the state of every partition plus fabric
// accounting.
type TreeStats struct {
	Points          int
	Partitions      int
	PartitionPoints []int // per-partition hosted points
	Nodes           int
	Leaves          int
	NavSteps        int64 // total nodes traversed by insert descents
	Inserts         int64
	Fabric          cluster.Stats
}

// New creates a distributed SemTree with its root partition.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, fabric: cfg.Fabric}
	if t.fabric == nil {
		t.fabric = cluster.NewInProc(cluster.InProcOptions{})
		t.ownFabric = true
	}
	if _, err := t.addPartition(); err != nil {
		return nil, err
	}
	return t, nil
}

// addPartition registers a new partition on the fabric. The first one
// becomes the root partition.
func (t *Tree) addPartition() (*partition, error) {
	p := &partition{t: t}
	id, err := t.fabric.AddNode(p.handle)
	if err != nil {
		return nil, err
	}
	p.id = id
	t.mu.Lock()
	if len(t.parts) == 0 {
		// The root partition starts with the tree root: one empty
		// leaf at node index 0, where Insert and the searches enter.
		p.nodes = []pnode{{leaf: true}}
	}
	t.parts = append(t.parts, p)
	t.mu.Unlock()
	return p, nil
}

// rootPartition returns the partition holding the tree root.
func (t *Tree) rootPartition() *partition {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts[0]
}

// hasPartitionBudget reports whether more partitions may be created.
func (t *Tree) hasPartitionBudget() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts) < t.cfg.MaxPartitions
}

// allocPartitions creates up to want new partitions, bounded by the
// remaining MaxPartitions budget, and returns their fabric IDs.
func (t *Tree) allocPartitions(want int) []cluster.NodeID {
	t.mu.RLock()
	budget := t.cfg.MaxPartitions - len(t.parts)
	t.mu.RUnlock()
	if want > budget {
		want = budget
	}
	var ids []cluster.NodeID
	for i := 0; i < want; i++ {
		p, err := t.addPartition()
		if err != nil {
			break
		}
		ids = append(ids, p.id)
	}
	return ids
}

// call sends one fabric message with transient-failure retries.
func (t *Tree) call(from, to cluster.NodeID, req any) (any, error) {
	return cluster.CallRetry(t.fabric, from, to, req, t.cfg.RetryAttempts)
}

// Insert adds a point, entering at the root node of the root partition
// (§III-B.1).
func (t *Tree) Insert(p kdtree.Point) error {
	if len(p.Coords) != t.cfg.Dim {
		return fmt.Errorf("core: point has %d coords, tree dimension is %d", len(p.Coords), t.cfg.Dim)
	}
	root := t.rootPartition()
	if _, err := t.call(cluster.ClientID, root.id, insertReq{Node: 0, Point: p}); err != nil {
		return err
	}
	t.size.Add(1)
	return nil
}

// InsertAsync enqueues a point through the fabric's one-way mailbox
// path: the root partition routes it and forwards across partitions
// with fire-and-forget messages, exactly like an MPJ insert pipeline.
// Use Flush to wait for all enqueued points to land. Delivery is
// at-most-once — on a fabric with failure injection, dropped messages
// lose points (Stats().Points reveals the loss).
func (t *Tree) InsertAsync(p kdtree.Point) error {
	if len(p.Coords) != t.cfg.Dim {
		return fmt.Errorf("core: point has %d coords, tree dimension is %d", len(p.Coords), t.cfg.Dim)
	}
	root := t.rootPartition()
	if err := t.fabric.Send(cluster.ClientID, root.id, insertReq{Node: 0, Point: p, Async: true}); err != nil {
		return err
	}
	t.size.Add(1)
	return nil
}

// Flush waits until all asynchronously inserted points have been
// applied, including cross-partition forwards still in flight.
func (t *Tree) Flush() { t.fabric.Flush() }

// DefaultBatchSize is the pipeline batch used by InsertBatchAsync when
// none is given.
const DefaultBatchSize = 64

// InsertBatchAsync enqueues pts through the one-way pipeline in chunks
// of batchSize (DefaultBatchSize when <= 0). Batching amortizes
// per-message cost: this is the bulk-load path the index-building
// benchmarks (Figure 3) measure. Call Flush to wait for completion.
func (t *Tree) InsertBatchAsync(pts []kdtree.Point, batchSize int) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	for i, p := range pts {
		if len(p.Coords) != t.cfg.Dim {
			return fmt.Errorf("core: point %d has %d coords, tree dimension is %d", i, len(p.Coords), t.cfg.Dim)
		}
	}
	root := t.rootPartition()
	for start := 0; start < len(pts); start += batchSize {
		end := start + batchSize
		if end > len(pts) {
			end = len(pts)
		}
		entries := make([]batchEntry, 0, end-start)
		for _, p := range pts[start:end] {
			entries = append(entries, batchEntry{Node: 0, Point: p})
		}
		if err := t.fabric.Send(cluster.ClientID, root.id, insertBatchReq{Entries: entries}); err != nil {
			return err
		}
		t.size.Add(int64(end - start))
	}
	return nil
}

// InsertAll inserts points concurrently with the given number of
// workers ("using M−1 data partitions, we can perform in the best case
// M−1 parallel operations maximizing our throughput" — §III-C). It
// returns the first error; remaining points are still attempted.
func (t *Tree) InsertAll(pts []kdtree.Point, workers int) error {
	if workers <= 1 {
		for _, p := range pts {
			if err := t.Insert(p); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	ch := make(chan kdtree.Point, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				if err := t.Insert(p); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for _, p := range pts {
		ch <- p
	}
	close(ch)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// KNearest returns the k points closest to q, ascending by distance
// (ties broken by point ID). Remote subtrees are searched with the
// probe-then-fan-out protocol of the query engine, which overlaps
// cross-partition hops: single-query latency is bounded by two message
// waves instead of one hop per visited partition. For bulk workloads
// prefer KNearestBatch, which minimizes total work instead.
func (t *Tree) KNearest(q []float64, k int) ([]kdtree.Neighbor, error) {
	return t.knn(q, k, false)
}

// knn runs one k-nearest query. seq selects the paper's sequential
// Rs-forwarding protocol (§III-B.3) instead of the parallel fan-out;
// both return identical results, which the equivalence tests assert.
// The wire protocol carries squared distances (see knnReq); the single
// deferred sqrt happens here, at the client boundary.
func (t *Tree) knn(q []float64, k int, seq bool) ([]kdtree.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has %d coords, tree dimension is %d", len(q), t.cfg.Dim)
	}
	if k <= 0 || t.size.Load() == 0 {
		return nil, nil
	}
	root := t.rootPartition()
	resp, err := t.call(cluster.ClientID, root.id, knnReq{Node: 0, Query: q, K: k, Seq: seq})
	if err != nil {
		return nil, err
	}
	out := resp.(knnResp).Rs
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out, nil
}

// RangeSearch returns every point within distance d of q, ascending by
// distance (ties broken by point ID). Partitions return unsorted
// squared-distance partial sets (the rangeResp ordering contract); the
// merged result is sorted and square-rooted exactly once, here.
func (t *Tree) RangeSearch(q []float64, d float64) ([]kdtree.Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return nil, fmt.Errorf("core: query has %d coords, tree dimension is %d", len(q), t.cfg.Dim)
	}
	if d < 0 || t.size.Load() == 0 {
		return nil, nil
	}
	root := t.rootPartition()
	resp, err := t.call(cluster.ClientID, root.id, rangeReq{Node: 0, Query: q, D: d})
	if err != nil {
		return nil, err
	}
	out := resp.(rangeResp).Neighbors
	sort.Slice(out, func(i, j int) bool { return neighborLess(out[i], out[j]) })
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out, nil
}

// KNearestBatch answers one k-nearest query per element of qs, running
// a bounded worker pool over the fabric ("using M−1 data partitions, we
// can perform in the best case M−1 parallel operations maximizing our
// throughput" — §III-C, applied to the query path). Each query uses the
// sequential cross-partition protocol: the pool already saturates the
// partitions, so the per-query fan-out would only inflate total work —
// the tightest pruning bound per query maximizes batch throughput, and
// both protocols return identical results. workers <= 0 selects
// GOMAXPROCS. results[i] answers qs[i]; every query is attempted and
// the first error encountered is returned.
func (t *Tree) KNearestBatch(qs [][]float64, k, workers int) ([][]kdtree.Neighbor, error) {
	out := make([][]kdtree.Neighbor, len(qs))
	err := RunBatch(len(qs), workers, func(i int) error {
		ns, err := t.knn(qs[i], k, true)
		out[i] = ns
		return err
	})
	return out, err
}

// RangeBatch answers one range query per element of qs with a bounded
// worker pool; see KNearestBatch for the pooling and error contract.
func (t *Tree) RangeBatch(qs [][]float64, d float64, workers int) ([][]kdtree.Neighbor, error) {
	out := make([][]kdtree.Neighbor, len(qs))
	err := RunBatch(len(qs), workers, func(i int) error {
		ns, err := t.RangeSearch(qs[i], d)
		out[i] = ns
		return err
	})
	return out, err
}

// RunBatch runs fn(0..n-1) on a bounded worker pool, returning the
// first error after every call has finished. Workers pull indices from
// a shared counter, so skewed per-item costs balance out. workers <= 0
// selects GOMAXPROCS. It is the one choke point every batched surface
// (tree batches, the facade Searcher) funnels through — admission
// control and quotas belong here.
func RunBatch(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline: single-query facade calls and 1-worker pools should
		// not pay goroutine spawn + WaitGroup sync.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		errMu sync.Mutex
		first error
	)
	record := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(err)
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return int(t.size.Load()) }

// PartitionCount returns the number of partitions in use.
func (t *Tree) PartitionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts)
}

// Height returns the number of levels of the distributed tree,
// following cross-partition links.
func (t *Tree) Height() (int, error) {
	root := t.rootPartition()
	resp, err := t.call(cluster.ClientID, root.id, heightReq{Node: 0})
	if err != nil {
		return 0, err
	}
	return resp.(heightResp).Height, nil
}

// Stats gathers per-partition statistics through the fabric. The
// partition list is snapshotted first; no tree lock is held while
// messaging (partitions may be spilling concurrently).
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.RLock()
	parts := append([]*partition(nil), t.parts...)
	t.mu.RUnlock()
	st := TreeStats{Partitions: len(parts)}
	for _, p := range parts {
		resp, err := t.call(cluster.ClientID, p.id, statsReq{})
		if err != nil {
			return st, err
		}
		pr := resp.(statsResp)
		st.Points += pr.Points
		st.PartitionPoints = append(st.PartitionPoints, pr.Points)
		st.Nodes += pr.Nodes
		st.Leaves += pr.Leaves
		st.NavSteps += pr.NavSteps
		st.Inserts += p.inserts.Load()
	}
	st.Fabric = t.fabric.Stats()
	return st, nil
}

// Close releases the private fabric when the tree owns one.
func (t *Tree) Close() error {
	if t.ownFabric {
		return t.fabric.Close()
	}
	return nil
}

// ErrNotFound is returned by lookups that match nothing.
var ErrNotFound = errors.New("core: not found")
