package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"semtree/internal/kdtree"
)

// buildChurnedTree builds a multi-partition tree the hard way — bulk
// load, single inserts, a repack pass — so its snapshot exercises
// tombstones, cross-partition edges and remote-box caches, not just a
// pristine bulk layout.
func buildChurnedTree(t *testing.T, r *rand.Rand) (*Tree, []kdtree.Point) {
	t.Helper()
	const dim = 4
	pts := clusteredPoints(r, 1500, dim, 4)
	tr := mustTree(t, Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 120, MaxPartitions: 6,
		Placement: PlacementRoundRobin, // leave work for the repacker
	})
	if err := tr.BulkLoad(context.Background(), pts[:1000]); err != nil {
		t.Fatal(err)
	}
	extra := pts[1000:]
	if err := tr.InsertAll(extra, 2); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	if _, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 4}); err != nil {
		t.Fatal(err)
	}
	if tr.PartitionCount() < 2 {
		t.Fatalf("tree did not distribute: %d partitions", tr.PartitionCount())
	}
	return tr, pts
}

// TestSnapshotRestoreByteIdentical is the restore contract: encode,
// decode, restore on a fresh fabric — every k-NN and range query over
// the restored tree answers byte-identically to the original, across
// both protocols, and the restored region metadata is exact.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	tr, pts := buildChurnedTree(t, r)

	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTree(Config{Dim: 1, BucketSize: 8, PartitionCapacity: 120, MaxPartitions: 2}, decoded)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restored.Close() })

	if restored.Len() != tr.Len() {
		t.Fatalf("restored %d points, want %d", restored.Len(), tr.Len())
	}
	if restored.PartitionCount() != tr.PartitionCount() {
		t.Fatalf("restored %d partitions, want %d", restored.PartitionCount(), tr.PartitionCount())
	}
	checkPartitionBoxes(t, restored)

	for _, proto := range []Protocol{ProtocolSequential, ProtocolFanOut} {
		os := tr.NewScheduler(SchedulerConfig{Protocol: proto})
		rs := restored.NewScheduler(SchedulerConfig{Protocol: proto})
		for trial := 0; trial < 25; trial++ {
			q := clusteredPoints(r, 1, 4, 4)[0].Coords
			a, _, err := os.KNearest(context.Background(), q, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := rs.KNearest(context.Background(), q, 7)
			if err != nil {
				t.Fatal(err)
			}
			sameNeighbors(t, b, a, "%v knn trial %d", proto, trial)
			if want := bruteKNN(pts, q, 7); !sameIDSets(b, want) {
				t.Fatalf("%v trial %d: restored tree disagrees with brute force", proto, trial)
			}
		}
	}
	for trial := 0; trial < 15; trial++ {
		q := clusteredPoints(r, 1, 4, 4)[0].Coords
		a, err := tr.RangeSearch(context.Background(), q, 6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.RangeSearch(context.Background(), q, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, b, a, "range trial %d", trial)
	}

	// The restored fleet stays live: it keeps absorbing inserts and
	// answering correctly afterwards.
	more := clusteredPoints(r, 100, 4, 4)
	for i := range more {
		more[i].ID = uint64(len(pts) + i)
	}
	if err := restored.InsertAll(more, 1); err != nil {
		t.Fatal(err)
	}
	restored.Flush()
	all := append(append([]kdtree.Point(nil), pts...), more...)
	q := clusteredPoints(r, 1, 4, 4)[0].Coords
	got, err := restored.KNearest(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteKNN(all, q, 5); !sameIDSets(got, want) {
		t.Fatal("restored tree wrong after post-restore inserts")
	}
}

// TestSnapshotRequiresQuiescence: a migration caught in flight refuses
// the snapshot instead of serializing a torn state.
func TestSnapshotRequiresQuiescence(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	tr := mustTree(t, Config{Dim: 3, BucketSize: 4})
	if err := tr.InsertAll(randomPoints(r, 50, 3), 1); err != nil {
		t.Fatal(err)
	}
	p := tr.rootPartition()
	p.mu.Lock()
	p.nodes[0].migrating = true
	p.mu.Unlock()
	if _, err := tr.Snapshot(); err == nil {
		t.Fatal("snapshot of a migrating partition accepted")
	}
	p.mu.Lock()
	p.nodes[0].migrating = false
	p.mu.Unlock()
	if _, err := tr.Snapshot(); err != nil {
		t.Fatalf("quiesced snapshot refused: %v", err)
	}
}

// mustSnap builds a small valid snapshot to corrupt.
func mustSnap(t *testing.T) *TreeSnapshot {
	t.Helper()
	r := rand.New(rand.NewSource(101))
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 4,
		PartitionCapacity: 40, MaxPartitions: 4,
	})
	if err := tr.BulkLoad(context.Background(), clusteredPoints(r, 400, 3, 3)); err != nil {
		t.Fatal(err)
	}
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	return snap
}

// findNode locates the first node matching pred, for targeted
// corruption.
func findNode(t *testing.T, s *TreeSnapshot, pred func(n *SnapNode) bool) (int, int) {
	t.Helper()
	for pi := range s.Parts {
		for ni := range s.Parts[pi].Nodes {
			if pred(&s.Parts[pi].Nodes[ni]) {
				return pi, ni
			}
		}
	}
	t.Fatal("no node matches predicate")
	return 0, 0
}

// TestSnapshotValidateRejects corrupts a valid snapshot one invariant
// at a time; every mutation must be rejected with ErrSnapshotCorrupt.
func TestSnapshotValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(t *testing.T, s *TreeSnapshot)
	}{
		{"wrong-format", func(t *testing.T, s *TreeSnapshot) { s.Format = 99 }},
		{"zero-dim", func(t *testing.T, s *TreeSnapshot) { s.Dim = 0 }},
		{"huge-dim", func(t *testing.T, s *TreeSnapshot) { s.Dim = 1 << 20 }},
		{"no-parts", func(t *testing.T, s *TreeSnapshot) { s.Parts = nil }},
		{"empty-root", func(t *testing.T, s *TreeSnapshot) { s.Parts[0].Nodes = nil }},
		{"size-mismatch", func(t *testing.T, s *TreeSnapshot) { s.Size++ }},
		{"points-mismatch", func(t *testing.T, s *TreeSnapshot) { s.Parts[0].Points++; s.Size++ }},
		{"dangling-child", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return !n.Leaf && !n.Moved })
			s.Parts[pi].Nodes[ni].Left = SnapRef{Part: 9999, Node: 0}
		}},
		{"leaf-and-tombstone", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return n.Leaf })
			s.Parts[pi].Nodes[ni].Moved = true
		}},
		{"routing-with-bucket", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return !n.Leaf && !n.Moved })
			s.Parts[pi].Nodes[ni].Bucket = []kdtree.Point{{Coords: []float64{1, 2, 3}}}
		}},
		{"split-dim-out-of-range", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return !n.Leaf && !n.Moved })
			s.Parts[pi].Nodes[ni].SplitDim = 7
		}},
		{"inexact-leaf-box", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return n.Leaf && len(n.Bucket) > 0 })
			s.Parts[pi].Nodes[ni].Lo[0] -= 1
		}},
		{"inexact-routing-box", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return !n.Leaf && !n.Moved && n.Lo != nil })
			s.Parts[pi].Nodes[ni].Hi[0] += 1
		}},
		{"wrong-point-dims", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return n.Leaf && len(n.Bucket) > 0 })
			s.Parts[pi].Nodes[ni].Bucket[0] = kdtree.Point{Coords: []float64{1}}
		}},
		{"orphan-node", func(t *testing.T, s *TreeSnapshot) {
			// A reachable-looking leaf nobody points at: the bucket is
			// counted so Points/Size stay consistent, making
			// reachability the only detector.
			s.Parts[0].Nodes = append(s.Parts[0].Nodes, SnapNode{
				Leaf:   true,
				Bucket: []kdtree.Point{{Coords: []float64{5, 5, 5}, ID: 999999}},
				Lo:     []float64{5, 5, 5}, Hi: []float64{5, 5, 5},
			})
			s.Parts[0].Points++
			s.Size++
		}},
		{"cycle", func(t *testing.T, s *TreeSnapshot) {
			pi, ni := findNode(t, s, func(n *SnapNode) bool { return !n.Leaf && !n.Moved })
			s.Parts[pi].Nodes[ni].Right = SnapRef{} // back to the root
		}},
		{"stale-remote-box", func(t *testing.T, s *TreeSnapshot) {
			var found bool
			for pi := range s.Parts {
				if len(s.Parts[pi].Remote) > 0 {
					s.Parts[pi].Remote[0].Hi[0] += 1
					found = true
					break
				}
			}
			if !found {
				t.Skip("no remote-box entries in this layout")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := mustSnap(t)
			tc.mut(t, snap)
			err := snap.Validate()
			if err == nil {
				t.Fatal("corrupted snapshot validated")
			}
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("error %v does not wrap ErrSnapshotCorrupt", err)
			}
			if _, rerr := RestoreTree(Config{Dim: 3}, snap); rerr == nil {
				t.Fatal("RestoreTree accepted a corrupt snapshot")
			}
		})
	}
}

// TestSnapshotValidateDeepChain: validation must walk a maximally deep
// (chain-shaped) snapshot iteratively — a recursive walk would
// overflow the stack long before 200k levels.
func TestSnapshotValidateDeepChain(t *testing.T) {
	const depth = 200_000
	nodes := make([]SnapNode, 0, 2*depth+1)
	// Node 2i is the routing spine; 2i+1 the left leaf; the last spine
	// slot is a leaf. Every leaf holds one point at x = its level, so
	// all boxes are computable in one pass from the bottom up.
	pt := func(v float64, id uint64) kdtree.Point {
		return kdtree.Point{Coords: []float64{v}, ID: id}
	}
	for i := 0; i < depth; i++ {
		nodes = append(nodes,
			SnapNode{ // spine routing node; box filled below
				SplitDim: 0, SplitVal: float64(i),
				Left:  SnapRef{Node: int32(2*i + 1)},
				Right: SnapRef{Node: int32(2*i + 2)},
			},
			SnapNode{ // left leaf
				Leaf:   true,
				Bucket: []kdtree.Point{pt(float64(i), uint64(i))},
				Lo:     []float64{float64(i)}, Hi: []float64{float64(i)},
			})
	}
	nodes = append(nodes, SnapNode{ // chain terminator
		Leaf:   true,
		Bucket: []kdtree.Point{pt(depth, depth)},
		Lo:     []float64{depth}, Hi: []float64{depth},
	})
	for i := 0; i < depth; i++ {
		nodes[2*i].Lo = []float64{float64(i)}
		nodes[2*i].Hi = []float64{depth}
	}
	snap := &TreeSnapshot{
		Format: SnapshotFormat, Dim: 1, Size: depth + 1,
		Parts: []PartitionSnapshot{{Nodes: nodes, Points: depth + 1}},
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("deep chain rejected: %v", err)
	}
	// And the corrupt variant — a cycle closing at the very bottom —
	// must come back as a typed error, not a stack overflow.
	snap.Parts[0].Nodes[2*(depth-1)].Right = SnapRef{}
	err := snap.Validate()
	if err == nil || !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("deep cycle: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestDecodeSnapshotCorrupt: garbage and truncated encodings come back
// as ErrSnapshotCorrupt, never a panic.
func TestDecodeSnapshotCorrupt(t *testing.T) {
	if _, err := DecodeSnapshot(strings.NewReader("not a snapshot")); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("garbage: %v", err)
	}
	snap := mustSnap(t)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, buf.Len() / 2, buf.Len() - 1} {
		if _, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()[:cut])); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncated at %d: %v", cut, err)
		}
	}
}

// FuzzPartitionRestore: arbitrary bytes through decode → validate →
// restore must never panic, OOM, or install a tree that breaks on
// queries; every rejection is ErrSnapshotCorrupt.
func FuzzPartitionRestore(f *testing.F) {
	// Seeds: a real snapshot, truncations of it, version skew, garbage.
	r := rand.New(rand.NewSource(103))
	tr, err := New(Config{Dim: 3, BucketSize: 4, PartitionCapacity: 40, MaxPartitions: 3})
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.BulkLoad(context.Background(), clusteredPoints(r, 200, 3, 2)); err != nil {
		f.Fatal(err)
	}
	snap, err := tr.Snapshot()
	tr.Close()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := EncodeSnapshot(&valid, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("go away"))
	skew := *snap
	skew.Format = 41
	var skewed bytes.Buffer
	if err := EncodeSnapshot(&skewed, &skew); err != nil {
		f.Fatal(err)
	}
	f.Add(skewed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			// Bound the decoder's work; a mutated length prefix can
			// legally demand enormous (slow, GC-heavy) allocations
			// that starve the fuzz engine without finding anything.
			return
		}
		s, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrSnapshotCorrupt", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("validate error %v does not wrap ErrSnapshotCorrupt", err)
			}
			return
		}
		// A snapshot that validates must restore and answer queries.
		// Bound the work: a huge (but internally consistent) synthetic
		// snapshot is a resource test, not a correctness one.
		if len(s.Parts) > 16 || s.Size > 1<<16 {
			return
		}
		restored, err := RestoreTree(Config{BucketSize: 4}, s)
		if err != nil {
			t.Fatalf("validated snapshot failed to restore: %v", err)
		}
		defer restored.Close()
		q := make([]float64, s.Dim)
		if _, err := restored.KNearest(context.Background(), q, 3); err != nil {
			t.Fatalf("restored tree failed a query: %v", err)
		}
	})
}
