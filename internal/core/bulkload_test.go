package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"semtree/internal/kdtree"
)

// sameNeighbors asserts byte-identical ranked results: same length,
// same point IDs, bit-equal distances, in the same order.
func sameNeighbors(t *testing.T, got, want []kdtree.Neighbor, format string, args ...any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf(format+": %d results, want %d", append(args, len(got), len(want))...)
	}
	for i := range got {
		if got[i].Point.ID != want[i].Point.ID || got[i].Dist != want[i].Dist {
			t.Fatalf(format+": rank %d = (%d, %v), want (%d, %v)",
				append(args, i, got[i].Point.ID, got[i].Dist, want[i].Point.ID, want[i].Dist)...)
		}
	}
}

// TestBulkLoadMatchesIncremental is the metamorphic oracle for the
// write path: a tree bulk-loaded from scratch and a tree built by
// one-at-a-time inserts over the same points must answer every k-NN
// and range query byte-identically — across both k-NN protocols and
// both placement policies — and the bulk-loaded tree's region metadata
// must be exact.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	for _, pol := range []struct {
		name   string
		policy PlacementPolicy
	}{{"box", PlacementBox}, {"roundrobin", PlacementRoundRobin}} {
		t.Run(pol.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(67))
			const dim = 5
			pts := clusteredPoints(r, 2000, dim, 4)
			cfg := Config{
				Dim: dim, BucketSize: 8,
				PartitionCapacity: 150, MaxPartitions: 6,
				Placement: pol.policy,
			}
			bulk := mustTree(t, cfg)
			if err := bulk.BulkLoad(context.Background(), pts); err != nil {
				t.Fatal(err)
			}
			incr := mustTree(t, cfg)
			if err := incr.InsertAll(pts, 1); err != nil {
				t.Fatal(err)
			}
			incr.Flush()
			if bulk.Len() != len(pts) || incr.Len() != len(pts) {
				t.Fatalf("sizes: bulk %d, incremental %d, want %d", bulk.Len(), incr.Len(), len(pts))
			}
			checkPartitionBoxes(t, bulk)
			if bulk.PartitionCount() < 2 {
				t.Fatalf("bulk load did not distribute: %d partitions", bulk.PartitionCount())
			}

			for _, proto := range []Protocol{ProtocolSequential, ProtocolFanOut} {
				bs := bulk.NewScheduler(SchedulerConfig{Protocol: proto})
				is := incr.NewScheduler(SchedulerConfig{Protocol: proto})
				for trial := 0; trial < 25; trial++ {
					q := clusteredPoints(r, 1, dim, 4)[0].Coords
					a, _, err := bs.KNearest(context.Background(), q, 7)
					if err != nil {
						t.Fatal(err)
					}
					b, _, err := is.KNearest(context.Background(), q, 7)
					if err != nil {
						t.Fatal(err)
					}
					sameNeighbors(t, a, b, "%v knn trial %d", proto, trial)
					if want := bruteKNN(pts, q, 7); !sameIDSets(a, want) {
						t.Fatalf("%v trial %d: bulk tree disagrees with brute force", proto, trial)
					}
				}
			}
			for trial := 0; trial < 15; trial++ {
				q := clusteredPoints(r, 1, dim, 4)[0].Coords
				a, err := bulk.RangeSearch(context.Background(), q, 8)
				if err != nil {
					t.Fatal(err)
				}
				b, err := incr.RangeSearch(context.Background(), q, 8)
				if err != nil {
					t.Fatal(err)
				}
				sameNeighbors(t, a, b, "range trial %d", trial)
			}
		})
	}
}

// TestBulkLoadIntoLiveTree grafts a bulk batch into a tree that
// already holds data: the merged tree must agree byte-identically with
// the fully incremental build and keep exact boxes, for both placement
// policies.
func TestBulkLoadIntoLiveTree(t *testing.T) {
	for _, pol := range []struct {
		name   string
		policy PlacementPolicy
	}{{"box", PlacementBox}, {"roundrobin", PlacementRoundRobin}} {
		t.Run(pol.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(71))
			const dim = 4
			base := clusteredPoints(r, 900, dim, 3)
			batch := clusteredPoints(r, 1100, dim, 3)
			for i := range batch {
				batch[i].ID = uint64(len(base) + i)
			}
			cfg := Config{
				Dim: dim, BucketSize: 8,
				PartitionCapacity: 120, MaxPartitions: 5,
				Placement: pol.policy,
			}
			live := mustTree(t, cfg)
			if err := live.InsertAll(base, 1); err != nil {
				t.Fatal(err)
			}
			live.Flush()
			if err := live.BulkLoad(context.Background(), batch); err != nil {
				t.Fatal(err)
			}
			incr := mustTree(t, cfg)
			all := append(append([]kdtree.Point(nil), base...), batch...)
			if err := incr.InsertAll(all, 1); err != nil {
				t.Fatal(err)
			}
			incr.Flush()
			if live.Len() != len(all) {
				t.Fatalf("merged size %d, want %d", live.Len(), len(all))
			}
			st, err := live.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Points != len(all) {
				t.Fatalf("partition points %d, want %d", st.Points, len(all))
			}
			checkPartitionBoxes(t, live)

			for trial := 0; trial < 25; trial++ {
				q := clusteredPoints(r, 1, dim, 3)[0].Coords
				a, err := live.KNearest(context.Background(), q, 6)
				if err != nil {
					t.Fatal(err)
				}
				if want := bruteKNN(all, q, 6); !sameIDSets(a, want) {
					t.Fatalf("trial %d: merged tree disagrees with brute force", trial)
				}
				b, err := incr.KNearest(context.Background(), q, 6)
				if err != nil {
					t.Fatal(err)
				}
				if !sameDistances(a, b) {
					t.Fatalf("trial %d: merged vs incremental distances differ", trial)
				}
			}
		})
	}
}

// TestBulkLoadRepeatedBatches drives the tree through many successive
// bulk loads — first building from empty, then growing — asserting box
// exactness after every single load (the ISSUE's CheckBoxes-after-
// every-bulk-load clause) and oracle agreement at the end.
func TestBulkLoadRepeatedBatches(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	const dim = 4
	tr := mustTree(t, Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 100, MaxPartitions: 6,
	})
	var all []kdtree.Point
	for round := 0; round < 6; round++ {
		batch := clusteredPoints(r, 300, dim, 3)
		for i := range batch {
			batch[i].ID = uint64(len(all) + i)
		}
		if err := tr.BulkLoad(context.Background(), batch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		all = append(all, batch...)
		if tr.Len() != len(all) {
			t.Fatalf("round %d: size %d, want %d", round, tr.Len(), len(all))
		}
		checkPartitionBoxes(t, tr)
	}
	for trial := 0; trial < 20; trial++ {
		q := clusteredPoints(r, 1, dim, 3)[0].Coords
		got, err := tr.KNearest(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(all, q, 5); !sameIDSets(got, want) {
			t.Fatalf("trial %d: disagrees with brute force", trial)
		}
	}
}

// TestBulkLoadRejectsWrongDims: dimension mismatches fail before any
// mutation; the empty batch is a no-op.
func TestBulkLoadRejectsWrongDims(t *testing.T) {
	tr := mustTree(t, Config{Dim: 3, BucketSize: 4})
	if err := tr.BulkLoad(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	bad := []kdtree.Point{{Coords: []float64{1, 2}, ID: 0}}
	if err := tr.BulkLoad(context.Background(), bad); err == nil {
		t.Fatal("2-dim point accepted by a 3-dim tree")
	}
	if tr.Len() != 0 {
		t.Fatalf("failed bulk load mutated the tree: %d points", tr.Len())
	}
}

// TestBulkLoadChurnConcurrent is the churn invariant test: bulk loads,
// single inserts, k-NN queries and repack passes all race on one live
// fabric. After quiescence the tree must hold exactly the union of
// everything ingested, with exact boxes, oracle-identical answers, and
// no leaked goroutines.
func TestBulkLoadChurnConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	const dim, clusters = 5, 4
	seed := clusteredPoints(r, 600, dim, clusters)
	extra := clusteredPoints(r, 400, dim, clusters)
	for i := range extra {
		extra[i].ID = uint64(len(seed) + i)
	}
	// Four bulk batches with disjoint ID ranges after the singles.
	batches := make([][]kdtree.Point, 4)
	next := len(seed) + len(extra)
	for b := range batches {
		batches[b] = clusteredPoints(r, 250, dim, clusters)
		for i := range batches[b] {
			batches[b][i].ID = uint64(next)
			next++
		}
	}

	tr := mustTree(t, Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 90, MaxPartitions: 6,
		Placement: PlacementRoundRobin, // leave work for the repacker
	})
	if err := tr.InsertAll(seed, 1); err != nil {
		t.Fatal(err)
	}
	// Baseline after the fabric and partitions exist: the churn itself
	// must not leak goroutines (the fabric's own close in Cleanup).
	base := runtime.NumGoroutine() + 4

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	// Bulk loader: successive batches graft into the live tree.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range batches {
			if err := tr.BulkLoad(context.Background(), b); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Inserters: two workers splitting the extra points.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(extra); i += 2 {
				if err := tr.Insert(extra[i]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Queriers: results must stay well-formed mid-churn (the exact
	// oracle check happens after quiescence).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := clusteredPoints(qr, 1, dim, clusters)[0].Coords
				ns, err := tr.KNearest(context.Background(), q, 5)
				if err != nil {
					errc <- err
					return
				}
				for j := 1; j < len(ns); j++ {
					if ns[j].Dist < ns[j-1].Dist {
						errc <- errOutOfOrder
						return
					}
				}
			}
		}(int64(83 + w))
	}
	// Repacker: small budgets, many passes, racing everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := tr.Repack(context.Background(), RepackConfig{MaxMoves: 3}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	tr.Flush()
	checkPartitionBoxes(t, tr)
	all := append(append([]kdtree.Point(nil), seed...), extra...)
	for _, b := range batches {
		all = append(all, b...)
	}
	stats, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != len(all) {
		t.Fatalf("points after churn = %d, want %d", stats.Points, len(all))
	}
	if stats.BoxWork <= 0 {
		t.Fatalf("box-maintenance counter never moved: %d", stats.BoxWork)
	}
	for trial := 0; trial < 15; trial++ {
		q := clusteredPoints(r, 1, dim, clusters)[0].Coords
		got, err := tr.KNearest(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(all, q, 5); !sameIDSets(got, want) {
			t.Fatalf("trial %d: churned tree disagrees with brute force", trial)
		}
	}
	waitGoroutines(t, base)
}
