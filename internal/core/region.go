package core

import (
	"math"

	"semtree/internal/kdtree"
)

// Region metadata for the distributed tree: every pnode carries the
// exact bounding box of its logical subtree, and every cross-partition
// edge has the remote subtree's box cached on the near side
// (partition.remoteBoxes). The search guard everywhere is the exact
// squared minimum distance from the query to the subtree's box
// (kdtree.BoxMinSq), which subsumes the paper's splitting-plane bound
// (§III-B.3): the box lies entirely beyond the plane, so the box guard
// is never looser, and it tightens with dimensionality exactly where
// the one-dimensional plane guard degrades. Config.PlaneGuardOnly
// restores the plane bound for ablation; both guards admit exactly the
// same result sets (pruning is on the strict inequality against the
// k-th best), which the equivalence tests pin.

// box is one cached bounding box. lo is nil only transiently (entries
// are installed with real boxes); an empty box is never cached.
type box struct {
	lo, hi []float64
}

// copyBox clones a box so no two partitions alias the same backing
// arrays (each side keeps expanding its own).
func copyBox(lo, hi []float64) box {
	return box{
		lo: append([]float64(nil), lo...),
		hi: append([]float64(nil), hi...),
	}
}

// expandBox grows a pnode's box to include c; the first point
// materializes it.
func (n *pnode) expandBox(c []float64) {
	n.lo, n.hi = kdtree.ExpandBox(n.lo, n.hi, c)
}

// childBoxMinSq returns the exact squared min distance from q to the
// subtree behind ref, and whether the region is known. Local children
// always are (an empty local subtree is +Inf: nothing there to find);
// a tombstone resolves through the remote-box cache like the direct
// edge it forwards to; a remote edge with no cached box — possible
// only transiently — reports unknown so callers fall back to the
// splitting-plane bound. Callers hold at least the read lock.
func (p *partition) childBoxMinSq(ref childRef, q []float64) (float64, bool) {
	if p.local(ref) {
		n := &p.nodes[ref.Node]
		if n.moved {
			if b, ok := p.remoteBoxes[n.fwd]; ok {
				return kdtree.BoxMinSq(q, b.lo, b.hi), true
			}
			return 0, false
		}
		if n.lo == nil {
			return math.Inf(1), true
		}
		return kdtree.BoxMinSq(q, n.lo, n.hi), true
	}
	if b, ok := p.remoteBoxes[ref]; ok {
		return kdtree.BoxMinSq(q, b.lo, b.hi), true
	}
	return 0, false
}

// guardSq computes the k-NN backtracking guard for a child: the exact
// region min-distance when known (never looser than the plane bound),
// the squared splitting-plane distance otherwise, or the plane bound
// alone under Config.PlaneGuardOnly.
func (p *partition) guardSq(ref childRef, q []float64, planeSq float64) float64 {
	if p.t.cfg.PlaneGuardOnly {
		return planeSq
	}
	if minSq, ok := p.childBoxMinSq(ref, q); ok && minSq > planeSq {
		return minSq
	}
	return planeSq
}

// expandPathBoxes grows the box of every node on an insert descent
// path to include c. Expansion is idempotent, so a path that revisits
// a node (an insert resumed after a concurrent split) is harmless.
// Tombstones are skipped: a path leaf can be moved by a concurrent
// spill between the descent's read lock and this write lock, and a
// tombstone's box must stay cleared (its region lives on in the edge
// cache). Callers hold the write lock.
func (p *partition) expandPathBoxes(path []int32, c []float64) {
	for _, idx := range path {
		if n := &p.nodes[idx]; !n.moved {
			n.expandBox(c)
			p.boxWork++
		}
	}
}

// boxContains reports whether the materialized box [lo, hi] already
// covers c (false for an empty box).
func boxContains(lo, hi, c []float64) bool {
	if lo == nil {
		return false
	}
	for d, v := range c {
		if v < lo[d] || v > hi[d] {
			return false
		}
	}
	return true
}

// forwardNeedsExpand reports, under the read lock, whether forwarding
// a point through ref still requires growing any recorded path box or
// the edge's cached box. False is the warm path — the point falls
// inside every region it routes through, so the forward can skip the
// write lock entirely instead of contending with query read locks
// that span whole traversals (including synchronous downstream hops).
func (p *partition) forwardNeedsExpand(path []int32, ref childRef, c []float64) bool {
	for _, idx := range path {
		if n := &p.nodes[idx]; !n.moved && !boxContains(n.lo, n.hi, c) {
			return true
		}
	}
	if b, ok := p.remoteBoxes[ref]; ok && !boxContains(b.lo, b.hi, c) {
		return true
	}
	return false
}

// expandRemoteBox grows the cached box of a cross-partition edge the
// insert is about to forward through: the point will land beneath that
// remote subtree, so its region grows here exactly as it will there.
// No entry means no cached region (the guard falls back to the plane
// bound); forwarding must not invent one from a single point. Callers
// hold the write lock.
func (p *partition) expandRemoteBox(ref childRef, c []float64) {
	if b, ok := p.remoteBoxes[ref]; ok {
		b.lo, b.hi = kdtree.ExpandBox(b.lo, b.hi, c)
		p.remoteBoxes[ref] = b
		p.boxWork++
	}
}
