//semtree:clocksealed — scheduler, quota, and cost-model logic reads time only through the injected clock seam

package core

import (
	"sync"
	"time"

	"semtree/internal/cluster"
)

// This file is the online cost model of the self-tuning query
// scheduler. The paper's §V states query cost in messages and nodes
// visited; the model estimates the two unit prices behind that cost —
// per-hop fabric latency and per-node compute — from the ExecStats
// stream every query already reports, and prices both cross-partition
// k-NN protocols with them:
//
//	sequential wall ≈ messages × hop + nodes × compute   (serial hops)
//	fan-out wall    ≈ waves    × hop + nodes × compute   (≤ 3 waves)
//
// The shape parameters (messages and nodes per query, per protocol) are
// structural: they depend on the tree, the workload and the pruning
// guard, not on the network, so their EWMAs stay valid when the
// fabric's latency changes — and when the region (bounding-box) guard
// cuts messages and nodes below what the splitting-plane bound needed,
// the savings flow into these same EWMAs from the ExecStats stream and
// ProtocolAuto re-prices both protocols on the pruned shapes
// automatically.
// Only hop and compute are re-observed continuously — hop from the
// round-trip time of leaf calls (calls whose response reports zero
// downstream messages, so RTT = transit + local compute), compute from
// timed hop-free local traversals — which is what lets the protocol
// choice track a latency change within a handful of queries even while
// only one protocol is being exercised.

const (
	// ewmaAlpha is the weight of a new sample in every estimate. The
	// half-life is ln(2)/ln(1/(1−α)) ≈ 2.4 samples: an estimate crosses
	// 90% of a step change after 8 samples. A multi-partition query
	// contributes one leaf-call hop sample per terminal partition it
	// contacts (typically M−1), so the hop estimate converges within a
	// few queries of an InProc.SetLatency change — the convergence test
	// pins this budget at 12 queries for the upward step and 60 for the
	// decay back down (observed: ~2 and ~5).
	ewmaAlpha = 0.25

	// fanOutMargin is the hysteresis of the protocol choice: fan-out
	// must beat the sequential protocol's modeled wall by more than 10%
	// to be chosen. Sequential is the cheaper protocol in total work
	// (tightest pruning bound), so ties and noise-level differences —
	// e.g. a residual hop estimate of a few µs on a zero-latency
	// fabric — must not flap the choice away from it.
	fanOutMargin = 0.9

	// fanNodesInflation is the cold-start guess for how many more nodes
	// the fan-out protocol examines than the sequential one (its remote
	// sides prune with a snapshot bound instead of the evolving one).
	fanNodesInflation = 1.25
)

// protoIdx indexes the per-protocol structural estimates.
type protoIdx int

const (
	idxSeq protoIdx = iota
	idxFan
	idxRange
	numProtoIdx
)

// ewma is one exponentially weighted moving average with a sample
// count. Samples may be negative (hop observations subtract a compute
// estimate that can overshoot); consumers clamp on read, so the average
// itself stays unbiased around the true value.
type ewma struct {
	v float64
	n int64
}

func (e *ewma) add(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v += ewmaAlpha * (x - e.v)
	}
	e.n++
}

// protoShape is the structural (latency-independent) profile of one
// protocol: fabric messages, nodes visited, distance evaluations and
// observed wall per query.
type protoShape struct {
	msgs  ewma
	nodes ewma
	dists ewma
	wall  ewma
}

// costModel maintains the scheduler's estimates. One model lives on
// each Tree and is shared by every Scheduler over that tree; all
// methods are safe for concurrent use. The mutex sections are a few
// float operations — cheap next to a fabric message.
type costModel struct {
	mu    sync.Mutex
	hopNs ewma // per-hop fabric transit, ns, all destinations pooled (clamped ≥ 0 on read)
	cmpNs ewma // compute per visited node, ns

	// hopBy refines hopNs per destination: CallSample.To identifies the
	// node behind each leaf-call RTT, so on a fabric with non-uniform
	// latency every partition gets its own transit estimate. Each entry
	// is an OFFSET from the pooled hopNs, not an absolute level: the
	// pooled EWMA decays with every sample from any destination, so it
	// tracks regime changes (a SetLatency step, load subsiding) within a
	// handful of queries, while a per-destination absolute EWMA only
	// decays when that destination is re-sampled and would pin a stale
	// level — e.g. the queueing-inflated RTTs of a fan-out burst — long
	// after the fabric recovered. Offsets capture the stable part (this
	// destination is slower/faster than the mean) and inherit the fast
	// dynamics from the pooled level they ride on. The placement kernel
	// prefers cheap destinations through hopToNs; ProtocolAuto prices
	// hops with the pooled level plus the traffic-weighted mean offset.
	hopBy map[cluster.NodeID]*ewma

	shape [numProtoIdx]protoShape

	// choices is the protocol-choice histogram, keyed by the executed
	// protocol name with an "auto:" prefix when the scheduler picked it
	// (vs the caller forcing it).
	choices map[string]int64
}

func newCostModel() *costModel {
	return &costModel{choices: make(map[string]int64)}
}

// observeSample is the cluster.Observe subscriber: it refines the hop
// estimate from leaf calls. A response whose queryStats report zero
// downstream messages did all its work locally, so the call's RTT is
// one transit plus its local compute; subtracting the compute estimate
// leaves the hop. The sample is not clamped — when the compute estimate
// overshoots, the negative remainder pulls the average back toward the
// true (possibly zero) latency instead of accumulating one-sided noise.
func (m *costModel) observeSample(s cluster.CallSample) {
	if s.Err != nil {
		return
	}
	var st queryStats
	switch r := s.Resp.(type) {
	case knnResp:
		st = r.Stats
	case rangeResp:
		st = r.Stats
	default:
		return
	}
	if st.Msgs != 0 {
		return
	}
	m.mu.Lock()
	x := float64(s.RTT) - float64(st.Nodes)*m.cmpNs.v
	m.hopNs.add(x)
	e, ok := m.hopBy[s.To]
	if !ok {
		if m.hopBy == nil {
			m.hopBy = make(map[cluster.NodeID]*ewma)
		}
		e = &ewma{}
		m.hopBy[s.To] = e
	}
	e.add(x - m.hopNs.v)
	m.mu.Unlock()
}

// hopToNs is the placement kernel's per-destination hop price: the
// pooled transit estimate plus the destination's own offset when it has
// samples, clamped ≥ 0 like every hop read.
func (m *costModel) hopToNs(id cluster.NodeID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.hopNs.v
	if e, ok := m.hopBy[id]; ok && e.n > 0 {
		v += e.v
	}
	if v < 0 {
		return 0
	}
	return v
}

// hopAvgLocked is the hop price the protocol estimates use: the pooled
// level plus the sample-weighted mean of the per-destination offsets.
// On a uniform fabric the offsets hover around zero and this reduces to
// the pooled EWMA with its fast decay; on a non-uniform fabric the
// weighted mean reflects where the traffic actually goes, so a latency
// change on part of the fabric shifts the modeled walls proportionally.
// Callers hold m.mu; the result is clamped.
func (m *costModel) hopAvgLocked() float64 {
	v := m.hopNs.v
	if len(m.hopBy) > 0 {
		sum, n := 0.0, 0.0
		for _, e := range m.hopBy {
			sum += e.v * float64(e.n)
			n += float64(e.n)
		}
		v += sum / n
	}
	if v < 0 {
		return 0
	}
	return v
}

// observeCompute records one hop-free local traversal: elapsed wall
// over nodes visited, the per-node compute price.
func (m *costModel) observeCompute(elapsed time.Duration, nodes int64) {
	if nodes <= 0 || elapsed < 0 {
		return
	}
	m.mu.Lock()
	m.cmpNs.add(float64(elapsed) / float64(nodes))
	m.mu.Unlock()
}

// observeQuery records a completed query's structural profile under the
// protocol that executed it.
func (m *costModel) observeQuery(idx protoIdx, st ExecStats) {
	m.mu.Lock()
	sh := &m.shape[idx]
	sh.msgs.add(float64(st.FabricMessages))
	sh.nodes.add(float64(st.NodesVisited))
	sh.dists.add(float64(st.DistanceEvals))
	sh.wall.add(float64(st.Wall))
	m.mu.Unlock()
}

// countChoice increments the protocol-choice histogram.
func (m *costModel) countChoice(name string, auto bool) {
	key := name
	if auto {
		key = "auto:" + name
	}
	m.mu.Lock()
	m.choices[key]++
	m.mu.Unlock()
}

// fanOutWaves is the serial hop depth of the probe-then-fan-out
// protocol: client→root, the synchronous probe, and one overlapped
// fan-out wave. Shallower trees have fewer waves.
func fanOutWaves(partitions int) float64 {
	switch {
	case partitions <= 1:
		return 1
	case partitions == 2:
		return 2
	default:
		return 3
	}
}

// estimates returns the modeled wall of both k-NN protocols at the
// current hop/compute prices. Structural parameters fall back to
// topology-derived guesses until their first samples arrive, so the
// model makes a sane cold-start choice (and an admission decision)
// before it has seen either protocol run.
func (m *costModel) estimates(partitions int) (estSeq, estFan time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hop := m.hopAvgLocked()
	seqMsgs := m.shape[idxSeq].msgs.v
	if m.shape[idxSeq].msgs.n == 0 {
		if m.shape[idxFan].msgs.n > 0 {
			seqMsgs = m.shape[idxFan].msgs.v
		} else {
			// Client→root plus one round trip per data partition.
			seqMsgs = float64(1 + 2*(partitions-1))
		}
	}
	seqNodes := m.shape[idxSeq].nodes.v
	if m.shape[idxSeq].nodes.n == 0 {
		seqNodes = m.shape[idxFan].nodes.v / fanNodesInflation
	}
	fanNodes := m.shape[idxFan].nodes.v
	if m.shape[idxFan].nodes.n == 0 {
		fanNodes = seqNodes * fanNodesInflation
	}
	estSeq = time.Duration(seqMsgs*hop + seqNodes*m.cmpNs.v)
	estFan = time.Duration(fanOutWaves(partitions)*hop + fanNodes*m.cmpNs.v)
	return estSeq, estFan
}

// choose resolves ProtocolAuto for one k-NN query: fan-out when the
// estimated hop latency dominates enough that overlapping the
// cross-partition hops beats the sequential protocol's modeled wall by
// more than the hysteresis margin, sequential otherwise (CPU-bound
// regime, and the cold-start default). Single-partition trees have no
// cross-partition hops to overlap.
func (m *costModel) choose(partitions int) Protocol {
	if partitions <= 1 {
		return ProtocolSequential
	}
	estSeq, estFan := m.estimates(partitions)
	if float64(estFan) < float64(estSeq)*fanOutMargin {
		return ProtocolFanOut
	}
	return ProtocolSequential
}

// estimateWall prices one query under the given resolved protocol, for
// the admission controller's deadline-budget check. Range queries are
// priced like a two-wave fan-out over their own structural profile. A
// model with no samples for the needed components returns 0 (admit:
// nothing is known yet, so nothing is provably over budget).
func (m *costModel) estimateWall(p Protocol, partitions int) time.Duration {
	switch p {
	case ProtocolRange:
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.shape[idxRange].nodes.n == 0 {
			return 0
		}
		hop := m.hopAvgLocked()
		waves := 2.0
		if partitions <= 1 {
			waves = 1
		}
		return time.Duration(waves*hop + m.shape[idxRange].nodes.v*m.cmpNs.v)
	case ProtocolFanOut:
		_, estFan := m.estimates(partitions)
		return estFan
	default:
		estSeq, _ := m.estimates(partitions)
		return estSeq
	}
}

// shapeIdx maps a resolved protocol to its structural profile.
func shapeIdx(p Protocol) protoIdx {
	switch p {
	case ProtocolFanOut:
		return idxFan
	case ProtocolRange:
		return idxRange
	default:
		return idxSeq
	}
}

// estimateCost prices one query under the given resolved protocol in
// cost units (see CostOf), for the quota bucket's admission charge: the
// protocol's structural profile (distance evaluations, messages,
// observed wall) at the cost-unit prices. A k-NN protocol with no
// samples yet borrows the other's profile; a model with no samples at
// all returns 0 — the query is admitted on a zero charge and the
// bucket settles up from the observed cost at reconciliation, so even
// a cold tenant cannot spend past its capacity for long.
func (m *costModel) estimateCost(p Protocol) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := &m.shape[shapeIdx(p)]
	if sh.dists.n == 0 && p != ProtocolRange {
		other := &m.shape[idxFan]
		if shapeIdx(p) == idxFan {
			other = &m.shape[idxSeq]
		}
		if other.dists.n > 0 {
			sh = other
		}
	}
	if sh.dists.n == 0 {
		return 0
	}
	return sh.dists.v*CostPerDistanceEval +
		sh.msgs.v*CostPerFabricMessage +
		sh.wall.v/float64(time.Millisecond)*CostPerWallMilli
}

// snapshot exports the current estimates, the observed per-protocol
// wall EWMAs (diagnostics: what queries actually cost, to hold against
// the modeled walls) and the choice histogram.
func (m *costModel) snapshot(partitions int) (hop, cmp, seqWall, fanWall time.Duration, choices map[string]int64) {
	m.mu.Lock()
	hop = time.Duration(m.hopAvgLocked())
	cmp = time.Duration(m.cmpNs.v)
	seqWall = time.Duration(m.shape[idxSeq].wall.v)
	fanWall = time.Duration(m.shape[idxFan].wall.v)
	choices = make(map[string]int64, len(m.choices))
	for k, v := range m.choices {
		choices[k] = v
	}
	m.mu.Unlock()
	return hop, cmp, seqWall, fanWall, choices
}
