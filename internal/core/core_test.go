package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

func randomPoints(r *rand.Rand, n, dim int) []kdtree.Point {
	pts := make([]kdtree.Point, n)
	for i := range pts {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		pts[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	return pts
}

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func sameDistances(a, b []kdtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func sameIDSets(a, b []kdtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	ids := map[uint64]bool{}
	for _, n := range a {
		ids[n.Point.ID] = true
	}
	for _, n := range b {
		if !ids[n.Point.ID] {
			return false
		}
	}
	return true
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(Config{Dim: 2, PartitionCapacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	tr := mustTree(t, Config{Dim: 3})
	if err := tr.Insert(kdtree.Point{Coords: []float64{1}}); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if _, err := tr.KNearest(context.Background(), []float64{1}, 3); err == nil {
		t.Fatal("wrong query dimensionality accepted")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2})
	got, err := tr.KNearest(context.Background(), []float64{0, 0}, 3)
	if err != nil || got != nil {
		t.Fatalf("empty KNN = %v, %v", got, err)
	}
	rng, err := tr.RangeSearch(context.Background(), []float64{0, 0}, 5)
	if err != nil || rng != nil {
		t.Fatalf("empty range = %v, %v", rng, err)
	}
}

func TestSinglePartitionMatchesSequentialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 800, 4)
	tr := mustTree(t, Config{Dim: 4, BucketSize: 8})
	oracle, _ := kdtree.New(4, 8)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.PartitionCount() != 1 {
		t.Fatalf("partitions = %d, want 1", tr.PartitionCount())
	}
	for q := 0; q < 40; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.KNearest(query, 5)
		if !sameDistances(got, want) {
			t.Fatalf("KNN mismatch:\ngot  %v\nwant %v", got, want)
		}
		d := r.Float64() * 40
		gotR, err := tr.RangeSearch(context.Background(), query, d)
		if err != nil {
			t.Fatal(err)
		}
		if wantR := oracle.RangeSearch(query, d); !sameIDSets(gotR, wantR) {
			t.Fatalf("range mismatch: got %d, want %d", len(gotR), len(wantR))
		}
	}
}

func TestPartitionedMatchesOracleProperty(t *testing.T) {
	// The core correctness property: for any (points, partition
	// capacity, M, bucket size), the distributed tree answers exactly
	// like the sequential KD-tree.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 12; trial++ {
		n := 100 + r.Intn(900)
		dim := 2 + r.Intn(4)
		bucket := 2 + r.Intn(14)
		maxParts := 1 + r.Intn(10)
		capacity := 20 + r.Intn(200)
		pts := randomPoints(r, n, dim)

		tr := mustTree(t, Config{
			Dim: dim, BucketSize: bucket,
			PartitionCapacity: capacity, MaxPartitions: maxParts,
		})
		if err := tr.InsertAll(pts, 1); err != nil {
			t.Fatal(err)
		}
		brute := pts

		for q := 0; q < 12; q++ {
			query := make([]float64, dim)
			for d := range query {
				query[d] = r.Float64() * 100
			}
			k := 1 + r.Intn(10)
			got, err := tr.KNearest(context.Background(), query, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(brute, query, k)
			if !sameDistances(got, want) {
				t.Fatalf("trial %d (n=%d parts=%d cap=%d): KNN mismatch\ngot  %v\nwant %v",
					trial, n, tr.PartitionCount(), capacity, got, want)
			}
			d := r.Float64() * 30
			gotR, err := tr.RangeSearch(context.Background(), query, d)
			if err != nil {
				t.Fatal(err)
			}
			if wantR := bruteRange(brute, query, d); !sameIDSets(gotR, wantR) {
				t.Fatalf("trial %d: range mismatch: got %d want %d", trial, len(gotR), len(wantR))
			}
		}
	}
}

// euclidean is the oracle distance: the engine itself works on
// euclideanSq and defers the sqrt to the client boundary.
func euclidean(q, p []float64) float64 {
	return math.Sqrt(euclideanSq(q, p))
}

func bruteKNN(pts []kdtree.Point, q []float64, k int) []kdtree.Neighbor {
	rs := newResultSet(k, nil)
	for _, p := range pts {
		rs.Offer(kdtree.Neighbor{Point: p, Dist: euclidean(q, p.Coords)})
	}
	return rs.Items
}

func bruteRange(pts []kdtree.Point, q []float64, d float64) []kdtree.Neighbor {
	var out []kdtree.Neighbor
	for _, p := range pts {
		if dist := euclidean(q, p.Coords); dist <= d {
			out = append(out, kdtree.Neighbor{Point: p, Dist: dist})
		}
	}
	return out
}

func TestBuildPartitionSpreadsData(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 2000, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 16,
		PartitionCapacity: 250, MaxPartitions: 9,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.PartitionCount(); got != 9 {
		t.Fatalf("partitions = %d, want 9", got)
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 2000 {
		t.Fatalf("stats points = %d", st.Points)
	}
	// The root partition must end up routing-mostly: the bulk of the
	// data lives in the spill partitions.
	if st.PartitionPoints[0] > 500 {
		t.Fatalf("root partition still hosts %d of 2000 points", st.PartitionPoints[0])
	}
	nonEmpty := 0
	for _, p := range st.PartitionPoints[1:] {
		if p > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d data partitions hold points: %v", nonEmpty, st.PartitionPoints)
	}
}

func TestCapacityZeroNeverSpills(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := mustTree(t, Config{Dim: 2, BucketSize: 4, MaxPartitions: 8})
	if err := tr.InsertAll(randomPoints(r, 500, 2), 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.PartitionCount(); got != 1 {
		t.Fatalf("capacity 0 spilled into %d partitions", got)
	}
}

func TestDynamicCapacityCheck(t *testing.T) {
	// The paper allows the resource condition to be "dynamically
	// evaluated at run-time": spill when the node arena (not the point
	// count) exceeds a bound.
	r := rand.New(rand.NewSource(5))
	tr := mustTree(t, Config{
		Dim: 2, BucketSize: 4, MaxPartitions: 4,
		PartitionCapacity: 1, // ignored by the custom check
		CapacityCheck:     func(pi PartitionInfo) bool { return pi.Nodes > 31 },
	})
	if err := tr.InsertAll(randomPoints(r, 400, 2), 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.PartitionCount(); got < 2 {
		t.Fatalf("dynamic check never fired: %d partitions", got)
	}
}

func TestConcurrentInsertsMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randomPoints(r, 3000, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 300, MaxPartitions: 8,
	})
	if err := tr.InsertAll(pts, 8); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 3000 {
		t.Fatalf("points across partitions = %d, want 3000 (lost or duplicated under concurrency)", st.Points)
	}
	for q := 0; q < 25; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 7); !sameDistances(got, want) {
			t.Fatalf("concurrent-build KNN mismatch")
		}
	}
}

func TestConcurrentQueriesDuringInserts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randomPoints(r, 2000, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 200, MaxPartitions: 6,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			q := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
			if _, err := tr.KNearest(context.Background(), q, 3); err != nil {
				t.Errorf("query during inserts: %v", err)
				return
			}
			if _, err := tr.RangeSearch(context.Background(), q, 10); err != nil {
				t.Errorf("range during inserts: %v", err)
				return
			}
		}
	}()
	if err := tr.InsertAll(pts, 4); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestUnbalancedChainHeight(t *testing.T) {
	// Ascending inserts under the chain split policy must degenerate.
	tr := mustTree(t, Config{Dim: 2, BucketSize: 8, Unbalanced: true})
	for i := 0; i < 400; i++ {
		p := kdtree.Point{Coords: []float64{float64(i), 0}, ID: uint64(i)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 25 {
		t.Fatalf("chain height = %d, want ~50 (degenerate)", h)
	}
	// And still answer correctly.
	got, err := tr.KNearest(context.Background(), []float64{100.2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Point.ID != 100 {
		t.Fatalf("chain KNN = %v", got)
	}
}

func TestBalancedHeightLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := mustTree(t, Config{Dim: 3, BucketSize: 16})
	if err := tr.InsertAll(randomPoints(r, 2048, 3), 1); err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h > 24 {
		t.Fatalf("random-insert height = %d, too deep for 2048 points", h)
	}
}

func TestFailureInjectionWithRetries(t *testing.T) {
	fabric := cluster.NewInProc(cluster.InProcOptions{FailureRate: 0.15, Seed: 99})
	defer fabric.Close()
	r := rand.New(rand.NewSource(9))
	pts := randomPoints(r, 800, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 150, MaxPartitions: 5,
		Fabric: fabric, RetryAttempts: 25,
	})
	if err := tr.InsertAll(pts, 4); err != nil {
		t.Fatalf("InsertAll under 15%% failure injection: %v", err)
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 800 {
		t.Fatalf("points = %d, want 800 (lost under failures)", st.Points)
	}
	if fabric.Stats().Failures == 0 {
		t.Fatal("no failures injected — test vacuous")
	}
	for q := 0; q < 10; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 5); !sameDistances(got, want) {
			t.Fatal("KNN mismatch under failure injection")
		}
	}
}

func TestOverTCPFabric(t *testing.T) {
	fabric := cluster.NewTCP()
	defer fabric.Close()
	r := rand.New(rand.NewSource(10))
	pts := randomPoints(r, 300, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 60, MaxPartitions: 4,
		Fabric: fabric,
	})
	if err := tr.InsertAll(pts, 4); err != nil {
		t.Fatalf("insert over TCP: %v", err)
	}
	if tr.PartitionCount() < 2 {
		t.Fatalf("expected spilling over TCP, got %d partitions", tr.PartitionCount())
	}
	for q := 0; q < 10; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 4); !sameDistances(got, want) {
			t.Fatal("KNN mismatch over TCP")
		}
		gotR, err := tr.RangeSearch(context.Background(), query, 20)
		if err != nil {
			t.Fatal(err)
		}
		if wantR := bruteRange(pts, query, 20); !sameIDSets(gotR, wantR) {
			t.Fatal("range mismatch over TCP")
		}
	}
	if fabric.Stats().Bytes == 0 {
		t.Fatal("no bytes crossed the TCP fabric")
	}
}

func TestComplexityModelInsertPathLength(t *testing.T) {
	// §III-C: with a well-balanced tree the insertion path length is
	// Θ(A + log2(N/M)). Verify the measured mean path grows ~log N and
	// shrinks when M grows.
	r := rand.New(rand.NewSource(11))
	meanPath := func(n, m, capacity int) float64 {
		tr := mustTree(t, Config{
			Dim: 3, BucketSize: 16,
			PartitionCapacity: capacity, MaxPartitions: m,
		})
		defer tr.Close()
		if err := tr.InsertAll(randomPoints(r, n, 3), 1); err != nil {
			t.Fatal(err)
		}
		st, err := tr.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.NavSteps) / float64(st.Inserts)
	}
	small := meanPath(500, 1, 0)
	large := meanPath(8000, 1, 0)
	if large <= small {
		t.Fatalf("path length did not grow with N: %f vs %f", small, large)
	}
	if ratio := large / small; ratio > 4 {
		t.Fatalf("path growth %fx for 16x data — superlogarithmic", ratio)
	}
}

func TestMessageAccountingGrowsWithPartitions(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := randomPoints(r, 1000, 3)
	msgs := func(m int) int64 {
		fabric := cluster.NewInProc(cluster.InProcOptions{})
		defer fabric.Close()
		capacity := 0
		if m > 1 {
			capacity = len(pts) / m
		}
		tr := mustTree(t, Config{
			Dim: 3, BucketSize: 16,
			PartitionCapacity: capacity, MaxPartitions: m, Fabric: fabric,
		})
		if err := tr.InsertAll(pts, 1); err != nil {
			t.Fatal(err)
		}
		return fabric.Stats().Messages
	}
	m1, m5 := msgs(1), msgs(5)
	if m5 <= m1 {
		t.Fatalf("cross-partition traffic did not grow: M=1 %d msgs, M=5 %d msgs", m1, m5)
	}
}

func TestAsyncInsertMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := randomPoints(r, 2000, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 250, MaxPartitions: 8,
	})
	for _, p := range pts {
		if err := tr.InsertAsync(p); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 2000 {
		t.Fatalf("async pipeline landed %d of 2000 points", st.Points)
	}
	if tr.PartitionCount() < 2 {
		t.Fatalf("async inserts never spilled: %d partitions", tr.PartitionCount())
	}
	for q := 0; q < 25; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 5); !sameDistances(got, want) {
			t.Fatal("async-built tree KNN mismatch")
		}
	}
}

func TestVirtualFabricCorrectness(t *testing.T) {
	// A tree over the virtual-clock fabric must behave exactly like one
	// over the in-process fabric: same points land, same query answers.
	r := rand.New(rand.NewSource(14))
	pts := randomPoints(r, 1500, 3)
	fabric := cluster.NewVirtual(cluster.VirtualOptions{Latency: 50 * time.Microsecond})
	defer fabric.Close()
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 16,
		PartitionCapacity: 8 * 16, MaxPartitions: 9, Fabric: fabric,
	})
	if err := tr.InsertBatchAsync(pts, 128); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	if fabric.VirtualTime() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != len(pts) {
		t.Fatalf("virtual pipeline landed %d of %d points", st.Points, len(pts))
	}
	if tr.PartitionCount() != 9 {
		t.Fatalf("partitions = %d, want 9", tr.PartitionCount())
	}
	for q := 0; q < 20; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteKNN(pts, query, 5); !sameDistances(got, want) {
			t.Fatal("KNN mismatch over virtual fabric")
		}
	}
}

func TestVirtualPipelineParallelThroughput(t *testing.T) {
	// §III-C: "using M−1 data partitions, we can perform in the best
	// case M−1 parallel operations maximizing our throughput". On the
	// virtual-clock fabric the root rank only routes (its spill leaves
	// it with a shallow trunk of ~2M−1 nodes) while the data ranks
	// carry the leaf work in parallel, so building over 9 partitions
	// must finish at an earlier virtual time than over 1.
	r := rand.New(rand.NewSource(15))
	pts := randomPoints(r, 30000, 3)
	build := func(m int) time.Duration {
		fabric := cluster.NewVirtual(cluster.VirtualOptions{Latency: 50 * time.Microsecond})
		defer fabric.Close()
		capacity := 0
		if m > 1 {
			// Spill when ~M−1 leaves exist so the root keeps the
			// paper's shallow 2M−1-node routing trunk.
			capacity = (m - 1) * 16
		}
		tr := mustTree(t, Config{
			Dim: 3, BucketSize: 16,
			PartitionCapacity: capacity, MaxPartitions: m, Fabric: fabric,
		})
		if err := tr.InsertBatchAsync(pts, 256); err != nil {
			t.Fatal(err)
		}
		tr.Flush()
		st, err := tr.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Points != len(pts) {
			t.Fatalf("M=%d: landed %d of %d points", m, st.Points, len(pts))
		}
		return fabric.VirtualTime()
	}
	t1 := build(1)
	t9 := build(9)
	if t9 >= t1 {
		t.Fatalf("9-partition virtual build (%v) not faster than single partition (%v)", t9, t1)
	}
}
