package core

// Tests for the region-pruned cross-partition search: the bounding-box
// min-distance guard must return byte-identical results to the paper's
// splitting-plane guard under both k-NN protocols while doing strictly
// less work, and every box must stay an exact bound of its logical
// subtree across inserts, splits, spills and rebalances.

import (
	"context"
	"math/rand"
	"testing"

	"semtree/internal/kdtree"
)

// prunePair builds two trees over identical points and topology
// parameters: one pruning with the region guard (the default), one
// pinned to the paper's splitting-plane guard.
func prunePair(t *testing.T, r *rand.Rand, n, dim int) (boxTree, planeTree *Tree, pts []kdtree.Point) {
	t.Helper()
	pts = randomPoints(r, n, dim)
	mk := func(planeOnly bool) *Tree {
		tr := mustTree(t, Config{
			Dim: dim, BucketSize: 8,
			PartitionCapacity: 64, MaxPartitions: 9,
			PlaneGuardOnly: planeOnly,
		})
		if err := tr.InsertAll(pts, 1); err != nil {
			t.Fatal(err)
		}
		if got := tr.PartitionCount(); got < 4 {
			t.Fatalf("partitions = %d, want >= 4 for a meaningful fan-out", got)
		}
		return tr
	}
	return mk(false), mk(true), pts
}

// TestRegionPruneEquivalence: the region guard must return
// byte-identical results — same points, same order, same distance
// bits — as the plane guard, under both cross-partition protocols, and
// agree with the brute-force oracle. Dimensionality 8 is where the
// plane bound has visibly degraded, so divergence would show here
// first.
func TestRegionPruneEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	boxTree, planeTree, pts := prunePair(t, r, 3000, 8)
	for trial := 0; trial < 40; trial++ {
		q := randomPoints(r, 1, 8)[0].Coords
		for _, k := range []int{1, 3, 10, 40} {
			want, _, err := planeTree.knn(context.Background(), q, k, ProtocolSequential)
			if err != nil {
				t.Fatal(err)
			}
			for name, got := range map[string][]kdtree.Neighbor{
				"plane/fan-out": mustKNN(t, planeTree, q, k, ProtocolFanOut),
				"box/seq":       mustKNN(t, boxTree, q, k, ProtocolSequential),
				"box/fan-out":   mustKNN(t, boxTree, q, k, ProtocolFanOut),
			} {
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d %s: len %d != %d", trial, k, name, len(got), len(want))
				}
				for i := range want {
					if !sameNeighbor(got[i], want[i]) {
						t.Fatalf("trial %d k=%d %s item %d: (%d,%v) != (%d,%v)", trial, k, name, i,
							got[i].Point.ID, got[i].Dist, want[i].Point.ID, want[i].Dist)
					}
				}
			}
		}
	}
	q := randomPoints(r, 1, 8)[0].Coords
	got, err := boxTree.KNearest(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteKNN(pts, q, 5); !sameIDSets(got, want) {
		t.Fatalf("region-pruned kNN disagrees with oracle")
	}
}

func mustKNN(t *testing.T, tr *Tree, q []float64, k int, p Protocol) []kdtree.Neighbor {
	t.Helper()
	ns, _, err := tr.knn(context.Background(), q, k, p)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// TestRegionPruneRangeEquivalence: range results under the region
// guard must match the plane guard and the brute-force oracle.
func TestRegionPruneRangeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	boxTree, planeTree, pts := prunePair(t, r, 2000, 6)
	for trial := 0; trial < 30; trial++ {
		q := randomPoints(r, 1, 6)[0].Coords
		for _, d := range []float64{0.05, 0.3, 0.8} {
			want, err := planeTree.RangeSearch(context.Background(), q, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := boxTree.RangeSearch(context.Background(), q, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d d=%g: len %d != %d", trial, d, len(got), len(want))
			}
			for i := range want {
				if !sameNeighbor(got[i], want[i]) {
					t.Fatalf("trial %d d=%g item %d differs", trial, d, i)
				}
			}
			if !sameIDSets(got, bruteRange(pts, q, d)) {
				t.Fatalf("trial %d d=%g: disagrees with oracle", trial, d)
			}
		}
	}
}

// TestRegionPruneReducesWork: over a query batch at dimensionality 8,
// the region guard must spend strictly fewer fabric messages than the
// plane guard under the fan-out protocol, and never more of anything
// (messages, nodes, probe misses) per query under either protocol.
func TestRegionPruneReducesWork(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	boxTree, planeTree, _ := prunePair(t, r, 3000, 8)
	for _, proto := range []Protocol{ProtocolSequential, ProtocolFanOut} {
		var boxAgg, planeAgg ExecStats
		r := rand.New(rand.NewSource(37)) // same queries for both trees
		for trial := 0; trial < 50; trial++ {
			q := randomPoints(r, 1, 8)[0].Coords
			_, bst, err := boxTree.knn(context.Background(), q, 3, proto)
			if err != nil {
				t.Fatal(err)
			}
			_, pst, err := planeTree.knn(context.Background(), q, 3, proto)
			if err != nil {
				t.Fatal(err)
			}
			if bst.FabricMessages > pst.FabricMessages {
				t.Fatalf("%v trial %d: region guard sent more messages (%d > %d)",
					proto, trial, bst.FabricMessages, pst.FabricMessages)
			}
			if bst.NodesVisited > pst.NodesVisited {
				t.Fatalf("%v trial %d: region guard visited more nodes (%d > %d)",
					proto, trial, bst.NodesVisited, pst.NodesVisited)
			}
			boxAgg.FabricMessages += bst.FabricMessages
			boxAgg.NodesVisited += bst.NodesVisited
			boxAgg.ProbeMisses += bst.ProbeMisses
			planeAgg.FabricMessages += pst.FabricMessages
			planeAgg.NodesVisited += pst.NodesVisited
			planeAgg.ProbeMisses += pst.ProbeMisses
		}
		if boxAgg.FabricMessages >= planeAgg.FabricMessages {
			t.Fatalf("%v: region guard did not cut messages (%d >= %d)",
				proto, boxAgg.FabricMessages, planeAgg.FabricMessages)
		}
		if boxAgg.ProbeMisses > planeAgg.ProbeMisses {
			t.Fatalf("%v: region guard raised probe misses (%d > %d)",
				proto, boxAgg.ProbeMisses, planeAgg.ProbeMisses)
		}
	}
}

// collectUnder gathers every point of the logical subtree rooted at
// ref, following cross-partition links and tombstones through the
// fabric like a query would.
func collectUnder(t *testing.T, tr *Tree, ref childRef) []kdtree.Point {
	t.Helper()
	tr.mu.RLock()
	var host *partition
	for _, p := range tr.parts {
		if p.id == ref.Part {
			host = p
		}
	}
	tr.mu.RUnlock()
	if host == nil {
		t.Fatalf("no partition hosts %v", ref)
	}
	var pts []kdtree.Point
	if err := host.collectVisit(ref.Node, &pts); err != nil {
		t.Fatal(err)
	}
	return pts
}

// checkPartitionBoxes asserts the region invariant on every partition:
// each non-tombstone node's box is the exact per-dimension min/max of
// its logical subtree's points (nil for an empty subtree), and every
// remote-box cache entry exactly bounds the remote subtree it guards.
func checkPartitionBoxes(t *testing.T, tr *Tree) {
	t.Helper()
	tr.mu.RLock()
	parts := append([]*partition(nil), tr.parts...)
	tr.mu.RUnlock()
	for _, p := range parts {
		p.mu.RLock()
		nodes := len(p.nodes)
		remotes := make(map[childRef]box, len(p.remoteBoxes))
		for ref, b := range p.remoteBoxes {
			remotes[ref] = b
		}
		p.mu.RUnlock()
		for idx := 0; idx < nodes; idx++ {
			p.mu.RLock()
			moved := p.nodes[idx].moved
			lo := append([]float64(nil), p.nodes[idx].lo...)
			hi := append([]float64(nil), p.nodes[idx].hi...)
			p.mu.RUnlock()
			if moved {
				if lo != nil {
					t.Fatalf("partition %d node %d: tombstone retains a box", p.id, idx)
				}
				continue
			}
			pts := collectUnder(t, tr, childRef{Part: p.id, Node: int32(idx)})
			assertExactBox(t, pts, lo, hi, "partition %d node %d", p.id, idx)
		}
		for ref, b := range remotes {
			pts := collectUnder(t, tr, ref)
			assertExactBox(t, pts, b.lo, b.hi, "partition %d remote box %v", p.id, ref)
		}
	}
}

func assertExactBox(t *testing.T, pts []kdtree.Point, lo, hi []float64, format string, args ...any) {
	t.Helper()
	wantLo, wantHi := kdtree.BoxOf(pts)
	if (lo == nil) != (wantLo == nil) {
		t.Fatalf(format+": box nil-ness %v, want %v (%d points)",
			append(args, lo == nil, wantLo == nil, len(pts))...)
	}
	for d := range wantLo {
		if lo[d] != wantLo[d] || hi[d] != wantHi[d] {
			t.Fatalf(format+": dim %d box [%g, %g], want exact [%g, %g]",
				append(args, d, lo[d], hi[d], wantLo[d], wantHi[d])...)
		}
	}
}

// TestBoxesExactAcrossSplitsAndSpills: after single inserts, batched
// async inserts and the spills they trigger, every node box and every
// cached remote box is exactly tight.
func TestBoxesExactAcrossSplitsAndSpills(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	tr := mustTree(t, Config{
		Dim: 5, BucketSize: 8,
		PartitionCapacity: 48, MaxPartitions: 7,
	})
	pts := randomPoints(r, 1200, 5)
	if err := tr.InsertAll(pts[:600], 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertBatchAsync(pts[600:], 64); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	if got := tr.PartitionCount(); got < 3 {
		t.Fatalf("partitions = %d, want >= 3 so migrations happened", got)
	}
	checkPartitionBoxes(t, tr)
}

// TestBoxesExactAfterRebalance: the coordinated bulk-load must leave
// exact boxes on the trunk, every frontier subtree, and the root's
// remote-box cache — and keep them exact through post-rebalance
// inserts.
func TestBoxesExactAfterRebalance(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tr := mustTree(t, Config{
		Dim: 4, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 6,
	})
	pts := randomPoints(r, 900, 4)
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	checkPartitionBoxes(t, tr)
	for _, p := range randomPoints(r, 200, 4) {
		p.ID += 10000
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	checkPartitionBoxes(t, tr)
	// The rebalanced, box-guarded tree still answers exactly.
	q := randomPoints(r, 1, 4)[0].Coords
	got, err := tr.KNearest(context.Background(), q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("kNN after rebalance returned %d results", len(got))
	}
}

// TestProbeMissAccounting: a single-partition query issues no
// downstream calls and reports zero probe misses; multi-partition
// queries never report more misses than downstream messages.
func TestProbeMissAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	solo := mustTree(t, Config{Dim: 3, BucketSize: 8})
	for _, p := range randomPoints(r, 200, 3) {
		if err := solo.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	q := randomPoints(r, 1, 3)[0].Coords
	_, st, err := solo.KNearestStats(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProbeMisses != 0 {
		t.Fatalf("single partition reported %d probe misses", st.ProbeMisses)
	}
	multi, _ := multiPartitionTree(t, r, 2000, 3)
	for trial := 0; trial < 20; trial++ {
		q := randomPoints(r, 1, 3)[0].Coords
		for _, proto := range []Protocol{ProtocolSequential, ProtocolFanOut} {
			_, st, err := multi.knn(context.Background(), q, 3, proto)
			if err != nil {
				t.Fatal(err)
			}
			if st.ProbeMisses < 0 || st.ProbeMisses >= st.FabricMessages {
				t.Fatalf("%v: misses %d out of range for %d messages",
					proto, st.ProbeMisses, st.FabricMessages)
			}
		}
	}
}
