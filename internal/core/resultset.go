package core

import (
	"math"

	"semtree/internal/kdtree"
)

// resultSet is the paper's Rs (Table I): the best k candidates seen so
// far, kept sorted ascending by distance (ties broken by point ID for
// determinism). K is small in practice, so ordered insertion beats a
// heap and keeps the serialized form canonical for the wire protocol.
type resultSet struct {
	k     int
	items []kdtree.Neighbor
}

func newResultSet(k int, seed []kdtree.Neighbor) *resultSet {
	rs := &resultSet{k: k, items: make([]kdtree.Neighbor, 0, k)}
	for _, n := range seed {
		rs.offer(n)
	}
	return rs
}

func (r *resultSet) full() bool { return len(r.items) >= r.k }

// worst returns the distance D of Table I: the distance between the
// query point and the most distant member of the result set (infinite
// while the set is not full).
func (r *resultSet) worst() float64 {
	if !r.full() {
		return math.Inf(1)
	}
	return r.items[len(r.items)-1].Dist
}

func neighborLess(a, b kdtree.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Point.ID < b.Point.ID
}

// offer inserts a candidate in order, evicting the worst when full.
func (r *resultSet) offer(n kdtree.Neighbor) {
	if r.full() {
		if !neighborLess(n, r.items[len(r.items)-1]) {
			return
		}
	} else {
		r.items = append(r.items, kdtree.Neighbor{})
	}
	i := len(r.items) - 1
	for i > 0 && neighborLess(n, r.items[i-1]) {
		r.items[i] = r.items[i-1]
		i--
	}
	r.items[i] = n
}

// replace swaps in a merged set returned by a remote partition (which
// was seeded with our items, so it is already the union's top k).
func (r *resultSet) replace(items []kdtree.Neighbor) {
	r.items = items
}
