package core

import (
	"semtree/internal/kdtree"
)

// resultSet wraps kdtree.ResultSet — the single implementation of the
// Rs ordering contract (Table I: best k, ascending squared distance,
// point-ID tie-breaks) — with the operations the distributed protocol
// needs on top: wholesale replacement (sequential hops), deduplicating
// merges (parallel fan-outs) and detached export (the wire must not
// alias the pooled scratch buffer).
//
// While a query is in flight, Dist holds the *squared* Euclidean
// distance: the whole search — leaf scans, the backtracking bound, the
// cross-partition merges — runs on squared distances, and the single
// deferred sqrt is applied per result at the client boundary
// (Tree.KNearest / Tree.RangeSearch).
type resultSet struct {
	kdtree.ResultSet
}

// neighborLess is the shared total result order.
func neighborLess(a, b kdtree.Neighbor) bool { return kdtree.NeighborLess(a, b) }

func newResultSet(k int, seed []kdtree.Neighbor) *resultSet {
	rs := &resultSet{}
	rs.reset(k, seed)
	return rs
}

// reset re-arms the set for a new query, retaining the backing array so
// pooled query contexts do not allocate per search.
func (r *resultSet) reset(k int, seed []kdtree.Neighbor) {
	r.K = k
	r.Items = r.Items[:0]
	for _, n := range seed {
		r.Offer(n)
	}
}

// replace swaps in a merged set returned by a remote partition during
// the sequential protocol (which was seeded with our items, so it is
// already the union's top k).
func (r *resultSet) replace(items []kdtree.Neighbor) {
	r.Items = items
}

// contains reports whether a point with the given ID is already kept.
func (r *resultSet) contains(id uint64) bool {
	for i := range r.Items {
		if r.Items[i].Point.ID == id {
			return true
		}
	}
	return false
}

// merge folds a partial result set returned by a parallel remote
// fan-out into this one. Partials are seeded with a snapshot of our
// items, so they may repeat points we already keep (or that another
// partial re-introduced); offers are deduplicated by point ID. The
// merged outcome is order-independent because Offer uses the total
// (Dist, ID) order.
func (r *resultSet) merge(items []kdtree.Neighbor) {
	for _, n := range items {
		if !r.contains(n.Point.ID) {
			r.Offer(n)
		}
	}
}

// export copies the set for the wire: responses must not alias the
// pooled scratch buffer, which is recycled when the query context is
// released.
func (r *resultSet) export() []kdtree.Neighbor {
	if len(r.Items) == 0 {
		return nil
	}
	return append([]kdtree.Neighbor(nil), r.Items...)
}
