package core

import (
	"context"
	"fmt"
	"sort"

	"semtree/internal/cluster"

	"semtree/internal/kdtree"
)

// Background repacking: spill-time placement decides with the boxes it
// has when a partition overflows, and the layout drifts as the corpus
// grows — a leaf adopted early can end up far from everything else its
// partition hosts. Tree.Repack is the budget-limited corrector: it
// scans every partition's leaf boxes, scores each movable leaf with the
// same placement kernel the spill path uses (its home partition priced
// as if the leaf were absent), and migrates the worst-placed leaves
// over the adopt handshake — while queries and inserts keep running.
//
// The migration of one leaf is phased so no fabric call happens under
// the partition lock (the lockedcall invariant; unlike a spill, the
// destination here is a live partition whose handlers can block on this
// one, so holding the lock across the call could deadlock):
//
//	pin    (write lock)  validate the leaf is still movable, mark it
//	                     migrating — splits defer, spills skip it —
//	                     and snapshot the bucket and box;
//	adopt  (no lock)     ship the snapshot to the destination; the
//	                     adopted node is unreachable until commit, so
//	                     queries see exactly one copy throughout;
//	drain  (loop)        forward points that raced into the live bucket
//	                     since the snapshot as ordinary inserts to the
//	                     adopted node (no lock held during the calls);
//	commit (write lock)  when no unforwarded delta remains: flip the
//	                     parent edge to the remote ref, cache the box
//	                     (remoteBoxes stays exact: the destination's
//	                     box is the shipped snapshot expanded by the
//	                     same deltas), tombstone the leaf.
//
// On a fabric error after adoption the migration aborts: the source
// keeps every point (nothing was unlinked), and the orphaned adopted
// bucket stays unreachable on the destination — visible only in its
// point counters, consistent with the async path's at-most-once
// contract on a failing fabric.
//
// The partition graph must stay acyclic. Query and insert handlers
// hold their partition's lock across descending cross-partition calls
// (the justified lockedcall exception: hops strictly descend the
// partition DAG), so a migrated edge that made a destination reach
// back into its source would create a lock-order cycle — two queries
// entering from opposite ends plus pending writers deadlock the pair.
// Spills cannot close cycles (their targets are fresh, edge-less
// partitions), so the repacker is the only writer of back-edge risk:
// the scan reports each partition's outgoing edges, the planner
// rejects any move whose destination already reaches its source, and
// accepted moves extend the graph as the plan builds. Passes are
// serialized (t.repackMu) so two planners cannot interleave edges.

// repackScanReq asks a partition to summarize its local leaves for the
// repacker.
type repackScanReq struct{}

// leafSummary is one local leaf as the repack coordinator sees it.
// Movable marks leaves the migration protocol may take: leaf children
// of local routing nodes (single in-edge, so one parent flip relinks
// the tree), not already migrating.
type leafSummary struct {
	Node    int32
	Points  int
	Lo, Hi  []float64
	Movable bool
}

// repackScanResp reports every local leaf with a materialized box, the
// partition's total load, and its outgoing edges (the distinct
// partitions its cross-partition refs point to) for the planner's
// acyclicity check.
type repackScanResp struct {
	Leaves []leafSummary
	Points int
	Out    []cluster.NodeID
}

// migrateReq asks the receiving partition to migrate the movable leaf
// Node to partition Dest via the phased protocol above.
type migrateReq struct {
	Node int32
	Dest cluster.NodeID
}

// migrateResp reports the outcome; Moved is false when validation or
// the fabric refused (the leaf stays fully local either way).
type migrateResp struct {
	Moved  bool
	Points int
}

func init() {
	cluster.RegisterMessage(repackScanReq{})
	cluster.RegisterMessage(repackScanResp{})
	cluster.RegisterMessage(migrateReq{})
	cluster.RegisterMessage(migrateResp{})
}

// handleRepackScan summarizes the partition's local leaves under the
// read lock. Boxes are copied — the coordinator reads them after the
// lock is gone.
func (p *partition) handleRepackScan() (any, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	movable := make(map[int32]bool)
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.leaf || n.moved {
			continue
		}
		for _, ref := range []childRef{n.left, n.right} {
			if !p.local(ref) {
				continue
			}
			if c := &p.nodes[ref.Node]; c.leaf && !c.moved && !c.migrating {
				movable[ref.Node] = true
			}
		}
	}
	resp := repackScanResp{Points: p.points}
	out := make(map[cluster.NodeID]bool)
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.moved {
			if n.fwd.Part != p.id {
				out[n.fwd.Part] = true
			}
			continue
		}
		if n.leaf {
			if n.lo != nil {
				resp.Leaves = append(resp.Leaves, leafSummary{
					Node:    int32(i),
					Points:  len(n.bucket),
					Lo:      append([]float64(nil), n.lo...),
					Hi:      append([]float64(nil), n.hi...),
					Movable: movable[int32(i)],
				})
			}
			continue
		}
		for _, ref := range []childRef{n.left, n.right} {
			if ref.Part != p.id {
				out[ref.Part] = true
			}
		}
	}
	for id := range out {
		resp.Out = append(resp.Out, id)
	}
	return resp, nil
}

// reaches reports whether `to` is reachable from `from` in the
// partition edge graph (including from == to).
func reaches(adj map[cluster.NodeID][]cluster.NodeID, from, to cluster.NodeID) bool {
	if from == to {
		return true
	}
	seen := map[cluster.NodeID]bool{from: true}
	stack := []cluster.NodeID{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// movableParentLocked validates that node is currently a movable leaf
// and locates its single in-edge: the local routing parent whose child
// ref points at it. Callers hold the write lock.
func (p *partition) movableParentLocked(node int32) (parent int32, right bool, ok bool) {
	if node < 0 || int(node) >= len(p.nodes) {
		return 0, false, false
	}
	n := &p.nodes[node]
	if !n.leaf || n.moved || n.migrating || n.lo == nil {
		return 0, false, false
	}
	self := childRef{Part: p.id, Node: node}
	for i := range p.nodes {
		q := &p.nodes[i]
		if q.leaf || q.moved {
			continue
		}
		if q.left == self {
			return int32(i), false, true
		}
		if q.right == self {
			return int32(i), true, true
		}
	}
	return 0, false, false
}

// handleMigrate runs the phased migration of one leaf; see the file
// comment for the protocol. The parent edge found at pin time stays
// valid through the drain: it can only change via a spill or a split of
// this leaf, and both are excluded while the leaf is marked migrating.
func (p *partition) handleMigrate(r migrateReq) (any, error) {
	if r.Dest == p.id {
		return migrateResp{}, nil
	}

	// Pin: validate and mark under the write lock; snapshot the bucket
	// and its exact box.
	p.mu.Lock()
	parent, right, ok := p.movableParentLocked(r.Node)
	if !ok {
		p.mu.Unlock()
		return migrateResp{}, nil
	}
	leaf := &p.nodes[r.Node]
	leaf.migrating = true
	snapshot := append([]kdtree.Point(nil), leaf.bucket...)
	lo := append([]float64(nil), leaf.lo...)
	hi := append([]float64(nil), leaf.hi...)
	p.mu.Unlock()

	abort := func() (any, error) {
		p.mu.Lock()
		p.nodes[r.Node].migrating = false
		p.mu.Unlock()
		return migrateResp{}, nil
	}

	// Adopt: ship the snapshot with no lock held. The destination is a
	// live partition — this call must never run under p.mu.
	resp, err := p.t.call(p.id, r.Dest, adoptReq{Bucket: snapshot, Lo: lo, Hi: hi})
	if err != nil {
		return abort()
	}
	ref := childRef{Part: r.Dest, Node: resp.(adoptResp).Node}

	// Drain and commit: forward whatever raced into the live bucket
	// since the snapshot, then commit atomically once no unforwarded
	// delta remains.
	sent := len(snapshot)
	for {
		p.mu.Lock()
		leaf := &p.nodes[r.Node]
		if len(leaf.bucket) == sent {
			if p.remoteBoxes == nil {
				p.remoteBoxes = make(map[childRef]box)
			}
			p.remoteBoxes[ref] = copyBox(leaf.lo, leaf.hi)
			if right {
				p.nodes[parent].right = ref
			} else {
				p.nodes[parent].left = ref
			}
			moved := len(leaf.bucket)
			p.points -= moved
			leaf.bucket = nil
			leaf.leaf = false
			leaf.moved = true
			leaf.fwd = ref
			leaf.lo, leaf.hi = nil, nil
			leaf.migrating = false
			p.mu.Unlock()
			return migrateResp{Moved: true, Points: moved}, nil
		}
		delta := append([]kdtree.Point(nil), leaf.bucket[sent:]...)
		sent = len(leaf.bucket)
		p.mu.Unlock()
		for _, pt := range delta {
			if _, err := p.t.call(p.id, r.Dest, insertReq{Node: ref.Node, Point: pt}); err != nil {
				return abort()
			}
		}
	}
}

// RepackConfig bounds one background repacking pass.
type RepackConfig struct {
	// MaxMoves caps the leaf migrations this pass may execute; a value
	// <= 0 moves nothing (the pass only returns zero stats).
	MaxMoves int
	// MinGain is the minimum placement-score improvement (home score
	// minus best score, on the kernel's normalized scale) a move must
	// promise. The default 0 still requires a strictly positive gain.
	MinGain float64
}

// RepackStats reports one repacking pass.
type RepackStats struct {
	Scanned     int // movable leaves considered
	Moved       int // migrations committed
	MovedPoints int // points those migrations relocated
	Rejected    int // moves refused: validation, the fabric, or a cycle-closing edge
}

// Repack runs one budget-limited background repacking pass; see the
// file comment. It is safe to run while queries and inserts proceed —
// query results are unaffected (exact k-NN and range results do not
// depend on which partition hosts which subtree), and the box caches
// stay exact, which the repack tests assert with the PR 5 invariant
// checks. The context bounds the pass between migrations; a pass cut
// short leaves the tree fully consistent.
func (t *Tree) Repack(ctx context.Context, cfg RepackConfig) (RepackStats, error) {
	var st RepackStats
	if cfg.MaxMoves <= 0 {
		return st, nil
	}
	// One pass at a time: the acyclicity check below reasons over the
	// edge graph as this pass extends it, which two interleaved planners
	// would invalidate. Spills stay safe concurrently — their edges go
	// to fresh, edge-less partitions and cannot close a cycle.
	t.repackMu.Lock()
	defer t.repackMu.Unlock()
	t.mu.RLock()
	parts := append([]*partition(nil), t.parts...)
	t.mu.RUnlock()
	if len(parts) < 2 {
		return st, nil
	}

	ids := make([]cluster.NodeID, len(parts))
	scans := make([]repackScanResp, len(parts))
	for i, p := range parts {
		//semtree:allow lockedcall: repackMu only serializes repack passes; no handler or query path acquires it, so no lock cycle is possible
		resp, err := t.callCtx(ctx, cluster.ClientID, p.id, repackScanReq{})
		if err != nil {
			return st, fmt.Errorf("core: repack scan: %w", err)
		}
		ids[i] = p.id
		scans[i] = resp.(repackScanResp)
	}

	// The kernel's target view: one union box + load per partition.
	targets := make([]placeTarget, len(parts))
	for i, s := range scans {
		tg := placeTarget{id: ids[i], points: s.Points}
		for _, l := range s.Leaves {
			tg.lo, tg.hi = unionExpand(tg.lo, tg.hi, l.Lo, l.Hi)
		}
		targets[i] = tg
	}

	// The edge graph for the acyclicity constraint (see the file
	// comment): a leaf may only move to a destination that cannot reach
	// back into its source partition.
	adj := make(map[cluster.NodeID][]cluster.NodeID, len(parts))
	for i, s := range scans {
		adj[ids[i]] = s.Out
	}

	// Score every movable leaf against every *legal* partition, its
	// home priced as if the leaf were absent (union of its siblings),
	// so a leaf that alone stretches its partition's box sees its true
	// cost of staying. Candidates keep the kernel's load and hop terms,
	// so the repacker converges toward the same layout spill-time
	// placement aims for.
	type planned struct {
		part   cluster.NodeID
		node   int32
		points int
		gain   float64
		dest   cluster.NodeID
	}
	var plan []planned
	for i, s := range scans {
		for _, l := range s.Leaves {
			if !l.Movable {
				continue
			}
			st.Scanned++
			home := placeTarget{id: ids[i], points: s.Points - l.Points}
			for _, o := range s.Leaves {
				if o.Node == l.Node {
					continue
				}
				home.lo, home.hi = unionExpand(home.lo, home.hi, o.Lo, o.Hi)
			}
			cand := make([]placeTarget, len(targets))
			copy(cand, targets)
			cand[i] = home
			scores := placeScores(placeBox{lo: l.Lo, hi: l.Hi, points: l.Points}, cand, t.model.hopToNs)
			best := i
			for j, sc := range scores {
				if j != i && reaches(adj, ids[j], ids[i]) {
					continue // the edge i→j would close a cycle
				}
				if sc < scores[best] {
					best = j
				} else if sc == scores[best] && j < best {
					best = j
				}
			}
			if best == i {
				continue
			}
			gain := scores[i] - scores[best]
			if gain <= cfg.MinGain {
				continue
			}
			plan = append(plan, planned{part: ids[i], node: l.Node, points: l.Points, gain: gain, dest: ids[best]})
		}
	}
	//semtree:allow boundaryonce: maintenance-time move ranking for the repack budget; not on the query-result path
	sort.Slice(plan, func(a, b int) bool {
		if plan[a].gain != plan[b].gain {
			return plan[a].gain > plan[b].gain
		}
		if plan[a].part != plan[b].part {
			return plan[a].part < plan[b].part
		}
		return plan[a].node < plan[b].node
	})
	// Select under the budget. Destinations were chosen against the
	// scan-time graph; each accepted move extends the working graph, so
	// re-check here — a later move whose edge a just-accepted one made
	// cycle-closing is refused, not executed.
	selected := plan[:0]
	for _, mv := range plan {
		if len(selected) == cfg.MaxMoves {
			break
		}
		if reaches(adj, mv.dest, mv.part) {
			st.Rejected++
			continue
		}
		adj[mv.part] = append(adj[mv.part], mv.dest)
		selected = append(selected, mv)
	}

	for _, mv := range selected {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		//semtree:allow lockedcall: repackMu only serializes repack passes; no handler or query path acquires it, so no lock cycle is possible
		resp, err := t.callCtx(ctx, cluster.ClientID, mv.part, migrateReq{Node: mv.node, Dest: mv.dest})
		if err != nil {
			st.Rejected++
			continue
		}
		if mr := resp.(migrateResp); mr.Moved {
			st.Moved++
			st.MovedPoints += mr.Points
		} else {
			st.Rejected++
		}
	}
	return st, nil
}
