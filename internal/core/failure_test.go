package core

import (
	"context"
	"math/rand"
	"testing"

	"semtree/internal/cluster"
)

func TestQueriesUnderFailureInjection(t *testing.T) {
	// Cross-partition search messages are retried on transient
	// failures; with a bounded failure rate and enough attempts every
	// query must still return the exact answer.
	fabric := cluster.NewInProc(cluster.InProcOptions{FailureRate: 0.10, Seed: 7})
	defer fabric.Close()
	r := rand.New(rand.NewSource(8))
	pts := randomPoints(r, 1000, 3)
	tr := mustTree(t, Config{
		Dim: 3, BucketSize: 8,
		PartitionCapacity: 120, MaxPartitions: 6,
		Fabric: fabric, RetryAttempts: 40,
	})
	if err := tr.InsertAll(pts, 2); err != nil {
		t.Fatal(err)
	}
	if tr.PartitionCount() < 2 {
		t.Fatalf("no partitioning: %d", tr.PartitionCount())
	}
	for q := 0; q < 30; q++ {
		query := []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		got, err := tr.KNearest(context.Background(), query, 5)
		if err != nil {
			t.Fatalf("KNN under failures: %v", err)
		}
		if want := bruteKNN(pts, query, 5); !sameDistances(got, want) {
			t.Fatal("KNN wrong under failures")
		}
		gotR, err := tr.RangeSearch(context.Background(), query, 15)
		if err != nil {
			t.Fatalf("range under failures: %v", err)
		}
		if wantR := bruteRange(pts, query, 15); !sameIDSets(gotR, wantR) {
			t.Fatal("range wrong under failures")
		}
	}
	if fabric.Stats().Failures == 0 {
		t.Fatal("no failures injected — test vacuous")
	}
}

func TestQueryFailsWhenRetriesExhausted(t *testing.T) {
	// With certain failure and no retries budget, cross-partition
	// operations must surface an error rather than return wrong data.
	fabric := cluster.NewInProc(cluster.InProcOptions{Seed: 9})
	r := rand.New(rand.NewSource(10))
	pts := randomPoints(r, 500, 2)
	tr := mustTree(t, Config{
		Dim: 2, BucketSize: 8,
		PartitionCapacity: 80, MaxPartitions: 4,
		Fabric: fabric, RetryAttempts: 2,
	})
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	// Close the fabric out from under the tree: every cross-partition
	// call now fails permanently.
	fabric.Close()
	if _, err := tr.KNearest(context.Background(), []float64{50, 50}, 3); err == nil {
		t.Fatal("query on dead fabric returned no error")
	}
}
