package core

import (
	"math"
	"sync"

	"semtree/internal/kdtree"
)

// handleKNN implements the distributed k-nearest search (§III-B.3).
// The request carries the caller's current result set Rs; the local
// traversal continues the sequential backtracking algorithm, forwarding
// Rs across partition boundaries and returning the merged set. The
// read lock is held for the whole local traversal, so references cannot
// go stale mid-search; nested calls only ever go downstream in the
// partition DAG, so locking cannot cycle.
func (p *partition) handleKNN(r knnReq) (any, error) {
	if r.K <= 0 {
		return knnResp{}, nil
	}
	rs := newResultSet(r.K, r.Rs)
	p.mu.RLock()
	err := p.knnVisit(r.Node, r.Query, rs)
	p.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return knnResp{Rs: rs.items}, nil
}

func (p *partition) knnVisit(idx int32, q []float64, rs *resultSet) error {
	n := &p.nodes[idx]
	if n.moved {
		return p.remoteKNN(n.fwd, q, rs)
	}
	if n.leaf {
		for _, pt := range n.bucket {
			rs.offer(kdtree.Neighbor{Point: pt, Dist: euclidean(q, pt.Coords)})
		}
		return nil
	}
	near, far := n.left, n.right
	if q[n.splitDim] > n.splitVal {
		near, far = far, near
	}
	if err := p.knnChild(near, q, rs); err != nil {
		return err
	}
	// Backtracking condition (§III-B.3): visit the unexplored subtree
	// when the result set is not full (Rs.length() < K) or the worst
	// kept distance still crosses the splitting plane.
	planeDist := math.Abs(q[n.splitDim] - n.splitVal)
	if !rs.full() || rs.worst() > planeDist {
		return p.knnChild(far, q, rs)
	}
	return nil
}

func (p *partition) knnChild(ref childRef, q []float64, rs *resultSet) error {
	if p.local(ref) {
		return p.knnVisit(ref.Node, q, rs)
	}
	return p.remoteKNN(ref, q, rs)
}

func (p *partition) remoteKNN(ref childRef, q []float64, rs *resultSet) error {
	resp, err := p.t.call(p.id, ref.Part, knnReq{Node: ref.Node, Query: q, K: rs.k, Rs: rs.items})
	if err != nil {
		return err
	}
	rs.replace(resp.(knnResp).Rs)
	return nil
}

// handleRange implements the distributed range search (§III-B.4).
// Descending, both children are visited when |P[SI] − Sv| <= D; "if the
// current node is a border node, the navigation is performed in a
// parallel way": remote subtrees are queried on their own goroutines
// while the local side proceeds, and the partial result sets are merged
// on the way back.
func (p *partition) handleRange(r rangeReq) (any, error) {
	if r.D < 0 {
		return rangeResp{}, nil
	}
	col := &rangeCollector{}
	p.mu.RLock()
	p.rangeVisit(r.Node, r.Query, r.D, col)
	p.mu.RUnlock()
	col.wg.Wait()
	if col.err != nil {
		return nil, col.err
	}
	return rangeResp{Neighbors: col.out}, nil
}

// rangeCollector accumulates matches from the local traversal and any
// parallel remote fan-outs.
type rangeCollector struct {
	mu  sync.Mutex
	wg  sync.WaitGroup
	out []kdtree.Neighbor
	err error
}

func (c *rangeCollector) add(ns []kdtree.Neighbor) {
	c.mu.Lock()
	c.out = append(c.out, ns...)
	c.mu.Unlock()
}

func (c *rangeCollector) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (p *partition) rangeVisit(idx int32, q []float64, d float64, col *rangeCollector) {
	n := &p.nodes[idx]
	if n.moved {
		p.remoteRange(n.fwd, q, d, col, false)
		return
	}
	if n.leaf {
		var local []kdtree.Neighbor
		for _, pt := range n.bucket {
			if dist := euclidean(q, pt.Coords); dist <= d {
				local = append(local, kdtree.Neighbor{Point: pt, Dist: dist})
			}
		}
		if local != nil {
			col.add(local)
		}
		return
	}
	if math.Abs(q[n.splitDim]-n.splitVal) <= d {
		// Border node: both subtrees qualify; remote ones in parallel.
		p.rangeChild(n.left, q, d, col, true)
		p.rangeChild(n.right, q, d, col, true)
		return
	}
	if q[n.splitDim] <= n.splitVal {
		p.rangeChild(n.left, q, d, col, false)
	} else {
		p.rangeChild(n.right, q, d, col, false)
	}
}

func (p *partition) rangeChild(ref childRef, q []float64, d float64, col *rangeCollector, parallel bool) {
	if p.local(ref) {
		p.rangeVisit(ref.Node, q, d, col)
		return
	}
	p.remoteRange(ref, q, d, col, parallel)
}

func (p *partition) remoteRange(ref childRef, q []float64, d float64, col *rangeCollector, parallel bool) {
	call := func() {
		resp, err := p.t.call(p.id, ref.Part, rangeReq{Node: ref.Node, Query: q, D: d})
		if err != nil {
			col.fail(err)
			return
		}
		if ns := resp.(rangeResp).Neighbors; len(ns) > 0 {
			col.add(ns)
		}
	}
	if !parallel {
		call()
		return
	}
	col.wg.Add(1)
	go func() {
		defer col.wg.Done()
		call()
	}()
}

func euclidean(q, p []float64) float64 {
	s := 0.0
	for i := range q {
		d := q[i] - p[i]
		s += d * d
	}
	return math.Sqrt(s)
}
