package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// ctxCheckMask throttles context polling on the traversal hot path: the
// deadline is re-checked every 64 visited nodes, so an expired query
// abandons a deep local traversal within a bounded number of pops
// without paying an atomic load per node.
const ctxCheckMask = 63

// queryCtx is the per-query execution context of the k-nearest engine:
// the scratch result set, the explicit visit stack, the remote subtrees
// the local traversal ran into, the work counters reported back with
// the response, and the collector state for parallel fan-outs. Contexts
// are pooled — a query borrows one, traverses, copies its result onto
// the wire and releases it — so steady-state searches allocate only the
// response slice and the fan-out messages.
type queryCtx struct {
	rs      resultSet
	stack   []knnFrame
	pending []knnFrame        // remote subtrees deferred until the local bound is final
	fp      []kdtree.Neighbor // scratch Rs snapshot for probe-miss detection
	steps   int64             // visited-node counter driving the periodic ctx check

	// stats accumulates this partition's own traversal work plus the
	// folded stats of every downstream response. Plain increments are
	// only performed by the traversal goroutine strictly before the
	// fan-out goroutines launch; the goroutines fold under mu.
	stats queryStats

	mu       sync.Mutex
	wg       sync.WaitGroup
	partials [][]kdtree.Neighbor
	err      error
}

// knnFrame is one pending subtree visit. guardSq >= 0 guards the
// visit: no point of the subtree can lie closer to the query than
// sqrt(guardSq), so the subtree is skipped when the result ball no
// longer reaches it. The guard is the exact squared min distance from
// the query to the subtree's bounding box (falling back to the squared
// splitting-plane distance when a remote region is unknown, or always
// under Config.PlaneGuardOnly) and is evaluated at pop time — after
// the nearer sibling's subtree has been fully explored — which is the
// backtracking condition of §III-B.3 (visit the unexplored side when
// Rs.length() < K or the worst kept distance still reaches the
// region). We skip only when the guard is *strictly* beyond the worst
// kept candidate: at exact equality a point on the region's boundary
// could tie the k-th best with a smaller ID, and every guard
// (plane or box, sequential or fan-out) must keep the same winner for
// all modes to stay bit-identical. guardSq < 0 marks an unconditional
// visit.
type knnFrame struct {
	ref     childRef
	guardSq float64
	// home marks a subtree the traversal reached unconditionally — the
	// query's own descent path lies in it. Deferred home subtrees are
	// re-guarded by their region like any sibling (a provably-worse one
	// is pruned outright), but while one survives it keeps the paper's
	// probe priority: the partition holding the query's own region is
	// probed first, which tightens the ball best.
	home bool
}

var queryCtxPool = sync.Pool{New: func() any { return new(queryCtx) }}

func getQueryCtx(k int, seed []kdtree.Neighbor) *queryCtx {
	c := queryCtxPool.Get().(*queryCtx)
	c.rs.reset(k, seed)
	c.stack = c.stack[:0]
	c.pending = c.pending[:0]
	c.steps = 0
	c.stats = queryStats{}
	c.err = nil
	return c
}

func putQueryCtx(c *queryCtx) {
	for i := range c.partials {
		c.partials[i] = nil // drop wire slices; only the scratch is pooled
	}
	c.partials = c.partials[:0]
	for i := range c.fp {
		c.fp[i] = kdtree.Neighbor{} // likewise: snapshots alias result points
	}
	c.fp = c.fp[:0]
	queryCtxPool.Put(c)
}

func (c *queryCtx) push(ref childRef, guardSq float64) {
	c.stack = append(c.stack, knnFrame{ref: ref, guardSq: guardSq})
}

// snapshotRs copies the current result set into the scratch
// fingerprint buffer, for comparing against the post-merge set.
func (c *queryCtx) snapshotRs() {
	c.fp = append(c.fp[:0], c.rs.Items...)
}

// noteMiss counts a probe miss when the downstream reply left the
// result set exactly as the snapshot it was seeded with: the remote
// region was probed and contributed nothing — the work a tighter
// guard would have skipped outright. Each call is judged against its
// own seed, never against what other partials found, so the count is
// deterministic regardless of fan-out completion order.
func (c *queryCtx) noteMiss() {
	if neighborsEqual(c.fp, c.rs.Items) {
		c.stats.Misses++
	}
}

// neighborsEqual compares two result slices entry-by-entry on the
// (ID, Dist) identity the equivalence contract is stated in.
func neighborsEqual(a, b []kdtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Point.ID != b[i].Point.ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func (c *queryCtx) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *queryCtx) collect(items []kdtree.Neighbor, st queryStats, miss bool) {
	c.mu.Lock()
	c.partials = append(c.partials, items)
	c.stats.fold(st)
	if miss {
		c.stats.Misses++
	}
	c.mu.Unlock()
}

// checkCtx polls ctx every ctxCheckMask+1 visited nodes. It returns a
// non-nil error once the query is cancelled or past its deadline.
func (c *queryCtx) checkCtx(ctx context.Context) error {
	c.steps++
	if c.steps&ctxCheckMask == 0 {
		return ctx.Err()
	}
	return nil
}

// handleKNN implements the distributed k-nearest search (§III-B.3).
// The request carries the caller's current result set Rs (squared
// distances, see knnReq); the local traversal continues the
// backtracking algorithm over an explicit visit stack. Remote subtrees
// are handled two ways:
//
//   - Seq mode: the paper's sequential protocol — a synchronous fabric
//     call forwards Rs and adopts the merged set before continuing, so
//     later pruning uses the tightest possible bound.
//   - Default (parallel): remote subtrees whose guard still crosses the
//     search ball are deferred until the local traversal finishes, then
//     re-checked against the now-final local bound, grouped by hosting
//     partition, and dispatched as one goroutine-backed fabric call per
//     partition (at most M−1 per wave), mirroring the range search's
//     border-node navigation (§III-B.4). The returned partial sets are
//     merged under the (Dist, ID) tie-break ordering.
//
// Both modes return identical result sets: the snapshot seed and the
// deferred guard re-check only change how much work pruning saves (a
// remote may examine more candidates, never fewer), and every
// candidate either beats the final k-th best or is discarded on merge.
//
// Cancellation is checked between traversal strides (every 64 node
// pops), before each remote hop, and between fan-out waves; the fabric
// calls themselves carry ctx, so an expired query abandons in-flight
// partition replies at the transport instead of waiting them out. The
// wait on the fan-out WaitGroup is therefore bounded by the fabric's
// cancellation latency, which keeps the pooled context safe to reuse.
//
// The read lock is held for the whole local traversal, so references
// cannot go stale mid-search; nested calls only ever go downstream in
// the partition DAG, so locking cannot cycle. The fan-out runs after
// the lock is released, exactly like handleRange's collector.
func (p *partition) handleKNN(ctx context.Context, r knnReq) (any, error) {
	if r.K <= 0 {
		return knnResp{}, nil
	}
	c := getQueryCtx(r.K, r.Rs)
	defer putQueryCtx(c)
	p.mu.RLock()
	start := time.Now()
	//semtree:allow lockedcall: Seq-mode remote hops only descend the partition DAG (child partitions never call back up), so the read lock cannot cycle
	err := p.knnTraverse(ctx, r, c)
	elapsed := time.Since(start)
	p.mu.RUnlock()
	if err == nil && c.stats.Msgs == 0 && c.stats.Nodes > 0 {
		// Hop-free traversal: pure local compute, the cost model's
		// per-node price observation (in Seq mode the traversal embeds
		// synchronous hops, which Msgs exposes — those runs are skipped).
		p.t.model.observeCompute(elapsed, c.stats.Nodes)
	}
	if err == nil {
		p.dispatchPending(ctx, r, c)
	}
	c.wg.Wait()
	if err == nil {
		err = c.err
	}
	if err != nil {
		return nil, err
	}
	for _, partial := range c.partials {
		c.rs.merge(partial)
	}
	st := c.stats
	st.Parts++ // this partition's own handler execution
	return knnResp{Rs: c.rs.export(), Stats: st}, nil
}

func (p *partition) knnTraverse(ctx context.Context, r knnReq, c *queryCtx) error {
	if len(r.Entries) > 0 {
		// Fan-out continuation: seed the stack with every guarded
		// entry, reversed so the first entry pops first.
		for i := len(r.Entries) - 1; i >= 0; i-- {
			c.push(childRef{Part: p.id, Node: r.Entries[i].Node}, r.Entries[i].GuardSq)
		}
	} else {
		c.push(childRef{Part: p.id, Node: r.Node}, -1)
	}
	for len(c.stack) > 0 {
		f := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		if f.guardSq >= 0 && c.rs.Full() && c.rs.Worst() < f.guardSq {
			continue // backtracking prune: the result ball cannot reach the region
		}
		if err := c.checkCtx(ctx); err != nil {
			return err
		}
		c.stats.Nodes++
		if !p.local(f.ref) {
			if err := p.remoteKNN(ctx, f.ref, f.guardSq, r, c); err != nil {
				return err
			}
			continue
		}
		n := &p.nodes[f.ref.Node]
		switch {
		case n.moved:
			if err := p.remoteKNN(ctx, n.fwd, f.guardSq, r, c); err != nil {
				return err
			}
		case n.leaf:
			c.stats.Buckets++
			c.stats.Dists += int64(len(n.bucket))
			for _, pt := range n.bucket {
				c.rs.Offer(kdtree.Neighbor{Point: pt, Dist: euclideanSq(r.Query, pt.Coords)})
			}
		default:
			near, far := n.left, n.right
			if r.Query[n.splitDim] > n.splitVal {
				near, far = far, near
			}
			plane := r.Query[n.splitDim] - n.splitVal
			// LIFO: far is guarded by its region's exact min-distance
			// (plane² fallback for an unknown remote region) and pops
			// only after near's whole subtree has been explored.
			c.push(far, p.guardSq(far, r.Query, plane*plane))
			c.push(near, -1)
		}
	}
	return nil
}

// remoteKNN hands a remote subtree off. In Seq mode the call is
// synchronous and Rs travels with the request; the merged set replaces
// ours and tightens all later pruning, the paper's protocol. Otherwise
// the subtree joins the pending list — with the guard it already
// passed, so the final local bound can still rule it out — for the
// per-partition fan-out after the local traversal.
func (p *partition) remoteKNN(ctx context.Context, ref childRef, guardSq float64, r knnReq, c *queryCtx) error {
	// A near-side subtree reaches here unconditional (guardSq < 0) —
	// the traversal had to descend toward it — but crossing the
	// partition boundary is a message either way, and the remote
	// region's exact min-distance can rule the hop out like any guarded
	// sibling. Re-guard it with its cached box; it stays unconditional
	// when the region is unknown, or under the plane-guard ablation,
	// whose baseline must keep the paper's semantics.
	home := guardSq < 0
	if home && !p.t.cfg.PlaneGuardOnly {
		if minSq, ok := p.childBoxMinSq(ref, r.Query); ok {
			guardSq = minSq
		}
	}
	if guardSq >= 0 && c.rs.Full() && c.rs.Worst() < guardSq {
		return nil // provably beyond the k-th best: no message spent
	}
	if r.Seq {
		c.snapshotRs()
		resp, err := p.t.callCtx(ctx, p.id, ref.Part,
			knnReq{Node: ref.Node, Query: r.Query, K: r.K, Rs: c.rs.Items, Seq: true})
		if err != nil {
			return err
		}
		kr := resp.(knnResp)
		c.rs.replace(kr.Rs)
		c.stats.fold(kr.Stats)
		c.noteMiss()
		return nil
	}
	c.pending = append(c.pending, knnFrame{ref: ref, guardSq: guardSq, home: home})
	return nil
}

// dispatchPending resolves the remote subtrees the local traversal ran
// into, in three steps:
//
//  1. Re-check every deferred subtree against the now-final local bound
//     and group the survivors by hosting partition (one message per
//     partition — each wave stays within the paper's M−1 parallel
//     operations, and the remote side prunes across its entries with
//     its own evolving bound).
//  2. Probe the most promising partition — the one holding the subtree
//     whose region has the smallest exact min-distance to the query
//     (true min-distance ranking; the splitting-plane distance is only
//     the fallback for an unknown region) — *synchronously*, exactly
//     like the sequential protocol's first hop. Its merged set tightens
//     the search ball, which usually rules most other partitions out;
//     when only one partition qualifies this degrades to the sequential
//     protocol and costs nothing extra.
//  3. Fan the remaining partitions out on goroutines against a snapshot
//     of the tightened Rs, and let handleKNN merge the partials.
//
// The context is re-checked before each wave; once it is done no
// further messages are dispatched and the error surfaces via c.err.
// Returning a dispatch error is handled by the caller via c.err.
func (p *partition) dispatchPending(ctx context.Context, r knnReq, c *queryCtx) {
	if len(c.pending) == 0 {
		return
	}
	groups := make(map[cluster.NodeID][]knnEntry)
	minGuard := make(map[cluster.NodeID]float64)
	for _, f := range c.pending {
		if f.guardSq >= 0 && c.rs.Full() && c.rs.Worst() < f.guardSq {
			continue
		}
		guard := f.guardSq
		if f.home || guard < 0 {
			// The query's own region lives there: a surviving home
			// subtree keeps first probe priority regardless of its
			// re-guard — it tightens the ball best.
			guard = math.Inf(-1)
		}
		if cur, ok := minGuard[f.ref.Part]; !ok || guard < cur {
			minGuard[f.ref.Part] = guard
		}
		groups[f.ref.Part] = append(groups[f.ref.Part],
			knnEntry{Node: f.ref.Node, GuardSq: f.guardSq})
	}
	if len(groups) == 0 {
		return
	}
	if err := ctx.Err(); err != nil {
		c.fail(err)
		return
	}
	probe := cluster.NodeID(-1)
	for part, guard := range minGuard {
		if probe < 0 || guard < minGuard[probe] ||
			(guard == minGuard[probe] && part < probe) {
			probe = part
		}
	}
	c.snapshotRs()
	resp, err := p.t.callCtx(ctx, p.id, probe,
		knnReq{Query: r.Query, K: r.K, Rs: c.rs.Items, Entries: groups[probe]})
	if err != nil {
		c.fail(err)
		return
	}
	kr := resp.(knnResp)
	c.rs.replace(kr.Rs)
	c.stats.fold(kr.Stats)
	c.noteMiss()
	delete(groups, probe)

	if err := ctx.Err(); err != nil {
		if len(groups) > 0 {
			c.fail(err)
		}
		return
	}
	var seed []kdtree.Neighbor
	for part, entries := range groups {
		kept := entries[:0]
		for _, e := range entries {
			if e.GuardSq >= 0 && c.rs.Full() && c.rs.Worst() < e.GuardSq {
				continue // the probe's tightened ball rules it out
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			continue
		}
		if seed == nil {
			seed = c.rs.export()
		}
		c.wg.Add(1)
		go func(part cluster.NodeID, entries []knnEntry) {
			defer c.wg.Done()
			resp, err := p.t.callCtx(ctx, p.id, part,
				knnReq{Query: r.Query, K: r.K, Rs: seed, Entries: entries})
			if err != nil {
				c.fail(err)
				return
			}
			kr := resp.(knnResp)
			// A wave reply is judged a miss against the shared seed it
			// was sent — not against the evolving merged set — so the
			// count does not depend on completion order.
			c.collect(kr.Rs, kr.Stats, neighborsEqual(seed, kr.Rs))
		}(part, kept)
	}
}

// handleRange implements the distributed range search (§III-B.4).
// Descending, both children are visited when |P[SI] − Sv| <= D; "if the
// current node is a border node, the navigation is performed in a
// parallel way": remote subtrees are queried on their own goroutines
// while the local side proceeds, and the partial result sets are merged
// on the way back. Matches carry squared distances and arrive unsorted;
// Tree.RangeSearch applies the single sort and sqrt (see rangeResp).
// Cancellation follows the k-NN handler's scheme: periodic checks in
// the local traversal, ctx-carrying fabric calls for the fan-outs.
func (p *partition) handleRange(ctx context.Context, r rangeReq) (any, error) {
	if r.D < 0 {
		return rangeResp{}, nil
	}
	col := &rangeCollector{}
	p.mu.RLock()
	//semtree:allow lockedcall: remote range hops only descend the partition DAG, so the read lock cannot cycle
	p.rangeVisit(ctx, r.Node, r.Query, r.D, col)
	p.mu.RUnlock()
	col.wg.Wait()
	if col.err != nil {
		return nil, col.err
	}
	st := col.local
	st.merge(col.remote)
	st.Parts++
	return rangeResp{Neighbors: col.out, Stats: st}, nil
}

// rangeCollector accumulates matches and work counters from the local
// traversal and any parallel remote fan-outs. Unlike the k-NN fan-out,
// remote range calls overlap the local traversal, so the counters are
// split: local is owned by the traversal goroutine, remote is folded
// under mu by the fan-out goroutines, and the two are combined only
// after the WaitGroup drains. done flips on the first failure
// (including ctx expiry) and short-circuits the rest of the traversal,
// so a cancelled range query stops descending instead of finishing the
// local walk.
type rangeCollector struct {
	steps int64
	local queryStats // traversal goroutine only
	done  atomic.Bool

	mu     sync.Mutex
	wg     sync.WaitGroup
	remote queryStats // downstream responses, folded under mu
	out    []kdtree.Neighbor
	err    error
}

func (c *rangeCollector) add(ns []kdtree.Neighbor) {
	c.mu.Lock()
	c.out = append(c.out, ns...)
	c.mu.Unlock()
}

func (c *rangeCollector) collect(ns []kdtree.Neighbor, st queryStats) {
	c.mu.Lock()
	c.out = append(c.out, ns...)
	c.remote.fold(st)
	c.mu.Unlock()
}

func (c *rangeCollector) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.done.Store(true)
}

func (p *partition) rangeVisit(ctx context.Context, idx int32, q []float64, d float64, col *rangeCollector) {
	if col.done.Load() {
		return // a failure or ctx expiry already aborted the query
	}
	col.steps++
	if col.steps&ctxCheckMask == 0 {
		if err := ctx.Err(); err != nil {
			col.fail(err)
			return
		}
	}
	col.local.Nodes++
	n := &p.nodes[idx]
	if n.moved {
		p.remoteRange(ctx, n.fwd, q, d, col, false)
		return
	}
	if n.leaf {
		var local []kdtree.Neighbor
		dd := d * d
		col.local.Buckets++
		col.local.Dists += int64(len(n.bucket))
		for _, pt := range n.bucket {
			if sq := euclideanSq(q, pt.Coords); sq <= dd {
				local = append(local, kdtree.Neighbor{Point: pt, Dist: sq})
			}
		}
		if local != nil {
			col.add(local)
		}
		return
	}
	// Border node (the ball crosses the splitting plane): both subtrees
	// qualify on the plane bound, remote ones in parallel. The region
	// guard then skips any qualifying child whose bounding box provably
	// holds no match — the exact min-distance form of the same test —
	// unless the ablation pins the plane bound.
	border := math.Abs(q[n.splitDim]-n.splitVal) <= d
	left := border || q[n.splitDim] <= n.splitVal
	right := border || q[n.splitDim] > n.splitVal
	if !p.t.cfg.PlaneGuardOnly {
		dd := d * d
		if left {
			if minSq, ok := p.childBoxMinSq(n.left, q); ok && minSq > dd {
				left = false
			}
		}
		if right {
			if minSq, ok := p.childBoxMinSq(n.right, q); ok && minSq > dd {
				right = false
			}
		}
	}
	if left {
		p.rangeChild(ctx, n.left, q, d, col, border)
	}
	if right {
		p.rangeChild(ctx, n.right, q, d, col, border)
	}
}

func (p *partition) rangeChild(ctx context.Context, ref childRef, q []float64, d float64, col *rangeCollector, parallel bool) {
	if p.local(ref) {
		p.rangeVisit(ctx, ref.Node, q, d, col)
		return
	}
	p.remoteRange(ctx, ref, q, d, col, parallel)
}

func (p *partition) remoteRange(ctx context.Context, ref childRef, q []float64, d float64, col *rangeCollector, parallel bool) {
	call := func() {
		resp, err := p.t.callCtx(ctx, p.id, ref.Part, rangeReq{Node: ref.Node, Query: q, D: d})
		if err != nil {
			col.fail(err)
			return
		}
		rr := resp.(rangeResp)
		col.collect(rr.Neighbors, rr.Stats)
	}
	if !parallel {
		call()
		return
	}
	col.wg.Add(1)
	go func() {
		defer col.wg.Done()
		call()
	}()
}

// euclideanSq is the shared distance kernel (kdtree.EuclideanSq).
// Search runs entirely on squared distances — ordering and the
// backtracking bound are unchanged because squaring is monotone — and
// the single sqrt per result is deferred to the client boundary.
func euclideanSq(q, p []float64) float64 { return kdtree.EuclideanSq(q, p) }
