package core

import (
	"context"
	"fmt"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// The sorted bulk loader: streaming ingest lands as coordinate batches,
// not single points, and the paper's own observation — "Kd-trees are
// more efficient in bulk-loading situations (as required by our
// approach)" (§III-B) — applies to the distributed tree too. BulkLoad
// turns a batch into median-partitioned balanced fragments client-side
// and installs them wholesale, so construction costs O(batch/bucket)
// fabric messages instead of one navigation + split cascade per point:
//
//   - Empty tree: build the whole balanced tree client-side, cut its
//     top into a routing trunk plus frontier subtrees, install one
//     group of subtrees per data partition as the placement kernel
//     assigns them (geometrically close subtrees together), and graft
//     the trunk onto the root partition's entry leaf — the same shape
//     as Rebalance, minus the collect, and safe against concurrent
//     inserts: the graft merges any points that raced into the entry
//     leaf and refuses (falling back to the merge path) if the root
//     stopped being a leaf.
//   - Live tree: route the batch down the existing structure like a
//     pipelined insert batch, but replace each destination leaf with a
//     balanced fragment bulk-built over (bucket ∪ assigned points) in
//     one step — no per-point split cascade — and forward the entries
//     that leave the partition as nested bulk batches.
//
// Both paths keep the PR 5 region invariant: fragment boxes come out
// of the kdtree bulk builder exact, and every box on a descent path
// expands before the point lands, exactly as single inserts do.

// DefaultBulkChunk is the per-message batch size of the bulk merge
// path. Chunking bounds message size; each chunk is applied under one
// partition write lock per partition it touches.
const DefaultBulkChunk = 2048

// bulkAddReq routes a batch of points from their entry nodes and grafts
// balanced fragments at the destination leaves. Unlike insertBatchReq
// it is synchronous: the response acknowledges that the whole batch —
// including entries forwarded across partitions — has landed.
type bulkAddReq struct {
	Entries []batchEntry
}

// bulkAddResp acknowledges a bulk batch, all forwards included.
type bulkAddResp struct{}

// graftReq asks a partition to replace leaf node Entry with a
// serialized balanced fragment (Nodes[0] is the fragment root, landing
// in Entry's arena slot). Points already in the entry leaf are re-routed
// down the installed fragment, so a graft composes with concurrent
// inserts. The receiver refuses — OK false, nothing installed — when
// Entry is no longer a plain leaf (split, tombstoned or migrating).
type graftReq struct {
	Entry int32
	Nodes []wireNode
}

// graftResp reports whether the fragment was installed.
type graftResp struct {
	OK bool
}

func init() {
	cluster.RegisterMessage(bulkAddReq{})
	cluster.RegisterMessage(bulkAddResp{})
	cluster.RegisterMessage(graftReq{})
	cluster.RegisterMessage(graftResp{})
}

// BulkLoad inserts a batch of points through the bulk path. On an empty
// tree it builds the balanced layout client-side and distributes it
// across partitions via the placement kernel; on a live tree it merges
// the batch by grafting balanced fragments at the destination leaves.
// The call is synchronous: when it returns, every point is queryable.
// Concurrent BulkLoad calls serialize; concurrent Insert and queries
// are safe throughout. The input slice is not modified.
func (t *Tree) BulkLoad(ctx context.Context, pts []kdtree.Point) error {
	for i, p := range pts {
		if len(p.Coords) != t.cfg.Dim {
			return fmt.Errorf("core: point %d has %d coords, tree dimension is %d", i, len(p.Coords), t.cfg.Dim)
		}
	}
	if len(pts) == 0 {
		return nil
	}
	t.bulkMu.Lock()
	defer t.bulkMu.Unlock()
	if t.size.Load() == 0 {
		//semtree:allow lockedcall: bulkMu only serializes bulk passes; no handler or query path acquires it, so no lock cycle is possible
		ok, err := t.bulkBuild(pts)
		if err != nil {
			return err
		}
		if ok {
			t.size.Add(int64(len(pts)))
			return nil
		}
		// The root grew under us (concurrent inserts split the entry
		// leaf while we were building): merge instead.
	}
	//semtree:allow lockedcall: bulkMu only serializes bulk passes; no handler or query path acquires it, so no lock cycle is possible
	return t.bulkMerge(ctx, pts)
}

// bulkShouldDistribute decides whether a from-scratch bulk build spreads
// frontier subtrees across data partitions: only when spilling is
// configured and one partition hosting the whole batch would trip the
// resource condition anyway.
func (t *Tree) bulkShouldDistribute(n int) bool {
	cfg := t.cfg
	if cfg.MaxPartitions <= 1 {
		return false
	}
	if cfg.CapacityCheck != nil {
		// Estimate the node count of a balanced tree over n points.
		nodes := 1
		if cfg.BucketSize > 0 {
			nodes = 2*(n/cfg.BucketSize) + 1
		}
		return cfg.CapacityCheck(PartitionInfo{Points: n, Nodes: nodes, Capacity: cfg.PartitionCapacity})
	}
	return cfg.PartitionCapacity > 0 && n > cfg.PartitionCapacity
}

// bulkBuild is the empty-tree fast path: balanced build, frontier cut,
// placement-kernel assignment, one install per frontier subtree, trunk
// graft on the root. It reports ok=false — with any partial installs
// undone — when the root partition's entry leaf stopped being a leaf
// while the client-side build ran, in which case the caller falls back
// to the merge path.
func (t *Tree) bulkBuild(pts []kdtree.Point) (bool, error) {
	ordered := append([]kdtree.Point(nil), pts...) // the kdtree builder reorders in place
	seq, err := kdtree.BulkLoad(ordered, t.cfg.Dim, t.cfg.BucketSize)
	if err != nil {
		return false, fmt.Errorf("core: bulk build: %w", err)
	}
	flat := seq.Flatten()
	root := t.rootPartition()

	var targets []cluster.NodeID
	if t.bulkShouldDistribute(len(pts)) && !flat[0].Leaf {
		targets = t.allocPartitions(t.cfg.MaxPartitions)
	}
	if len(targets) == 0 || flat[0].Leaf {
		// Single partition (or nothing to distribute over): graft the
		// whole balanced tree onto the root's entry leaf. The graft
		// handler runs the capacity check afterwards, so a dynamic
		// resource condition still spills normally.
		resp, err := t.call(cluster.ClientID, root.id, graftReq{Entry: 0, Nodes: wireNodes(flat)})
		if err != nil {
			return false, fmt.Errorf("core: bulk graft: %w", err)
		}
		return resp.(graftResp).OK, nil
	}

	frontier := cutFrontier(flat, len(targets))
	assign := t.assignFrontier(flat, frontier, targets)
	isFrontier := make(map[int32]childRef, len(frontier))
	used := make(map[cluster.NodeID]bool)
	undo := func() {
		for id := range used {
			// Fresh partitions hold only our fragments; reset precisely
			// undoes the install. The partitions stay allocated (empty)
			// and rejoin the layout through later spills or rebalance.
			_, _ = t.call(cluster.ClientID, id, resetReq{})
		}
	}
	for i, idx := range frontier {
		target := assign[i]
		sub, err := kdtree.Subtree(flat, idx)
		if err != nil {
			undo()
			return false, fmt.Errorf("core: bulk cut: %w", err)
		}
		resp, err := t.call(cluster.ClientID, target, installReq{Nodes: wireNodes(sub)})
		if err != nil {
			undo()
			return false, fmt.Errorf("core: bulk install: %w", err)
		}
		used[target] = true
		isFrontier[idx] = childRef{Part: target, Node: resp.(installResp).Node}
	}
	trunk := trunkNodes(flat, isFrontier)
	resp, err := t.call(cluster.ClientID, root.id, graftReq{Entry: 0, Nodes: trunk})
	if err != nil {
		undo()
		return false, fmt.Errorf("core: bulk trunk graft: %w", err)
	}
	if !resp.(graftResp).OK {
		undo()
		return false, nil
	}
	return true, nil
}

// bulkMerge streams the batch into a live tree in chunks, each chunk a
// synchronous bulkAddReq entering at the root.
func (t *Tree) bulkMerge(ctx context.Context, pts []kdtree.Point) error {
	root := t.rootPartition()
	for start := 0; start < len(pts); start += DefaultBulkChunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + DefaultBulkChunk
		if end > len(pts) {
			end = len(pts)
		}
		entries := make([]batchEntry, 0, end-start)
		for _, p := range pts[start:end] {
			entries = append(entries, batchEntry{Node: 0, Point: p})
		}
		if _, err := t.call(cluster.ClientID, root.id, bulkAddReq{Entries: entries}); err != nil {
			return fmt.Errorf("core: bulk merge: %w", err)
		}
		t.size.Add(int64(end - start))
	}
	return nil
}

// cutFrontier cuts a flat balanced tree below its root: BFS until the
// frontier is at least want wide (leaves stop growing). The root is
// always expanded, so the returned frontier never contains index 0 and
// a trunk always exists above it. The caller guarantees the root is not
// a leaf.
func cutFrontier(flat []kdtree.FlatNode, want int) []int32 {
	frontier := []int32{flat[0].Left, flat[0].Right}
	for len(frontier) < want {
		grew := false
		var next []int32
		for _, idx := range frontier {
			n := flat[idx]
			if n.Leaf {
				next = append(next, idx)
				continue
			}
			next = append(next, n.Left, n.Right)
			grew = true
		}
		frontier = next
		if !grew {
			break
		}
	}
	return frontier
}

// assignFrontier maps each frontier subtree to a target partition: the
// placement kernel packs geometrically close subtrees together
// (targets start empty, so the kernel spreads one anchor per partition
// and clusters the surplus); round-robin under the ablation policy.
func (t *Tree) assignFrontier(flat []kdtree.FlatNode, frontier []int32, targets []cluster.NodeID) []cluster.NodeID {
	assign := make([]cluster.NodeID, len(frontier))
	if t.cfg.Placement == PlacementRoundRobin {
		for i := range frontier {
			assign[i] = targets[i%len(targets)]
		}
		return assign
	}
	subs := make([]placeBox, len(frontier))
	for i, idx := range frontier {
		subs[i] = placeBox{lo: flat[idx].Lo, hi: flat[idx].Hi, points: flatPoints(flat, idx)}
	}
	tgs := make([]placeTarget, len(targets))
	for i, id := range targets {
		tgs[i] = placeTarget{id: id}
	}
	for i, ti := range placeSubtrees(subs, tgs, t.model.hopToNs) {
		assign[i] = targets[ti]
	}
	return assign
}

// handleBulkAdd applies one bulk chunk: descend every entry under one
// write lock (expanding path boxes exactly like single inserts), graft
// a balanced fragment per destination leaf, then — after the lock is
// released — forward the entries that left the partition as nested
// synchronous bulk batches and run the spill check.
func (p *partition) handleBulkAdd(r bulkAddReq) (any, error) {
	var forwards map[cluster.NodeID][]batchEntry
	groups := make(map[int32][]kdtree.Point)
	var path []int32
	p.mu.Lock()
	for _, e := range r.Entries {
		path = path[:0]
		leafIdx, ref, remote := p.descend(e.Node, e.Point.Coords, &path)
		p.expandPathBoxes(path, e.Point.Coords)
		if remote {
			p.expandRemoteBox(ref, e.Point.Coords)
			if forwards == nil {
				forwards = make(map[cluster.NodeID][]batchEntry)
			}
			forwards[ref.Part] = append(forwards[ref.Part], batchEntry{Node: ref.Node, Point: e.Point})
			continue
		}
		groups[leafIdx] = append(groups[leafIdx], e.Point)
	}
	var err error
	for leafIdx, batch := range groups {
		if gerr := p.graftLocked(leafIdx, batch); gerr != nil && err == nil {
			err = gerr
		}
	}
	spill := p.capacityExceededLocked()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for part, entries := range forwards {
		// Synchronous, strictly downstream (the partition DAG): the
		// bulk path acknowledges only after every entry has landed.
		if _, cerr := p.t.call(p.id, part, bulkAddReq{Entries: entries}); cerr != nil && err == nil {
			err = cerr
		}
	}
	if spill {
		p.buildPartition()
	}
	if err != nil {
		return nil, err
	}
	return bulkAddResp{}, nil
}

// graftLocked merges a batch into the leaf at idx. Small unions append
// like plain inserts; larger ones are replaced wholesale by a balanced
// fragment bulk-built over (bucket ∪ batch) — the step that removes the
// per-point split cascade. Migrating leaves only append (splits are
// deferred while the repacker drains them, exactly as splitLeaf does).
// Callers hold the write lock and have already expanded the descent
// path's boxes for every batch point.
func (p *partition) graftLocked(idx int32, batch []kdtree.Point) error {
	n := &p.nodes[idx]
	total := len(n.bucket) + len(batch)
	if n.migrating || total <= p.t.cfg.BucketSize {
		n.bucket = append(n.bucket, batch...)
		p.points += len(batch)
		p.inserts.Add(int64(len(batch)))
		return nil
	}
	all := make([]kdtree.Point, 0, total)
	all = append(all, n.bucket...)
	all = append(all, batch...)
	seq, err := kdtree.BulkLoad(all, p.t.cfg.Dim, p.t.cfg.BucketSize)
	if err != nil {
		return fmt.Errorf("core: graft build: %w", err)
	}
	p.installFragmentLocked(idx, seq.Flatten())
	p.points += len(batch)
	p.inserts.Add(int64(len(batch)))
	return nil
}

// installFragmentLocked replaces the node at idx with a self-contained
// flat fragment: the fragment root lands in idx's arena slot, the rest
// appends to the arena. Boxes and buckets are copied — the fragment may
// alias a client-side flat tree. Callers hold the write lock and
// account p.points themselves.
func (p *partition) installFragmentLocked(idx int32, flat []kdtree.FlatNode) {
	base := int32(len(p.nodes))
	at := func(j int32) childRef {
		// flat[j] for j >= 1 lands at base+j-1; flat[0] occupies idx.
		return childRef{Part: p.id, Node: base + j - 1}
	}
	for j, fn := range flat {
		n := pnode{leaf: fn.Leaf, splitDim: fn.SplitDim, splitVal: fn.SplitVal}
		if fn.Lo != nil {
			n.lo = append([]float64(nil), fn.Lo...)
			n.hi = append([]float64(nil), fn.Hi...)
		}
		if fn.Leaf {
			n.bucket = append([]kdtree.Point(nil), fn.Bucket...)
		} else {
			n.left, n.right = at(fn.Left), at(fn.Right)
		}
		if j == 0 {
			p.nodes[idx] = n
		} else {
			p.nodes = append(p.nodes, n)
		}
	}
}

// handleBulkGraft installs a serialized fragment over the leaf at
// Entry. The request is validated before anything mutates, so a
// malformed fragment never leaves a half-installed arena. Points that
// were already in the entry leaf — concurrent inserts that raced the
// client-side build — are re-routed down the installed fragment;
// routes that leave the partition forward after the lock is released.
func (p *partition) handleBulkGraft(r graftReq) (any, error) {
	if len(r.Nodes) == 0 {
		return nil, fmt.Errorf("core: empty graft fragment")
	}
	for _, wn := range r.Nodes {
		if wn.Leaf {
			continue
		}
		for _, c := range []wireChild{wn.Left, wn.Right} {
			if c.Internal == 0 || int(c.Internal) >= len(r.Nodes) {
				return nil, fmt.Errorf("core: graft child %d out of range", c.Internal)
			}
		}
	}
	type routed struct {
		ref childRef
		pt  kdtree.Point
	}
	var fwd []routed
	p.mu.Lock()
	if r.Entry < 0 || int(r.Entry) >= len(p.nodes) {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: graft entry %d out of range", r.Entry)
	}
	entry := &p.nodes[r.Entry]
	if !entry.leaf || entry.moved || entry.migrating {
		p.mu.Unlock()
		return graftResp{}, nil
	}
	displaced := entry.bucket
	base := int32(len(p.nodes))
	resolve := func(c wireChild) childRef {
		if c.Internal > 0 {
			return childRef{Part: p.id, Node: base + c.Internal - 1}
		}
		ref := childRef{Part: c.Part, Node: c.Node}
		if c.Lo != nil {
			// A cross-partition subtree's region registers with its
			// link, as in the adopt handshake and the trunk install.
			if p.remoteBoxes == nil {
				p.remoteBoxes = make(map[childRef]box)
			}
			p.remoteBoxes[ref] = copyBox(c.Lo, c.Hi)
		}
		return ref
	}
	for j, wn := range r.Nodes {
		n := pnode{leaf: wn.Leaf, splitDim: wn.SplitDim, splitVal: wn.SplitVal}
		if wn.Lo != nil {
			n.lo = append([]float64(nil), wn.Lo...)
			n.hi = append([]float64(nil), wn.Hi...)
		}
		if wn.Leaf {
			n.bucket = append([]kdtree.Point(nil), wn.Bucket...)
			p.points += len(n.bucket)
		} else {
			n.left, n.right = resolve(wn.Left), resolve(wn.Right)
		}
		if j == 0 {
			p.nodes[r.Entry] = n
		} else {
			p.nodes = append(p.nodes, n)
		}
	}
	var path []int32
	for _, pt := range displaced {
		path = path[:0]
		leafIdx, ref, remote := p.descend(r.Entry, pt.Coords, &path)
		p.expandPathBoxes(path, pt.Coords)
		if remote {
			p.expandRemoteBox(ref, pt.Coords)
			fwd = append(fwd, routed{ref: ref, pt: pt})
			p.points-- // the point leaves this partition
			continue
		}
		n := &p.nodes[leafIdx]
		n.bucket = append(n.bucket, pt)
		if len(n.bucket) > p.t.cfg.BucketSize {
			p.splitLeaf(leafIdx)
		}
	}
	spill := p.capacityExceededLocked()
	p.mu.Unlock()
	var err error
	for _, f := range fwd {
		// Strictly downstream (frontier subtrees the trunk links to):
		// no lock held, the partition DAG cannot cycle.
		if _, cerr := p.t.call(p.id, f.ref.Part, insertReq{Node: f.ref.Node, Point: f.pt}); cerr != nil && err == nil {
			err = cerr
		}
	}
	if spill {
		p.buildPartition()
	}
	if err != nil {
		return nil, err
	}
	return graftResp{OK: true}, nil
}
