package core

// Tests for the self-tuning query scheduler: ProtocolAuto must be
// byte-identical to both fixed protocols at any fabric latency, the
// admission controller must reject with its typed errors (and only
// then), and the cost model must converge onto a latency change within
// a bounded number of queries — the bound that pins the EWMA half-life
// constant.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// latencyTree builds a multi-partition tree over a caller-held InProc
// fabric (zero latency during the build; degrade with SetLatency).
func latencyTree(t *testing.T, r *rand.Rand, n, dim int) (*Tree, *cluster.InProc, []kdtree.Point) {
	t.Helper()
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	t.Cleanup(func() { fabric.Close() })
	tr, err := New(Config{
		Dim: dim, BucketSize: 8,
		PartitionCapacity: 64, MaxPartitions: 9, Fabric: fabric,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	pts := randomPoints(r, n, dim)
	if err := tr.InsertAll(pts, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.PartitionCount(); got < 4 {
		t.Fatalf("partitions = %d, want >= 4 for a meaningful protocol choice", got)
	}
	return tr, fabric, pts
}

// TestProtocolAutoEquivalence: ProtocolAuto must return byte-identical
// results — same points, same order, same distance bits — as both fixed
// protocols, whichever one it resolves to, on a zero-latency fabric and
// under 50ms hops (where it resolves to the other one).
func TestProtocolAutoEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tr, fabric, _ := latencyTree(t, r, 2500, 4)
	qs := make([][]float64, 3)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 4)[0].Coords
	}
	for _, hop := range []time.Duration{0, 50 * time.Millisecond} {
		fabric.SetLatency(hop)
		for qi, q := range qs {
			for _, k := range []int{3, 10} {
				seq, _, err := tr.knn(context.Background(), q, k, ProtocolSequential)
				if err != nil {
					t.Fatal(err)
				}
				par, _, err := tr.knn(context.Background(), q, k, ProtocolFanOut)
				if err != nil {
					t.Fatal(err)
				}
				auto, st, err := tr.knn(context.Background(), q, k, ProtocolAuto)
				if err != nil {
					t.Fatal(err)
				}
				if st.Protocol != ProtocolNameSequential && st.Protocol != ProtocolNameParallel {
					t.Fatalf("hop=%v q=%d: auto stamped protocol %q", hop, qi, st.Protocol)
				}
				if len(auto) != len(seq) || len(seq) != len(par) {
					t.Fatalf("hop=%v q=%d k=%d: lens auto=%d seq=%d par=%d",
						hop, qi, k, len(auto), len(seq), len(par))
				}
				for i := range auto {
					if auto[i].Point.ID != seq[i].Point.ID || auto[i].Dist != seq[i].Dist ||
						auto[i].Point.ID != par[i].Point.ID || auto[i].Dist != par[i].Dist {
						t.Fatalf("hop=%v q=%d k=%d item %d: auto=(%d,%v) seq=(%d,%v) par=(%d,%v)",
							hop, qi, k, i,
							auto[i].Point.ID, auto[i].Dist,
							seq[i].Point.ID, seq[i].Dist,
							par[i].Point.ID, par[i].Dist)
					}
				}
			}
		}
	}
}

// TestAdmissionMaxInFlight: admit() must hand out exactly MaxInFlight
// slots, queue up to QueueDepth admissions behind them, and shed the
// rest with ErrAdmissionRejected. Exercised directly for determinism,
// then end-to-end through a saturated scheduler batch with a
// goroutine-leak check.
func TestAdmissionMaxInFlight(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	tr, fabric, _ := latencyTree(t, r, 1500, 3)

	// Direct: MaxInFlight=1, no queue.
	s := tr.NewScheduler(SchedulerConfig{MaxInFlight: 1, QueueDepth: -1})
	release, _, err := s.admit(context.Background(), ProtocolSequential)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.admit(context.Background(), ProtocolSequential); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("saturated no-queue admit: err = %v, want ErrAdmissionRejected", err)
	}
	release()
	if release, _, err = s.admit(context.Background(), ProtocolSequential); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	release()
	if st := s.Stats(); st.Admitted != 2 || st.RejectedLoad != 1 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 load-rejected", st)
	}

	// Direct: MaxInFlight=1 with a one-deep queue. The queued admit
	// must block until the slot frees, and a third arrival must shed.
	s = tr.NewScheduler(SchedulerConfig{MaxInFlight: 1, QueueDepth: 1})
	release, _, err = s.admit(context.Background(), ProtocolSequential)
	if err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan error, 1)
	go func() {
		rel, _, err := s.admit(context.Background(), ProtocolSequential)
		if err == nil {
			rel()
		}
		queuedDone <- err
	}()
	// Wait until the second admit is actually queued, then overflow.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.admit(context.Background(), ProtocolSequential); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("queue overflow: err = %v, want ErrAdmissionRejected", err)
	}
	release()
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued admit failed: %v", err)
	}

	// End to end: a wide batch through MaxInFlight=1 with no queue on a
	// slow fabric must answer some queries and shed the concurrent
	// surplus with the typed error — and must not leak goroutines.
	fabric.SetLatency(2 * time.Millisecond)
	base := runtime.NumGoroutine() + 4
	s = tr.NewScheduler(SchedulerConfig{Protocol: ProtocolSequential, MaxInFlight: 1, QueueDepth: -1})
	qs := make([][]float64, 16)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	res := s.KNearestBatch(context.Background(), qs, 3, 8)
	answered, shed := 0, 0
	for i, qr := range res {
		switch {
		case qr.Err == nil:
			answered++
		case errors.Is(qr.Err, ErrAdmissionRejected):
			shed++
		default:
			t.Fatalf("entry %d: unexpected error %v", i, qr.Err)
		}
	}
	if answered == 0 || shed == 0 {
		t.Fatalf("answered=%d shed=%d, want both > 0 (8 workers through 1 slot)", answered, shed)
	}
	if st := s.Stats(); st.Admitted != int64(answered) || st.RejectedLoad != int64(shed) {
		t.Fatalf("stats %+v disagree with outcomes answered=%d shed=%d", st, answered, shed)
	}
	fabric.SetLatency(0)
	waitSchedGoroutines(t, base)
}

// waitSchedGoroutines polls until the goroutine count settles to base.
func waitSchedGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestAdmissionDeadlineBudget: once the cost model has learned that a
// query costs tens of milliseconds on this fabric, a query arriving
// with a 1ms deadline budget must be rejected with ErrDeadlineBudget —
// before any fabric message is spent on it.
func TestAdmissionDeadlineBudget(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	tr, fabric, _ := latencyTree(t, r, 1500, 3)
	fabric.SetLatency(20 * time.Millisecond)
	s := tr.NewScheduler(SchedulerConfig{Admission: true})
	// Warm the model: a few queries teach it the per-hop price.
	for i := 0; i < 3; i++ {
		q := randomPoints(r, 1, 3)[0].Coords
		if _, _, err := s.KNearest(context.Background(), q, 3); err != nil {
			t.Fatal(err)
		}
	}
	if est := tr.model.estimateWall(ProtocolSequential, tr.PartitionCount()); est < 10*time.Millisecond {
		t.Fatalf("model did not learn the fabric: sequential estimate %v", est)
	}
	before := fabric.Stats().Messages
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := s.KNearest(ctx, randomPoints(r, 1, 3)[0].Coords, 3)
	if !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("err = %v, want ErrDeadlineBudget", err)
	}
	if after := fabric.Stats().Messages; after != before {
		t.Fatalf("budget-rejected query still sent %d messages", after-before)
	}
	if st := s.Stats(); st.RejectedBudget != 1 {
		t.Fatalf("stats = %+v, want 1 budget rejection", st)
	}
	// Without admission control the same query runs (and times out on
	// its own terms) instead of being shed.
	plain := tr.NewScheduler(SchedulerConfig{})
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, _, err := plain.KNearest(ctx2, randomPoints(r, 1, 3)[0].Coords, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("plain scheduler err = %v, want DeadlineExceeded", err)
	}
	fabric.SetLatency(0)
}

// TestCostModelConvergence: an InProc.SetLatency change mid-run must be
// observed by the cost model within a bounded number of queries — the
// budgets below (12 queries up, 60 queries down) pin the EWMA half-life
// of ~2.4 samples: a multi-partition query contributes several leaf-hop
// samples, so the estimate crosses the decision threshold well inside
// them.
func TestCostModelConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	// Higher-dimensional workload: a k=10 query crosses most of the 9
	// partitions (~7.5 sequential hops vs 3 fan-out waves), so the
	// latency regime genuinely decides the protocol. In low dimensions
	// sequential pruning is so effective (~2.5 hops) that sequential
	// wins at any latency — and the model correctly never flips.
	tr, fabric, _ := latencyTree(t, r, 2000, 6)
	query := func() string {
		t.Helper()
		q := randomPoints(r, 1, 6)[0].Coords
		_, st, err := tr.KNearestStats(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		return st.Protocol
	}
	// Settle at zero latency: the model must land on the sequential
	// protocol (CPU-bound regime).
	for i := 0; i < 10; i++ {
		query()
	}
	if got := query(); got != ProtocolNameSequential {
		t.Fatalf("zero-latency steady state chose %q, want sequential", got)
	}

	// Degrade the network: the choice must flip to the fan-out within
	// 12 queries of the change.
	fabric.SetLatency(5 * time.Millisecond)
	flipped := -1
	for i := 0; i < 12; i++ {
		if query() == ProtocolNameParallel {
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatalf("5ms hops not observed within 12 queries: %+v", tr.sched.Stats())
	}
	t.Logf("flipped to fan-out after %d queries at 5ms hops", flipped+1)

	// Restore the fast network: the hop estimate decays back through
	// the fan-out's own leaf calls, so the choice must return to
	// sequential within a bounded number of queries even though the
	// sequential protocol is not being exercised at all.
	fabric.SetLatency(0)
	flipped = -1
	for i := 0; i < 60; i++ {
		if query() == ProtocolNameSequential {
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatalf("restored zero latency not observed within 60 queries: %+v", tr.sched.Stats())
	}
	t.Logf("flipped back to sequential after %d queries at zero latency", flipped+1)
}

// TestSchedulerStatsSnapshot: the snapshot must report the admission
// counters, live estimates and the protocol-choice histogram.
func TestSchedulerStatsSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	tr, _, _ := latencyTree(t, r, 1200, 3)
	s := tr.NewScheduler(SchedulerConfig{})
	qs := make([][]float64, 8)
	for i := range qs {
		qs[i] = randomPoints(r, 1, 3)[0].Coords
	}
	res := s.KNearestBatch(context.Background(), qs, 3, 4)
	for i, qr := range res {
		if qr.Err != nil {
			t.Fatalf("entry %d: %v", i, qr.Err)
		}
	}
	st := s.Stats()
	if st.Admitted != int64(len(qs)) || st.RejectedLoad != 0 || st.RejectedBudget != 0 {
		t.Fatalf("admission counters wrong: %+v", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("idle scheduler reports in-flight work: %+v", st)
	}
	if st.NodeCompute <= 0 {
		t.Fatalf("compute estimate not learned: %+v", st)
	}
	if st.EstSequentialWall <= 0 || st.EstFanOutWall <= 0 {
		t.Fatalf("modeled walls empty: %+v", st)
	}
	if st.ObservedSequentialWall <= 0 {
		// Zero-latency auto resolves to sequential, so its observed
		// wall EWMA must be populated (fan-out's may stay zero).
		t.Fatalf("observed sequential wall empty: %+v", st)
	}
	total := int64(0)
	for _, n := range st.Choices {
		total += n
	}
	if total < int64(len(qs)) {
		t.Fatalf("choice histogram undercounts: %+v", st.Choices)
	}
}

// TestAdmissionClockSeam: the deadline-budget check reads time through
// the scheduler's injected clock (the same seam the quota bucket uses),
// so a test can flip one admission decision deterministically: with the
// context deadline fixed, only the fake clock's position decides.
func TestAdmissionClockSeam(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	tr, fabric, _ := latencyTree(t, r, 1500, 3)
	fabric.SetLatency(20 * time.Millisecond)
	s := tr.NewScheduler(SchedulerConfig{Admission: true})
	// Warm the model so estimateWall is meaningful.
	for i := 0; i < 3; i++ {
		q := randomPoints(r, 1, 3)[0].Coords
		if _, _, err := s.KNearest(context.Background(), q, 3); err != nil {
			t.Fatal(err)
		}
	}
	est := tr.model.estimateWall(ProtocolSequential, tr.PartitionCount())
	if est <= 0 {
		t.Fatal("cost model learned nothing; cannot exercise the budget check")
	}
	// A real-clock deadline far in the future: the context itself never
	// expires, the fake clock alone decides the budget.
	dl := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()

	s.clock = func() time.Time { return dl.Add(-10 * est) }
	release, _, err := s.admit(ctx, ProtocolSequential)
	if err != nil {
		t.Fatalf("admit with 10x the estimated budget: %v", err)
	}
	release()

	s.clock = func() time.Time { return dl.Add(-est / 2) }
	if _, _, err := s.admit(ctx, ProtocolSequential); !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("admit with half the estimated budget: err = %v, want ErrDeadlineBudget", err)
	}
	if st := s.Stats(); st.RejectedBudget != 1 {
		t.Fatalf("stats = %+v, want exactly 1 budget rejection", st)
	}
}
