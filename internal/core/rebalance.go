package core

import (
	"fmt"

	"semtree/internal/cluster"
	"semtree/internal/kdtree"
)

// The paper observes that "once built, modifying or rebalancing a
// Kd-tree is a non-trivial task" (§III-B). This file makes it tractable
// for the distributed tree with a coordinated bulk-load: gather every
// point, rebuild a balanced tree client-side (KD-trees bulk-load
// cheaply), cut its top into a routing trunk plus ~M−1 frontier
// subtrees, reset the partitions, install one frontier subtree per data
// partition and the trunk — with cross-partition links at the frontier —
// on the root partition.
//
// Rebalance is a maintenance operation: the caller must guarantee
// quiescence (no concurrent inserts or queries), as for any offline
// reorganization.

// collectReq gathers every point in the subtree rooted at Node,
// following cross-partition links.
type collectReq struct {
	Node int32
}

type collectResp struct {
	Points []kdtree.Point
}

// resetReq clears a partition's node arena.
type resetReq struct {
	// RootLeaf makes the partition re-create the tree root as an empty
	// leaf (only the root partition sets this).
	RootLeaf bool
}

type resetResp struct{}

// wireChild addresses a child in an installReq: an index into the
// request's Nodes when Internal >= 0, a cross-partition reference
// otherwise. A cross-partition reference carries the remote subtree's
// bounding box (Lo/Hi, nil when unknown) so the installing partition
// can seed its remote-box cache — the region registers together with
// the link, exactly like the adopt handshake.
type wireChild struct {
	Internal int32
	Part     cluster.NodeID
	Node     int32
	Lo, Hi   []float64
}

// wireNode is one serialized tree node. Lo/Hi is the subtree's exact
// bounding box (nil when empty).
type wireNode struct {
	Leaf     bool
	SplitDim int32
	SplitVal float64
	Left     wireChild
	Right    wireChild
	Bucket   []kdtree.Point
	Lo, Hi   []float64
}

// installReq installs a serialized tree fragment into a partition's
// arena; Nodes[0] is the fragment root. The response reports the root's
// arena index.
type installReq struct {
	Nodes []wireNode
}

type installResp struct {
	Node int32
}

func init() {
	cluster.RegisterMessage(collectReq{})
	cluster.RegisterMessage(collectResp{})
	cluster.RegisterMessage(resetReq{})
	cluster.RegisterMessage(resetResp{})
	cluster.RegisterMessage(installReq{})
	cluster.RegisterMessage(installResp{})
}

// handleCollect returns every point under Node.
func (p *partition) handleCollect(r collectReq) (any, error) {
	var pts []kdtree.Point
	if err := p.collectVisit(r.Node, &pts); err != nil {
		return nil, err
	}
	return collectResp{Points: pts}, nil
}

func (p *partition) collectVisit(idx int32, out *[]kdtree.Point) error {
	p.mu.RLock()
	n := p.nodes[idx] // copy; the lock is released around remote calls
	p.mu.RUnlock()
	if n.moved {
		return p.remoteCollect(n.fwd, out)
	}
	if n.leaf {
		*out = append(*out, n.bucket...)
		return nil
	}
	for _, ref := range []childRef{n.left, n.right} {
		if p.local(ref) {
			if err := p.collectVisit(ref.Node, out); err != nil {
				return err
			}
		} else if err := p.remoteCollect(ref, out); err != nil {
			return err
		}
	}
	return nil
}

func (p *partition) remoteCollect(ref childRef, out *[]kdtree.Point) error {
	resp, err := p.t.call(p.id, ref.Part, collectReq{Node: ref.Node})
	if err != nil {
		return err
	}
	*out = append(*out, resp.(collectResp).Points...)
	return nil
}

// handleReset clears the partition, remote-box cache included (the
// links it guarded are gone with the arena).
func (p *partition) handleReset(r resetReq) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes = nil
	p.points = 0
	p.remoteBoxes = nil
	if r.RootLeaf {
		p.nodes = []pnode{{leaf: true}}
	}
	return resetResp{}, nil
}

// handleInstall appends a serialized fragment to the arena. Box slices
// are copied — wire fragments may alias the client-side flat tree,
// whose frontier boxes also travel to other partitions, and no two
// partitions may share a mutable box.
func (p *partition) handleInstall(r installReq) (any, error) {
	if len(r.Nodes) == 0 {
		return nil, fmt.Errorf("core: empty install fragment")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	base := int32(len(p.nodes))
	resolve := func(c wireChild) (childRef, error) {
		if c.Internal >= 0 {
			if int(c.Internal) >= len(r.Nodes) {
				return childRef{}, fmt.Errorf("core: install child %d out of range", c.Internal)
			}
			return childRef{Part: p.id, Node: base + c.Internal}, nil
		}
		ref := childRef{Part: c.Part, Node: c.Node}
		if c.Lo != nil {
			// The cross-partition subtree's region registers with its
			// link, as in the adopt handshake.
			if p.remoteBoxes == nil {
				p.remoteBoxes = make(map[childRef]box)
			}
			p.remoteBoxes[ref] = copyBox(c.Lo, c.Hi)
		}
		return ref, nil
	}
	for _, wn := range r.Nodes {
		n := pnode{leaf: wn.Leaf, splitDim: wn.SplitDim, splitVal: wn.SplitVal}
		if wn.Lo != nil {
			n.lo = append([]float64(nil), wn.Lo...)
			n.hi = append([]float64(nil), wn.Hi...)
		}
		if wn.Leaf {
			n.bucket = append([]kdtree.Point(nil), wn.Bucket...)
			p.points += len(n.bucket)
		} else {
			var err error
			if n.left, err = resolve(wn.Left); err != nil {
				return nil, err
			}
			if n.right, err = resolve(wn.Right); err != nil {
				return nil, err
			}
		}
		p.nodes = append(p.nodes, n)
	}
	return installResp{Node: base}, nil
}

// Rebalance rebuilds the tree balanced, redistributing the data across
// all partitions (including any whose budget was never used). It
// requires quiescence.
func (t *Tree) Rebalance() error {
	root := t.rootPartition()
	resp, err := t.call(cluster.ClientID, root.id, collectReq{Node: 0})
	if err != nil {
		return fmt.Errorf("core: rebalance collect: %w", err)
	}
	pts := resp.(collectResp).Points

	// Make every budgeted partition available to the new layout.
	t.allocPartitions(t.cfg.MaxPartitions)
	t.mu.RLock()
	parts := append([]*partition(nil), t.parts...)
	t.mu.RUnlock()

	seq, err := kdtree.BulkLoad(pts, t.cfg.Dim, t.cfg.BucketSize)
	if err != nil {
		return fmt.Errorf("core: rebalance build: %w", err)
	}
	flat := seq.Flatten()

	for _, p := range parts {
		if _, err := t.call(cluster.ClientID, p.id, resetReq{RootLeaf: false}); err != nil {
			return fmt.Errorf("core: rebalance reset: %w", err)
		}
	}

	if len(pts) == 0 {
		if _, err := t.call(cluster.ClientID, root.id, resetReq{RootLeaf: true}); err != nil {
			return fmt.Errorf("core: rebalance reset: %w", err)
		}
		t.size.Store(0)
		return nil
	}

	dataParts := parts[1:]
	if len(dataParts) == 0 || flat[0].Leaf {
		// Single partition, or too little data to distribute: the
		// whole balanced tree lives on the root partition (its arena
		// is empty, so the tree root lands at index 0).
		if _, err := t.call(cluster.ClientID, root.id, installReq{Nodes: wireNodes(flat)}); err != nil {
			return fmt.Errorf("core: rebalance install: %w", err)
		}
		t.size.Store(int64(len(pts)))
		return nil
	}

	// Cut the flat tree below the root until the frontier is wide
	// enough to give every data partition a subtree, then install each
	// frontier subtree on the data partition the placement kernel
	// assigns it: the targets start empty, so the kernel spreads one
	// anchor subtree per partition and clusters any surplus with its
	// geometrically closest anchor (round-robin under the ablation
	// policy). The cut and the assignment are shared with the bulk
	// loader (bulkload.go).
	targets := make([]cluster.NodeID, len(dataParts))
	for i, dp := range dataParts {
		targets[i] = dp.id
	}
	frontier := cutFrontier(flat, len(targets))
	assign := t.assignFrontier(flat, frontier, targets)
	isFrontier := make(map[int32]childRef, len(frontier))
	for i, idx := range frontier {
		target := assign[i]
		sub, err := kdtree.Subtree(flat, idx)
		if err != nil {
			return fmt.Errorf("core: rebalance cut: %w", err)
		}
		resp, err := t.call(cluster.ClientID, target, installReq{Nodes: wireNodes(sub)})
		if err != nil {
			return fmt.Errorf("core: rebalance install: %w", err)
		}
		isFrontier[idx] = childRef{Part: target, Node: resp.(installResp).Node}
	}

	// Install the trunk (everything above the frontier) on the root
	// partition — its arena is empty, so the trunk root lands at index
	// 0, where every operation enters.
	trunk := trunkNodes(flat, isFrontier)
	if _, err := t.call(cluster.ClientID, root.id, installReq{Nodes: trunk}); err != nil {
		return fmt.Errorf("core: rebalance trunk install: %w", err)
	}
	t.size.Store(int64(len(pts)))
	return nil
}

// flatPoints counts the points under one node of a flat tree, for the
// placement kernel's load term.
func flatPoints(flat []kdtree.FlatNode, idx int32) int {
	n := flat[idx]
	if n.Leaf {
		return len(n.Bucket)
	}
	return flatPoints(flat, n.Left) + flatPoints(flat, n.Right)
}

// wireNodes converts a self-contained flat fragment to wire form,
// boxes included.
func wireNodes(flat []kdtree.FlatNode) []wireNode {
	out := make([]wireNode, len(flat))
	for i, n := range flat {
		out[i] = wireNode{
			Leaf: n.Leaf, SplitDim: n.SplitDim, SplitVal: n.SplitVal,
			Left:   wireChild{Internal: n.Left},
			Right:  wireChild{Internal: n.Right},
			Bucket: n.Bucket,
			Lo:     n.Lo, Hi: n.Hi,
		}
	}
	return out
}

// trunkNodes serializes the nodes above the frontier in preorder (trunk
// root first), replacing frontier children with their cross-partition
// refs — each ref carrying its subtree's box so the root partition's
// remote-box cache covers the whole frontier. The flat root must not
// itself be in the frontier.
func trunkNodes(flat []kdtree.FlatNode, frontier map[int32]childRef) []wireNode {
	var out []wireNode
	var walk func(idx int32) wireChild
	walk = func(idx int32) wireChild {
		if ref, ok := frontier[idx]; ok {
			return wireChild{Internal: -1, Part: ref.Part, Node: ref.Node,
				Lo: flat[idx].Lo, Hi: flat[idx].Hi}
		}
		n := flat[idx]
		at := int32(len(out))
		out = append(out, wireNode{Leaf: n.Leaf, SplitDim: n.SplitDim, SplitVal: n.SplitVal,
			Bucket: n.Bucket, Lo: n.Lo, Hi: n.Hi})
		if !n.Leaf {
			out[at].Left = walk(n.Left)
			out[at].Right = walk(n.Right)
		}
		return wireChild{Internal: at}
	}
	walk(0)
	return out
}
