package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"semtree/internal/kdtree"
)

// TestResultSetMatchesSortOracle: offering any sequence of neighbors
// must keep exactly the k best, sorted, with deterministic tie-breaks.
func TestResultSetMatchesSortOracle(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		rs := newResultSet(k, nil)
		var all []kdtree.Neighbor
		for i := 0; i < n; i++ {
			nb := kdtree.Neighbor{
				Point: kdtree.Point{ID: uint64(r.Intn(20))},
				Dist:  float64(r.Intn(8)), // coarse values force ties
			}
			all = append(all, nb)
			rs.offer(nb)
		}
		sort.Slice(all, func(i, j int) bool { return neighborLess(all[i], all[j]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(rs.items) != len(want) {
			return false
		}
		for i := range want {
			if rs.items[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResultSetSeedRespectsK(t *testing.T) {
	seed := []kdtree.Neighbor{
		{Point: kdtree.Point{ID: 1}, Dist: 3},
		{Point: kdtree.Point{ID: 2}, Dist: 1},
		{Point: kdtree.Point{ID: 3}, Dist: 2},
	}
	rs := newResultSet(2, seed)
	if len(rs.items) != 2 || rs.items[0].Dist != 1 || rs.items[1].Dist != 2 {
		t.Fatalf("seeded set = %v", rs.items)
	}
	if rs.worst() != 2 {
		t.Fatalf("worst = %f", rs.worst())
	}
}

func TestResultSetWorstWhenNotFull(t *testing.T) {
	rs := newResultSet(3, nil)
	if !math.IsInf(rs.worst(), 1) {
		t.Fatalf("worst of empty set = %f, want +Inf", rs.worst())
	}
	rs.offer(kdtree.Neighbor{Dist: 5})
	if !math.IsInf(rs.worst(), 1) {
		t.Fatalf("worst of non-full set must stay +Inf (Rs.length() < K)")
	}
}
