package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"semtree/internal/kdtree"
)

// TestResultSetMatchesSortOracle: offering any sequence of neighbors
// must keep exactly the k best, sorted, with deterministic tie-breaks.
func TestResultSetMatchesSortOracle(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		rs := newResultSet(k, nil)
		var all []kdtree.Neighbor
		for i := 0; i < n; i++ {
			nb := kdtree.Neighbor{
				Point: kdtree.Point{ID: uint64(r.Intn(20))},
				Dist:  float64(r.Intn(8)), // coarse values force ties
			}
			all = append(all, nb)
			rs.Offer(nb)
		}
		sort.Slice(all, func(i, j int) bool { return neighborLess(all[i], all[j]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(rs.Items) != len(want) {
			return false
		}
		for i := range want {
			if rs.Items[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResultSetSeedRespectsK(t *testing.T) {
	seed := []kdtree.Neighbor{
		{Point: kdtree.Point{ID: 1}, Dist: 3},
		{Point: kdtree.Point{ID: 2}, Dist: 1},
		{Point: kdtree.Point{ID: 3}, Dist: 2},
	}
	rs := newResultSet(2, seed)
	if len(rs.Items) != 2 || rs.Items[0].Dist != 1 || rs.Items[1].Dist != 2 {
		t.Fatalf("seeded set = %v", rs.Items)
	}
	if rs.Worst() != 2 {
		t.Fatalf("worst = %f", rs.Worst())
	}
}

func TestResultSetWorstWhenNotFull(t *testing.T) {
	rs := newResultSet(3, nil)
	if !math.IsInf(rs.Worst(), 1) {
		t.Fatalf("worst of empty set = %f, want +Inf", rs.Worst())
	}
	rs.Offer(kdtree.Neighbor{Dist: 5})
	if !math.IsInf(rs.Worst(), 1) {
		t.Fatalf("worst of non-full set must stay +Inf (Rs.length() < K)")
	}
}

func TestResultSetKZero(t *testing.T) {
	for _, k := range []int{0, -3} {
		rs := newResultSet(k, []kdtree.Neighbor{{Point: kdtree.Point{ID: 1}, Dist: 1}})
		rs.Offer(kdtree.Neighbor{Point: kdtree.Point{ID: 2}, Dist: 2})
		if len(rs.Items) != 0 {
			t.Fatalf("k=%d kept %d items", k, len(rs.Items))
		}
		if rs.export() != nil {
			t.Fatalf("k=%d export not nil", k)
		}
	}
}

// TestResultSetExactTiesBrokenByID: candidates at identical distances
// must be kept and ordered by ascending point ID, independent of offer
// order — the property that makes parallel merges deterministic.
func TestResultSetExactTiesBrokenByID(t *testing.T) {
	mk := func(id uint64) kdtree.Neighbor {
		return kdtree.Neighbor{Point: kdtree.Point{ID: id}, Dist: 7}
	}
	for _, order := range [][]uint64{{5, 1, 9, 3}, {9, 5, 3, 1}, {1, 3, 5, 9}} {
		rs := newResultSet(3, nil)
		for _, id := range order {
			rs.Offer(mk(id))
		}
		want := []uint64{1, 3, 5}
		if len(rs.Items) != 3 {
			t.Fatalf("order %v: kept %d", order, len(rs.Items))
		}
		for i, id := range want {
			if rs.Items[i].Point.ID != id {
				t.Fatalf("order %v: items[%d].ID = %d, want %d", order, i, rs.Items[i].Point.ID, id)
			}
		}
	}
}

// TestResultSetReplaceThenMerge: after a sequential replace, merging a
// parallel partial that repeats kept points must deduplicate by ID and
// still admit genuinely better candidates.
func TestResultSetReplaceThenMerge(t *testing.T) {
	rs := newResultSet(3, nil)
	rs.Offer(kdtree.Neighbor{Point: kdtree.Point{ID: 10}, Dist: 5})
	rs.replace([]kdtree.Neighbor{
		{Point: kdtree.Point{ID: 1}, Dist: 1},
		{Point: kdtree.Point{ID: 2}, Dist: 4},
		{Point: kdtree.Point{ID: 3}, Dist: 6},
	})
	rs.merge([]kdtree.Neighbor{
		{Point: kdtree.Point{ID: 2}, Dist: 4}, // duplicate of a kept point
		{Point: kdtree.Point{ID: 4}, Dist: 2}, // beats ID 3
	})
	ids := make([]uint64, len(rs.Items))
	for i, n := range rs.Items {
		ids[i] = n.Point.ID
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 4 || ids[2] != 2 {
		t.Fatalf("merged ids = %v, want [1 4 2]", ids)
	}
}

// TestResultSetMergeOrderIndependent: folding partial sets in any order
// must converge on the same set (the guarantee the parallel k-NN
// fan-out's final merge relies on).
func TestResultSetMergeOrderIndependent(t *testing.T) {
	partials := [][]kdtree.Neighbor{
		{{Point: kdtree.Point{ID: 1}, Dist: 1}, {Point: kdtree.Point{ID: 2}, Dist: 3}},
		{{Point: kdtree.Point{ID: 3}, Dist: 2}, {Point: kdtree.Point{ID: 1}, Dist: 1}},
		{{Point: kdtree.Point{ID: 4}, Dist: 3}, {Point: kdtree.Point{ID: 2}, Dist: 3}},
	}
	var got [][]uint64
	for _, perm := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		rs := newResultSet(3, nil)
		for _, pi := range perm {
			rs.merge(partials[pi])
		}
		ids := make([]uint64, len(rs.Items))
		for i, n := range rs.Items {
			ids[i] = n.Point.ID
		}
		got = append(got, ids)
	}
	for _, ids := range got[1:] {
		if len(ids) != len(got[0]) {
			t.Fatalf("merge orders disagree: %v", got)
		}
		for i := range ids {
			if ids[i] != got[0][i] {
				t.Fatalf("merge orders disagree: %v", got)
			}
		}
	}
}
