package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// envelope is the wire format of both transports: one request or
// response. Payload types crossing a TCP fabric must be registered with
// RegisterMessage. Deadline (unix nanoseconds, 0 = none) carries the
// caller's context deadline so the serving side can derive an
// equivalent context and stop working on an expired request.
type envelope struct {
	From      int
	Payload   any
	Err       string
	Transient bool
	Deadline  int64
}

// RegisterMessage registers a payload type for gob encoding on TCP
// fabrics. Call it from an init function for every concrete request
// and response type.
func RegisterMessage(v any) { gob.Register(v) }

// TCP is a Fabric whose nodes listen on loopback TCP sockets and
// exchange gob-encoded envelopes: a real network path under the same
// interface as InProc. One connection serves one call (dial, request,
// response, close) — simple and adequate for examples and tests.
type TCP struct {
	mu      sync.Mutex
	nodes   []*tcpNode
	closed  bool
	pending sync.WaitGroup // in-flight Send calls

	messages atomic.Int64
	bytes    atomic.Int64
	failures atomic.Int64
}

type tcpNode struct {
	ln      net.Listener
	addr    string
	handler Handler
	wg      sync.WaitGroup
}

// NewTCP returns an empty TCP fabric; AddNode starts one listener per
// node on 127.0.0.1.
func NewTCP() *TCP { return &TCP{} }

// AddNode implements Fabric: it starts a listener and its accept loop.
func (f *TCP) AddNode(h Handler) (NodeID, error) {
	if h == nil {
		return 0, ErrUnknownNode
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("cluster: listen: %w", err)
	}
	n := &tcpNode{ln: ln, addr: ln.Addr().String(), handler: h}
	f.nodes = append(f.nodes, n)
	id := NodeID(len(f.nodes) - 1)
	n.wg.Add(1)
	go f.acceptLoop(n, id)
	return id, nil
}

func (f *TCP) acceptLoop(n *tcpNode, id NodeID) {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			f.serve(n, conn)
		}()
	}
}

func (f *TCP) serve(n *tcpNode, conn net.Conn) {
	var req envelope
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	// Rebuild the caller's deadline context: cancellation cannot cross
	// a one-connection-per-call wire, but the deadline can, and it is
	// what lets the remote side stop traversing an expired query.
	//semtree:allow ctxfirst: the server side of the wire has no caller context; the deadline is rebuilt from the frame below
	ctx := context.Background()
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
		defer cancel()
	}
	resp := envelope{}
	out, err := n.handler(ctx, NodeID(req.From), req.Payload)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Payload = out
	}
	_ = gob.NewEncoder(conn).Encode(&resp)
}

// Call implements Fabric. The context deadline is encoded into the
// request envelope (so the remote handler sees it) and armed on the
// connection (so the local read never outlives it); plain cancellation
// snaps the connection's deadlines shut, unblocking the reply read.
func (f *TCP) Call(ctx context.Context, from, to NodeID, req any) (any, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if to < 0 || int(to) >= len(f.nodes) {
		f.mu.Unlock()
		return nil, ErrUnknownNode
	}
	addr := f.nodes[to].addr
	f.mu.Unlock()

	f.messages.Add(1)
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		f.failures.Add(1)
		return nil, fmt.Errorf("%w: dial: %v", ErrTransient, err)
	}
	defer conn.Close()
	var wireDeadline int64
	if d, ok := ctx.Deadline(); ok {
		wireDeadline = d.UnixNano()
		_ = conn.SetDeadline(d)
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
		defer stop()
	}
	cw := &countingConn{Conn: conn}
	if err := gob.NewEncoder(cw).Encode(&envelope{From: int(from), Payload: req, Deadline: wireDeadline}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		f.failures.Add(1)
		return nil, fmt.Errorf("%w: encode: %v", ErrTransient, err)
	}
	var resp envelope
	if err := gob.NewDecoder(cw).Decode(&resp); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		f.failures.Add(1)
		return nil, fmt.Errorf("%w: decode: %v", ErrTransient, err)
	}
	f.bytes.Add(cw.n.Load())
	if resp.Err != "" {
		if resp.Transient {
			return nil, fmt.Errorf("%w: %s", ErrTransient, resp.Err)
		}
		return nil, fmt.Errorf("cluster: remote error: %s", resp.Err)
	}
	return resp.Payload, nil
}

// Send implements Fabric: the call runs on its own goroutine and the
// response is discarded. Unlike InProc, TCP nodes serve concurrently,
// so Send does not model single-threaded ranks — it exists so both
// fabrics satisfy the full interface.
func (f *TCP) Send(from, to NodeID, req any) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if to < 0 || int(to) >= len(f.nodes) {
		f.mu.Unlock()
		return ErrUnknownNode
	}
	f.mu.Unlock()
	f.pending.Add(1)
	go func() {
		defer f.pending.Done()
		// One-way semantics: the response and any error are discarded;
		// Call already accounts transport failures.
		//semtree:allow ctxfirst: Send is detached by contract; there is no caller context to propagate
		_, _ = f.Call(context.Background(), from, to, req)
	}()
	return nil
}

// Flush implements Fabric.
func (f *TCP) Flush() { f.pending.Wait() }

type countingConn struct {
	net.Conn
	n atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// NumNodes implements Fabric.
func (f *TCP) NumNodes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes)
}

// Stats implements Fabric.
func (f *TCP) Stats() Stats {
	return Stats{
		Messages: f.messages.Load(),
		Bytes:    f.bytes.Load(),
		Failures: f.failures.Load(),
	}
}

// Close implements Fabric: it stops all listeners and waits for
// in-flight handlers.
func (f *TCP) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	nodes := f.nodes
	f.mu.Unlock()
	for _, n := range nodes {
		n.ln.Close()
	}
	for _, n := range nodes {
		n.wg.Wait()
	}
	return nil
}
