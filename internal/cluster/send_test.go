package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestSendFlushCascade: asynchronous Send delivers through the mailbox,
// and Flush waits not just for the driver's own messages but for the
// cascades handlers send mid-processing — the contract the tree's
// async insert pipeline builds on.
func TestSendFlushCascade(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			var first, second atomic.Int64
			var relayTo NodeID
			relay, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
				first.Add(1)
				return nil, f.Send(0, relayTo, req)
			})
			if err != nil {
				t.Fatal(err)
			}
			sink, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
				second.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			relayTo = sink
			for i := 0; i < 3; i++ {
				if err := f.Send(ClientID, relay, echoReq{Msg: "cascade"}); err != nil {
					t.Fatalf("Send: %v", err)
				}
			}
			f.Flush()
			if first.Load() != 3 || second.Load() != 3 {
				t.Fatalf("deliveries = %d relay / %d sink, want 3/3", first.Load(), second.Load())
			}
			if f.Stats().Messages < 6 {
				t.Fatalf("stats = %+v, want >= 6 messages", f.Stats())
			}
		})
	}
}

// TestInProcSendWithTransit: a non-zero latency (plus jitter) moves
// Send delivery off the sender's goroutine; Flush still observes it,
// and SetLatency adjusts the transit at runtime.
func TestInProcSendWithTransit(t *testing.T) {
	f := NewInProc(InProcOptions{Jitter: 100 * time.Microsecond})
	defer f.Close()
	var got atomic.Int64
	id, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		got.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetLatency(200 * time.Microsecond)
	for i := 0; i < 4; i++ {
		if err := f.Send(ClientID, id, echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
	f.Flush()
	if got.Load() != 4 {
		t.Fatalf("delivered %d, want 4", got.Load())
	}
}

// TestVirtualEventLoop: the discrete-event fabric advances its virtual
// clock by transit latency plus per-message service floor, including
// for cascades scheduled from inside a handler.
func TestVirtualEventLoop(t *testing.T) {
	const (
		latency = time.Millisecond
		fixed   = 2 * time.Millisecond
	)
	f := NewVirtual(VirtualOptions{Latency: latency, FixedCost: fixed})
	defer f.Close()
	var relayTo NodeID
	var sinkRuns int
	relay, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		return nil, f.Send(0, relayTo, req)
	})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		sinkRuns++
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	relayTo = sink
	if f.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", f.NumNodes())
	}
	for i := 0; i < 3; i++ {
		if err := f.Send(ClientID, relay, echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
	f.Flush()
	if sinkRuns != 3 {
		t.Fatalf("sink ran %d times, want 3", sinkRuns)
	}
	if f.Stats().Messages != 6 {
		t.Fatalf("messages = %d, want 6", f.Stats().Messages)
	}
	// Each hop pays one transit; each delivery at least the fixed
	// service; the three relay deliveries serialize on one rank. The
	// cascade's sink leg departs after the relay's service completes:
	// >= 2 transits + 4 fixed services on the critical path.
	if min := 2*latency + 4*fixed; f.VirtualTime() < min {
		t.Fatalf("virtual time %v, want >= %v", f.VirtualTime(), min)
	}
}
