package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoReq / echoResp are the test protocol.
type echoReq struct{ Msg string }
type echoResp struct {
	Msg  string
	From NodeID
}

func init() {
	RegisterMessage(echoReq{})
	RegisterMessage(echoResp{})
}

func echoHandler(ctx context.Context, from NodeID, req any) (any, error) {
	r, ok := req.(echoReq)
	if !ok {
		return nil, fmt.Errorf("bad request type %T", req)
	}
	return echoResp{Msg: r.Msg, From: from}, nil
}

// fabrics under test; each constructor returns a fresh fabric.
func fabrics() map[string]func() Fabric {
	return map[string]func() Fabric{
		"inproc": func() Fabric { return NewInProc(InProcOptions{}) },
		"tcp":    func() Fabric { return NewTCP() },
	}
}

func TestFabricBasics(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			a, err := f.AddNode(echoHandler)
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			b, err := f.AddNode(echoHandler)
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if f.NumNodes() != 2 {
				t.Fatalf("NumNodes = %d", f.NumNodes())
			}
			resp, err := f.Call(context.Background(), a, b, echoReq{Msg: "hi"})
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			er, ok := resp.(echoResp)
			if !ok || er.Msg != "hi" || er.From != a {
				t.Fatalf("resp = %#v", resp)
			}
			if _, err := f.Call(context.Background(), ClientID, 99, echoReq{}); err == nil {
				t.Fatal("call to unknown node succeeded")
			}
			if s := f.Stats(); s.Messages < 1 {
				t.Fatalf("stats = %+v", s)
			}
		})
	}
}

func TestFabricHandlerError(t *testing.T) {
	boom := errors.New("boom")
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			id, _ := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
				return nil, boom
			})
			_, err := f.Call(context.Background(), ClientID, id, echoReq{})
			if err == nil {
				t.Fatal("handler error not propagated")
			}
		})
	}
}

func TestFabricConcurrentCalls(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			var ids []NodeID
			for i := 0; i < 4; i++ {
				id, err := f.AddNode(echoHandler)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						to := ids[(w+i)%len(ids)]
						msg := fmt.Sprintf("w%d-%d", w, i)
						resp, err := f.Call(context.Background(), ClientID, to, echoReq{Msg: msg})
						if err != nil {
							errs <- err
							return
						}
						if resp.(echoResp).Msg != msg {
							errs <- fmt.Errorf("wrong echo: %v", resp)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestFabricClose(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			id, _ := f.AddNode(echoHandler)
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := f.Call(context.Background(), ClientID, id, echoReq{}); err == nil {
				t.Fatal("call on closed fabric succeeded")
			}
			if _, err := f.AddNode(echoHandler); err == nil {
				t.Fatal("AddNode on closed fabric succeeded")
			}
		})
	}
}

func TestInProcLatency(t *testing.T) {
	f := NewInProc(InProcOptions{Latency: 2 * time.Millisecond})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	start := time.Now()
	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := f.Call(context.Background(), ClientID, id, echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := time.Since(start); got < calls*2*time.Millisecond {
		t.Fatalf("latency not applied: %v for %d calls", got, calls)
	}
}

func TestInProcFailureInjectionAndRetry(t *testing.T) {
	f := NewInProc(InProcOptions{FailureRate: 0.5, Seed: 42})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	sawFailure := false
	for i := 0; i < 50; i++ {
		if _, err := f.Call(context.Background(), ClientID, id, echoReq{}); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("failure injection produced no failures at rate 0.5")
	}
	if f.Stats().Failures == 0 {
		t.Fatal("failures not counted")
	}
	// CallRetry should push success probability to ~1 with 20 attempts.
	for i := 0; i < 10; i++ {
		if _, err := CallRetry(context.Background(), f, ClientID, id, echoReq{}, 20); err != nil {
			t.Fatalf("CallRetry failed: %v", err)
		}
	}
}

func TestCallRetryGivesUpOnPermanentError(t *testing.T) {
	f := NewInProc(InProcOptions{})
	defer f.Close()
	calls := 0
	id, _ := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		calls++
		return nil, errors.New("permanent")
	})
	if _, err := CallRetry(context.Background(), f, ClientID, id, echoReq{}, 5); err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
}

func TestCallRetryExhaustsTransient(t *testing.T) {
	f := NewInProc(InProcOptions{FailureRate: 1.0, Seed: 1})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	_, err := CallRetry(context.Background(), f, ClientID, id, echoReq{}, 3)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want exhausted transient error, got %v", err)
	}
}

func TestInProcByteAccounting(t *testing.T) {
	f := NewInProc(InProcOptions{CountBytes: true})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	if _, err := f.Call(context.Background(), ClientID, id, echoReq{Msg: "hello world"}); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Bytes == 0 {
		t.Fatal("bytes not accounted")
	}
}

func TestTCPNestedCalls(t *testing.T) {
	// A handler that fans out to another node mid-request, as partition
	// forwarding does.
	f := NewTCP()
	defer f.Close()
	leaf, _ := f.AddNode(echoHandler)
	router, err := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		return f.Call(ctx, 1, leaf, req)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.Call(context.Background(), ClientID, router, echoReq{Msg: "routed"})
	if err != nil {
		t.Fatalf("nested call: %v", err)
	}
	if resp.(echoResp).Msg != "routed" {
		t.Fatalf("resp = %#v", resp)
	}
	if f.Stats().Bytes == 0 {
		t.Fatal("TCP bytes not accounted")
	}
}

// TestCallCancelledUpfront: a context that is already done must fail
// the call on every fabric without invoking the handler.
func TestCallCancelledUpfront(t *testing.T) {
	mks := fabrics()
	mks["virtual"] = func() Fabric { return NewVirtual(VirtualOptions{}) }
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			handled := false
			id, _ := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
				handled = true
				return echoResp{}, nil
			})
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := f.Call(ctx, ClientID, id, echoReq{}); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if handled {
				t.Fatal("handler ran despite a dead context")
			}
		})
	}
}

// TestInProcCancelUnblocksLatency: cancelling mid-transit must return
// well before the simulated latency elapses.
func TestInProcCancelUnblocksLatency(t *testing.T) {
	f := NewInProc(InProcOptions{Latency: 2 * time.Second})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Call(ctx, ClientID, id, echoReq{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel did not unblock the transit sleep: %v", elapsed)
	}
}

// TestTCPDeadlinePropagatesToHandler: the envelope carries the caller's
// deadline, so the remote handler's context expires and the call
// returns around the deadline instead of hanging on a stuck handler.
func TestTCPDeadlinePropagatesToHandler(t *testing.T) {
	f := NewTCP()
	defer f.Close()
	sawDeadline := make(chan bool, 1)
	id, _ := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		_, ok := ctx.Deadline()
		sawDeadline <- ok
		<-ctx.Done() // a handler that only yields when the query expires
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Call(ctx, ClientID, id, echoReq{})
	if err == nil {
		t.Fatal("expired call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: %v", elapsed)
	}
	if !<-sawDeadline {
		t.Fatal("handler context carried no deadline")
	}
}

// TestTCPCancelUnblocksRead: plain cancellation (no deadline) must snap
// the client connection shut and unblock the reply read.
func TestTCPCancelUnblocksRead(t *testing.T) {
	f := NewTCP()
	defer f.Close()
	release := make(chan struct{})
	id, _ := f.AddNode(func(ctx context.Context, from NodeID, req any) (any, error) {
		<-release // no wire deadline: the handler would block forever
		return echoResp{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.Call(ctx, ClientID, id, echoReq{})
	close(release)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel did not unblock the read: %v", elapsed)
	}
}

// TestObserve: the Observe wrapper must time every Call at the caller's
// boundary — including the simulated transit — report errors and
// responses faithfully, and pass every other Fabric method through.
func TestObserve(t *testing.T) {
	inner := NewInProc(InProcOptions{Latency: 2 * time.Millisecond})
	var (
		mu      sync.Mutex
		samples []CallSample
	)
	f := Observe(inner, func(s CallSample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	})
	defer f.Close()
	a, err := f.AddNode(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 1 {
		t.Fatalf("NumNodes through wrapper = %d", f.NumNodes())
	}
	resp, err := f.Call(context.Background(), ClientID, a, echoReq{Msg: "observed"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), ClientID, NodeID(99), echoReq{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node through wrapper: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(samples) != 2 {
		t.Fatalf("observed %d samples, want 2", len(samples))
	}
	if samples[0].Err != nil || samples[0].To != a || samples[0].Resp != resp {
		t.Fatalf("success sample wrong: %+v", samples[0])
	}
	if samples[0].RTT < 2*time.Millisecond {
		t.Fatalf("RTT %v does not cover the simulated transit", samples[0].RTT)
	}
	if !errors.Is(samples[1].Err, ErrUnknownNode) || samples[1].Resp != nil {
		t.Fatalf("failure sample wrong: %+v", samples[1])
	}
	if f.Stats().Messages != inner.Stats().Messages {
		t.Fatal("Stats not passed through")
	}
	// A nil observer is the identity.
	if got := Observe(inner, nil); got != Fabric(inner) {
		t.Fatal("Observe(nil) must return the fabric unchanged")
	}
}
