package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoReq / echoResp are the test protocol.
type echoReq struct{ Msg string }
type echoResp struct {
	Msg  string
	From NodeID
}

func init() {
	RegisterMessage(echoReq{})
	RegisterMessage(echoResp{})
}

func echoHandler(from NodeID, req any) (any, error) {
	r, ok := req.(echoReq)
	if !ok {
		return nil, fmt.Errorf("bad request type %T", req)
	}
	return echoResp{Msg: r.Msg, From: from}, nil
}

// fabrics under test; each constructor returns a fresh fabric.
func fabrics() map[string]func() Fabric {
	return map[string]func() Fabric{
		"inproc": func() Fabric { return NewInProc(InProcOptions{}) },
		"tcp":    func() Fabric { return NewTCP() },
	}
}

func TestFabricBasics(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			a, err := f.AddNode(echoHandler)
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			b, err := f.AddNode(echoHandler)
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if f.NumNodes() != 2 {
				t.Fatalf("NumNodes = %d", f.NumNodes())
			}
			resp, err := f.Call(a, b, echoReq{Msg: "hi"})
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			er, ok := resp.(echoResp)
			if !ok || er.Msg != "hi" || er.From != a {
				t.Fatalf("resp = %#v", resp)
			}
			if _, err := f.Call(ClientID, 99, echoReq{}); err == nil {
				t.Fatal("call to unknown node succeeded")
			}
			if s := f.Stats(); s.Messages < 1 {
				t.Fatalf("stats = %+v", s)
			}
		})
	}
}

func TestFabricHandlerError(t *testing.T) {
	boom := errors.New("boom")
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			id, _ := f.AddNode(func(from NodeID, req any) (any, error) {
				return nil, boom
			})
			_, err := f.Call(ClientID, id, echoReq{})
			if err == nil {
				t.Fatal("handler error not propagated")
			}
		})
	}
}

func TestFabricConcurrentCalls(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()
			var ids []NodeID
			for i := 0; i < 4; i++ {
				id, err := f.AddNode(echoHandler)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						to := ids[(w+i)%len(ids)]
						msg := fmt.Sprintf("w%d-%d", w, i)
						resp, err := f.Call(ClientID, to, echoReq{Msg: msg})
						if err != nil {
							errs <- err
							return
						}
						if resp.(echoResp).Msg != msg {
							errs <- fmt.Errorf("wrong echo: %v", resp)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestFabricClose(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			f := mk()
			id, _ := f.AddNode(echoHandler)
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := f.Call(ClientID, id, echoReq{}); err == nil {
				t.Fatal("call on closed fabric succeeded")
			}
			if _, err := f.AddNode(echoHandler); err == nil {
				t.Fatal("AddNode on closed fabric succeeded")
			}
		})
	}
}

func TestInProcLatency(t *testing.T) {
	f := NewInProc(InProcOptions{Latency: 2 * time.Millisecond})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	start := time.Now()
	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := f.Call(ClientID, id, echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := time.Since(start); got < calls*2*time.Millisecond {
		t.Fatalf("latency not applied: %v for %d calls", got, calls)
	}
}

func TestInProcFailureInjectionAndRetry(t *testing.T) {
	f := NewInProc(InProcOptions{FailureRate: 0.5, Seed: 42})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	sawFailure := false
	for i := 0; i < 50; i++ {
		if _, err := f.Call(ClientID, id, echoReq{}); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("failure injection produced no failures at rate 0.5")
	}
	if f.Stats().Failures == 0 {
		t.Fatal("failures not counted")
	}
	// CallRetry should push success probability to ~1 with 20 attempts.
	for i := 0; i < 10; i++ {
		if _, err := CallRetry(f, ClientID, id, echoReq{}, 20); err != nil {
			t.Fatalf("CallRetry failed: %v", err)
		}
	}
}

func TestCallRetryGivesUpOnPermanentError(t *testing.T) {
	f := NewInProc(InProcOptions{})
	defer f.Close()
	calls := 0
	id, _ := f.AddNode(func(from NodeID, req any) (any, error) {
		calls++
		return nil, errors.New("permanent")
	})
	if _, err := CallRetry(f, ClientID, id, echoReq{}, 5); err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
}

func TestCallRetryExhaustsTransient(t *testing.T) {
	f := NewInProc(InProcOptions{FailureRate: 1.0, Seed: 1})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	_, err := CallRetry(f, ClientID, id, echoReq{}, 3)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want exhausted transient error, got %v", err)
	}
}

func TestInProcByteAccounting(t *testing.T) {
	f := NewInProc(InProcOptions{CountBytes: true})
	defer f.Close()
	id, _ := f.AddNode(echoHandler)
	if _, err := f.Call(ClientID, id, echoReq{Msg: "hello world"}); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Bytes == 0 {
		t.Fatal("bytes not accounted")
	}
}

func TestTCPNestedCalls(t *testing.T) {
	// A handler that fans out to another node mid-request, as partition
	// forwarding does.
	f := NewTCP()
	defer f.Close()
	leaf, _ := f.AddNode(echoHandler)
	router, err := f.AddNode(func(from NodeID, req any) (any, error) {
		return f.Call(1, leaf, req)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.Call(ClientID, router, echoReq{Msg: "routed"})
	if err != nil {
		t.Fatalf("nested call: %v", err)
	}
	if resp.(echoResp).Msg != "routed" {
		t.Fatalf("resp = %#v", resp)
	}
	if f.Stats().Bytes == 0 {
		t.Fatal("TCP bytes not accounted")
	}
}
