package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// InProcOptions configure the in-process fabric.
type InProcOptions struct {
	// Latency is the simulated network transit per message: slept on
	// the caller's goroutine for Call, and during asynchronous transit
	// (off the sender's goroutine) for Send.
	Latency time.Duration
	// Jitter adds a uniform random extra in [0, Jitter) per message.
	Jitter time.Duration
	// FailureRate is the probability in [0, 1) that a message fails
	// with ErrTransient (Call) or is dropped (Send) before reaching the
	// handler — failure injection for robustness tests.
	FailureRate float64
	// CountBytes gob-encodes requests and responses to account message
	// sizes in Stats (slower; off by default).
	CountBytes bool
	// Seed makes jitter and failure injection deterministic.
	Seed int64
	// NodeWorkers is the number of mailbox workers per node processing
	// Send messages. Default 1: a node is a single-threaded compute
	// rank, which is what makes partition parallelism measurable.
	NodeWorkers int
	// WorkCost is slept by a mailbox worker for every Send message it
	// processes, on top of the real handler time: simulated CPU cost of
	// one message on a compute rank.
	WorkCost time.Duration
	// MailboxSize is the per-node queue capacity. Default 1024.
	MailboxSize int
}

func (o InProcOptions) withDefaults() InProcOptions {
	if o.NodeWorkers <= 0 {
		o.NodeWorkers = 1
	}
	if o.MailboxSize <= 0 {
		o.MailboxSize = 1024
	}
	return o
}

// InProc is an in-process Fabric. Call invokes the handler
// synchronously on the caller's goroutine after the simulated transit
// delay (a multithreaded RPC endpoint); Send enqueues into the target
// node's mailbox, processed by NodeWorkers workers (a message-passing
// rank). It is safe for concurrent use.
type InProc struct {
	opts    InProcOptions
	latency atomic.Int64 // current per-message transit, adjustable at runtime

	mu     sync.RWMutex
	nodes  []*inprocNode
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	pending sync.WaitGroup // un-processed Send messages

	messages atomic.Int64
	bytes    atomic.Int64
	failures atomic.Int64
}

type inprocNode struct {
	handler Handler
	mailbox chan mailboxMsg
	done    sync.WaitGroup
}

type mailboxMsg struct {
	from NodeID
	req  any
}

// NewInProc returns an in-process fabric.
func NewInProc(opts InProcOptions) *InProc {
	f := &InProc{
		opts: opts.withDefaults(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	f.latency.Store(int64(opts.Latency))
	return f
}

// SetLatency changes the simulated per-message transit at runtime:
// tests and benchmarks build an index over a fast fabric, then degrade
// the network to measure query behavior under latency (deadline and
// cancellation experiments in particular).
func (f *InProc) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// AddNode implements Fabric: it registers the handler and starts the
// node's mailbox workers.
func (f *InProc) AddNode(h Handler) (NodeID, error) {
	if h == nil {
		return 0, ErrUnknownNode
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n := &inprocNode{handler: h, mailbox: make(chan mailboxMsg, f.opts.MailboxSize)}
	id := NodeID(len(f.nodes))
	f.nodes = append(f.nodes, n)
	for w := 0; w < f.opts.NodeWorkers; w++ {
		n.done.Add(1)
		go f.work(n, id)
	}
	return id, nil
}

// work is one mailbox worker: it serializes the node's asynchronous
// message processing, charging WorkCost per message.
func (f *InProc) work(n *inprocNode, id NodeID) {
	defer n.done.Done()
	for msg := range n.mailbox {
		if f.opts.WorkCost > 0 {
			time.Sleep(f.opts.WorkCost)
		}
		// One-way: response discarded; no caller context to honor.
		//semtree:allow ctxfirst: mailbox deliveries run detached by the documented Fabric.Send contract
		_, _ = n.handler(context.Background(), msg.from, msg.req)
		f.pending.Done()
	}
}

func (f *InProc) node(to NodeID) (*inprocNode, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	if to < 0 || int(to) >= len(f.nodes) {
		return nil, ErrUnknownNode
	}
	return f.nodes[to], nil
}

// Call implements Fabric. The simulated transit sleep unblocks when ctx
// is done, so a cancelled query abandons its in-flight message instead
// of paying the full latency; the handler receives ctx and is expected
// to check it during long traversals.
func (f *InProc) Call(ctx context.Context, from, to NodeID, req any) (any, error) {
	n, err := f.node(to)
	if err != nil {
		return nil, err
	}
	// Check before accounting (as Virtual does): an already-dead call
	// never becomes a message. A cancel mid-transit still counts — the
	// message left, only its reply is abandoned.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.messages.Add(1)
	if d := f.delay(); d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.opts.FailureRate > 0 && f.roll() < f.opts.FailureRate {
		f.failures.Add(1)
		return nil, ErrTransient
	}
	if f.opts.CountBytes {
		f.bytes.Add(encodedSize(req))
	}
	resp, err := n.handler(ctx, from, req)
	if err != nil {
		return nil, err
	}
	if f.opts.CountBytes {
		f.bytes.Add(encodedSize(resp))
	}
	return resp, nil
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
// A context that can never be cancelled skips the timer machinery.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Send implements Fabric: at-most-once asynchronous delivery into the
// target's mailbox.
func (f *InProc) Send(from, to NodeID, req any) error {
	n, err := f.node(to)
	if err != nil {
		return err
	}
	f.messages.Add(1)
	if f.opts.CountBytes {
		f.bytes.Add(encodedSize(req))
	}
	f.pending.Add(1)
	transit := f.delay()
	dropped := f.opts.FailureRate > 0 && f.roll() < f.opts.FailureRate
	deliver := func() {
		if dropped {
			f.failures.Add(1)
			f.pending.Done()
			return
		}
		n.mailbox <- mailboxMsg{from: from, req: req}
	}
	if transit > 0 {
		go func() {
			time.Sleep(transit)
			deliver()
		}()
		return nil
	}
	deliver()
	return nil
}

// Flush implements Fabric: it waits for all in-flight Send messages,
// including cascades sent by handlers mid-processing.
func (f *InProc) Flush() { f.pending.Wait() }

func (f *InProc) delay() time.Duration {
	d := time.Duration(f.latency.Load())
	if f.opts.Jitter > 0 {
		f.rngMu.Lock()
		d += time.Duration(f.rng.Int63n(int64(f.opts.Jitter)))
		f.rngMu.Unlock()
	}
	return d
}

func (f *InProc) roll() float64 {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return f.rng.Float64()
}

// NumNodes implements Fabric.
func (f *InProc) NumNodes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.nodes)
}

// Stats implements Fabric.
func (f *InProc) Stats() Stats {
	return Stats{
		Messages: f.messages.Load(),
		Bytes:    f.bytes.Load(),
		Failures: f.failures.Load(),
	}
}

// Close implements Fabric: it drains mailboxes and stops the workers.
func (f *InProc) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	nodes := f.nodes
	f.mu.Unlock()
	f.pending.Wait()
	for _, n := range nodes {
		close(n.mailbox)
	}
	for _, n := range nodes {
		n.done.Wait()
	}
	return nil
}

func encodedSize(v any) int64 {
	if v == nil {
		return 0
	}
	var buf bytes.Buffer
	// Wrap in an envelope so interface values encode like the TCP
	// transport would send them.
	if err := gob.NewEncoder(&buf).Encode(&envelope{Payload: v}); err != nil {
		return 0 // unregistered type; size unknown
	}
	return int64(buf.Len())
}
