// Package cluster is the distributed-runtime substrate under SemTree.
// The paper runs partitions on the compute nodes of an 8-processor
// cluster and navigates across them "by a proper communication protocol
// (in our implementation based on MPJ libraries)" (§III-B.1). This
// package provides the equivalent: a Fabric of named nodes exchanging
// synchronous request/response messages, with two implementations —
//
//   - InProc: in-process transport with configurable per-message
//     latency, jitter, transient-failure injection and message/byte
//     accounting. It reproduces the cost model of a cluster
//     deterministically and is what the benchmark harness uses.
//   - TCP: a real network transport over loopback (net + encoding/gob),
//     used by the distributed example and integration tests.
//
// Every Call is context-first: cancellation and deadlines propagate
// with the message. On InProc the simulated transit sleep unblocks when
// the context is done; on TCP the deadline travels in the envelope (the
// serving side derives a context from it) and the client connection's
// read/write deadlines are armed from the context, so a caller is never
// stuck waiting for a reply its query no longer wants.
//
// Handlers must be safe for concurrent use: a fabric delivers requests
// from many callers at once, exactly like a multithreaded MPJ rank.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// NodeID names a fabric node (a partition host). The client/coordinator
// uses ClientID.
type NodeID int

// ClientID is the conventional "from" for calls originating outside any
// fabric node (the coordinator / client process).
const ClientID NodeID = -1

// Handler processes one request addressed to a node and returns the
// response. The context is the caller's: it carries the query's
// deadline/cancellation across the fabric (on TCP, reconstructed from
// the wire deadline), and long-running handlers are expected to check
// it and abandon work when it is done. Handlers run on the caller's
// goroutine (InProc) or a per-connection goroutine (TCP) and must be
// concurrency-safe. One-way mailbox deliveries (Send) run handlers
// under context.Background().
type Handler func(ctx context.Context, from NodeID, req any) (any, error)

// Fabric is a set of addressable nodes exchanging request/response
// messages.
type Fabric interface {
	// AddNode registers a handler and returns its address.
	AddNode(h Handler) (NodeID, error)
	// Call delivers req to node `to`, identifying the caller as `from`,
	// and returns the handler's response. It may fail transiently
	// (ErrTransient) when failure injection is enabled or the network
	// hiccups; callers that need delivery use CallRetry. When ctx is
	// cancelled or past its deadline the call returns ctx.Err()
	// promptly, abandoning the in-flight reply.
	Call(ctx context.Context, from, to NodeID, req any) (any, error)
	// Send delivers req one-way: it enqueues the message into the
	// target node's mailbox and returns immediately. The handler's
	// response is discarded. Mailbox messages are processed by the
	// node's worker(s) — on InProc a single worker by default,
	// modeling a single-threaded compute rank as in the paper's MPJ
	// deployment. Delivery is at-most-once: transit failures drop the
	// message (counted in Stats).
	Send(from, to NodeID, req any) error
	// Flush blocks until every message enqueued by Send (including
	// messages sent by handlers while processing) has been handled.
	Flush()
	// NumNodes returns the number of registered nodes.
	NumNodes() int
	// Stats returns cumulative message accounting.
	Stats() Stats
	// Close releases transport resources. Calls after Close fail.
	Close() error
}

// Stats is cumulative fabric accounting.
type Stats struct {
	Messages int64 // completed calls (including failed ones)
	Bytes    int64 // encoded request+response bytes, when accounted
	Failures int64 // injected or transport-level transient failures
}

// ErrTransient marks a delivery failure that may succeed on retry.
var ErrTransient = errors.New("cluster: transient delivery failure")

// ErrClosed is returned by operations on a closed fabric.
var ErrClosed = errors.New("cluster: fabric closed")

// ErrUnknownNode is returned when calling an unregistered address.
var ErrUnknownNode = errors.New("cluster: unknown node")

// CallSample is one completed (or failed) Call as seen by an Observe
// wrapper: the destination node, the caller-observed round-trip wall
// time, the call's error, and the handler's response (nil on error).
// RTT covers transit both ways plus handler execution; subscribers that
// want pure transit must subtract an estimate of the handler's compute
// (core's cost model does exactly that for responses whose work
// counters it understands).
type CallSample struct {
	To   NodeID
	RTT  time.Duration
	Err  error
	Resp any
}

// Observe wraps a fabric with a latency observation point on Call:
// every Call is timed on the caller's side and reported to obs after it
// completes. This is the hook the adaptive query scheduler's cost model
// subscribes to — estimates must come from the transport boundary, not
// from inside handlers, because only the caller observes the full
// round trip. All other Fabric methods pass through unchanged; obs must
// be safe for concurrent use. A nil obs returns f itself.
func Observe(f Fabric, obs func(CallSample)) Fabric {
	if obs == nil {
		return f
	}
	return &observedFabric{Fabric: f, obs: obs}
}

type observedFabric struct {
	Fabric
	obs func(CallSample)
}

func (o *observedFabric) Call(ctx context.Context, from, to NodeID, req any) (any, error) {
	start := time.Now()
	resp, err := o.Fabric.Call(ctx, from, to, req)
	o.obs(CallSample{To: to, RTT: time.Since(start), Err: err, Resp: resp})
	return resp, err
}

// CallRetry calls f.Call up to attempts times, retrying only transient
// failures. Context errors are never retried — a cancelled query must
// not burn its remaining attempts re-sending a message nobody wants —
// and the context is re-checked between attempts. It returns the last
// error when all attempts fail.
func CallRetry(ctx context.Context, f Fabric, from, to NodeID, req any, attempts int) (any, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		var resp any
		resp, err = f.Call(ctx, from, to, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransient) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: %d attempts exhausted: %w", attempts, err)
}
