package cluster

import (
	"container/heap"
	"context"
	"sync/atomic"
	"time"
)

// VirtualOptions configure a Virtual fabric.
type VirtualOptions struct {
	// Latency is the virtual transit time per one-way message.
	Latency time.Duration
	// CostScale multiplies the measured real handler duration to obtain
	// the virtual service time. Default 1.
	CostScale float64
	// FixedCost is a per-message virtual service floor, modeling rank
	// dispatch overhead.
	FixedCost time.Duration
}

// Virtual is a discrete-event simulation Fabric: each node is a
// single-threaded compute rank with a mailbox; Send schedules a message
// event; Flush runs the event loop, executing handlers for real on the
// driving goroutine while advancing a virtual clock in which ranks
// process in parallel. The virtual service time of a message is the
// measured real execution time of its handler (times CostScale, plus
// FixedCost), so relative compute costs — shallow routing vs deep
// descents, bucket splits, degenerate chains — carry over faithfully
// even on a single-CPU host where real parallelism is impossible.
//
// This is what the index-building benchmarks (paper Figure 3) run on:
// the paper's 8-node cluster is reproduced as 8 virtual ranks whose
// virtual busy periods overlap.
//
// Concurrency contract: one driving goroutine owns Send/Flush/AddNode
// (handlers run inline inside Flush and may call them re-entrantly —
// that is the same goroutine). Call is stateless with respect to the
// virtual clock — it executes the handler inline and is safe to use
// concurrently (queries, adoption during spills); nested Call work is
// captured in the caller's measured duration automatically.
type Virtual struct {
	opts VirtualOptions

	handlers []Handler
	queue    virtEvents
	seq      int64
	rankFree []time.Duration
	now      time.Duration
	running  bool
	outbox   []virtEvent // messages sent by the currently executing handler

	messages atomic.Int64
	closed   bool
}

type virtEvent struct {
	at   time.Duration
	seq  int64 // FIFO tie-break for determinism
	from NodeID
	to   NodeID
	req  any
}

type virtEvents []virtEvent

func (q virtEvents) Len() int { return len(q) }
func (q virtEvents) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q virtEvents) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *virtEvents) Push(x interface{}) { *q = append(*q, x.(virtEvent)) }
func (q *virtEvents) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewVirtual returns a virtual-clock fabric.
func NewVirtual(opts VirtualOptions) *Virtual {
	if opts.CostScale <= 0 {
		opts.CostScale = 1
	}
	return &Virtual{opts: opts}
}

// AddNode implements Fabric. It may be called re-entrantly from a
// handler (partition creation during a spill).
func (f *Virtual) AddNode(h Handler) (NodeID, error) {
	if h == nil {
		return 0, ErrUnknownNode
	}
	if f.closed {
		return 0, ErrClosed
	}
	f.handlers = append(f.handlers, h)
	f.rankFree = append(f.rankFree, 0)
	return NodeID(len(f.handlers) - 1), nil
}

// Call implements Fabric: inline execution, no virtual accounting of its
// own (nested calls are captured by the caller's measured duration).
// There is no transit to abandon — the handler runs on the caller's
// goroutine — so cancellation reduces to the upfront check plus the
// handler's own ctx checks.
func (f *Virtual) Call(ctx context.Context, from, to NodeID, req any) (any, error) {
	if f.closed {
		return nil, ErrClosed
	}
	if to < 0 || int(to) >= len(f.handlers) {
		return nil, ErrUnknownNode
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.messages.Add(1)
	return f.handlers[to](ctx, from, req)
}

// Send implements Fabric: it schedules a message event. From the driving
// goroutine outside Flush, the message departs at the current virtual
// time; from inside a handler, it departs when the handler's service
// completes (the outbox is stamped after the duration is measured).
func (f *Virtual) Send(from, to NodeID, req any) error {
	if f.closed {
		return ErrClosed
	}
	if to < 0 || int(to) >= len(f.handlers) {
		return ErrUnknownNode
	}
	f.messages.Add(1)
	f.seq++
	e := virtEvent{seq: f.seq, from: from, to: to, req: req}
	if f.running {
		f.outbox = append(f.outbox, e)
		return nil
	}
	e.at = f.now + f.opts.Latency
	heap.Push(&f.queue, e)
	return nil
}

// Flush implements Fabric: it runs the event loop to exhaustion,
// advancing the virtual clock.
func (f *Virtual) Flush() {
	for f.queue.Len() > 0 {
		e := heap.Pop(&f.queue).(virtEvent)
		start := e.at
		if free := f.rankFree[e.to]; free > start {
			start = free
		}
		f.running = true
		f.outbox = f.outbox[:0]
		t0 := time.Now()
		//semtree:allow ctxfirst: simulated one-way delivery; response discarded, no caller context exists
		_, _ = f.handlers[e.to](context.Background(), e.from, e.req) // one-way: response discarded
		real := time.Since(t0)
		f.running = false

		service := time.Duration(float64(real)*f.opts.CostScale) + f.opts.FixedCost
		end := start + service
		f.rankFree[e.to] = end
		if end > f.now {
			f.now = end
		}
		for _, out := range f.outbox {
			out.at = end + f.opts.Latency
			heap.Push(&f.queue, out)
		}
		f.outbox = f.outbox[:0]
	}
}

// VirtualTime returns the current virtual clock: the completion time of
// the latest event processed so far.
func (f *Virtual) VirtualTime() time.Duration { return f.now }

// NumNodes implements Fabric.
func (f *Virtual) NumNodes() int { return len(f.handlers) }

// Stats implements Fabric (message count only: bytes and failures are
// not modeled).
func (f *Virtual) Stats() Stats { return Stats{Messages: f.messages.Load()} }

// Close implements Fabric.
func (f *Virtual) Close() error {
	f.closed = true
	return nil
}
