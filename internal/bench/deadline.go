package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/core"
)

// Deadline measures the context-first query API under load: k-nearest
// queries run against a latency-injecting fabric with a per-query
// deadline (Params.Deadline), and the experiment reports the p50 and
// p99 client-observed latency plus the fraction of queries cut off by
// the deadline, per partition count. This exercises the cancellation
// path end to end — expired queries must abandon their in-flight
// partition replies, so the tail latency of a cut-off query is bounded
// by the deadline, not by the slowest partition chain — and is the
// measurement the ROADMAP's admission-control work will budget against.
func Deadline(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	n := maxSize(p.Sizes)
	fig := &Figure{
		ID: "deadline", Title: fmt.Sprintf("Query latency under a %v deadline (K=%d, %d points)", p.Deadline, p.K, n),
		XLabel: "partitions", YLabel: "ms (p50/p99) | fraction cut off",
		Notes: []string{
			fmt.Sprintf("per-hop latency %v; deadline %v; %d queries per measurement", p.Latency, p.Deadline, p.Queries),
			"cut-off queries return context.DeadlineExceeded and abandon outstanding partition replies",
		},
	}
	p50 := Series{Name: "p50 ms"}
	p99 := Series{Name: "p99 ms"}
	cut := Series{Name: "cut-off fraction"}
	for _, m := range p.Partitions {
		// Build fast, then degrade the network so only queries pay the
		// per-hop latency.
		fabric := cluster.NewInProc(cluster.InProcOptions{})
		tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
		if err != nil {
			fabric.Close()
			return nil, err
		}
		fabric.SetLatency(p.Latency)
		// Pin the fan-out protocol: the figure measures the cancellation
		// behavior this experiment was calibrated for, not the adaptive
		// scheduler's cold-start phase (each partition count builds a
		// fresh tree, so ProtocolAuto would start sequential and charge
		// its warm-up queries to the cut-off fraction).
		sched := tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolFanOut})
		lat := make([]time.Duration, 0, len(data.queries))
		cutOff := 0
		for _, q := range data.queries {
			ctx, cancel := context.WithTimeout(ctx, p.Deadline)
			start := time.Now()
			_, _, qerr := sched.KNearest(ctx, q, p.K)
			lat = append(lat, time.Since(start))
			cancel()
			switch {
			case qerr == nil:
			case errors.Is(qerr, context.DeadlineExceeded):
				cutOff++
			default:
				tr.Close()
				fabric.Close()
				return nil, qerr
			}
		}
		tr.Close()
		fabric.Close()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		x := float64(m)
		p50.X = append(p50.X, x)
		p50.Y = append(p50.Y, ms(percentile(lat, 0.50)))
		p99.X = append(p99.X, x)
		p99.Y = append(p99.Y, ms(percentile(lat, 0.99)))
		cut.X = append(cut.X, x)
		cut.Y = append(cut.Y, float64(cutOff)/float64(len(data.queries)))
	}
	fig.Series = append(fig.Series, p50, p99, cut)
	return fig, nil
}

// percentile returns the q-quantile of sorted durations (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
