package bench

import (
	"context"
	"fmt"

	"semtree/internal/cluster"
	"semtree/internal/core"
)

// Pruning measures the region (bounding-box) min-distance guard
// against the paper's splitting-plane bound (§III-B.3) across a
// dimensionality sweep (Params.DimsSweep): per-query fabric messages
// and probe misses for the fan-out protocol on two trees that differ
// only in Config.PlaneGuardOnly — same points, same partitions, same
// queries, byte-identical results (equivalence-tested in
// internal/core). The expected shape: the plane bound measures the gap
// to a region along one dimension only, so its curves grow with
// dimensionality while the region bound — which accumulates the gap
// over every dimension the query falls outside of — keeps probes it
// can rule out off the fabric; by dims >= 8 both region curves sit
// strictly below the plane curves.
func Pruning(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	n := maxSize(p.Sizes)
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}
	fig := &Figure{
		ID: "pruning", Title: fmt.Sprintf("Region vs splitting-plane pruning guard (K=%d, %d points, %d partitions, fan-out protocol)", p.K, n, m),
		XLabel: "dims", YLabel: "msgs/query | misses/query", YFmt: "%.2f",
		Notes: []string{
			"same tree topology, points and queries per column; only the pruning guard differs",
			"expected: region <= plane everywhere, strictly below at dims >= 8 where the one-dimensional plane bound degrades",
		},
	}
	guards := []struct {
		name       string
		planeGuard bool
	}{{"plane", true}, {"region", false}}
	msgs := make([]Series, len(guards))
	misses := make([]Series, len(guards))
	for i, g := range guards {
		msgs[i] = Series{Name: g.name + " msgs/q"}
		misses[i] = Series{Name: g.name + " misses/q"}
	}
	for _, dims := range p.DimsSweep {
		pd := p
		pd.Dims = dims
		data, err := makeSweep(n, p.Queries, dims, p.Seed)
		if err != nil {
			return nil, err
		}
		for i, g := range guards {
			fabric := cluster.NewInProc(cluster.InProcOptions{})
			tr, err := buildDistributedGuard(data.prefix(n), m, pd, fabric, false, g.planeGuard)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			// Pin the fan-out protocol: it is the latency path the
			// probe ranking and the remote guards exist for, and
			// pinning keeps both trees on identical message patterns.
			sched := tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolFanOut})
			var totMsgs, totMisses int64
			for _, q := range data.queries {
				_, st, err := sched.KNearest(ctx, q, p.K)
				if err != nil {
					tr.Close()
					fabric.Close()
					return nil, err
				}
				totMsgs += st.FabricMessages
				totMisses += st.ProbeMisses
			}
			queries := float64(len(data.queries))
			msgs[i].X = append(msgs[i].X, float64(dims))
			msgs[i].Y = append(msgs[i].Y, float64(totMsgs)/queries)
			misses[i].X = append(misses[i].X, float64(dims))
			misses[i].Y = append(misses[i].Y, float64(totMisses)/queries)
			tr.Close()
			fabric.Close()
		}
	}
	fig.Series = append(fig.Series, msgs...)
	fig.Series = append(fig.Series, misses...)
	return fig, nil
}
