package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/core"
)

// quotaTargetQPS is the sustained rate granted to the throttled tenant:
// its bucket refills at quotaTargetQPS × (average cost of one query)
// units per second, so its admitted throughput must converge onto this
// line no matter how hard it hammers.
const quotaTargetQPS = 25.0

// Quota measures per-tenant quota enforcement end to end. One tree
// serves Params.Tenants tenants (one core.Scheduler each, exactly the
// Searcher-per-tenant facade arrangement): tenant 0 is an aggressor
// with a token-bucket quota sized from the measured per-query cost
// (capacity 4×avg, refill avg×target QPS) hammering in a closed loop
// with several workers, and the remaining tenants are well-behaved,
// unthrottled closed loops. The figure reports, per time window, the
// aggressor's admitted and rejected QPS against its refill-rate target,
// and the victims' p50 latency against their solo baseline (measured
// with the aggressor absent). Expected shape: the aggressor's admitted
// QPS spends its burst in the first window and then converges onto the
// target line, and the victims' p50 stays within a few percent of the
// solo baseline — quota rejections cost the fabric nothing.
func Quota(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	n := maxSize(p.Sizes)
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}
	data, err := makeSweep(n, p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	// Build fast, then degrade the network so only queries pay the
	// per-hop latency.
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	defer fabric.Close()
	tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	fabric.SetLatency(p.Latency)

	// Warm-up: learn the average per-query cost on this tree, the unit
	// the quota is denominated in.
	warm := tr.NewScheduler(core.SchedulerConfig{})
	warmN := 30
	if warmN > len(data.queries) {
		warmN = len(data.queries)
	}
	var totalCost float64
	for i := 0; i < warmN; i++ {
		_, st, err := warm.KNearest(ctx, data.queries[i], p.K)
		if err != nil {
			return nil, err
		}
		totalCost += core.CostOf(st)
	}
	avgCost := totalCost / float64(warmN)

	quota := &core.QuotaConfig{
		Capacity:     4 * avgCost,
		RefillPerSec: avgCost * quotaTargetQPS,
	}
	aggressor := tr.NewScheduler(core.SchedulerConfig{Quota: quota})
	victims := make([]*core.Scheduler, p.Tenants-1)
	for i := range victims {
		victims[i] = tr.NewScheduler(core.SchedulerConfig{})
	}

	const (
		windows  = 6
		window   = 400 * time.Millisecond
		aggrWork = 3                      // aggressor closed-loop workers
		backoff  = 500 * time.Microsecond // aggressor sleep after a rejection
	)

	// Solo baseline: the victims run alone for one window; their p50 is
	// the line the contended p50 is held against.
	var soloRecs []quotaRec
	for _, v := range victims {
		recs, err := hammerQuota(ctx, v, data.queries, p.K, 1, window, 0)
		if err != nil {
			return nil, err
		}
		soloRecs = append(soloRecs, recs...)
	}
	soloP50 := quotaP50(soloRecs)

	// Contended run: aggressor and victims concurrently for the full
	// window sweep.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		aggrRecs []quotaRec
		vicRecs  []quotaRec
	)
	record := func(dst *[]quotaRec, recs []quotaRec, err error) {
		mu.Lock()
		*dst = append(*dst, recs...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs, err := hammerQuota(ctx, aggressor, data.queries, p.K, aggrWork, windows*window, backoff)
		record(&aggrRecs, recs, err)
	}()
	for _, v := range victims {
		wg.Add(1)
		go func(v *core.Scheduler) {
			defer wg.Done()
			recs, err := hammerQuota(ctx, v, data.queries, p.K, 1, windows*window, 0)
			record(&vicRecs, recs, err)
		}(v)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	fig := &Figure{
		ID: "quota", Title: fmt.Sprintf("Per-tenant quota enforcement (%d tenants, K=%d, %d points, %d partitions)",
			p.Tenants, p.K, n, m),
		XLabel: "window", YLabel: "qps | p50 ms", YFmt: "%.2f",
		Notes: []string{
			fmt.Sprintf("per-hop latency %v; %v windows; aggressor quota: capacity %.0f units (4x avg query cost %.0f), refill %.0f units/s (%.0f qps)",
				p.Latency, window, quota.Capacity, avgCost, quota.RefillPerSec, quotaTargetQPS),
			"expected: aggressor admitted qps converges onto the refill line after the first-window burst; victim p50 tracks its solo baseline",
		},
	}
	admitted := Series{Name: "aggressor admitted qps"}
	rejected := Series{Name: "aggressor rejected qps"}
	target := Series{Name: "refill target qps"}
	vicP50 := Series{Name: "victim p50 ms"}
	solo := Series{Name: "victim solo p50 ms"}
	winSec := window.Seconds()
	for w := 0; w < windows; w++ {
		lo, hi := time.Duration(w)*window, time.Duration(w+1)*window
		var ok, shed float64
		for _, r := range aggrRecs {
			if r.at < lo || r.at >= hi {
				continue
			}
			if r.ok {
				ok++
			} else {
				shed++
			}
		}
		var wins []quotaRec
		for _, r := range vicRecs {
			if r.at >= lo && r.at < hi {
				wins = append(wins, r)
			}
		}
		x := float64(w + 1)
		admitted.X = append(admitted.X, x)
		admitted.Y = append(admitted.Y, ok/winSec)
		rejected.X = append(rejected.X, x)
		rejected.Y = append(rejected.Y, shed/winSec)
		target.X = append(target.X, x)
		target.Y = append(target.Y, quotaTargetQPS)
		vicP50.X = append(vicP50.X, x)
		vicP50.Y = append(vicP50.Y, ms(quotaP50(wins)))
		solo.X = append(solo.X, x)
		solo.Y = append(solo.Y, ms(soloP50))
	}
	st := aggressor.Stats()
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("aggressor totals: %d admitted, %d quota-rejected, metered cost %.0f units; rejected queries spent zero fabric messages",
			st.Admitted, st.RejectedQuota, st.MeteredCost))
	fig.Series = append(fig.Series, admitted, rejected, target, vicP50, solo)
	return fig, nil
}

// quotaRec is one closed-loop attempt: when it was issued (offset from
// the loop start), how long the client observed it take, and whether it
// was admitted (false = quota-rejected).
type quotaRec struct {
	at   time.Duration
	wall time.Duration
	ok   bool
}

// hammerQuota runs a closed query loop against one scheduler with the
// given worker count for duration d, recording every attempt.
// Quota rejections optionally back off (a polite client's retry
// behavior); any other error aborts the loop.
func hammerQuota(ctx context.Context, s *core.Scheduler, qs [][]float64, k, workers int, d, backoff time.Duration) ([]quotaRec, error) {
	var (
		mu       sync.Mutex
		recs     []quotaRec
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += workers {
				at := time.Since(start)
				if at >= d {
					return
				}
				t0 := time.Now()
				_, _, err := s.KNearest(ctx, qs[i%len(qs)], k)
				wall := time.Since(t0)
				switch {
				case err == nil:
					mu.Lock()
					recs = append(recs, quotaRec{at: at, wall: wall, ok: true})
					mu.Unlock()
				case errors.Is(err, core.ErrQuotaExhausted):
					mu.Lock()
					recs = append(recs, quotaRec{at: at, wall: wall, ok: false})
					mu.Unlock()
					if backoff > 0 {
						time.Sleep(backoff)
					}
				default:
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return recs, firstErr
}

// quotaP50 returns the median wall of the admitted records.
func quotaP50(recs []quotaRec) time.Duration {
	var walls []time.Duration
	for _, r := range recs {
		if r.ok {
			walls = append(walls, r.wall)
		}
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	return percentile(walls, 0.50)
}
