package bench

import (
	"context"
	"fmt"

	semtree "semtree"
	"semtree/internal/cluster"
	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/reqcheck"
	"semtree/internal/semdist"
	"semtree/internal/synth"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// ablationK is the result-set size used by the effectiveness ablations.
const ablationK = 5

// AblationWeights sweeps Eq. 1's predicate weight β (with α = γ =
// (1−β)/2) and reports precision/recall at K=5: DESIGN.md's claim that
// the inconsistency case study hinges on the predicate component.
func AblationWeights(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	fig := &Figure{
		ID: "ablation-weights", Title: fmt.Sprintf("Effectiveness vs predicate weight β (K=%d)", ablationK),
		XLabel: "beta", YLabel: "precision / recall", YFmt: "%.3f",
		Notes: []string{"alpha = gamma = (1-beta)/2"},
	}
	precision := Series{Name: fmt.Sprintf("Precision@%d", ablationK)}
	recall := Series{Name: fmt.Sprintf("Recall@%d", ablationK)}
	for _, beta := range []float64{0.1, 0.2, 0.3, 0.45, 0.6, 0.8} {
		rest := (1 - beta) / 2
		idx, bundle, queries, err := effectivenessSetup(p, semtree.Options{
			Seed:    p.Seed,
			Weights: semdist.Weights{Alpha: rest, Beta: beta, Gamma: rest},
		})
		if err != nil {
			return nil, err
		}
		points, err := reqcheck.Evaluate(ctx, idx, bundle.Corpus.Store, vocab.DefaultRegistry(), queries, []int{ablationK})
		idx.Close()
		if err != nil {
			return nil, err
		}
		precision.X = append(precision.X, beta)
		precision.Y = append(precision.Y, points[0].Precision)
		recall.X = append(recall.X, beta)
		recall.Y = append(recall.Y, points[0].Recall)
	}
	fig.Series = append(fig.Series, precision, recall)
	return fig, nil
}

// AblationDims sweeps the FastMap dimensionality and reports embedding
// stress plus neighborhood recall (fraction of the exact semantic top-5
// recovered in the embedded top-10).
func AblationDims(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	const n = 4000
	gen := synth.New(synth.Config{Seed: p.Seed}, nil)
	triples := gen.Triples(n)
	metric, err := semdist.New(vocab.DefaultRegistry(), semdist.Options{})
	if err != nil {
		return nil, err
	}
	qGen := synth.New(synth.Config{Seed: p.Seed + 1}, nil)
	queryTriples := qGen.Triples(40)

	fig := &Figure{
		ID: "ablation-dims", Title: "FastMap dimensionality",
		XLabel: "dims", YLabel: "stress / recall", YFmt: "%.3f",
		Notes: []string{fmt.Sprintf("%d triples; recall = |embedded top-10 ∩ exact top-5| / 5 over %d queries", n, len(queryTriples))},
	}
	stress := Series{Name: "embedding stress"}
	recall := Series{Name: "recall@10 of exact top-5"}
	for _, dims := range []int{2, 4, 6, 8, 12, 16} {
		mapper, coords, err := fastmap.Build(triples, metric.Distance, fastmap.Options{Dims: dims, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		stress.X = append(stress.X, float64(dims))
		stress.Y = append(stress.Y, fastmap.Stress(triples, metric.Distance, coords, 8000, p.Seed+2))

		points := make([]kdtree.Point, n)
		for i, c := range coords {
			points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
		}
		tree, err := kdtree.BulkLoad(points, dims, p.BucketSize)
		if err != nil {
			return nil, err
		}
		hits, total := 0, 0
		for _, q := range queryTriples {
			exact := exactTopIdx(triples, q, metric, 5)
			got := tree.KNearest(mapper.Map(q), 10)
			gotSet := map[uint64]bool{}
			for _, g := range got {
				gotSet[g.Point.ID] = true
			}
			for _, id := range exact {
				total++
				if gotSet[id] {
					hits++
				}
			}
		}
		recall.X = append(recall.X, float64(dims))
		recall.Y = append(recall.Y, float64(hits)/float64(total))
	}
	fig.Series = append(fig.Series, stress, recall)
	return fig, nil
}

// exactTopIdx returns the indices of the k triples closest to q under
// the exact metric (brute force).
func exactTopIdx(triples []triple.Triple, q triple.Triple, metric *semdist.Metric, k int) []uint64 {
	type cand struct {
		idx  uint64
		dist float64
	}
	best := make([]cand, 0, k+1)
	for i, t := range triples {
		d := metric.Distance(q, t)
		pos := len(best)
		for pos > 0 && (best[pos-1].dist > d || (best[pos-1].dist == d && best[pos-1].idx > uint64(i))) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(best) < k {
			best = append(best, cand{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = cand{idx: uint64(i), dist: d}
	}
	out := make([]uint64, len(best))
	for i, c := range best {
		out[i] = c.idx
	}
	return out
}

// AblationBucket sweeps the bucket size Bs and reports virtual build
// time (M = max partitions) and sequential query cost.
func AblationBucket(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	const n = 20000
	data, err := makeSweep(n, p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	m := p.Partitions[len(p.Partitions)-1]
	fig := &Figure{
		ID: "ablation-bucket", Title: fmt.Sprintf("Bucket size Bs (%d points)", n),
		XLabel: "bucket size", YLabel: "build s / query µs", YFmt: "%.4f",
		Notes: []string{fmt.Sprintf("build on the virtual fabric with M=%d; queries sequential balanced", m)},
	}
	build := Series{Name: fmt.Sprintf("build virtual s (M=%d)", m)}
	query := Series{Name: "k-nearest µs (sequential)"}
	for _, bs := range []int{4, 8, 16, 32, 64, 128} {
		pb := p
		pb.BucketSize = bs
		fabric := cluster.NewVirtual(cluster.VirtualOptions{Latency: p.Latency})
		tr, err := buildDistributed(data.prefix(n), m, pb, fabric, false)
		if err != nil {
			fabric.Close()
			return nil, err
		}
		vt := fabric.VirtualTime()
		tr.Close()
		fabric.Close()
		build.X = append(build.X, float64(bs))
		build.Y = append(build.Y, vt.Seconds())

		seq, err := kdtree.BulkLoad(data.prefix(n), p.Dims, bs)
		if err != nil {
			return nil, err
		}
		query.X = append(query.X, float64(bs))
		query.Y = append(query.Y, meanQueryMicros(data.queries, func(q []float64) {
			seq.KNearest(q, p.K)
		}))
	}
	fig.Series = append(fig.Series, build, query)
	return fig, nil
}

// AblationMeasure compares the six concept measures on the
// effectiveness task at K=5. X is the measure's ordinal; the mapping is
// in the notes.
func AblationMeasure(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	names := semdist.MeasureNames()
	fig := &Figure{
		ID: "ablation-measure", Title: fmt.Sprintf("Concept measure (K=%d)", ablationK),
		XLabel: "measure#", YLabel: "precision / recall", YFmt: "%.3f",
	}
	for i, name := range names {
		fig.Notes = append(fig.Notes, fmt.Sprintf("measure %d = %s", i+1, name))
	}
	precision := Series{Name: fmt.Sprintf("Precision@%d", ablationK)}
	recall := Series{Name: fmt.Sprintf("Recall@%d", ablationK)}
	for i, name := range names {
		idx, bundle, queries, err := effectivenessSetup(p, semtree.Options{Seed: p.Seed, Measure: name})
		if err != nil {
			return nil, err
		}
		points, err := reqcheck.Evaluate(ctx, idx, bundle.Corpus.Store, vocab.DefaultRegistry(), queries, []int{ablationK})
		idx.Close()
		if err != nil {
			return nil, err
		}
		precision.X = append(precision.X, float64(i+1))
		precision.Y = append(precision.Y, points[0].Precision)
		recall.X = append(recall.X, float64(i+1))
		recall.Y = append(recall.Y, points[0].Recall)
	}
	fig.Series = append(fig.Series, precision, recall)
	return fig, nil
}
