package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"semtree/internal/kdtree"
)

// tinyParams keep the smoke tests fast; the real sweeps run in
// cmd/semtree-bench.
func tinyParams() Params {
	return Params{
		Sizes:      []int{2000, 6000},
		Partitions: []int{1, 3},
		Queries:    25,
		Latency:    50 * time.Microsecond,
		Seed:       1,
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "Test", XLabel: "n", YLabel: "y", YFmt: "%.1f",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{2.5, 3.5}},
		},
		Notes: []string{"hello"},
	}
	table := f.Table()
	for _, want := range []string{"FIGX", "a", "b", "0.5", "3.5", "note: hello"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "n,a,b\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 4 { // header + x∈{1,2,3}
		t.Errorf("csv rows = %d:\n%s", lines, csv)
	}
}

func TestRunnersRegistryComplete(t *testing.T) {
	ids := RunnerIDs()
	want := []string{"ablation-bucket", "ablation-dims", "ablation-measure",
		"ablation-weights", "churn", "complexity", "deadline", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"placement", "pruning", "quota", "scheduler", "serve", "throughput"}
	if len(ids) != len(want) {
		t.Fatalf("runner ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("runner ids = %v, want %v", ids, want)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	fig, err := Fig3(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 { // 1 balanced, 3 partitions, unbalanced
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Y))
		}
		if s.Y[1] <= s.Y[0] {
			t.Errorf("series %q not growing with N: %v", s.Name, s.Y)
		}
	}
	// The unbalanced chain must be the worst curve at the larger size.
	last := func(s Series) float64 { return s.Y[len(s.Y)-1] }
	unbalanced := fig.Series[len(fig.Series)-1]
	for _, s := range fig.Series[:len(fig.Series)-1] {
		if last(unbalanced) <= last(s) {
			t.Errorf("unbalanced (%f) not worse than %q (%f)", last(unbalanced), s.Name, last(s))
		}
	}
}

// chainVsBalancedWork compares traversal work (nodes visited + points
// scanned) on chain vs balanced trees — a deterministic proxy for the
// wall-clock curves, immune to the load of parallel test packages.
func chainVsBalancedWork(t *testing.T, n int, run func(tr *kdtree.Tree, q []float64, st *kdtree.Stats)) (balanced, chain int) {
	t.Helper()
	data, err := makeSweep(n, 25, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := kdtree.BulkLoad(data.prefix(n), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := kdtree.BuildChain(data.prefixChainWorkload(n), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	var bs, cs kdtree.Stats
	for _, q := range data.queries {
		run(bt, q, &bs)
		run(ct, q, &cs)
	}
	return bs.NodesVisited + bs.PointsScanned, cs.NodesVisited + cs.PointsScanned
}

func TestFig4ChainWorse(t *testing.T) {
	fig, err := Fig4(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// The paper's shape — chain k-NN costs more — asserted on
	// deterministic traversal work rather than wall time.
	balanced, chain := chainVsBalancedWork(t, 6000, func(tr *kdtree.Tree, q []float64, st *kdtree.Stats) {
		tr.KNearestWithStats(q, 3, st)
	})
	if chain <= balanced {
		t.Errorf("chain work (%d) not worse than balanced (%d)", chain, balanced)
	}
}

func TestFig5Runs(t *testing.T) {
	fig, err := Fig5(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("non-positive query time in %q: %v", s.Name, s.Y)
			}
		}
	}
}

func TestFig6ChainWorse(t *testing.T) {
	if _, err := Fig6(context.Background(), tinyParams()); err != nil {
		t.Fatal(err)
	}
	// As in TestFig4ChainWorse: assert the paper's shape on
	// deterministic traversal work.
	balanced, chain := chainVsBalancedWork(t, 6000, func(tr *kdtree.Tree, q []float64, st *kdtree.Stats) {
		tr.RangeSearchWithStats(q, 0.2, st)
	})
	if chain <= balanced {
		t.Errorf("chain work (%d) not worse than balanced (%d)", chain, balanced)
	}
}

func TestFig7Runs(t *testing.T) {
	if _, err := Fig7(context.Background(), tinyParams()); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	precision, recall := fig.Series[0], fig.Series[1]
	// Figure 8's shape: precision falls, recall rises with K.
	if precision.Y[0] < precision.Y[len(precision.Y)-1] {
		t.Errorf("precision not decreasing: %v", precision.Y)
	}
	if recall.Y[0] > recall.Y[len(recall.Y)-1] {
		t.Errorf("recall not increasing: %v", recall.Y)
	}
	if recall.Y[len(recall.Y)-1] < 0.6 {
		t.Errorf("recall@%d = %f, too low", int(recall.X[len(recall.X)-1]), recall.Y[len(recall.Y)-1])
	}
}

func TestComplexityTracksModel(t *testing.T) {
	fig, err := Complexity(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	// measured M=1 vs model M=1: within a factor of ~2.5 (the model
	// ignores constant factors and half-full buckets).
	measured, model := fig.Series[0], fig.Series[1]
	for i := range measured.Y {
		ratio := measured.Y[i] / model.Y[i]
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("measured/model ratio %f at N=%v", ratio, measured.X[i])
		}
	}
}

func TestAblationDimsRecallImproves(t *testing.T) {
	fig, err := AblationDims(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	stress, recall := fig.Series[0], fig.Series[1]
	if stress.Y[0] < stress.Y[len(stress.Y)-1] {
		t.Errorf("stress should shrink with dims: %v", stress.Y)
	}
	if recall.Y[len(recall.Y)-1] < recall.Y[0] {
		t.Errorf("recall should grow with dims: %v", recall.Y)
	}
}

func TestAblationBucketRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	fig, err := AblationBucket(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestThroughputShape(t *testing.T) {
	fig, err := Throughput(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 { // (loop, batch) per partition count
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q has non-positive throughput %f", s.Name, y)
			}
		}
	}
}

func TestDeadlineShape(t *testing.T) {
	fig, err := Deadline(context.Background(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 { // p50, p99, cut-off fraction
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 { // one point per partition count
			t.Fatalf("series %q has %d points", s.Name, len(s.X))
		}
	}
	cut := fig.Series[2]
	for i, f := range cut.Y {
		if f < 0 || f > 1 {
			t.Fatalf("cut-off fraction[%d] = %f", i, f)
		}
	}
}

func TestSchedulerShape(t *testing.T) {
	p := tinyParams()
	p.Partitions = []int{1, 5}
	p.Hops = []time.Duration{0, time.Millisecond}
	// The auto scheduler's hop estimator measures real time: when the
	// whole test suite runs in parallel, CPU contention can inflate the
	// zero-latency hop estimate until fan-out genuinely looks cheaper,
	// which flips the protocol choice this test pins down. A regression
	// in the scheduler itself reproduces on a quiet machine every time,
	// so retry the figure until the suite load drains (bounded by a
	// deadline, not a fixed count — sibling package binaries can hog
	// the CPU for many seconds) and only fail if no attempt shows the
	// CPU-bound acceptance shape.
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !time.Now().Before(deadline) {
				break
			}
			time.Sleep(2 * time.Second) // let transient suite load drain
		}
		fig, err := Scheduler(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != 6 { // {seq, fan-out, auto} × {p50, evals}
			t.Fatalf("series = %d, want 6", len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.X) != len(p.Hops) {
				t.Fatalf("series %q has %d points, want %d", s.Name, len(s.X), len(p.Hops))
			}
		}
		// At zero hop latency the auto scheduler must settle on the
		// sequential protocol: mean DistanceEvals matching sequential's
		// on the shared query set (the CPU-bound acceptance shape). A
		// small tolerance absorbs the rare query where scheduling noise
		// in the hop estimate flips a single choice.
		seqEvals, fanEvals, autoEvals := fig.Series[3], fig.Series[4], fig.Series[5]
		lastErr = nil
		if autoEvals.Y[0] > seqEvals.Y[0]*1.05 {
			lastErr = fmt.Errorf("auto evals at 0 latency = %f, sequential = %f", autoEvals.Y[0], seqEvals.Y[0])
		} else if autoEvals.Y[0] >= fanEvals.Y[0] {
			lastErr = fmt.Errorf("auto evals at 0 latency = %f not below fan-out's %f", autoEvals.Y[0], fanEvals.Y[0])
		}
		if lastErr == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt+1, lastErr)
	}
	t.Fatal(lastErr)
}

// TestQuotaShape: the quota figure must show the aggressor actually
// throttled (rejections happened, admitted QPS near the refill target
// by the last window) and a live victim. Bounds are loose — this is a
// smoke test on a tiny workload, the real sweep runs in
// cmd/semtree-bench — but the enforcement itself must be visible.
func TestQuotaShape(t *testing.T) {
	p := tinyParams()
	fig, err := Quota(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	admitted := byName["aggressor admitted qps"]
	rejected := byName["aggressor rejected qps"]
	target := byName["refill target qps"]
	vic := byName["victim p50 ms"]
	if len(admitted.Y) == 0 || len(target.Y) == 0 {
		t.Fatalf("missing series: %+v", fig.Series)
	}
	var shedTotal float64
	for _, y := range rejected.Y {
		shedTotal += y
	}
	if shedTotal == 0 {
		t.Fatalf("aggressor was never throttled:\n%s", fig.Table())
	}
	// Converged: by the last window the admitted rate sits near the
	// refill line, not at the unthrottled closed-loop rate.
	last := admitted.Y[len(admitted.Y)-1]
	want := target.Y[len(target.Y)-1]
	if last < want*0.2 || last > want*3 {
		t.Fatalf("last-window admitted qps %.1f not near refill target %.1f:\n%s", last, want, fig.Table())
	}
	for i, y := range vic.Y {
		if y <= 0 {
			t.Fatalf("victim p50 window %d not positive:\n%s", i+1, fig.Table())
		}
	}
}

func TestPruningShape(t *testing.T) {
	p := tinyParams()
	p.Partitions = []int{1, 5}
	p.DimsSweep = []int{2, 8}
	fig, err := Pruning(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	planeMsgs, regionMsgs := byName["plane msgs/q"], byName["region msgs/q"]
	planeMisses, regionMisses := byName["plane misses/q"], byName["region misses/q"]
	if len(planeMsgs.Y) != 2 || len(regionMsgs.Y) != 2 {
		t.Fatalf("missing series: %+v", fig.Series)
	}
	// The region guard never spends more than the plane guard, and at
	// dims >= 8 — where the one-dimensional plane bound has degraded —
	// it is strictly cheaper on both messages and probe misses.
	for i := range planeMsgs.Y {
		if regionMsgs.Y[i] > planeMsgs.Y[i] {
			t.Fatalf("region msgs above plane at dims=%v:\n%s", planeMsgs.X[i], fig.Table())
		}
	}
	last := len(planeMsgs.Y) - 1
	if regionMsgs.Y[last] >= planeMsgs.Y[last] {
		t.Fatalf("region msgs not strictly below plane at dims=8:\n%s", fig.Table())
	}
	if regionMisses.Y[last] >= planeMisses.Y[last] {
		t.Fatalf("region misses not strictly below plane at dims=8:\n%s", fig.Table())
	}
}

// TestPlacementShape: the placement figure's structural claim at smoke
// scale — the box-aware layout touches strictly fewer partitions and
// messages per query than round-robin at dims 8 (the runner itself
// errors on any result divergence, so reaching the assertions implies
// byte-identical results).
// TestChurnShape: the construction race must favor the bulk loader on
// both wall and messages even at smoke scale, every mix must contribute
// a p99 and a boxwork series, and the runner's built-in restore
// byte-identity assertion must hold (an error otherwise).
func TestChurnShape(t *testing.T) {
	p := tinyParams()
	p.Sizes = []int{3000}
	p.Partitions = []int{1, 3}
	p.Queries = 40
	p.Mixes = []int{20, 80}
	fig, err := Churn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	for _, name := range []string{"bulk build s", "incr build s", "bulk build msgs", "incr build msgs",
		"p99 q ms @20% ins", "p99 q ms @80% ins", "boxwork/ins @20% ins", "boxwork/ins @80% ins"} {
		if len(byName[name].Y) != 1 {
			t.Fatalf("series %q missing or wrong length:\n%s", name, fig.Table())
		}
	}
	if byName["bulk build s"].Y[0] >= byName["incr build s"].Y[0] {
		t.Fatalf("bulk build not strictly below incremental on wall:\n%s", fig.Table())
	}
	if byName["bulk build msgs"].Y[0] >= byName["incr build msgs"].Y[0] {
		t.Fatalf("bulk build not strictly below incremental on messages:\n%s", fig.Table())
	}
	for _, mix := range []string{"20", "80"} {
		if byName["boxwork/ins @"+mix+"% ins"].Y[0] <= 0 {
			t.Fatalf("churn recorded no box-maintenance work at %s%% inserts:\n%s", mix, fig.Table())
		}
	}
}

func TestPlacementShape(t *testing.T) {
	p := tinyParams()
	p.Sizes = []int{4000}
	p.Partitions = []int{1, 5}
	p.DimsSweep = []int{2, 8}
	p.Queries = 40
	fig, err := Placement(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	rrParts, plParts := byName["rr parts/q"], byName["placed parts/q"]
	rrMsgs, plMsgs := byName["rr msgs/q"], byName["placed msgs/q"]
	if len(rrParts.Y) != 2 || len(plParts.Y) != 2 {
		t.Fatalf("missing series: %+v", fig.Series)
	}
	last := len(rrParts.Y) - 1
	if plParts.Y[last] >= rrParts.Y[last] {
		t.Fatalf("placed parts/q not strictly below rr at dims=8:\n%s", fig.Table())
	}
	if plMsgs.Y[last] >= rrMsgs.Y[last] {
		t.Fatalf("placed msgs/q not strictly below rr at dims=8:\n%s", fig.Table())
	}
}
