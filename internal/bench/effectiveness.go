package bench

import (
	"context"
	"fmt"

	semtree "semtree"
	"semtree/internal/reqcheck"
	"semtree/internal/synth"
	"semtree/internal/vocab"
)

// effectivenessKs is the K sweep of Figure 8.
var effectivenessKs = []int{1, 2, 3, 5, 8, 12, 20}

// effectivenessSetup builds the Figure 8 corpus, index and query set:
// a text corpus with planted inconsistencies ingested through the NLP
// extractor, a SemTree index over it, and (up to) 100 requirement
// queries whose ground truth is the exact inconsistency scan perturbed
// by the simulated 5-annotator panel (§IV-B).
func effectivenessSetup(p Params, opts semtree.Options) (*semtree.Index, *synth.CorpusBundle, []reqcheck.Query, error) {
	reg := vocab.DefaultRegistry()
	gen := synth.New(synth.Config{
		Seed:              p.Seed,
		Docs:              120,
		SectionsPerDoc:    10,
		InconsistencyRate: 0.3,
	}, reg)
	bundle := gen.Corpus()
	if len(bundle.Skipped) > 0 {
		return nil, nil, nil, fmt.Errorf("bench: %d generated sentences failed extraction", len(bundle.Skipped))
	}
	opts.Registry = reg
	idx, err := semtree.Build(bundle.Corpus.Store, opts)
	if err != nil {
		return nil, nil, nil, err
	}

	panel := synth.NewPanel(5, 0.1, 0.02, p.Seed+3)
	var queries []reqcheck.Query
	for _, planted := range bundle.Planted {
		if len(queries) >= 100 { // the paper uses 100 requirements
			break
		}
		req := bundle.Corpus.Store.MustGet(planted.Requirement)
		exact := reqcheck.TrueInconsistencies(bundle.Corpus.Store, req, planted.Requirement, reg)
		gt := panel.GroundTruth(exact, nil)
		if len(gt) == 0 {
			continue
		}
		queries = append(queries, reqcheck.Query{Requirement: planted.Requirement, GroundTruth: gt})
	}
	if len(queries) == 0 {
		idx.Close()
		return nil, nil, nil, fmt.Errorf("bench: no evaluable effectiveness queries")
	}
	return idx, bundle, queries, nil
}

// Fig8 regenerates Figure 8: average precision and recall of the
// k-nearest inconsistency retrieval over 100 requirement queries, as K
// varies.
func Fig8(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	idx, bundle, queries, err := effectivenessSetup(p, semtree.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	defer idx.Close()

	reg := vocab.DefaultRegistry()
	points, err := reqcheck.Evaluate(ctx, idx, bundle.Corpus.Store, reg, queries, effectivenessKs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig8", Title: "Effectiveness (avg over inconsistency queries)",
		XLabel: "K", YLabel: "precision / recall", YFmt: "%.3f",
		Notes: []string{
			fmt.Sprintf("%d queries over %d triples from %d documents; %d planted inconsistencies",
				len(queries), bundle.Corpus.NumTriples(), len(bundle.Corpus.Docs), len(bundle.Planted)),
			"ground truth: exact antinomy scan perturbed by a simulated 5-annotator panel (10% miss, 2% spurious)",
		},
	}
	precision := Series{Name: "Precision"}
	recall := Series{Name: "Recall"}
	for _, pt := range points {
		precision.X = append(precision.X, float64(pt.K))
		precision.Y = append(precision.Y, pt.Precision)
		recall.X = append(recall.X, float64(pt.K))
		recall.Y = append(recall.Y, pt.Recall)
	}
	fig.Series = append(fig.Series, precision, recall)
	return fig, nil
}
