package bench

import (
	"context"
	"fmt"
	"math"

	"semtree/internal/cluster"
)

// Complexity verifies the §III-C insertion cost model
// Θ(A + log₂(N/M)), A = log₂(M): it compares the measured mean
// insertion path length (tree nodes traversed per inserted point,
// summed across partitions) against the model's prediction
// log₂(M) + log₂(N/(M·Bs)).
func Complexity(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), 0, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	ms := []int{1, p.Partitions[len(p.Partitions)-1]}
	fig := &Figure{
		ID: "complexity", Title: "Insertion path length vs model Θ(A + log2(N/M))",
		XLabel: "points", YLabel: "nodes/insert", YFmt: "%.2f",
		Notes: []string{
			fmt.Sprintf("model = log2(M) + log2(N/(M*Bs)), Bs=%d", p.BucketSize),
		},
	}
	for _, m := range ms {
		measured := Series{Name: fmt.Sprintf("measured M=%d", m)}
		model := Series{Name: fmt.Sprintf("model M=%d", m)}
		for _, n := range p.Sizes {
			fabric := cluster.NewInProc(cluster.InProcOptions{})
			tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			st, err := tr.Stats()
			tr.Close()
			fabric.Close()
			if err != nil {
				return nil, err
			}
			if st.Inserts == 0 {
				return nil, fmt.Errorf("bench: no inserts recorded")
			}
			measured.X = append(measured.X, float64(n))
			measured.Y = append(measured.Y, float64(st.NavSteps)/float64(st.Inserts))
			model.X = append(model.X, float64(n))
			model.Y = append(model.Y, math.Log2(float64(m))+
				math.Log2(float64(n)/(float64(m)*float64(p.BucketSize))))
		}
		fig.Series = append(fig.Series, measured, model)
	}
	return fig, nil
}
