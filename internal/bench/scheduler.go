package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/core"
)

// Scheduler measures the self-tuning query scheduler against the two
// fixed cross-partition protocols across a sweep of per-hop fabric
// latencies (Params.Hops): per-query p50 wall time and mean distance
// evaluations for ProtocolSequential, ProtocolFanOut and ProtocolAuto
// on the same tree and query set. The expected shape: at zero latency
// auto tracks the sequential protocol (same minimal DistanceEvals —
// the CPU-bound regime), and once a hop costs more than the query's
// compute it tracks the fan-out's p50 (the latency-bound regime, p50
// within ~10% of the fixed fan-out). The auto rows include the
// adaptation: the cost model re-learns each latency point from a short
// warmup plus the fixed-protocol runs that precede it, exactly as it
// would in production from its own traffic.
func Scheduler(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	n := maxSize(p.Sizes)
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}
	data, err := makeSweep(n, p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "scheduler", Title: fmt.Sprintf("Adaptive protocol choice vs fixed (K=%d, %d points, %d partitions)", p.K, n, m),
		XLabel: "hop ms", YLabel: "p50 ms | evals/query", YFmt: "%.3f",
		Notes: []string{
			fmt.Sprintf("same tree and queries per row; auto warm-up %d queries after each latency change", schedWarmup),
			"expected: auto ≈ sequential evals at 0 latency; auto p50 ≈ fan-out p50 once hops dominate compute",
		},
	}
	// Build once over a fast fabric; only queries pay the swept latency.
	fabric := cluster.NewInProc(cluster.InProcOptions{})
	defer fabric.Close()
	tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	scheds := []struct {
		name  string
		sched *core.Scheduler
	}{
		{"sequential", tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolSequential})},
		{"fan-out", tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolFanOut})},
		{"auto", tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolAuto})},
	}
	p50s := make([]Series, len(scheds))
	evals := make([]Series, len(scheds))
	for i, s := range scheds {
		p50s[i] = Series{Name: s.name + " p50 ms"}
		evals[i] = Series{Name: s.name + " evals/q"}
	}
	for _, hop := range p.Hops {
		fabric.SetLatency(hop)
		qs := data.queries[:schedQueryBudget(len(data.queries), hop)]
		x := float64(hop.Microseconds()) / 1000
		for i, s := range scheds {
			// The fixed runs double as observation traffic: their leaf
			// calls teach the model the new hop price before auto runs.
			// Auto additionally gets an explicit warm-up so its
			// measured queries run with a converged choice.
			if i == len(scheds)-1 {
				for w := 0; w < schedWarmup && w < len(qs); w++ {
					if _, _, err := s.sched.KNearest(ctx, qs[w], p.K); err != nil {
						return nil, err
					}
				}
			}
			lat := make([]time.Duration, 0, len(qs))
			var dists int64
			for _, q := range qs {
				_, st, err := s.sched.KNearest(ctx, q, p.K)
				if err != nil {
					return nil, err
				}
				lat = append(lat, st.Wall)
				dists += st.DistanceEvals
			}
			sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
			p50s[i].X = append(p50s[i].X, x)
			p50s[i].Y = append(p50s[i].Y, ms(percentile(lat, 0.50)))
			evals[i].X = append(evals[i].X, x)
			evals[i].Y = append(evals[i].Y, float64(dists)/float64(len(qs)))
		}
	}
	fig.Series = append(fig.Series, p50s...)
	fig.Series = append(fig.Series, evals...)
	return fig, nil
}

// schedWarmup is the auto scheduler's explicit warm-up per latency
// point: enough queries for the EWMA estimates (half-life ~2.4 samples,
// several hop samples per query) to converge onto the new regime.
const schedWarmup = 8

// schedQueryBudget caps the per-mode query count at high hop latencies
// so a 50ms sweep point stays in the tens of seconds: roughly 4s of
// serial-hop time per mode, floored at 24 queries for a stable p50.
func schedQueryBudget(queries int, hop time.Duration) int {
	if hop <= 0 || queries <= 24 {
		return queries
	}
	budget := int(4 * time.Second / (8 * hop))
	if budget < 24 {
		budget = 24
	}
	if budget > queries {
		budget = queries
	}
	return budget
}
