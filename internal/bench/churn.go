package bench

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/core"
	"semtree/internal/kdtree"
)

// churnOps is the operation count of each churn phase: enough queries
// at the query-heaviest mix for a stable p99, small enough that the
// full mix sweep stays in a CI smoke budget.
const churnOps = 1000

// Churn measures streaming ingest at scale along the point-count sweep
// (Params.Sizes), in three movements per size:
//
//  1. Construction: the sorted bulk loader against one-at-a-time
//     inserts over the same clustered points — wall seconds and fabric
//     messages for each. Wall is measured compute plus one modeled
//     Params.Latency transit per fabric message (every build message is
//     a synchronous wait; modeling the transit instead of sleeping it
//     keeps the sweep fast and dodges the OS timer's ~1ms sleep floor).
//     The bulk loader builds the balanced tree client-side and installs
//     whole subtrees, so both curves must sit strictly below the
//     incremental ones once N is large (the CI structural gate enforces
//     this at N >= 50k).
//  2. Persistence: the bulk tree's partition snapshot is encoded,
//     decoded, and restored, and the restored tree must answer the
//     whole query workload byte-identically — asserted here, an error
//     otherwise, so a figure never renders over a broken restore path.
//  3. Churn: for each insert/query mix (Params.Mixes, percent inserts),
//     a fresh restore of the snapshot serves interleaved inserts and
//     queries; reported per mix are query p99 milliseconds and box-
//     maintenance writes per insert (TreeStats.BoxWork) — the price of
//     keeping region metadata exact while the tree grows live.
func Churn(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}
	fig := &Figure{
		ID:     "churn",
		Title:  fmt.Sprintf("Streaming ingest: bulk load vs incremental build, snapshot restore, live churn (%d partitions, Bs=%d, dims=%d)", m, p.BucketSize, p.Dims),
		XLabel: "points",
		YLabel: "s | msgs | ms | writes/insert",
		YFmt:   "%.4f",
		Notes: []string{
			fmt.Sprintf("construction: same clustered points into empty trees; bulk = Tree.BulkLoad, incr = one-at-a-time InsertAll; build s = measured compute + messages x %v per-hop transit (each build message is a synchronous wait, modeled rather than slept to dodge timer granularity)", p.Latency),
			"restore byte-identity is asserted per size before any churn series is recorded",
			fmt.Sprintf("churn: %d ops per mix on a fresh snapshot restore; mix%% of ops are inserts, the rest K=%d queries on a zero-latency fabric", churnOps, p.K),
		},
	}
	bulkS := Series{Name: "bulk build s"}
	incrS := Series{Name: "incr build s"}
	bulkM := Series{Name: "bulk build msgs"}
	incrM := Series{Name: "incr build msgs"}
	p99 := make([]Series, len(p.Mixes))
	boxw := make([]Series, len(p.Mixes))
	for i, mix := range p.Mixes {
		p99[i] = Series{Name: fmt.Sprintf("p99 q ms @%d%% ins", mix)}
		boxw[i] = Series{Name: fmt.Sprintf("boxwork/ins @%d%% ins", mix)}
	}

	for _, n := range p.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// churnOps extra points beyond the build set: every mix restores
		// its own tree from the same snapshot, so one insert block (IDs
		// disjoint from the build set) serves them all.
		data := makeClustered(n+churnOps, p.Queries, p.Dims, 2*m, p.Seed+int64(n))
		build := data.prefix(n)
		extra := data.points[n:]

		cfg := core.Config{
			Dim:               p.Dims,
			BucketSize:        p.BucketSize,
			PartitionCapacity: (m - 1) * p.BucketSize * 4,
			MaxPartitions:     m,
			Placement:         core.PlacementBox,
		}

		// Construction race. The incremental side goes first so the bulk
		// tree is the one left alive for the snapshot and churn phases.
		incrCfg := cfg
		incrFabric := cluster.NewInProc(cluster.InProcOptions{})
		incrCfg.Fabric = incrFabric
		incrTree, err := core.New(incrCfg)
		if err != nil {
			incrFabric.Close()
			return nil, err
		}
		start := time.Now()
		if err := incrTree.InsertAll(data.prefix(n), 1); err != nil {
			incrTree.Close()
			incrFabric.Close()
			return nil, fmt.Errorf("churn: incremental build at %d: %w", n, err)
		}
		incrMsgs := incrFabric.Stats().Messages
		incrWall := time.Since(start) + time.Duration(incrMsgs)*p.Latency
		incrTree.Close()
		incrFabric.Close()

		bulkCfg := cfg
		bulkFabric := cluster.NewInProc(cluster.InProcOptions{})
		bulkCfg.Fabric = bulkFabric
		bulkTree, err := core.New(bulkCfg)
		if err != nil {
			bulkFabric.Close()
			return nil, err
		}
		start = time.Now()
		if err := bulkTree.BulkLoad(ctx, build); err != nil {
			bulkTree.Close()
			bulkFabric.Close()
			return nil, fmt.Errorf("churn: bulk load at %d: %w", n, err)
		}
		bulkMsgs := bulkFabric.Stats().Messages
		bulkWall := time.Since(start) + time.Duration(bulkMsgs)*p.Latency

		x := float64(n)
		bulkS.X, bulkS.Y = append(bulkS.X, x), append(bulkS.Y, bulkWall.Seconds())
		incrS.X, incrS.Y = append(incrS.X, x), append(incrS.Y, incrWall.Seconds())
		bulkM.X, bulkM.Y = append(bulkM.X, x), append(bulkM.Y, float64(bulkMsgs))
		incrM.X, incrM.Y = append(incrM.X, x), append(incrM.Y, float64(incrMsgs))

		// Snapshot round trip, then byte-identity of the restored tree
		// over the whole query workload.
		snap, err := bulkTree.Snapshot()
		if err != nil {
			bulkTree.Close()
			bulkFabric.Close()
			return nil, fmt.Errorf("churn: snapshot at %d: %w", n, err)
		}
		var enc bytes.Buffer
		if err := core.EncodeSnapshot(&enc, snap); err != nil {
			bulkTree.Close()
			bulkFabric.Close()
			return nil, err
		}
		decoded, err := core.DecodeSnapshot(&enc)
		if err != nil {
			bulkTree.Close()
			bulkFabric.Close()
			return nil, err
		}
		want, err := queryAll(ctx, bulkTree, data.queries, p.K)
		bulkTree.Close()
		bulkFabric.Close()
		if err != nil {
			return nil, err
		}
		check, err := core.RestoreTree(core.Config{BucketSize: p.BucketSize}, decoded)
		if err != nil {
			return nil, fmt.Errorf("churn: restore at %d: %w", n, err)
		}
		got, err := queryAll(ctx, check, data.queries, p.K)
		check.Close()
		if err != nil {
			return nil, err
		}
		if err := sameResults(want, got); err != nil {
			return nil, fmt.Errorf("churn: restore at %d not byte-identical: %w", n, err)
		}

		// Live churn, one fresh restore per mix.
		for i, mix := range p.Mixes {
			tr, err := core.RestoreTree(core.Config{BucketSize: p.BucketSize}, decoded)
			if err != nil {
				return nil, fmt.Errorf("churn: restore for mix %d%%: %w", mix, err)
			}
			before, err := tr.Stats()
			if err != nil {
				tr.Close()
				return nil, err
			}
			var lat []time.Duration
			inserts := 0
			for op := 0; op < churnOps; op++ {
				if op%100 < mix {
					if err := tr.Insert(extra[inserts%len(extra)]); err != nil {
						tr.Close()
						return nil, fmt.Errorf("churn: insert under mix %d%%: %w", mix, err)
					}
					inserts++
					continue
				}
				q := data.queries[op%len(data.queries)]
				qs := time.Now()
				if _, err := tr.KNearest(ctx, q, p.K); err != nil {
					tr.Close()
					return nil, fmt.Errorf("churn: query under mix %d%%: %w", mix, err)
				}
				lat = append(lat, time.Since(qs))
			}
			after, err := tr.Stats()
			tr.Close()
			if err != nil {
				return nil, err
			}
			p99[i].X = append(p99[i].X, x)
			p99[i].Y = append(p99[i].Y, float64(p99Of(lat))/float64(time.Millisecond))
			perInsert := 0.0
			if inserts > 0 {
				perInsert = float64(after.BoxWork-before.BoxWork) / float64(inserts)
			}
			boxw[i].X = append(boxw[i].X, x)
			boxw[i].Y = append(boxw[i].Y, perInsert)
		}
	}
	fig.Series = append(fig.Series, bulkS, incrS, bulkM, incrM)
	fig.Series = append(fig.Series, p99...)
	fig.Series = append(fig.Series, boxw...)
	return fig, nil
}

// queryAll runs the workload through Tree.KNearest and collects the
// raw neighbor lists for byte-identity comparison.
func queryAll(ctx context.Context, tr *core.Tree, queries [][]float64, k int) ([][]kdtree.Neighbor, error) {
	var out [][]kdtree.Neighbor
	for _, q := range queries {
		ns, err := tr.KNearest(ctx, q, k)
		if err != nil {
			return nil, err
		}
		out = append(out, ns)
	}
	return out, nil
}

// p99Of returns the 99th-percentile duration (max for small samples).
func p99Of(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}
