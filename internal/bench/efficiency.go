package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"semtree/internal/cluster"
	"semtree/internal/core"
	"semtree/internal/kdtree"
)

// buildDistributed assembles a core.Tree over the given fabric with the
// paper's partitioning policy: capacity (M−1)·Bs makes the root spill
// when ~M−1 leaves exist, leaving it the shallow 2M−1-node routing
// trunk of §III-C.
func buildDistributed(pts []kdtree.Point, m int, p Params, fabric cluster.Fabric, unbalanced bool) (*core.Tree, error) {
	return buildDistributedGuard(pts, m, p, fabric, unbalanced, false)
}

// buildDistributedGuard is buildDistributed with the pruning guard
// selectable: planeGuard pins the paper's splitting-plane bound (the
// pruning experiment's baseline), the default is the region
// min-distance guard.
func buildDistributedGuard(pts []kdtree.Point, m int, p Params, fabric cluster.Fabric, unbalanced, planeGuard bool) (*core.Tree, error) {
	capacity := 0
	if m > 1 {
		capacity = (m - 1) * p.BucketSize
	}
	tr, err := core.New(core.Config{
		Dim:               p.Dims,
		BucketSize:        p.BucketSize,
		PartitionCapacity: capacity,
		MaxPartitions:     m,
		Fabric:            fabric,
		Unbalanced:        unbalanced,
		PlaneGuardOnly:    planeGuard,
	})
	if err != nil {
		return nil, err
	}
	// The capacity condition is evaluated per message, so the pipeline
	// batch must not exceed the capacity or the root would blow past
	// its spill point inside the first batch and freeze an oversized
	// routing frontier (identical for every M).
	batch := 256
	if capacity > 0 && capacity < batch {
		batch = capacity
	}
	if err := tr.InsertBatchAsync(pts, batch); err != nil {
		tr.Close()
		return nil, err
	}
	tr.Flush()
	return tr, nil
}

// Fig3 regenerates Figure 3: index building time vs number of points
// for 1 balanced partition, 3/5/9 partitions, and 1 totally unbalanced
// partition. Building runs on the virtual-clock fabric, so partition
// ranks overlap as on the paper's 8-node cluster.
func Fig3(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), 0, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig3", Title: "Index building time",
		XLabel: "points", YLabel: "virtual seconds",
		Notes: []string{
			"virtual-clock fabric: rank service = measured handler time; " +
				fmt.Sprintf("per-hop latency %v", p.Latency),
			fmt.Sprintf("partition capacity (M-1)*Bs with Bs=%d; batch 256", p.BucketSize),
		},
	}
	buildOnce := func(pts []kdtree.Point, m int, unbalanced bool) (time.Duration, error) {
		fabric := cluster.NewVirtual(cluster.VirtualOptions{Latency: p.Latency})
		defer fabric.Close()
		tr, err := buildDistributed(pts, m, p, fabric, unbalanced)
		if err != nil {
			return 0, err
		}
		defer tr.Close()
		return fabric.VirtualTime(), nil
	}
	// Handler durations feed the virtual clock, so allocator/scheduler
	// cold starts would show up as time: build twice, keep the
	// steady-state (minimum) measurement.
	build := func(pts []kdtree.Point, m int, unbalanced bool) (time.Duration, error) {
		best, err := buildOnce(append([]kdtree.Point(nil), pts...), m, unbalanced)
		if err != nil {
			return 0, err
		}
		again, err := buildOnce(pts, m, unbalanced)
		if err != nil {
			return 0, err
		}
		if again < best {
			best = again
		}
		return best, nil
	}
	for _, m := range p.Partitions {
		name := fmt.Sprintf("%d partitions", m)
		if m == 1 {
			name = "1 partition (balanced)"
		}
		s := Series{Name: name}
		for _, n := range p.Sizes {
			d, err := build(data.prefix(n), m, false)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	s := Series{Name: "1 partition (totally unbalanced)"}
	for _, n := range p.Sizes {
		d, err := build(data.prefixChainWorkload(n), 1, true)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, d.Seconds())
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig4 regenerates Figure 4: sequential k-nearest time (K=3) vs number
// of points, balanced vs totally unbalanced (chain) tree.
func Fig4(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig4", Title: fmt.Sprintf("Sequential k-nearest time (K=%d)", p.K),
		XLabel: "points", YLabel: "µs/query", YFmt: "%.2f",
		Notes: []string{fmt.Sprintf("mean over %d queries; bucket size %d", p.Queries, p.BucketSize)},
	}
	balanced := Series{Name: "balanced"}
	chain := Series{Name: "totally unbalanced (chain)"}
	for _, n := range p.Sizes {
		bt, err := kdtree.BulkLoad(data.prefix(n), p.Dims, p.BucketSize)
		if err != nil {
			return nil, err
		}
		ct, err := kdtree.BuildChain(data.prefixChainWorkload(n), p.Dims, p.BucketSize)
		if err != nil {
			return nil, err
		}
		balanced.X = append(balanced.X, float64(n))
		balanced.Y = append(balanced.Y, meanQueryMicros(data.queries, func(q []float64) {
			bt.KNearest(q, p.K)
		}))
		chain.X = append(chain.X, float64(n))
		chain.Y = append(chain.Y, meanQueryMicros(data.queries, func(q []float64) {
			ct.KNearest(q, p.K)
		}))
	}
	fig.Series = append(fig.Series, balanced, chain)
	return fig, nil
}

// Fig5 regenerates Figure 5: distributed k-nearest time (K=3) vs number
// of points for 1/3/5/9 partitions. Per-query cost is measured compute
// time plus messages × latency (the k-nearest protocol is a sequential
// cross-partition traversal, §III-B.3).
func Fig5(ctx context.Context, p Params) (*Figure, error) {
	return distributedQueryFigure(p, "fig5",
		fmt.Sprintf("Distributed k-nearest time (K=%d)", p.withDefaults().K),
		func(tr *core.Tree, q []float64, p Params) error {
			// The paper's figure measures the *sequential* protocol
			// (§III-B.3). KNearest now defaults to the self-tuning
			// ProtocolAuto, so the protocol is pinned explicitly — the
			// serial-hop latency model below would mis-charge the
			// fan-out's overlapped hops.
			sched := tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolSequential})
			_, _, err := sched.KNearest(ctx, q, p.K)
			return err
		},
		// The sequential k-nearest protocol pays every message as a
		// serial hop.
		func(msgsPerQuery float64, m int) float64 { return msgsPerQuery })
}

// Fig6 regenerates Figure 6: sequential range query time vs number of
// points, balanced vs unbalanced.
func Fig6(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig6", Title: fmt.Sprintf("Sequential range query time (D=%.2f)", p.RangeD),
		XLabel: "points", YLabel: "µs/query", YFmt: "%.2f",
		Notes: []string{fmt.Sprintf("mean over %d queries; bucket size %d", p.Queries, p.BucketSize)},
	}
	balanced := Series{Name: "balanced"}
	chain := Series{Name: "unbalanced"}
	for _, n := range p.Sizes {
		bt, err := kdtree.BulkLoad(data.prefix(n), p.Dims, p.BucketSize)
		if err != nil {
			return nil, err
		}
		ct, err := kdtree.BuildChain(data.prefixChainWorkload(n), p.Dims, p.BucketSize)
		if err != nil {
			return nil, err
		}
		balanced.X = append(balanced.X, float64(n))
		balanced.Y = append(balanced.Y, meanQueryMicros(data.queries, func(q []float64) {
			bt.RangeSearch(q, p.RangeD)
		}))
		chain.X = append(chain.X, float64(n))
		chain.Y = append(chain.Y, meanQueryMicros(data.queries, func(q []float64) {
			ct.RangeSearch(q, p.RangeD)
		}))
	}
	fig.Series = append(fig.Series, balanced, chain)
	return fig, nil
}

// Fig7 regenerates Figure 7: distributed range query time vs number of
// points for 1/3/5/9 partitions (border nodes fan out in parallel,
// §III-B.4).
func Fig7(ctx context.Context, p Params) (*Figure, error) {
	return distributedQueryFigure(p, "fig7",
		fmt.Sprintf("Distributed range query time (D=%.2f)", p.withDefaults().RangeD),
		func(tr *core.Tree, q []float64, p Params) error {
			_, err := tr.RangeSearch(ctx, q, p.RangeD)
			return err
		},
		// Border nodes fan out in parallel (§III-B.4): with the bench's
		// two-level partition topology the latency cost is two message
		// waves (client→root, root→data partitions), not one hop per
		// message — the sibling latencies overlap.
		func(msgsPerQuery float64, m int) float64 {
			if m == 1 {
				return 1
			}
			return 2
		})
}

// Throughput measures the concurrent query engine beyond the paper's
// figures: k-nearest queries/second of a sequential loop of
// Tree.KNearest calls vs Tree.KNearestBatch's bounded worker pool, per
// partition count. This is the §III-C scaling claim ("using M−1 data
// partitions, we can perform in the best case M−1 parallel operations
// maximizing our throughput") applied to the query path; the loop
// series is the baseline a single synchronous client achieves.
func Throughput(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	workers := p.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fig := &Figure{
		ID: "throughput", Title: fmt.Sprintf("Batched k-nearest throughput (K=%d)", p.K),
		XLabel: "points", YLabel: "queries/s", YFmt: "%.0f",
		Notes: []string{
			fmt.Sprintf("%d batch workers; batch size %d; %d queries per measurement",
				workers, batchSize(p, len(data.queries)), p.Queries),
		},
	}
	for _, m := range p.Partitions {
		loop := Series{Name: fmt.Sprintf("%d partitions, loop", m)}
		batch := Series{Name: fmt.Sprintf("%d partitions, batch", m)}
		for _, n := range p.Sizes {
			fabric := cluster.NewInProc(cluster.InProcOptions{})
			tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			loopQPS, err := measureQPS(data.queries, func(qs [][]float64) error {
				for _, q := range qs {
					if _, err := tr.KNearest(ctx, q, p.K); err != nil {
						return err
					}
				}
				return nil
			})
			if err == nil {
				var batchQPS float64
				batchQPS, err = measureQPS(data.queries, func(qs [][]float64) error {
					bs := batchSize(p, len(qs))
					for start := 0; start < len(qs); start += bs {
						end := start + bs
						if end > len(qs) {
							end = len(qs)
						}
						if _, berr := tr.KNearestBatch(ctx, qs[start:end], p.K, workers); berr != nil {
							return berr
						}
					}
					return nil
				})
				if err == nil {
					loop.X = append(loop.X, float64(n))
					loop.Y = append(loop.Y, loopQPS)
					batch.X = append(batch.X, float64(n))
					batch.Y = append(batch.Y, batchQPS)
				}
			}
			tr.Close()
			fabric.Close()
			if err != nil {
				return nil, err
			}
		}
		fig.Series = append(fig.Series, loop, batch)
	}
	return fig, nil
}

// batchSize resolves Params.Batch: queries per batched call, defaulting
// to the whole workload in one call.
func batchSize(p Params, queries int) int {
	if p.Batch > 0 && p.Batch < queries {
		return p.Batch
	}
	if queries == 0 {
		return 1
	}
	return queries
}

// measureQPS times fn over the query workload and returns queries per
// second.
func measureQPS(queries [][]float64, fn func(qs [][]float64) error) (float64, error) {
	start := time.Now()
	if err := fn(queries); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(len(queries)) / elapsed.Seconds(), nil
}

// distributedQueryFigure runs one query kind over trees with varying
// partition counts, reporting mean per-query time as measured compute
// plus latency hops × latency; latencyHops maps the measured message
// count per query to the number of *serial* hops (sequential protocols
// pay every message, parallel fan-outs pay one per wave).
func distributedQueryFigure(p Params, id, title string,
	query func(*core.Tree, []float64, Params) error,
	latencyHops func(msgsPerQuery float64, m int) float64) (*Figure, error) {
	p = p.withDefaults()
	data, err := makeSweep(maxSize(p.Sizes), p.Queries, p.Dims, p.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "points", YLabel: "ms/query", YFmt: "%.4f",
		Notes: []string{
			fmt.Sprintf("per-query time = measured compute + serial latency hops × %v; mean over %d queries",
				p.Latency, p.Queries),
		},
	}
	for _, m := range p.Partitions {
		s := Series{Name: fmt.Sprintf("%d partitions", m)}
		if m == 1 {
			s.Name = "1 partition"
		}
		for _, n := range p.Sizes {
			fabric := cluster.NewInProc(cluster.InProcOptions{})
			tr, err := buildDistributed(data.prefix(n), m, p, fabric, false)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			msgs0 := fabric.Stats().Messages
			start := time.Now()
			for _, q := range data.queries {
				if err := query(tr, q, p); err != nil {
					tr.Close()
					fabric.Close()
					return nil, err
				}
			}
			wall := time.Since(start)
			msgs := fabric.Stats().Messages - msgs0
			tr.Close()
			fabric.Close()

			msgsPerQuery := float64(msgs) / float64(len(data.queries))
			perQuery := wall/time.Duration(len(data.queries)) +
				time.Duration(latencyHops(msgsPerQuery, m)*float64(p.Latency))
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(perQuery.Microseconds())/1000)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// meanQueryMicros times fn over the query workload and returns the mean
// per call in microseconds.
func meanQueryMicros(queries [][]float64, fn func(q []float64)) float64 {
	start := time.Now()
	for _, q := range queries {
		fn(q)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(queries)) / 1000
}
