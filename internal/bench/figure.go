// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§IV): the efficiency figures
// (3–7) over synthetic triple workloads and simulated cluster fabrics,
// the effectiveness figure (8) over corpora with planted
// inconsistencies, plus the ablations DESIGN.md calls out. Runners
// return Figures that render as aligned text tables or CSV.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced experiment: a set of series over a shared
// X axis, with rendering metadata and provenance notes.
type Figure struct {
	ID     string // "fig3", "ablation-dims", ...
	Title  string
	XLabel string
	YLabel string
	YFmt   string // printf verb for Y values, default "%.4f"
	Series []Series
	Notes  []string
}

func (f *Figure) yfmt() string {
	if f.YFmt == "" {
		return "%.4f"
	}
	return f.YFmt
}

// xs returns the union of all series' X values in ascending order.
func (f *Figure) xs() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Float64s(out)
	return out
}

// Table renders the figure as an aligned text table, one row per X
// value and one column per series, matching the way the paper's
// figures plot series over a shared axis.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	xs := f.xs()
	header := append([]string{f.XLabel}, seriesNames(f.Series)...)
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatX(x)}
		for _, s := range f.Series {
			row = append(row, f.lookup(s, x))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(append([]string{f.XLabel}, seriesNames(f.Series)...), ","))
	b.WriteByte('\n')
	for _, x := range f.xs() {
		cells := []string{formatX(x)}
		for _, s := range f.Series {
			cells = append(cells, f.lookup(s, x))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func (f *Figure) lookup(s Series, x float64) string {
	for i, sx := range s.X {
		if sx == x {
			return fmt.Sprintf(f.yfmt(), s.Y[i])
		}
	}
	return ""
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func formatX(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Params configure the experiment runners. Zero values select defaults
// scaled for a laptop run; the full paper-scale sweep is a flag away in
// cmd/semtree-bench.
type Params struct {
	Sizes      []int           // point-count sweep (default 5k..80k)
	Partitions []int           // M values (default 1, 3, 5, 9)
	BucketSize int             // Bs (default 16)
	Dims       int             // FastMap k (default 8)
	Queries    int             // query batch per measurement (default 200)
	K          int             // k-nearest K (default 3, the paper's)
	RangeD     float64         // range-query radius on the Eq. 1 scale (default 0.2)
	Latency    time.Duration   // simulated per-hop latency (default 200µs)
	Parallel   int             // batched-query worker pool (default GOMAXPROCS)
	Batch      int             // queries per batched call (default: whole workload)
	Deadline   time.Duration   // per-query deadline for the deadline experiment (default 8× latency)
	Hops       []time.Duration // per-hop latency sweep for the scheduler experiment (default 0..50ms)
	Tenants    int             // tenant count for the quota experiment: 1 throttled aggressor + N−1 victims (default 2)
	Frontends  int             // front-end count for the serve experiment's fleet (default 2)
	DimsSweep  []int           // dimensionality sweep for the pruning experiment (default 2, 4, 8, 16)
	Mixes      []int           // insert percentages for the churn experiment (default 10, 50, 90)
	Seed       int64
}

func (p Params) withDefaults() Params {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{5000, 10000, 20000, 40000, 80000}
	}
	if len(p.Partitions) == 0 {
		p.Partitions = []int{1, 3, 5, 9}
	}
	if p.BucketSize <= 0 {
		p.BucketSize = 16
	}
	if p.Dims <= 0 {
		p.Dims = 8
	}
	if p.Queries <= 0 {
		p.Queries = 200
	}
	if p.K <= 0 {
		p.K = 3
	}
	if p.RangeD <= 0 {
		p.RangeD = 0.2
	}
	if p.Latency <= 0 {
		p.Latency = 200 * time.Microsecond
	}
	if p.Deadline <= 0 {
		// Tight enough that the sequential protocol's deeper hop chains
		// get cut off, loose enough that most queries finish.
		p.Deadline = 8 * p.Latency
	}
	if len(p.Hops) == 0 {
		// From CPU-bound (sequential wins) through the crossover to
		// latency-bound (fan-out wins), for the scheduler experiment.
		p.Hops = []time.Duration{0, time.Millisecond, 5 * time.Millisecond,
			20 * time.Millisecond, 50 * time.Millisecond}
	}
	if p.Tenants < 2 {
		p.Tenants = 2 // the quota experiment needs an aggressor and a victim
	}
	if p.Frontends < 2 {
		p.Frontends = 2 // fleet convergence needs at least two front-ends
	}
	if len(p.Mixes) == 0 {
		// Query-heavy through insert-heavy, for the churn experiment.
		p.Mixes = []int{10, 50, 90}
	}
	if len(p.DimsSweep) == 0 {
		// From the low dimensions where the splitting-plane bound still
		// holds its own through the regime where only the region bound
		// prunes, for the pruning experiment.
		p.DimsSweep = []int{2, 4, 8, 16}
	}
	return p
}

// Runner regenerates one experiment.
type Runner func(context.Context, Params) (*Figure, error)

// Runners maps experiment IDs to their runners; cmd/semtree-bench
// iterates this registry.
func Runners() map[string]Runner {
	return map[string]Runner{
		"fig3":             Fig3,
		"fig4":             Fig4,
		"fig5":             Fig5,
		"fig6":             Fig6,
		"fig7":             Fig7,
		"fig8":             Fig8,
		"throughput":       Throughput,
		"deadline":         Deadline,
		"scheduler":        Scheduler,
		"quota":            Quota,
		"serve":            ServeFleet,
		"pruning":          Pruning,
		"placement":        Placement,
		"churn":            Churn,
		"complexity":       Complexity,
		"ablation-weights": AblationWeights,
		"ablation-dims":    AblationDims,
		"ablation-bucket":  AblationBucket,
		"ablation-measure": AblationMeasure,
	}
}

// RunnerIDs returns the registry keys in a stable order.
func RunnerIDs() []string {
	ids := make([]string, 0)
	for id := range Runners() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
