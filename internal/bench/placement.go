package bench

import (
	"context"
	"fmt"

	"semtree/internal/cluster"
	"semtree/internal/core"
	"semtree/internal/kdtree"
)

// buildPlaced builds a distributed tree over clustered points under the
// given placement policy. The partition capacity is inflated to 4×
// buildDistributed's so every spill adopts more subtrees than there are
// fresh targets — the regime where the placement decision exists: with
// fewer moves than targets, any policy degenerates to one subtree per
// partition.
func buildPlaced(pts []kdtree.Point, m int, p Params, fabric cluster.Fabric, policy core.PlacementPolicy) (*core.Tree, error) {
	capacity := 0
	if m > 1 {
		capacity = (m - 1) * p.BucketSize * 4
	}
	tr, err := core.New(core.Config{
		Dim:               p.Dims,
		BucketSize:        p.BucketSize,
		PartitionCapacity: capacity,
		MaxPartitions:     m,
		Fabric:            fabric,
		Placement:         policy,
	})
	if err != nil {
		return nil, err
	}
	batch := 256
	if capacity > 0 && capacity < batch {
		batch = capacity
	}
	if err := tr.InsertBatchAsync(pts, batch); err != nil {
		tr.Close()
		return nil, err
	}
	tr.Flush()
	return tr, nil
}

// Placement measures the geometry-aware placement kernel against the
// round-robin scatter it replaced, across a dimensionality sweep
// (Params.DimsSweep): per-query partitions touched and fabric messages
// for the fan-out protocol on two trees that differ only in
// Config.Placement — same clustered points, same queries, and (asserted
// per query, an error otherwise) byte-identical results. The workload
// is Gaussian blobs with the queries drawn from the same mixture, so a
// layout that co-locates geometrically close buckets keeps each query's
// fan-out on few partitions; round-robin scatters every cluster across
// all of them. The expected shape: placed sits strictly below rr on
// both metrics once dimensionality gives the boxes room to separate
// (dims >= 8) — the curves CI's structural gate enforces.
func Placement(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	n := maxSize(p.Sizes)
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}
	fig := &Figure{
		ID: "placement", Title: fmt.Sprintf("Box-aware vs round-robin partition placement (K=%d, %d points, %d partitions, fan-out protocol)", p.K, n, m),
		XLabel: "dims", YLabel: "parts/query | msgs/query", YFmt: "%.2f",
		Notes: []string{
			"same clustered points and queries per column; only Config.Placement differs; results verified byte-identical per query",
			"expected: placed <= rr everywhere, strictly below at dims >= 8 where boxes separate cleanly",
		},
	}
	policies := []struct {
		name   string
		policy core.PlacementPolicy
	}{{"rr", core.PlacementRoundRobin}, {"placed", core.PlacementBox}}
	parts := make([]Series, len(policies))
	msgs := make([]Series, len(policies))
	for i, pol := range policies {
		parts[i] = Series{Name: pol.name + " parts/q"}
		msgs[i] = Series{Name: pol.name + " msgs/q"}
	}
	for _, dims := range p.DimsSweep {
		pd := p
		pd.Dims = dims
		// Clusters scale with the partition count so each partition has
		// whole clusters to own; seed varies per dims so no column is a
		// projection of another.
		data := makeClustered(n, p.Queries, dims, 2*m, p.Seed+int64(dims))
		var results [][][]kdtree.Neighbor
		for i, pol := range policies {
			fabric := cluster.NewInProc(cluster.InProcOptions{})
			tr, err := buildPlaced(data.prefix(n), m, pd, fabric, pol.policy)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			// Pin the fan-out protocol: placement exists to shrink its
			// per-query partition set, and pinning keeps both trees on
			// identical message patterns per partition touched.
			sched := tr.NewScheduler(core.SchedulerConfig{Protocol: core.ProtocolFanOut})
			var totParts, totMsgs int64
			var res [][]kdtree.Neighbor
			for _, q := range data.queries {
				ns, st, err := sched.KNearest(ctx, q, p.K)
				if err != nil {
					tr.Close()
					fabric.Close()
					return nil, err
				}
				totParts += int64(st.Partitions)
				totMsgs += st.FabricMessages
				res = append(res, ns)
			}
			queries := float64(len(data.queries))
			parts[i].X = append(parts[i].X, float64(dims))
			parts[i].Y = append(parts[i].Y, float64(totParts)/queries)
			msgs[i].X = append(msgs[i].X, float64(dims))
			msgs[i].Y = append(msgs[i].Y, float64(totMsgs)/queries)
			results = append(results, res)
			tr.Close()
			fabric.Close()
		}
		// The policies must be invisible to callers: any result
		// divergence voids the comparison, so fail loudly rather than
		// plot it.
		if err := sameResults(results[0], results[1]); err != nil {
			return nil, fmt.Errorf("placement: dims %d: %w", dims, err)
		}
	}
	fig.Series = append(fig.Series, parts...)
	fig.Series = append(fig.Series, msgs...)
	return fig, nil
}

// sameResults asserts two per-query result sets are byte-identical:
// same neighbors, same order, same distance bits.
func sameResults(a, b [][]kdtree.Neighbor) error {
	if len(a) != len(b) {
		return fmt.Errorf("result counts differ: %d != %d", len(a), len(b))
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			return fmt.Errorf("query %d: result lengths differ: %d != %d", q, len(a[q]), len(b[q]))
		}
		for i := range a[q] {
			if a[q][i].Point.ID != b[q][i].Point.ID || a[q][i].Dist != b[q][i].Dist {
				return fmt.Errorf("query %d item %d: (%d,%v) != (%d,%v)", q, i,
					a[q][i].Point.ID, a[q][i].Dist, b[q][i].Point.ID, b[q][i].Dist)
			}
		}
	}
	return nil
}
