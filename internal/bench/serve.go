package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	semtree "semtree"
	"semtree/internal/serve"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

// serveTargetQPS is the fleet-wide sustained rate granted to the
// aggressor tenant across every front-end combined: the allocator
// leases each front-end a share of a refill pool sized at
// serveTargetQPS × (average cost of one query) units per second.
const serveTargetQPS = 25.0

// serveFleetBounds are the structural-gate envelope around the fleet
// admitted rate, as multiples of serveTargetQPS. The upper bound sits
// between the converged 1× line and the 2× (per-front-end buckets
// never reconciled) failure mode; the lower bound proves the fleet is
// actually serving, not starved by a lease bug granting zero.
const (
	serveUpperFactor = 1.7
	serveLowerFactor = 0.4
)

// ServeFleet measures the distributed-quota contract end to end over
// the real wire: one index served by Params.Frontends semtree-serve
// front-ends on loopback TCP, one allocator, one quota'd tenant whose
// fleet-wide rate is serveTargetQPS. Closed-loop aggressor clients
// hammer every front-end at once. Without the allocator each front-end
// would grant the full fleet rate locally (admitted ≈ Frontends ×
// target); with lease renewal running, the per-front-end refill shares
// must converge so the fleet-wide admitted QPS lands on the single
// target line. The figure reports, per time window, the fleet admitted
// QPS and each front-end's contribution against the target and the
// structural-gate bounds.
func ServeFleet(ctx context.Context, p Params) (*Figure, error) {
	p = p.withDefaults()
	n := maxSize(p.Sizes)
	m := 1
	for _, c := range p.Partitions {
		if c > m {
			m = c
		}
	}

	gen := synth.New(synth.Config{Seed: p.Seed, Actors: 200}, nil)
	store := triple.NewStore()
	for i, tr := range gen.Triples(n) {
		store.Add(tr, triple.Provenance{Doc: "doc", Section: "sec", Seq: i})
	}
	cap := n / m
	if cap < 64 {
		cap = 64
	}
	idx, err := semtree.Build(store, semtree.Options{
		Seed:              p.Seed,
		PartitionCapacity: cap,
		MaxPartitions:     m,
	})
	if err != nil {
		return nil, err
	}
	defer idx.Close()

	qgen := synth.New(synth.Config{Seed: p.Seed + 1, Actors: 200}, nil)
	queries := make([]triple.Triple, p.Queries)
	for i := range queries {
		queries[i] = qgen.RandomTriple()
	}

	// Warm-up: learn the average per-query cost in-process, the unit
	// the fleet quota is denominated in. The whole query mix is
	// measured — the hammer loops cycle through all of it, and a cost
	// unit learned from a cheap (or dear) prefix would shift the
	// admitted rate off the target line by the cost ratio. Two passes:
	// the first warms the caches and the protocol cost model, the
	// second measures — cold-pass costs run well above steady state,
	// and a unit learned cold admits proportionally too many queries.
	warm := idx.Searcher(semtree.WithK(p.K))
	var avgCost float64
	for pass := 0; pass < 2; pass++ {
		var totalCost float64
		for i := range queries {
			res, err := warm.Search(ctx, queries[i])
			if err != nil {
				return nil, err
			}
			totalCost += semtree.CostOf(res.Stats)
		}
		avgCost = totalCost / float64(len(queries))
	}

	fleetCap := 4 * avgCost
	fleetRefill := avgCost * serveTargetQPS

	// One allocator owns the fleet-wide budget.
	alloc := serve.NewAllocator(serve.AllocatorConfig{
		Token: "bench-fleet",
		Tenants: map[string]semtree.QuotaConfig{
			"aggressor": {Capacity: fleetCap, RefillPerSec: fleetRefill},
		},
	})
	alis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	actx, acancel := context.WithCancel(ctx)
	allocDone := make(chan struct{})
	go func() {
		defer close(allocDone)
		_ = alloc.Serve(actx, alis)
	}()
	defer func() { acancel(); <-allocDone }()

	// Front-ends: each configures the tenant with the FULL fleet quota
	// (the fail-static local config) and lets the lease loop scale it
	// down to its share.
	const token = "aggr-token"
	addrs := make([]string, p.Frontends)
	servers := make([]*serve.Server, p.Frontends)
	var drains []func()
	defer func() {
		for _, d := range drains {
			d()
		}
	}()
	for i := range servers {
		srv, err := serve.NewServer(serve.Config{
			Index: idx,
			Tenants: []serve.TenantConfig{{
				Name:  "aggressor",
				Token: token,
				Options: []semtree.SearchOption{
					semtree.WithK(p.K),
					semtree.WithQuota(fleetCap, fleetRefill),
				},
			}},
			FrontEndID:     fmt.Sprintf("fe%d", i),
			AllocatorAddr:  alis.Addr().String(),
			AllocatorToken: "bench-fleet",
			LeaseInterval:  50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		sctx, scancel := context.WithCancel(ctx)
		done := make(chan struct{})
		go func(srv *serve.Server) {
			defer close(done)
			_ = srv.Serve(sctx, lis)
		}(srv)
		drains = append(drains, func() {
			dctx, dcancel := context.WithTimeout(context.WithoutCancel(sctx), 10*time.Second)
			defer dcancel()
			_ = srv.Drain(dctx)
			scancel()
			<-done
		})
		servers[i] = srv
		addrs[i] = lis.Addr().String()
	}

	const (
		windows  = 8
		window   = 400 * time.Millisecond
		aggrWork = 3                      // closed-loop workers per front-end
		backoff  = 500 * time.Microsecond // polite-client sleep after a rejection
	)

	// Hammer every front-end at once; record each attempt with its
	// front-end so the figure can show the per-front-end split too.
	type rec struct {
		at time.Duration
		fe int
		ok bool
	}
	var (
		mu       sync.Mutex
		recs     []rec
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for fe, addr := range addrs {
		cl, err := serve.Dial(ctx, addr, token)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		for w := 0; w < aggrWork; w++ {
			wg.Add(1)
			go func(fe, w int, cl *serve.Client) {
				defer wg.Done()
				for i := w; ; i += aggrWork {
					at := time.Since(start)
					if at >= windows*window {
						return
					}
					_, err := cl.Search(ctx, queries[i%len(queries)])
					switch {
					case err == nil:
						mu.Lock()
						recs = append(recs, rec{at: at, fe: fe, ok: true})
						mu.Unlock()
					case errors.Is(err, semtree.ErrQuotaExhausted):
						mu.Lock()
						recs = append(recs, rec{at: at, fe: fe, ok: false})
						mu.Unlock()
						time.Sleep(backoff)
					default:
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(fe, w, cl)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	fig := &Figure{
		ID: "serve", Title: fmt.Sprintf("Fleet-wide quota convergence (%d front-ends, %d points, %d partitions, K=%d)",
			p.Frontends, n, m, p.K),
		XLabel: "window", YLabel: "qps", YFmt: "%.2f",
		Notes: []string{
			fmt.Sprintf("%v windows; fleet quota: capacity %.0f units (4x avg query cost %.0f), refill %.0f units/s (%.0f qps fleet-wide); lease interval 50ms",
				window, fleetCap, avgCost, fleetRefill, serveTargetQPS),
			fmt.Sprintf("expected: fleet admitted qps converges onto the %.0f line; the unreconciled failure mode sits at %d x %.0f",
				serveTargetQPS, p.Frontends, serveTargetQPS),
		},
	}
	fleet := Series{Name: "fleet admitted qps"}
	fleetAvg := Series{Name: "fleet admitted avg qps"}
	rejected := Series{Name: "fleet rejected qps"}
	target := Series{Name: "refill target qps"}
	upper := Series{Name: "fleet upper bound qps"}
	lower := Series{Name: "fleet lower bound qps"}
	perFE := make([]Series, p.Frontends)
	for i := range perFE {
		perFE[i] = Series{Name: fmt.Sprintf("fe%d admitted qps", i)}
	}
	winSec := window.Seconds()
	var okSince2 float64 // admitted in windows 2..w: the steady-state tally
	for w := 0; w < windows; w++ {
		lo, hi := time.Duration(w)*window, time.Duration(w+1)*window
		var ok, shed float64
		feOK := make([]float64, p.Frontends)
		for _, r := range recs {
			if r.at < lo || r.at >= hi {
				continue
			}
			if r.ok {
				ok++
				feOK[r.fe]++
			} else {
				shed++
			}
		}
		x := float64(w + 1)
		fleet.X = append(fleet.X, x)
		fleet.Y = append(fleet.Y, ok/winSec)
		// The gated series: cumulative mean over windows 2..w. A single
		// 400ms window holds ~10 admits — noisy enough to graze a strict
		// bound on a good day — while the running mean tightens every
		// window and still sits at front-ends × target when the buckets
		// never reconcile. Window 1 (the burst window, plotted raw) seeds
		// it so the gate's min-x can start at 2.
		avg := ok / winSec
		if w >= 1 {
			okSince2 += ok
			avg = okSince2 / (float64(w) * winSec)
		}
		fleetAvg.X = append(fleetAvg.X, x)
		fleetAvg.Y = append(fleetAvg.Y, avg)
		rejected.X = append(rejected.X, x)
		rejected.Y = append(rejected.Y, shed/winSec)
		target.X = append(target.X, x)
		target.Y = append(target.Y, serveTargetQPS)
		upper.X = append(upper.X, x)
		upper.Y = append(upper.Y, serveTargetQPS*serveUpperFactor)
		lower.X = append(lower.X, x)
		lower.Y = append(lower.Y, serveTargetQPS*serveLowerFactor)
		for i := range perFE {
			perFE[i].X = append(perFE[i].X, x)
			perFE[i].Y = append(perFE[i].Y, feOK[i]/winSec)
		}
	}
	var served, refused int64
	for _, srv := range servers {
		st := srv.Stats()
		served += st.Served
		refused += st.RejectedDraining
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("fleet totals: %d requests answered across %d front-ends, %d refused while draining", served, p.Frontends, refused))
	fig.Series = append(fig.Series, fleet, fleetAvg, rejected, target, upper, lower)
	fig.Series = append(fig.Series, perFE...)
	return fig, nil
}
