package bench

import (
	"math"
	"math/rand"
	"sort"

	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/semdist"
	"semtree/internal/synth"
	"semtree/internal/vocab"
)

// sweepData holds a workload embedded once at the largest size: the
// points are i.i.d., so a prefix of the embedding is a valid smaller
// workload and every size of a sweep shares the same space.
type sweepData struct {
	points  []kdtree.Point
	queries [][]float64
	stress  float64
}

// makeSweep generates maxN synthetic requirement triples, embeds them
// with FastMap under the default Eq. 1 metric, and maps a separate
// query workload into the same space. The actor population is large
// (400) so the workload is dominated by distinct triples: with the
// default 40 actors most triples are exact duplicates, k-NN balls
// collapse to radius ~0 and the efficiency figures stop exercising
// backtracking.
func makeSweep(maxN, queries, dims int, seed int64) (*sweepData, error) {
	gen := synth.New(synth.Config{Seed: seed, Actors: 400}, nil)
	triples := gen.Triples(maxN)
	metric, err := semdist.New(vocab.DefaultRegistry(), semdist.Options{})
	if err != nil {
		return nil, err
	}
	mapper, coords, err := fastmap.Build(triples, metric.Distance, fastmap.Options{
		Dims: dims,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	d := &sweepData{points: make([]kdtree.Point, maxN)}
	for i, c := range coords {
		d.points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	qGen := synth.New(synth.Config{Seed: seed + 1, Actors: 400}, nil)
	for q := 0; q < queries; q++ {
		d.queries = append(d.queries, mapper.Map(qGen.RandomTriple()))
	}
	sample := maxN * 4
	if sample > 20000 {
		sample = 20000
	}
	d.stress = fastmap.Stress(triples, metric.Distance, coords, sample, seed+2)
	return d, nil
}

// prefix returns a copy of the first n points (tree builders reorder
// their input in place).
func (d *sweepData) prefix(n int) []kdtree.Point {
	if n > len(d.points) {
		n = len(d.points)
	}
	return append([]kdtree.Point(nil), d.points[:n]...)
}

// prefixChainWorkload returns the first n points in ascending first-
// coordinate order with a negligible (≤1e-4) deterministic epsilon
// added to the first coordinate: the adversarial workload that fully
// degenerates the chain split policy. Duplicated triples embed to
// identical coordinates, which would otherwise cap the chain depth at
// the number of distinct values; the epsilon is orders of magnitude
// below the coordinate scale, so distances are unaffected. Coordinates
// are deep-copied (the base points are shared across series).
func (d *sweepData) prefixChainWorkload(n int) []kdtree.Point {
	pts := d.prefix(n)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[0] < pts[j].Coords[0] })
	for i := range pts {
		c := append([]float64(nil), pts[i].Coords...)
		c[0] += float64(i) * 1e-9
		pts[i].Coords = c
	}
	return pts
}

// makeClustered generates a clustered workload directly in the
// embedding space: n points in `clusters` Gaussian blobs whose centers
// are uniform in [0, 100)^dims, with the queries drawn from the same
// mixture (perturbed around the same centers). This is the workload
// the placement experiment needs — geometrically close buckets exist
// to be co-located, and queries reward layouts that co-locate them —
// where the FastMap sweep data is too close to uniform to
// differentiate placement policies reliably.
func makeClustered(n, queries, dims, clusters int, seed int64) *sweepData {
	r := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dims)
		for d := range c {
			c[d] = r.Float64() * 100
		}
		centers[i] = c
	}
	d := &sweepData{points: make([]kdtree.Point, n)}
	for i := range d.points {
		center := centers[i%clusters]
		c := make([]float64, dims)
		for k := range c {
			c[k] = center[k] + r.NormFloat64()*2
		}
		d.points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	for q := 0; q < queries; q++ {
		center := centers[q%clusters]
		c := make([]float64, dims)
		for k := range c {
			c[k] = center[k] + r.NormFloat64()*2
		}
		d.queries = append(d.queries, c)
	}
	return d
}

// maxSize returns the largest value in sizes.
func maxSize(sizes []int) int {
	m := 0
	for _, s := range sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// seconds converts a duration-like float in nanoseconds to seconds.
func seconds(ns float64) float64 { return ns / float64(math.Pow10(9)) }
