// Package reqcheck implements the paper's case study: finding
// inconsistencies in software requirements expressed as triples.
//
// Two triples are inconsistent iff (§II): (i) they have the same
// subject, (ii) they have the same object, and (iii) their predicates
// are linked by an antinomy relationship in a given vocabulary. The
// detection strategy queries the index with *target triples* — the
// requirement's subject and object with an antinomic predicate — and
// inspects the k-nearest results (§IV-B). The package also provides the
// precision/recall evaluation that regenerates Figure 8.
package reqcheck

import (
	"context"
	"fmt"

	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// sameTerm compares two terms modulo synonym resolution: concepts of
// the same vocabulary are equal when their surface forms resolve to the
// same concept.
func sameTerm(a, b triple.Term, reg *vocab.Registry) bool {
	if a.Equal(b) {
		return true
	}
	if a.IsConcept() && b.IsConcept() && a.Prefix == b.Prefix {
		if v, ok := reg.Get(a.Prefix); ok {
			ca, okA := v.Lookup(a.Value)
			cb, okB := v.Lookup(b.Value)
			return okA && okB && ca == cb
		}
	}
	return false
}

// IsInconsistent reports whether a and b are inconsistent requirements
// per the paper's three conditions.
func IsInconsistent(a, b triple.Triple, reg *vocab.Registry) bool {
	if !sameTerm(a.Subject, b.Subject, reg) {
		return false
	}
	if !sameTerm(a.Object, b.Object, reg) {
		return false
	}
	if !a.Predicate.IsConcept() || !b.Predicate.IsConcept() || a.Predicate.Prefix != b.Predicate.Prefix {
		return false
	}
	v, ok := reg.Get(a.Predicate.Prefix)
	if !ok {
		return false
	}
	pa, okA := v.Lookup(a.Predicate.Value)
	pb, okB := v.Lookup(b.Predicate.Value)
	return okA && okB && v.IsAntonym(pa, pb)
}

// Target builds the query triple for a requirement (§IV-B): "a target
// triple was obtained considering subject and object of the selected
// triple and as predicate an antinomic term". The first recorded
// antonym is used, making targets deterministic. ok is false when the
// predicate has no antinomy.
func Target(req triple.Triple, reg *vocab.Registry) (triple.Triple, bool) {
	if !req.Predicate.IsConcept() {
		return triple.Triple{}, false
	}
	v, ok := reg.Get(req.Predicate.Prefix)
	if !ok {
		return triple.Triple{}, false
	}
	p, ok := v.Lookup(req.Predicate.Value)
	if !ok {
		return triple.Triple{}, false
	}
	ants := v.Antonyms(p)
	if len(ants) == 0 {
		return triple.Triple{}, false
	}
	out := req
	out.Predicate = triple.NewConcept(req.Predicate.Prefix, v.Name(ants[0]))
	return out, true
}

// Targets returns one target triple per recorded antonym of the
// requirement's predicate.
func Targets(req triple.Triple, reg *vocab.Registry) []triple.Triple {
	if !req.Predicate.IsConcept() {
		return nil
	}
	v, ok := reg.Get(req.Predicate.Prefix)
	if !ok {
		return nil
	}
	p, ok := v.Lookup(req.Predicate.Value)
	if !ok {
		return nil
	}
	var out []triple.Triple
	for _, a := range v.Antonyms(p) {
		t := req
		t.Predicate = triple.NewConcept(req.Predicate.Prefix, v.Name(a))
		out = append(out, t)
	}
	return out
}

// TrueInconsistencies scans the store for every triple inconsistent
// with req (excluding req's own ID when provided as self). This is the
// exact ground truth the simulated annotator panel perturbs.
func TrueInconsistencies(store *triple.Store, req triple.Triple, self triple.ID, reg *vocab.Registry) []triple.ID {
	var out []triple.ID
	store.Each(func(id triple.ID, e triple.Entry) bool {
		if id != self && IsInconsistent(req, e.Triple, reg) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// Index is the retrieval capability the checker needs: the k nearest
// stored triples to a query triple, as ranked IDs. Both the SemTree
// facade and the exact brute-force comparator implement it.
type Index interface {
	KNearestIDs(ctx context.Context, q triple.Triple, k int) ([]triple.ID, error)
}

// Checker detects candidate inconsistencies by querying an index with
// target triples.
type Checker struct {
	idx Index
	reg *vocab.Registry
}

// NewChecker returns a checker over idx.
func NewChecker(idx Index, reg *vocab.Registry) *Checker {
	return &Checker{idx: idx, reg: reg}
}

// Candidates returns the k triples semantically closest to the
// requirement's target triple — the result set that "could then
// correspond to contradictions or conflicts" (§II). ok is false when
// the requirement's predicate has no antinomy (no target exists).
func (c *Checker) Candidates(ctx context.Context, req triple.Triple, k int) ([]triple.ID, bool, error) {
	target, ok := Target(req, c.reg)
	if !ok {
		return nil, false, nil
	}
	ids, err := c.idx.KNearestIDs(ctx, target, k)
	if err != nil {
		return nil, true, fmt.Errorf("reqcheck: query failed: %w", err)
	}
	return ids, true, nil
}

// Confirmed filters candidate IDs down to actual inconsistencies using
// the exact predicate — the verification step a reviewer would apply to
// the retrieved set.
func (c *Checker) Confirmed(req triple.Triple, candidates []triple.ID, store *triple.Store) []triple.ID {
	var out []triple.ID
	for _, id := range candidates {
		if e, ok := store.Get(id); ok && IsInconsistent(req, e.Triple, c.reg) {
			out = append(out, id)
		}
	}
	return out
}
