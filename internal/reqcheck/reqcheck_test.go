package reqcheck

import (
	"context"
	"testing"

	"semtree/internal/semdist"
	"semtree/internal/synth"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

func tr(s string) triple.Triple {
	t, err := triple.ParseTriple(s)
	if err != nil {
		panic(err)
	}
	return t
}

func TestIsInconsistentPaperDefinition(t *testing.T) {
	reg := vocab.DefaultRegistry()
	req := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	cases := []struct {
		other string
		want  bool
	}{
		{"('OBSW001', Fun:block_cmd, CmdType:start-up)", true},   // antonym, same S/O
		{"('OBSW001', Fun:reject_cmd, CmdType:start-up)", true},  // other antonym
		{"('OBSW002', Fun:block_cmd, CmdType:start-up)", false},  // different subject
		{"('OBSW001', Fun:block_cmd, CmdType:shutdown)", false},  // different object
		{"('OBSW001', Fun:send_msg, CmdType:start-up)", false},   // not antonyms
		{"('OBSW001', Fun:accept_cmd, CmdType:start-up)", false}, // same predicate
		{"('OBSW001', Fun:block_cmd, CmdType:startup)", true},    // synonym object
	}
	for _, c := range cases {
		if got := IsInconsistent(req, tr(c.other), reg); got != c.want {
			t.Errorf("IsInconsistent(req, %s) = %v, want %v", c.other, got, c.want)
		}
	}
	// Symmetry.
	conflict := tr("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	if !IsInconsistent(conflict, req, reg) {
		t.Error("IsInconsistent not symmetric")
	}
}

func TestTargetPaperExample(t *testing.T) {
	// §II: for requirement (OBSW001, accept_cmd, start-up), possible
	// inconsistencies are retrieved with the query triple
	// (OBSW001, block_cmd, start-up).
	reg := vocab.DefaultRegistry()
	req := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	target, ok := Target(req, reg)
	if !ok {
		t.Fatal("no target for accept_cmd")
	}
	want := tr("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	if !target.Equal(want) {
		t.Fatalf("target = %v, want %v", target, want)
	}
	if !IsInconsistent(req, target, reg) {
		t.Fatal("target must be inconsistent with its requirement")
	}
}

func TestTargetsEnumerateAntonyms(t *testing.T) {
	reg := vocab.DefaultRegistry()
	req := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	ts := Targets(req, reg)
	if len(ts) != 2 { // block_cmd and reject_cmd
		t.Fatalf("targets = %v", ts)
	}
	noAnt := tr("('OBSW001', Fun:monitor_param, InType:gyro_reading)")
	if got := Targets(noAnt, reg); got != nil {
		t.Fatalf("monitor_param has no antonyms, got %v", got)
	}
	if _, ok := Target(noAnt, reg); ok {
		t.Fatal("Target should fail without antonyms")
	}
}

func TestTrueInconsistenciesScan(t *testing.T) {
	reg := vocab.DefaultRegistry()
	store := triple.NewStore()
	req := tr("('OBSW001', Fun:accept_cmd, CmdType:start-up)")
	reqID := store.Add(req, triple.Provenance{})
	c1 := store.Add(tr("('OBSW001', Fun:block_cmd, CmdType:start-up)"), triple.Provenance{})
	store.Add(tr("('OBSW001', Fun:send_msg, MsgType:housekeeping)"), triple.Provenance{})
	c2 := store.Add(tr("('OBSW001', Fun:reject_cmd, CmdType:start-up)"), triple.Provenance{})
	got := TrueInconsistencies(store, req, reqID, reg)
	if len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Fatalf("TrueInconsistencies = %v, want [%d %d]", got, c1, c2)
	}
}

func TestExactIndexRanksConflictsFirst(t *testing.T) {
	reg := vocab.DefaultRegistry()
	metric := semdist.MustNew(reg, semdist.Options{})
	store := triple.NewStore()
	conflict := store.Add(tr("('OBSW001', Fun:block_cmd, CmdType:start-up)"), triple.Provenance{})
	for i := 0; i < 50; i++ {
		store.Add(tr("('PDU9', Fun:send_msg, MsgType:housekeeping)"), triple.Provenance{})
	}
	idx := NewExactIndex(store, metric)
	target := tr("('OBSW001', Fun:block_cmd, CmdType:start-up)")
	ids, err := idx.KNearestIDs(context.Background(), target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != conflict {
		t.Fatalf("nearest = %v, want conflict %d first", ids, conflict)
	}
	if got, _ := idx.KNearestIDs(context.Background(), target, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestCheckerFindsPlantedConflicts(t *testing.T) {
	reg := vocab.DefaultRegistry()
	g := synth.New(synth.Config{Seed: 5, Docs: 15, InconsistencyRate: 0.5}, reg)
	b := g.Corpus()
	if len(b.Planted) < 5 {
		t.Fatalf("too few planted conflicts: %d", len(b.Planted))
	}
	metric := semdist.MustNew(reg, semdist.Options{})
	idx := NewExactIndex(b.Corpus.Store, metric)
	checker := NewChecker(idx, reg)

	found := 0
	for _, p := range b.Planted {
		req := b.Corpus.Store.MustGet(p.Requirement)
		cands, ok, err := checker.Candidates(context.Background(), req, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("planted requirement %v has no target", req)
		}
		confirmed := checker.Confirmed(req, cands, b.Corpus.Store)
		for _, id := range confirmed {
			if id == p.Conflict {
				found++
				break
			}
		}
	}
	if found < len(b.Planted)*8/10 {
		t.Fatalf("checker found only %d/%d planted conflicts at K=10", found, len(b.Planted))
	}
}

func TestEvaluatePrecisionRecallShape(t *testing.T) {
	// The Figure 8 property: precision decreases and recall increases
	// monotonically (weakly) with K.
	reg := vocab.DefaultRegistry()
	g := synth.New(synth.Config{Seed: 9, Docs: 25, InconsistencyRate: 0.4}, reg)
	b := g.Corpus()
	metric := semdist.MustNew(reg, semdist.Options{})
	idx := NewExactIndex(b.Corpus.Store, metric)

	var queries []Query
	for _, p := range b.Planted {
		req := b.Corpus.Store.MustGet(p.Requirement)
		gt := TrueInconsistencies(b.Corpus.Store, req, p.Requirement, reg)
		queries = append(queries, Query{Requirement: p.Requirement, GroundTruth: gt})
	}
	ks := []int{1, 3, 5, 10, 20}
	points, err := Evaluate(context.Background(), idx, b.Corpus.Store, reg, queries, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ks) {
		t.Fatalf("points = %v", points)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Recall < points[i-1].Recall-1e-9 {
			t.Fatalf("recall not monotone: %+v", points)
		}
		if points[i].Precision > points[i-1].Precision+1e-9 {
			t.Fatalf("precision not decreasing: %+v", points)
		}
	}
	if points[0].Precision < 0.5 {
		t.Fatalf("precision@1 = %f, conflicts not ranked first", points[0].Precision)
	}
	if last := points[len(points)-1]; last.Recall < 0.9 {
		t.Fatalf("recall@20 = %f, true sets not recovered", last.Recall)
	}
}

func TestEvaluateErrors(t *testing.T) {
	reg := vocab.DefaultRegistry()
	store := triple.NewStore()
	metric := semdist.MustNew(reg, semdist.Options{})
	idx := NewExactIndex(store, metric)
	if _, err := Evaluate(context.Background(), idx, store, reg, nil, []int{3}); err == nil {
		t.Fatal("expected error with no evaluable queries")
	}
	if _, err := Evaluate(context.Background(), idx, store, reg,
		[]Query{{Requirement: 42, GroundTruth: []triple.ID{1}}}, []int{3}); err == nil {
		t.Fatal("expected error for unknown requirement")
	}
}
