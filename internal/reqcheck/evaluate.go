package reqcheck

import (
	"context"
	"fmt"
	"sort"

	"semtree/internal/semdist"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// ExactIndex answers k-nearest queries by brute force over the true
// semantic distance (Eq. 1), with no embedding and no tree. It is the
// accuracy ceiling the SemTree index is compared against, and the
// reference oracle in tests.
type ExactIndex struct {
	store  *triple.Store
	metric *semdist.Metric
}

// NewExactIndex returns a brute-force index over store.
func NewExactIndex(store *triple.Store, metric *semdist.Metric) *ExactIndex {
	return &ExactIndex{store: store, metric: metric}
}

// KNearestIDs implements Index. The brute-force scan honors the
// context between queries: an already-done ctx fails before scanning.
func (x *ExactIndex) KNearestIDs(ctx context.Context, q triple.Triple, k int) ([]triple.ID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	type cand struct {
		id   triple.ID
		dist float64
	}
	var cands []cand
	x.store.Each(func(id triple.ID, e triple.Entry) bool {
		cands = append(cands, cand{id: id, dist: x.metric.Distance(q, e.Triple)})
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]triple.ID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out, nil
}

// Query is one effectiveness-evaluation case: a requirement triple and
// the ground-truth set of its inconsistencies (T* in §IV-B).
type Query struct {
	Requirement triple.ID
	GroundTruth []triple.ID
}

// EvalPoint is one point of Figure 8: average precision and recall of
// the k-nearest result sets at a given K.
type EvalPoint struct {
	K         int
	Precision float64
	Recall    float64
}

// Evaluate runs the paper's effectiveness protocol (§IV-B): for each
// query requirement, build the target triple, run a K-nearest query,
// and score the returned set T against the ground truth T* with
//
//	P = |T ∩ T*| / |T|,   R = |T ∩ T*| / |T*|.
//
// Averages are taken over queries with a non-empty ground truth and a
// well-defined target. The result has one point per K in ks.
func Evaluate(ctx context.Context, idx Index, store *triple.Store, reg *vocab.Registry, queries []Query, ks []int) ([]EvalPoint, error) {
	var out []EvalPoint
	for _, k := range ks {
		var sumP, sumR float64
		n := 0
		for _, q := range queries {
			if len(q.GroundTruth) == 0 {
				continue
			}
			e, ok := store.Get(q.Requirement)
			if !ok {
				return nil, fmt.Errorf("reqcheck: unknown requirement triple %d", q.Requirement)
			}
			target, ok := Target(e.Triple, reg)
			if !ok {
				continue
			}
			ids, err := idx.KNearestIDs(ctx, target, k)
			if err != nil {
				return nil, err
			}
			if len(ids) == 0 {
				continue
			}
			truth := make(map[triple.ID]bool, len(q.GroundTruth))
			for _, id := range q.GroundTruth {
				truth[id] = true
			}
			hits := 0
			for _, id := range ids {
				if truth[id] {
					hits++
				}
			}
			sumP += float64(hits) / float64(len(ids))
			sumR += float64(hits) / float64(len(q.GroundTruth))
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("reqcheck: no evaluable queries at K=%d", k)
		}
		out = append(out, EvalPoint{K: k, Precision: sumP / float64(n), Recall: sumR / float64(n)})
	}
	return out, nil
}
