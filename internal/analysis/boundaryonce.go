package analysis

import (
	"go/ast"
	"path/filepath"
)

// BoundaryOnce enforces the "sort/sqrt exactly once at the client
// boundary" invariant from PR 1: inside internal/core and
// internal/kdtree, candidate distances travel squared and result sets
// travel unsorted; the single √ and the single sort happen in the
// allowlisted client-boundary files just before results are handed to
// the caller. Any other math.Sqrt or sort call in those packages is
// either a perf bug (per-candidate sqrt in a hot loop) or a correctness
// trap (double-sorting merged partial results). Construction-time sorts
// (tree builds, median splits) are legal but must say so with a
// //semtree:allow boundaryonce directive.
var BoundaryOnce = &Analyzer{
	Name: "boundaryonce",
	Doc: "math.Sqrt and sort.* are banned in internal/core and internal/kdtree outside " +
		"the allowlisted client-boundary files; distances travel squared, results unsorted",
	Run: runBoundaryOnce,
}

// boundaryFiles lists the files where the boundary conversion is
// allowed to live, per package (matched by import-path suffix).
var boundaryFiles = map[string][]string{
	"core":   {"tree.go"},
	"kdtree": {"search.go"},
}

func runBoundaryOnce(pass *Pass) error {
	var allow []string
	switch {
	case pkgPathIs(pass.Pkg, "core"):
		allow = boundaryFiles["core"]
	case pkgPathIs(pass.Pkg, "kdtree"):
		allow = boundaryFiles["kdtree"]
	default:
		return nil
	}
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if contains(allow, name) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return true
			}
			info := pass.TypesInfo
			switch {
			case calleeIsPkgFunc(info, call, "math", "Sqrt"):
				pass.Reportf(call.Pos(),
					"math.Sqrt outside the client boundary (%s); distances travel squared until the boundary converts them once", boundaryName(allow))
			case calleeIsPkgFunc(info, call,
				"sort", "Slice", "SliceStable", "Sort", "Stable", "Float64s", "Ints", "Strings"),
				calleeIsPkgFunc(info, call, "slices", "Sort", "SortFunc", "SortStableFunc"):
				pass.Reportf(call.Pos(),
					"sorting outside the client boundary (%s); result sets travel unsorted and are sorted exactly once", boundaryName(allow))
			}
			return true
		})
	}
	return nil
}

func boundaryName(allow []string) string {
	if len(allow) == 1 {
		return allow[0]
	}
	out := allow[0]
	for _, f := range allow[1:] {
		out += ", " + f
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
